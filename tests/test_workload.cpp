// Workload generator tests: CDF sampling, load calibration, determinism.
#include <gtest/gtest.h>

#include "workload/distributions.h"
#include "workload/generator.h"

namespace contra::workload {
namespace {

TEST(EmpiricalCdf, SamplesWithinSupport) {
  util::Rng rng(1);
  const EmpiricalCdf& cdf = web_search_flow_sizes();
  for (int i = 0; i < 5000; ++i) {
    const uint64_t bytes = cdf.sample(rng);
    EXPECT_GE(bytes, 1u);
    EXPECT_LE(bytes, static_cast<uint64_t>(cdf.points().back().bytes));
  }
}

TEST(EmpiricalCdf, SampleMeanTracksAnalyticMean) {
  util::Rng rng(2);
  const EmpiricalCdf& cdf = web_search_flow_sizes();
  double sum = 0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(cdf.sample(rng));
  // Log-linear interpolation skews below the midpoint-based analytic mean;
  // agreement within 40% is enough for load calibration.
  EXPECT_NEAR(sum / n, cdf.mean_bytes(), cdf.mean_bytes() * 0.4);
}

TEST(EmpiricalCdf, CacheIsSmallerThanWebSearch) {
  // The cache workload is dominated by tiny objects (Roy et al.).
  EXPECT_LT(cache_flow_sizes().mean_bytes(), web_search_flow_sizes().mean_bytes() / 5);
}

TEST(EmpiricalCdf, MedianOrdersMatchPaperWorkloads) {
  util::Rng rng(3);
  std::vector<double> web, cache;
  for (int i = 0; i < 20001; ++i) {
    web.push_back(static_cast<double>(web_search_flow_sizes().sample(rng)));
    cache.push_back(static_cast<double>(cache_flow_sizes().sample(rng)));
  }
  std::sort(web.begin(), web.end());
  std::sort(cache.begin(), cache.end());
  EXPECT_GT(web[web.size() / 2], 10e3);    // web search median tens of kB
  EXPECT_LT(cache[cache.size() / 2], 5e3); // cache median well under 5 kB
}

TEST(EmpiricalCdf, RejectsMalformed) {
  EXPECT_THROW(EmpiricalCdf({}), std::invalid_argument);
  EXPECT_THROW(EmpiricalCdf({{100, 0.5}}), std::invalid_argument);          // != 1.0
  EXPECT_THROW(EmpiricalCdf({{100, 0.7}, {200, 0.6}, {300, 1.0}}),
               std::invalid_argument);  // non-increasing
}

TEST(FixedSize, AlwaysSamplesTheSame) {
  util::Rng rng(4);
  const EmpiricalCdf cdf = fixed_size(5000);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(cdf.sample(rng), 5000u);
}

TEST(Generator, FlowCountMatchesLoad) {
  WorkloadConfig config;
  config.load = 0.5;
  config.sender_capacity_bps = 1e9;
  config.duration = 0.5;
  config.seed = 11;
  const EmpiricalCdf cdf = fixed_size(100'000);  // 0.8 ms per flow at 1Gbps
  const auto flows = generate_poisson(cdf, {0, 1}, {2, 3}, config);
  // Expected per sender: load * capacity / (bytes*8) * duration = 312.5.
  EXPECT_NEAR(static_cast<double>(flows.size()), 2 * 312.5, 2 * 312.5 * 0.2);
}

TEST(Generator, OfferedBytesMatchLoad) {
  WorkloadConfig config;
  config.load = 0.3;
  config.sender_capacity_bps = 1e9;
  config.duration = 1.0;
  config.seed = 12;
  const auto flows =
      generate_poisson(web_search_flow_sizes(), {0}, {1}, config);
  const double offered_bps = total_bytes(flows) * 8.0 / config.duration;
  EXPECT_NEAR(offered_bps, 0.3 * 1e9, 0.3 * 1e9 * 0.45);
}

TEST(Generator, DeterministicPerSeed) {
  WorkloadConfig config;
  config.duration = 0.05;
  config.seed = 9;
  const auto a = generate_poisson(cache_flow_sizes(), {0, 1}, {2, 3}, config);
  const auto b = generate_poisson(cache_flow_sizes(), {0, 1}, {2, 3}, config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_DOUBLE_EQ(a[i].start, b[i].start);
  }
}

TEST(Generator, NeverSendsToSelf) {
  WorkloadConfig config;
  config.duration = 0.2;
  config.seed = 10;
  // host 1 is both sender and receiver: flows from 1 must avoid dst 1.
  const auto flows = generate_poisson(cache_flow_sizes(), {1}, {1, 2}, config);
  for (const auto& flow : flows) EXPECT_NE(flow.dst, flow.src);
}

TEST(Generator, SizeScaleShrinksFlowsKeepsLoad) {
  WorkloadConfig config;
  config.load = 0.5;
  config.sender_capacity_bps = 1e9;
  config.duration = 0.5;
  config.seed = 13;
  WorkloadConfig scaled = config;
  scaled.size_scale = 0.1;
  const auto base = generate_poisson(fixed_size(100'000), {0}, {1}, config);
  const auto small = generate_poisson(fixed_size(100'000), {0}, {1}, scaled);
  // Roughly 10x the flows at a tenth the size: offered bytes comparable.
  EXPECT_NEAR(static_cast<double>(small.size()), 10.0 * base.size(),
              4.0 * base.size());
  EXPECT_NEAR(static_cast<double>(total_bytes(small)),
              static_cast<double>(total_bytes(base)),
              static_cast<double>(total_bytes(base)) * 0.4);
}

TEST(Generator, StartsWithinWindow) {
  WorkloadConfig config;
  config.start = 1.0;
  config.duration = 0.1;
  config.seed = 14;
  const auto flows = generate_poisson(cache_flow_sizes(), {0}, {1}, config);
  for (const auto& flow : flows) {
    EXPECT_GE(flow.start, 1.0);
    EXPECT_LT(flow.start, 1.1);
  }
}

TEST(Generator, EmptySendersThrow) {
  WorkloadConfig config;
  EXPECT_THROW(generate_poisson(cache_flow_sizes(), {}, {1}, config),
               std::invalid_argument);
  EXPECT_THROW(generate_poisson(cache_flow_sizes(), {0}, {}, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace contra::workload
