// Hybrid flow-level/packet-level engine tests (DESIGN.md §14).
//
// The contract under test:
//   * fluid flows progress at max-min fair-share goodput — single-flow FCT
//     matches the analytic bandwidth-delay value, contending flows split the
//     bottleneck;
//   * hybrid runs agree qualitatively with pure packet-level runs (everything
//     completes; FCTs land in the same regime; the converged control plane
//     ranks destinations identically under a util-blind policy);
//   * hybrid runs are deterministic, and on the sharded engine the fluid
//     completion digest is invariant to the worker count;
//   * util-blind policies carry util = 0 in probes, so fluid/packet load can
//     never excite triggered-update storms (the k=16 bench regression);
//   * FlowStream is a deterministic lazy generator;
//   * the GraphML importer derives names, capacities and geo-delays.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "obs/convergence.h"
#include "sim/fluid.h"
#include "sim/host.h"
#include "sim/parallel_simulator.h"
#include "sim/transport.h"
#include "topology/generators.h"
#include "topology/parser.h"
#include "workload/generator.h"

namespace contra {
namespace {

using dataplane::ContraSwitch;
using sim::HostId;
using sim::SimConfig;
using sim::Simulator;
using sim::TransportConfig;
using topology::NodeId;
using topology::Topology;

constexpr double kRate = 1e9;

struct Fixture {
  Topology topo;
  compiler::CompileResult compiled;
  std::unique_ptr<pg::PolicyEvaluator> evaluator;

  explicit Fixture(const char* policy = "minimize(path.len)")
      : topo(topology::fat_tree(4, topology::LinkParams{kRate, 1e-6})),
        compiled(compiler::compile(policy, topo)),
        evaluator(std::make_unique<pg::PolicyEvaluator>(compiled.graph, compiled.decomposition)) {}
};

struct HybridRun {
  Simulator sim;
  std::vector<ContraSwitch*> switches;
  std::vector<HostId> senders, receivers;
  sim::TransportManager transport;  // last: its init runs install() first

  HybridRun(const Fixture& fx, TransportConfig tc)
      : sim(fx.topo,
            [] {
              SimConfig c;
              c.host_link_bps = kRate;
              return c;
            }()),
        switches(),
        transport((install(fx, sim, switches, senders, receivers), sim), tc) {}

  static void install(const Fixture& fx, Simulator& sim, std::vector<ContraSwitch*>& switches,
                      std::vector<HostId>& senders, std::vector<HostId>& receivers) {
    for (HostId h : sim::attach_hosts_to_fat_tree_edges(sim, 2)) {
      (h % 2 ? receivers : senders).push_back(h);
    }
    dataplane::ContraSwitchOptions options;
    options.probe_period_s = 256e-6;
    switches = dataplane::install_contra_network(sim, fx.compiled, *fx.evaluator, options);
  }
};

// Goodput share of the wire under the default framing.
double goodput(double link_bps, const TransportConfig& tc = {}) {
  return link_bps * tc.mss_bytes / double(tc.mss_bytes + tc.header_bytes);
}

// ---- fluid rate / FCT units ------------------------------------------------

TEST(Fluid, SingleFlowCompletesAtBottleneckGoodput) {
  Fixture fx;
  TransportConfig tc;
  tc.hybrid = true;
  tc.hybrid_sample_every = 0;  // every flow fluid
  HybridRun run(fx, tc);
  run.sim.start();
  run.sim.run_until(3e-3);  // control plane converges first

  const uint64_t bytes = 10'000'000;
  run.transport.start_flow(run.senders[0], run.receivers[1], bytes, run.sim.now());
  run.sim.run_until(run.sim.now() + 0.2);

  ASSERT_EQ(run.transport.completed_flows().size(), 1u);
  const sim::FlowRecord& rec = run.transport.completed_flows()[0];
  const double ideal = double(bytes) * 8 / goodput(kRate);
  // Analytic FCT = transfer at goodput + propagation floor, quantized to the
  // next fluid tick; everything beyond ~two quanta of slack is an error.
  EXPECT_GE(rec.fct(), ideal);
  EXPECT_LE(rec.fct(), ideal + 4 * tc.fluid_quantum_s + 1e-3);
  const sim::FluidStats& fs = run.transport.fluid_engine()->stats();
  EXPECT_EQ(fs.flows_started, 1u);
  EXPECT_EQ(fs.flows_completed, 1u);
  EXPECT_EQ(fs.stalls, 0u);
}

TEST(Fluid, TwoFlowsSplitTheSenderLink) {
  Fixture fx;
  TransportConfig tc;
  tc.hybrid = true;
  tc.hybrid_sample_every = 0;
  HybridRun run(fx, tc);
  run.sim.start();
  run.sim.run_until(3e-3);

  // Same sender host: both flows share its access link, max-min gives each
  // half the goodput and equal-size flows finish together at ~2x the solo FCT.
  const uint64_t bytes = 5'000'000;
  const sim::Time t0 = run.sim.now();
  run.transport.start_flow(run.senders[0], run.receivers[1], bytes, t0);
  run.transport.start_flow(run.senders[0], run.receivers[3], bytes, t0);
  run.sim.run_until(t0 + 0.3);

  ASSERT_EQ(run.transport.completed_flows().size(), 2u);
  const double solo = double(bytes) * 8 / goodput(kRate);
  for (const sim::FlowRecord& rec : run.transport.completed_flows()) {
    EXPECT_GE(rec.fct(), 2 * solo * 0.98);
    EXPECT_LE(rec.fct(), 2 * solo * 1.05 + 4 * tc.fluid_quantum_s);
  }
}

TEST(Fluid, ReleasedBandwidthSpeedsUpTheSurvivor) {
  Fixture fx;
  TransportConfig tc;
  tc.hybrid = true;
  tc.hybrid_sample_every = 0;
  HybridRun run(fx, tc);
  run.sim.start();
  run.sim.run_until(3e-3);

  // A short flow shares the sender link, completes, and its bandwidth goes
  // back to the long flow: the long flow's FCT must land strictly between
  // the full-rate ideal and the permanently-halved worst case.
  const uint64_t long_bytes = 10'000'000, short_bytes = 1'000'000;
  const sim::Time t0 = run.sim.now();
  run.transport.start_flow(run.senders[0], run.receivers[1], long_bytes, t0);
  run.transport.start_flow(run.senders[0], run.receivers[3], short_bytes, t0);
  run.sim.run_until(t0 + 0.3);

  ASSERT_EQ(run.transport.completed_flows().size(), 2u);
  double long_fct = 0.0;
  for (const sim::FlowRecord& rec : run.transport.completed_flows()) {
    if (rec.bytes == long_bytes) long_fct = rec.fct();
  }
  const double solo = double(long_bytes) * 8 / goodput(kRate);
  const double halved = 2 * solo;
  EXPECT_GT(long_fct, solo * 1.05);    // it did share for a while
  EXPECT_LT(long_fct, halved * 0.95);  // but not for the whole transfer
}

// ---- hybrid vs packet-level parity ----------------------------------------

std::vector<sim::FlowRecord> run_workload(const Fixture& fx, const TransportConfig& tc,
                                          uint64_t seed,
                                          std::vector<lang::Rank>* best_ranks = nullptr) {
  HybridRun run(fx, tc);
  workload::WorkloadConfig wl;
  wl.load = 0.4;
  wl.sender_capacity_bps = kRate;
  wl.start = 3e-3;
  wl.duration = 20e-3;
  wl.seed = seed;
  wl.size_scale = 0.05;
  const auto flows = workload::generate_poisson(workload::web_search_flow_sizes(), run.senders,
                                                run.receivers, wl);
  workload::submit(run.transport, flows);
  run.sim.start();
  run.sim.run_until(wl.start + wl.duration + 0.25);

  EXPECT_EQ(run.transport.completed_flows().size(), flows.size());
  if (best_ranks != nullptr) {
    // The s()-rank of every (switch, destination) BestT pick. Under a
    // util-blind policy this is a pure path-length rank, so hybrid and
    // packet runs must agree exactly once converged, even where equal-length
    // ties were broken differently.
    for (const ContraSwitch* sw : run.switches) {
      for (NodeId dst = 0; dst < fx.topo.num_nodes(); ++dst) {
        const auto choice = sw->best_choice(dst, run.sim.now());
        if (choice) best_ranks->push_back(choice->rank);
      }
    }
  }
  return run.transport.completed_flows();
}

TEST(Hybrid, ParityWithPacketLevelRun) {
  Fixture fx;
  TransportConfig packet_tc;  // hybrid off
  TransportConfig hybrid_tc;
  hybrid_tc.hybrid = true;
  hybrid_tc.hybrid_sample_every = 4;  // mixed fluid + sampled packet flows

  std::vector<lang::Rank> packet_ranks, hybrid_ranks;
  const auto packet = run_workload(fx, packet_tc, 7, &packet_ranks);
  const auto hybrid = run_workload(fx, hybrid_tc, 7, &hybrid_ranks);
  ASSERT_GT(packet.size(), 100u);
  ASSERT_EQ(packet.size(), hybrid.size());

  // Same converged routing view.
  EXPECT_EQ(packet_ranks, hybrid_ranks);

  // Same FCT regime: fluid flows are idealized (no slow start, no loss), so
  // the hybrid mean may be faster but must stay within the same order.
  double packet_mean = 0, hybrid_mean = 0;
  for (const auto& r : packet) packet_mean += r.fct();
  for (const auto& r : hybrid) hybrid_mean += r.fct();
  packet_mean /= double(packet.size());
  hybrid_mean /= double(hybrid.size());
  EXPECT_LT(hybrid_mean, packet_mean * 1.5);
  EXPECT_GT(hybrid_mean, packet_mean / 20.0);
}

TEST(Hybrid, DeterministicAcrossRuns) {
  Fixture fx;
  TransportConfig tc;
  tc.hybrid = true;
  tc.hybrid_sample_every = 8;

  uint64_t digests[2] = {0, 1};
  size_t completed[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    HybridRun run(fx, tc);
    workload::WorkloadConfig wl;
    wl.load = 0.4;
    wl.sender_capacity_bps = kRate;
    wl.start = 3e-3;
    wl.duration = 15e-3;
    wl.seed = 11;
    wl.size_scale = 0.05;
    workload::submit(run.transport,
                     workload::generate_poisson(workload::web_search_flow_sizes(), run.senders,
                                                run.receivers, wl));
    run.sim.start();
    run.sim.run_until(wl.start + wl.duration + 0.2);
    digests[i] = run.transport.fluid_engine()->completion_digest();
    completed[i] = run.transport.completed_flows().size();
  }
  EXPECT_GT(completed[0], 0u);
  EXPECT_EQ(completed[0], completed[1]);
  EXPECT_EQ(digests[0], digests[1]);
}

// ---- triggered engine under hybrid load ------------------------------------

TEST(Hybrid, UtilBlindPolicyStaysTriggerQuiet) {
  // Regression for the k=16 probe storm: traffic moves the util EWMA, but a
  // minimize(path.len) policy never reads it, so probes must carry util = 0
  // and the triggered engine must not re-advertise on utilization drift.
  Fixture fx;
  SimConfig config;
  config.host_link_bps = kRate;
  Simulator sim(fx.topo, config);
  std::vector<HostId> senders, receivers;
  for (HostId h : sim::attach_hosts_to_fat_tree_edges(sim, 2)) {
    (h % 2 ? receivers : senders).push_back(h);
  }
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 256e-6;
  options.triggered_updates = true;
  options.probe_suppression = true;
  // No keepalive round inside the run: the version-1 flood converges the
  // fabric and any triggered update afterwards can only come from local
  // change detection — which traffic must not excite under this policy.
  options.keepalive_rounds = 4096;
  const auto switches = dataplane::install_contra_network(sim, fx.compiled, *fx.evaluator, options);

  TransportConfig tc;
  tc.hybrid = true;
  tc.hybrid_sample_every = 4;
  sim::TransportManager transport(sim, tc);
  workload::WorkloadConfig wl;
  wl.load = 0.6;
  wl.sender_capacity_bps = kRate;
  wl.start = 8e-3;  // converge (incl. the version-1 keepalive flood) first
  wl.duration = 20e-3;
  wl.seed = 3;
  wl.size_scale = 0.05;
  workload::submit(transport,
                   workload::generate_poisson(workload::web_search_flow_sizes(), senders,
                                              receivers, wl));
  sim.start();
  sim.run_until(wl.start);
  uint64_t triggered_before = 0;
  for (const ContraSwitch* sw : switches) triggered_before += sw->stats().probes_triggered;
  sim.run_until(wl.start + wl.duration);
  uint64_t triggered_during = 0;
  for (const ContraSwitch* sw : switches) triggered_during += sw->stats().probes_triggered;

  EXPECT_GT(transport.completed_flows().size(), 50u);
  EXPECT_EQ(triggered_during - triggered_before, 0u)
      << "traffic-driven util drift excited triggered updates under a util-blind policy";
}

// ---- worker invariance on the sharded engine -------------------------------

TEST(HybridDeterminism, WorkerInvariantCompletionDigest) {
  Fixture fx;
  uint64_t base_digest = 0;
  size_t base_completed = 0;
  for (const uint32_t workers : {1u, 2u, 4u}) {
    SimConfig config;
    config.host_link_bps = kRate;
    config.shards = 4;
    config.workers = workers;
    sim::ParallelSimulator psim(fx.topo, config);
    std::vector<HostId> senders, receivers;
    for (HostId h : sim::attach_hosts_to_fat_tree_edges(psim, 2)) {
      (h % 2 ? receivers : senders).push_back(h);
    }
    dataplane::ContraSwitchOptions options;
    options.probe_period_s = 256e-6;
    psim.for_each_shard([&](Simulator& shard_sim) {
      dataplane::install_contra_network(shard_sim, fx.compiled, *fx.evaluator, options);
    });
    TransportConfig tc;
    tc.hybrid = true;
    tc.hybrid_sample_every = 8;
    sim::ParallelTransport transport(psim, tc);
    workload::WorkloadConfig wl;
    wl.load = 0.4;
    wl.sender_capacity_bps = kRate;
    wl.start = 3e-3;
    wl.duration = 15e-3;
    wl.seed = 5;
    wl.size_scale = 0.05;
    workload::submit(transport,
                     workload::generate_poisson(workload::web_search_flow_sizes(), senders,
                                                receivers, wl));
    psim.start();
    psim.run_until(wl.start + wl.duration + 0.2);

    ASSERT_NE(transport.fluid_engine(), nullptr);
    const uint64_t digest = transport.fluid_engine()->completion_digest();
    const size_t completed = transport.completed_flows().size();
    if (workers == 1) {
      base_digest = digest;
      base_completed = completed;
      EXPECT_GT(completed, 0u);
    } else {
      EXPECT_EQ(digest, base_digest) << "workers " << workers;
      EXPECT_EQ(completed, base_completed) << "workers " << workers;
    }
  }
}

// ---- FlowStream ------------------------------------------------------------

TEST(FlowStream, DeterministicAndOrdered) {
  const std::vector<HostId> senders{0, 2, 4, 6}, receivers{1, 3, 5, 7};
  workload::WorkloadConfig wl;
  wl.load = 0.5;
  wl.sender_capacity_bps = kRate;
  wl.start = 1e-3;
  wl.duration = 50e-3;
  wl.seed = 42;
  wl.size_scale = 0.05;

  const auto drain = [&] {
    workload::FlowStream stream(workload::web_search_flow_sizes(), senders, receivers, wl);
    std::vector<workload::GeneratedFlow> out;
    workload::GeneratedFlow flow;
    while (stream.next(&flow)) out.push_back(flow);
    EXPECT_EQ(stream.emitted(), out.size());
    return out;
  };
  const auto a = drain();
  const auto b = drain();
  ASSERT_GT(a.size(), 20u);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_DOUBLE_EQ(a[i].start, b[i].start);
  }
  // Arrival order, window bounds, and sane addressing.
  for (size_t i = 1; i < a.size(); ++i) EXPECT_LE(a[i - 1].start, a[i].start);
  for (const auto& f : a) {
    EXPECT_GE(f.start, wl.start);
    EXPECT_LT(f.start, wl.start + wl.duration);
    EXPECT_NE(f.src, f.dst);
    EXPECT_GT(f.bytes, 0u);
  }
}

TEST(FlowStream, MatchesEagerGeneratorVolume) {
  // The lazy stream is documented as arrival-sorted but not byte-identical
  // to generate_poisson's order; the volume statistics must still agree.
  const std::vector<HostId> senders{0, 2, 4, 6}, receivers{1, 3, 5, 7};
  workload::WorkloadConfig wl;
  wl.load = 0.5;
  wl.sender_capacity_bps = kRate;
  wl.start = 1e-3;
  wl.duration = 100e-3;
  wl.seed = 9;
  wl.size_scale = 0.05;
  const auto eager = workload::generate_poisson(workload::web_search_flow_sizes(), senders,
                                                receivers, wl);
  workload::FlowStream stream(workload::web_search_flow_sizes(), senders, receivers, wl);
  uint64_t lazy_count = 0;
  double lazy_bytes = 0;
  workload::GeneratedFlow flow;
  while (stream.next(&flow)) {
    ++lazy_count;
    lazy_bytes += double(flow.bytes);
  }
  double eager_bytes = 0;
  for (const auto& f : eager) eager_bytes += double(f.bytes);
  ASSERT_GT(eager.size(), 50u);
  EXPECT_GT(lazy_count, eager.size() / 2);
  EXPECT_LT(lazy_count, eager.size() * 2);
  EXPECT_GT(lazy_bytes, eager_bytes / 3);
  EXPECT_LT(lazy_bytes, eager_bytes * 3);
}

// ---- GraphML importer ------------------------------------------------------

constexpr const char* kTinyGraphml = R"(<?xml version="1.0" encoding="utf-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="label" attr.type="string" for="node" id="d0" />
  <key attr.name="Latitude" attr.type="double" for="node" id="d1" />
  <key attr.name="Longitude" attr.type="double" for="node" id="d2" />
  <key attr.name="LinkSpeedRaw" attr.type="double" for="edge" id="d3" />
  <graph edgedefault="undirected">
    <node id="0">
      <data key="d0">Seattle</data>
      <data key="d1">47.6</data>
      <data key="d2">-122.3</data>
    </node>
    <node id="1">
      <data key="d0">NewYork</data>
      <data key="d1">40.7</data>
      <data key="d2">-74.0</data>
    </node>
    <node id="2">
      <data key="d0">Orbit</data>
    </node>
    <edge source="0" target="1">
      <data key="d3">10000000000</data>
    </edge>
    <edge source="1" target="2" />
    <edge source="0" target="1" />
  </graph>
</graphml>
)";

TEST(Graphml, ParsesNamesCapacitiesAndGeoDelays) {
  const Topology t = topology::parse_graphml(kTinyGraphml, 1e9, 1e-6);
  EXPECT_EQ(t.num_nodes(), 3u);
  // Duplicate edge dropped: 2 cables = 4 directed links.
  EXPECT_EQ(t.num_links(), 4u);
  const NodeId sea = t.find("Seattle");
  const NodeId nyc = t.find("NewYork");
  const NodeId orbit = t.find("Orbit");
  const topology::LinkId coast = t.link_between(sea, nyc);
  // Seattle-NewYork is ~3900 km great-circle: at ~2e8 m/s that is ~19 ms,
  // far above the 1us floor; the capacity comes from LinkSpeedRaw.
  EXPECT_GT(t.link(coast).delay_s, 10e-3);
  EXPECT_LT(t.link(coast).delay_s, 40e-3);
  EXPECT_DOUBLE_EQ(t.link(coast).capacity_bps, 10e9);
  // No coordinates on one endpoint: fall back to the default delay/capacity.
  const topology::LinkId up = t.link_between(nyc, orbit);
  EXPECT_DOUBLE_EQ(t.link(up).delay_s, 1e-6);
  EXPECT_DOUBLE_EQ(t.link(up).capacity_bps, 1e9);
}

TEST(Graphml, AutoSniffsFormat) {
  const Topology g = topology::parse_topology_auto(kTinyGraphml);
  EXPECT_EQ(g.num_nodes(), 3u);
  const Topology e = topology::parse_topology_auto("link a b 10 5\nlink b c 10 5\n");
  EXPECT_EQ(e.num_nodes(), 3u);
}

// ---- trigger-wave width accounting (telemetry pipeline) --------------------

TEST(ConvergenceWaves, TriggerWidthCountsDistinctSwitches) {
  obs::ConvergenceTracker tracker;
  obs::TraceRecord wave;
  wave.t = 1.0;
  wave.ev = obs::Ev::kChurnWave;
  wave.aux = 0;
  tracker.observe(wave);
  for (const uint32_t sw : {3u, 5u, 3u, 9u}) {
    obs::TraceRecord r;
    r.t = 1.001;
    r.ev = obs::Ev::kProbeTrigger;
    r.sw = sw;
    r.dst = 1;
    tracker.observe(r);
  }
  const auto report = tracker.report();
  ASSERT_EQ(report.waves.size(), 1u);
  EXPECT_EQ(report.waves[0].trigger_width, 3u);   // distinct switches
  EXPECT_EQ(report.waves[0].trigger_records, 4u); // raw records
  ASSERT_EQ(report.by_class.size(), 1u);
  EXPECT_EQ(report.by_class[0].max_trigger_width, 3u);
}

}  // namespace
}  // namespace contra
