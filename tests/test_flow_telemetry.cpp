// Dataplane flow-telemetry tests: the workers-invariance gate for the
// opt-in observability streams (flows.jsonl / paths.jsonl), the pure-function
// contract of the INT path sampler, the hand-checked optimality auditor on
// the paper's running-example diamond, and the Chrome-trace shape of the
// engine profiler.
//
// The determinism contract under test (OBSERVABILITY.md):
//   * the serialized flow stream and sampled-path stream are byte-identical
//     for every --workers N (sampling keys off (flow_id, seq), never off
//     schedule or thread identity; serialization sorts by schedule-invariant
//     keys);
//   * attaching the profiler never changes simulation output (wall-clock
//     spans observe the engine, they do not steer it).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "obs/flow_tracker.h"
#include "obs/profile.h"
#include "oracle/audit.h"
#include "oracle/oracle.h"
#include "sim/host.h"
#include "sim/parallel_simulator.h"
#include "sim/simulator.h"
#include "sim/transport.h"
#include "topology/abilene.h"
#include "topology/generators.h"
#include "workload/generator.h"

namespace contra::sim {
namespace {

topology::LinkId find_link(const topology::Topology& topo, const std::string& from,
                           const std::string& to) {
  const topology::NodeId a = topo.find(from);
  const topology::NodeId b = topo.find(to);
  for (topology::LinkId l = 0; l < topo.num_links(); ++l) {
    if (topo.link(l).from == a && topo.link(l).to == b) return l;
  }
  ADD_FAILURE() << "no link " << from << "->" << to;
  return 0;
}

// ---- workers-invariance gate -----------------------------------------------

struct TrackedRun {
  std::string flows;    ///< write_flows_jsonl output
  std::string paths;    ///< write_paths_jsonl output
  std::string summary;  ///< summary_json output
  size_t completed = 0;
  size_t profile_spans = 0;
};

/// One short contra workload on the sharded engine with flow tracking and
/// 1-in-4 path sampling on, plus (fat-tree only) a mid-run cable failure.
TrackedRun run_tracked(const topology::Topology& topo, const compiler::CompileResult& compiled,
                       const pg::PolicyEvaluator& evaluator, bool abilene, uint64_t seed,
                       uint32_t shards, uint32_t workers) {
  SimConfig config;
  config.host_link_bps = abilene ? 2e9 : 10e9;
  config.util_tau_s = 512e-6;
  config.shards = shards;
  config.workers = workers;
  ParallelSimulator psim(topo, config);

  std::vector<HostId> senders, receivers;
  if (abilene) {
    senders = attach_hosts(psim, {topo.find("Seattle"), topo.find("Sunnyvale")});
    receivers = attach_hosts(psim, {topo.find("NewYork"), topo.find("Atlanta")});
  } else {
    for (HostId h : attach_hosts_to_fat_tree_edges(psim, 2)) {
      (h % 2 ? receivers : senders).push_back(h);
    }
  }
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 256e-6;
  psim.for_each_shard([&](Simulator& shard_sim) {
    dataplane::install_contra_network(shard_sim, compiled, evaluator, options);
  });
  if (!abilene) {
    psim.schedule_cable_event(3e-3, find_link(topo, "e0_0", "a0_0"), /*down=*/true);
  }

  ParallelTransport transport(psim);
  transport.enable_flow_tracking(/*path_sample_every=*/4);

  workload::WorkloadConfig wl;
  wl.load = 0.4;
  wl.sender_capacity_bps = 2e9;
  wl.start = 2e-3;
  wl.duration = 2e-3;
  wl.seed = seed;
  wl.size_scale = 0.05;
  workload::submit(transport, workload::generate_poisson(workload::web_search_flow_sizes(),
                                                         senders, receivers, wl));

  obs::EngineProfiler profiler(psim.num_shards() + 1);
  psim.set_profiler(&profiler);
  psim.start();
  psim.run_until(12e-3);
  psim.set_profiler(nullptr);

  const obs::FlowTracker merged = transport.merged_flow_tracker();
  TrackedRun out;
  std::ostringstream flows, paths;
  merged.write_flows_jsonl(flows);
  merged.write_paths_jsonl(paths);
  out.flows = flows.str();
  out.paths = paths.str();
  out.summary = merged.summary_json();
  out.completed = transport.completed_flows().size();
  out.profile_spans = profiler.num_spans();
  return out;
}

TEST(FlowTelemetryDeterminism, FatTreeStreamsAreWorkersInvariant) {
  const topology::Topology topo = topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const compiler::CompileResult compiled =
      compiler::compile("minimize((path.len, path.util))", topo);
  const pg::PolicyEvaluator evaluator{compiled.graph, compiled.decomposition};

  for (const uint64_t seed : {1ull, 2ull, 3ull}) {
    const TrackedRun base =
        run_tracked(topo, compiled, evaluator, /*abilene=*/false, seed, 4, 1);
    ASSERT_FALSE(base.flows.empty());
    ASSERT_FALSE(base.paths.empty());
    EXPECT_GT(base.completed, 0u);
    EXPECT_GT(base.profile_spans, 0u);
    for (const uint32_t workers : {2u, 4u}) {
      const TrackedRun other =
          run_tracked(topo, compiled, evaluator, /*abilene=*/false, seed, 4, workers);
      EXPECT_EQ(base.flows, other.flows) << "seed " << seed << " workers " << workers;
      EXPECT_EQ(base.paths, other.paths) << "seed " << seed << " workers " << workers;
      EXPECT_EQ(base.summary, other.summary) << "seed " << seed << " workers " << workers;
    }
  }
}

TEST(FlowTelemetryDeterminism, AbileneStreamsAreWorkersInvariant) {
  const topology::Topology topo = topology::abilene(2e9, 0.02);
  const compiler::CompileResult compiled = compiler::compile("minimize(path.util)", topo);
  const pg::PolicyEvaluator evaluator{compiled.graph, compiled.decomposition};

  for (const uint64_t seed : {1ull, 2ull, 3ull}) {
    const TrackedRun base =
        run_tracked(topo, compiled, evaluator, /*abilene=*/true, seed, 2, 1);
    ASSERT_FALSE(base.flows.empty());
    const TrackedRun other =
        run_tracked(topo, compiled, evaluator, /*abilene=*/true, seed, 2, 2);
    EXPECT_EQ(base.flows, other.flows) << "seed " << seed;
    EXPECT_EQ(base.paths, other.paths) << "seed " << seed;
    EXPECT_EQ(base.summary, other.summary) << "seed " << seed;
  }
}

// ---- INT sampler ------------------------------------------------------------

TEST(FlowTelemetry, PathSamplerIsAPureFunctionOfFlowAndSeq) {
  // every == 0 disables sampling outright.
  for (uint64_t f = 0; f < 64; ++f) {
    EXPECT_FALSE(obs::FlowTracker::sampled(f, f * 7, 0));
    EXPECT_TRUE(obs::FlowTracker::sampled(f, f * 7, 1));
  }
  // Deterministic: the same (flow, seq, every) always answers the same, so
  // every worker count samples the same packets.
  uint64_t hits = 0;
  for (uint64_t f = 1; f <= 100; ++f) {
    for (uint64_t seq = 0; seq < 100; ++seq) {
      const bool s = obs::FlowTracker::sampled(f, seq, 4);
      EXPECT_EQ(s, obs::FlowTracker::sampled(f, seq, 4));
      hits += s;
    }
  }
  // 1-in-4 sampling over 10k draws: the mixed hash should land near 2500.
  EXPECT_GT(hits, 2000u);
  EXPECT_LT(hits, 3000u);
}

// ---- optimality auditor: hand-checked diamond --------------------------------

// Running-example diamond (A-B, A-C, B-C, B-D, C-D) under minimize(path.util)
// with the A->B link hot: every rank-optimal A->D path must leave A on A->C,
// and a sample routed over A->B is suboptimal by inspection.
TEST(OptimalityAudit, HandCheckedDiamondScoresOnlyColdPath) {
  const topology::Topology topo = topology::running_example();
  const compiler::CompileResult compiled = compiler::compile("minimize(path.util)", topo);
  const pg::PolicyEvaluator evaluator{compiled.graph, compiled.decomposition};

  const topology::NodeId a = topo.find("A");
  const topology::NodeId b = topo.find("B");
  const topology::NodeId d = topo.find("D");
  const topology::LinkId ab = find_link(topo, "A", "B");
  const topology::LinkId ac = find_link(topo, "A", "C");
  const topology::LinkId bd = find_link(topo, "B", "D");
  const topology::LinkId cd = find_link(topo, "C", "D");

  oracle::LinkState hot = oracle::LinkState::all_up(topo);
  hot.util.assign(topo.num_links(), 0.0);
  hot.util[ab] = 0.5;

  // Idle network: both 2-hop paths (and the 3-hop detours) tie at util 0, so
  // the optimal next-hop set at A spreads over both diamond arms.
  {
    const oracle::RouteOracle idle(compiled.graph, evaluator, oracle::LinkState::all_up(topo));
    const std::vector<topology::LinkId> nhops = oracle::optimal_next_hops(idle, a, d);
    EXPECT_NE(std::find(nhops.begin(), nhops.end(), ab), nhops.end());
    EXPECT_NE(std::find(nhops.begin(), nhops.end(), ac), nhops.end());
  }
  // Hot A->B: only the cold arm through C is rank-optimal at A.
  {
    const oracle::RouteOracle oracle(compiled.graph, evaluator, hot);
    const std::vector<topology::LinkId> nhops = oracle::optimal_next_hops(oracle, a, d);
    ASSERT_EQ(nhops.size(), 1u);
    EXPECT_EQ(nhops[0], ac);
    // Downstream of the hot link both B->D and B->C->D stay util-0 ties, so
    // B's set keeps both — non-optimality of the hot sample is decided at A.
    EXPECT_GE(oracle::optimal_next_hops(oracle, b, d).size(), 1u);
  }

  std::vector<oracle::AuditSample> samples;
  samples.push_back({d, /*bytes=*/100, /*t=*/0.5, {ac, cd}});  // cold arm: optimal
  samples.push_back({d, /*bytes=*/50, /*t=*/0.5, {ab, bd}});   // hot arm: suboptimal
  const oracle::AuditResult result = oracle::audit_paths(
      compiled.graph, evaluator, samples, [&](double) { return hot; }, /*bucket_s=*/0.0);

  EXPECT_EQ(result.total_samples, 2u);
  EXPECT_EQ(result.optimal_samples, 1u);
  EXPECT_EQ(result.total_bytes, 150u);
  EXPECT_EQ(result.optimal_bytes, 100u);
  EXPECT_EQ(result.unreached_hops, 0u);
  EXPECT_EQ(result.buckets, 1u);
  EXPECT_NEAR(result.fraction(), 100.0 / 150.0, 1e-12);
}

// ---- always-on flow metrics --------------------------------------------------

TEST(FlowTelemetry, AlwaysOnMetricsCountStartsAndObserveFct) {
  const topology::Topology topo = topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const compiler::CompileResult compiled =
      compiler::compile("minimize((path.len, path.util))", topo);
  const pg::PolicyEvaluator evaluator{compiled.graph, compiled.decomposition};

  SimConfig config;
  config.host_link_bps = 10e9;
  Simulator sim(topo, config);
  std::vector<HostId> senders, receivers;
  for (HostId h : attach_hosts_to_fat_tree_edges(sim, 2)) {
    (h % 2 ? receivers : senders).push_back(h);
  }
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 256e-6;
  dataplane::install_contra_network(sim, compiled, evaluator, options);
  TransportManager transport(sim);

  workload::WorkloadConfig wl;
  wl.load = 0.4;
  wl.sender_capacity_bps = 2e9;
  wl.start = 1e-3;
  wl.duration = 2e-3;
  wl.seed = 7;
  wl.size_scale = 0.05;
  workload::submit(transport, workload::generate_poisson(workload::web_search_flow_sizes(),
                                                         senders, receivers, wl));
  sim.start();
  sim.run_until(10e-3);

  const auto& tel = sim.telemetry();
  const uint64_t started = tel.metrics().value(tel.core().flows_started);
  const uint64_t completed = tel.metrics().value(tel.core().flows_completed);
  EXPECT_GT(started, 0u);
  EXPECT_GE(started, completed);
  EXPECT_GT(completed, 0u);
  // Every completed TCP flow lands one fct_us observation.
  EXPECT_EQ(tel.metrics().histogram_total(tel.core().fct_us), completed);
}

// ---- engine profiler ---------------------------------------------------------

TEST(EngineProfiler, WritesChromeTraceCompleteEvents) {
  obs::EngineProfiler profiler(3);
  EXPECT_EQ(profiler.num_tracks(), 3u);
  EXPECT_EQ(profiler.scheduler_track(), 2u);
  profiler.add_span(0, "phase_run", 1.0, 2.5);
  profiler.add_span(2, "plan", 0.0, 0.5);
  profiler.add_span(2, "barrier", 3.5, 1.0);
  EXPECT_EQ(profiler.num_spans(), 3u);

  std::ostringstream out;
  profiler.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"phase_run\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"barrier\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_EQ(json.find("\"tid\":1"), std::string::npos);  // empty tracks emit nothing
}

}  // namespace
}  // namespace contra::sim
