// Observability subsystem: metrics registry, trace records and sinks,
// convergence tracking, run manifests, env-driven log levels — plus an
// integration run that pins the full instrumented pipeline for a fixed
// configuration.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "lang/policies.h"
#include "obs/convergence.h"
#include "obs/manifest.h"
#include "obs/metrics_registry.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "sim/host.h"
#include "sim/simulator.h"
#include "sim/transport.h"
#include "topology/generators.h"
#include "util/alloc_probe.h"
#include "util/logging.h"

namespace contra {
namespace {

// ----- metrics registry -----------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistograms) {
  obs::MetricsRegistry reg;
  const uint32_t used_by_core = reg.slots_used();  // fresh registry: 0
  EXPECT_EQ(used_by_core, 0u);

  const obs::CounterId c = reg.counter("packets");
  const obs::GaugeId g = reg.gauge("queue_depth");
  const obs::HistogramId h = reg.histogram("latency_us", {1.0, 10.0, 100.0});

  reg.add(c);
  reg.add(c, 4);
  EXPECT_EQ(reg.value(c), 5u);

  reg.set(g, 17);
  reg.set(g, 3);
  EXPECT_EQ(reg.value(g), 3u);

  reg.observe(h, 0.5);    // bucket 0 (<= 1.0)
  reg.observe(h, 1.0);    // bucket 0 (bounds are inclusive upper edges)
  reg.observe(h, 50.0);   // bucket 2
  reg.observe(h, 1e9);    // overflow bucket
  EXPECT_EQ(h.num_buckets, 4u);
  EXPECT_EQ(reg.bucket_value(h, 0), 2u);
  EXPECT_EQ(reg.bucket_value(h, 1), 0u);
  EXPECT_EQ(reg.bucket_value(h, 2), 1u);
  EXPECT_EQ(reg.bucket_value(h, 3), 1u);
  EXPECT_EQ(reg.histogram_total(h), 4u);
}

TEST(MetricsRegistry, SlotExhaustionThrowsLoudly) {
  obs::MetricsRegistry reg;
  for (uint32_t i = 0; i < obs::MetricsRegistry::kMaxSlots; ++i) {
    reg.counter("c" + std::to_string(i));
  }
  EXPECT_EQ(reg.slots_used(), obs::MetricsRegistry::kMaxSlots);
  EXPECT_THROW(reg.counter("one_too_many"), std::length_error);
}

TEST(MetricsRegistry, SnapshotJsonIsOneCompleteLine) {
  obs::MetricsRegistry reg;
  const obs::CounterId c = reg.counter("hits");
  reg.gauge("depth");  // left at zero on purpose: snapshots keep stable keys
  reg.add(c, 7);
  const std::string snap = reg.snapshot_json(1.5);
  EXPECT_EQ(snap.find('\n'), std::string::npos);
  EXPECT_NE(snap.find("\"hits\":7"), std::string::npos);
  EXPECT_NE(snap.find("\"depth\":0"), std::string::npos);
  EXPECT_NE(snap.find("\"t\":1.5"), std::string::npos);
}

TEST(Telemetry, CoreMetricsRegisterAndEmitGates) {
  obs::Telemetry tel;
  EXPECT_FALSE(tel.tracing());
  tel.metrics().add(tel.core().probes_received);
  EXPECT_EQ(tel.metrics().value(tel.core().probes_received), 1u);

  // emit() without a sink is a no-op; with one, records arrive.
  tel.emit({0.1, obs::Ev::kProbeRx});
  obs::MemoryTraceSink sink;
  tel.set_sink(&sink);
  EXPECT_TRUE(tel.tracing());
  tel.emit({0.2, obs::Ev::kRouteFlip});
  tel.set_sink(nullptr);
  tel.emit({0.3, obs::Ev::kDrop});
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].ev, obs::Ev::kRouteFlip);
}

// ----- trace records and JSONL ---------------------------------------------

TEST(Trace, EvNamesRoundTrip) {
  for (size_t i = 0; i < obs::kNumEv; ++i) {
    const auto ev = static_cast<obs::Ev>(i);
    const auto back = obs::ev_from_name(obs::ev_name(ev));
    ASSERT_TRUE(back.has_value()) << obs::ev_name(ev);
    EXPECT_EQ(*back, ev);
  }
  EXPECT_FALSE(obs::ev_from_name("not_an_event").has_value());
}

TEST(Trace, JsonlRoundTripPreservesFields) {
  obs::TraceRecord r;
  r.t = 0.00123456789;
  r.ev = obs::Ev::kProbeAccept;
  r.sw = 3;
  r.dst = 12;
  r.tag = 1;
  r.pid = 2;
  r.link = 40;
  r.aux = 7;
  r.version = 99;
  r.value = 2.5;

  char line[obs::kMaxLineBytes];
  const size_t n = obs::format_jsonl(r, line);
  ASSERT_GT(n, 0u);
  const auto parsed = obs::parse_jsonl_line(std::string_view(line, n));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->t, r.t);
  EXPECT_EQ(parsed->ev, r.ev);
  EXPECT_EQ(parsed->sw, r.sw);
  EXPECT_EQ(parsed->dst, r.dst);
  EXPECT_EQ(parsed->tag, r.tag);
  EXPECT_EQ(parsed->pid, r.pid);
  EXPECT_EQ(parsed->link, r.link);
  EXPECT_EQ(parsed->aux, r.aux);
  EXPECT_EQ(parsed->version, r.version);
  EXPECT_DOUBLE_EQ(parsed->value, r.value);
}

TEST(Trace, JsonlOmitsAbsentFields) {
  obs::TraceRecord r;
  r.t = 1.0;
  r.ev = obs::Ev::kLinkDown;
  r.link = 5;  // everything else stays at its sentinel / zero default
  char line[obs::kMaxLineBytes];
  const size_t n = obs::format_jsonl(r, line);
  const std::string_view text(line, n);
  EXPECT_NE(text.find("\"ev\":\"link_down\""), std::string_view::npos);
  EXPECT_NE(text.find("\"link\":5"), std::string_view::npos);
  EXPECT_EQ(text.find("\"sw\""), std::string_view::npos);
  EXPECT_EQ(text.find("\"dst\""), std::string_view::npos);

  const auto parsed = obs::parse_jsonl_line(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sw, obs::kNoField);
  EXPECT_EQ(parsed->dst, obs::kNoField);
  EXPECT_EQ(parsed->link, 5u);
}

TEST(Trace, ReadJsonlSkipsAndCountsMalformedLines) {
  std::stringstream stream;
  obs::TraceRecord r;
  r.t = 0.5;
  r.ev = obs::Ev::kProbeRx;
  r.sw = 1;
  obs::JsonlTraceSink sink(stream);
  sink.write(r);
  stream << "this is not json\n";
  stream << "{\"t\":1.0,\"ev\":\"no_such_event\"}\n";
  r.t = 0.75;
  sink.write(r);
  sink.flush();
  EXPECT_EQ(sink.records_written(), 2u);

  size_t bad = 0;
  const std::vector<obs::TraceRecord> records = obs::read_jsonl(stream, &bad);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(bad, 2u);
  EXPECT_DOUBLE_EQ(records[0].t, 0.5);
  EXPECT_DOUBLE_EQ(records[1].t, 0.75);
}

TEST(Trace, FanoutDuplicatesToEverySink) {
  obs::MemoryTraceSink a, b;
  obs::FanoutSink fanout;
  fanout.add(&a);
  fanout.add(&b);
  fanout.write({1.0, obs::Ev::kDrop});
  fanout.write({2.0, obs::Ev::kDrop});
  EXPECT_EQ(a.records().size(), 2u);
  EXPECT_EQ(b.records().size(), 2u);
}

// ----- convergence tracker --------------------------------------------------

obs::TraceRecord flip(double t, uint32_t dst) {
  obs::TraceRecord r;
  r.t = t;
  r.ev = obs::Ev::kRouteFlip;
  r.sw = 0;
  r.dst = dst;
  return r;
}

TEST(Convergence, PerDestinationQuiescenceAndReconvergence) {
  obs::ConvergenceTracker tracker;
  tracker.observe(flip(0.001, 8));
  tracker.observe(flip(0.002, 8));
  tracker.observe(flip(0.0015, 9));

  obs::TraceRecord down;
  down.t = 0.010;
  down.ev = obs::Ev::kLinkDown;
  down.link = 3;
  tracker.observe(down);

  tracker.observe(flip(0.012, 8));
  tracker.observe(flip(0.013, 8));

  const obs::ConvergenceTracker::Report report = tracker.report();
  EXPECT_EQ(report.total_records, 6u);
  EXPECT_EQ(report.count(obs::Ev::kRouteFlip), 5u);
  EXPECT_DOUBLE_EQ(report.first_failure_at, 0.010);
  ASSERT_EQ(report.destinations.size(), 2u);

  const obs::ConvergenceTracker::DestReport& d8 = report.destinations[0];
  EXPECT_EQ(d8.dst, 8u);
  EXPECT_EQ(d8.flips, 4u);
  EXPECT_DOUBLE_EQ(d8.first_route_at, 0.001);
  EXPECT_DOUBLE_EQ(d8.quiesced_at, 0.013);
  EXPECT_EQ(d8.post_failure_flips, 2u);
  EXPECT_NEAR(d8.reconvergence_s, 0.003, 1e-12);

  const obs::ConvergenceTracker::DestReport& d9 = report.destinations[1];
  EXPECT_EQ(d9.dst, 9u);
  EXPECT_EQ(d9.flips, 1u);
  EXPECT_EQ(d9.post_failure_flips, 0u);
  EXPECT_DOUBLE_EQ(d9.reconvergence_s, -1.0);  // never flipped after failure

  EXPECT_NE(report.to_string().find("first failure"), std::string::npos);
}

TEST(Convergence, ReplayFromJsonlMatchesLiveTracking) {
  // The tracker must not care whether records arrive live or from a file.
  obs::ConvergenceTracker live;
  std::stringstream stream;
  obs::JsonlTraceSink file(stream);
  obs::FanoutSink fanout;
  fanout.add(&live);
  fanout.add(&file);

  fanout.write(flip(0.001, 4));
  obs::TraceRecord down;
  down.t = 0.002;
  down.ev = obs::Ev::kFailureDetect;
  down.sw = 1;
  down.link = 9;
  fanout.write(down);
  fanout.write(flip(0.003, 4));

  obs::ConvergenceTracker replayed;
  replayed.observe_all(obs::read_jsonl(stream));
  EXPECT_EQ(replayed.report().to_string(), live.report().to_string());
}

// ----- run manifest ---------------------------------------------------------

TEST(Manifest, HashCoversConfigButNotBuild) {
  obs::RunManifest m = obs::RunManifest::make("contrasim");
  EXPECT_FALSE(m.build_type.empty());
  EXPECT_FALSE(m.compiler.empty());
  m.topology = "fat-tree:4";
  m.plane = "contra";
  m.policy = "minimize(path.util)";
  m.seed = 1;

  obs::RunManifest same = m;
  same.build_type = "different-build";
  same.compiler = "different-compiler";
  EXPECT_EQ(m.config_hash(), same.config_hash());

  obs::RunManifest reseeded = m;
  reseeded.seed = 2;
  EXPECT_NE(m.config_hash(), reseeded.config_hash());
  EXPECT_NE(m.canonical_config(), reseeded.canonical_config());
}

TEST(Manifest, JsonHasRequiredFieldsAndWrites) {
  obs::RunManifest m = obs::RunManifest::make("contrasim");
  m.topology = "fat-tree:4";
  m.plane = "contra";
  m.seed = 42;
  m.duration_s = 0.01;
  const std::string json = m.to_json();
  for (const char* key : {"\"schema\"", "\"tool\"", "\"topology\"", "\"nodes\"",
                          "\"links\"", "\"plane\"", "\"seed\"", "\"duration_s\"",
                          "\"config_hash\"", "\"build\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }

  const std::string path = ::testing::TempDir() + "obs_manifest_test.json";
  ASSERT_TRUE(m.write(path));
  std::ifstream in(path);
  std::stringstream read_back;
  read_back << in.rdbuf();
  EXPECT_EQ(read_back.str(), json);
  std::filesystem::remove(path);
}

TEST(Manifest, PathConvention) {
  EXPECT_EQ(obs::manifest_path_for("run/trace.jsonl"), "run/trace.manifest.json");
  EXPECT_EQ(obs::manifest_path_for("trace.bin"), "trace.bin.manifest.json");
}

// ----- log level from environment -------------------------------------------

TEST(Logging, ParseLogLevelNames) {
  using util::LogLevel;
  EXPECT_EQ(util::parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(util::parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(util::parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(util::parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(util::parse_log_level("none"), LogLevel::kOff);
  EXPECT_FALSE(util::parse_log_level("loud").has_value());
  EXPECT_FALSE(util::parse_log_level("").has_value());
}

TEST(Logging, InitFromEnvironment) {
  const util::LogLevel saved = util::log_level();
  ::setenv("CONTRA_LOG_LEVEL", "error", 1);
  EXPECT_EQ(util::init_log_level_from_env(), util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);

  ::setenv("CONTRA_LOG_LEVEL", "not-a-level", 1);
  EXPECT_FALSE(util::init_log_level_from_env().has_value());
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);  // unchanged

  ::unsetenv("CONTRA_LOG_LEVEL");
  EXPECT_FALSE(util::init_log_level_from_env().has_value());
  util::set_log_level(saved);
}

// ----- instrumented pipeline integration ------------------------------------

struct TracedRun {
  obs::MemoryTraceSink trace;
  obs::ConvergenceTracker convergence;
  uint64_t probes_received = 0;
  uint64_t probes_accepted = 0;
  uint64_t route_flips = 0;
  double fail_time = 0.0;
};

// Probe-only fat-tree k=4 run with one edge→agg cable failure mid-run. No
// workload and no randomness: every event — and therefore every trace
// record — is a deterministic function of this configuration.
std::unique_ptr<TracedRun> run_traced_failover() {
  auto out = std::make_unique<TracedRun>();
  const topology::Topology topo =
      topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const compiler::CompileResult compiled =
      compiler::compile(lang::policies::shortest_widest(), topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  sim::Simulator sim(topo, sim::SimConfig{});
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 256e-6;
  dataplane::install_contra_network(sim, compiled, evaluator, options);

  obs::FanoutSink fanout;
  fanout.add(&out->trace);
  fanout.add(&out->convergence);
  sim.telemetry().set_sink(&fanout);

  sim.start();
  sim.run_until(5e-3);
  sim.fail_cable(topo.link_between(topo.find("e0_0"), topo.find("a0_0")));
  out->fail_time = sim.now();
  sim.run_until(10e-3);

  const obs::Telemetry& tel = sim.telemetry();
  out->probes_received = tel.metrics().value(tel.core().probes_received);
  out->probes_accepted = tel.metrics().value(tel.core().probes_accepted);
  out->route_flips = tel.metrics().value(tel.core().route_flips);
  sim.telemetry().set_sink(nullptr);
  return out;
}

TEST(ObsIntegration, TracedFailoverReportsReconvergence) {
  const std::unique_ptr<TracedRun> run = run_traced_failover();

  // Counters and trace agree with each other.
  std::array<uint64_t, obs::kNumEv> counts{};
  for (const obs::TraceRecord& r : run->trace.records()) {
    ++counts[static_cast<size_t>(r.ev)];
  }
  EXPECT_EQ(counts[static_cast<size_t>(obs::Ev::kProbeRx)], run->probes_received);
  EXPECT_EQ(counts[static_cast<size_t>(obs::Ev::kProbeAccept)], run->probes_accepted);
  EXPECT_EQ(counts[static_cast<size_t>(obs::Ev::kRouteFlip)], run->route_flips);
  EXPECT_EQ(counts[static_cast<size_t>(obs::Ev::kLinkDown)], 1u);
  EXPECT_GT(run->probes_received, 0u);
  EXPECT_GT(run->route_flips, 0u);

  // The convergence tracker saw the failure and at least one destination
  // re-converged after it, within the detection window.
  const obs::ConvergenceTracker::Report report = run->convergence.report();
  EXPECT_DOUBLE_EQ(report.first_failure_at, run->fail_time);
  EXPECT_FALSE(report.destinations.empty());
  bool any_reconverged = false;
  for (const auto& d : report.destinations) {
    if (d.reconvergence_s >= 0) {
      any_reconverged = true;
      EXPECT_LT(d.reconvergence_s, 5e-3);  // well before the run ends
    }
  }
  EXPECT_TRUE(any_reconverged);
}

TEST(ObsIntegration, TracedFailoverRecordCountsArePinned) {
  // Full determinism: the same configuration must yield byte-identical
  // traces, run to run and build to build. Golden counts pinned from the
  // first verified run; a diff here means the control-plane behaviour (or
  // its instrumentation) changed — either fix the regression or re-pin
  // with the change that justifies it.
  const std::unique_ptr<TracedRun> run = run_traced_failover();
  const obs::ConvergenceTracker::Report report = run->convergence.report();
  // Re-pinned when probe delta-suppression landed: probe traffic roughly
  // halves (suppress_refresh_rounds=2), origination is unchanged.
  EXPECT_EQ(run->trace.records().size(), 42418u);
  EXPECT_EQ(report.count(obs::Ev::kProbeOrig), 2560u);
  EXPECT_EQ(report.count(obs::Ev::kProbeRx), 19696u);
  EXPECT_EQ(report.count(obs::Ev::kProbeAccept), 7980u);
  EXPECT_EQ(report.count(obs::Ev::kProbeRejectRank), 10520u);
  EXPECT_GT(report.count(obs::Ev::kProbeSuppress), 0u);
  EXPECT_EQ(report.count(obs::Ev::kDenseFallback), 0u);
  EXPECT_EQ(report.count(obs::Ev::kRouteFlip), 45u);
  EXPECT_EQ(report.count(obs::Ev::kLinkDown), 1u);
  EXPECT_EQ(report.count(obs::Ev::kDrop), 420u);

  // And the run is exactly repeatable within one process.
  const std::unique_ptr<TracedRun> again = run_traced_failover();
  EXPECT_EQ(again->trace.records().size(), run->trace.records().size());
  EXPECT_EQ(again->convergence.report().to_string(), report.to_string());
}

TEST(ObsIntegration, SteadyStateWithCountersOnlyIsAllocationFree) {
  // The telemetry contract: counters always on, and with no sink attached
  // the warmed-up probe loop performs zero heap allocations.
  const topology::Topology topo =
      topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const compiler::CompileResult compiled =
      compiler::compile(lang::policies::shortest_widest(), topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  sim::Simulator sim(topo, sim::SimConfig{});
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 128e-6;
  dataplane::install_contra_network(sim, compiled, evaluator, options);
  sim.start();
  sim.run_until(4e-3);  // warm-up: tables converge, pools fill

  const uint64_t probes_before =
      sim.telemetry().metrics().value(sim.telemetry().core().probes_received);
  const uint64_t allocs_before = util::alloc_count();
  sim.run_until(8e-3);
  EXPECT_EQ(util::alloc_count() - allocs_before, 0u);
  EXPECT_GT(sim.telemetry().metrics().value(sim.telemetry().core().probes_received),
            probes_before);
}

// One warmed-up fat-tree run with a transport attached and a UDP stream over
// [1ms, 5ms). Returns (allocations during the active-flow window 2-4ms,
// allocations during the post-flow probe-only window 6.5-9ms, UDP bytes).
struct DataPathAllocs {
  uint64_t active_window = 0;
  uint64_t quiet_window = 0;
  uint64_t udp_bytes = 0;
};

DataPathAllocs run_data_path_alloc_probe(bool flow_telemetry) {
  const topology::Topology topo =
      topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const compiler::CompileResult compiled =
      compiler::compile(lang::policies::shortest_widest(), topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  sim::Simulator sim(topo, sim::SimConfig{});
  const std::vector<sim::HostId> senders =
      sim::attach_hosts(sim, {topo.find("e0_0")});
  const std::vector<sim::HostId> receivers =
      sim::attach_hosts(sim, {topo.find("e1_1")});
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 128e-6;
  dataplane::install_contra_network(sim, compiled, evaluator, options);
  sim::TransportManager transport(sim);
  sim.set_flow_telemetry(flow_telemetry);
  transport.start_udp_flow(senders[0], receivers[0], /*rate_bps=*/200e6,
                           /*start_time=*/1e-3, /*stop_time=*/5e-3);
  sim.start();
  sim.run_until(2e-3);  // warm-up: tables converge, pools fill

  DataPathAllocs out;
  uint64_t before = util::alloc_count();
  sim.run_until(4e-3);
  out.active_window = util::alloc_count() - before;
  sim.run_until(6.5e-3);  // flow ends at 5ms; let in-flight packets drain
  before = util::alloc_count();
  sim.run_until(9e-3);
  out.quiet_window = util::alloc_count() - before;
  out.udp_bytes = transport.udp_bytes_received();
  return out;
}

TEST(ObsIntegration, FlowTelemetryHookSitesAddZeroAllocations) {
  // The PR-2 overhead contract extended to the flow-telemetry hook sites.
  // Two guarantees, both with no FlowTracker attached and path sampling off:
  //  * once the data flow ends, the probe loop with a transport attached
  //    (hook branches present but disabled) is back to zero allocations;
  //  * turning path-signature stamping on (set_flow_telemetry) adds exactly
  //    zero allocations to the data path — the runs are deterministic, so
  //    the per-window counts must match the telemetry-off run bit-for-bit.
  const DataPathAllocs off = run_data_path_alloc_probe(false);
  const DataPathAllocs on = run_data_path_alloc_probe(true);
  EXPECT_GT(off.udp_bytes, 0u);
  EXPECT_EQ(off.udp_bytes, on.udp_bytes);
  EXPECT_EQ(off.quiet_window, 0u);
  EXPECT_EQ(on.quiet_window, 0u);
  EXPECT_EQ(off.active_window, on.active_window);
}

}  // namespace
}  // namespace contra
