// Property-style parameterized sweeps over (policy × topology):
//  * the protocol converges and every policy-valid pair gets a route;
//  * converged ranks equal the reference evaluator's optimum over all
//    simple paths (for additive policies, exactly; for util policies, up to
//    the probe-traffic noise floor);
//  * forwarding follows product-graph edges (policy compliance by
//    construction).
#include <gtest/gtest.h>

#include <deque>
#include <functional>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "lang/eval.h"
#include "lang/parser.h"
#include "sim/transport.h"
#include "topology/abilene.h"
#include "topology/generators.h"

namespace contra {
namespace {

using topology::NodeId;
using topology::Topology;

struct Scenario {
  const char* name;
  std::function<Topology()> topo;
  const char* policy;
};

std::ostream& operator<<(std::ostream& os, const Scenario& s) { return os << s.name; }

class ConvergenceSweep : public ::testing::TestWithParam<Scenario> {};

/// All simple paths src -> dst (bounded DFS; test topologies are small).
void enumerate_paths(const Topology& topo, NodeId at, NodeId dst,
                     std::vector<NodeId>& stack, std::vector<bool>& visited,
                     const std::function<void(const std::vector<NodeId>&)>& yield) {
  if (at == dst) {
    yield(stack);
    return;
  }
  for (topology::LinkId l : topo.out_links(at)) {
    const NodeId next = topo.link(l).to;
    if (visited[next]) continue;
    visited[next] = true;
    stack.push_back(next);
    enumerate_paths(topo, next, dst, stack, visited, yield);
    stack.pop_back();
    visited[next] = false;
  }
}

lang::Rank reference_best_rank(const Topology& topo, const lang::Policy& policy, NodeId src,
                               NodeId dst) {
  lang::Rank best = lang::Rank::infinity();
  std::vector<NodeId> stack{src};
  std::vector<bool> visited(topo.num_nodes(), false);
  visited[src] = true;
  enumerate_paths(topo, src, dst, stack, visited, [&](const std::vector<NodeId>& nodes) {
    lang::ConcretePath path;
    for (NodeId n : nodes) path.nodes.push_back(topo.name(n));
    for (size_t i = 0; i + 1 < nodes.size(); ++i) {
      const auto& link = topo.link(topo.link_between(nodes[i], nodes[i + 1]));
      // Idle network: util 0; lat in microseconds (the mv convention).
      path.links.push_back(lang::LinkMetrics{0.0, link.delay_s * 1e6});
    }
    best = lang::Rank::min(best, lang::evaluate(policy, path));
  });
  return best;
}

TEST_P(ConvergenceSweep, ConvergedRanksMatchReferenceOptimum) {
  const Scenario& scenario = GetParam();
  const Topology topo = scenario.topo();
  const lang::Policy policy = lang::parse_policy(scenario.policy);
  const compiler::CompileResult compiled = compiler::compile(policy, topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  sim::Simulator sim(topo, sim::SimConfig{});
  auto switches = dataplane::install_contra_network(sim, compiled, evaluator);
  sim.start();
  sim.run_until(20e-3);  // idle network: only probes run

  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
      if (src == dst) continue;
      const lang::Rank reference = reference_best_rank(topo, policy, src, dst);
      const auto best = switches[src]->best_choice(dst, sim.now());
      if (reference.is_infinite()) {
        EXPECT_FALSE(best.has_value())
            << scenario.name << " " << topo.name(src) << "->" << topo.name(dst);
        continue;
      }
      ASSERT_TRUE(best.has_value())
          << scenario.name << " " << topo.name(src) << "->" << topo.name(dst);
      // Probe traffic perturbs utilization by well under 0.02; compare the
      // rank vectors component-wise with that tolerance.
      const auto& got = best->rank.components();
      const auto& want = reference.components();
      ASSERT_FALSE(best->rank.is_infinite());
      const size_t width = std::max(got.size(), want.size());
      for (size_t i = 0; i < width; ++i) {
        const double g = i < got.size() ? got[i].to_double() : 0.0;
        const double w = i < want.size() ? want[i].to_double() : 0.0;
        EXPECT_NEAR(g, w, 0.02) << scenario.name << " " << topo.name(src) << "->"
                                << topo.name(dst) << " component " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyTopologyMatrix, ConvergenceSweep,
    ::testing::Values(
        Scenario{"len_ring", [] { return topology::ring(6); }, "minimize(path.len)"},
        Scenario{"len_grid", [] { return topology::grid(3, 3); }, "minimize(path.len)"},
        Scenario{"len_abilene", [] { return topology::abilene(1e9, 0.001); },
                 "minimize(path.len)"},
        Scenario{"util_ring", [] { return topology::ring(5); }, "minimize(path.util)"},
        Scenario{"util_diamond", [] { return topology::running_example(); },
                 "minimize(path.util)"},
        Scenario{"lat_abilene", [] { return topology::abilene(1e9, 0.001); },
                 "minimize(path.lat)"},
        Scenario{"wsp_grid", [] { return topology::grid(2, 3); },
                 "minimize((path.util, path.len))"},
        Scenario{"waypoint_diamond", [] { return topology::running_example(); },
                 "minimize(if .* B .* then path.len else inf)"},
        Scenario{"weighted_ring", [] { return topology::ring(5); },
                 "minimize((if .* n1 n2 .* then 10 else 0) + path.len)"},
        Scenario{"ca_diamond", [] { return topology::running_example(); },
                 "minimize(if path.util < .8 then (1, 0, path.util) "
                 "else (2, path.len, path.util))"}),
    [](const ::testing::TestParamInfo<Scenario>& info) { return info.param.name; });

// Forwarding compliance: with a waypoint policy, every data packet's tag
// transition stays inside the product graph — checked here end-to-end by
// delivering flows and asserting zero "no_route" policy-violation drops
// after convergence.
TEST(Properties, NoRouteDropsOnlyBeforeConvergence) {
  const Topology topo = topology::abilene(1e9, 0.001);
  const compiler::CompileResult compiled =
      compiler::compile("minimize(path.util)", topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  sim::Simulator sim(topo, sim::SimConfig{});
  auto switches = dataplane::install_contra_network(sim, compiled, evaluator);
  sim::TransportManager transport(sim);
  const sim::HostId a = sim.add_host(0);
  const sim::HostId b = sim.add_host(topo.num_nodes() - 1);
  sim.start();
  sim.run_until(5e-3);
  for (int i = 0; i < 10; ++i) {
    transport.start_flow(a, b, 40'000, sim.now() + i * 1e-4);
    transport.start_flow(b, a, 40'000, sim.now() + i * 1e-4);
  }
  sim.run_until(sim.now() + 0.3);
  EXPECT_EQ(transport.completed_flows().size(), 20u);
  uint64_t no_route = 0;
  for (const auto* sw : switches) no_route += sw->stats().data_dropped_no_route;
  EXPECT_EQ(no_route, 0u);
}

// Determinism: identical seeds and schedules produce identical outcomes.
TEST(Properties, SimulationIsDeterministic) {
  auto run_once = [] {
    const Topology topo = topology::fat_tree(4, topology::LinkParams{1e9, 1e-6});
    const compiler::CompileResult compiled =
        compiler::compile("minimize(path.util)", topo);
    const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
    sim::SimConfig config;
    config.host_link_bps = 1e9;
    sim::Simulator sim(topo, config);
    dataplane::install_contra_network(sim, compiled, evaluator);
    sim::TransportManager transport(sim);
    const sim::HostId a = sim.add_host(topo.find("e0_0"));
    const sim::HostId b = sim.add_host(topo.find("e3_1"));
    sim.start();
    sim.run_until(2e-3);
    for (int i = 0; i < 5; ++i) transport.start_flow(a, b, 30'000 + i * 1000, sim.now());
    sim.run_until(sim.now() + 0.1);
    std::vector<double> fcts;
    for (const auto& f : transport.completed_flows()) fcts.push_back(f.fct());
    return fcts;
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), 5u);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) EXPECT_DOUBLE_EQ(first[i], second[i]);
}

}  // namespace
}  // namespace contra
