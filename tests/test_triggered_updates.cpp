// Triggered-update engine tests (§12): steady-state probe suppression with
// fixed-point parity against the periodic engine, hold-down damping under a
// flapping link, focused failure waves, recovery resync, keepalive liveness,
// and oracle agreement of the post-flap fixed point.
#include <gtest/gtest.h>

#include <vector>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "obs/telemetry.h"
#include "oracle/checker.h"
#include "oracle/oracle.h"
#include "oracle/quiesce.h"
#include "sim/failure_schedule.h"
#include "sim/host.h"
#include "sim/simulator.h"
#include "sim/transport.h"
#include "topology/generators.h"
#include "workload/generator.h"

namespace contra::dataplane {
namespace {

using topology::Topology;

constexpr double kPeriod = 64e-6;

struct TriggeredWorld {
  TriggeredWorld(Topology topology, bool triggered, uint32_t keepalive_rounds = 32)
      : topo(std::move(topology)),
        compiled(compiler::compile("minimize((path.len, path.util))", topo)),
        evaluator(compiled.graph, compiled.decomposition),
        sim(topo, sim::SimConfig{}) {
    ContraSwitchOptions options;
    options.probe_period_s = kPeriod;
    options.triggered_updates = triggered;
    // The keepalive cadence bounds the best achievable steady-state
    // suppression at 1 - 1/K: the >= 90% reduction assertion needs the
    // production K=32; the liveness/flap tests shorten it to keep sim
    // windows small.
    options.keepalive_rounds = keepalive_rounds;
    options.holddown_periods = 2.0;
    switches = install_contra_network(sim, compiled, evaluator, options);
  }

  uint64_t probes_received() const {
    uint64_t total = 0;
    for (const ContraSwitch* sw : switches) total += sw->stats().probes_received;
    return total;
  }

  uint64_t stat_sum(uint64_t ContraSwitchStats::* field) const {
    uint64_t total = 0;
    for (const ContraSwitch* sw : switches) total += sw->stats().*field;
    return total;
  }

  uint64_t usable_digest() const {
    const std::vector<const ContraSwitch*> view(switches.begin(), switches.end());
    return oracle::usable_fwdt_digest(view, sim.now());
  }

  oracle::CheckReport check_against_oracle(const oracle::LinkState& links) const {
    oracle::RouteOracle oracle(compiled.graph, evaluator, links);
    const std::vector<const ContraSwitch*> view(switches.begin(), switches.end());
    return oracle::check_invariants(oracle, view, sim.now(),
                                    oracle::options_for(compiled.isotonicity));
  }

  Topology topo;
  compiler::CompileResult compiled;
  pg::PolicyEvaluator evaluator;
  sim::Simulator sim;
  std::vector<ContraSwitch*> switches;
};

Topology test_fabric() { return topology::fat_tree(4, topology::LinkParams{10e9, 1e-6}); }

// Post-convergence, the triggered engine's probe traffic collapses to the
// keepalive backstop: >= 90% fewer deliveries than the periodic engine over
// the same window, while both engines hold the identical usable-FwdT fixed
// point (the §12 acceptance contract, also enforced by bench_core_speed and
// contrafuzz --cross-check-triggered).
TEST(TriggeredUpdates, SteadyStateSuppressionWithFixedPointParity) {
  TriggeredWorld periodic(test_fabric(), false);
  TriggeredWorld trig(test_fabric(), true);
  const double converge_s = 80 * kPeriod;
  const double window_s = 160 * kPeriod;

  periodic.sim.start();
  trig.sim.start();
  periodic.sim.run_until(converge_s);
  trig.sim.run_until(converge_s);
  const uint64_t periodic_before = periodic.probes_received();
  const uint64_t trig_before = trig.probes_received();
  periodic.sim.run_until(converge_s + window_s);
  trig.sim.run_until(converge_s + window_s);

  const uint64_t periodic_window = periodic.probes_received() - periodic_before;
  const uint64_t trig_window = trig.probes_received() - trig_before;
  ASSERT_GT(periodic_window, 0u);
  EXPECT_LE(trig_window * 10, periodic_window)
      << "triggered window " << trig_window << " vs periodic " << periodic_window;
  EXPECT_GT(trig_window, 0u) << "keepalive backstop went silent";
  EXPECT_EQ(periodic.usable_digest(), trig.usable_digest());
}

// A link flapping faster than the hold-down window must not multiply trigger
// traffic: emissions coalesce on the trailing edge, the deferral counter
// records the damping, and once the flapping stops the network still settles
// on the oracle's fixed point for the final (all-up) link state.
TEST(TriggeredUpdates, HoldDownDampsFlappingLink) {
  TriggeredWorld trig(test_fabric(), true, /*keepalive_rounds=*/8);
  const topology::LinkId victim =
      trig.topo.link_between(trig.topo.find("a0_0"), trig.topo.find("c0"));
  sim::FailureSchedule schedule;
  // 12 flaps, half a hold-down window apart (hold-down = 2 periods).
  double t = 80 * kPeriod;
  for (int i = 0; i < 12; ++i) {
    schedule.fail_at(t, victim);
    schedule.restore_at(t + 0.5 * kPeriod, victim);
    t += kPeriod;
  }
  schedule.arm(trig.sim);
  trig.sim.start();
  trig.sim.run_until(80 * kPeriod);
  const uint64_t triggered_before = trig.stat_sum(&ContraSwitchStats::probes_triggered);
  trig.sim.run_until(t + 4 * kPeriod);  // flap window + trailing-edge flushes
  const uint64_t triggered_during =
      trig.stat_sum(&ContraSwitchStats::probes_triggered) - triggered_before;
  EXPECT_GT(trig.stat_sum(&ContraSwitchStats::probes_holddown_deferred), 0u)
      << "hold-down never deferred a trigger during the flap storm";
  // Un-damped, every one of the 24 transitions would re-advertise the full
  // affected row set; the trailing-edge coalescing must do materially better
  // than half of that.
  const uint64_t full_wave = trig.stat_sum(&ContraSwitchStats::probes_originated);
  EXPECT_LT(triggered_during, full_wave)
      << "flap storm triggered more copies than the whole periodic history";

  trig.sim.run_until(t + 60 * kPeriod);  // settle: several keepalive cycles
  const oracle::CheckReport report =
      trig.check_against_oracle(oracle::LinkState::all_up(trig.topo));
  EXPECT_TRUE(report.ok()) << report.to_string(trig.topo);
}

// A single failed cable produces a focused trigger wave, not a full-fabric
// flood: the triggered engine spends fewer probe deliveries on the recovery
// window than the periodic engine does on the same window, and the post-flap
// fixed point matches the oracle computed on the failed link state.
TEST(TriggeredUpdates, FailureWaveIsFocusedAndConvergesToOracle) {
  TriggeredWorld periodic(test_fabric(), false);
  // K=8 so the scaled metric-expiry window (12 periods x K) fits the
  // post-failure settle below.
  TriggeredWorld trig(test_fabric(), true, /*keepalive_rounds=*/8);
  const double fail_t = 80 * kPeriod;
  const double window_s = 48 * kPeriod;
  auto run_mode = [&](TriggeredWorld& world) {
    const topology::LinkId victim =
        world.topo.link_between(world.topo.find("a0_0"), world.topo.find("c0"));
    world.sim.start();
    world.sim.run_until(fail_t);
    const uint64_t before = world.probes_received();
    world.sim.fail_cable(victim);
    world.sim.run_until(fail_t + window_s);
    return world.probes_received() - before;
  };
  const uint64_t periodic_wave = run_mode(periodic);
  const uint64_t trig_wave = run_mode(trig);
  EXPECT_LT(trig_wave, periodic_wave);

  // Let expiries/poisons resolve (scaled by the keepalive cadence), then the
  // surviving usable state must be the oracle fixed point for the failed
  // fabric.
  trig.sim.run_until(fail_t + 200 * kPeriod);
  oracle::LinkState links = oracle::LinkState::all_up(trig.topo);
  links.fail_cable(trig.topo,
                   trig.topo.link_between(trig.topo.find("a0_0"), trig.topo.find("c0")));
  const oracle::CheckReport report = trig.check_against_oracle(links);
  EXPECT_TRUE(report.ok()) << report.to_string(trig.topo);
}

// Fail + restore: the recovery resync must rebuild the exact pre-failure
// fixed point, and it must match a periodic run subjected to the same
// schedule (digest parity through a failure/recovery cycle, not just in
// steady state).
TEST(TriggeredUpdates, RecoveryResyncRestoresFixedPoint) {
  TriggeredWorld periodic(test_fabric(), false);
  TriggeredWorld trig(test_fabric(), true, /*keepalive_rounds=*/8);
  auto run_mode = [&](TriggeredWorld& world) {
    const topology::LinkId victim =
        world.topo.link_between(world.topo.find("a0_0"), world.topo.find("c0"));
    sim::FailureSchedule schedule;
    schedule.fail_at(80 * kPeriod, victim);
    schedule.restore_at(140 * kPeriod, victim);
    schedule.arm(world.sim);
    world.sim.start();
    world.sim.run_until(400 * kPeriod);
  };
  run_mode(periodic);
  run_mode(trig);
  EXPECT_EQ(periodic.usable_digest(), trig.usable_digest());
  const oracle::CheckReport report =
      trig.check_against_oracle(oracle::LinkState::all_up(trig.topo));
  EXPECT_TRUE(report.ok()) << report.to_string(trig.topo);
}

// The keepalive backstop is the liveness guarantee: across many silent
// keepalive cycles no usable entry may expire, keepalive deliveries must
// keep flowing, and the silent gaps must stay genuinely silent (no probe
// deliveries between keepalive rounds once converged).
TEST(TriggeredUpdates, KeepaliveBackstopKeepsRowsAlive) {
  TriggeredWorld trig(test_fabric(), true, /*keepalive_rounds=*/8);
  trig.sim.start();
  trig.sim.run_until(80 * kPeriod);
  const uint64_t usable_at_converge = [&] {
    uint64_t n = 0;
    for (const ContraSwitch* sw : trig.switches) {
      sw->for_each_fwd_entry([&](topology::NodeId, uint32_t, uint32_t,
                                 const ContraSwitch::FwdEntry& e) {
        if (sw->entry_usable(e, trig.sim.now())) ++n;
      });
    }
    return n;
  }();
  ASSERT_GT(usable_at_converge, 0u);
  const uint64_t keepalives_before = trig.stat_sum(&ContraSwitchStats::keepalive_probes);
  const uint64_t received_before = trig.probes_received();

  trig.sim.run_until(80 * kPeriod + 20 * 8 * kPeriod);  // 20 keepalive cycles
  uint64_t usable_later = 0;
  for (const ContraSwitch* sw : trig.switches) {
    sw->for_each_fwd_entry([&](topology::NodeId, uint32_t, uint32_t,
                               const ContraSwitch::FwdEntry& e) {
      if (sw->entry_usable(e, trig.sim.now())) ++usable_later;
    });
  }
  EXPECT_EQ(usable_later, usable_at_converge) << "rows expired between keepalives";
  const uint64_t keepalive_window =
      trig.stat_sum(&ContraSwitchStats::keepalive_probes) - keepalives_before;
  EXPECT_GT(keepalive_window, 0u);
  // All steady-state deliveries should BE keepalive deliveries (the silent
  // gap contract) — allow a small slop for resync edges.
  const uint64_t received_window = trig.probes_received() - received_before;
  EXPECT_GE(keepalive_window * 10, received_window * 9);
}

// Regression for the §12 echo-relay rule: under live traffic, probe bytes
// move the very util EWMA the probes advertise, so a same-version successor
// echo re-ranks on every relay pass. If such echoes ride the legacy keepalive
// relay instead of the hold-down-damped delta path, each keepalive round
// ignites a self-sustaining probe storm (the original repro went from ~8k
// probes to 5.4M the moment a loaded run crossed its first keepalive round).
// The quiesced tests above can't see this — only a loaded fabric can.
TEST(TriggeredUpdates, LoadedKeepaliveRoundsStayBounded) {
  auto run_plane = [](bool triggered) {
    const double rate = 1e9;
    const Topology topo = topology::fat_tree(4, topology::LinkParams{rate, 1e-6});
    sim::SimConfig config;
    config.host_link_bps = rate;
    sim::Simulator sim(topo, config);
    const auto hosts = sim::attach_hosts_to_fat_tree_edges(sim, 2);
    std::vector<sim::HostId> senders, receivers;
    for (sim::HostId h : hosts) (h % 2 ? receivers : senders).push_back(h);

    compiler::CompileResult compiled =
        compiler::compile("minimize((path.len, path.util))", topo);
    pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
    ContraSwitchOptions options;
    options.probe_period_s = kPeriod;
    options.triggered_updates = triggered;
    options.keepalive_rounds = 8;
    options.holddown_periods = 2.0;
    const auto switches = install_contra_network(sim, compiled, evaluator, options);

    sim::TransportManager transport(sim);
    workload::WorkloadConfig wl;
    wl.load = 0.5;
    wl.sender_capacity_bps = rate;
    wl.start = 16 * kPeriod;
    wl.duration = 64 * kPeriod;  // the loaded window spans 8 keepalive rounds
    wl.seed = 7;
    wl.size_scale = 0.05;
    const auto flows = workload::generate_poisson(workload::web_search_flow_sizes(),
                                                  senders, receivers, wl);
    workload::submit(transport, flows);

    sim.start();
    sim.run_until(wl.start + wl.duration + 16 * kPeriod);
    uint64_t received = 0;
    for (const ContraSwitch* sw : switches) received += sw->stats().probes_received;
    return received;
  };

  const uint64_t periodic_received = run_plane(false);
  const uint64_t trig_received = run_plane(true);
  ASSERT_GT(trig_received, 0u);
  // A storm makes the triggered run dwarf the periodic flood by orders of
  // magnitude; healthy triggered mode stays strictly below it even with
  // util deltas flowing.
  EXPECT_LT(trig_received, periodic_received)
      << "triggered engine relayed more probes under load than a full "
         "periodic flood — keepalive echo storm";
}

}  // namespace
}  // namespace contra::dataplane
