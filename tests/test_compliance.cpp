// End-to-end policy compliance (the paper's "Policy-compliant" objective):
// every data packet that reaches its destination host must have traversed a
// switch sequence matching the policy — audited from the simulator's packet
// traces across a matrix of (policy × topology) under live traffic and
// shifting preferences.
#include <gtest/gtest.h>

#include <functional>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "lang/eval.h"
#include "lang/parser.h"
#include "sim/transport.h"
#include "topology/abilene.h"
#include "topology/generators.h"
#include "topology/zoo.h"

namespace contra {
namespace {

using topology::NodeId;
using topology::Topology;

struct ComplianceCase {
  const char* name;
  std::function<Topology()> topo;
  const char* policy;
  /// The regex all delivered DATA paths must match (usually the policy's
  /// own constraint); empty = no constraint beyond delivery.
  const char* must_match;
  const char* src_switch;
  const char* dst_switch;
};

std::ostream& operator<<(std::ostream& os, const ComplianceCase& c) { return os << c.name; }

class ComplianceSweep : public ::testing::TestWithParam<ComplianceCase> {};

TEST_P(ComplianceSweep, DeliveredPacketsMatchPolicyPaths) {
  const ComplianceCase& test_case = GetParam();
  const Topology topo = test_case.topo();
  const compiler::CompileResult compiled = compiler::compile(test_case.policy, topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  sim::SimConfig config;
  config.host_link_bps = 1e9;
  config.capture_traces = true;  // the audit below reads Packet::trace
  sim::Simulator sim(topo, config);
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 128e-6;
  dataplane::install_contra_network(sim, compiled, evaluator, options);

  sim::TransportManager transport(sim);
  const sim::HostId src = sim.add_host(topo.find(test_case.src_switch));
  const sim::HostId dst = sim.add_host(topo.find(test_case.dst_switch));

  const lang::RegexPtr constraint =
      *test_case.must_match ? lang::parse_regex(test_case.must_match) : nullptr;

  uint64_t audited = 0;
  uint64_t violations = 0;
  transport.set_data_inspector([&](const sim::Packet& packet) {
    if (packet.tuple.protocol != 6 || packet.dst_host != dst) return;  // forward data only
    ++audited;
    if (!constraint) return;
    std::vector<std::string> names;
    names.reserve(packet.trace.size());
    for (uint16_t n : packet.trace) names.push_back(topo.name(n));
    if (!lang::regex_matches(constraint, names)) ++violations;
  });

  sim.start();
  sim.run_until(5e-3);
  // Several flows, spread in time so preferences can shift between them.
  for (int i = 0; i < 8; ++i) {
    transport.start_flow(src, dst, 60'000, sim.now() + i * 2e-3);
  }
  sim.run_until(sim.now() + 0.4);

  EXPECT_EQ(transport.completed_flows().size(), 8u) << test_case.name;
  EXPECT_GT(audited, 100u);
  EXPECT_EQ(violations, 0u) << test_case.name;
}

INSTANTIATE_TEST_SUITE_P(
    PolicyComplianceMatrix, ComplianceSweep,
    ::testing::Values(
        ComplianceCase{"waypoint_diamond", [] { return topology::running_example(); },
                       "minimize(if .* B .* then path.util else inf)", ".* B .*", "A", "D"},
        ComplianceCase{"waypoint_geant",
                       [] { return topology::geant(1e9, 0.001); },
                       "minimize(if .* Frankfurt .* then path.util else inf)",
                       ".* Frankfurt .*", "London", "Vienna"},
        ComplianceCase{"link_pref_grid", [] { return topology::grid(3, 3); },
                       "minimize(if .* g1_1 g1_2 .* then path.util else inf)",
                       ".* g1_1 g1_2 .*", "g0_0", "g2_2"},
        ComplianceCase{"forbidden_transit_ring", [] { return topology::ring(6); },
                       // never transit n3: allowed = any path avoiding n3
                       "minimize(if (. + n0 + n1 + n2 + n4 + n5)* then path.util else inf)",
                       "", "n1", "n5"},
        ComplianceCase{"unconstrained_abilene",
                       [] { return topology::abilene(1e9, 0.001); },
                       "minimize(path.util)", "", "Seattle", "NewYork"}),
    [](const ::testing::TestParamInfo<ComplianceCase>& info) { return info.param.name; });

// The ring case above has a vacuous regex (dot absorbs everything); check the
// real forbidden-transit behaviour explicitly: with n3 forbidden as transit,
// traffic n1 -> n5 must go the long way around (n1-n0-n5).
TEST(Compliance, ForbiddenTransitTakesTheLongWay) {
  const Topology topo = topology::ring(6);
  // Paths are sequences of switches; forbid any path containing n3.
  const compiler::CompileResult compiled = compiler::compile(
      "minimize(if .* n3 .* then inf else path.len)", topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  sim::Simulator sim(topo, sim::SimConfig{});
  auto switches = dataplane::install_contra_network(sim, compiled, evaluator);
  sim.start();
  sim.run_until(10e-3);

  // n2 -> n4: the short way is via n3 (2 hops), which is forbidden; the
  // policy-compliant route is the 4-hop way around.
  const auto best = switches[topo.find("n2")]->best_choice(topo.find("n4"), sim.now());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->rank, lang::Rank::scalar(4.0));
  EXPECT_EQ(topo.name(topo.link(best->nhop).to), "n1");
}

}  // namespace
}  // namespace contra
