// Reference-semantics tests: rank algebra, regex matching over node paths,
// and policy evaluation on concrete paths (the ground truth the protocol is
// validated against).
#include <gtest/gtest.h>

#include "lang/eval.h"
#include "lang/parser.h"
#include "lang/policies.h"

namespace contra::lang {
namespace {

ConcretePath make_path(std::vector<std::string> nodes, std::vector<LinkMetrics> links) {
  return ConcretePath{std::move(nodes), std::move(links)};
}

TEST(Rank, InfinityDominates) {
  EXPECT_LT(Rank::scalar(1e9), Rank::infinity());
  EXPECT_EQ(Rank::infinity(), Rank::infinity());
  EXPECT_GT(Rank::infinity(), Rank::vector({util::Fixed::from_int(5)}));
}

TEST(Rank, LexicographicOrder) {
  const Rank a = Rank::vector({util::Fixed::from_int(1), util::Fixed::from_int(9)});
  const Rank b = Rank::vector({util::Fixed::from_int(2), util::Fixed::from_int(0)});
  EXPECT_LT(a, b);
}

TEST(Rank, ZeroPaddingOnWidthMismatch) {
  const Rank narrow = Rank::scalar(1.0);
  const Rank wide = Rank::vector({util::Fixed::from_int(1), util::Fixed::from_int(0)});
  EXPECT_EQ(narrow, wide);
  const Rank wider = Rank::vector({util::Fixed::from_int(1), util::Fixed::from_int(1)});
  EXPECT_LT(narrow, wider);
}

TEST(Rank, ConcatPropagatesInfinity) {
  const Rank r = Rank::concat({Rank::scalar(1.0), Rank::infinity()});
  EXPECT_TRUE(r.is_infinite());
}

TEST(Rank, ArithmeticOnInfinity) {
  EXPECT_TRUE(Rank::add(Rank::infinity(), Rank::scalar(1.0)).is_infinite());
  EXPECT_TRUE(Rank::sub(Rank::scalar(1.0), Rank::infinity()).is_infinite());
  EXPECT_EQ(Rank::min(Rank::infinity(), Rank::scalar(2.0)), Rank::scalar(2.0));
  EXPECT_TRUE(Rank::max(Rank::infinity(), Rank::scalar(2.0)).is_infinite());
}

TEST(Aggregate, UtilIsMaxLatIsSumLenIsHops) {
  const ConcretePath p = make_path({"A", "B", "C"}, {{0.3, 1.0}, {0.7, 2.5}});
  const PathAttributes attrs = aggregate(p);
  EXPECT_DOUBLE_EQ(attrs.util, 0.7);
  EXPECT_DOUBLE_EQ(attrs.lat, 3.5);
  EXPECT_DOUBLE_EQ(attrs.len, 2.0);
}

TEST(RegexMatch, LiteralSequence) {
  const RegexPtr r = parse_regex("A B D");
  EXPECT_TRUE(regex_matches(r, {"A", "B", "D"}));
  EXPECT_FALSE(regex_matches(r, {"A", "C", "D"}));
  EXPECT_FALSE(regex_matches(r, {"A", "B"}));
  EXPECT_FALSE(regex_matches(r, {"A", "B", "D", "E"}));
}

TEST(RegexMatch, DotStarWaypoint) {
  const RegexPtr r = parse_regex(".* W .*");
  EXPECT_TRUE(regex_matches(r, {"W"}));
  EXPECT_TRUE(regex_matches(r, {"A", "W", "B"}));
  EXPECT_TRUE(regex_matches(r, {"W", "B"}));
  EXPECT_FALSE(regex_matches(r, {"A", "B"}));
}

TEST(RegexMatch, Union) {
  const RegexPtr r = parse_regex("A (B + C) D");
  EXPECT_TRUE(regex_matches(r, {"A", "B", "D"}));
  EXPECT_TRUE(regex_matches(r, {"A", "C", "D"}));
  EXPECT_FALSE(regex_matches(r, {"A", "E", "D"}));
}

TEST(RegexMatch, StarRepetition) {
  const RegexPtr r = parse_regex("A B* D");
  EXPECT_TRUE(regex_matches(r, {"A", "D"}));
  EXPECT_TRUE(regex_matches(r, {"A", "B", "D"}));
  EXPECT_TRUE(regex_matches(r, {"A", "B", "B", "B", "D"}));
  EXPECT_FALSE(regex_matches(r, {"A", "C", "D"}));
}

TEST(RegexMatch, EmptyPathOnlyMatchesNullable) {
  EXPECT_TRUE(regex_matches(parse_regex(".*"), {}));
  EXPECT_FALSE(regex_matches(parse_regex("A"), {}));
}

TEST(RegexMatch, ReverseMatchesReversedWord) {
  const RegexPtr r = parse_regex("A .* D");
  const RegexPtr rev = Regex::reverse(r);
  EXPECT_TRUE(regex_matches(rev, {"D", "X", "A"}));
  EXPECT_FALSE(regex_matches(rev, {"A", "X", "D"}));
}

TEST(Evaluate, MinUtilRanksByBottleneck) {
  const Policy p = policies::min_util();
  const Rank r = evaluate(p, make_path({"A", "B"}, {{0.42, 1.0}}));
  EXPECT_NEAR(r.scalar_value().to_double(), 0.42, 1e-4);
}

TEST(Evaluate, WaypointForbidsBypass) {
  const Policy p = policies::waypoint_single("W");
  EXPECT_TRUE(evaluate(p, make_path({"A", "B", "D"}, {{0.1, 1}, {0.1, 1}})).is_infinite());
  EXPECT_FALSE(evaluate(p, make_path({"A", "W", "D"}, {{0.1, 1}, {0.1, 1}})).is_infinite());
}

TEST(Evaluate, FailoverRanksStatically) {
  const Policy p = policies::failover("A B D", "A C D");
  EXPECT_EQ(evaluate(p, make_path({"A", "B", "D"}, {{0, 0}, {0, 0}})), Rank::scalar(0.0));
  EXPECT_EQ(evaluate(p, make_path({"A", "C", "D"}, {{0, 0}, {0, 0}})), Rank::scalar(1.0));
  EXPECT_TRUE(evaluate(p, make_path({"A", "X", "D"}, {{0, 0}, {0, 0}})).is_infinite());
}

TEST(Evaluate, CongestionAwareSwitchesBranchAtThreshold) {
  const Policy p = policies::congestion_aware();
  const Rank light = evaluate(p, make_path({"A", "B"}, {{0.5, 1.0}}));
  const Rank heavy = evaluate(p, make_path({"A", "B"}, {{0.9, 1.0}}));
  // Light branch leads with 1, heavy with 2 — heavy always ranks worse.
  EXPECT_LT(light, heavy);
  ASSERT_EQ(light.components().size(), 3u);
  EXPECT_EQ(light.components()[0], util::Fixed::from_int(1));
  EXPECT_EQ(heavy.components()[0], util::Fixed::from_int(2));
}

TEST(Evaluate, WeightedLinkAddsPenalty) {
  const Policy p = policies::weighted_link("X", "Y", 10);
  const Rank through = evaluate(p, make_path({"A", "X", "Y", "D"}, {{0, 0}, {0, 0}, {0, 0}}));
  const Rank around = evaluate(p, make_path({"A", "B", "C", "D"}, {{0, 0}, {0, 0}, {0, 0}}));
  EXPECT_NEAR(through.scalar_value().to_double(), 13.0, 1e-6);
  EXPECT_NEAR(around.scalar_value().to_double(), 3.0, 1e-6);
}

TEST(Evaluate, SourceLocalPolicyDependsOnFirstNode) {
  const Policy p = policies::source_local("X");
  const Rank from_x = evaluate(p, make_path({"X", "B"}, {{0.3, 5.0}}));
  const Rank from_y = evaluate(p, make_path({"Y", "B"}, {{0.3, 5.0}}));
  EXPECT_NEAR(from_x.scalar_value().to_double(), 0.3, 1e-4);  // util
  EXPECT_NEAR(from_y.scalar_value().to_double(), 5.0, 1e-4);  // latency
}

TEST(Evaluate, TupleRanksLexicographically) {
  const Policy p = policies::widest_shortest();  // (util, len)
  const Rank short_busy = evaluate(p, make_path({"A", "B"}, {{0.9, 1}}));
  const Rank long_idle =
      evaluate(p, make_path({"A", "C", "B"}, {{0.1, 1}, {0.1, 1}}));
  EXPECT_LT(long_idle, short_busy);  // lower util wins despite longer path
}

TEST(Evaluate, BooleanOperatorsInTests) {
  const Policy p = parse_policy(
      "minimize(if path.util < .5 and not (path.len > 3) then 0 else 1)");
  EXPECT_EQ(evaluate(p, make_path({"A", "B"}, {{0.2, 1}})), Rank::scalar(0.0));
  EXPECT_EQ(evaluate(p, make_path({"A", "B"}, {{0.8, 1}})), Rank::scalar(1.0));
}

}  // namespace
}  // namespace contra::lang
