// Isotonicity analysis tests: classification of the paper's catalog
// (P9/"CA" is the canonical non-isotonic, decomposed policy), structural
// rules for lexicographic metrics, and sampled counterexamples for
// bottleneck-before-tiebreak orderings.
#include <gtest/gtest.h>

#include "analysis/isotonicity.h"
#include "lang/parser.h"
#include "lang/policies.h"

namespace contra::analysis {
namespace {

using lang::parse_expr;

TEST(IsotonicityStructural, AtomsAreIsotonic) {
  EXPECT_TRUE(metric_is_isotonic_structural(parse_expr("path.util")));
  EXPECT_TRUE(metric_is_isotonic_structural(parse_expr("path.len")));
  EXPECT_TRUE(metric_is_isotonic_structural(parse_expr("path.lat + path.len")));
}

TEST(IsotonicityStructural, AdditiveThenBottleneckIsIsotonic) {
  // (len, util): the additive leading component preserves strict order;
  // a bottleneck in last position is safe.
  EXPECT_TRUE(metric_is_isotonic_structural(parse_expr("(path.len, path.util)")));
}

TEST(IsotonicityStructural, BottleneckBeforeTiebreakIsNot) {
  // (util, len): max can collapse a strict util order into a tie, letting
  // len flip the decision.
  EXPECT_FALSE(metric_is_isotonic_structural(parse_expr("(path.util, path.len)")));
}

TEST(IsotonicitySampled, FindsTheUtilLenFlip) {
  const auto violation =
      sample_isotonicity_violation(parse_expr("(path.util, path.len)"), 3, 8000);
  ASSERT_TRUE(violation.has_value());
  // The extension's util must exceed both paths' utils (the collapse).
  EXPECT_GE(violation->extension.util, violation->path1.util);
  EXPECT_GE(violation->extension.util, violation->path2.util);
}

TEST(IsotonicitySampled, NoViolationForLenUtil) {
  EXPECT_FALSE(
      sample_isotonicity_violation(parse_expr("(path.len, path.util)"), 3, 8000).has_value());
}

TEST(IsotonicitySampled, NoViolationForPureAdditive) {
  EXPECT_FALSE(
      sample_isotonicity_violation(parse_expr("path.lat + path.len"), 3, 8000).has_value());
}

TEST(Isotonicity, MinUtilIsIsotonic) {
  const IsotonicityReport report = check_isotonicity(lang::policies::min_util());
  EXPECT_EQ(report.classification, IsotonicityClass::kIsotonic) << report.to_string();
}

TEST(Isotonicity, CongestionAwareIsDecomposed) {
  // The paper's "CA": non-isotonic, handled via decomposition into two
  // isotonic subpolicies (probe ids).
  const IsotonicityReport report = check_isotonicity(lang::policies::congestion_aware());
  EXPECT_EQ(report.classification, IsotonicityClass::kDecomposed);
  EXPECT_EQ(report.num_subpolicies, 2u);
}

TEST(Isotonicity, SourceLocalIsDecomposed) {
  const IsotonicityReport report = check_isotonicity(lang::policies::source_local("X"));
  EXPECT_EQ(report.classification, IsotonicityClass::kDecomposed);
}

TEST(Isotonicity, WidestShortestIsWeaklyNonIsotonic) {
  // P3 (util, len): compiled with one probe but flagged so operators know
  // convergence may be to a near-optimal path.
  const IsotonicityReport report = check_isotonicity(lang::policies::widest_shortest());
  EXPECT_EQ(report.classification, IsotonicityClass::kWeaklyNonIsotonic);
  EXPECT_TRUE(report.counterexample.has_value());
}

TEST(Isotonicity, ShortestWidestIsIsotonic) {
  const IsotonicityReport report = check_isotonicity(lang::policies::shortest_widest());
  EXPECT_EQ(report.classification, IsotonicityClass::kIsotonic) << report.to_string();
}

TEST(Isotonicity, WaypointIsIsotonic) {
  const IsotonicityReport report = check_isotonicity(lang::policies::waypoint("F1", "F2"));
  EXPECT_EQ(report.classification, IsotonicityClass::kIsotonic) << report.to_string();
}

TEST(Isotonicity, ClassNamesAreStable) {
  EXPECT_STREQ(isotonicity_class_name(IsotonicityClass::kIsotonic), "isotonic");
  EXPECT_STREQ(isotonicity_class_name(IsotonicityClass::kDecomposed),
               "non-isotonic (decomposed)");
}

}  // namespace
}  // namespace contra::analysis
