// Traffic classification tests: predicate parsing/matching, classified
// compilation, and end-to-end per-class routing.
#include <gtest/gtest.h>

#include "compiler/classified.h"
#include "dataplane/classified_switch.h"
#include "lang/lexer.h"
#include "lang/traffic_class.h"
#include "sim/transport.h"
#include "topology/abilene.h"
#include "topology/generators.h"

namespace contra::lang {
namespace {

util::FiveTuple tuple(uint8_t proto, uint16_t src_port, uint16_t dst_port) {
  return util::FiveTuple{1, 2, src_port, dst_port, proto};
}

TEST(FlowPredicate, AnyMatchesEverything) {
  EXPECT_TRUE(FlowPredicate::any()->matches(tuple(6, 1, 2)));
  EXPECT_TRUE(FlowPredicate::any()->matches(tuple(17, 9999, 53)));
}

TEST(FlowPredicate, ProtocolEquality) {
  const auto p = parse_flow_predicate("proto == tcp");
  EXPECT_TRUE(p->matches(tuple(6, 1, 2)));
  EXPECT_FALSE(p->matches(tuple(17, 1, 2)));
}

TEST(FlowPredicate, ProtocolAliases) {
  EXPECT_TRUE(parse_flow_predicate("proto == udp")->matches(tuple(17, 0, 0)));
  EXPECT_TRUE(parse_flow_predicate("proto == icmp")->matches(tuple(1, 0, 0)));
  EXPECT_TRUE(parse_flow_predicate("proto == 6")->matches(tuple(6, 0, 0)));
}

TEST(FlowPredicate, PortRange) {
  const auto p = parse_flow_predicate("dst_port in 8000 .. 8999");
  EXPECT_TRUE(p->matches(tuple(6, 1, 8000)));
  EXPECT_TRUE(p->matches(tuple(6, 1, 8500)));
  EXPECT_TRUE(p->matches(tuple(6, 1, 8999)));
  EXPECT_FALSE(p->matches(tuple(6, 1, 9000)));
  EXPECT_FALSE(p->matches(tuple(6, 1, 7999)));
}

TEST(FlowPredicate, BooleanCombinators) {
  const auto p = parse_flow_predicate("proto == tcp and not (dst_port == 80 or dst_port == 443)");
  EXPECT_TRUE(p->matches(tuple(6, 1, 8080)));
  EXPECT_FALSE(p->matches(tuple(6, 1, 80)));
  EXPECT_FALSE(p->matches(tuple(6, 1, 443)));
  EXPECT_FALSE(p->matches(tuple(17, 1, 8080)));
}

TEST(FlowPredicate, SrcPortField) {
  const auto p = parse_flow_predicate("src_port == 1234");
  EXPECT_TRUE(p->matches(tuple(6, 1234, 80)));
  EXPECT_FALSE(p->matches(tuple(6, 1235, 80)));
}

TEST(FlowPredicate, ParseErrors) {
  EXPECT_THROW(parse_flow_predicate("frobnicate == 3"), ParseError);
  EXPECT_THROW(parse_flow_predicate("proto = 6"), ParseError);
  EXPECT_THROW(parse_flow_predicate("dst_port in 10 .. 5"), ParseError);
  EXPECT_THROW(parse_flow_predicate("proto == tcp extra"), ParseError);
}

TEST(FlowPredicate, RoundTripsThroughPrinter) {
  for (const char* text :
       {"*", "proto == 6", "dst_port in 80 .. 443",
        "proto == 17 and src_port == 53", "not proto == 6 or dst_port == 22"}) {
    const auto p = parse_flow_predicate(text);
    const auto again = parse_flow_predicate(to_string(p));
    EXPECT_EQ(to_string(p), to_string(again)) << text;
  }
}

TEST(ClassifiedPolicy, ParsesRulesInOrder) {
  const ClassifiedPolicy cp = parse_classified_policy(R"(
    class proto == udp : minimize(path.lat)
    class dst_port in 5000 .. 5999 : minimize(path.len)
    class * : minimize(path.util)
  )");
  ASSERT_EQ(cp.rules.size(), 3u);
  EXPECT_TRUE(cp.is_total());
  EXPECT_EQ(cp.classify(tuple(17, 1, 2)), 0u);    // udp
  EXPECT_EQ(cp.classify(tuple(6, 1, 5500)), 1u);  // port range
  EXPECT_EQ(cp.classify(tuple(6, 1, 80)), 2u);    // fallthrough
}

TEST(ClassifiedPolicy, FirstMatchWins) {
  const ClassifiedPolicy cp = parse_classified_policy(R"(
    class * : minimize(path.len)
    class proto == udp : minimize(path.lat)
  )");
  EXPECT_EQ(cp.classify(tuple(17, 1, 2)), 0u);  // the catch-all shadows rule 1
}

TEST(ClassifiedPolicy, NonTotalClassifierReported) {
  const ClassifiedPolicy cp =
      parse_classified_policy("class proto == udp : minimize(path.lat)");
  EXPECT_FALSE(cp.is_total());
  EXPECT_EQ(cp.classify(tuple(6, 1, 2)), std::nullopt);
}

TEST(ClassifiedPolicy, ParseErrors) {
  EXPECT_THROW(parse_classified_policy("minimize(path.len)"), ParseError);
  EXPECT_THROW(parse_classified_policy("class proto == udp minimize(path.lat)"), ParseError);
}

}  // namespace
}  // namespace contra::lang

namespace contra::compiler {
namespace {

TEST(ClassifiedCompile, CompilesEveryClass) {
  const topology::Topology topo = topology::abilene();
  const ClassifiedCompileResult result = compile_classified(R"(
    class proto == udp : minimize(path.lat)
    class * : minimize(path.util)
  )", topo);
  ASSERT_EQ(result.classes.size(), 2u);
  EXPECT_EQ(result.classes[0].num_pids(), 1u);
  EXPECT_GT(result.total_state_bytes(), 0u);
  EXPECT_NE(result.summary().find("class0"), std::string::npos);
}

TEST(ClassifiedCompile, EmptyRulesThrow) {
  const topology::Topology topo = topology::ring(4);
  EXPECT_THROW(compile_classified(lang::ClassifiedPolicy{}, topo), CompileError);
}

TEST(ClassifiedCompile, BadClassPolicyNamesTheClass) {
  const topology::Topology topo = topology::ring(4);
  try {
    compile_classified("class * : minimize(1 - path.util)", topo);
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("class0"), std::string::npos);
  }
}

TEST(ClassifiedCompile, NonTotalWarnsInSummary) {
  const topology::Topology topo = topology::ring(4);
  const ClassifiedCompileResult result =
      compile_classified("class proto == udp : minimize(path.len)", topo);
  EXPECT_NE(result.summary().find("WARNING"), std::string::npos);
}

}  // namespace
}  // namespace contra::compiler

namespace contra::dataplane {
namespace {

TEST(ClassifiedDataplane, ClassesRouteIndependently) {
  // Abilene: the latency class should pick latency-optimal next hops, the
  // default class utilization-optimal ones; both converge independently.
  const topology::Topology topo = topology::abilene(1e9, 0.02);
  const compiler::ClassifiedCompileResult compiled = compiler::compile_classified(R"(
    class proto == udp : minimize(path.lat)
    class * : minimize(path.util)
  )", topo);

  sim::SimConfig config;
  config.host_link_bps = 1e9;
  sim::Simulator sim(topo, config);
  ClassifiedNetwork network = install_classified_network(sim, compiled);
  sim.start();
  sim.run_until(15e-3);

  const topology::NodeId src = topo.find("Seattle");
  const topology::NodeId dst = topo.find("WashingtonDC");
  const auto lat_best = network.switches[src]->class_switch(0).best_choice(dst, sim.now());
  const auto util_best = network.switches[src]->class_switch(1).best_choice(dst, sim.now());
  ASSERT_TRUE(lat_best.has_value());
  ASSERT_TRUE(util_best.has_value());
  // The latency class's rank is a path latency (µs; ~0.5 at this delay
  // scale); the util class's rank is a utilization (~0 on an idle network,
  // perturbed only by probe traffic). They are different quantities from
  // independently converged protocol instances.
  EXPECT_GT(lat_best->rank.scalar_value().to_double(), 0.2);
  EXPECT_LT(util_best->rank.scalar_value().to_double(), 0.1);
  EXPECT_GT(lat_best->rank.scalar_value().to_double(),
            util_best->rank.scalar_value().to_double());
}

TEST(ClassifiedDataplane, TrafficDispatchesAndDelivers) {
  const topology::Topology topo = topology::abilene(1e9, 0.02);
  const compiler::ClassifiedCompileResult compiled = compiler::compile_classified(R"(
    class proto == udp : minimize(path.lat)
    class * : minimize((path.len, path.util))
  )", topo);

  sim::SimConfig config;
  config.host_link_bps = 1e9;
  sim::Simulator sim(topo, config);
  ClassifiedNetwork network = install_classified_network(sim, compiled);
  sim::TransportManager transport(sim);
  const sim::HostId a = sim.add_host(topo.find("Seattle"));
  const sim::HostId b = sim.add_host(topo.find("NewYork"));
  sim.start();
  sim.run_until(15e-3);

  transport.start_flow(a, b, 100'000, sim.now());                      // TCP
  transport.start_udp_flow(a, b, 20e6, sim.now(), sim.now() + 10e-3);  // UDP
  sim.run_until(sim.now() + 150e-3);

  EXPECT_EQ(transport.completed_flows().size(), 1u);
  EXPECT_GT(transport.udp_bytes_received(), 0u);
  // Both classes forwarded something at the source switch.
  const auto& sw = *network.switches[topo.find("Seattle")];
  EXPECT_GT(sw.class_switch(0).stats().data_forwarded, 0u);  // UDP class
  EXPECT_GT(sw.class_switch(1).stats().data_forwarded, 0u);  // TCP class
  uint64_t unclassified = 0;
  for (const auto* s : network.switches) unclassified += s->stats().unclassified_drops;
  EXPECT_EQ(unclassified, 0u);
}

TEST(ClassifiedDataplane, NonTotalClassifierDropsUnmatched) {
  const topology::Topology topo = topology::line(2);
  const compiler::ClassifiedCompileResult compiled = compiler::compile_classified(
      "class proto == udp : minimize(path.len)", topo);
  sim::Simulator sim(topo, sim::SimConfig{});
  ClassifiedNetwork network = install_classified_network(sim, compiled);
  sim::TransportManager transport(sim);
  const sim::HostId a = sim.add_host(0);
  const sim::HostId b = sim.add_host(1);
  sim.start();
  sim.run_until(2e-3);
  transport.start_flow(a, b, 10'000, sim.now());  // TCP: no rule matches
  sim.run_until(sim.now() + 50e-3);
  EXPECT_TRUE(transport.completed_flows().empty());
  EXPECT_GT(network.switches[0]->stats().unclassified_drops, 0u);
}

}  // namespace
}  // namespace contra::dataplane
