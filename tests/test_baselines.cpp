// Baseline dataplane tests: ECMP hashing, static shortest-path delivery,
// SPAIN multipath, and HULA probe convergence + congestion adaptation.
#include <gtest/gtest.h>

#include "dataplane/ecmp_switch.h"
#include "dataplane/hula_switch.h"
#include "dataplane/spain_switch.h"
#include "dataplane/static_switch.h"
#include "sim/host.h"
#include "sim/transport.h"
#include "topology/abilene.h"
#include "topology/generators.h"

namespace contra::dataplane {
namespace {

using sim::HostId;
using topology::NodeId;
using topology::Topology;

sim::SimConfig gig_config() {
  sim::SimConfig c;
  c.host_link_bps = 1e9;
  return c;
}

TEST(Ecmp, DeliversAcrossFatTree) {
  const Topology topo = topology::fat_tree(4, topology::LinkParams{1e9, 1e-6});
  sim::Simulator sim(topo, gig_config());
  install_ecmp_network(sim);
  sim::TransportManager transport(sim);
  const auto hosts = sim::attach_hosts_to_fat_tree_edges(sim, 1);
  sim.start();
  for (int i = 0; i < 6; ++i) {
    transport.start_flow(hosts[i], hosts[7 - i], 50'000, 0.0);
  }
  sim.run_until(0.2);
  EXPECT_EQ(transport.completed_flows().size(), 6u);
}

TEST(Ecmp, SpreadsFlowsAcrossUplinks) {
  const Topology topo = topology::fat_tree(4, topology::LinkParams{1e9, 1e-6});
  sim::Simulator sim(topo, gig_config());
  install_ecmp_network(sim);
  sim::TransportManager transport(sim);
  const HostId src = sim.add_host(topo.find("e0_0"));
  const HostId dst = sim.add_host(topo.find("e3_0"));
  sim.start();
  for (int i = 0; i < 40; ++i) transport.start_flow(src, dst, 10'000, i * 1e-4);
  sim.run_until(0.3);
  EXPECT_EQ(transport.completed_flows().size(), 40u);
  // Both e0_0 uplinks must have carried data (hashing spreads flows).
  int used = 0;
  for (topology::LinkId l : topo.out_links(topo.find("e0_0"))) {
    if (sim.link(l).stats().tx_data_bytes > 0) ++used;
  }
  EXPECT_EQ(used, 2);
}

TEST(Ecmp, IsLoadOblivious) {
  // ECMP keeps hashing onto a congested link — the defining weakness.
  const Topology topo = topology::leaf_spine(2, 2, topology::LinkParams{1e9, 1e-6});
  sim::Simulator sim(topo, gig_config());
  install_ecmp_network(sim);
  sim::TransportManager transport(sim);
  const HostId a = sim.add_host(topo.find("leaf0"));
  const HostId b = sim.add_host(topo.find("leaf1"));
  sim.start();
  // A single long flow keeps its hash-chosen spine regardless of congestion:
  transport.start_udp_flow(a, b, 900e6, 0.0, 50e-3);
  sim.run_until(60e-3);
  // Exactly one spine-bound link carried the stream.
  int used = 0;
  for (topology::LinkId l : topo.out_links(topo.find("leaf0"))) {
    if (sim.link(l).stats().tx_data_bytes > 0) ++used;
  }
  EXPECT_EQ(used, 1);
}

TEST(StaticSp, FollowsBfsPath) {
  const Topology topo = topology::abilene(1e9, 0.001);
  sim::Simulator sim(topo, gig_config());
  auto switches = install_shortest_path_network(sim);
  sim::TransportManager transport(sim);
  const HostId src = sim.add_host(topo.find("Seattle"));
  const HostId dst = sim.add_host(topo.find("WashingtonDC"));
  sim.start();
  transport.start_flow(src, dst, 50'000, 0.0);
  sim.run_until(0.5);
  ASSERT_EQ(transport.completed_flows().size(), 1u);
  // Hop count on the wire equals BFS distance: count switches that forwarded.
  const uint32_t bfs =
      topo.bfs_hops(topo.find("Seattle"))[topo.find("WashingtonDC")];
  uint32_t forwarding_switches = 0;
  for (const StaticSwitch* sw : switches) {
    if (sw->stats().data_forwarded > 0) ++forwarding_switches;
  }
  // Data crosses bfs fabric links -> bfs forwarding switches on the forward
  // path; ACKs return via their own shortest path, which may differ under
  // asymmetric tie-breaking, adding at most one more switch per extra hop.
  EXPECT_GE(forwarding_switches, bfs);
  EXPECT_LE(forwarding_switches, 2 * bfs);
}

TEST(Spain, DeliversAndUsesMultiplePaths) {
  const Topology topo = topology::abilene(1e9, 0.001);
  sim::Simulator sim(topo, gig_config());
  install_spain_network(sim, 4);
  sim::TransportManager transport(sim);
  const HostId src = sim.add_host(topo.find("Seattle"));
  const HostId dst = sim.add_host(topo.find("WashingtonDC"));
  sim.start();
  for (int i = 0; i < 30; ++i) transport.start_flow(src, dst, 20'000, i * 1e-4);
  sim.run_until(0.5);
  EXPECT_EQ(transport.completed_flows().size(), 30u);
  // Seattle has two cables; SPAIN's diverse path set should use both.
  int used = 0;
  for (topology::LinkId l : topo.out_links(topo.find("Seattle"))) {
    if (sim.link(l).stats().tx_data_bytes > 0) ++used;
  }
  EXPECT_GE(used, 2);
}

TEST(Hula, ConvergesOnFatTree) {
  const Topology topo = topology::fat_tree(4, topology::LinkParams{1e9, 1e-6});
  sim::Simulator sim(topo, gig_config());
  auto switches = install_hula_network(sim);
  sim.start();
  sim.run_until(5e-3);
  // Every switch must know a best hop toward every ToR.
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    for (NodeId tor = 0; tor < topo.num_nodes(); ++tor) {
      if (topology::fat_tree_layer(topo, tor) != topology::FatTreeLayer::kEdge) continue;
      if (tor == n) continue;
      EXPECT_NE(switches[n]->best_hop(tor), nullptr)
          << topo.name(n) << " -> " << topo.name(tor);
    }
  }
}

TEST(Hula, DeliversFlows) {
  const Topology topo = topology::fat_tree(4, topology::LinkParams{1e9, 1e-6});
  sim::Simulator sim(topo, gig_config());
  install_hula_network(sim);
  sim::TransportManager transport(sim);
  const auto hosts = sim::attach_hosts_to_fat_tree_edges(sim, 1);
  sim.start();
  sim.run_until(3e-3);
  for (int i = 0; i < 4; ++i) {
    transport.start_flow(hosts[i], hosts[i + 4], 50'000, sim.now());
  }
  sim.run_until(sim.now() + 0.2);
  EXPECT_EQ(transport.completed_flows().size(), 4u);
}

TEST(Hula, AdaptsToCongestion) {
  // Two-pod traffic with one congested core path: HULA should shift new
  // flowlets to the less-utilized core.
  const Topology topo = topology::fat_tree(4, topology::LinkParams{1e9, 1e-6});
  sim::Simulator sim(topo, gig_config());
  auto switches = install_hula_network(sim);
  sim::TransportManager transport(sim);
  const HostId src = sim.add_host(topo.find("e0_0"));
  const HostId dst = sim.add_host(topo.find("e1_0"));
  sim.start();
  sim.run_until(3e-3);

  const NodeId a0 = topo.find("a0_0");
  const auto* before = switches[a0]->best_hop(topo.find("e1_0"));
  ASSERT_NE(before, nullptr);

  // Run real UDP through the fabric and let utilization shift choices; the
  // entry must keep refreshing with new probe rounds.
  transport.start_udp_flow(src, dst, 800e6, sim.now(), sim.now() + 30e-3);
  sim.run_until(sim.now() + 20e-3);
  const auto* after = switches[a0]->best_hop(topo.find("e1_0"));
  ASSERT_NE(after, nullptr);
  EXPECT_GE(after->version, before->version);
}

TEST(Hula, ThrowsOffFatTree) {
  const Topology topo = topology::ring(4);
  sim::Simulator sim(topo, gig_config());
  install_hula_network(sim);
  EXPECT_THROW(sim.start(), std::invalid_argument);
}

TEST(Baselines, ProbesIgnoredByStaticPlanes) {
  const Topology topo = topology::line(2);
  sim::Simulator sim(topo, gig_config());
  auto switches = install_ecmp_network(sim);
  sim::Packet probe;
  probe.kind = sim::PacketKind::kProbe;
  probe.size_bytes = 64;
  probe.probe = sim::ProbeFields{};
  // Must not crash nor forward.
  switches[0]->handle_packet(sim, std::move(probe), sim::kFromHost);
  EXPECT_EQ(switches[0]->stats().data_forwarded, 0u);
}

}  // namespace
}  // namespace contra::dataplane
