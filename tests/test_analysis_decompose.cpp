// Decomposition tests: pid counts for the Fig. 3 catalog, normalization
// rules (constant dropping, tuple flattening, ∞ pruning), and the semantic
// guarantee that recombining subpolicies preserves the original optimum.
#include <gtest/gtest.h>

#include "analysis/attributes.h"
#include "analysis/decompose.h"
#include "lang/parser.h"
#include "lang/policies.h"
#include "lang/printer.h"
#include "util/rng.h"

namespace contra::analysis {
namespace {

using lang::parse_expr;
using lang::parse_policy;

TEST(Normalize, FoldsConstants) {
  EXPECT_EQ(lang::to_string(normalize_metric(parse_expr("1 + 2"))), "3");
  EXPECT_EQ(lang::to_string(normalize_metric(parse_expr("min(4, 2)"))), "2");
  EXPECT_EQ(lang::to_string(normalize_metric(parse_expr("max(4, 2)"))), "4");
}

TEST(Normalize, DropsConstantAddends) {
  const auto e = normalize_metric(parse_expr("10 + path.len"));
  EXPECT_EQ(lang::to_string(e), "path.len");
}

TEST(Normalize, InfinityAbsorbsSums) {
  EXPECT_TRUE(is_infinite_metric(normalize_metric(parse_expr("inf + path.len"))));
  EXPECT_TRUE(is_infinite_metric(normalize_metric(parse_expr("max(inf, path.util)"))));
  EXPECT_EQ(lang::to_string(normalize_metric(parse_expr("min(inf, path.util)"))),
            "path.util");
}

TEST(Normalize, FlattensTuplesAndDropsConstants) {
  const auto e = normalize_metric(parse_expr("(1, (path.len, 0), path.util)"));
  ASSERT_EQ(e->kind, lang::Expr::Kind::kTuple);
  ASSERT_EQ(e->elems.size(), 2u);
  EXPECT_EQ(e->elems[0]->attr, lang::PathAttr::kLen);
  EXPECT_EQ(e->elems[1]->attr, lang::PathAttr::kUtil);
}

TEST(Normalize, TupleWithInfinityIsInfinite) {
  EXPECT_TRUE(is_infinite_metric(normalize_metric(parse_expr("(path.len, inf)"))));
}

TEST(Decompose, MinUtilHasOnePid) {
  const Decomposition d = decompose(lang::policies::min_util());
  ASSERT_EQ(d.subpolicies.size(), 1u);
  // len tie-break appended.
  EXPECT_EQ(lang::to_string(d.subpolicies[0].objective), "(path.util, path.len)");
  EXPECT_EQ(lang::to_string(d.subpolicies[0].user_objective), "path.util");
}

TEST(Decompose, WaypointHasOnePid) {
  // Fig. 6e: "a static analysis has determined that only one probe is
  // needed" — the forbidden (∞) branch needs no probe.
  const Decomposition d = decompose(lang::policies::waypoint("F1", "F2"));
  EXPECT_EQ(d.subpolicies.size(), 1u);
}

TEST(Decompose, RunningExamplePolicyHasOnePid) {
  const Decomposition d = decompose(
      parse_policy("minimize(if A B D then 0 else if B .* D then path.util else inf)"));
  // Branch "0" is constant (piggybacks), branch inf is pruned: one pid.
  EXPECT_EQ(d.subpolicies.size(), 1u);
}

TEST(Decompose, CongestionAwareHasTwoPids) {
  const Decomposition d = decompose(lang::policies::congestion_aware());
  ASSERT_EQ(d.subpolicies.size(), 2u);
  // One branch minimizes (util, len), the other (len, util).
  std::vector<std::string> objectives = {lang::to_string(d.subpolicies[0].objective),
                                         lang::to_string(d.subpolicies[1].objective)};
  std::sort(objectives.begin(), objectives.end());
  EXPECT_EQ(objectives[0], "(path.len, path.util)");
  EXPECT_EQ(objectives[1], "(path.util, path.len)");
}

TEST(Decompose, FullyStaticPolicyGetsReachabilityProbe) {
  const Decomposition d = decompose(lang::policies::failover("A B D", "A C D"));
  ASSERT_EQ(d.subpolicies.size(), 1u);
  EXPECT_TRUE(lang::expr_uses_attr(d.subpolicies[0].objective, lang::PathAttr::kLen));
}

TEST(Decompose, SourceLocalSplitsOnRegex) {
  // if X .* then util else lat: the two branches rank by different metrics,
  // so they need separate probes (the §4 regex non-isotonicity).
  const Decomposition d = decompose(lang::policies::source_local("X"));
  EXPECT_EQ(d.subpolicies.size(), 2u);
}

TEST(Decompose, WeightedLinkMergesToOnePid) {
  // (if r then 10 else 0) + path.len: both branches reduce to path.len after
  // constant-addend dropping — one pid.
  const Decomposition d = decompose(lang::policies::weighted_link("X", "Y", 10));
  EXPECT_EQ(d.subpolicies.size(), 1u);
  EXPECT_EQ(lang::to_string(d.subpolicies[0].objective), "path.len");
}

TEST(Decompose, AttrsCoverPolicyAndTieBreak) {
  const Decomposition d = decompose(lang::policies::min_util());
  ASSERT_EQ(d.attrs.size(), 2u);
  EXPECT_EQ(d.attrs[0], lang::PathAttr::kUtil);
  EXPECT_EQ(d.attrs[1], lang::PathAttr::kLen);
}

TEST(Decompose, TooManyTestsThrows) {
  // 17 distinct atomic tests exceeds the enumeration bound.
  std::string policy = "minimize(";
  for (int i = 0; i < 17; ++i) {
    policy += "(if path.util < ." + std::to_string(i % 10) + std::to_string(i / 10) +
              " then 1 else 0) + ";
  }
  policy += "path.len)";
  EXPECT_THROW(decompose(lang::parse_policy(policy)), DecomposeError);
}

// Semantic property: for any attribute assignment, the minimum over
// subpolicy-optimal candidates (ranked by the original policy) equals the
// original policy's optimum over all candidates. We emulate this on random
// candidate sets.
TEST(Decompose, RecombinationPreservesOptimum) {
  const lang::Policy policy = lang::policies::congestion_aware();
  const Decomposition d = decompose(policy);
  util::Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    // Random candidate paths (attribute vectors).
    std::vector<lang::PathAttributes> candidates;
    for (int i = 0; i < 6; ++i) {
      candidates.push_back({rng.uniform(), rng.uniform() * 5,
                            static_cast<double>(rng.uniform_int(1, 8))});
    }
    // True optimum under the original policy.
    lang::Rank best_true = lang::Rank::infinity();
    for (const auto& c : candidates) {
      best_true = lang::Rank::min(best_true, lang::evaluate_with_attrs(policy, {}, c));
    }
    // Protocol view: each pid keeps only its own f-minimal candidate; the
    // source ranks those survivors with the original policy.
    lang::Rank best_via_pids = lang::Rank::infinity();
    for (const auto& sub : d.subpolicies) {
      const lang::PathAttributes* kept = nullptr;
      lang::Rank kept_rank = lang::Rank::infinity();
      for (const auto& c : candidates) {
        const lang::Rank r = evaluate_metric(sub.objective, c);
        if (r < kept_rank) {
          kept_rank = r;
          kept = &c;
        }
      }
      if (kept != nullptr) {
        best_via_pids =
            lang::Rank::min(best_via_pids, lang::evaluate_with_attrs(policy, {}, *kept));
      }
    }
    EXPECT_EQ(best_true, best_via_pids) << "trial " << trial;
  }
}

}  // namespace
}  // namespace contra::analysis
