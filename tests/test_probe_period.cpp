// §5.2 probe frequency: versioned probes make path discovery *latency
// sensitive* — if a new probe round starts before the previous round has
// fully propagated, probes along high-latency paths always arrive outdated
// and are discarded, so a better-but-slower path is never adopted. The rule:
// probe period >= 0.5 x max RTT.
//
// This test reproduces the paper's exact scenario: two paths to D, the
// fast-but-congested one and the slow-but-idle one. With a too-short probe
// period the source sticks to the congested path; with a compliant period it
// converges to the idle one.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "lang/policies.h"
#include "sim/transport.h"
#include "topology/topology.h"

namespace contra::dataplane {
namespace {

using topology::NodeId;
using topology::Topology;

struct TwoPathWorld {
  explicit TwoPathWorld(double probe_period_s)
      : topo(make_topo()),
        compiled(compiler::compile(lang::policies::min_util(), topo)),
        evaluator(compiled.graph, compiled.decomposition),
        sim(topo, make_config()) {
    ContraSwitchOptions options;
    options.probe_period_s = probe_period_s;
    // Generous expiry so the slow path's entries are judged on version
    // semantics, not staleness.
    options.metric_expiry_periods = 1000;
    options.failure_detect_periods = 1000;
    switches = install_contra_network(sim, compiled, evaluator, options);
  }

  static Topology make_topo() {
    // Fast path S-A-D: 5us links. Slow path S-B-D: 150us links (one-way
    // path latency 300us). Max RTT ~ 610us -> rule demands period >= 305us.
    Topology topo;
    const NodeId s = topo.add_node("S");
    const NodeId a = topo.add_node("A");
    const NodeId b = topo.add_node("B");
    const NodeId d = topo.add_node("D");
    topo.add_link(s, a, 1e9, 5e-6);
    topo.add_link(a, d, 1e9, 5e-6);
    topo.add_link(s, b, 1e9, 150e-6);
    topo.add_link(b, d, 1e9, 150e-6);
    return topo;
  }
  static sim::SimConfig make_config() {
    sim::SimConfig c;
    c.host_link_bps = 1e9;
    return c;
  }

  void congest_fast_path() {
    host_a = sim.add_host(topo.find("A"));
    host_d = sim.add_host(topo.find("D"));
    transport = std::make_unique<sim::TransportManager>(sim);
    sim.start();
    // 600 Mbps across A-D: the fast path's utilization ~0.6 forever.
    transport->start_udp_flow(host_a, host_d, 600e6, 0.0, 10.0);
  }

  Topology topo;
  compiler::CompileResult compiled;
  pg::PolicyEvaluator evaluator;
  sim::Simulator sim;
  std::vector<ContraSwitch*> switches;
  std::unique_ptr<sim::TransportManager> transport;
  sim::HostId host_a = sim::kInvalidHost;
  sim::HostId host_d = sim::kInvalidHost;
};

TEST(ProbePeriod, CompilerRuleIsHalfMaxRtt) {
  const TwoPathWorld world(256e-6);
  // The paper's rule uses switch-pair RTTs, i.e. min-delay paths: the worst
  // pair here is B<->A at 155us one-way, giving a 155us lower bound. Note
  // this is a *lower* bound — probes traveling non-shortest policy paths
  // (S-B-D, 300us one-way) need proportionally longer periods, which the
  // behavioural tests below demonstrate.
  EXPECT_NEAR(world.compiled.min_probe_period_s, 0.5 * world.topo.max_rtt_s(), 1e-9);
  EXPECT_NEAR(world.compiled.min_probe_period_s, 155e-6, 2e-6);
}

TEST(ProbePeriod, TooFastProbesStarveTheSlowPath) {
  // Period 50us << 305us: by the time the slow path's probe reaches S, three
  // fresher rounds arrived via the fast path — the slow probe is outdated
  // and discarded, so S keeps using the congested fast path.
  TwoPathWorld world(50e-6);
  world.congest_fast_path();
  world.sim.run_until(30e-3);
  const auto best =
      world.switches[world.topo.find("S")]->best_choice(world.topo.find("D"),
                                                        world.sim.now());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(world.topo.name(world.topo.link(best->nhop).to), "A")
      << "slow path should be starved by versioning at this period";
  // And the rank reflects the congestion it is stuck with.
  EXPECT_GT(best->rank.scalar_value().to_double(), 0.3);
}

TEST(ProbePeriod, CompliantPeriodFindsTheBetterPath) {
  // Period 400us > 305us: every round fully propagates before the next —
  // the slow path's probes carry the current version and win on utilization.
  TwoPathWorld world(400e-6);
  world.congest_fast_path();
  world.sim.run_until(30e-3);
  const auto best =
      world.switches[world.topo.find("S")]->best_choice(world.topo.find("D"),
                                                        world.sim.now());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(world.topo.name(world.topo.link(best->nhop).to), "B")
      << "compliant probe period must discover the idle slow path";
  EXPECT_LT(best->rank.scalar_value().to_double(), 0.3);
}

}  // namespace
}  // namespace contra::dataplane
