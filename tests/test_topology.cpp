// Topology tests: graph invariants, generators (fat-tree structure, random
// connectivity), Abilene, the text parser, and RTT/diameter utilities.
#include <gtest/gtest.h>

#include "topology/abilene.h"
#include "topology/generators.h"
#include "topology/parser.h"
#include "topology/topology.h"

namespace contra::topology {
namespace {

TEST(Topology, AddNodeAndLink) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const LinkId ab = t.add_link(a, b, 1e9, 1e-6);
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.num_links(), 2u);  // two directed halves
  EXPECT_EQ(t.link(ab).from, a);
  EXPECT_EQ(t.link(ab).to, b);
  EXPECT_EQ(t.link(t.link(ab).reverse).from, b);
  EXPECT_EQ(t.link(t.link(ab).reverse).reverse, ab);
}

TEST(Topology, DuplicateNameThrows) {
  Topology t;
  t.add_node("x");
  EXPECT_THROW(t.add_node("x"), std::invalid_argument);
}

TEST(Topology, SelfLoopThrows) {
  Topology t;
  const NodeId a = t.add_node("a");
  EXPECT_THROW(t.add_link(a, a, 1e9, 1e-6), std::invalid_argument);
}

TEST(Topology, LinkBetween) {
  Topology t = ring(4);
  EXPECT_NE(t.link_between(0, 1), kInvalidLink);
  EXPECT_EQ(t.link_between(0, 2), kInvalidLink);
}

TEST(Topology, BfsHops) {
  const Topology t = line(5);
  const auto d = t.bfs_hops(0);
  EXPECT_EQ(d[4], 4u);
  EXPECT_EQ(t.diameter(), 4u);
}

TEST(Topology, MaxRttUsesDelays) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const NodeId c = t.add_node("c");
  t.add_link(a, b, 1e9, 10e-6);
  t.add_link(b, c, 1e9, 5e-6);
  t.add_link(a, c, 1e9, 1e-6);  // shortcut
  // a..b one-way is 10us direct but 6us via c; worst pair is a-b at 6us.
  EXPECT_NEAR(t.max_rtt_s(), 2 * 6e-6, 1e-9);
}

TEST(FatTree, SizesMatchPaperAxis) {
  // The Fig. 9 x-axis: k=4 -> 20, k=10 -> 125, k=14 -> 245, k=18 -> 405,
  // k=20 -> 500 switches.
  EXPECT_EQ(fat_tree(4).num_nodes(), 20u);
  EXPECT_EQ(fat_tree(10).num_nodes(), 125u);
  EXPECT_EQ(fat_tree(14).num_nodes(), 245u);
  EXPECT_EQ(fat_tree(18).num_nodes(), 405u);
  EXPECT_EQ(fat_tree(20).num_nodes(), 500u);
}

TEST(FatTree, StructureIsCorrect) {
  const uint32_t k = 4;
  const Topology t = fat_tree(k);
  uint32_t core = 0, agg = 0, edge = 0;
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    switch (fat_tree_layer(t, n)) {
      case FatTreeLayer::kCore: ++core; break;
      case FatTreeLayer::kAgg: ++agg; break;
      case FatTreeLayer::kEdge: ++edge; break;
      case FatTreeLayer::kUnknown: FAIL(); break;
    }
  }
  EXPECT_EQ(core, k * k / 4);
  EXPECT_EQ(agg, k * k / 2);
  EXPECT_EQ(edge, k * k / 2);
  EXPECT_TRUE(t.connected());
  // Every edge switch has k/2 uplinks; every core switch has k downlinks.
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    if (fat_tree_layer(t, n) == FatTreeLayer::kEdge) {
      EXPECT_EQ(t.out_links(n).size(), k / 2);
    } else if (fat_tree_layer(t, n) == FatTreeLayer::kCore) {
      EXPECT_EQ(t.out_links(n).size(), k);
    }
  }
}

TEST(FatTree, EdgeToEdgeCrossPodIsFourHops) {
  const Topology t = fat_tree(4);
  const NodeId e0 = t.find("e0_0");
  const NodeId e3 = t.find("e3_0");
  EXPECT_EQ(t.bfs_hops(e0)[e3], 4u);  // edge-agg-core-agg-edge
}

TEST(FatTree, OddArityThrows) { EXPECT_THROW(fat_tree(5), std::invalid_argument); }

TEST(LeafSpine, FullBipartite) {
  const Topology t = leaf_spine(4, 2);
  EXPECT_EQ(t.num_nodes(), 6u);
  EXPECT_EQ(t.num_links(), 2u * 8);
  EXPECT_EQ(t.diameter(), 2u);
}

TEST(RandomConnected, AlwaysConnectedAndDeterministic) {
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    const Topology t = random_connected(60, 4.0, seed);
    EXPECT_TRUE(t.connected()) << seed;
    const Topology t2 = random_connected(60, 4.0, seed);
    EXPECT_EQ(t.num_links(), t2.num_links());
  }
}

TEST(RandomConnected, HitsTargetDegree) {
  const Topology t = random_connected(100, 4.0, 3);
  const double avg_degree = 2.0 * (t.num_links() / 2) / t.num_nodes();
  EXPECT_NEAR(avg_degree, 4.0, 0.5);
}

TEST(Grid, StructureAndDiameter) {
  const Topology t = grid(3, 4);
  EXPECT_EQ(t.num_nodes(), 12u);
  EXPECT_EQ(t.diameter(), 5u);  // (3-1) + (4-1)
}

TEST(Abilene, HasElevenNodesAndFourteenCables) {
  const Topology t = abilene();
  EXPECT_EQ(t.num_nodes(), 11u);
  EXPECT_EQ(t.num_links(), 28u);
  EXPECT_TRUE(t.connected());
  EXPECT_NE(t.find("Seattle"), kInvalidNode);
  EXPECT_NE(t.find("WashingtonDC"), kInvalidNode);
}

TEST(Abilene, DelayScaleApplies) {
  const Topology base = abilene(40e9, 1.0);
  const Topology scaled = abilene(40e9, 0.1);
  EXPECT_NEAR(scaled.max_rtt_s(), base.max_rtt_s() * 0.1, base.max_rtt_s() * 0.01);
}

TEST(RunningExample, MatchesFig6a) {
  const Topology t = running_example();
  EXPECT_EQ(t.num_nodes(), 4u);
  EXPECT_TRUE(t.adjacent(t.find("A"), t.find("B")));
  EXPECT_TRUE(t.adjacent(t.find("B"), t.find("D")));
  EXPECT_TRUE(t.adjacent(t.find("C"), t.find("D")));
  EXPECT_FALSE(t.adjacent(t.find("A"), t.find("D")));
}

TEST(Parser, ParsesLinksAndDefaults) {
  const Topology t = parse_topology("link a b\nlink b c 40 100\n");
  EXPECT_EQ(t.num_nodes(), 3u);
  const LinkId bc = t.link_between(t.find("b"), t.find("c"));
  EXPECT_DOUBLE_EQ(t.link(bc).capacity_bps, 40e9);
  EXPECT_DOUBLE_EQ(t.link(bc).delay_s, 100e-6);
}

TEST(Parser, CommentsAndNodeLines) {
  const Topology t = parse_topology("# hello\nnode solo\nlink a b\n");
  EXPECT_EQ(t.num_nodes(), 3u);
  EXPECT_NE(t.find("solo"), kInvalidNode);
}

TEST(Parser, RejectsMalformedLines) {
  EXPECT_THROW(parse_topology("link a"), std::invalid_argument);
  EXPECT_THROW(parse_topology("link a a"), std::invalid_argument);
  EXPECT_THROW(parse_topology("frob a b"), std::invalid_argument);
  EXPECT_THROW(parse_topology("link a b notanumber"), std::invalid_argument);
  EXPECT_THROW(parse_topology("link a b -1"), std::invalid_argument);
}

TEST(Parser, RoundTripsThroughFormat) {
  const Topology t = abilene();
  const Topology again = parse_topology(format_topology(t));
  EXPECT_EQ(again.num_nodes(), t.num_nodes());
  EXPECT_EQ(again.num_links(), t.num_links());
  for (LinkId l = 0; l < t.num_links(); ++l) {
    const auto& a = t.link(l);
    const LinkId l2 = again.link_between(again.find(t.name(a.from)), again.find(t.name(a.to)));
    ASSERT_NE(l2, kInvalidLink);
    EXPECT_NEAR(again.link(l2).delay_s, a.delay_s, a.delay_s * 1e-3 + 1e-12);
  }
}

}  // namespace
}  // namespace contra::topology
