// Assorted edge-case coverage across modules: invalid tag transitions,
// single-node compilations, rank corner semantics, link behaviour during
// administrative down, and classified P4 generation.
#include <gtest/gtest.h>

#include "compiler/classified.h"
#include "compiler/compiler.h"
#include "lang/parser.h"
#include "lang/policies.h"
#include "p4gen/p4gen.h"
#include "pg/product_graph.h"
#include "sim/simulator.h"
#include "topology/generators.h"
#include "topology/zoo.h"

namespace contra {
namespace {

TEST(EdgeCases, NextTagInvalidForOutOfRangeTag) {
  const topology::Topology topo = topology::ring(4);
  const auto compiled = compiler::compile(lang::policies::min_util(), topo);
  EXPECT_EQ(compiled.graph.next_tag(9999, 0), pg::kInvalidTag);
}

TEST(EdgeCases, TwoNodeTopologyCompiles) {
  const topology::Topology topo = topology::line(2);
  const auto compiled = compiler::compile(lang::policies::min_util(), topo);
  EXPECT_EQ(compiled.graph.num_nodes(), 2u);
  EXPECT_EQ(compiled.switches.size(), 2u);
  EXPECT_TRUE(compiled.switches[0].is_destination);
}

TEST(EdgeCases, PolicyNamingUnknownSwitchCompilesToNoRoutes) {
  // A waypoint that does not exist in the topology: no path can match, so
  // no destination is valid and no probes originate.
  const topology::Topology topo = topology::ring(4);
  const auto compiled =
      compiler::compile("minimize(if .* GHOST .* then path.util else inf)", topo);
  for (const auto& cfg : compiled.switches) {
    EXPECT_FALSE(cfg.is_destination) << cfg.name;
  }
}

TEST(EdgeCases, RegexOnlyPolicyOverDenseGraphKeepsTagsSmall) {
  const topology::Topology topo = topology::leaf_spine(4, 4);
  const auto compiled =
      compiler::compile("minimize(if .* spine0 .* then path.util else inf)", topo);
  EXPECT_LE(compiled.graph.num_tags(), 3u);
  EXPECT_LE(compiled.tag_bits(), 2u);
}

TEST(EdgeCases, RankSelfComparisonAndNegatives) {
  const lang::Rank negative = lang::Rank::scalar(-1.5);
  EXPECT_EQ(negative, negative);
  EXPECT_LT(negative, lang::Rank::scalar(0.0));
  const lang::Rank empty = lang::Rank::vector({});
  EXPECT_EQ(empty, lang::Rank::scalar(0.0));  // zero-padded comparison
}

TEST(EdgeCases, MaxRttOnSingleNode) {
  topology::Topology topo;
  topo.add_node("only");
  EXPECT_DOUBLE_EQ(topo.max_rtt_s(), 0.0);
  EXPECT_TRUE(topo.connected());
  EXPECT_EQ(topo.diameter(), 0u);
}

TEST(EdgeCases, LinkGoesDownMidTransmission) {
  sim::EventQueue events;
  sim::Link link(events, 1e9, 1e-6, 1 << 20, 1e-3);
  int delivered = 0;
  link.set_deliver([&](sim::Packet&&) { ++delivered; });
  sim::Packet p;
  p.size_bytes = 1500;
  link.enqueue(std::move(p));
  // Down before the 12us serialization finishes: the packet is lost.
  events.schedule_at(5e-6, [&] { link.set_down(true); });
  events.run_until(1e-3);
  EXPECT_EQ(delivered, 0);
}

TEST(EdgeCases, ClassifiedP4GenerationPerClass) {
  const topology::Topology topo = topology::running_example();
  const auto compiled = compiler::compile_classified(R"(
    class proto == udp : minimize(path.lat)
    class * : minimize(path.util)
  )", topo);
  // Each class renders its own program set with its own metric fields.
  const std::string p4_lat = p4gen::generate_common_headers(compiled.classes[0]);
  const std::string p4_util = p4gen::generate_common_headers(compiled.classes[1]);
  EXPECT_NE(p4_lat.find("mv_lat"), std::string::npos);
  EXPECT_EQ(p4_lat.find("mv_util"), std::string::npos);
  EXPECT_NE(p4_util.find("mv_util"), std::string::npos);
  EXPECT_EQ(p4_util.find("mv_lat"), std::string::npos);
}

TEST(EdgeCases, ZooTopologiesSatisfyProbePeriodRule) {
  // The §5.2 rule must produce sane bounds on real WAN delays.
  EXPECT_GT(compiler::compile(lang::policies::min_util(), topology::geant())
                .min_probe_period_s,
            1e-3);  // continental RTTs: milliseconds
  EXPECT_GT(compiler::compile(lang::policies::min_util(), topology::b4())
                .min_probe_period_s,
            20e-3);  // intercontinental
}

TEST(EdgeCases, CompileIsDeterministic) {
  const topology::Topology topo = topology::fat_tree(4);
  const auto a = compiler::compile(lang::policies::congestion_aware(), topo);
  const auto b = compiler::compile(lang::policies::congestion_aware(), topo);
  EXPECT_EQ(a.graph.num_tags(), b.graph.num_tags());
  EXPECT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.max_switch_state_bytes(), b.max_switch_state_bytes());
  EXPECT_EQ(p4gen::generate_all(a), p4gen::generate_all(b));
}

TEST(EdgeCases, DisconnectedTopologyHasNoCrossRoutes) {
  topology::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto c = topo.add_node("c");
  const auto d = topo.add_node("d");
  topo.add_link(a, b, 1e9, 1e-6);
  topo.add_link(c, d, 1e9, 1e-6);
  EXPECT_FALSE(topo.connected());
  const auto compiled = compiler::compile(lang::policies::min_util(), topo);
  // Both components compile; BFS confirms no cross reachability.
  EXPECT_EQ(topo.bfs_hops(a)[c], UINT32_MAX);
  EXPECT_GT(compiled.graph.num_edges(), 0u);
}

}  // namespace
}  // namespace contra
