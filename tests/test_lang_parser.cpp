// Parser tests: every Fig. 2 production, the Fig. 3 policy catalog (P1-P9),
// disambiguation corner cases, round-tripping through the printer, and
// error reporting.
#include <gtest/gtest.h>

#include "lang/parser.h"
#include "lang/policies.h"
#include "lang/printer.h"

namespace contra::lang {
namespace {

Policy reparse(const Policy& p) { return parse_policy(to_string(p)); }

TEST(Parser, MinimalPolicy) {
  const Policy p = parse_policy("minimize(path.len)");
  ASSERT_EQ(p.objective->kind, Expr::Kind::kAttr);
  EXPECT_EQ(p.objective->attr, PathAttr::kLen);
}

TEST(Parser, AllAttributes) {
  EXPECT_EQ(parse_expr("path.util")->attr, PathAttr::kUtil);
  EXPECT_EQ(parse_expr("path.lat")->attr, PathAttr::kLat);
  EXPECT_EQ(parse_expr("path.len")->attr, PathAttr::kLen);
}

TEST(Parser, UnknownAttributeThrows) {
  EXPECT_THROW(parse_policy("minimize(path.jitter)"), ParseError);
}

TEST(Parser, Infinity) {
  EXPECT_EQ(parse_expr("inf")->kind, Expr::Kind::kInfinity);
}

TEST(Parser, TupleFlattensAtParse) {
  const ExprPtr e = parse_expr("(path.util, path.len)");
  ASSERT_EQ(e->kind, Expr::Kind::kTuple);
  ASSERT_EQ(e->elems.size(), 2u);
}

TEST(Parser, ParenthesizedScalarIsNotTuple) {
  const ExprPtr e = parse_expr("(path.util)");
  EXPECT_EQ(e->kind, Expr::Kind::kAttr);
}

TEST(Parser, ArithmeticLeftAssociative) {
  const ExprPtr e = parse_expr("1 + 2 - 3");
  ASSERT_EQ(e->kind, Expr::Kind::kBinOp);
  EXPECT_EQ(e->op, BinOp::kSub);
  EXPECT_EQ(e->lhs->op, BinOp::kAdd);
}

TEST(Parser, MinMaxFunctions) {
  const ExprPtr e = parse_expr("min(path.util, max(path.lat, 3))");
  EXPECT_EQ(e->op, BinOp::kMin);
  EXPECT_EQ(e->rhs->op, BinOp::kMax);
}

TEST(Parser, IfWithRegexTest) {
  const Policy p = parse_policy("minimize(if A .* D then path.util else inf)");
  ASSERT_EQ(p.objective->kind, Expr::Kind::kIf);
  EXPECT_EQ(p.objective->cond->kind, BoolTest::Kind::kRegex);
}

TEST(Parser, IfWithDynamicTest) {
  const Policy p = parse_policy("minimize(if path.util < .8 then 1 else 2)");
  ASSERT_EQ(p.objective->cond->kind, BoolTest::Kind::kCompare);
  EXPECT_EQ(p.objective->cond->cmp, BoolTest::CmpOp::kLt);
}

TEST(Parser, NestedIf) {
  const Policy p =
      parse_policy("minimize(if A then 0 else if B then 1 else inf)");
  EXPECT_EQ(p.objective->else_branch->kind, Expr::Kind::kIf);
}

TEST(Parser, BooleanConnectives) {
  const Policy p = parse_policy(
      "minimize(if not (path.util < .5) and (A .* or B .*) then 1 else 2)");
  ASSERT_EQ(p.objective->cond->kind, BoolTest::Kind::kAnd);
  EXPECT_EQ(p.objective->cond->left->kind, BoolTest::Kind::kNot);
  EXPECT_EQ(p.objective->cond->right->kind, BoolTest::Kind::kOr);
}

TEST(Parser, RegexUnionConcatStar) {
  const RegexPtr r = parse_regex("A (B + C)* D");
  ASSERT_EQ(r->kind, Regex::Kind::kConcat);
  // ((A (B+C)*) D): outer concat's right is D.
  EXPECT_EQ(r->right->kind, Regex::Kind::kNode);
  EXPECT_EQ(r->right->node, "D");
}

TEST(Parser, RegexDotStar) {
  const RegexPtr r = parse_regex(".*");
  EXPECT_EQ(r->kind, Regex::Kind::kStar);
  EXPECT_EQ(r->left->kind, Regex::Kind::kDot);
}

TEST(Parser, RegexStarBindsTighterThanConcat) {
  const RegexPtr r = parse_regex("A B*");
  ASSERT_EQ(r->kind, Regex::Kind::kConcat);
  EXPECT_EQ(r->right->kind, Regex::Kind::kStar);
}

TEST(Parser, ParenGroupedTestBacktracks) {
  // '(' here could open a test group, a regex group, or a comparison.
  const Policy grouped = parse_policy("minimize(if (A .* ) then 0 else 1)");
  EXPECT_EQ(grouped.objective->cond->kind, BoolTest::Kind::kRegex);
  const Policy cmp = parse_policy("minimize(if (path.len) < 3 then 0 else 1)");
  EXPECT_EQ(cmp.objective->cond->kind, BoolTest::Kind::kCompare);
}

TEST(Parser, WeightedLinkPolicyShape) {
  // P7: (if .*XY.* then 10 else 0) + path.len
  const Policy p =
      parse_policy("minimize((if .* X Y .* then 10 else 0) + path.len)");
  ASSERT_EQ(p.objective->kind, Expr::Kind::kBinOp);
  EXPECT_EQ(p.objective->op, BinOp::kAdd);
  EXPECT_EQ(p.objective->lhs->kind, Expr::Kind::kIf);
}

TEST(Parser, MissingMinimizeThrows) {
  EXPECT_THROW(parse_policy("path.util"), ParseError);
}

TEST(Parser, TrailingGarbageThrows) {
  EXPECT_THROW(parse_policy("minimize(path.util) extra"), ParseError);
}

TEST(Parser, UnbalancedParensThrow) {
  EXPECT_THROW(parse_policy("minimize((path.util)"), ParseError);
}

TEST(Parser, MissingElseThrows) {
  EXPECT_THROW(parse_policy("minimize(if A then 1)"), ParseError);
}

// ---- the full Fig. 3 catalog parses and round-trips -----------------------

class CatalogTest : public ::testing::TestWithParam<Policy> {};

TEST_P(CatalogTest, RoundTripsThroughPrinter) {
  const Policy p = GetParam();
  const Policy again = reparse(p);
  EXPECT_EQ(to_string(p), to_string(again));
}

INSTANTIATE_TEST_SUITE_P(
    Fig3Policies, CatalogTest,
    ::testing::Values(policies::shortest_path(), policies::min_util(),
                      policies::widest_shortest(), policies::shortest_widest(),
                      policies::waypoint("F1", "F2"), policies::waypoint_single("W"),
                      policies::link_preference("X", "Y"),
                      policies::weighted_link("X", "Y", 10), policies::source_local("X"),
                      policies::congestion_aware(), policies::failover("A B D", "A C D")));

TEST(Parser, CatalogHasExpectedRegexCounts) {
  EXPECT_EQ(collect_regexes(policies::min_util()).size(), 0u);
  EXPECT_EQ(collect_regexes(policies::waypoint("F1", "F2")).size(), 1u);
  EXPECT_EQ(collect_regexes(policies::congestion_aware()).size(), 0u);
  EXPECT_EQ(collect_regexes(policies::failover("A B D", "A C D")).size(), 2u);
}

TEST(Parser, DynamicTestDetection) {
  EXPECT_FALSE(has_dynamic_test(policies::min_util()));
  EXPECT_FALSE(has_dynamic_test(policies::waypoint("F1", "F2")));
  EXPECT_TRUE(has_dynamic_test(policies::congestion_aware()));
}

}  // namespace
}  // namespace contra::lang
