// Contra switch protocol tests: probe processing semantics (§4.3 + §5.1
// versioning), convergence to policy-optimal paths, congestion adaptation,
// policy compliance, failure detection and rerouting, metric expiry.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <tuple>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "lang/policies.h"
#include "sim/host.h"
#include "sim/transport.h"
#include "topology/abilene.h"
#include "topology/generators.h"

namespace contra::dataplane {
namespace {

using sim::HostId;
using sim::Packet;
using sim::PacketKind;
using topology::NodeId;
using topology::Topology;

struct ContraWorld {
  ContraWorld(Topology topology, const lang::Policy& policy,
              ContraSwitchOptions options = {})
      : topo(std::move(topology)),
        compiled(compiler::compile(policy, topo)),
        evaluator(compiled.graph, compiled.decomposition),
        sim(topo, make_config()),
        switches(install_contra_network(sim, compiled, evaluator, options)) {}

  static sim::SimConfig make_config() {
    sim::SimConfig c;
    c.host_link_bps = 1e9;
    return c;
  }

  void converge(double seconds = 5e-3) {
    sim.start();
    sim.run_until(sim.now() + seconds);
  }

  Topology topo;
  compiler::CompileResult compiled;
  pg::PolicyEvaluator evaluator;
  sim::Simulator sim;
  std::vector<ContraSwitch*> switches;
};

Packet make_probe(NodeId origin, uint32_t pid, uint32_t tag, uint64_t version, double util,
                  double len) {
  Packet p;
  p.kind = PacketKind::kProbe;
  p.id = 1000 + version;
  p.size_bytes = 72;
  pg::MetricsVector mv;
  mv.util = util;
  mv.len = len;
  p.probe = sim::ProbeFields{origin, pid, tag, /*traffic_class=*/0, version, mv};
  return p;
}

// ---- probe semantics, driven by hand-crafted probes ------------------------

class ProbeSemantics : public ::testing::Test {
 protected:
  ProbeSemantics()
      : topo(topology::line(3, topology::LinkParams{1e9, 1e-6})),
        compiled(compiler::compile(lang::policies::min_util(), topo)),
        evaluator(compiled.graph, compiled.decomposition),
        sim(topo, sim::SimConfig{}) {}

  ContraSwitch make_switch(NodeId self, ContraSwitchOptions options = {}) {
    return ContraSwitch(compiled, evaluator, self, options);
  }

  topology::Topology topo;
  compiler::CompileResult compiled;
  pg::PolicyEvaluator evaluator;
  sim::Simulator sim;
};

TEST_F(ProbeSemantics, AdoptsFirstProbe) {
  ContraSwitch sw = make_switch(1);
  const topology::LinkId in = topo.link_between(0, 1);
  sw.handle_packet(sim, make_probe(0, 0, 0, 1, 0.4, 1), in);
  const auto* entry = sw.fwd_entry(0, 0, 0);
  ASSERT_NE(entry, nullptr);
  EXPECT_NEAR(entry->mv.util, 0.4, 1e-9);
  EXPECT_EQ(entry->version, 1u);
  EXPECT_EQ(entry->nhop, topo.link(in).reverse);
}

TEST_F(ProbeSemantics, OlderVersionIsDiscarded) {
  // §5.1: the Fig. 4 fix — a delayed probe carrying stale good news must not
  // override fresher state.
  ContraSwitch sw = make_switch(1);
  const topology::LinkId in = topo.link_between(0, 1);
  sw.handle_packet(sim, make_probe(0, 0, 0, 2, 0.5, 1), in);
  sw.handle_packet(sim, make_probe(0, 0, 0, 1, 0.1, 1), in);  // stale, better
  EXPECT_NEAR(sw.fwd_entry(0, 0, 0)->mv.util, 0.5, 1e-9);
  EXPECT_EQ(sw.stats().probes_dropped_version, 1u);
}

TEST_F(ProbeSemantics, WithoutVersioningStaleGoodNewsWins) {
  // The ablation: classic distance-vector adopts the better metric no matter
  // how old — exactly the §3 loop-forming behaviour.
  ContraSwitchOptions options;
  options.versioned_probes = false;
  ContraSwitch sw = make_switch(1, options);
  const topology::LinkId in = topo.link_between(0, 1);
  sw.handle_packet(sim, make_probe(0, 0, 0, 2, 0.5, 1), in);
  sw.handle_packet(sim, make_probe(0, 0, 0, 1, 0.1, 1), in);
  EXPECT_NEAR(sw.fwd_entry(0, 0, 0)->mv.util, 0.1, 1e-9);
}

TEST_F(ProbeSemantics, SameVersionRequiresImprovement) {
  ContraSwitch sw = make_switch(1);
  const topology::LinkId in = topo.link_between(0, 1);
  sw.handle_packet(sim, make_probe(0, 0, 0, 1, 0.3, 1), in);
  sw.handle_packet(sim, make_probe(0, 0, 0, 1, 0.6, 1), in);  // worse, same v
  EXPECT_NEAR(sw.fwd_entry(0, 0, 0)->mv.util, 0.3, 1e-9);
  EXPECT_GE(sw.stats().probes_dropped_worse, 1u);
  sw.handle_packet(sim, make_probe(0, 0, 0, 1, 0.2, 1), in);  // better, same v
  EXPECT_NEAR(sw.fwd_entry(0, 0, 0)->mv.util, 0.2, 1e-9);
}

TEST_F(ProbeSemantics, NewerVersionWithWorseMetricIsAdopted) {
  // Bad news must spread: utilization increases are adopted on fresher
  // rounds even though the rank got worse.
  ContraSwitch sw = make_switch(1);
  const topology::LinkId in = topo.link_between(0, 1);
  sw.handle_packet(sim, make_probe(0, 0, 0, 1, 0.2, 1), in);
  sw.handle_packet(sim, make_probe(0, 0, 0, 2, 0.8, 1), in);
  EXPECT_NEAR(sw.fwd_entry(0, 0, 0)->mv.util, 0.8, 1e-9);
  EXPECT_EQ(sw.fwd_entry(0, 0, 0)->version, 2u);
}

TEST_F(ProbeSemantics, MetricsVectorExtendsWithIngressLink) {
  ContraSwitch sw = make_switch(1);
  const topology::LinkId in = topo.link_between(0, 1);
  // Probe arrives with len=1 (one hop so far); the switch extends by the
  // traffic-direction link: len becomes 2.
  sw.handle_packet(sim, make_probe(0, 0, 0, 1, 0.0, 1), in);
  EXPECT_NEAR(sw.fwd_entry(0, 0, 0)->mv.len, 2.0, 1e-9);
}

TEST_F(ProbeSemantics, RegressedVersionAcceptedAfterStalenessWindow) {
  // DSDV-style version reset: a probe whose version went backwards means the
  // origin restarted its control plane. Inside the staleness window it is
  // dropped (could be a delayed duplicate); after version_reset_periods of
  // silence it must be accepted or routes to the restarted origin die.
  ContraSwitch sw = make_switch(1);  // defaults: 256us period, 3-period window
  const topology::LinkId in = topo.link_between(0, 1);
  sw.handle_packet(sim, make_probe(0, 0, 0, /*version=*/40, 0.5, 1), in);

  sim.run_until(2 * 256e-6);  // inside the 3-period window
  sw.handle_packet(sim, make_probe(0, 0, 0, 1, 0.1, 1), in);
  EXPECT_EQ(sw.fwd_entry(0, 0, 0)->version, 40u);
  EXPECT_EQ(sw.stats().probes_dropped_version, 1u);

  sim.run_until(4 * 256e-6);  // no accepted refresh for > 3 periods
  sw.handle_packet(sim, make_probe(0, 0, 0, 2, 0.7, 1), in);
  ASSERT_NE(sw.fwd_entry(0, 0, 0), nullptr);
  EXPECT_EQ(sw.fwd_entry(0, 0, 0)->version, 2u);
  EXPECT_NEAR(sw.fwd_entry(0, 0, 0)->mv.util, 0.7, 1e-9);
}

TEST_F(ProbeSemantics, VersionResetDisabledKeepsDropping) {
  ContraSwitchOptions options;
  options.version_reset_periods = 0.0;
  ContraSwitch sw = make_switch(1, options);
  const topology::LinkId in = topo.link_between(0, 1);
  sw.handle_packet(sim, make_probe(0, 0, 0, 40, 0.5, 1), in);
  sim.run_until(10 * 256e-6);  // far past any window
  sw.handle_packet(sim, make_probe(0, 0, 0, 2, 0.7, 1), in);
  EXPECT_EQ(sw.fwd_entry(0, 0, 0)->version, 40u);
  EXPECT_EQ(sw.stats().probes_dropped_version, 1u);
}

TEST_F(ProbeSemantics, OutOfUniverseKeyCountsFallback) {
  // The compiler proved the (dst, tag, pid) universe; a probe outside it must
  // be counted and dropped, never silently hashed into existence. The assert
  // option is lowered to exercise the release-mode counting path.
  ContraSwitchOptions options;
  options.assert_on_dense_fallback = false;
  ContraSwitch sw = make_switch(1, options);
  const topology::LinkId in = topo.link_between(0, 1);
  // pid 7 was never compiled (min_util has a single subpolicy): the key
  // passes the PG tag step but addresses no dense row.
  sw.handle_packet(sim, make_probe(0, /*pid=*/7, 0, 1, 0.4, 1), in);
  EXPECT_EQ(sw.stats().dense_fallback_hits, 1u);
  EXPECT_EQ(sw.stats().fwdt_updates, 0u);
  EXPECT_EQ(sw.stats().probes_propagated, 0u);
  // In-universe probes on the same switch still work afterwards.
  sw.handle_packet(sim, make_probe(0, 0, 0, 1, 0.4, 1), in);
  EXPECT_NE(sw.fwd_entry(0, 0, 0), nullptr);
  EXPECT_EQ(sw.stats().dense_fallback_hits, 1u);
}

TEST_F(ProbeSemantics, RenderTablesGoldenFormat) {
  // Pins the exact rendered table (format AND row order) against hand-fed
  // probes. The dense layout guarantees (dst, tag, pid)-major order without
  // sorting; a diff here means either the introspection format or the slice
  // ordering changed — both load-bearing for tooling that parses the dump.
  ContraSwitch sw = make_switch(1);
  sw.handle_packet(sim, make_probe(0, 0, 0, 1, 0.4, 1), topo.link_between(0, 1));
  sw.handle_packet(sim, make_probe(2, 0, 0, 1, 0.1, 1), topo.link_between(2, 1));
  const std::string tables = sw.render_tables(sim.now());
  EXPECT_EQ(tables,
            "FwdT @ n1 (* = BestT choice)\n"
            "  [dst, tag, pid] -> (util, lat_us, len), ntag, nhop, version\n"
            "  [n0, t0, p0] -> (0.400, 1.00, 2), t0, n0, v1 *\n"
            "  [n2, t0, p0] -> (0.100, 1.00, 2), t0, n2, v1 *\n");
}

// ---- convergence -----------------------------------------------------------

TEST(ContraConvergence, ShortestPathPolicyMatchesBfs) {
  ContraWorld world(topology::abilene(1e9, 0.001), lang::policies::shortest_path());
  world.converge(10e-3);
  // s() for path.len is the hop count: must equal BFS distance for every
  // (src, dst) pair — the protocol converged to optimal paths (§ "Optimal").
  for (NodeId src = 0; src < world.topo.num_nodes(); ++src) {
    const auto hops = world.topo.bfs_hops(src);
    for (NodeId dst = 0; dst < world.topo.num_nodes(); ++dst) {
      if (src == dst) continue;
      const auto best = world.switches[src]->best_choice(dst, world.sim.now());
      ASSERT_TRUE(best.has_value()) << src << "->" << dst;
      EXPECT_EQ(best->rank, lang::Rank::scalar(static_cast<double>(hops[dst])))
          << world.topo.name(src) << "->" << world.topo.name(dst);
    }
  }
}

TEST(ContraConvergence, RunningExampleMatchesPaper) {
  // Fig. 6: A pins A-B-D (rank 0); B load-balances toward D.
  ContraWorld world(
      topology::running_example(),
      lang::parse_policy("minimize(if A B D then 0 else if B .* D then path.util else inf)"));
  world.converge();
  const NodeId a = world.topo.find("A");
  const NodeId b = world.topo.find("B");
  const NodeId d = world.topo.find("D");

  const auto best_a = world.switches[a]->best_choice(d, world.sim.now());
  ASSERT_TRUE(best_a.has_value());
  EXPECT_EQ(best_a->rank, lang::Rank::scalar(0.0));
  EXPECT_EQ(world.topo.link(best_a->nhop).to, b);  // first hop of A-B-D

  const auto best_b = world.switches[b]->best_choice(d, world.sim.now());
  ASSERT_TRUE(best_b.has_value());
  EXPECT_FALSE(best_b->rank.is_infinite());

  // C can only reach D via the B.*D class if its paths start with B — they
  // don't (C is the first node), so C has no policy-compliant route.
  const auto best_c = world.switches[world.topo.find("C")]->best_choice(d, world.sim.now());
  EXPECT_FALSE(best_c.has_value());
}

TEST(ContraConvergence, AdaptsAwayFromCongestedPath) {
  // Diamond: S-A-D and S-B-D. Flood A-D with UDP; the MU policy must steer
  // S's choice to B within a few probe periods.
  Topology topo;
  const NodeId s = topo.add_node("S");
  const NodeId a = topo.add_node("A");
  const NodeId b = topo.add_node("B");
  const NodeId d = topo.add_node("D");
  topo.add_link(s, a, 1e9, 1e-6);
  topo.add_link(s, b, 1e9, 1e-6);
  topo.add_link(a, d, 1e9, 1e-6);
  topo.add_link(b, d, 1e9, 1e-6);

  ContraWorld world(std::move(topo), lang::policies::min_util());
  sim::TransportManager transport(world.sim);
  const HostId host_a = world.sim.add_host(a);
  const HostId host_d = world.sim.add_host(d);
  world.sim.start();
  world.sim.run_until(3e-3);

  // Converged and idle: both paths rank equally (util ~0).
  const auto before = world.switches[s]->best_choice(d, world.sim.now());
  ASSERT_TRUE(before.has_value());

  // 800 Mbps of UDP across A-D.
  transport.start_udp_flow(host_a, host_d, 800e6, world.sim.now(), world.sim.now() + 50e-3);
  world.sim.run_until(world.sim.now() + 20e-3);

  const auto after = world.switches[s]->best_choice(d, world.sim.now());
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(world.topo.link(after->nhop).to, b) << "should avoid the congested A-D path";
}

TEST(ContraConvergence, EveryPairRoutableUnderMinUtil) {
  ContraWorld world(topology::fat_tree(4), lang::policies::min_util());
  world.converge(5e-3);
  for (NodeId src = 0; src < world.topo.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < world.topo.num_nodes(); ++dst) {
      if (src == dst) continue;
      EXPECT_TRUE(world.switches[src]->best_choice(dst, world.sim.now()).has_value())
          << world.topo.name(src) << "->" << world.topo.name(dst);
    }
  }
}

// ---- failures ---------------------------------------------------------------

TEST(ContraFailure, ReroutesAroundFailedLink) {
  ContraSwitchOptions options;
  options.probe_period_s = 100e-6;
  ContraWorld world(topology::running_example(), lang::policies::min_util(), options);
  world.converge(3e-3);

  const NodeId a = world.topo.find("A");
  const NodeId b = world.topo.find("B");
  const NodeId d = world.topo.find("D");

  // Force A's current choice through B by checking, then fail B-D AND B-C so
  // B is a dead end toward D... simpler: fail whichever first hop A uses.
  const auto before = world.switches[a]->best_choice(d, world.sim.now());
  ASSERT_TRUE(before.has_value());
  const NodeId via = world.topo.link(before->nhop).to;
  const NodeId other = via == b ? world.topo.find("C") : b;

  world.sim.fail_cable(world.topo.link_between(via, d));
  world.sim.run_until(world.sim.now() + 5e-3);

  const auto after = world.switches[a]->best_choice(d, world.sim.now());
  ASSERT_TRUE(after.has_value());
  // A may route via the other branch directly, or still via `via` which now
  // relays through the other side; either way rank is finite and the next
  // hop's path avoids the dead link. Check A's packets can actually arrive:
  EXPECT_TRUE(world.topo.link(after->nhop).to == other ||
              world.topo.link(after->nhop).to == via);
  EXPECT_FALSE(after->rank.is_infinite());
}

TEST(ContraFailure, MetricExpiryRemovesDeadRoutes) {
  ContraSwitchOptions options;
  options.probe_period_s = 100e-6;
  options.metric_expiry_periods = 5;
  ContraWorld world(topology::line(2), lang::policies::min_util(), options);
  world.converge(2e-3);

  const auto before = world.switches[0]->best_choice(1, world.sim.now());
  ASSERT_TRUE(before.has_value());

  // Cut the only link: after expiry there must be no usable route.
  world.sim.fail_cable(world.topo.link_between(0, 1));
  world.sim.run_until(world.sim.now() + 2e-3);
  EXPECT_FALSE(world.switches[0]->best_choice(1, world.sim.now()).has_value());
}

TEST(ContraFailure, FailoverPolicyPrefersPrimaryThenBackup) {
  Topology topo;
  const NodeId a = topo.add_node("A");
  const NodeId b = topo.add_node("B");
  const NodeId c = topo.add_node("C");
  const NodeId d = topo.add_node("D");
  topo.add_link(a, b, 1e9, 1e-6);
  topo.add_link(b, d, 1e9, 1e-6);
  topo.add_link(a, c, 1e9, 1e-6);
  topo.add_link(c, d, 1e9, 1e-6);

  ContraSwitchOptions options;
  options.probe_period_s = 100e-6;
  ContraWorld world(std::move(topo), lang::policies::failover("A B D", "A C D"), options);
  world.converge(3e-3);

  auto best = world.switches[a]->best_choice(d, world.sim.now());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(world.topo.link(best->nhop).to, b);
  EXPECT_EQ(best->rank, lang::Rank::scalar(0.0));

  world.sim.fail_cable(world.topo.link_between(b, d));
  world.sim.run_until(world.sim.now() + 5e-3);
  best = world.switches[a]->best_choice(d, world.sim.now());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(world.topo.link(best->nhop).to, c);
  EXPECT_EQ(best->rank, lang::Rank::scalar(1.0));

  world.sim.restore_cable(world.topo.link_between(b, d));
  world.sim.run_until(world.sim.now() + 5e-3);
  best = world.switches[a]->best_choice(d, world.sim.now());
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(world.topo.link(best->nhop).to, b);
}

TEST(ContraFailure, RestartedDestinationRecoversRoutes) {
  // Kill/revive: the destination's control plane restarts (probe versions go
  // back to zero). The rest of the fabric holds entries with much larger
  // versions; without the staleness-window reset the restarted origin could
  // never re-announce itself and its routes would expire.
  ContraSwitchOptions options;
  options.probe_period_s = 100e-6;
  ContraWorld world(topology::line(3), lang::policies::min_util(), options);
  world.converge(3e-3);

  const auto before = world.switches[0]->best_choice(2, world.sim.now());
  ASSERT_TRUE(before.has_value());
  const uint64_t v_before = world.switches[0]->fwd_entry(2, before->tag, before->pid)->version;
  ASSERT_GT(v_before, 3u);

  world.switches[2]->restart_control_plane();
  world.sim.run_until(world.sim.now() + 3e-3);

  const auto after = world.switches[0]->best_choice(2, world.sim.now());
  ASSERT_TRUE(after.has_value());
  const auto* entry = world.switches[0]->fwd_entry(2, after->tag, after->pid);
  ASSERT_NE(entry, nullptr);
  // The adopted version comes from the restarted clock, which lags the old
  // one by the whole pre-restart run.
  EXPECT_LT(entry->version, v_before);
}

TEST(ContraFailure, RestartedDestinationStaysDarkWithoutReset) {
  // Ablation for the test above: with the reset window disabled, regressed
  // versions are dropped forever and metric expiry removes the routes.
  ContraSwitchOptions options;
  options.probe_period_s = 100e-6;
  options.version_reset_periods = 0.0;
  options.metric_expiry_periods = 8.0;
  ContraWorld world(topology::line(3), lang::policies::min_util(), options);
  world.converge(3e-3);
  ASSERT_TRUE(world.switches[0]->best_choice(2, world.sim.now()).has_value());

  world.switches[2]->restart_control_plane();
  world.sim.run_until(world.sim.now() + 3e-3);
  EXPECT_FALSE(world.switches[0]->best_choice(2, world.sim.now()).has_value());
}

// ---- end-to-end forwarding --------------------------------------------------

TEST(ContraForwarding, DeliversFlowsAndCountsStats) {
  ContraWorld world(topology::fat_tree(4), lang::policies::min_util());
  sim::TransportManager transport(world.sim);
  const std::vector<HostId> hosts = sim::attach_hosts_to_fat_tree_edges(world.sim, 1);
  world.sim.start();
  world.sim.run_until(3e-3);

  transport.start_flow(hosts[0], hosts[5], 100'000, world.sim.now());
  transport.start_flow(hosts[3], hosts[7], 100'000, world.sim.now());
  world.sim.run_until(world.sim.now() + 100e-3);
  EXPECT_EQ(transport.completed_flows().size(), 2u);

  uint64_t forwarded = 0;
  uint64_t no_route = 0;
  for (const ContraSwitch* sw : world.switches) {
    forwarded += sw->stats().data_forwarded;
    no_route += sw->stats().data_dropped_no_route;
  }
  EXPECT_GT(forwarded, 0u);
  EXPECT_EQ(no_route, 0u);
}

TEST(ContraForwarding, WaypointTrafficAlwaysCrossesWaypoint) {
  Topology topo;
  const NodeId s = topo.add_node("S");
  const NodeId w = topo.add_node("W");
  const NodeId x = topo.add_node("X");
  const NodeId d = topo.add_node("D");
  topo.add_link(s, w, 1e9, 1e-6);
  topo.add_link(w, d, 1e9, 1e-6);
  topo.add_link(s, x, 1e9, 1e-6);
  topo.add_link(x, d, 1e9, 1e-6);

  ContraWorld world(std::move(topo), lang::policies::waypoint_single("W"));
  sim::TransportManager transport(world.sim);
  const HostId hs = world.sim.add_host(s);
  const HostId hd = world.sim.add_host(d);
  world.sim.start();
  world.sim.run_until(3e-3);

  transport.start_flow(hs, hd, 200'000, world.sim.now());
  world.sim.run_until(world.sim.now() + 100e-3);
  ASSERT_EQ(transport.completed_flows().size(), 1u);

  // The bypass switch X must have forwarded nothing.
  EXPECT_EQ(world.switches[x]->stats().data_forwarded, 0u);
  EXPECT_GT(world.switches[w]->stats().data_forwarded, 0u);
}

TEST(ContraIntrospection, RenderTablesShowsEntriesAndBestChoice) {
  ContraWorld world(topology::running_example(), lang::policies::min_util());
  world.converge(5e-3);
  const topology::NodeId a = world.topo.find("A");
  const std::string tables = world.switches[a]->render_tables(world.sim.now());
  EXPECT_NE(tables.find("FwdT @ A"), std::string::npos);
  // Entries exist for every other switch as destination, and exactly one
  // starred (BestT) row per destination.
  for (const char* dst : {"B", "C", "D"}) {
    EXPECT_NE(tables.find(std::string("[") + dst + ","), std::string::npos) << dst;
  }
  const size_t stars = std::count(tables.begin(), tables.end(), '*');
  EXPECT_EQ(stars, 3u + 1u);  // 3 destinations + the header legend's '*'
}

// ---- dense/reference parity and suppression fixed points -------------------

TEST(ContraParity, ReferenceHashTablesMatchDenseTables) {
  // The PR 4 hash-map tables ride along as a shadow (reference_tables) and
  // must agree with the dense rows entry-for-entry after real convergence,
  // including the BestT winner rank per destination.
  ContraSwitchOptions options;
  options.reference_tables = true;
  ContraWorld world(topology::abilene(1e9, 0.001), lang::policies::min_util(), options);
  world.converge(10e-3);
  for (ContraSwitch* sw : world.switches) {
    EXPECT_EQ(sw->check_reference_parity(world.sim.now()), "")
        << "switch " << sw->node_id();
  }
}

/// Present FwdT rows keyed by (dst, tag, pid) with version/updated_at
/// excluded: the fixed-point content suppression must not disturb.
using FwdContent = std::map<std::tuple<NodeId, uint32_t, uint32_t>,
                            std::tuple<double, double, double, uint32_t, topology::LinkId>>;

FwdContent fwdt_content(const ContraSwitch& sw, bool include_util) {
  FwdContent content;
  sw.for_each_fwd_entry(
      [&](NodeId dst, uint32_t tag, uint32_t pid, const ContraSwitch::FwdEntry& entry) {
        content[{dst, tag, pid}] = {include_util ? entry.mv.util : 0.0, entry.mv.lat,
                                    entry.mv.len, entry.ntag, entry.nhop};
      });
  return content;
}

void expect_suppression_preserves_fixed_point(const Topology& topo,
                                              const lang::Policy& policy,
                                              bool include_util) {
  ContraSwitchOptions on;  // defaults: suppression enabled
  ContraSwitchOptions off;
  off.probe_suppression = false;
  ContraWorld world_on(topo, policy, on);
  ContraWorld world_off(topo, policy, off);
  world_on.converge(10e-3);
  world_off.converge(10e-3);
  ASSERT_EQ(world_on.switches.size(), world_off.switches.size());
  for (size_t i = 0; i < world_on.switches.size(); ++i) {
    EXPECT_EQ(fwdt_content(*world_on.switches[i], include_util),
              fwdt_content(*world_off.switches[i], include_util))
        << "switch " << world_on.switches[i]->node_id();
  }
}

TEST(ContraSuppression, FixedPointMatchesUnsuppressedOnFatTree) {
  expect_suppression_preserves_fixed_point(topology::fat_tree(4),
                                           lang::policies::min_util(),
                                           /*include_util=*/true);
}

TEST(ContraSuppression, FixedPointMatchesUnsuppressedOnAbilene) {
  expect_suppression_preserves_fixed_point(topology::abilene(10e9, 0.001),
                                           lang::policies::shortest_path(),
                                           /*include_util=*/true);
}

TEST(ContraSuppression, PathFixedPointMatchesOnSlowAbilene) {
  // At 1 Gbps the probe stream itself registers about one util quantum, and
  // the two worlds genuinely measure different offered loads — suppression
  // removes control traffic from the wire; that is part of its point. The
  // routing fixed point (next hop, next tag, propagated lat/len) must still
  // be bit-identical; only the measured util may differ.
  expect_suppression_preserves_fixed_point(topology::abilene(1e9, 0.001),
                                           lang::policies::shortest_path(),
                                           /*include_util=*/false);
}

TEST(ContraForwarding, SameSwitchHostsShortCircuit) {
  ContraWorld world(topology::line(2), lang::policies::min_util());
  sim::TransportManager transport(world.sim);
  const HostId h1 = world.sim.add_host(0);
  const HostId h2 = world.sim.add_host(0);  // same switch
  world.sim.start();
  world.sim.run_until(1e-3);
  transport.start_flow(h1, h2, 50'000, world.sim.now());
  world.sim.run_until(world.sim.now() + 20e-3);
  EXPECT_EQ(transport.completed_flows().size(), 1u);
  // Nothing crossed the fabric.
  EXPECT_EQ(world.sim.aggregate_fabric_stats().tx_data_bytes, 0u);
}

}  // namespace
}  // namespace contra::dataplane
