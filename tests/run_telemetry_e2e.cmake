# End-to-end telemetry check, run via `cmake -P` from ctest:
#
#   cmake -DCONTRASIM=<binary> -DWORK_DIR=<dir>
#         [-DPYTHON=<python3> -DREPORT=<tools/telemetry_report.py>]
#         -P run_telemetry_e2e.cmake
#
# Drives a real contrasim run with a scheduled link failure and
# --telemetry-out plus the dataplane telemetry streams (--flows-out /
# --paths-out / --links-out / --engine-profile), then validates the whole
# reporting pipeline: the JSONL trace and flow stream exist and parse, the
# run manifest sits next to the trace with a config hash, the engine profile
# is loadable Chrome-trace JSON, and (when python3 is available)
# tools/telemetry_report.py digests everything and validates the manifest.

if(NOT DEFINED CONTRASIM OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "need -DCONTRASIM=<binary> and -DWORK_DIR=<dir>")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(trace "${WORK_DIR}/trace.jsonl")
set(manifest "${WORK_DIR}/trace.manifest.json")
set(flows "${WORK_DIR}/flows.jsonl")
set(paths "${WORK_DIR}/paths.jsonl")
set(links "${WORK_DIR}/links.jsonl")
set(profile "${WORK_DIR}/profile.json")

# Small leaf-spine fabric, slow probes, short workload: the run stays fast
# while still exercising probes, traffic, and a mid-run cable failure.
execute_process(
  COMMAND "${CONTRASIM}"
          --builtin leaf-spine:3x3 --plane contra
          --policy "minimize(path.util)"
          --load 0.2 --duration-ms 2 --seed 1
          --probe-period-us 500
          --fail leaf0-spine0 --fail-at-ms 11
          --telemetry-out "${trace}"
          --flows-out "${flows}"
          --paths-out "${paths}" --path-sample-n 4
          --links-out "${links}" --link-sample-us 500
          --engine-profile "${profile}"
  RESULT_VARIABLE run_result
  OUTPUT_VARIABLE run_output
  ERROR_VARIABLE run_output)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "contrasim failed (${run_result}):\n${run_output}")
endif()

# contrasim reports the convergence table derived from the trace.
if(NOT run_output MATCHES "convergence:")
  message(FATAL_ERROR "contrasim output has no convergence table:\n${run_output}")
endif()

foreach(artifact "${trace}" "${manifest}" "${flows}" "${flows}.summary.json"
        "${paths}" "${links}" "${profile}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "expected run artifact missing: ${artifact}")
  endif()
endforeach()

# The trace is JSONL in the documented schema: every line carries a
# timestamp and an event name. Spot-check the first line and that the
# scheduled failure shows up.
file(STRINGS "${trace}" first_lines LIMIT_COUNT 1)
if(NOT first_lines MATCHES "^\\{\"t\":.*\"ev\":\"")
  message(FATAL_ERROR "trace first line is not a schema record: ${first_lines}")
endif()
file(STRINGS "${trace}" down_lines REGEX "\"ev\":\"link_down\"")
list(LENGTH down_lines num_down)
if(NOT num_down EQUAL 1)
  message(FATAL_ERROR "expected exactly 1 link_down record, got ${num_down}")
endif()

# The manifest is valid JSON-ish with the fields two-run comparison needs.
file(READ "${manifest}" manifest_text)
foreach(key "\"schema\"" "\"tool\"" "\"topology\"" "\"plane\"" "\"seed\"" "\"config_hash\"")
  if(NOT manifest_text MATCHES "${key}")
    message(FATAL_ERROR "manifest missing ${key}: ${manifest_text}")
  endif()
endforeach()

# The flow stream follows the documented fixed-key-order schema.
file(STRINGS "${flows}" flow_first LIMIT_COUNT 1)
if(NOT flow_first MATCHES "^\\{\"flow\":.*\"fct_us\":")
  message(FATAL_ERROR "flows first line is not a schema record: ${flow_first}")
endif()
file(STRINGS "${links}" link_first LIMIT_COUNT 1)
if(NOT link_first MATCHES "^\\{\"t\":.*\"link\":.*\"util\":")
  message(FATAL_ERROR "links first line is not a schema record: ${link_first}")
endif()

if(DEFINED PYTHON AND DEFINED REPORT)
  execute_process(
    COMMAND "${PYTHON}" "${REPORT}" "${trace}"
            --flows "${flows}" --paths "${paths}" --links "${links}"
    RESULT_VARIABLE report_result
    OUTPUT_VARIABLE report_output
    ERROR_VARIABLE report_output)
  if(NOT report_result EQUAL 0)
    message(FATAL_ERROR "telemetry_report.py failed (${report_result}):\n${report_output}")
  endif()
  foreach(expected "by event" "route_flip" "convergence:" "config_hash"
          "FLOWS" "p50_us" "PATHS" "LINK HOTSPOTS" "by peak queue depth")
    if(NOT report_output MATCHES "${expected}")
      message(FATAL_ERROR "report output missing '${expected}':\n${report_output}")
    endif()
  endforeach()

  # The engine profile is loadable Chrome trace-event JSON.
  execute_process(
    COMMAND "${PYTHON}" -c "import json,sys; d=json.load(open(sys.argv[1])); \
evs=d['traceEvents']; assert evs, 'no spans'; \
assert all(k in e for e in evs for k in ('name','ph','ts','dur','pid','tid')); \
print(len(evs),'spans ok')" "${profile}"
    RESULT_VARIABLE profile_result
    OUTPUT_VARIABLE profile_output
    ERROR_VARIABLE profile_output)
  if(NOT profile_result EQUAL 0)
    message(FATAL_ERROR "engine profile is not loadable trace JSON:\n${profile_output}")
  endif()

  execute_process(
    COMMAND "${PYTHON}" "${REPORT}" --validate-manifest "${manifest}"
    RESULT_VARIABLE validate_result
    OUTPUT_VARIABLE validate_output
    ERROR_VARIABLE validate_output)
  if(NOT validate_result EQUAL 0)
    message(FATAL_ERROR "manifest validation failed:\n${validate_output}")
  endif()
endif()

message(STATUS "telemetry e2e ok: ${trace}")
