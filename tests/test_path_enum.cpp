// Policy-compliant path enumeration: the offline what-if API must agree
// with the reference evaluator — every returned path satisfies the policy,
// forbidden pairs return nothing, and ranking is consistent.
#include <gtest/gtest.h>

#include "lang/eval.h"
#include "lang/parser.h"
#include "pg/path_enum.h"
#include "topology/generators.h"

namespace contra::pg {
namespace {

using topology::NodeId;
using topology::Topology;

struct Built {
  explicit Built(const Topology& topo_in, const std::string& policy_text)
      : topo(topo_in),
        decomp(analysis::decompose(lang::parse_policy(policy_text))),
        graph(ProductGraph::build(topo, decomp)),
        evaluator(graph, decomp) {}
  Topology topo;
  analysis::Decomposition decomp;
  ProductGraph graph;
  PolicyEvaluator evaluator;
};

std::vector<std::string> names(const Topology& topo, const EnumeratedPath& path) {
  std::vector<std::string> out;
  for (NodeId n : path.nodes) out.push_back(topo.name(n));
  return out;
}

TEST(PathEnum, DiamondMinUtilFindsAllSimplePaths) {
  const Built built(topology::running_example(), "minimize(path.util)");
  const auto paths = enumerate_policy_paths(built.graph, built.evaluator, built.decomp,
                                            built.topo.find("A"), built.topo.find("D"));
  // A-B-D, A-C-D, A-B-C-D, A-C-B-D.
  EXPECT_EQ(paths.size(), 4u);
  for (const auto& path : paths) {
    EXPECT_EQ(path.nodes.front(), built.topo.find("A"));
    EXPECT_EQ(path.nodes.back(), built.topo.find("D"));
    // Physically valid and simple.
    for (size_t i = 0; i + 1 < path.nodes.size(); ++i) {
      EXPECT_TRUE(built.topo.adjacent(path.nodes[i], path.nodes[i + 1]));
    }
  }
  // Best-first: 2-hop paths precede 3-hop ones (len tie-break inside s()?
  // no — MU ranks by util only, all zero => equal; order is deterministic).
  EXPECT_EQ(paths[0].static_rank, paths[1].static_rank);
}

TEST(PathEnum, WaypointPathsAllCrossWaypoint) {
  const Built built(topology::running_example(),
                    "minimize(if .* B .* then path.len else inf)");
  const auto paths = enumerate_policy_paths(built.graph, built.evaluator, built.decomp,
                                            built.topo.find("A"), built.topo.find("D"));
  ASSERT_FALSE(paths.empty());
  const lang::RegexPtr constraint = lang::parse_regex(".* B .*");
  for (const auto& path : paths) {
    EXPECT_TRUE(lang::regex_matches(constraint, names(built.topo, path)))
        << format_paths(built.graph, {path});
  }
  // The best is the shortest through B: A-B-D, rank 2.
  EXPECT_EQ(paths[0].static_rank, lang::Rank::scalar(2.0));
  EXPECT_EQ(names(built.topo, paths[0]),
            (std::vector<std::string>{"A", "B", "D"}));
}

TEST(PathEnum, ForbiddenPairsReturnNothing) {
  // Only D is a valid destination; C as destination yields no paths.
  const Built built(topology::running_example(),
                    "minimize(if .* D then path.util else inf)");
  const auto to_c = enumerate_policy_paths(built.graph, built.evaluator, built.decomp,
                                           built.topo.find("A"), built.topo.find("C"));
  EXPECT_TRUE(to_c.empty());
  const auto to_d = enumerate_policy_paths(built.graph, built.evaluator, built.decomp,
                                           built.topo.find("A"), built.topo.find("D"));
  EXPECT_FALSE(to_d.empty());
}

TEST(PathEnum, FailoverRanksPrimaryFirst) {
  Topology topo;
  const NodeId a = topo.add_node("A");
  const NodeId b = topo.add_node("B");
  const NodeId c = topo.add_node("C");
  const NodeId d = topo.add_node("D");
  topo.add_link(a, b, 1e9, 1e-6);
  topo.add_link(b, d, 1e9, 1e-6);
  topo.add_link(a, c, 1e9, 1e-6);
  topo.add_link(c, d, 1e9, 1e-6);
  const Built built(topo, "minimize(if A B D then 0 else if A C D then 1 else inf)");
  const auto paths =
      enumerate_policy_paths(built.graph, built.evaluator, built.decomp, a, d);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(names(built.topo, paths[0]), (std::vector<std::string>{"A", "B", "D"}));
  EXPECT_EQ(paths[0].static_rank, lang::Rank::scalar(0.0));
  EXPECT_EQ(names(built.topo, paths[1]), (std::vector<std::string>{"A", "C", "D"}));
  EXPECT_EQ(paths[1].static_rank, lang::Rank::scalar(1.0));
}

TEST(PathEnum, RespectsLimits) {
  const Built built(topology::grid(3, 3), "minimize(path.len)");
  PathEnumOptions options;
  options.max_paths = 3;
  const auto paths = enumerate_policy_paths(built.graph, built.evaluator, built.decomp, 0,
                                            8, options);
  EXPECT_EQ(paths.size(), 3u);
  options.max_paths = 64;
  options.max_hops = 4;  // only the 4-hop Manhattan paths fit
  const auto short_paths = enumerate_policy_paths(built.graph, built.evaluator, built.decomp,
                                                  0, 8, options);
  for (const auto& path : short_paths) EXPECT_LE(path.nodes.size(), 5u);
  EXPECT_GE(short_paths.size(), 6u);  // C(4,2)=6 Manhattan routes
}

TEST(PathEnum, EveryPathRankMatchesReferenceEvaluator) {
  const Built built(topology::ring(5),
                    "minimize((if .* n1 n2 .* then 10 else 0) + path.len)");
  const lang::Policy policy =
      lang::parse_policy("minimize((if .* n1 n2 .* then 10 else 0) + path.len)");
  const auto paths = enumerate_policy_paths(built.graph, built.evaluator, built.decomp,
                                            built.topo.find("n0"), built.topo.find("n3"));
  ASSERT_FALSE(paths.empty());
  for (const auto& path : paths) {
    lang::ConcretePath concrete;
    concrete.nodes = names(built.topo, path);
    for (size_t i = 0; i + 1 < path.nodes.size(); ++i) {
      const auto& link =
          built.topo.link(built.topo.link_between(path.nodes[i], path.nodes[i + 1]));
      concrete.links.push_back(lang::LinkMetrics{0.0, link.delay_s * 1e6});
    }
    EXPECT_EQ(path.static_rank, lang::evaluate(policy, concrete))
        << format_paths(built.graph, {path});
  }
}

TEST(PathEnum, FormatIsReadable) {
  const Built built(topology::running_example(), "minimize(path.len)");
  const auto paths = enumerate_policy_paths(built.graph, built.evaluator, built.decomp,
                                            built.topo.find("A"), built.topo.find("D"));
  const std::string text = format_paths(built.graph, paths);
  EXPECT_NE(text.find("A -> B -> D"), std::string::npos);
  EXPECT_NE(text.find("rank="), std::string::npos);
}

}  // namespace
}  // namespace contra::pg
