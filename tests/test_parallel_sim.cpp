// Parallel engine tests: partitioner invariants, epoch barrier protocol,
// and the golden-replay determinism gate for the sharded simulator.
//
// The determinism contract under test (DESIGN.md §8):
//   * --workers N is bit-identical for every N (threads pick *who* runs a
//     shard, never *what* runs);
//   * one shard degenerates to exactly the serial Simulator;
//   * replays (including traced replays and split run_until windows) are
//     byte-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/host.h"
#include "sim/parallel_simulator.h"
#include "sim/transport.h"
#include "topology/abilene.h"
#include "topology/generators.h"
#include "topology/partitioner.h"
#include "workload/generator.h"

namespace contra::sim {
namespace {

// ---- partitioner -----------------------------------------------------------

TEST(Partitioner, SingleShardHasNoCut) {
  const topology::Topology topo = topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const topology::Partition p = topology::partition_topology(topo, 1);
  EXPECT_EQ(p.num_shards, 1u);
  EXPECT_EQ(p.num_cut_links, 0u);
  EXPECT_TRUE(std::isinf(p.min_cut_delay_s));
  for (topology::NodeId n = 0; n < topo.num_nodes(); ++n) EXPECT_EQ(p.shard(n), 0u);
}

TEST(Partitioner, FatTreeBalancedAndDeterministic) {
  const topology::Topology topo = topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const topology::Partition p = topology::partition_topology(topo, 4);
  ASSERT_EQ(p.num_shards, 4u);

  std::vector<uint32_t> sizes(4, 0);
  for (topology::NodeId n = 0; n < topo.num_nodes(); ++n) {
    ASSERT_LT(p.shard(n), 4u);
    ++sizes[p.shard(n)];
  }
  // 20 switches over 4 shards: target 5, refinement may drift by one.
  for (uint32_t s : sizes) {
    EXPECT_GE(s, 4u);
    EXPECT_LE(s, 6u);
  }
  // A fat-tree cannot be split without cutting cables, and every link has
  // the same 1us delay, so that is the lookahead.
  EXPECT_GT(p.num_cut_links, 0u);
  EXPECT_DOUBLE_EQ(p.min_cut_delay_s, 1e-6);

  const topology::Partition replay = topology::partition_topology(topo, 4);
  EXPECT_EQ(p.shard_of, replay.shard_of);
  EXPECT_EQ(p.num_cut_links, replay.num_cut_links);
}

TEST(Partitioner, ClampsToNodeCount) {
  const topology::Topology topo = topology::line(3);
  const topology::Partition p = topology::partition_topology(topo, 8);
  EXPECT_LE(p.num_shards, 3u);
  EXPECT_GE(p.num_shards, 1u);
  std::vector<uint32_t> sizes(p.num_shards, 0);
  for (topology::NodeId n = 0; n < topo.num_nodes(); ++n) ++sizes[p.shard(n)];
  for (uint32_t s : sizes) EXPECT_GE(s, 1u);
}

TEST(Partitioner, RecomputeCutCountsDirectedLinks) {
  const topology::Topology topo = topology::line(2);
  topology::Partition p;
  p.num_shards = 2;
  p.shard_of = {0, 1};
  topology::recompute_cut(topo, p);
  // One cable = two directed links, both crossing.
  EXPECT_EQ(p.num_cut_links, 2u);
  EXPECT_DOUBLE_EQ(p.min_cut_delay_s, topo.link(0).delay_s);
}

TEST(Partitioner, DefaultShardCountScalesWithNodes) {
  EXPECT_EQ(topology::default_num_shards(topology::line(2)), 1u);
  const topology::Topology ft4 = topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  EXPECT_EQ(topology::default_num_shards(ft4), 4u);  // 20 switches
  const topology::Topology ft8 = topology::fat_tree(8, topology::LinkParams{10e9, 1e-6});
  EXPECT_EQ(topology::default_num_shards(ft8), 8u);  // 80 switches, capped at 8
}

TEST(Partitioner, DefaultShardCountRespectsHardwareBudget) {
  const topology::Topology ft8 = topology::fat_tree(8, topology::LinkParams{10e9, 1e-6});
  // Unknown hardware (0): behave like the reproducible one-argument form.
  EXPECT_EQ(topology::default_num_shards(ft8, 0), topology::default_num_shards(ft8));
  // Fewer cores than the topology-sized count: shards follow the cores.
  EXPECT_EQ(topology::default_num_shards(ft8, 4), 4u);
  EXPECT_EQ(topology::default_num_shards(ft8, 1), 1u);
  // More cores than the topology can use: the topology cap wins (80 switches
  // -> 16 shards of ~5).
  EXPECT_EQ(topology::default_num_shards(ft8, 64), 16u);
  EXPECT_EQ(topology::default_num_shards(topology::line(2), 64), 1u);
}

// ---- per-channel safe-horizon matrix ---------------------------------------

/// Two 2-node clusters joined by one cable with asymmetric per-direction
/// delays: a0-a1, b0-b1 internal, a1->b0 slow one way and slower the other.
topology::Topology asymmetric_dumbbell() {
  topology::Topology topo;
  const auto a0 = topo.add_node("a0"), a1 = topo.add_node("a1");
  const auto b0 = topo.add_node("b0"), b1 = topo.add_node("b1");
  topo.add_link(a0, a1, 10e9, 1e-6);
  topo.add_link(b0, b1, 10e9, 1e-6);
  topo.add_link(a1, b0, 10e9, 5e-6, 9e-6);  // a->b 5us, b->a 9us
  return topo;
}

TEST(Partitioner, HorizonMatrixCapturesAsymmetricCutDelays) {
  const topology::Topology topo = asymmetric_dumbbell();
  const topology::Partition p = topology::partition_topology(topo, 2);
  ASSERT_EQ(p.num_shards, 2u);
  const uint32_t sa = p.shard(topo.find("a1"));
  const uint32_t sb = p.shard(topo.find("b0"));
  ASSERT_NE(sa, sb);
  ASSERT_EQ(p.shard(topo.find("a0")), sa);
  ASSERT_EQ(p.shard(topo.find("b1")), sb);

  // The channel horizons are per-direction; the legacy global width is the
  // min over both — a 1.8x lookahead giveaway on the b->a channel.
  EXPECT_DOUBLE_EQ(p.horizon_of(sa, sb), 5e-6);
  EXPECT_DOUBLE_EQ(p.horizon_of(sb, sa), 9e-6);
  EXPECT_DOUBLE_EQ(p.min_cut_delay_s, 5e-6);
  EXPECT_DOUBLE_EQ(p.min_inbound_delay_s(sb), 5e-6);
  EXPECT_DOUBLE_EQ(p.min_inbound_delay_s(sa), 9e-6);
  // Diagonal entries are +infinity: a shard has no cut channel to itself.
  EXPECT_TRUE(std::isinf(p.horizon_of(sa, sa)));
  EXPECT_TRUE(std::isinf(p.horizon_of(sb, sb)));
}

TEST(Partitioner, HorizonMatrixMatchesBruteForceOnFatTree) {
  // Safety bound: for every channel, the matrix entry must equal the true
  // minimum delay over the cut links of that channel (never wider), and the
  // per-dst inbound minimum must never be below the global min cut delay.
  const topology::Topology topo = topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const topology::Partition p = topology::partition_topology(topo, 4);
  ASSERT_EQ(p.num_shards, 4u);

  std::vector<double> truth(size_t{p.num_shards} * p.num_shards,
                            std::numeric_limits<double>::infinity());
  for (const topology::DirectedLink& l : topo.links()) {
    if (!p.crosses(l)) continue;
    double& h = truth[size_t{p.shard(l.from)} * p.num_shards + p.shard(l.to)];
    h = std::min(h, l.delay_s);
  }
  for (uint32_t src = 0; src < p.num_shards; ++src) {
    for (uint32_t dst = 0; dst < p.num_shards; ++dst) {
      const double expect = src == dst ? std::numeric_limits<double>::infinity()
                                       : truth[size_t{src} * p.num_shards + dst];
      EXPECT_EQ(p.horizon_of(src, dst), expect) << src << "->" << dst;
    }
  }
  for (uint32_t dst = 0; dst < p.num_shards; ++dst) {
    EXPECT_GE(p.min_inbound_delay_s(dst), p.min_cut_delay_s);
  }
}

TEST(Partitioner, ZeroDelayCutLinkForcesFusion) {
  // A zero-delay cable in the cut admits no conservative window at all; the
  // two shards it joins must fuse at partition time.
  topology::Topology topo;
  const auto n0 = topo.add_node("n0"), n1 = topo.add_node("n1");
  const auto n2 = topo.add_node("n2"), n3 = topo.add_node("n3");
  topo.add_link(n0, n1, 10e9, 1e-6);
  topo.add_link(n1, n2, 10e9, 0.0);  // the only balanced 2-way cut
  topo.add_link(n2, n3, 10e9, 1e-6);
  const topology::Partition p = topology::partition_topology(topo, 2);
  EXPECT_EQ(p.num_shards, 1u);
  EXPECT_GE(p.fused_shards, 1u);
  EXPECT_EQ(p.num_cut_links, 0u);
  for (topology::NodeId n = 0; n < topo.num_nodes(); ++n) EXPECT_EQ(p.shard(n), 0u);
}

TEST(Partitioner, UnderloadedShardFusesIntoNeighbor) {
  // A 15-node clique (degree 14, heavy probe fan-out) next to a 15-node
  // path (degree <= 2): the natural 2-way split gives the path shard about
  // a sixth of the estimated event load — below the fusion threshold, so it
  // folds into the clique shard rather than paying a barrier per phase.
  topology::Topology topo;
  std::vector<topology::NodeId> clique, path;
  for (int i = 0; i < 15; ++i) clique.push_back(topo.add_node("c" + std::to_string(i)));
  for (int i = 0; i < 15; ++i) path.push_back(topo.add_node("p" + std::to_string(i)));
  for (size_t i = 0; i < clique.size(); ++i) {
    for (size_t j = i + 1; j < clique.size(); ++j) topo.add_link(clique[i], clique[j], 10e9, 1e-6);
  }
  for (size_t i = 0; i + 1 < path.size(); ++i) topo.add_link(path[i], path[i + 1], 10e9, 1e-6);
  topo.add_link(clique[14], path[0], 10e9, 10e-6);

  const topology::Partition p = topology::partition_topology(topo, 2);
  EXPECT_EQ(p.num_shards, 1u);
  EXPECT_GE(p.fused_shards, 1u);

  // Balanced loads do not fuse: the estimate itself is exposed for tests.
  const topology::Topology ft = topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const topology::Partition pf = topology::partition_topology(ft, 4);
  ASSERT_EQ(pf.num_shards, 4u);
  EXPECT_EQ(pf.fused_shards, 0u);
  const std::vector<uint64_t> loads = topology::estimate_shard_loads(ft, pf);
  ASSERT_EQ(loads.size(), 4u);
  for (uint64_t l : loads) EXPECT_GT(l, 0u);
}

// ---- epoch primitives ------------------------------------------------------

TEST(EventQueue, RunBeforeStopsStrictlyBeforeBoundary) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.run_before(2.0);
  // Events at exactly the boundary belong to the *next* epoch.
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  q.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ParallelEngine, IdleShardsNeedNoBarriers) {
  // No devices, no hosts, no events: the lookahead scheduler proves the
  // whole window quiescent and completes without a single barrier. (The
  // legacy global grid ticked ~10 empty epochs here.) Local clocks still
  // advance to the end, matching serial run_until semantics.
  const topology::Topology topo = topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  SimConfig config;
  config.shards = 4;
  ParallelSimulator psim(topo, config);
  EXPECT_EQ(psim.num_shards(), 4u);
  EXPECT_DOUBLE_EQ(psim.epoch_width_s(), 1e-6);
  psim.run_until(10.5e-6);
  EXPECT_DOUBLE_EQ(psim.now(), 10.5e-6);
  EXPECT_EQ(psim.epochs_completed(), 0u);
  for (uint32_t s = 0; s < psim.num_shards(); ++s) {
    EXPECT_DOUBLE_EQ(psim.shard_sim(s).now(), 10.5e-6) << "shard " << s;
  }
}

// Three clusters chained by cut cables of very different delay (used by the
// epoch-width regression test further down, after the digest helpers): a
// narrow 3.1us channel A-B and a wide 97us channel B-C. The legacy
// global-min grid barriers *every* shard every 3.1us; the per-channel
// scheduler lets C run in ~97us strides and skips provably idle shards
// entirely.
topology::Topology heterogeneous_chain() {
  topology::Topology topo;
  std::vector<topology::NodeId> nodes;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(topo.add_node(std::string(1, char('a' + c)) + std::to_string(i)));
    }
  }
  // Irregular intra-cluster delays so cross-shard arrivals never tie with
  // local periodic timers (equal-time ties are the one place two epoch
  // schedules may legitimately diverge).
  const double intra[3] = {1.3e-6, 1.7e-6, 2.3e-6};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 3; ++i) {
      topo.add_link(nodes[c * 4 + i], nodes[c * 4 + i + 1], 10e9, intra[c]);
    }
    topo.add_link(nodes[c * 4], nodes[c * 4 + 2], 10e9, intra[c] * 1.5);
  }
  topo.add_link(nodes[3], nodes[4], 10e9, 3.1e-6);   // A-B: narrow channel
  topo.add_link(nodes[7], nodes[8], 10e9, 97e-6);    // B-C: wide channel
  return topo;
}


TEST(ParallelEngine, ZeroDelayCutCollapsesToOneShard) {
  // All-zero-delay links make the conservative lookahead zero; the
  // partitioner's fusion pass must hand the engine a single shard instead of
  // letting it spin on zero-width epochs.
  const topology::Topology topo = topology::fat_tree(4, topology::LinkParams{10e9, 0.0});
  SimConfig config;
  config.shards = 4;
  ParallelSimulator psim(topo, config);
  EXPECT_EQ(psim.num_shards(), 1u);
}

TEST(ParallelEngine, FailureAppliesOnEveryShardReplica) {
  const topology::Topology topo = topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  SimConfig config;
  config.shards = 4;
  ParallelSimulator psim(topo, config);
  const topology::LinkId l = 0;
  psim.fail_cable(l);
  for (uint32_t s = 0; s < psim.num_shards(); ++s) {
    EXPECT_TRUE(psim.shard_sim(s).link(l).down()) << "shard " << s;
    EXPECT_TRUE(psim.shard_sim(s).link(topo.link(l).reverse).down()) << "shard " << s;
  }
  psim.restore_cable(l);
  for (uint32_t s = 0; s < psim.num_shards(); ++s) {
    EXPECT_FALSE(psim.shard_sim(s).link(l).down()) << "shard " << s;
  }

  psim.schedule_cable_event(5e-6, l, true);
  psim.run_until(10e-6);
  for (uint32_t s = 0; s < psim.num_shards(); ++s) {
    EXPECT_TRUE(psim.shard_sim(s).link(l).down()) << "shard " << s;
  }
}

// ---- golden scenario harness ----------------------------------------------
//
// Mirrors test_sim_core.cpp's run_golden_scenario, with one difference: the
// flow list is canonicalized by (end, flow id) before hashing, so the digest
// is comparable between the serial engine (completion-order records) and the
// parallel engine (shard-merged records).

uint64_t fnv_mix(uint64_t h, uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;
}

uint64_t canonical_digest(uint64_t events, std::vector<FlowRecord> flows,
                          const std::vector<LinkStats>& per_link) {
  std::sort(flows.begin(), flows.end(), [](const FlowRecord& a, const FlowRecord& b) {
    return std::tie(a.end, a.flow_id) < std::tie(b.end, b.flow_id);
  });
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  h = fnv_mix(h, events);
  for (const FlowRecord& f : flows) {
    h = fnv_mix(h, f.flow_id);
    h = fnv_mix(h, std::bit_cast<uint64_t>(f.start));
    h = fnv_mix(h, std::bit_cast<uint64_t>(f.end));
  }
  for (const LinkStats& s : per_link) {
    h = fnv_mix(h, s.tx_packets);
    h = fnv_mix(h, s.tx_bytes);
    h = fnv_mix(h, s.tx_probe_bytes);
    h = fnv_mix(h, s.drops);
    h = fnv_mix(h, s.data_drops);
  }
  return h;
}

struct ScenarioResult {
  uint64_t digest = 0;
  uint64_t events = 0;
  size_t completed_flows = 0;
  uint32_t num_shards = 1;
  uint32_t cut_links = 0;
  std::string trace;   ///< merged JSONL, when requested
  std::string tables;  ///< concatenated FwdT/BestT renders, when requested
};

constexpr double kScenarioEnd = 2e-3 + 4e-3 + 0.05;

workload::WorkloadConfig golden_workload(bool abilene, uint64_t seed) {
  workload::WorkloadConfig wl;
  wl.load = 0.4;
  wl.sender_capacity_bps = 2e9;
  wl.start = 2e-3;
  wl.duration = 4e-3;
  wl.seed = seed;
  wl.size_scale = 0.05;
  (void)abilene;
  return wl;
}

SimConfig golden_sim_config(bool abilene) {
  SimConfig config;
  config.host_link_bps = abilene ? 2e9 : 10e9;
  config.util_tau_s = 512e-6;
  return config;
}

std::string render_all_tables(const topology::Topology& topo,
                              const std::function<Simulator&(topology::NodeId)>& sim_of,
                              Time now) {
  std::string out;
  for (topology::NodeId n = 0; n < topo.num_nodes(); ++n) {
    auto& sw = dynamic_cast<dataplane::ContraSwitch&>(sim_of(n).device_at(n));
    out += sw.render_tables(now);
    out += '\n';
  }
  return out;
}

ScenarioResult run_serial_scenario(const topology::Topology& topo,
                                   const compiler::CompileResult& compiled,
                                   const pg::PolicyEvaluator& evaluator, bool abilene,
                                   uint64_t seed, bool want_tables = false) {
  Simulator sim(topo, golden_sim_config(abilene));
  std::vector<HostId> senders, receivers;
  if (abilene) {
    senders = attach_hosts(sim, {topo.find("Seattle"), topo.find("Sunnyvale")});
    receivers = attach_hosts(sim, {topo.find("NewYork"), topo.find("Atlanta")});
  } else {
    for (HostId h : attach_hosts_to_fat_tree_edges(sim, 2)) {
      (h % 2 ? receivers : senders).push_back(h);
    }
  }
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 256e-6;
  dataplane::install_contra_network(sim, compiled, evaluator, options);
  TransportManager transport(sim);
  const workload::WorkloadConfig wl = golden_workload(abilene, seed);
  workload::submit(transport, workload::generate_poisson(workload::web_search_flow_sizes(),
                                                         senders, receivers, wl));
  sim.start();
  sim.run_until(kScenarioEnd);

  ScenarioResult out;
  out.events = sim.events().events_processed();
  out.completed_flows = transport.completed_flows().size();
  std::vector<LinkStats> per_link;
  for (topology::LinkId id = 0; id < topo.num_links(); ++id) {
    per_link.push_back(sim.link(id).stats());
  }
  out.digest = canonical_digest(out.events, transport.completed_flows(), per_link);
  if (want_tables) {
    out.tables = render_all_tables(
        topo, [&](topology::NodeId) -> Simulator& { return sim; }, kScenarioEnd);
  }
  return out;
}

ScenarioResult run_parallel_scenario(const topology::Topology& topo,
                                     const compiler::CompileResult& compiled,
                                     const pg::PolicyEvaluator& evaluator, bool abilene,
                                     uint64_t seed, uint32_t shards, uint32_t workers,
                                     bool want_trace = false, bool want_tables = false,
                                     bool split_run = false) {
  SimConfig config = golden_sim_config(abilene);
  config.shards = shards;
  config.workers = workers;
  ParallelSimulator psim(topo, config);
  if (want_trace) psim.enable_tracing();

  std::vector<HostId> senders, receivers;
  if (abilene) {
    senders = attach_hosts(psim, {topo.find("Seattle"), topo.find("Sunnyvale")});
    receivers = attach_hosts(psim, {topo.find("NewYork"), topo.find("Atlanta")});
  } else {
    for (HostId h : attach_hosts_to_fat_tree_edges(psim, 2)) {
      (h % 2 ? receivers : senders).push_back(h);
    }
  }
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 256e-6;
  psim.for_each_shard([&](Simulator& shard_sim) {
    dataplane::install_contra_network(shard_sim, compiled, evaluator, options);
  });
  ParallelTransport transport(psim);
  const workload::WorkloadConfig wl = golden_workload(abilene, seed);
  workload::submit(transport, workload::generate_poisson(workload::web_search_flow_sizes(),
                                                         senders, receivers, wl));
  psim.start();
  if (split_run) {
    // Off-grid intermediate window: cross-shard hops produced in the final
    // partial epoch must survive in mailboxes across run_until calls.
    psim.run_until(3.0005e-3);
    psim.run_until(kScenarioEnd);
  } else {
    psim.run_until(kScenarioEnd);
  }

  ScenarioResult out;
  out.events = psim.events_processed();
  out.completed_flows = transport.completed_flows().size();
  out.num_shards = psim.num_shards();
  out.cut_links = psim.partition().num_cut_links;
  std::vector<LinkStats> per_link(topo.num_links());
  for (topology::LinkId id = 0; id < topo.num_links(); ++id) {
    for (uint32_t s = 0; s < psim.num_shards(); ++s) {
      const LinkStats& ls = psim.shard_sim(s).link(id).stats();
      per_link[id].tx_packets += ls.tx_packets;
      per_link[id].tx_bytes += ls.tx_bytes;
      per_link[id].tx_probe_bytes += ls.tx_probe_bytes;
      per_link[id].drops += ls.drops;
      per_link[id].data_drops += ls.data_drops;
    }
  }
  out.digest = canonical_digest(out.events, transport.completed_flows(), per_link);
  if (want_trace) {
    char line[obs::kMaxLineBytes];
    for (const obs::TraceRecord& rec : psim.merged_trace()) {
      out.trace.append(line, obs::format_jsonl(rec, line));
      out.trace += '\n';
    }
  }
  if (want_tables) {
    out.tables = render_all_tables(
        topo,
        [&](topology::NodeId n) -> Simulator& { return psim.shard_sim(psim.shard_of_node(n)); },
        kScenarioEnd);
  }
  return out;
}

struct GoldenFixtures {
  topology::Topology fat_tree = topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  topology::Topology abilene = topology::abilene(2e9, 0.02);
  compiler::CompileResult fat_compiled =
      compiler::compile("minimize((path.len, path.util))", fat_tree);
  compiler::CompileResult abi_compiled = compiler::compile("minimize(path.util)", abilene);
  pg::PolicyEvaluator fat_eval{fat_compiled.graph, fat_compiled.decomposition};
  pg::PolicyEvaluator abi_eval{abi_compiled.graph, abi_compiled.decomposition};
};

// ---- determinism gate ------------------------------------------------------
// Suite name contains "Determinism" so the asan-determinism ctest preset
// picks these up alongside the serial golden-replay tests.

TEST(ParallelDeterminism, SingleShardMatchesSerialEngine) {
  GoldenFixtures fx;
  for (const bool abilene : {false, true}) {
    const topology::Topology& topo = abilene ? fx.abilene : fx.fat_tree;
    const compiler::CompileResult& compiled = abilene ? fx.abi_compiled : fx.fat_compiled;
    const pg::PolicyEvaluator& evaluator = abilene ? fx.abi_eval : fx.fat_eval;
    const ScenarioResult serial =
        run_serial_scenario(topo, compiled, evaluator, abilene, 1, /*want_tables=*/true);
    const ScenarioResult parallel =
        run_parallel_scenario(topo, compiled, evaluator, abilene, 1, /*shards=*/1,
                              /*workers=*/1, false, /*want_tables=*/true);
    EXPECT_EQ(parallel.num_shards, 1u);
    EXPECT_EQ(serial.events, parallel.events) << (abilene ? "abilene" : "fat-tree");
    EXPECT_EQ(serial.digest, parallel.digest) << (abilene ? "abilene" : "fat-tree");
    EXPECT_EQ(serial.tables, parallel.tables) << (abilene ? "abilene" : "fat-tree");
    EXPECT_GT(serial.completed_flows, 0u);
  }
}

TEST(ParallelDeterminism, WorkersInvariantFatTree) {
  GoldenFixtures fx;
  for (const uint64_t seed : {1, 2, 3}) {
    const ScenarioResult base = run_parallel_scenario(fx.fat_tree, fx.fat_compiled, fx.fat_eval,
                                                      false, seed, /*shards=*/4, /*workers=*/1);
    EXPECT_EQ(base.num_shards, 4u);
    EXPECT_GT(base.cut_links, 0u);
    EXPECT_GT(base.completed_flows, 0u);
    for (const uint32_t workers : {2u, 4u, 8u}) {
      const ScenarioResult run = run_parallel_scenario(fx.fat_tree, fx.fat_compiled, fx.fat_eval,
                                                       false, seed, 4, workers);
      EXPECT_EQ(base.digest, run.digest) << "seed " << seed << " workers " << workers;
      EXPECT_EQ(base.events, run.events) << "seed " << seed << " workers " << workers;
    }
  }
  // Shard tables (FwdT/BestT) must also be worker-invariant, not just the
  // traffic digest.
  const ScenarioResult t1 = run_parallel_scenario(fx.fat_tree, fx.fat_compiled, fx.fat_eval,
                                                  false, 1, 4, 1, false, /*want_tables=*/true);
  const ScenarioResult t4 = run_parallel_scenario(fx.fat_tree, fx.fat_compiled, fx.fat_eval,
                                                  false, 1, 4, 4, false, /*want_tables=*/true);
  EXPECT_EQ(t1.tables, t4.tables);
}

TEST(ParallelDeterminism, WorkersInvariantAbilene) {
  GoldenFixtures fx;
  for (const uint64_t seed : {1, 2, 3}) {
    const ScenarioResult base = run_parallel_scenario(fx.abilene, fx.abi_compiled, fx.abi_eval,
                                                      true, seed, /*shards=*/3, /*workers=*/1);
    EXPECT_GT(base.completed_flows, 0u);
    for (const uint32_t workers : {2u, 4u, 8u}) {
      const ScenarioResult run = run_parallel_scenario(fx.abilene, fx.abi_compiled, fx.abi_eval,
                                                       true, seed, 3, workers);
      EXPECT_EQ(base.digest, run.digest) << "seed " << seed << " workers " << workers;
      EXPECT_EQ(base.events, run.events) << "seed " << seed << " workers " << workers;
    }
  }
}

TEST(ParallelDeterminism, TracedReplayIsByteIdentical) {
  GoldenFixtures fx;
  const ScenarioResult first = run_parallel_scenario(fx.fat_tree, fx.fat_compiled, fx.fat_eval,
                                                     false, 2, 4, 4, /*want_trace=*/true);
  const ScenarioResult replay = run_parallel_scenario(fx.fat_tree, fx.fat_compiled, fx.fat_eval,
                                                      false, 2, 4, 4, /*want_trace=*/true);
  EXPECT_EQ(first.digest, replay.digest);
  EXPECT_EQ(first.trace, replay.trace);
  EXPECT_FALSE(first.trace.empty());
  // Cross-shard traffic actually flowed: epochs ticked and barriers drained
  // mailboxes (kBarrier is only emitted for non-empty drains).
  EXPECT_NE(first.trace.find("\"ev\":\"epoch\""), std::string::npos);
  EXPECT_NE(first.trace.find("\"ev\":\"barrier\""), std::string::npos);
}

TEST(ParallelDeterminism, SplitRunWindowsMatchSingleRun) {
  GoldenFixtures fx;
  const ScenarioResult whole = run_parallel_scenario(fx.fat_tree, fx.fat_compiled, fx.fat_eval,
                                                     false, 3, 4, 2);
  const ScenarioResult split =
      run_parallel_scenario(fx.fat_tree, fx.fat_compiled, fx.fat_eval, false, 3, 4, 2, false,
                            false, /*split_run=*/true);
  EXPECT_EQ(whole.digest, split.digest);
  EXPECT_EQ(whole.events, split.events);
}

// ---- epoch-width regression (per-channel lookahead vs global-min grid) -----

TEST(ParallelEngine, PerChannelLookaheadBeatsGlobalMinGrid) {
  const topology::Topology topo = heterogeneous_chain();
  const compiler::CompileResult compiled = compiler::compile("minimize(path.len)", topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  auto run = [&](bool global_min) {
    SimConfig config;
    config.shards = 3;
    config.workers = 2;
    config.global_min_epochs = global_min;
    auto psim = std::make_unique<ParallelSimulator>(topo, config);
    EXPECT_EQ(psim->num_shards(), 3u);
    dataplane::ContraSwitchOptions options;
    options.probe_period_s = 256e-6;
    psim->for_each_shard([&](Simulator& shard_sim) {
      dataplane::install_contra_network(shard_sim, compiled, evaluator, options);
    });
    psim->start();
    psim->run_until(5e-3);

    std::vector<LinkStats> per_link(topo.num_links());
    for (topology::LinkId id = 0; id < topo.num_links(); ++id) {
      for (uint32_t s = 0; s < psim->num_shards(); ++s) {
        const LinkStats& ls = psim->shard_sim(s).link(id).stats();
        per_link[id].tx_packets += ls.tx_packets;
        per_link[id].tx_bytes += ls.tx_bytes;
        per_link[id].tx_probe_bytes += ls.tx_probe_bytes;
        per_link[id].drops += ls.drops;
        per_link[id].data_drops += ls.data_drops;
      }
    }
    struct Out {
      uint64_t digest;
      uint64_t phases;
      uint64_t idle_skips;
      uint64_t epochs_run;
    } out{};
    out.digest = canonical_digest(psim->events_processed(), {}, per_link);
    out.phases = psim->epochs_completed();
    for (uint32_t s = 0; s < psim->num_shards(); ++s) {
      obs::Telemetry& tel = psim->shard_sim(s).telemetry();
      out.idle_skips += tel.metrics().value(tel.core().par_idle_skips);
      out.epochs_run += tel.metrics().value(tel.core().par_epochs);
    }
    return out;
  };

  const auto grid = run(/*global_min=*/true);
  const auto channel = run(/*global_min=*/false);

  // Same simulation either way — the schedule is a performance knob, not a
  // semantics knob.
  EXPECT_EQ(grid.digest, channel.digest);

  // The whole point: strictly (and substantially) fewer barriers. The grid
  // ticks 5ms / 3.1us ≈ 1600 boundaries; the lookahead scheduler only
  // synchronizes where cross-shard work actually exists.
  EXPECT_LT(channel.phases, grid.phases);
  EXPECT_GE(grid.phases, 5 * channel.phases)
      << "grid " << grid.phases << " vs channel " << channel.phases;
  // Per-shard dispatches shrink too, and idle shards were skipped outright.
  EXPECT_LT(channel.epochs_run, grid.epochs_run);
  EXPECT_GT(channel.idle_skips, 0u);
}

// ---- ContraSwitch loop-accounting cap (satellite: state-bound audit) -------

TEST(ContraSwitch, RecentPacketWindowIsCapped) {
  const topology::Topology topo = topology::line(3);
  const compiler::CompileResult compiled = compiler::compile("minimize(path.len)", topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  Simulator sim(topo, SimConfig{});
  auto switches = dataplane::install_contra_network(sim, compiled, evaluator);
  dataplane::ContraSwitch& mid = *switches[1];
  const topology::LinkId in_link = topo.link_between(0, 1);

  const size_t cap = dataplane::ContraSwitch::kRecentPacketsCap;
  for (uint64_t i = 1; i <= cap + 100; ++i) {
    Packet p;
    p.kind = PacketKind::kData;
    p.id = i;
    p.size_bytes = 64;
    p.dst_switch = 2;
    p.routing.stamped = true;
    mid.handle_packet(sim, std::move(p), in_link);
    ASSERT_LE(mid.recent_packet_window_size(), cap) << "packet " << i;
  }
  // Hitting the cap restarts the window: only the overflow packets remain.
  EXPECT_EQ(mid.recent_packet_window_size(), 100u);

  // Revisits inside the window still count as loops after the restart.
  Packet again;
  again.kind = PacketKind::kData;
  again.id = cap + 100;  // still in the post-restart window
  again.size_bytes = 64;
  again.dst_switch = 2;
  again.routing.stamped = true;
  mid.handle_packet(sim, std::move(again), in_link);
  EXPECT_EQ(mid.stats().looped_packets_seen, 1u);
}

}  // namespace
}  // namespace contra::sim
