// Integration tests: miniature versions of the paper's experiments, with
// loose qualitative assertions (who wins, invariants hold). The full-size
// reproductions live in bench/.
#include <gtest/gtest.h>

#include <memory>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "dataplane/ecmp_switch.h"
#include "dataplane/hula_switch.h"
#include "lang/policies.h"
#include "metrics/counters.h"
#include "metrics/fct.h"
#include "sim/host.h"
#include "sim/transport.h"
#include "topology/generators.h"
#include "workload/generator.h"

namespace contra {
namespace {

using dataplane::ContraSwitch;
using sim::HostId;

enum class Plane { kEcmp, kHula, kContra };

struct RunResult {
  metrics::FctSummary fct;
  metrics::OverheadReport overhead;
  uint64_t looped_packets = 0;
  uint64_t loops_broken = 0;
};

RunResult run_fat_tree(Plane plane, double load, uint64_t seed,
                       bool fail_agg_core_link = false, double rate = 1e9) {
  const topology::Topology topo = topology::fat_tree(4, topology::LinkParams{rate, 1e-6});

  sim::SimConfig config;
  config.host_link_bps = rate;
  sim::Simulator sim(topo, config);
  const auto hosts = sim::attach_hosts_to_fat_tree_edges(sim, 2);
  std::vector<HostId> senders, receivers;
  for (HostId h : hosts) (h % 2 ? receivers : senders).push_back(h);

  // Fail before installing so static planes route on the converged
  // asymmetric topology (adaptive planes discover it via probes).
  if (fail_agg_core_link) {
    sim.fail_cable(topo.link_between(topo.find("a0_0"), topo.find("c0")));
  }

  compiler::CompileResult compiled;
  std::unique_ptr<pg::PolicyEvaluator> evaluator;
  std::vector<ContraSwitch*> contra_switches;
  switch (plane) {
    case Plane::kEcmp:
      dataplane::install_ecmp_network(sim);
      break;
    case Plane::kHula:
      dataplane::install_hula_network(sim);
      break;
    case Plane::kContra:
      // The paper's datacenter configuration: Contra discovers shortest
      // paths dynamically and balances on utilization among them (§6.3 —
      // probes carry "the path length as well as the utilization").
      compiled = compiler::compile(lang::policies::shortest_widest(), topo);
      evaluator =
          std::make_unique<pg::PolicyEvaluator>(compiled.graph, compiled.decomposition);
      contra_switches = dataplane::install_contra_network(sim, compiled, *evaluator);
      break;
  }

  sim::TransportManager transport(sim);
  workload::WorkloadConfig wl;
  wl.load = load;
  wl.sender_capacity_bps = rate;
  wl.start = 3e-3;
  wl.duration = 30e-3;
  wl.seed = seed;
  wl.size_scale = 0.05;  // many small-ish flows for statistics
  const auto flows = workload::generate_poisson(workload::web_search_flow_sizes(), senders,
                                                receivers, wl);
  workload::submit(transport, flows);

  sim.start();
  // Overhead is measured over the workload window only (the paper reports
  // steady-state traffic ratios); FCTs drain afterwards.
  sim.run_until(wl.start);
  const sim::LinkStats before = sim.aggregate_fabric_stats();
  sim.run_until(wl.start + wl.duration);
  const sim::LinkStats during = sim.aggregate_fabric_stats();
  sim.run_until(wl.start + wl.duration + 0.15);

  RunResult result;
  result.fct = metrics::summarize_fct(transport.completed_flows(), flows.size());
  result.overhead = metrics::make_overhead_report(during, before);
  for (const ContraSwitch* sw : contra_switches) {
    result.looped_packets += sw->stats().looped_packets_seen;
    result.loops_broken += sw->stats().loops_broken;
  }
  return result;
}

TEST(Integration, SymmetricFatTreeAllPlanesComplete) {
  for (Plane plane : {Plane::kEcmp, Plane::kHula, Plane::kContra}) {
    const RunResult r = run_fat_tree(plane, 0.4, 1);
    EXPECT_GT(r.fct.completed, 50u) << static_cast<int>(plane);
    EXPECT_EQ(r.fct.incomplete, 0u) << static_cast<int>(plane);
  }
}

TEST(Integration, ContraCompetitiveWithHulaOnFatTree) {
  // Fig. 11's takeaway: Contra ~= Hula (within a small factor), both load
  // aware. We assert a loose 1.5x band to keep the test robust.
  const RunResult hula = run_fat_tree(Plane::kHula, 0.6, 2);
  const RunResult contra = run_fat_tree(Plane::kContra, 0.6, 2);
  ASSERT_GT(hula.fct.completed, 0u);
  ASSERT_GT(contra.fct.completed, 0u);
  EXPECT_LT(contra.fct.mean_s, hula.fct.mean_s * 1.5);
}

TEST(Integration, AsymmetryHurtsEcmpMoreThanContra) {
  // Fig. 12's takeaway: with a failed agg-core link, load-aware planes beat
  // load-oblivious ECMP clearly at high load.
  const double load = 0.7;
  const RunResult ecmp = run_fat_tree(Plane::kEcmp, load, 3, /*fail=*/true);
  const RunResult contra = run_fat_tree(Plane::kContra, load, 3, /*fail=*/true);
  ASSERT_GT(contra.fct.completed, 0u);
  // Contra completes at least as reliably and with better tail behaviour.
  EXPECT_LE(contra.fct.incomplete, ecmp.fct.incomplete + 2);
  EXPECT_LT(contra.fct.mean_s, ecmp.fct.mean_s * 1.05);
}

TEST(Integration, ContraOverheadIsSmall) {
  // Fig. 16: Contra's probe + tag overhead is a few percent of ECMP's bytes
  // at paper-like link speeds (10 Gbps).
  const RunResult ecmp = run_fat_tree(Plane::kEcmp, 0.3, 4, false, 10e9);
  const RunResult contra = run_fat_tree(Plane::kContra, 0.3, 4, false, 10e9);
  const double normalized = contra.overhead.normalized_to(ecmp.overhead);
  EXPECT_GT(normalized, 0.9);
  EXPECT_LT(normalized, 1.25);
  EXPECT_GT(contra.overhead.probe_bytes, 0u);
}

TEST(Integration, TransientLoopTrafficIsNegligible) {
  // §6.5: a vanishing fraction of traffic ever loops.
  const RunResult contra = run_fat_tree(Plane::kContra, 0.6, 5);
  const double total_packets =
      static_cast<double>(contra.overhead.data_bytes) / 1500.0 + 1.0;
  EXPECT_LT(static_cast<double>(contra.looped_packets) / total_packets, 0.01);
}

TEST(Integration, FailureRecoveryWithinDetectionWindow) {
  // Fig. 14 in miniature: UDP stream, fail a link on its path, throughput
  // returns after ~3 probe periods.
  const double rate = 1e9;
  const topology::Topology topo = topology::fat_tree(4, topology::LinkParams{rate, 1e-6});
  sim::SimConfig config;
  config.host_link_bps = rate;
  sim::Simulator sim(topo, config);

  const compiler::CompileResult compiled =
      compiler::compile(lang::policies::min_util(), topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 128e-6;
  dataplane::install_contra_network(sim, compiled, evaluator, options);

  sim::TransportManager transport(sim);
  const HostId src = sim.add_host(topo.find("e0_0"));
  const HostId dst = sim.add_host(topo.find("e1_0"));
  sim.start();
  sim.run_until(3e-3);
  transport.start_udp_flow(src, dst, 400e6, sim.now(), sim.now() + 60e-3);
  sim.run_until(sim.now() + 20e-3);
  const uint64_t before_fail = transport.udp_bytes_received();
  ASSERT_GT(before_fail, 0u);

  // Fail one aggregation uplink pair used by pod 0.
  sim.fail_cable(topo.link_between(topo.find("a0_0"), topo.find("c0")));
  sim.fail_cable(topo.link_between(topo.find("a0_0"), topo.find("c1")));
  const sim::Time fail_time = sim.now();
  sim.run_until(fail_time + 20e-3);

  // Traffic in the last 10ms (well past the ~0.4ms detection window) must
  // flow at roughly the original rate.
  const uint64_t mid = transport.udp_bytes_received();
  sim.run_until(sim.now() + 10e-3);
  const uint64_t late = transport.udp_bytes_received() - mid;
  const double expected_10ms = 400e6 * 10e-3 / 8.0;
  EXPECT_GT(static_cast<double>(late), expected_10ms * 0.7);
}

}  // namespace
}  // namespace contra
