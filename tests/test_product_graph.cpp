// Product graph tests: the Fig. 6 running example, pruning, tag transitions,
// policy-compliance invariants, and the f()/s() evaluator.
#include <gtest/gtest.h>

#include "analysis/decompose.h"
#include "lang/eval.h"
#include "lang/parser.h"
#include "lang/policies.h"
#include "pg/policy_eval.h"
#include "pg/product_graph.h"
#include "topology/abilene.h"
#include "topology/generators.h"

namespace contra::pg {
namespace {

using topology::NodeId;
using topology::Topology;

ProductGraph build(const Topology& topo, const std::string& policy_text,
                   analysis::Decomposition* out_decomp = nullptr) {
  const analysis::Decomposition d = analysis::decompose(lang::parse_policy(policy_text));
  if (out_decomp) *out_decomp = d;
  return ProductGraph::build(topo, d);
}

TEST(ProductGraph, MinUtilHasOneTagEverywhere) {
  const Topology topo = topology::fat_tree(4);
  const ProductGraph pg = build(topo, "minimize(path.util)");
  EXPECT_EQ(pg.num_tags(), 1u);
  EXPECT_EQ(pg.num_nodes(), topo.num_nodes());
  EXPECT_EQ(pg.tag_bits(), 1u);
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_EQ(pg.origin_tag(n), 0u);
    EXPECT_EQ(pg.next_tag(0, n), 0u);
  }
}

TEST(ProductGraph, MinUtilEdgesMirrorTopology) {
  const Topology topo = topology::ring(6);
  const ProductGraph pg = build(topo, "minimize(path.util)");
  EXPECT_EQ(pg.num_edges(), topo.num_links());
}

TEST(ProductGraph, RunningExampleStructure) {
  // Fig. 6: policy "if ABD then 0 else if B.*D then util else inf" over the
  // diamond topology. D must have a probe-sending node; B must have two
  // virtual nodes (B0 on the ABD path, B1 on B.*D paths); A must have a
  // virtual node whose tag accepts ABD.
  const Topology topo = topology::running_example();
  analysis::Decomposition decomp;
  const ProductGraph pg =
      build(topo, "minimize(if A B D then 0 else if B .* D then path.util else inf)",
            &decomp);

  const NodeId a = topo.find("A");
  const NodeId b = topo.find("B");
  const NodeId d = topo.find("D");

  EXPECT_NE(pg.origin_tag(d), kInvalidTag);
  EXPECT_EQ(pg.nodes_at(b).size(), 2u);  // B0 and B1

  // Some virtual node at A accepts the ABD regex (regex index 0).
  bool a_accepts_abd = false;
  for (uint32_t node : pg.nodes_at(a)) {
    a_accepts_abd |= pg.accepting(pg.node_tag(node))[0];
  }
  EXPECT_TRUE(a_accepts_abd);

  // A and C are not valid destinations (no path ranks finite toward them).
  EXPECT_EQ(pg.origin_tag(a), kInvalidTag);
  EXPECT_EQ(pg.origin_tag(topo.find("C")), kInvalidTag);
}

TEST(ProductGraph, WaypointPrunesDeadBranches) {
  //   S - W - D   and a bypass S - X - D: paths through X only can never
  //   satisfy .* W .*; their virtual nodes survive only while W is still
  //   reachable ahead.
  Topology topo;
  const NodeId s = topo.add_node("S");
  const NodeId w = topo.add_node("W");
  const NodeId x = topo.add_node("X");
  const NodeId d = topo.add_node("D");
  topo.add_link(s, w, 1e9, 1e-6);
  topo.add_link(w, d, 1e9, 1e-6);
  topo.add_link(s, x, 1e9, 1e-6);
  topo.add_link(x, d, 1e9, 1e-6);

  const ProductGraph pg = build(topo, "minimize(if .* W .* then path.util else inf)");
  // Every node is a valid destination... except none are unreachable here;
  // what matters: the accepting tag exists at S (path S..W..D reversed).
  bool s_has_accepting = false;
  for (uint32_t node : pg.nodes_at(s)) {
    s_has_accepting |= pg.accepting(pg.node_tag(node))[0];
  }
  EXPECT_TRUE(s_has_accepting);
}

TEST(ProductGraph, EdgesRespectTagTransitions) {
  const Topology topo = topology::abilene();
  const ProductGraph pg =
      build(topo, "minimize(if .* Denver .* then path.util else inf)");
  for (uint32_t n = 0; n < pg.num_nodes(); ++n) {
    for (const PgEdge& e : pg.out_edges(n)) {
      EXPECT_EQ(pg.next_tag(pg.node_tag(n), e.to), e.to_tag);
      EXPECT_TRUE(pg.node_exists(e.to, e.to_tag));
      // The link must be a real topology link from this node.
      EXPECT_EQ(topo.link(e.link).from, pg.node_location(n));
      EXPECT_EQ(topo.link(e.link).to, e.to);
    }
  }
}

TEST(ProductGraph, NoEdgesWithoutTopologyLinks) {
  // Paper: "no edges exist from any (D,*,*) state to (A,*,*) state" when D-A
  // is not a topology link.
  const Topology topo = topology::running_example();
  const ProductGraph pg = build(topo, "minimize(path.len)");
  const NodeId a = topo.find("A");
  const NodeId d = topo.find("D");
  for (uint32_t n : pg.nodes_at(d)) {
    for (const PgEdge& e : pg.out_edges(n)) EXPECT_NE(e.to, a);
  }
}

TEST(ProductGraph, TagMinimizationMergesEquivalentStates) {
  // Two interchangeable waypoints in a union produce symmetric automaton
  // states that must merge.
  const Topology topo = topology::ring(6);
  const ProductGraph pg =
      build(topo, "minimize(if .* (n2 + n2) .* then path.util else inf)");
  EXPECT_LE(pg.num_tags(), 2u);
}

TEST(PolicyEvaluator, PropagationRankUsesSubpolicy) {
  const Topology topo = topology::running_example();
  analysis::Decomposition decomp;
  const ProductGraph pg = build(topo, "minimize(path.util)", &decomp);
  const PolicyEvaluator eval(pg, decomp);

  MetricsVector low;
  low.extend(0.2, 1e-6);
  MetricsVector high;
  high.extend(0.9, 1e-6);
  EXPECT_LT(eval.propagation_rank(0, low), eval.propagation_rank(0, high));
}

TEST(PolicyEvaluator, PropagationTieBreaksOnLength) {
  const Topology topo = topology::running_example();
  analysis::Decomposition decomp;
  const ProductGraph pg = build(topo, "minimize(path.util)", &decomp);
  const PolicyEvaluator eval(pg, decomp);

  MetricsVector short_path;
  short_path.extend(0.5, 1e-6);
  MetricsVector long_path;
  long_path.extend(0.5, 1e-6);
  long_path.extend(0.5, 1e-6);
  EXPECT_LT(eval.propagation_rank(0, short_path), eval.propagation_rank(0, long_path));
}

TEST(PolicyEvaluator, SelectionRankResolvesRegexFromTag) {
  const Topology topo = topology::running_example();
  analysis::Decomposition decomp;
  const ProductGraph pg =
      build(topo, "minimize(if A B D then 0 else if B .* D then path.util else inf)",
            &decomp);
  const PolicyEvaluator eval(pg, decomp);

  // Find A's tag that accepts ABD and one B tag that accepts only B.*D.
  const NodeId a = topo.find("A");
  const NodeId b = topo.find("B");
  uint32_t abd_tag = kInvalidTag;
  for (uint32_t n : pg.nodes_at(a)) {
    if (pg.accepting(pg.node_tag(n))[0]) abd_tag = pg.node_tag(n);
  }
  ASSERT_NE(abd_tag, kInvalidTag);

  MetricsVector mv;
  mv.extend(0.7, 1e-6);
  mv.extend(0.7, 1e-6);
  EXPECT_EQ(eval.selection_rank(abd_tag, mv), lang::Rank::scalar(0.0));

  uint32_t bd_tag = kInvalidTag;
  for (uint32_t n : pg.nodes_at(b)) {
    const auto& acc = pg.accepting(pg.node_tag(n));
    if (!acc[0] && acc[1]) bd_tag = pg.node_tag(n);
  }
  ASSERT_NE(bd_tag, kInvalidTag);
  const lang::Rank r = eval.selection_rank(bd_tag, mv);
  EXPECT_FALSE(r.is_infinite());
  EXPECT_NEAR(r.scalar_value().to_double(), 0.7, 1e-3);
}

TEST(PolicyEvaluator, SelectionRankResolvesDynamicTests) {
  const Topology topo = topology::running_example();
  analysis::Decomposition decomp;
  const ProductGraph pg = build(
      topo, "minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))",
      &decomp);
  const PolicyEvaluator eval(pg, decomp);
  ASSERT_EQ(eval.num_pids(), 2u);

  MetricsVector light;
  light.extend(0.3, 1e-6);
  MetricsVector heavy;
  heavy.extend(0.95, 1e-6);
  const lang::Rank light_rank = eval.selection_rank(0, light);
  const lang::Rank heavy_rank = eval.selection_rank(0, heavy);
  EXPECT_LT(light_rank, heavy_rank);
  EXPECT_EQ(light_rank.components()[0], util::Fixed::from_int(1));
  EXPECT_EQ(heavy_rank.components()[0], util::Fixed::from_int(2));
}

TEST(ProductGraph, ScalesLinearlyOnFatTrees) {
  // Sanity bound rather than a benchmark: PG size stays proportional to the
  // topology for a fixed policy.
  const ProductGraph small = ProductGraph::build(
      topology::fat_tree(4), analysis::decompose(lang::policies::min_util()));
  const ProductGraph large = ProductGraph::build(
      topology::fat_tree(8), analysis::decompose(lang::policies::min_util()));
  EXPECT_EQ(small.num_nodes(), 20u);
  EXPECT_EQ(large.num_nodes(), 80u);
}

}  // namespace
}  // namespace contra::pg
