// Compiler pipeline tests: end-to-end artifacts, monotonicity gating,
// per-switch table contents, state accounting, and probe-period rule (§5.2).
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "lang/policies.h"
#include "topology/abilene.h"
#include "topology/generators.h"

namespace contra::compiler {
namespace {

using topology::Topology;

TEST(Compiler, CompilesMinUtilOnFatTree) {
  const Topology topo = topology::fat_tree(4);
  const CompileResult result = compile(lang::policies::min_util(), topo);
  EXPECT_EQ(result.num_pids(), 1u);
  EXPECT_EQ(result.switches.size(), topo.num_nodes());
  EXPECT_TRUE(result.monotonicity.monotonic);
}

TEST(Compiler, CompilesFromText) {
  const Topology topo = topology::ring(5);
  const CompileResult result = compile("minimize(path.len)", topo);
  EXPECT_EQ(result.num_pids(), 1u);
}

TEST(Compiler, RejectsNonMonotonicByDefault) {
  const Topology topo = topology::ring(5);
  EXPECT_THROW(compile("minimize(1 - path.util)", topo), CompileError);
}

TEST(Compiler, NonMonotonicCompilesWhenForced) {
  const Topology topo = topology::ring(5);
  CompileOptions options;
  options.require_monotonic = false;
  const CompileResult result = compile("minimize(1 - path.util)", topo, options);
  EXPECT_FALSE(result.monotonicity.monotonic);
}

TEST(Compiler, EmptyTopologyThrows) {
  const Topology topo;
  EXPECT_THROW(compile("minimize(path.len)", topo), CompileError);
}

TEST(Compiler, ProbePeriodRuleIsHalfMaxRtt) {
  const Topology topo = topology::abilene();
  const CompileResult result = compile(lang::policies::min_util(), topo);
  EXPECT_NEAR(result.min_probe_period_s, 0.5 * topo.max_rtt_s(), 1e-12);
}

TEST(Compiler, SwitchConfigsAreConsistentWithPg) {
  const Topology topo = topology::running_example();
  const CompileResult result =
      compile("minimize(if A B D then 0 else if B .* D then path.util else inf)", topo);
  for (const SwitchConfig& cfg : result.switches) {
    // Every local tag names an existing virtual node.
    for (uint32_t tag : cfg.local_tags) {
      EXPECT_TRUE(result.graph.node_exists(cfg.node, tag));
    }
    // Every tag-step entry agrees with the PG transition function.
    for (const TagStepEntry& entry : cfg.tag_step) {
      EXPECT_EQ(result.graph.next_tag(entry.in_tag, cfg.node), entry.local_tag);
    }
    // Every multicast entry is a PG edge out of a local virtual node.
    for (const ProbeMulticastEntry& entry : cfg.multicast) {
      const uint32_t node = result.graph.node_index(cfg.node, entry.local_tag);
      ASSERT_NE(node, pg::kInvalidPgNode);
      bool found = false;
      for (const pg::PgEdge& e : result.graph.out_edges(node)) {
        found |= e.link == entry.out_link && e.to_tag == entry.neighbor_tag;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(Compiler, OnlyPolicyAllowedDestinationsOriginateProbes) {
  const Topology topo = topology::running_example();
  const CompileResult result =
      compile("minimize(if .* D then path.util else inf)", topo);
  for (const SwitchConfig& cfg : result.switches) {
    if (cfg.name == "D") {
      EXPECT_TRUE(cfg.is_destination);
    } else {
      EXPECT_FALSE(cfg.is_destination) << cfg.name;
    }
  }
}

TEST(Compiler, StateAccountingIsPopulatedAndPlausible) {
  const Topology topo = topology::fat_tree(4);
  const CompileResult result = compile(lang::policies::min_util(), topo);
  for (const SwitchConfig& cfg : result.switches) {
    EXPECT_GT(cfg.footprint.fwdt_entries, 0u);
    EXPECT_GT(cfg.footprint.total_bytes(), 0u);
    // Fig. 10's headline: well under a megabyte per switch at these sizes.
    EXPECT_LT(cfg.footprint.total_bytes(), 1u << 20);
  }
  EXPECT_GE(result.total_state_bytes(), result.max_switch_state_bytes());
}

TEST(Compiler, RicherPoliciesNeedMoreState) {
  // Fig. 10: WP (regex tags) and CA (two pids) exceed MU's footprint.
  const Topology topo = topology::fat_tree(4);
  const uint64_t mu = compile(lang::policies::min_util(), topo).max_switch_state_bytes();
  const uint64_t wp =
      compile(lang::policies::waypoint("c0", "c1"), topo).max_switch_state_bytes();
  const uint64_t ca =
      compile(lang::policies::congestion_aware(), topo).max_switch_state_bytes();
  EXPECT_GT(wp, mu);
  EXPECT_GT(ca, mu);
}

TEST(Compiler, SummaryMentionsKeyFacts) {
  const Topology topo = topology::ring(4);
  const CompileResult result = compile(lang::policies::min_util(), topo);
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("pid"), std::string::npos);
  EXPECT_NE(summary.find("tag"), std::string::npos);
  EXPECT_NE(summary.find("monotonic"), std::string::npos);
}

TEST(Compiler, CongestionAwareGetsTwoPids) {
  const Topology topo = topology::abilene();
  const CompileResult result = compile(lang::policies::congestion_aware(), topo);
  EXPECT_EQ(result.num_pids(), 2u);
  EXPECT_EQ(result.isotonicity.classification,
            analysis::IsotonicityClass::kDecomposed);
}

}  // namespace
}  // namespace contra::compiler
