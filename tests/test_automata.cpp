// Automata pipeline tests: NFA construction, determinization, minimization.
// The DFA pipeline is cross-checked against the Brzozowski-derivative
// matcher in lang/eval (two independent implementations must agree).
#include <gtest/gtest.h>

#include "automata/dfa.h"
#include "automata/minimize.h"
#include "automata/nfa.h"
#include "lang/eval.h"
#include "lang/parser.h"
#include "util/rng.h"

namespace contra::automata {
namespace {

Alphabet abc() { return Alphabet({"A", "B", "C", "D"}); }

std::vector<uint32_t> word(const Alphabet& a, std::initializer_list<const char*> names) {
  std::vector<uint32_t> out;
  for (const char* n : names) out.push_back(a.find(n));
  return out;
}

TEST(Alphabet, FindsSymbols) {
  const Alphabet a = abc();
  EXPECT_EQ(a.find("A"), 0u);
  EXPECT_EQ(a.find("D"), 3u);
  EXPECT_EQ(a.find("Z"), Alphabet::kUnknown);
  EXPECT_EQ(a.size(), 4u);
}

TEST(Nfa, LiteralAccepts) {
  const Alphabet a = abc();
  const Nfa nfa = thompson_construct(lang::parse_regex("A B"), a);
  EXPECT_TRUE(nfa.accepts(word(a, {"A", "B"})));
  EXPECT_FALSE(nfa.accepts(word(a, {"A"})));
  EXPECT_FALSE(nfa.accepts(word(a, {"B", "A"})));
}

TEST(Nfa, UnknownNodeNeverMatches) {
  const Alphabet a = abc();
  const Nfa nfa = thompson_construct(lang::parse_regex("A Z9"), a);
  EXPECT_FALSE(nfa.accepts(word(a, {"A", "B"})));
  EXPECT_FALSE(nfa.accepts(word(a, {"A"})));
}

TEST(Nfa, DotMatchesAnySymbol) {
  const Alphabet a = abc();
  const Nfa nfa = thompson_construct(lang::parse_regex("."), a);
  for (const char* n : {"A", "B", "C", "D"}) {
    EXPECT_TRUE(nfa.accepts(word(a, {n})));
  }
  EXPECT_FALSE(nfa.accepts({}));
}

TEST(Dfa, IsTotal) {
  const Alphabet a = abc();
  const Dfa dfa = compile_regex(lang::parse_regex("A B"), a);
  for (uint32_t s = 0; s < dfa.num_states(); ++s) {
    for (uint32_t sym = 0; sym < dfa.num_symbols(); ++sym) {
      EXPECT_LT(dfa.next(s, sym), dfa.num_states());
    }
  }
}

TEST(Dfa, DeadStateIsAbsorbing) {
  const Alphabet a = abc();
  const Dfa dfa = compile_regex(lang::parse_regex("A B"), a);
  ASSERT_NE(dfa.dead_state(), Dfa::kNoDead);
  const uint32_t dead = dfa.dead_state();
  EXPECT_FALSE(dfa.accepting(dead));
  for (uint32_t sym = 0; sym < dfa.num_symbols(); ++sym) {
    EXPECT_EQ(dfa.next(dead, sym), dead);
  }
}

TEST(Dfa, DotStarHasNoDeadState) {
  const Alphabet a = abc();
  const Dfa dfa = compile_regex(lang::parse_regex(".*"), a);
  EXPECT_EQ(dfa.dead_state(), Dfa::kNoDead);
  EXPECT_EQ(dfa.num_states(), 1u);  // minimal
}

TEST(Minimize, CollapsesEquivalentStates) {
  const Alphabet a = abc();
  // (A + B)(A + B) and the same written redundantly must minimize equally.
  const Dfa d1 = compile_regex(lang::parse_regex("(A + B)(A + B)"), a);
  const Dfa d2 = compile_regex(lang::parse_regex("(A A + A B) + (B A + B B)"), a);
  EXPECT_EQ(d1.num_states(), d2.num_states());
}

TEST(Minimize, WaypointAutomatonIsSmall) {
  const Alphabet a = abc();
  const Dfa dfa = compile_regex(lang::parse_regex(".* C .*"), a);
  // before-C / after-C: exactly two states, no dead state.
  EXPECT_EQ(dfa.num_states(), 2u);
}

// Property: the DFA pipeline agrees with the derivative matcher on random
// words for a suite of regexes.
class AgreementTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AgreementTest, DfaAgreesWithDerivativeMatcher) {
  const Alphabet a = abc();
  const lang::RegexPtr regex = lang::parse_regex(GetParam());
  const Dfa dfa = compile_regex(regex, a);
  util::Rng rng(1234);
  for (int trial = 0; trial < 400; ++trial) {
    const int len = static_cast<int>(rng.uniform_int(0, 6));
    std::vector<uint32_t> symbols;
    std::vector<std::string> names;
    for (int i = 0; i < len; ++i) {
      const uint32_t s = static_cast<uint32_t>(rng.uniform_int(0, 3));
      symbols.push_back(s);
      names.push_back(a.name(s));
    }
    EXPECT_EQ(dfa.accepts(symbols), lang::regex_matches(regex, names))
        << GetParam() << " on word of length " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Regexes, AgreementTest,
                         ::testing::Values("A B D", ".* C .*", "A .* D", "A (B + C)* D",
                                           "(A + B) (C + D)", ".* (A B) .*", "A*",
                                           "A B + B A", ". . .", "(A + .)* D"));

TEST(Reverse, ReverseOfReverseMatchesOriginal) {
  const Alphabet a = abc();
  const lang::RegexPtr regex = lang::parse_regex("A (B + C)* D");
  const lang::RegexPtr rr = lang::Regex::reverse(lang::Regex::reverse(regex));
  const Dfa d1 = compile_regex(regex, a);
  const Dfa d2 = compile_regex(rr, a);
  util::Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    const int len = static_cast<int>(rng.uniform_int(0, 6));
    std::vector<uint32_t> symbols;
    for (int i = 0; i < len; ++i) {
      symbols.push_back(static_cast<uint32_t>(rng.uniform_int(0, 3)));
    }
    EXPECT_EQ(d1.accepts(symbols), d2.accepts(symbols));
  }
}

TEST(EncodeWord, ThrowsOnUnknown) {
  const Alphabet a = abc();
  EXPECT_THROW(encode_word(a, {"A", "NOPE"}), std::out_of_range);
}

}  // namespace
}  // namespace contra::automata
