// Unit tests for the dataplane building blocks: flowlet table, loop
// detector, probe clock / failure detector, and routing table computation.
#include <gtest/gtest.h>

#include "dataplane/flowlet_table.h"
#include "dataplane/loop_detector.h"
#include "dataplane/probe_engine.h"
#include "dataplane/routing_tables.h"
#include "topology/abilene.h"
#include "topology/generators.h"

namespace contra::dataplane {
namespace {

TEST(FlowletTable, PinsAndExpires) {
  FlowletTable table(200e-6);
  const FlowletKey key{1, 0, 42};
  EXPECT_EQ(table.lookup(key, 0.0), nullptr);
  table.pin(key, FlowletEntry{7, 3, 0, 0.0});
  FlowletEntry* entry = table.lookup(key, 100e-6);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->nhop, 7u);
  EXPECT_EQ(entry->ntag, 3u);
  // Past the inter-packet gap: the flowlet is over.
  EXPECT_EQ(table.lookup(key, 301e-6), nullptr);
  EXPECT_EQ(table.stats().expirations, 1u);
}

TEST(FlowletTable, ExpiresExactlyAtTimeoutBoundary) {
  // Regression: the expiry comparison is >=, so a gap of exactly the
  // timeout ends the flowlet (the boundary packet must re-rate).
  FlowletTable table(200e-6);
  const FlowletKey key{1, 0, 7};
  table.pin(key, FlowletEntry{3, 0, 0, 0.0});
  EXPECT_EQ(table.lookup(key, 200e-6), nullptr);
  EXPECT_EQ(table.stats().expirations, 1u);
}

TEST(FlowletTable, SwitchIsCountedWithoutTelemetry) {
  // Regression: path switches used to be detected only while a trace sink
  // was attached; the stats counter must work standalone.
  FlowletTable table(200e-6);
  const FlowletKey key{0, 0, 9};
  table.pin(key, FlowletEntry{5, 0, 0, 0.0});
  ASSERT_EQ(table.lookup(key, 300e-6), nullptr);  // expires, remembers nhop 5
  table.pin(key, FlowletEntry{6, 0, 0, 300e-6});  // different next hop
  EXPECT_EQ(table.stats().switches, 1u);
  // Re-pinning the same next hop after a flush is not a switch.
  table.flush(key, 400e-6);
  table.pin(key, FlowletEntry{6, 0, 0, 500e-6});
  EXPECT_EQ(table.stats().switches, 1u);
}

TEST(FlowletTable, PrevNhopWindowIsBounded) {
  FlowletTable table(200e-6);
  for (uint32_t i = 0; i < FlowletTable::kPrevNhopCap + 10; ++i) {
    const FlowletKey key{0, 0, i};
    table.pin(key, FlowletEntry{1, 0, 0, 0.0});
    table.flush(key);
  }
  EXPECT_LE(table.prev_nhop_window_size(), FlowletTable::kPrevNhopCap);
  EXPECT_GE(table.prev_nhop_window_size(), 1u);
}

TEST(FlowletTable, TouchExtendsLife) {
  FlowletTable table(200e-6);
  const FlowletKey key{0, 0, 1};
  table.pin(key, FlowletEntry{1, 0, 0, 0.0});
  table.touch(key, 150e-6);
  EXPECT_NE(table.lookup(key, 300e-6), nullptr);  // alive thanks to touch
}

TEST(FlowletTable, PolicyAwareKeysAreSeparate) {
  // Same flow hash, different tags: distinct entries (the §5.3 fix).
  FlowletTable table(200e-6);
  table.pin(FlowletKey{1, 0, 99}, FlowletEntry{10, 1, 0, 0.0});
  table.pin(FlowletKey{2, 0, 99}, FlowletEntry{20, 2, 0, 0.0});
  EXPECT_EQ(table.lookup(FlowletKey{1, 0, 99}, 1e-6)->nhop, 10u);
  EXPECT_EQ(table.lookup(FlowletKey{2, 0, 99}, 1e-6)->nhop, 20u);
}

TEST(FlowletTable, FlushRemovesEntry) {
  FlowletTable table(200e-6);
  const FlowletKey key{0, 0, 5};
  table.pin(key, FlowletEntry{1, 0, 0, 0.0});
  table.flush(key);
  EXPECT_EQ(table.lookup(key, 1e-6), nullptr);
  EXPECT_EQ(table.stats().flushes, 1u);
  table.flush(key);  // idempotent
  EXPECT_EQ(table.stats().flushes, 1u);
}

TEST(LoopDetector, TriggersOnTtlSpread) {
  LoopDetector detector(64, 4);
  const uint32_t sig = 0xabcd;
  EXPECT_FALSE(detector.observe(sig, 60));
  EXPECT_FALSE(detector.observe(sig, 58));  // spread 2
  EXPECT_FALSE(detector.observe(sig, 56));  // spread 4 == threshold
  EXPECT_TRUE(detector.observe(sig, 55));   // spread 5 > threshold
  EXPECT_EQ(detector.loops_detected(), 1u);
}

TEST(LoopDetector, StablePathNeverTriggers) {
  LoopDetector detector(64, 4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(detector.observe(0x1111, 60));  // same TTL at this hop
  }
}

TEST(LoopDetector, ResetsAfterDetection) {
  LoopDetector detector(64, 2);
  const uint32_t sig = 7;
  detector.observe(sig, 60);
  EXPECT_TRUE(detector.observe(sig, 50));
  // Fresh accumulation required before the next report.
  EXPECT_FALSE(detector.observe(sig, 50));
  EXPECT_FALSE(detector.observe(sig, 49));
}

TEST(LoopDetector, CollisionsOverwriteLikeHardware) {
  LoopDetector detector(1, 4);  // single slot: every signature collides
  EXPECT_FALSE(detector.observe(1, 60));
  EXPECT_FALSE(detector.observe(2, 10));  // overwrites slot, no false loop
  EXPECT_FALSE(detector.observe(1, 60));
}

TEST(ProbeClock, AdvancesMonotonically) {
  ProbeClock clock(256e-6);
  EXPECT_EQ(clock.version(), 0u);
  EXPECT_EQ(clock.advance(), 1u);
  EXPECT_EQ(clock.advance(), 2u);
  EXPECT_DOUBLE_EQ(clock.period_s(), 256e-6);
}

TEST(FailureDetector, SilenceImpliesFailure) {
  FailureDetector detector(768e-6);  // 3 x 256us
  detector.note_probe(5, 1e-3);
  EXPECT_FALSE(detector.presumed_failed(5, 1.5e-3));
  EXPECT_TRUE(detector.presumed_failed(5, 2e-3));
  detector.note_probe(5, 2e-3);
  EXPECT_FALSE(detector.presumed_failed(5, 2.5e-3));
}

TEST(FailureDetector, UnseenLinksGetBootstrapGrace) {
  FailureDetector detector(768e-6);
  EXPECT_FALSE(detector.presumed_failed(9, 100e-6));
  EXPECT_TRUE(detector.presumed_failed(9, 1e-3));
}

TEST(FailureDetector, StateIsBoundedByReservedTopology) {
  FailureDetector detector(768e-6, /*num_links=*/16);
  EXPECT_EQ(detector.tracked_links(), 16u);
  // Steady-state probe churn on reserved links never grows the state: the
  // footprint is pinned by the wiring, not by traffic history.
  for (int round = 0; round < 1000; ++round) {
    for (topology::LinkId l = 0; l < 16; ++l) detector.note_probe(l, round * 1e-4);
  }
  EXPECT_EQ(detector.tracked_links(), 16u);
  // reserve_links never shrinks and re-reserving is idempotent.
  detector.reserve_links(8);
  EXPECT_EQ(detector.tracked_links(), 16u);
  detector.reserve_links(16);
  EXPECT_EQ(detector.tracked_links(), 16u);
}

TEST(FailureDetector, UnreservedLinkGrowsOnceThenStays) {
  FailureDetector detector(768e-6);
  EXPECT_EQ(detector.tracked_links(), 0u);
  detector.note_probe(9, 1e-3);
  EXPECT_EQ(detector.tracked_links(), 10u);
  detector.note_probe(9, 2e-3);  // repeat arrivals reuse the slot
  detector.note_probe(3, 2e-3);  // lower ids fit in the existing range
  EXPECT_EQ(detector.tracked_links(), 10u);
}

TEST(FailureDetector, EvictRestoresBootstrapGrace) {
  FailureDetector detector(768e-6, /*num_links=*/16);
  detector.note_probe(5, 10e-3);
  EXPECT_FALSE(detector.presumed_failed(5, 10.5e-3));
  detector.evict(5);
  // As if the link never carried a probe: bootstrap grace counts from time
  // zero, which at t=10.5ms has long expired…
  EXPECT_TRUE(detector.presumed_failed(5, 10.5e-3));
  // …while early queries would still be within grace.
  EXPECT_FALSE(detector.presumed_failed(5, 500e-6));
  detector.evict(999);  // out-of-range eviction is a harmless no-op
  EXPECT_EQ(detector.tracked_links(), 16u);
}

TEST(RoutingTables, EcmpFindsAllShortestNextHops) {
  const topology::Topology topo = topology::fat_tree(4);
  const auto table = compute_ecmp_next_hops(topo);
  const topology::NodeId e0 = topo.find("e0_0");
  const topology::NodeId e3 = topo.find("e3_0");
  // Cross-pod: both aggregation uplinks are on shortest paths.
  EXPECT_EQ(table[e0][e3].size(), 2u);
  for (topology::LinkId l : table[e0][e3]) {
    EXPECT_EQ(topo.link(l).from, e0);
    EXPECT_EQ(topology::fat_tree_layer(topo, topo.link(l).to),
              topology::FatTreeLayer::kAgg);
  }
  EXPECT_TRUE(table[e0][e0].empty());
}

TEST(RoutingTables, ShortestNextHopsAreConsistent) {
  const topology::Topology topo = topology::abilene();
  const auto table = compute_shortest_next_hops(topo);
  const auto hops_from = topo.bfs_hops(topo.find("Seattle"));
  // Walking the next hops from any node decreases the distance each step.
  for (topology::NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (n == topo.find("Seattle")) continue;
    const topology::LinkId l = table[n][topo.find("Seattle")];
    ASSERT_NE(l, topology::kInvalidLink);
    EXPECT_EQ(hops_from[topo.link(l).to] + 1, hops_from[n]);
  }
}

TEST(SpainRouting, PathsAreValidAndDiverse) {
  const topology::Topology topo = topology::abilene();
  const SpainRouting routing(topo, 4);
  const topology::NodeId src = topo.find("Seattle");
  const topology::NodeId dst = topo.find("WashingtonDC");
  const uint32_t n = routing.num_paths(src, dst);
  EXPECT_GE(n, 2u);
  for (uint32_t i = 0; i < n; ++i) {
    const auto& path = routing.path(src, dst, i);
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), dst);
    for (size_t h = 0; h + 1 < path.size(); ++h) {
      EXPECT_TRUE(topo.adjacent(path[h], path[h + 1]));
    }
  }
  // At least two distinct paths.
  EXPECT_NE(routing.path(src, dst, 0), routing.path(src, dst, 1));
}

TEST(SpainRouting, NextHopWalksThePath) {
  const topology::Topology topo = topology::abilene();
  const SpainRouting routing(topo, 3);
  const topology::NodeId src = topo.find("Seattle");
  const topology::NodeId dst = topo.find("NewYork");
  for (uint32_t pid = 0; pid < routing.num_paths(src, dst); ++pid) {
    topology::NodeId at = src;
    int hops = 0;
    while (at != dst && hops < 20) {
      const topology::LinkId l = routing.next_hop(src, dst, pid, at);
      ASSERT_NE(l, topology::kInvalidLink);
      at = topo.link(l).to;
      ++hops;
    }
    EXPECT_EQ(at, dst);
  }
}

TEST(SpainRouting, OffPathNodeGetsInvalid) {
  const topology::Topology topo = topology::line(4);
  const SpainRouting routing(topo, 2);
  // Node 3 is never on a 0 -> 1 path.
  EXPECT_EQ(routing.next_hop(0, 1, 0, 3), topology::kInvalidLink);
}

}  // namespace
}  // namespace contra::dataplane
