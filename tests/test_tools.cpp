// CLI helper tests: flag parsing and topology/policy loading used by
// contrac / contrasim.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "tools/cli_common.h"

namespace contra::tools {
namespace {

Args make_args(std::vector<std::string> words) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(words);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& w : storage) argv.push_back(w.data());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, KeyValueAndFlags) {
  const Args args = make_args({"--load", "0.6", "--quiet", "--seed", "7", "pos1"});
  EXPECT_TRUE(args.has("quiet"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_DOUBLE_EQ(args.get_double("load", 0.0), 0.6);
  EXPECT_EQ(args.get_int("seed", 0), 7);
  EXPECT_EQ(args.get("absent", "dflt"), "dflt");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Args, FlagFollowedByFlagHasEmptyValue) {
  const Args args = make_args({"--quiet", "--out", "dir"});
  EXPECT_EQ(args.get("quiet", "x"), "");
  EXPECT_EQ(args.get("out"), "dir");
}

TEST(LoadTopology, BuiltinSpecs) {
  std::string error;
  EXPECT_EQ(load_topology(make_args({"--builtin", "fat-tree:4"}), &error)->num_nodes(), 20u);
  EXPECT_EQ(load_topology(make_args({"--builtin", "leaf-spine:4x2"}), &error)->num_nodes(),
            6u);
  EXPECT_EQ(load_topology(make_args({"--builtin", "abilene"}), &error)->num_nodes(), 11u);
  EXPECT_EQ(load_topology(make_args({"--builtin", "ring:5"}), &error)->num_nodes(), 5u);
  EXPECT_EQ(load_topology(make_args({"--builtin", "grid:2x3"}), &error)->num_nodes(), 6u);
  EXPECT_EQ(load_topology(make_args({"--builtin", "diamond"}), &error)->num_nodes(), 4u);
  EXPECT_EQ(load_topology(make_args({"--builtin", "random:30:5"}), &error)->num_nodes(), 30u);
}

TEST(LoadTopology, DefaultsToDiamond) {
  std::string error;
  const auto topo = load_topology(make_args({}), &error);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->num_nodes(), 4u);
}

TEST(LoadTopology, BadSpecReportsError) {
  std::string error;
  EXPECT_FALSE(load_topology(make_args({"--builtin", "klein-bottle:9"}), &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(LoadTopology, FromFile) {
  const auto path = std::filesystem::temp_directory_path() / "contra_tool_test_topo.txt";
  {
    std::ofstream out(path);
    out << "link x y 10 5\nlink y z\n";
  }
  std::string error;
  const auto topo = load_topology(make_args({"--topology", path.string()}), &error);
  ASSERT_TRUE(topo.has_value()) << error;
  EXPECT_EQ(topo->num_nodes(), 3u);
  std::filesystem::remove(path);
}

TEST(LoadTopology, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(
      load_topology(make_args({"--topology", "/nonexistent/nope.txt"}), &error).has_value());
  EXPECT_NE(error.find("cannot read"), std::string::npos);
}

TEST(LoadPolicy, InlineAndFile) {
  std::string error;
  EXPECT_EQ(*load_policy_text(make_args({"--policy", "minimize(path.len)"}), &error),
            "minimize(path.len)");

  const auto path = std::filesystem::temp_directory_path() / "contra_tool_test_policy.txt";
  {
    std::ofstream out(path);
    out << "minimize(path.util)";
  }
  EXPECT_EQ(*load_policy_text(make_args({"--policy-file", path.string()}), &error),
            "minimize(path.util)");
  std::filesystem::remove(path);

  EXPECT_FALSE(load_policy_text(make_args({}), &error).has_value());
  EXPECT_NE(error.find("missing"), std::string::npos);
}

TEST(Files, WriteAndReadRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "contra_tool_test_rw.txt";
  ASSERT_TRUE(write_file(path.string(), "hello\nworld\n"));
  const auto content = read_file(path.string());
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, "hello\nworld\n");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace contra::tools
