// Monotonicity analysis tests: the paper's catalog is monotonic; policies
// that reward longer paths (subtracting attributes, negative weights) are
// flagged, with counterexamples.
#include <gtest/gtest.h>

#include "analysis/monotonicity.h"
#include "lang/parser.h"
#include "lang/policies.h"

namespace contra::analysis {
namespace {

using lang::parse_expr;
using lang::parse_policy;

TEST(MonotonicityStructural, AttributesAreMonotone) {
  EXPECT_TRUE(metric_is_monotonic_structural(parse_expr("path.util")));
  EXPECT_TRUE(metric_is_monotonic_structural(parse_expr("path.lat")));
  EXPECT_TRUE(metric_is_monotonic_structural(parse_expr("path.len")));
}

TEST(MonotonicityStructural, SumsAndTuples) {
  EXPECT_TRUE(metric_is_monotonic_structural(parse_expr("path.lat + path.len")));
  EXPECT_TRUE(metric_is_monotonic_structural(parse_expr("(path.util, path.len)")));
  EXPECT_TRUE(metric_is_monotonic_structural(parse_expr("10 + path.len")));
  EXPECT_TRUE(metric_is_monotonic_structural(parse_expr("path.len - 5")));
}

TEST(MonotonicityStructural, MinMaxOfMonotone) {
  EXPECT_TRUE(metric_is_monotonic_structural(parse_expr("min(path.lat, path.len)")));
  EXPECT_TRUE(metric_is_monotonic_structural(parse_expr("max(path.util, path.len)")));
}

TEST(MonotonicityStructural, SubtractingAttributesIsNot) {
  EXPECT_FALSE(metric_is_monotonic_structural(parse_expr("10 - path.util")));
  EXPECT_FALSE(metric_is_monotonic_structural(parse_expr("path.lat - path.util")));
  EXPECT_FALSE(metric_is_monotonic_structural(parse_expr("(path.len, 1 - path.util)")));
}

TEST(MonotonicitySampled, FindsCounterexampleForNegatedUtil) {
  const auto violation = sample_monotonicity_violation(parse_expr("0 - path.util"), 1, 4000);
  ASSERT_TRUE(violation.has_value());
  // The counterexample's extension must have strictly raised the bottleneck
  // (that is what makes the negated rank drop).
  EXPECT_GT(violation->extension.util, violation->base.util);
}

TEST(MonotonicitySampled, NoCounterexampleForMonotone) {
  EXPECT_FALSE(
      sample_monotonicity_violation(parse_expr("(path.util, path.len)"), 1, 4000).has_value());
  EXPECT_FALSE(
      sample_monotonicity_violation(parse_expr("path.lat + path.len"), 1, 4000).has_value());
}

// Every Fig. 3 policy is monotonic (the paper compiles them all).
class CatalogMonotone : public ::testing::TestWithParam<lang::Policy> {};

TEST_P(CatalogMonotone, IsMonotonic) {
  const MonotonicityReport report = check_monotonicity(GetParam());
  EXPECT_TRUE(report.monotonic) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Fig3, CatalogMonotone,
    ::testing::Values(lang::policies::shortest_path(), lang::policies::min_util(),
                      lang::policies::widest_shortest(), lang::policies::shortest_widest(),
                      lang::policies::waypoint("F1", "F2"),
                      lang::policies::link_preference("X", "Y"),
                      lang::policies::weighted_link("X", "Y", 10),
                      lang::policies::source_local("X"), lang::policies::congestion_aware(),
                      lang::policies::failover("A B D", "A C D")));

TEST(Monotonicity, MaximizeUtilizationIsRejected) {
  const MonotonicityReport report =
      check_monotonicity(parse_policy("minimize(1 - path.util)"));
  EXPECT_FALSE(report.monotonic);
  EXPECT_TRUE(report.counterexample.has_value());
  EXPECT_NE(report.to_string().find("non-monotonic"), std::string::npos);
}

TEST(Monotonicity, NegativeWeightIsRejected) {
  const MonotonicityReport report =
      check_monotonicity(parse_policy("minimize(path.len - path.lat)"));
  EXPECT_FALSE(report.monotonic);
}

TEST(Monotonicity, ReportStringsAreInformative) {
  // Decomposition appends the path.len tie-break, so even the max-combine
  // policy ranks strictly at the propagation layer.
  const MonotonicityReport good = check_monotonicity(lang::policies::min_util());
  EXPECT_EQ(good.to_string(), "strictly monotonic");
}

TEST(StrictMonotonicityStructural, LenIsStrictUtilAndLatCanTie) {
  EXPECT_TRUE(metric_is_strictly_monotonic_structural(parse_expr("path.len")));
  // util is max-combined; lat can cross a zero-delay link.
  EXPECT_FALSE(metric_is_strictly_monotonic_structural(parse_expr("path.util")));
  EXPECT_FALSE(metric_is_strictly_monotonic_structural(parse_expr("path.lat")));
}

TEST(StrictMonotonicityStructural, TuplesAreStrictWithOneStrictElement) {
  // Lexicographic: the strict element breaks any tie in the weak ones.
  EXPECT_TRUE(metric_is_strictly_monotonic_structural(parse_expr("(path.util, path.len)")));
  EXPECT_TRUE(metric_is_strictly_monotonic_structural(parse_expr("(path.len, path.util)")));
  EXPECT_FALSE(metric_is_strictly_monotonic_structural(parse_expr("(path.util, path.lat)")));
}

TEST(StrictMonotonicityStructural, ArithmeticShapes) {
  EXPECT_TRUE(metric_is_strictly_monotonic_structural(parse_expr("path.lat + path.len")));
  EXPECT_TRUE(metric_is_strictly_monotonic_structural(parse_expr("10 + path.len")));
  EXPECT_FALSE(metric_is_strictly_monotonic_structural(parse_expr("path.util + path.lat")));
  EXPECT_TRUE(metric_is_strictly_monotonic_structural(parse_expr("min(path.len, 5 + path.len)")));
  EXPECT_FALSE(metric_is_strictly_monotonic_structural(parse_expr("min(path.lat, path.len)")));
  EXPECT_FALSE(metric_is_strictly_monotonic_structural(parse_expr("10 - path.util")));
}

TEST(StrictMonotonicitySampled, CatchesTies) {
  // util ties whenever the new link is not the bottleneck.
  EXPECT_TRUE(sample_strictness_violation(parse_expr("path.util"), 1, 4000).has_value());
  EXPECT_FALSE(sample_strictness_violation(parse_expr("path.len"), 1, 4000).has_value());
}

TEST(StrictMonotonicity, CatalogPoliciesRankStrictlyAfterDecomposition) {
  // The appended len tie-break makes every monotone catalog policy strict.
  for (const lang::Policy& p :
       {lang::policies::shortest_path(), lang::policies::min_util(),
        lang::policies::widest_shortest(), lang::policies::shortest_widest(),
        lang::policies::congestion_aware()}) {
    const MonotonicityReport report = check_monotonicity(p);
    EXPECT_TRUE(report.strictly_monotonic) << report.to_string();
  }
  // Non-monotone implies non-strict.
  EXPECT_FALSE(check_monotonicity(parse_policy("minimize(1 - path.util)")).strictly_monotonic);
}

}  // namespace
}  // namespace contra::analysis
