// Topology-zoo catalog tests, failure scheduling, and churn properties: the
// protocol must survive scripted link flapping and reconverge to full
// reachability afterwards, on real WAN shapes.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "lang/policies.h"
#include "sim/failure_schedule.h"
#include "sim/transport.h"
#include "topology/zoo.h"
#include "util/rng.h"

namespace contra {
namespace {

using topology::NodeId;
using topology::Topology;

TEST(Zoo, GeantShape) {
  const Topology t = topology::geant();
  EXPECT_EQ(t.num_nodes(), 22u);
  EXPECT_EQ(t.num_links() / 2, 36u);
  EXPECT_TRUE(t.connected());
  EXPECT_GE(t.diameter(), 3u);
}

TEST(Zoo, B4Shape) {
  const Topology t = topology::b4();
  EXPECT_EQ(t.num_nodes(), 12u);
  EXPECT_TRUE(t.connected());
  // Intercontinental links dominate the RTT bound.
  EXPECT_GT(t.max_rtt_s(), 50e-3 * 2 * 0.5);
}

TEST(Zoo, CesnetShape) {
  const Topology t = topology::cesnet();
  EXPECT_EQ(t.num_nodes(), 10u);
  EXPECT_TRUE(t.connected());
}

TEST(Zoo, AllCompileUnderCatalogPolicies) {
  for (const Topology& t : {topology::geant(40e9, 0.001), topology::b4(40e9, 0.001),
                            topology::cesnet(10e9, 0.001)}) {
    for (const lang::Policy& p :
         {lang::policies::min_util(), lang::policies::shortest_path(),
          lang::policies::congestion_aware()}) {
      const compiler::CompileResult result = compiler::compile(p, t);
      EXPECT_GT(result.graph.num_nodes(), 0u);
    }
  }
}

TEST(FailureSchedule, EventsFire) {
  const Topology topo = topology::cesnet(1e9, 0.001);
  sim::Simulator sim(topo, sim::SimConfig{});
  const topology::LinkId cable = topo.link_between(topo.find("Praha"), topo.find("Brno"));
  sim::FailureSchedule schedule;
  schedule.fail_at(1e-3, cable).restore_at(2e-3, cable);
  EXPECT_EQ(schedule.size(), 2u);
  schedule.arm(sim);
  sim.run_until(1.5e-3);
  EXPECT_TRUE(sim.link(cable).down());
  sim.run_until(2.5e-3);
  EXPECT_FALSE(sim.link(cable).down());
}

TEST(FailureSchedule, FlapEndsRestored) {
  const Topology topo = topology::cesnet(1e9, 0.001);
  sim::Simulator sim(topo, sim::SimConfig{});
  const topology::LinkId cable = topo.link_between(topo.find("Brno"), topo.find("Ostrava"));
  sim::FailureSchedule schedule;
  schedule.flap(cable, 1e-3, 0.5e-3, 3);
  EXPECT_EQ(schedule.size(), 6u);
  schedule.arm(sim);
  sim.run_until(10e-3);
  EXPECT_FALSE(sim.link(cable).down());
}

TEST(Churn, ReconvergesAfterRandomFlapping) {
  // Flap three random cables on GEANT while probes run; after the churn
  // stops, every pair must be routable again and ranks finite.
  const Topology topo = topology::geant(10e9, 0.001);
  const compiler::CompileResult compiled =
      compiler::compile(lang::policies::min_util(), topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  sim::Simulator sim(topo, sim::SimConfig{});
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 200e-6;
  auto switches = dataplane::install_contra_network(sim, compiled, evaluator, options);

  util::Rng rng(99);
  sim::FailureSchedule schedule;
  for (int i = 0; i < 3; ++i) {
    const topology::LinkId cable = static_cast<topology::LinkId>(
        rng.uniform_int(0, topo.num_links() - 1));
    schedule.flap(cable, 2e-3 + i * 1e-3, 0.8e-3, 2);
  }
  schedule.arm(sim);

  sim.start();
  sim.run_until(30e-3);  // churn long over; many probe rounds since

  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
      if (src == dst) continue;
      const auto best = switches[src]->best_choice(dst, sim.now());
      ASSERT_TRUE(best.has_value()) << topo.name(src) << "->" << topo.name(dst);
      EXPECT_FALSE(best->rank.is_infinite());
    }
  }
}

TEST(Churn, FlowsSurviveFlappingPath) {
  // A long flow keeps making progress across repeated failures of one of
  // the cables on its path (rerouting + TCP retransmission).
  const Topology topo = topology::cesnet(1e9, 0.001);
  const compiler::CompileResult compiled =
      compiler::compile(lang::policies::min_util(), topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  sim::SimConfig config;
  config.host_link_bps = 1e9;
  sim::Simulator sim(topo, config);
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 100e-6;
  dataplane::install_contra_network(sim, compiled, evaluator, options);
  sim::TransportManager transport(sim);

  const sim::HostId a = sim.add_host(topo.find("Plzen"));
  const sim::HostId b = sim.add_host(topo.find("Ostrava"));

  // Flap Praha-Brno (on the likely shortest path Plzen-Praha-Brno-Ostrava);
  // the Praha-HradecKralove-Olomouc-Ostrava detour stays alive.
  sim::FailureSchedule schedule;
  schedule.flap(topo.link_between(topo.find("Praha"), topo.find("Brno")), 5e-3, 3e-3, 4);
  schedule.arm(sim);

  sim.start();
  sim.run_until(2e-3);
  transport.start_flow(a, b, 2'000'000, sim.now());
  sim.run_until(sim.now() + 0.5);
  ASSERT_EQ(transport.completed_flows().size(), 1u);
  EXPECT_TRUE(transport.completed_flows()[0].completed);
}

}  // namespace
}  // namespace contra
