// Lexer tests: token boundaries, the '.8' vs '.*' ambiguity, errors.
#include <gtest/gtest.h>

#include "lang/lexer.h"

namespace contra::lang {
namespace {

std::vector<TokenKind> kinds(std::string_view src) {
  std::vector<TokenKind> out;
  for (const Token& t : tokenize(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, Keywords) {
  const auto k = kinds("minimize if then else not and or path inf min max");
  const std::vector<TokenKind> expected = {
      TokenKind::kMinimize, TokenKind::kIf,   TokenKind::kThen, TokenKind::kElse,
      TokenKind::kNot,      TokenKind::kAnd,  TokenKind::kOr,   TokenKind::kPath,
      TokenKind::kInf,      TokenKind::kMin,  TokenKind::kMax,  TokenKind::kEnd};
  EXPECT_EQ(k, expected);
}

TEST(Lexer, IdentifiersAreNotKeywords) {
  const auto tokens = tokenize("ifx pathy A1 _x");
  ASSERT_EQ(tokens.size(), 5u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(tokens[i].kind, TokenKind::kIdent);
}

TEST(Lexer, LeadingDotNumber) {
  const auto tokens = tokenize(".8");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(tokens[0].number, 0.8);
}

TEST(Lexer, DotStarIsRegexWildcard) {
  const auto k = kinds(".*");
  const std::vector<TokenKind> expected = {TokenKind::kDot, TokenKind::kStar, TokenKind::kEnd};
  EXPECT_EQ(k, expected);
}

TEST(Lexer, IntegerFollowedByDotStar) {
  // "1.*" must lex as number 1, dot, star — not "1." as a number.
  const auto tokens = tokenize("1.*");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(tokens[0].number, 1.0);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[2].kind, TokenKind::kStar);
}

TEST(Lexer, DecimalNumber) {
  const auto tokens = tokenize("3.25");
  EXPECT_DOUBLE_EQ(tokens[0].number, 3.25);
  EXPECT_EQ(tokens[1].kind, TokenKind::kEnd);
}

TEST(Lexer, ComparisonOperators) {
  const auto k = kinds("< <= > >= == !=");
  const std::vector<TokenKind> expected = {TokenKind::kLt, TokenKind::kLe, TokenKind::kGt,
                                           TokenKind::kGe, TokenKind::kEq, TokenKind::kNe,
                                           TokenKind::kEnd};
  EXPECT_EQ(k, expected);
}

TEST(Lexer, CommentsAreSkipped) {
  const auto k = kinds("path # rest of line\n.util");
  const std::vector<TokenKind> expected = {TokenKind::kPath, TokenKind::kDot,
                                           TokenKind::kIdent, TokenKind::kEnd};
  EXPECT_EQ(k, expected);
}

TEST(Lexer, LoneEqualsThrows) { EXPECT_THROW(tokenize("a = b"), ParseError); }

TEST(Lexer, LoneBangThrows) { EXPECT_THROW(tokenize("a ! b"), ParseError); }

TEST(Lexer, UnexpectedCharThrowsWithOffset) {
  try {
    tokenize("ab $");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.offset(), 3u);
  }
}

TEST(Lexer, OffsetsPointAtTokens) {
  const auto tokens = tokenize("if path");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 3u);
}

TEST(Lexer, EmptyInputHasOnlyEnd) {
  const auto tokens = tokenize("   \n\t ");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

}  // namespace
}  // namespace contra::lang
