// Simulator core tests: event ordering, link serialization/propagation,
// drop-tail queues, utilization EWMA, failure injection, host wiring, and
// the golden-replay determinism gate for the zero-allocation event core.
#include <gtest/gtest.h>

#include <bit>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "sim/event_queue.h"
#include "sim/host.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "sim/tracing.h"
#include "sim/transport.h"
#include "topology/abilene.h"
#include "topology/generators.h"
#include "util/alloc_probe.h"
#include "workload/generator.h"

// One TU of the test binary installs the counting allocator so the
// zero-allocation contract of the event core is checked, not assumed.
CONTRA_DEFINE_COUNTING_ALLOC_HOOKS()

namespace contra::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NestedSchedulingWorks) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    q.schedule_in(1.0, [&] { ++fired; });
  });
  q.run_until(3.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(5.0, [&] { ++fired; });
  q.run_until(4.999);
  EXPECT_EQ(fired, 0);
  q.run_until(5.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, PastTimesClampToNow) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run_until(2.0);
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });  // in the past -> now
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ClampedEventsAreCounted) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run_until(2.0);
  EXPECT_EQ(q.events_clamped(), 0u);
  q.schedule_at(1.0, [] {});  // past -> clamped
  q.schedule_at(2.0, [] {});  // exactly now -> not a clamp
  q.schedule_at(3.0, [] {});
  EXPECT_EQ(q.events_clamped(), 1u);
  q.run_until(3.0);
  EXPECT_EQ(q.events_clamped(), 1u);
}

TEST(EventHandler, SmallCapturesStayInline) {
  int fired = 0;
  struct Small {
    int* counter;
    double pad[4];
  };  // 40 bytes: fits the 48-byte buffer
  static_assert(sizeof(Small) <= EventHandler::kInlineCapacity);
  EventHandler h([s = Small{&fired, {}}] { ++*s.counter; });
  EXPECT_TRUE(h.is_inline());
  h();
  EXPECT_EQ(fired, 1);

  // Moving relocates the inline capture; the source empties.
  EventHandler moved = std::move(h);
  EXPECT_TRUE(moved.is_inline());
  EXPECT_FALSE(static_cast<bool>(h));
  moved();
  EXPECT_EQ(fired, 2);
}

TEST(EventHandler, LargeCapturesFallBackToHeap) {
  int fired = 0;
  struct Big {
    int* counter;
    double pad[8];
  };  // 72 bytes: exceeds the inline buffer
  static_assert(sizeof(Big) > EventHandler::kInlineCapacity);
  const uint64_t allocs_before = util::alloc_count();
  EventHandler h([b = Big{&fired, {}}] { ++*b.counter; });
  EXPECT_FALSE(h.is_inline());
  EXPECT_GT(util::alloc_count(), allocs_before);
  EventHandler moved = std::move(h);  // heap pointer steal, no copy
  moved();
  EXPECT_EQ(fired, 1);
}

TEST(EventHandler, SchedulingSmallLambdasDoesNotAllocatePerEvent) {
  EventQueue q;
  uint64_t fired = 0;
  // Warm up the queue's heap storage, then verify rescheduling a small
  // closure is allocation-free.
  q.schedule_in(1e-6, [&] { ++fired; });
  q.run_until(1.0);
  const uint64_t allocs_before = util::alloc_count();
  for (int i = 0; i < 100; ++i) {
    q.schedule_in(1e-6, [&] { ++fired; });
    q.run_until(q.now() + 1e-6);
  }
  EXPECT_EQ(util::alloc_count(), allocs_before);
  EXPECT_EQ(fired, 101u);
}

TEST(PacketPool, RecyclesReleasedSlots) {
  PacketPool pool;
  Packet* a = pool.acquire();
  a->id = 7;
  a->size_bytes = 1500;
  EXPECT_EQ(pool.allocated(), 1u);
  pool.release(a);
  EXPECT_EQ(pool.free_count(), 1u);
  Packet* b = pool.acquire();  // recycled, not newly created
  EXPECT_EQ(b, a);
  EXPECT_EQ(pool.allocated(), 1u);
  EXPECT_EQ(pool.free_count(), 0u);
  pool.release(b);
}

#ifndef NDEBUG
TEST(PacketPoolDeathTest, DoubleReleaseIsCaught) {
  PacketPool pool;
  Packet* p = pool.acquire();
  pool.release(p);
  EXPECT_DEATH(pool.release(p), "released to the pool twice");
}
#endif

Packet make_packet(uint32_t bytes, PacketKind kind = PacketKind::kData) {
  Packet p;
  p.kind = kind;
  p.size_bytes = bytes;
  return p;
}

TEST(Link, SerializationPlusPropagationDelay) {
  EventQueue q;
  // 1500B at 1Gbps = 12us; propagation 5us -> arrival at 17us.
  Link link(q, 1e9, 5e-6, 1 << 20, 1e-3);
  Time arrival = -1;
  link.set_deliver([&](Packet&&) { arrival = q.now(); });
  ASSERT_TRUE(link.enqueue(make_packet(1500)));
  q.run_until(1.0);
  EXPECT_NEAR(arrival, 17e-6, 1e-9);
}

TEST(Link, BackToBackPacketsSerialize) {
  EventQueue q;
  Link link(q, 1e9, 0.0, 1 << 20, 1e-3);
  std::vector<Time> arrivals;
  link.set_deliver([&](Packet&&) { arrivals.push_back(q.now()); });
  link.enqueue(make_packet(1500));
  link.enqueue(make_packet(1500));
  q.run_until(1.0);
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[1] - arrivals[0], 12e-6, 1e-9);
}

TEST(Link, DropTailWhenQueueFull) {
  EventQueue q;
  Link link(q, 1e9, 0.0, 3000, 1e-3);  // room for two 1500B packets
  int delivered = 0;
  link.set_deliver([&](Packet&&) { ++delivered; });
  EXPECT_TRUE(link.enqueue(make_packet(1500)));
  EXPECT_TRUE(link.enqueue(make_packet(1500)));
  EXPECT_FALSE(link.enqueue(make_packet(1500)));  // full
  EXPECT_EQ(link.stats().drops, 1u);
  q.run_until(1.0);
  EXPECT_EQ(delivered, 2);
}

TEST(Link, DownLinkDropsEverything) {
  EventQueue q;
  Link link(q, 1e9, 0.0, 1 << 20, 1e-3);
  int delivered = 0;
  link.set_deliver([&](Packet&&) { ++delivered; });
  link.set_down(true);
  EXPECT_FALSE(link.enqueue(make_packet(100)));
  link.set_down(false);
  EXPECT_TRUE(link.enqueue(make_packet(100)));
  q.run_until(1.0);
  EXPECT_EQ(delivered, 1);
}

TEST(Link, UtilizationTracksLoad) {
  EventQueue q;
  const double tau = 100e-6;
  Link link(q, 1e9, 0.0, 1 << 22, tau);
  link.set_deliver([](Packet&&) {});
  // Saturate for 2 tau: utilization should approach 1.
  const int n = static_cast<int>(2 * tau * 1e9 / 8 / 1500);
  for (int i = 0; i < n; ++i) link.enqueue(make_packet(1500));
  q.run_until(2 * tau);
  EXPECT_GT(link.utilization(), 0.6);
  // After 2 tau idle, the estimate decays to zero.
  q.run_until(4 * tau);
  EXPECT_NEAR(link.utilization(), 0.0, 1e-9);
}

TEST(Link, UtilizationReadsAreIdempotent) {
  // Pins the EWMA arithmetic: 1 Gbps link, tau = 100us, one 1500B packet.
  // The transmission completes at 12us (1500B * 8 / 1e9); the decay window
  // holds capacity_bps/8 * tau = 12500 bytes, so utilization right after the
  // transmit is 1500/12500 = 0.12, and 50us later half has decayed away.
  EventQueue q;
  const double tau = 100e-6;
  Link link(q, 1e9, 0.0, 1 << 20, tau);
  link.set_deliver([](Packet&&) {});
  link.enqueue(make_packet(1500));
  q.run_until(12e-6);
  EXPECT_DOUBLE_EQ(link.utilization(), 0.12);
  // Reading must not change the estimate: the historical bug decayed the
  // accumulator on every read, so frequent observers saw smaller values.
  EXPECT_DOUBLE_EQ(link.utilization(), 0.12);
  q.run_until(62e-6);
  EXPECT_DOUBLE_EQ(link.utilization(), 0.06);
  EXPECT_DOUBLE_EQ(link.utilization(), 0.06);
}

TEST(Link, SteadyStateHopAllocatesNothing) {
  // Two links ping-pong one packet forever. After warmup (pool slot created,
  // ring buffers and the event heap grown), a packet hop must not touch the
  // allocator: this is the zero-allocation contract of the event core.
  EventQueue q;
  Link ab(q, 1e9, 5e-6, 1 << 20, 1e-3);
  Link ba(q, 1e9, 5e-6, 1 << 20, 1e-3);
  uint64_t hops = 0;
  ab.set_deliver([&](Packet&& p) { ++hops; ba.enqueue(std::move(p)); });
  ba.set_deliver([&](Packet&& p) { ++hops; ab.enqueue(std::move(p)); });
  ab.enqueue(make_packet(1500));
  q.run_until(1e-3);  // warmup
  ASSERT_GT(hops, 10u);
  const uint64_t hops_before = hops;
  const uint64_t allocs_before = util::alloc_count();
  q.run_until(10e-3);
  EXPECT_GT(hops, hops_before + 100);
  EXPECT_EQ(util::alloc_count() - allocs_before, 0u);
  EXPECT_EQ(q.packet_pool().allocated(), 1u);  // one slot, recycled forever
}

TEST(Link, PerKindByteCounters) {
  EventQueue q;
  Link link(q, 1e9, 0.0, 1 << 20, 1e-3);
  link.set_deliver([](Packet&&) {});
  link.enqueue(make_packet(1000, PacketKind::kData));
  link.enqueue(make_packet(64, PacketKind::kAck));
  link.enqueue(make_packet(80, PacketKind::kProbe));
  q.run_until(1.0);
  EXPECT_EQ(link.stats().tx_data_bytes, 1000u);
  EXPECT_EQ(link.stats().tx_ack_bytes, 64u);
  EXPECT_EQ(link.stats().tx_probe_bytes, 80u);
  EXPECT_EQ(link.stats().tx_bytes, 1144u);
}

TEST(Link, QueueSamplerFires) {
  EventQueue q;
  Link link(q, 1e9, 0.0, 1 << 20, 1e-3);
  link.set_deliver([](Packet&&) {});
  std::vector<uint64_t> samples;
  link.set_queue_sampler([&](Time, uint64_t bytes) { samples.push_back(bytes); });
  link.enqueue(make_packet(1500));
  link.enqueue(make_packet(1500));
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0], 1500u);
  EXPECT_EQ(samples[1], 3000u);
}

// A trivial device that records arrivals and bounces nothing.
class SinkDevice : public Device {
 public:
  void handle_packet(Simulator&, Packet&& packet, topology::LinkId in_link) override {
    arrivals.push_back({packet.id, in_link});
  }
  const char* kind_name() const override { return "sink"; }
  std::vector<std::pair<uint64_t, topology::LinkId>> arrivals;
};

TEST(Simulator, DeliversAcrossTopologyLink) {
  const topology::Topology topo = topology::line(2);
  Simulator sim(topo, SimConfig{});
  auto sink = std::make_unique<SinkDevice>();
  SinkDevice* observer = sink.get();
  sim.install_switch(1, std::move(sink));

  Packet p;
  p.id = 77;
  p.size_bytes = 100;
  const topology::LinkId l01 = topo.link_between(0, 1);
  sim.send_on_link(l01, std::move(p));
  sim.run_until(1e-3);
  ASSERT_EQ(observer->arrivals.size(), 1u);
  EXPECT_EQ(observer->arrivals[0].first, 77u);
  EXPECT_EQ(observer->arrivals[0].second, l01);
}

TEST(Simulator, HostPacketsArriveWithFromHostMarker) {
  const topology::Topology topo = topology::line(2);
  Simulator sim(topo, SimConfig{});
  auto sink = std::make_unique<SinkDevice>();
  SinkDevice* observer = sink.get();
  sim.install_switch(0, std::move(sink));
  const HostId h = sim.add_host(0);

  Packet p;
  p.id = 5;
  p.size_bytes = 100;
  sim.host_send(h, std::move(p));
  sim.run_until(1e-3);
  ASSERT_EQ(observer->arrivals.size(), 1u);
  EXPECT_EQ(observer->arrivals[0].second, kFromHost);
}

TEST(Simulator, HostReceiverGetsDownlinkPackets) {
  const topology::Topology topo = topology::line(2);
  Simulator sim(topo, SimConfig{});
  const HostId h = sim.add_host(0);
  HostId received_at = kInvalidHost;
  sim.set_host_receiver([&](HostId host, Packet&&) { received_at = host; });
  Packet p;
  p.size_bytes = 64;
  sim.send_to_host(h, std::move(p));
  sim.run_until(1e-3);
  EXPECT_EQ(received_at, h);
}

TEST(Simulator, FailCableKillsBothDirections) {
  const topology::Topology topo = topology::line(2);
  Simulator sim(topo, SimConfig{});
  const topology::LinkId l01 = topo.link_between(0, 1);
  sim.fail_cable(l01);
  EXPECT_TRUE(sim.link(l01).down());
  EXPECT_TRUE(sim.link(topo.link(l01).reverse).down());
  sim.restore_cable(l01);
  EXPECT_FALSE(sim.link(l01).down());
}

TEST(Simulator, AggregateFabricStatsSumsLinks) {
  const topology::Topology topo = topology::line(3);
  Simulator sim(topo, SimConfig{});
  Packet p;
  p.size_bytes = 500;
  sim.send_on_link(topo.link_between(0, 1), std::move(p));
  sim.run_until(1e-3);
  EXPECT_EQ(sim.aggregate_fabric_stats().tx_bytes, 500u);
}

// ---- golden-replay determinism gate ---------------------------------------
//
// Same seed + same policy must give bit-identical simulations: identical
// event counts, identical FCT lists, identical link statistics. The digests
// below were captured from the std::function-based event core immediately
// before the SBO/pool rewrite; the rewrite (and any future core change that
// claims to be a pure optimization) must reproduce them exactly.

uint64_t fnv_mix(uint64_t h, uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;
}

struct GoldenRun {
  uint64_t digest = 0;
  uint64_t events = 0;
  size_t completed_flows = 0;
};

GoldenRun run_golden_scenario(const topology::Topology& topo,
                              const compiler::CompileResult& compiled,
                              const pg::PolicyEvaluator& evaluator, bool abilene,
                              uint64_t seed) {
  SimConfig config;
  config.host_link_bps = abilene ? 2e9 : 10e9;
  config.util_tau_s = 512e-6;
  Simulator sim(topo, config);

  std::vector<HostId> senders, receivers;
  if (abilene) {
    senders = attach_hosts(sim, {topo.find("Seattle"), topo.find("Sunnyvale")});
    receivers = attach_hosts(sim, {topo.find("NewYork"), topo.find("Atlanta")});
  } else {
    for (HostId h : attach_hosts_to_fat_tree_edges(sim, 2)) {
      (h % 2 ? receivers : senders).push_back(h);
    }
  }

  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 256e-6;
  dataplane::install_contra_network(sim, compiled, evaluator, options);

  TransportManager transport(sim);
  workload::WorkloadConfig wl;
  wl.load = 0.4;
  wl.sender_capacity_bps = 2e9;
  wl.start = 2e-3;
  wl.duration = 4e-3;
  wl.seed = seed;
  wl.size_scale = 0.05;
  const auto flows = workload::generate_poisson(workload::web_search_flow_sizes(), senders,
                                                receivers, wl);
  workload::submit(transport, flows);

  sim.start();
  sim.run_until(wl.start + wl.duration + 0.05);

  GoldenRun out;
  out.events = sim.events().events_processed();
  out.completed_flows = transport.completed_flows().size();
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  h = fnv_mix(h, out.events);
  for (const auto& f : transport.completed_flows()) {
    h = fnv_mix(h, f.flow_id);
    h = fnv_mix(h, std::bit_cast<uint64_t>(f.start));
    h = fnv_mix(h, std::bit_cast<uint64_t>(f.end));
  }
  for (topology::LinkId id = 0; id < topo.num_links(); ++id) {
    const LinkStats& s = sim.link(id).stats();
    h = fnv_mix(h, s.tx_packets);
    h = fnv_mix(h, s.tx_bytes);
    h = fnv_mix(h, s.tx_probe_bytes);
    h = fnv_mix(h, s.drops);
    h = fnv_mix(h, s.data_drops);
  }
  out.digest = h;
  return out;
}

TEST(Determinism, GoldenReplayFatTreeAndAbilene) {
  struct Golden {
    bool abilene;
    uint64_t seed;
    uint64_t digest;
  };
  // Re-pinned when probe delta-suppression landed (it intentionally changes
  // the control-plane packet stream); replay determinism below still proves
  // bit-identical reruns.
  static constexpr Golden kGoldens[] = {
      {false, 1, 0x09ea8daf20e5853full}, {false, 2, 0x069318c39e29c7dcull},
      {false, 3, 0xdab422b8ca48302cull}, {true, 1, 0x837cd0f908bdf4d3ull},
      {true, 2, 0x4c935b6c706c5abbull},  {true, 3, 0xe88e426e5fee28ecull},
  };

  const topology::Topology fat_tree =
      topology::fat_tree(4, topology::LinkParams{10e9, 1e-6});
  const topology::Topology abilene = topology::abilene(2e9, 0.02);
  const compiler::CompileResult fat_compiled =
      compiler::compile("minimize((path.len, path.util))", fat_tree);
  const compiler::CompileResult abi_compiled = compiler::compile("minimize(path.util)", abilene);
  const pg::PolicyEvaluator fat_eval(fat_compiled.graph, fat_compiled.decomposition);
  const pg::PolicyEvaluator abi_eval(abi_compiled.graph, abi_compiled.decomposition);

  for (const Golden& g : kGoldens) {
    const topology::Topology& topo = g.abilene ? abilene : fat_tree;
    const compiler::CompileResult& compiled = g.abilene ? abi_compiled : fat_compiled;
    const pg::PolicyEvaluator& evaluator = g.abilene ? abi_eval : fat_eval;
    const GoldenRun first = run_golden_scenario(topo, compiled, evaluator, g.abilene, g.seed);
    const GoldenRun replay = run_golden_scenario(topo, compiled, evaluator, g.abilene, g.seed);
    // Replay determinism: two fresh simulators, same inputs, same bits.
    EXPECT_EQ(first.digest, replay.digest)
        << (g.abilene ? "abilene" : "fat-tree") << " seed " << g.seed;
    EXPECT_EQ(first.events, replay.events);
    EXPECT_GT(first.completed_flows, 0u);
    // Cross-rewrite golden: pinned against the pre-rewrite core.
    EXPECT_EQ(first.digest, g.digest)
        << (g.abilene ? "abilene" : "fat-tree") << " seed " << g.seed << std::hex
        << " actual digest 0x" << first.digest;
  }
}

TEST(Tracing, ThroughputTimelineBins) {
  ThroughputTimeline timeline(1e-3);
  timeline.add(0.5e-3, 1000);
  timeline.add(0.9e-3, 1000);
  timeline.add(1.1e-3, 500);
  EXPECT_DOUBLE_EQ(timeline.throughput_bps(0), 2000 * 8.0 / 1e-3);
  EXPECT_DOUBLE_EQ(timeline.throughput_bps(1), 500 * 8.0 / 1e-3);
  EXPECT_DOUBLE_EQ(timeline.throughput_bps(9), 0.0);
}

TEST(Tracing, ThroughputTimelineBinBoundary) {
  // An event exactly on a bin edge belongs to the bin it opens (half-open
  // [i*w, (i+1)*w) intervals): floor(t / w) = i at t = i*w.
  ThroughputTimeline timeline(1e-3);
  timeline.add(0.0, 100);
  timeline.add(1e-3, 200);   // exactly on the 0/1 boundary -> bin 1
  timeline.add(2e-3, 400);   // exactly on the 1/2 boundary -> bin 2
  ASSERT_EQ(timeline.num_bins(), 3u);
  EXPECT_DOUBLE_EQ(timeline.throughput_bps(0), 100 * 8.0 / 1e-3);
  EXPECT_DOUBLE_EQ(timeline.throughput_bps(1), 200 * 8.0 / 1e-3);
  EXPECT_DOUBLE_EQ(timeline.throughput_bps(2), 400 * 8.0 / 1e-3);
}

TEST(Tracing, ThroughputTimelineEmptyGapBins) {
  // A quiet period leaves explicit zero bins between active ones; the series
  // must show the gap, not compress it away.
  ThroughputTimeline timeline(1e-3);
  timeline.add(0.2e-3, 1000);
  timeline.add(4.5e-3, 1000);
  ASSERT_EQ(timeline.num_bins(), 5u);
  EXPECT_GT(timeline.throughput_bps(0), 0.0);
  EXPECT_DOUBLE_EQ(timeline.throughput_bps(1), 0.0);
  EXPECT_DOUBLE_EQ(timeline.throughput_bps(2), 0.0);
  EXPECT_DOUBLE_EQ(timeline.throughput_bps(3), 0.0);
  EXPECT_GT(timeline.throughput_bps(4), 0.0);
  // Negative timestamps are ignored, out-of-range reads are zero.
  timeline.add(-1.0, 5000);
  EXPECT_EQ(timeline.num_bins(), 5u);
  EXPECT_DOUBLE_EQ(timeline.throughput_bps(99), 0.0);
}

TEST(Tracing, QueueTracerQuantileEmptyAndSingle) {
  // Empty tracer: every quantile (and CDF) reads 0 rather than faulting.
  QueueLengthTracer empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.cdf_at(100.0), 0.0);

  // Single sample: all quantiles collapse to it (interpolation has one point).
  QueueLengthTracer single;
  const topology::Topology topo = topology::line(2);
  Simulator sim(topo, SimConfig{});
  single.attach_fabric(sim, 1500);
  Packet p;
  p.size_bytes = 3000;  // 2 MSS
  sim.send_on_link(topo.link_between(0, 1), std::move(p));
  ASSERT_EQ(single.samples_mss().size(), 1u);
  EXPECT_DOUBLE_EQ(single.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(single.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(single.quantile(1.0), 2.0);
  // Quantile arguments outside [0,1] clamp instead of indexing out of range.
  EXPECT_DOUBLE_EQ(single.quantile(-0.5), 2.0);
  EXPECT_DOUBLE_EQ(single.quantile(1.5), 2.0);
}

TEST(Tracing, QueueTracerQuantiles) {
  QueueLengthTracer tracer;
  // No attach needed: exercise the math directly via a fabricated tracer is
  // not possible (samples_ is private), so attach to a tiny sim instead.
  const topology::Topology topo = topology::line(2);
  Simulator sim(topo, SimConfig{});
  tracer.attach_fabric(sim, 1500);
  for (int i = 0; i < 4; ++i) {
    Packet p;
    p.size_bytes = 1500;
    sim.send_on_link(topo.link_between(0, 1), std::move(p));
  }
  EXPECT_EQ(tracer.samples_mss().size(), 4u);
  EXPECT_DOUBLE_EQ(tracer.quantile(1.0), 4.0);
  EXPECT_GT(tracer.cdf_at(4.0), 0.99);
}

}  // namespace
}  // namespace contra::sim
