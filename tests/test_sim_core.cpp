// Simulator core tests: event ordering, link serialization/propagation,
// drop-tail queues, utilization EWMA, failure injection, host wiring.
#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "sim/tracing.h"
#include "topology/generators.h"

namespace contra::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NestedSchedulingWorks) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    q.schedule_in(1.0, [&] { ++fired; });
  });
  q.run_until(3.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(5.0, [&] { ++fired; });
  q.run_until(4.999);
  EXPECT_EQ(fired, 0);
  q.run_until(5.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, PastTimesClampToNow) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run_until(2.0);
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });  // in the past -> now
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
}

Packet make_packet(uint32_t bytes, PacketKind kind = PacketKind::kData) {
  Packet p;
  p.kind = kind;
  p.size_bytes = bytes;
  return p;
}

TEST(Link, SerializationPlusPropagationDelay) {
  EventQueue q;
  // 1500B at 1Gbps = 12us; propagation 5us -> arrival at 17us.
  Link link(q, 1e9, 5e-6, 1 << 20, 1e-3);
  Time arrival = -1;
  link.set_deliver([&](Packet&&) { arrival = q.now(); });
  ASSERT_TRUE(link.enqueue(make_packet(1500)));
  q.run_until(1.0);
  EXPECT_NEAR(arrival, 17e-6, 1e-9);
}

TEST(Link, BackToBackPacketsSerialize) {
  EventQueue q;
  Link link(q, 1e9, 0.0, 1 << 20, 1e-3);
  std::vector<Time> arrivals;
  link.set_deliver([&](Packet&&) { arrivals.push_back(q.now()); });
  link.enqueue(make_packet(1500));
  link.enqueue(make_packet(1500));
  q.run_until(1.0);
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[1] - arrivals[0], 12e-6, 1e-9);
}

TEST(Link, DropTailWhenQueueFull) {
  EventQueue q;
  Link link(q, 1e9, 0.0, 3000, 1e-3);  // room for two 1500B packets
  int delivered = 0;
  link.set_deliver([&](Packet&&) { ++delivered; });
  EXPECT_TRUE(link.enqueue(make_packet(1500)));
  EXPECT_TRUE(link.enqueue(make_packet(1500)));
  EXPECT_FALSE(link.enqueue(make_packet(1500)));  // full
  EXPECT_EQ(link.stats().drops, 1u);
  q.run_until(1.0);
  EXPECT_EQ(delivered, 2);
}

TEST(Link, DownLinkDropsEverything) {
  EventQueue q;
  Link link(q, 1e9, 0.0, 1 << 20, 1e-3);
  int delivered = 0;
  link.set_deliver([&](Packet&&) { ++delivered; });
  link.set_down(true);
  EXPECT_FALSE(link.enqueue(make_packet(100)));
  link.set_down(false);
  EXPECT_TRUE(link.enqueue(make_packet(100)));
  q.run_until(1.0);
  EXPECT_EQ(delivered, 1);
}

TEST(Link, UtilizationTracksLoad) {
  EventQueue q;
  const double tau = 100e-6;
  Link link(q, 1e9, 0.0, 1 << 22, tau);
  link.set_deliver([](Packet&&) {});
  // Saturate for 2 tau: utilization should approach 1.
  const int n = static_cast<int>(2 * tau * 1e9 / 8 / 1500);
  for (int i = 0; i < n; ++i) link.enqueue(make_packet(1500));
  q.run_until(2 * tau);
  EXPECT_GT(link.utilization(), 0.6);
  // After 2 tau idle, the estimate decays to zero.
  q.run_until(4 * tau);
  EXPECT_NEAR(link.utilization(), 0.0, 1e-9);
}

TEST(Link, PerKindByteCounters) {
  EventQueue q;
  Link link(q, 1e9, 0.0, 1 << 20, 1e-3);
  link.set_deliver([](Packet&&) {});
  link.enqueue(make_packet(1000, PacketKind::kData));
  link.enqueue(make_packet(64, PacketKind::kAck));
  link.enqueue(make_packet(80, PacketKind::kProbe));
  q.run_until(1.0);
  EXPECT_EQ(link.stats().tx_data_bytes, 1000u);
  EXPECT_EQ(link.stats().tx_ack_bytes, 64u);
  EXPECT_EQ(link.stats().tx_probe_bytes, 80u);
  EXPECT_EQ(link.stats().tx_bytes, 1144u);
}

TEST(Link, QueueSamplerFires) {
  EventQueue q;
  Link link(q, 1e9, 0.0, 1 << 20, 1e-3);
  link.set_deliver([](Packet&&) {});
  std::vector<uint64_t> samples;
  link.set_queue_sampler([&](Time, uint64_t bytes) { samples.push_back(bytes); });
  link.enqueue(make_packet(1500));
  link.enqueue(make_packet(1500));
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0], 1500u);
  EXPECT_EQ(samples[1], 3000u);
}

// A trivial device that records arrivals and bounces nothing.
class SinkDevice : public Device {
 public:
  void handle_packet(Simulator&, Packet&& packet, topology::LinkId in_link) override {
    arrivals.push_back({packet.id, in_link});
  }
  const char* kind_name() const override { return "sink"; }
  std::vector<std::pair<uint64_t, topology::LinkId>> arrivals;
};

TEST(Simulator, DeliversAcrossTopologyLink) {
  const topology::Topology topo = topology::line(2);
  Simulator sim(topo, SimConfig{});
  auto sink = std::make_unique<SinkDevice>();
  SinkDevice* observer = sink.get();
  sim.install_switch(1, std::move(sink));

  Packet p;
  p.id = 77;
  p.size_bytes = 100;
  const topology::LinkId l01 = topo.link_between(0, 1);
  sim.send_on_link(l01, std::move(p));
  sim.run_until(1e-3);
  ASSERT_EQ(observer->arrivals.size(), 1u);
  EXPECT_EQ(observer->arrivals[0].first, 77u);
  EXPECT_EQ(observer->arrivals[0].second, l01);
}

TEST(Simulator, HostPacketsArriveWithFromHostMarker) {
  const topology::Topology topo = topology::line(2);
  Simulator sim(topo, SimConfig{});
  auto sink = std::make_unique<SinkDevice>();
  SinkDevice* observer = sink.get();
  sim.install_switch(0, std::move(sink));
  const HostId h = sim.add_host(0);

  Packet p;
  p.id = 5;
  p.size_bytes = 100;
  sim.host_send(h, std::move(p));
  sim.run_until(1e-3);
  ASSERT_EQ(observer->arrivals.size(), 1u);
  EXPECT_EQ(observer->arrivals[0].second, kFromHost);
}

TEST(Simulator, HostReceiverGetsDownlinkPackets) {
  const topology::Topology topo = topology::line(2);
  Simulator sim(topo, SimConfig{});
  const HostId h = sim.add_host(0);
  HostId received_at = kInvalidHost;
  sim.set_host_receiver([&](HostId host, Packet&&) { received_at = host; });
  Packet p;
  p.size_bytes = 64;
  sim.send_to_host(h, std::move(p));
  sim.run_until(1e-3);
  EXPECT_EQ(received_at, h);
}

TEST(Simulator, FailCableKillsBothDirections) {
  const topology::Topology topo = topology::line(2);
  Simulator sim(topo, SimConfig{});
  const topology::LinkId l01 = topo.link_between(0, 1);
  sim.fail_cable(l01);
  EXPECT_TRUE(sim.link(l01).down());
  EXPECT_TRUE(sim.link(topo.link(l01).reverse).down());
  sim.restore_cable(l01);
  EXPECT_FALSE(sim.link(l01).down());
}

TEST(Simulator, AggregateFabricStatsSumsLinks) {
  const topology::Topology topo = topology::line(3);
  Simulator sim(topo, SimConfig{});
  Packet p;
  p.size_bytes = 500;
  sim.send_on_link(topo.link_between(0, 1), std::move(p));
  sim.run_until(1e-3);
  EXPECT_EQ(sim.aggregate_fabric_stats().tx_bytes, 500u);
}

TEST(Tracing, ThroughputTimelineBins) {
  ThroughputTimeline timeline(1e-3);
  timeline.add(0.5e-3, 1000);
  timeline.add(0.9e-3, 1000);
  timeline.add(1.1e-3, 500);
  EXPECT_DOUBLE_EQ(timeline.throughput_bps(0), 2000 * 8.0 / 1e-3);
  EXPECT_DOUBLE_EQ(timeline.throughput_bps(1), 500 * 8.0 / 1e-3);
  EXPECT_DOUBLE_EQ(timeline.throughput_bps(9), 0.0);
}

TEST(Tracing, QueueTracerQuantiles) {
  QueueLengthTracer tracer;
  // No attach needed: exercise the math directly via a fabricated tracer is
  // not possible (samples_ is private), so attach to a tiny sim instead.
  const topology::Topology topo = topology::line(2);
  Simulator sim(topo, SimConfig{});
  tracer.attach_fabric(sim, 1500);
  for (int i = 0; i < 4; ++i) {
    Packet p;
    p.size_bytes = 1500;
    sim.send_on_link(topo.link_between(0, 1), std::move(p));
  }
  EXPECT_EQ(tracer.samples_mss().size(), 4u);
  EXPECT_DOUBLE_EQ(tracer.quantile(1.0), 4.0);
  EXPECT_GT(tracer.cdf_at(4.0), 0.99);
}

}  // namespace
}  // namespace contra::sim
