// Metrics helpers: FCT summaries, overhead reports, output formatting.
#include <gtest/gtest.h>

#include "metrics/counters.h"
#include "metrics/fct.h"
#include "metrics/timeline.h"

namespace contra::metrics {
namespace {

sim::FlowRecord flow(uint64_t id, double start, double end, uint64_t bytes = 1000) {
  return sim::FlowRecord{id, 0, 1, bytes, start, end, true};
}

TEST(Fct, SummaryBasics) {
  const std::vector<sim::FlowRecord> flows = {flow(1, 0.0, 0.010), flow(2, 0.0, 0.020),
                                              flow(3, 0.0, 0.030)};
  const FctSummary s = summarize_fct(flows, 5);
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.incomplete, 2u);
  EXPECT_NEAR(s.mean_s, 0.020, 1e-9);
  EXPECT_NEAR(s.median_s, 0.020, 1e-9);
  EXPECT_NEAR(s.max_s, 0.030, 1e-9);
}

TEST(Fct, EmptySummaryIsZero) {
  const FctSummary s = summarize_fct({}, 0);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_DOUBLE_EQ(s.mean_s, 0.0);
}

TEST(Fct, QuantilesInterpolate) {
  std::vector<sim::FlowRecord> flows;
  for (int i = 1; i <= 100; ++i) flows.push_back(flow(i, 0.0, i * 1e-3));
  const FctSummary s = summarize_fct(flows, flows.size());
  EXPECT_NEAR(s.p99_s, 0.09901, 1e-4);
  EXPECT_NEAR(s.p95_s, 0.09505, 1e-4);
}

TEST(Fct, SizeFilteredMeans) {
  const std::vector<sim::FlowRecord> flows = {flow(1, 0, 0.01, 100),
                                              flow(2, 0, 0.03, 1'000'000)};
  EXPECT_NEAR(mean_fct_below(flows, 1000), 0.01, 1e-9);
  EXPECT_NEAR(mean_fct_at_least(flows, 1000), 0.03, 1e-9);
  EXPECT_DOUBLE_EQ(mean_fct_below(flows, 1), 0.0);
}

TEST(Fct, ToStringMentionsCounts) {
  const FctSummary s = summarize_fct({flow(1, 0, 0.01)}, 2);
  EXPECT_NE(s.to_string().find("n=1"), std::string::npos);
  EXPECT_NE(s.to_string().find("+1 incomplete"), std::string::npos);
}

TEST(Overhead, ReportAggregates) {
  sim::LinkStats stats;
  stats.tx_data_bytes = 800;
  stats.tx_ack_bytes = 100;
  stats.tx_probe_bytes = 100;
  stats.tx_bytes = 1000;
  stats.drops = 3;
  const OverheadReport r = make_overhead_report(stats);
  EXPECT_DOUBLE_EQ(r.probe_fraction(), 0.1);
  EXPECT_EQ(r.drops, 3u);
}

TEST(Overhead, ReportIncludesPacketCounts) {
  sim::LinkStats stats;
  stats.tx_data_packets = 60;
  stats.tx_ack_packets = 30;
  stats.tx_probe_packets = 10;
  stats.tx_packets = 100;
  const OverheadReport r = make_overhead_report(stats);
  EXPECT_EQ(r.data_packets, 60u);
  EXPECT_EQ(r.ack_packets, 30u);
  EXPECT_EQ(r.probe_packets, 10u);
  EXPECT_EQ(r.total_packets, 100u);
  EXPECT_DOUBLE_EQ(r.probe_packet_fraction(), 0.1);
  EXPECT_DOUBLE_EQ(OverheadReport{}.probe_packet_fraction(), 0.0);
}

TEST(Overhead, WindowedReportDiffsMonotonicCounters) {
  sim::LinkStats start;
  start.tx_data_bytes = 500;
  start.tx_ack_bytes = 50;
  start.tx_probe_bytes = 70;
  start.tx_bytes = 620;
  start.tx_data_packets = 5;
  start.tx_ack_packets = 5;
  start.tx_probe_packets = 1;
  start.tx_packets = 11;
  start.drops = 2;

  sim::LinkStats end = start;
  end.tx_data_bytes += 800;
  end.tx_ack_bytes += 100;
  end.tx_probe_bytes += 100;
  end.tx_bytes += 1000;
  end.tx_data_packets += 8;
  end.tx_ack_packets += 2;
  end.tx_probe_packets += 10;
  end.tx_packets += 20;
  end.drops += 3;

  const OverheadReport r = make_overhead_report(end, start);
  EXPECT_EQ(r.data_bytes, 800u);
  EXPECT_EQ(r.ack_bytes, 100u);
  EXPECT_EQ(r.probe_bytes, 100u);
  EXPECT_EQ(r.total_bytes, 1000u);
  EXPECT_EQ(r.data_packets, 8u);
  EXPECT_EQ(r.ack_packets, 2u);
  EXPECT_EQ(r.probe_packets, 10u);
  EXPECT_EQ(r.total_packets, 20u);
  EXPECT_EQ(r.drops, 3u);
  EXPECT_DOUBLE_EQ(r.probe_fraction(), 0.1);
  EXPECT_DOUBLE_EQ(r.probe_packet_fraction(), 0.5);

  // A zero-width window reports all zeros, not stale totals.
  const OverheadReport zero = make_overhead_report(start, start);
  EXPECT_EQ(zero.total_bytes, 0u);
  EXPECT_EQ(zero.total_packets, 0u);
  EXPECT_EQ(zero.drops, 0u);
}

TEST(Overhead, ToStringMentionsPacketCounts) {
  sim::LinkStats stats;
  stats.tx_packets = 42;
  stats.tx_probe_packets = 7;
  const std::string s = make_overhead_report(stats).to_string();
  EXPECT_NE(s.find("pkts=42"), std::string::npos);
  EXPECT_NE(s.find("probe=7"), std::string::npos);
}

TEST(Overhead, NormalizationAgainstBaseline) {
  OverheadReport contra;
  contra.total_bytes = 1010;
  OverheadReport ecmp;
  ecmp.total_bytes = 1000;
  EXPECT_NEAR(contra.normalized_to(ecmp), 1.01, 1e-12);
  OverheadReport empty;
  EXPECT_DOUBLE_EQ(contra.normalized_to(empty), 0.0);
}

TEST(Formatting, SeriesLayout) {
  const std::string s = format_series("fct", {10, 20}, {1.5, 2.5});
  EXPECT_EQ(s, "fct: 10=1.500 20=2.500");
}

TEST(Formatting, TableAligns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Three lines: header + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(Formatting, NumFormats) {
  EXPECT_EQ(Table::num(1.5, "%.1f"), "1.5");
  EXPECT_EQ(Table::num(42, "%.0f"), "42");
}

}  // namespace
}  // namespace contra::metrics
