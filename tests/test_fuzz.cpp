// Randomized structural fuzzing:
//  * random policy ASTs round-trip through the printer+parser;
//  * decomposition + analyses never crash and satisfy cross-invariants
//    (every pid's propagation objective is monotone whenever the policy
//    passes the monotonicity gate; selection_rank never exceeds width
//    bounds);
//  * random regexes: DFA pipeline agrees with the derivative matcher;
//  * lexer never crashes on arbitrary printable input.
#include <gtest/gtest.h>

#include "analysis/attributes.h"
#include "analysis/decompose.h"
#include "analysis/monotonicity.h"
#include "automata/dfa.h"
#include "lang/eval.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "util/rng.h"

namespace contra {
namespace {

using lang::Expr;
using lang::ExprPtr;
using lang::Regex;
using lang::RegexPtr;

const std::vector<std::string> kNodes = {"A", "B", "C", "D"};

RegexPtr random_regex(util::Rng& rng, int depth) {
  if (depth <= 0 || rng.uniform() < 0.4) {
    if (rng.uniform() < 0.3) return Regex::dot();
    return Regex::make_node(kNodes[rng.uniform_int(0, kNodes.size() - 1)]);
  }
  switch (rng.uniform_int(0, 2)) {
    case 0:
      return Regex::make_union(random_regex(rng, depth - 1), random_regex(rng, depth - 1));
    case 1:
      return Regex::concat(random_regex(rng, depth - 1), random_regex(rng, depth - 1));
    default:
      return Regex::star(random_regex(rng, depth - 1));
  }
}

lang::TestPtr random_test(util::Rng& rng, int depth) {
  if (depth <= 0 || rng.uniform() < 0.5) {
    if (rng.uniform() < 0.5) return lang::BoolTest::regex_test(random_regex(rng, 2));
    return lang::BoolTest::compare(
        lang::BoolTest::CmpOp::kLt,
        Expr::attribute(static_cast<lang::PathAttr>(rng.uniform_int(0, 2))),
        Expr::constant(rng.uniform() * 10));
  }
  switch (rng.uniform_int(0, 2)) {
    case 0:
      return lang::BoolTest::negate(random_test(rng, depth - 1));
    case 1:
      return lang::BoolTest::conj(random_test(rng, depth - 1), random_test(rng, depth - 1));
    default:
      return lang::BoolTest::disj(random_test(rng, depth - 1), random_test(rng, depth - 1));
  }
}

ExprPtr random_expr(util::Rng& rng, int depth) {
  if (depth <= 0 || rng.uniform() < 0.3) {
    switch (rng.uniform_int(0, 2)) {
      case 0: return Expr::constant(static_cast<double>(rng.uniform_int(0, 20)));
      case 1: return Expr::infinity();
      default: return Expr::attribute(static_cast<lang::PathAttr>(rng.uniform_int(0, 2)));
    }
  }
  switch (rng.uniform_int(0, 3)) {
    case 0:
      return Expr::binop(static_cast<lang::BinOp>(rng.uniform_int(0, 3)),
                         random_expr(rng, depth - 1), random_expr(rng, depth - 1));
    case 1:
      return Expr::if_then_else(random_test(rng, depth - 1), random_expr(rng, depth - 1),
                                random_expr(rng, depth - 1));
    case 2: {
      std::vector<ExprPtr> elems;
      const int n = static_cast<int>(rng.uniform_int(2, 3));
      for (int i = 0; i < n; ++i) elems.push_back(random_expr(rng, depth - 1));
      return Expr::tuple(std::move(elems));
    }
    default:
      return Expr::attribute(static_cast<lang::PathAttr>(rng.uniform_int(0, 2)));
  }
}

TEST(Fuzz, PoliciesRoundTripThroughPrinter) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    const lang::Policy policy{random_expr(rng, 3)};
    const std::string text = lang::to_string(policy);
    lang::Policy reparsed;
    ASSERT_NO_THROW(reparsed = lang::parse_policy(text)) << text;
    EXPECT_EQ(lang::to_string(reparsed), text) << "trial " << trial;
  }
}

TEST(Fuzz, EvaluationIsDeterministicAndTotal) {
  util::Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const lang::Policy policy{random_expr(rng, 3)};
    const lang::PathAttributes attrs{rng.uniform(), rng.uniform() * 10,
                                     static_cast<double>(rng.uniform_int(0, 8))};
    const std::vector<std::string> nodes = {"A", "B", "D"};
    const lang::Rank r1 = lang::evaluate_with_attrs(policy, nodes, attrs);
    const lang::Rank r2 = lang::evaluate_with_attrs(policy, nodes, attrs);
    EXPECT_EQ(r1, r2);
  }
}

TEST(Fuzz, DecompositionInvariants) {
  util::Rng rng(11);
  int decomposed = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const lang::Policy policy{random_expr(rng, 3)};
    analysis::Decomposition d;
    try {
      d = analysis::decompose(policy);
    } catch (const analysis::DecomposeError&) {
      continue;  // too many atoms — legitimate rejection
    }
    ++decomposed;
    ASSERT_GE(d.subpolicies.size(), 1u);
    for (const auto& sub : d.subpolicies) {
      // Propagation objectives are test-free and never the constant ∞.
      EXPECT_FALSE(lang::expr_has_dynamic_test(sub.objective));
      EXPECT_FALSE(analysis::is_infinite_metric(sub.objective));
      // Evaluating them on arbitrary attributes is total.
      const lang::PathAttributes attrs{rng.uniform(), rng.uniform() * 5, 3};
      (void)analysis::evaluate_metric(sub.objective, attrs);
    }
    // attrs layout is sorted and non-empty.
    ASSERT_FALSE(d.attrs.empty());
    for (size_t i = 1; i < d.attrs.size(); ++i) {
      EXPECT_LT(static_cast<int>(d.attrs[i - 1]), static_cast<int>(d.attrs[i]));
    }
  }
  EXPECT_GT(decomposed, 100);  // the generator mostly stays under the bound
}

TEST(Fuzz, RandomRegexesDfaAgreesWithDerivatives) {
  util::Rng rng(13);
  const automata::Alphabet alphabet(kNodes);
  for (int trial = 0; trial < 120; ++trial) {
    const RegexPtr regex = random_regex(rng, 3);
    const automata::Dfa dfa = automata::compile_regex(regex, alphabet);
    for (int w = 0; w < 40; ++w) {
      const int len = static_cast<int>(rng.uniform_int(0, 5));
      std::vector<uint32_t> symbols;
      std::vector<std::string> names;
      for (int i = 0; i < len; ++i) {
        const uint32_t s = static_cast<uint32_t>(rng.uniform_int(0, kNodes.size() - 1));
        symbols.push_back(s);
        names.push_back(kNodes[s]);
      }
      ASSERT_EQ(dfa.accepts(symbols), lang::regex_matches(regex, names))
          << lang::to_string(regex);
    }
  }
}

TEST(Fuzz, LexerNeverCrashesOnPrintableGarbage) {
  util::Rng rng(17);
  const std::string charset = "abcXYZ019 ._*+-()<>=!,:\t\n";
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    const int len = static_cast<int>(rng.uniform_int(0, 60));
    for (int i = 0; i < len; ++i) {
      input += charset[rng.uniform_int(0, charset.size() - 1)];
    }
    try {
      const auto tokens = lang::tokenize(input);
      EXPECT_FALSE(tokens.empty());
    } catch (const lang::ParseError&) {
      // rejection is fine; crashing is not
    }
  }
}

TEST(Fuzz, ParserNeverCrashesOnTokenSoup) {
  util::Rng rng(19);
  const std::vector<std::string> words = {"minimize", "if",   "then", "else", "path",
                                          ".",        "util", "(",    ")",    "inf",
                                          "+",        "*",    "A",    "<",    "0.5",
                                          ",",        "and",  "not"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    const int len = static_cast<int>(rng.uniform_int(0, 25));
    for (int i = 0; i < len; ++i) {
      input += words[rng.uniform_int(0, words.size() - 1)] + " ";
    }
    try {
      (void)lang::parse_policy(input);
    } catch (const lang::ParseError&) {
      // expected for nearly all inputs
    }
  }
}

// Cross-invariant: anything the monotonicity gate passes has monotone
// propagation objectives under random sampling.
TEST(Fuzz, MonotonicGateImpliesMonotoneObjectives) {
  util::Rng rng(23);
  int accepted = 0;
  for (int trial = 0; trial < 150 && accepted < 40; ++trial) {
    const lang::Policy policy{random_expr(rng, 2)};
    analysis::Decomposition d;
    try {
      d = analysis::decompose(policy);
    } catch (const analysis::DecomposeError&) {
      continue;
    }
    const auto report = analysis::check_monotonicity(d);
    if (!report.monotonic) continue;
    ++accepted;
    for (const auto& sub : d.subpolicies) {
      EXPECT_FALSE(
          analysis::sample_monotonicity_violation(sub.objective, 5, 1500).has_value())
          << lang::to_string(sub.objective);
    }
  }
  EXPECT_GT(accepted, 10);
}

}  // namespace
}  // namespace contra
