// Transport extensions: reordering accounting (the paper's "Ordered"
// objective) and DCTCP-style ECN.
#include <gtest/gtest.h>

#include "dataplane/static_switch.h"
#include "sim/transport.h"
#include "topology/generators.h"

namespace contra::sim {
namespace {

using topology::NodeId;
using topology::Topology;

// A test switch that deliberately splits one flow across two paths of
// different delay (even seq -> fast, odd seq -> slow): guaranteed reordering.
class SplittingSwitch : public Device {
 public:
  SplittingSwitch(topology::LinkId fast, topology::LinkId slow, NodeId self)
      : fast_(fast), slow_(slow), self_(self) {}
  void handle_packet(Simulator& sim, Packet&& packet, topology::LinkId in_link) override {
    (void)in_link;
    if (packet.dst_switch == self_) {
      sim.send_to_host(packet.dst_host, std::move(packet));
      return;
    }
    sim.send_on_link(packet.seq % 2 == 0 ? fast_ : slow_, std::move(packet));
  }
  const char* kind_name() const override { return "splitter"; }

 private:
  topology::LinkId fast_;
  topology::LinkId slow_;
  NodeId self_;
};

// Relay that forwards by destination switch (two-way middle hop).
class RelaySwitch : public Device {
 public:
  RelaySwitch(NodeId toward_a, topology::LinkId out_a, topology::LinkId out_other, NodeId self)
      : toward_a_(toward_a), out_a_(out_a), out_other_(out_other), self_(self) {}
  void handle_packet(Simulator& sim, Packet&& packet, topology::LinkId) override {
    if (packet.dst_switch == self_) {
      sim.send_to_host(packet.dst_host, std::move(packet));
      return;
    }
    sim.send_on_link(packet.dst_switch == toward_a_ ? out_a_ : out_other_, std::move(packet));
  }
  const char* kind_name() const override { return "relay"; }

 private:
  NodeId toward_a_;
  topology::LinkId out_a_;
  topology::LinkId out_other_;
  NodeId self_;
};

TEST(Reordering, SplitPathsAreDetected) {
  // S splits the flow across a 1us path and a 300us path; ACKs return via
  // the destination switch's splitter too but matter little.
  Topology topo;
  const NodeId s = topo.add_node("S");
  const NodeId fast_mid = topo.add_node("F");
  const NodeId slow_mid = topo.add_node("W");
  const NodeId d = topo.add_node("D");
  topo.add_link(s, fast_mid, 1e9, 1e-6);
  topo.add_link(fast_mid, d, 1e9, 1e-6);
  topo.add_link(s, slow_mid, 1e9, 300e-6);
  topo.add_link(slow_mid, d, 1e9, 1e-6);

  Simulator sim(topo, SimConfig{});
  sim.install_switch(
      s, std::make_unique<SplittingSwitch>(topo.link_between(s, fast_mid),
                                           topo.link_between(s, slow_mid), s));
  sim.install_switch(
      fast_mid, std::make_unique<RelaySwitch>(s, topo.link_between(fast_mid, s),
                                              topo.link_between(fast_mid, d), fast_mid));
  sim.install_switch(
      slow_mid, std::make_unique<RelaySwitch>(s, topo.link_between(slow_mid, s),
                                              topo.link_between(slow_mid, d), slow_mid));
  // D sends everything non-local (ACKs toward S) via the fast path.
  sim.install_switch(d, std::make_unique<RelaySwitch>(s, topo.link_between(d, fast_mid),
                                                      topo.link_between(d, fast_mid), d));

  TransportManager transport(sim);
  const HostId src = sim.add_host(s);
  const HostId dst = sim.add_host(d);
  sim.start();
  transport.start_flow(src, dst, 300'000, 0.0);
  sim.run_until(1.0);
  ASSERT_EQ(transport.completed_flows().size(), 1u);
  EXPECT_GT(transport.total_reordered_packets(), 10u);
}

TEST(Reordering, SinglePathHasNone) {
  const Topology topo = topology::line(3, topology::LinkParams{1e9, 1e-6});
  Simulator sim(topo, SimConfig{});
  dataplane::install_shortest_path_network(sim);
  TransportManager transport(sim);
  const HostId a = sim.add_host(0);
  const HostId b = sim.add_host(2);
  sim.start();
  transport.start_flow(a, b, 500'000, 0.0);
  sim.run_until(1.0);
  ASSERT_EQ(transport.completed_flows().size(), 1u);
  EXPECT_EQ(transport.total_reordered_packets(), 0u);
}

struct EcnWorld {
  explicit EcnWorld(bool dctcp)
      : topo(topology::line(2, topology::LinkParams{1e9, 10e-6})),
        sim(topo, make_config()),
        transport(sim, make_transport_config(dctcp)) {
    dataplane::install_shortest_path_network(sim);
    src = sim.add_host(0);
    dst = sim.add_host(1);
    if (dctcp) {
      // Mark at 20 MSS on every link (fabric + host).
      for (topology::LinkId l = 0; l < topo.num_links(); ++l) {
        sim.link(l).set_ecn_threshold_bytes(20 * 1500);
      }
      sim.host_uplink(src).set_ecn_threshold_bytes(20 * 1500);
      sim.host_uplink(dst).set_ecn_threshold_bytes(20 * 1500);
    }
    max_queue_sampler();
    sim.start();
  }
  static SimConfig make_config() {
    SimConfig c;
    c.host_link_bps = 10e9;  // fast NIC into a 1G fabric link: a bottleneck
    return c;
  }
  static TransportConfig make_transport_config(bool dctcp) {
    TransportConfig c;
    c.dctcp = dctcp;
    return c;
  }
  void max_queue_sampler() {
    sim.link(topo.link_between(0, 1))
        .set_queue_sampler([this](Time, uint64_t bytes) {
          max_queue_bytes = std::max(max_queue_bytes, bytes);
        });
  }

  topology::Topology topo;
  Simulator sim;
  TransportManager transport;
  HostId src, dst;
  uint64_t max_queue_bytes = 0;
};

TEST(Dctcp, KeepsQueuesShorterThanReno) {
  EcnWorld reno(/*dctcp=*/false);
  reno.transport.start_flow(reno.src, reno.dst, 5'000'000, 0.0);
  reno.sim.run_until(1.0);
  ASSERT_EQ(reno.transport.completed_flows().size(), 1u);

  EcnWorld dctcp(/*dctcp=*/true);
  dctcp.transport.start_flow(dctcp.src, dctcp.dst, 5'000'000, 0.0);
  dctcp.sim.run_until(1.0);
  ASSERT_EQ(dctcp.transport.completed_flows().size(), 1u);

  // DCTCP holds the bottleneck queue near the marking threshold; Reno fills
  // until loss.
  EXPECT_LT(dctcp.max_queue_bytes, reno.max_queue_bytes / 2);
  // And still finishes in comparable time (within 2x).
  EXPECT_LT(dctcp.transport.completed_flows()[0].fct(),
            reno.transport.completed_flows()[0].fct() * 2.0);
}

TEST(Dctcp, NoMarksBehavesLikeReno) {
  // DCTCP enabled but no link marks: alpha stays 0, no cwnd cuts.
  EcnWorld world(/*dctcp=*/false);
  TransportConfig config;
  config.dctcp = true;
  TransportManager dctcp_transport(world.sim, config);
  dctcp_transport.start_flow(world.src, world.dst, 200'000, 0.0);
  world.sim.run_until(1.0);
  EXPECT_EQ(dctcp_transport.completed_flows().size(), 1u);
}

}  // namespace
}  // namespace contra::sim
