// Churn engine tests (DESIGN.md §13): the scripted/generative fault engine,
// the gray-failure link state it drives, and the churn-exposed control-plane
// fixes this PR pins:
//
//   * ConvergenceTracker measures a window *per wave* — the old tracker's
//     last-flip − first-failure measure grew without bound across waves;
//   * Link survives a fail→restore flap inside one serialization window —
//     the stale transmit-done event used to re-time the next packet;
//   * restart_control_plane under triggered updates withdraws the pre-restart
//     advert ledger, so neighbours converge back to periodic-mode parity
//     instead of routing on ghosts until metric expiry;
//   * duplicate / overlapping FailureSchedule events are idempotent, and a
//     full mixed-class churn schedule is byte-identical across --workers at
//     a fixed shard count.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "obs/convergence.h"
#include "obs/trace.h"
#include "oracle/checker.h"
#include "oracle/oracle.h"
#include "oracle/quiesce.h"
#include "sim/churn_engine.h"
#include "sim/event_queue.h"
#include "sim/failure_schedule.h"
#include "sim/link.h"
#include "sim/parallel_simulator.h"
#include "sim/simulator.h"
#include "topology/generators.h"

namespace contra::sim {
namespace {

using obs::Ev;
using obs::TraceRecord;
using topology::Topology;

constexpr double kPeriod = 64e-6;

// ---- ConvergenceTracker per-wave windows (pinned bugfix) -------------------

TraceRecord rec(double t, Ev ev, uint32_t dst = obs::kNoField) {
  TraceRecord r;
  r.t = t;
  r.ev = ev;
  if (ev == Ev::kLinkDown || ev == Ev::kLinkUp) r.link = 0;
  r.dst = dst;
  return r;
}

// Two failure waves 9 s apart, each answered by a route flip 0.1 s later.
// The per-wave tracker reports a 0.1 s window for each wave and a 0.1 s
// worst-case per destination. Fails before the per-wave rewrite: the old
// tracker measured last flip − first failure = 9.1 s, growing without bound
// the longer the churn ran.
TEST(ConvergenceWaves, PerWaveWindowsDoNotAccumulate) {
  obs::ConvergenceTracker tracker;
  tracker.observe(rec(1.0, Ev::kLinkDown));
  tracker.observe(rec(1.1, Ev::kRouteFlip, /*dst=*/0));
  tracker.observe(rec(10.0, Ev::kLinkDown));
  tracker.observe(rec(10.1, Ev::kRouteFlip, /*dst=*/0));

  const obs::ConvergenceTracker::Report report = tracker.report();
  ASSERT_EQ(report.waves.size(), 2u);
  EXPECT_NEAR(report.waves[0].start, 1.0, 1e-12);
  EXPECT_NEAR(report.waves[0].reconvergence_s, 0.1, 1e-9);
  EXPECT_NEAR(report.waves[1].reconvergence_s, 0.1, 1e-9);
  ASSERT_EQ(report.destinations.size(), 1u);
  EXPECT_NEAR(report.destinations[0].reconvergence_s, 0.1, 1e-9);
}

// Once churn_wave anchors appear, raw link events stop opening waves (the
// engine emits its anchor before the primitive events it injects), same-time
// batches collapse into the single announced wave, and the per-class
// distribution buckets by the anchor's FaultClass.
TEST(ConvergenceWaves, ChurnAnchorsSuppressRawLinkWaves) {
  obs::ConvergenceTracker tracker;
  TraceRecord wave = rec(1.0, Ev::kChurnWave);
  wave.aux = static_cast<uint32_t>(obs::FaultClass::kSrg);
  tracker.observe(wave);
  tracker.observe(rec(1.0, Ev::kLinkDown));  // SRG member, same instant
  tracker.observe(rec(1.0, Ev::kLinkDown));  // second member: same wave
  tracker.observe(rec(1.2, Ev::kRouteFlip, /*dst=*/3));
  tracker.observe(rec(1.5, Ev::kLinkUp));  // restore must not open a wave
  tracker.observe(rec(1.6, Ev::kRouteFlip, /*dst=*/3));

  const obs::ConvergenceTracker::Report report = tracker.report();
  ASSERT_EQ(report.waves.size(), 1u);
  EXPECT_EQ(report.waves[0].fault_class, static_cast<uint32_t>(obs::FaultClass::kSrg));
  EXPECT_EQ(report.waves[0].flips, 2u);
  EXPECT_NEAR(report.waves[0].reconvergence_s, 0.6, 1e-9);
  ASSERT_EQ(report.by_class.size(), 1u);
  EXPECT_EQ(report.by_class[0].fault_class, static_cast<uint32_t>(obs::FaultClass::kSrg));
  EXPECT_EQ(report.by_class[0].waves, 1u);
  EXPECT_EQ(report.by_class[0].reacted, 1u);
  EXPECT_NEAR(report.by_class[0].max_s, 0.6, 1e-9);
}

// ---- gray-failure link state ----------------------------------------------

Packet make_packet(uint32_t bytes, PacketKind kind = PacketKind::kData) {
  Packet p;
  p.kind = kind;
  p.size_bytes = bytes;
  return p;
}

// Loss draws key on a per-link counter + salt, so the same salt reproduces
// the exact drop pattern — packet ids would be shard-namespaced under the
// parallel engine and break serial/parallel loss parity.
TEST(GrayLink, LossSequenceIsDeterministicInSalt) {
  auto run = [](uint64_t salt) {
    EventQueue q;
    Link link(q, 1e9, 0.0, 1 << 20, 1e-3);
    std::vector<int> delivered;
    int next = 0;
    link.set_deliver([&](Packet&&) { delivered.push_back(next); });
    GrayParams gray;
    gray.loss_prob = 0.5;
    gray.salt = salt;
    link.set_gray(gray);
    for (next = 0; next < 200; ++next) {
      link.enqueue(make_packet(100));
      q.run_until(q.now() + 1.0);  // drain: one packet in flight at a time
    }
    return delivered;
  };
  const std::vector<int> a = run(7);
  const std::vector<int> b = run(7);
  EXPECT_EQ(a, b);
  // Statistically sane for p=0.5 over 200 draws, and salt-sensitive.
  EXPECT_GT(a.size(), 50u);
  EXPECT_LT(a.size(), 150u);
  EXPECT_NE(a, run(8));
}

TEST(GrayLink, CapacityDerateAndExtraDelaySlowDelivery) {
  EventQueue q;
  // Healthy: 1500 B at 1 Gbps = 12 us serialization + 5 us propagation.
  Link link(q, 1e9, 5e-6, 1 << 20, 1e-3);
  std::vector<Time> arrivals;
  link.set_deliver([&](Packet&&) { arrivals.push_back(q.now()); });
  ASSERT_TRUE(link.enqueue(make_packet(1500)));
  q.run_until(1.0);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_NEAR(arrivals[0], 17e-6, 1e-9);

  // Gray: half capacity doubles serialization (24 us), +10 us propagation.
  GrayParams gray;
  gray.capacity_factor = 0.5;
  gray.extra_delay_s = 10e-6;
  link.set_gray(gray);
  EXPECT_TRUE(link.gray());
  const Time gray_send = q.now();
  ASSERT_TRUE(link.enqueue(make_packet(1500)));
  q.run_until(2.0);
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[1] - gray_send, 24e-6 + 15e-6, 1e-9);

  // clear_gray heals back to the healthy timing.
  link.clear_gray();
  EXPECT_FALSE(link.gray());
  const Time healed_send = q.now();
  ASSERT_TRUE(link.enqueue(make_packet(1500)));
  q.run_until(3.0);
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_NEAR(arrivals[2] - healed_send, 17e-6, 1e-9);
}

// Out-of-range parameters are clamped on installation: a negative extra
// delay or a zero capacity factor would break the parallel engine's
// conservative lookahead.
TEST(GrayLink, ClampsUnsafeParameters) {
  EventQueue q;
  Link link(q, 1e9, 1e-6, 1 << 20, 1e-3);
  GrayParams gray;
  gray.loss_prob = 1.7;
  gray.extra_delay_s = -4e-6;
  gray.capacity_factor = -2.0;
  link.set_gray(gray);
  EXPECT_DOUBLE_EQ(link.gray_params().loss_prob, 1.0);
  EXPECT_DOUBLE_EQ(link.gray_params().extra_delay_s, 0.0);
  EXPECT_GT(link.gray_params().capacity_factor, 0.0);
  EXPECT_LE(link.gray_params().capacity_factor, 1.0);
  EXPECT_GE(link.delay_s(), 1e-6);
  EXPECT_GT(link.capacity_bps(), 0.0);
}

// ---- link flap inside one serialization window (pinned bugfix) -------------

// 1500 B at 1 Gbps serializes in 12 us. Fail the link at 6 us (mid-flight),
// restore and re-enqueue at 7 us. The restored transmission must start
// immediately and deliver exactly once at 7 + 12 + 5 = 24 us. Fails before
// the tx_done_at_ stale-event guard: the aborted transmission's completion
// (scheduled for 12 us) fired into the restored link and re-timed the new
// head packet, delivering at 29 us.
TEST(LinkFlapRace, SubSerializationFlapRestartsCleanly) {
  EventQueue q;
  Link link(q, 1e9, 5e-6, 1 << 20, 1e-3);
  std::vector<Time> arrivals;
  link.set_deliver([&](Packet&&) { arrivals.push_back(q.now()); });
  ASSERT_TRUE(link.enqueue(make_packet(1500)));
  q.schedule_at(6e-6, [&] { link.set_down(true); });
  q.schedule_at(7e-6, [&] {
    link.set_down(false);
    ASSERT_TRUE(link.enqueue(make_packet(1500)));
  });
  q.run_until(1.0);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_NEAR(arrivals[0], 24e-6, 1e-9);
  EXPECT_EQ(link.stats().tx_packets, 1u);
  EXPECT_EQ(link.stats().drops, 1u);  // the aborted in-flight packet
}

// Same race, flap entirely inside the window with no re-enqueue: the stale
// completion must not deliver the dropped packet or leave the link busy.
TEST(LinkFlapRace, AbortedTransmissionStaysAborted) {
  EventQueue q;
  Link link(q, 1e9, 5e-6, 1 << 20, 1e-3);
  std::vector<Time> arrivals;
  link.set_deliver([&](Packet&&) { arrivals.push_back(q.now()); });
  ASSERT_TRUE(link.enqueue(make_packet(1500)));
  q.schedule_at(6e-6, [&] { link.set_down(true); });
  q.schedule_at(8e-6, [&] { link.set_down(false); });
  q.run_until(100e-6);
  EXPECT_TRUE(arrivals.empty());
  // The link is idle again: a fresh packet serializes on schedule.
  const Time start = q.now();
  ASSERT_TRUE(link.enqueue(make_packet(1500)));
  q.run_until(start + 1.0);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_NEAR(arrivals[0] - start, 17e-6, 1e-9);
}

// ---- ChurnEngine schedule construction -------------------------------------

Topology fabric() { return topology::fat_tree(4, topology::LinkParams{10e9, 1e-6}); }

TEST(ChurnEngine, BuildersCountWavesAndEndClean) {
  const Topology topo = fabric();
  const topology::LinkId l0 = topo.link_between(topo.find("e0_0"), topo.find("a0_0"));
  const topology::LinkId l1 = topo.link_between(topo.find("a0_1"), topo.find("c2"));
  GrayParams gray;
  gray.loss_prob = 0.1;
  gray.extra_delay_s = 20e-6;
  gray.capacity_factor = 0.8;

  ChurnEngine engine(topo);
  engine.flap(l0, 1e-3, 0.2e-3, 2)
      .srg_switch(topo.find("a0_0"), 3e-3, 4e-3)
      .gray(l1, 5e-3, 6e-3, gray)
      .drain(topo.find("e0_1"), 7e-3, 8e-3)
      .restart(topo.find("c0"), 9e-3);

  EXPECT_EQ(engine.num_waves(), 5u);
  EXPECT_GT(engine.num_events(), 5u);
  EXPECT_TRUE(engine.has_restarts());
  EXPECT_TRUE(engine.ends_clean());
  EXPECT_NEAR(engine.last_event_time(), 9e-3, 1e-12);
  // describe(): one line per wave.
  const std::string text = engine.describe();
  size_t lines = 0;
  for (char c : text) lines += (c == '\n');
  EXPECT_EQ(lines, 5u);
}

TEST(ChurnEngine, GenerativeSchedulesAreDeterministicAndClean) {
  const Topology topo = fabric();
  ChurnEngine a(topo), b(topo), c(topo);
  a.generate(/*seed=*/42, /*start=*/1e-3, /*horizon=*/20e-3, /*waves=*/6);
  b.generate(42, 1e-3, 20e-3, 6);
  c.generate(43, 1e-3, 20e-3, 6);

  EXPECT_EQ(a.num_waves(), 6u);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_EQ(a.num_events(), b.num_events());
  EXPECT_NE(a.describe(), c.describe());
  // Every generated wave clears before the horizon: the all-links-up oracle
  // may demand quiescence after last_event_time().
  EXPECT_TRUE(a.ends_clean());
  EXPECT_LT(a.last_event_time(), 20e-3);
  EXPECT_GE(a.last_event_time(), 1e-3);
}

TEST(ChurnEngine, JsonSpecParsesAndRejectsMalformedInput) {
  const Topology topo = fabric();
  std::string error;

  ChurnEngine ok(topo);
  EXPECT_TRUE(ok.load_json(R"({
    "events": [
      {"type": "flap", "link": "e0_0-a0_0", "start_ms": 1, "half_period_ms": 0.2, "cycles": 2},
      {"type": "gray", "link": "a0_1-c2", "at_ms": 3, "clear_ms": 4, "loss": 0.1},
      {"type": "restart", "node": "a1_0", "at_ms": 5}
    ],
    "generate": {"seed": 7, "waves": 2, "start_ms": 6, "horizon_ms": 12}
  })",
                           &error))
      << error;
  EXPECT_EQ(ok.num_waves(), 5u);  // 3 scripted + 2 generated
  EXPECT_TRUE(ok.has_restarts());

  const char* bad[] = {
      R"({"events": [{"type": "warp", "at_ms": 1}]})",          // unknown class
      R"({"events": [{"type": "restart", "at_ms": 1}]})",       // missing node
      R"({"events": [{"type": "flap", "link": "x-y",
                      "start_ms": 1, "half_period_ms": 1, "cycles": 1}]})",  // bad link
      R"({"events": []})",                                      // empty schedule
      R"({"events": [}]})",                                     // malformed JSON
  };
  for (const char* spec : bad) {
    ChurnEngine engine(topo);
    error.clear();
    EXPECT_FALSE(engine.load_json(spec, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

// ---- restart under triggered updates (pinned bugfix) -----------------------

struct TriggeredWorld {
  TriggeredWorld(Topology topology, bool triggered, uint32_t keepalive_rounds = 8)
      : topo(std::move(topology)),
        compiled(compiler::compile("minimize((path.len, path.util))", topo)),
        evaluator(compiled.graph, compiled.decomposition),
        sim(topo, SimConfig{}) {
    dataplane::ContraSwitchOptions options;
    options.probe_period_s = kPeriod;
    options.triggered_updates = triggered;
    options.keepalive_rounds = keepalive_rounds;
    options.holddown_periods = 2.0;
    switches = dataplane::install_contra_network(sim, compiled, evaluator, options);
  }

  uint64_t stat_sum(uint64_t dataplane::ContraSwitchStats::* field) const {
    uint64_t total = 0;
    for (const dataplane::ContraSwitch* sw : switches) total += sw->stats().*field;
    return total;
  }

  uint64_t usable_digest() const {
    const std::vector<const dataplane::ContraSwitch*> view(switches.begin(), switches.end());
    return oracle::usable_fwdt_digest(view, sim.now());
  }

  Topology topo;
  compiler::CompileResult compiled;
  pg::PolicyEvaluator evaluator;
  Simulator sim;
  std::vector<dataplane::ContraSwitch*> switches;
};

// A restarted control plane must actively withdraw its pre-restart advert
// ledger. Fails before the ledger fix: the restart only cleared tables and
// clocks, emitted nothing, and neighbours kept routing on the ghost adverts
// until metric expiry.
TEST(TriggeredRestart, RestartWithdrawsAdvertLedger) {
  TriggeredWorld trig(fabric(), /*triggered=*/true, /*keepalive_rounds=*/8);
  trig.sim.start();
  // Restart mid-keepalive-cycle (keepalives flood at multiples of K=8
  // periods): the RIB stays empty until the next flood, so the ledger sweep
  // is the only thing that can tell neighbours. A restart right at a flood
  // boundary would see its rows resurrected before the first control tick
  // and correctly have nothing to withdraw.
  trig.sim.run_until(80 * kPeriod + 3.5 * kPeriod);
  const uint64_t withdrawn_before =
      trig.stat_sum(&dataplane::ContraSwitchStats::probes_withdrawn);

  trig.sim.restart_switch(trig.topo.find("a0_0"));
  // The withdraw sweep rides the restarted switch's next control tick.
  trig.sim.run_until(80 * kPeriod + 8 * kPeriod);
  EXPECT_GT(trig.stat_sum(&dataplane::ContraSwitchStats::probes_withdrawn), withdrawn_before)
      << "restart did not withdraw the stale advert ledger";
}

// After the withdraw sweep and re-announce, the triggered engine lands back
// on the same usable-FwdT fixed point as the periodic engine over the same
// restart — digest parity is the §12 acceptance contract, and the restart
// must not break it.
TEST(TriggeredRestart, ReachesPeriodicParityAfterRestart) {
  TriggeredWorld periodic(fabric(), /*triggered=*/false);
  TriggeredWorld trig(fabric(), /*triggered=*/true, /*keepalive_rounds=*/8);
  periodic.sim.start();
  trig.sim.start();
  // Converge, then restart mid-keepalive-cycle — the adversarial phase where
  // the ledger sweep (not a coincident keepalive flood) must carry recovery.
  const double converge_s = 80 * kPeriod + 3.5 * kPeriod;
  periodic.sim.run_until(converge_s);
  trig.sim.run_until(converge_s);
  const uint64_t baseline = periodic.usable_digest();
  ASSERT_EQ(baseline, trig.usable_digest());

  const topology::NodeId victim = periodic.topo.find("a0_0");
  periodic.sim.restart_switch(victim);
  trig.sim.restart_switch(trig.topo.find("a0_0"));
  // Settle past the scaled expiry/escape windows (12 periods x K at K=8).
  const double end_s = converge_s + 160 * kPeriod;
  periodic.sim.run_until(end_s);
  trig.sim.run_until(end_s);

  EXPECT_EQ(periodic.usable_digest(), trig.usable_digest());
  EXPECT_EQ(trig.usable_digest(), baseline) << "restart left a different fixed point";
  ASSERT_NE(victim, topology::kInvalidNode);
}

// ---- mixed churn: workers invariance, duplicate idempotency, oracle --------

struct ChurnRun {
  uint64_t digest = 0;
  std::string trace;           ///< full merged telemetry, scheduler records included
  std::string protocol_trace;  ///< kEpoch (phase-scheduler) records filtered out
  uint32_t waves = 0;
};

// Fat-tree fabric under one wave of each scripted class plus duplicated and
// overlapping raw cable events. `shards` must be pinned: the workers
// contract is "same schedule, same shard count, any worker count".
ChurnRun run_parallel_churn(const Topology& topo, const compiler::CompileResult& compiled,
                            const pg::PolicyEvaluator& evaluator, const ChurnEngine& churn,
                            uint32_t shards, uint32_t workers, bool duplicate_events) {
  SimConfig config;
  config.shards = shards;
  config.workers = workers;
  ParallelSimulator psim(topo, config);
  psim.enable_tracing();
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = kPeriod;
  psim.for_each_shard([&](Simulator& shard_sim) {
    dataplane::install_contra_network(shard_sim, compiled, evaluator, options);
  });
  churn.arm(psim);
  const topology::LinkId dup = topo.link_between(topo.find("e1_0"), topo.find("a1_0"));
  psim.schedule_cable_event(2.0e-3, dup, true);
  if (duplicate_events) {
    // Duplicate fail at the same instant, a redundant fail while already
    // down, and a duplicate restore: all must be no-ops.
    psim.schedule_cable_event(2.0e-3, dup, true);
    psim.schedule_cable_event(2.2e-3, dup, true);
    psim.schedule_cable_event(2.6e-3, dup, false);
  }
  psim.schedule_cable_event(2.6e-3, dup, false);
  psim.start();
  psim.run_until(12e-3);

  ChurnRun out;
  char line[obs::kMaxLineBytes];
  obs::ConvergenceTracker tracker;
  for (const obs::TraceRecord& r : psim.merged_trace()) {
    tracker.observe(r);
    const size_t len = obs::format_jsonl(r, line);
    out.trace.append(line, len);
    out.trace += '\n';
    if (r.ev != obs::Ev::kEpoch) {
      out.protocol_trace.append(line, len);
      out.protocol_trace += '\n';
    }
  }
  out.waves = static_cast<uint32_t>(tracker.report().waves.size());
  std::vector<const dataplane::ContraSwitch*> view;
  for (topology::NodeId n = 0; n < topo.num_nodes(); ++n) {
    view.push_back(&dynamic_cast<const dataplane::ContraSwitch&>(
        psim.shard_sim(psim.shard_of_node(n)).device_at(n)));
  }
  out.digest = oracle::usable_fwdt_digest(view, psim.now());
  return out;
}

TEST(ChurnEngine, MixedChurnIsWorkerInvariantAndIdempotent) {
  const Topology topo = fabric();
  const compiler::CompileResult compiled =
      compiler::compile("minimize((path.len, path.util))", topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  GrayParams gray;
  gray.loss_prob = 0.2;
  gray.extra_delay_s = 30e-6;
  gray.capacity_factor = 0.6;
  ChurnEngine churn(topo);
  churn.flap(topo.link_between(topo.find("e0_0"), topo.find("a0_0")), 4e-3, 0.4e-3, 2)
      .srg_switch(topo.find("a0_1"), 5e-3, 6e-3)
      .gray(topo.link_between(topo.find("a2_0"), topo.find("c0")), 6.5e-3, 7.5e-3, gray)
      .restart(topo.find("a3_0"), 8e-3);
  ASSERT_TRUE(churn.ends_clean());

  const ChurnRun base =
      run_parallel_churn(topo, compiled, evaluator, churn, /*shards=*/4, /*workers=*/1,
                         /*duplicate_events=*/false);
  EXPECT_FALSE(base.trace.empty());
  // Every engine wave landed in the telemetry, plus two fallback-anchored
  // waves from the raw cable fault (fail and restore precede the first
  // churn_wave marker, so each opens a window of its own).
  EXPECT_EQ(base.waves, churn.num_waves() + 2);

  for (const uint32_t workers : {2u, 4u}) {
    const ChurnRun run =
        run_parallel_churn(topo, compiled, evaluator, churn, 4, workers, false);
    EXPECT_EQ(base.digest, run.digest) << "workers " << workers;
    EXPECT_EQ(base.trace, run.trace) << "workers " << workers;
  }
  // Duplicate/overlapping schedule events are idempotent: the protocol-level
  // telemetry (everything but the phase scheduler's epoch records, which
  // legitimately see the extra no-op events as barrier work) and the routing
  // fixed point are byte-identical to the clean schedule, on any workers.
  const ChurnRun dup_base =
      run_parallel_churn(topo, compiled, evaluator, churn, 4, /*workers=*/1,
                         /*duplicate_events=*/true);
  EXPECT_EQ(base.digest, dup_base.digest);
  EXPECT_EQ(base.protocol_trace, dup_base.protocol_trace);
  EXPECT_EQ(base.waves, dup_base.waves);
  for (const uint32_t workers : {2u, 4u}) {
    const ChurnRun run =
        run_parallel_churn(topo, compiled, evaluator, churn, 4, workers, true);
    EXPECT_EQ(dup_base.digest, run.digest) << "dup workers " << workers;
    EXPECT_EQ(dup_base.trace, run.trace) << "dup workers " << workers;
  }
}

// Serial-engine acceptance over the same mixed schedule: armed on a plain
// Simulator, the schedule ends clean, the fabric reconverges to the
// all-links-up oracle fixed point, and the per-class reconvergence
// distribution covers every injected class.
TEST(ChurnEngine, SerialMixedChurnQuiescesToOracleFixedPoint) {
  TriggeredWorld world(fabric(), /*triggered=*/false);
  GrayParams gray;
  gray.loss_prob = 0.15;
  gray.extra_delay_s = 20e-6;
  gray.capacity_factor = 0.7;
  ChurnEngine churn(world.topo);
  churn.flap(world.topo.link_between(world.topo.find("e0_0"), world.topo.find("a0_0")), 4e-3,
             0.4e-3, 2)
      .srg_switch(world.topo.find("a0_1"), 5e-3, 6e-3)
      .gray(world.topo.link_between(world.topo.find("a2_0"), world.topo.find("c0")), 6.5e-3,
            7.5e-3, gray)
      .drain(world.topo.find("e2_0"), 8e-3, 9e-3)
      .restart(world.topo.find("a3_0"), 9.5e-3);
  ASSERT_TRUE(churn.ends_clean());

  obs::ConvergenceTracker tracker;
  world.sim.telemetry().set_sink(&tracker);
  churn.arm(world.sim);
  world.sim.start();
  world.sim.run_until(churn.last_event_time() + 6e-3);

  oracle::RouteOracle oracle(world.compiled.graph, world.evaluator,
                             oracle::LinkState::all_up(world.topo));
  const std::vector<const dataplane::ContraSwitch*> view(world.switches.begin(),
                                                         world.switches.end());
  const oracle::CheckReport check = oracle::check_invariants(
      oracle, view, world.sim.now(), oracle::options_for(world.compiled.isotonicity));
  EXPECT_TRUE(check.ok()) << check.to_string(world.topo);

  const obs::ConvergenceTracker::Report report = tracker.report();
  EXPECT_EQ(report.waves.size(), churn.num_waves());
  EXPECT_EQ(report.by_class.size(), 5u) << "expected flap/srg/gray/drain/restart buckets";
  for (const auto& cls : report.by_class) {
    EXPECT_EQ(cls.waves, 1u);
  }
}

}  // namespace
}  // namespace contra::sim
