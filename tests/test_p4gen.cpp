// P4 generation tests: the emitted text carries the right table entries,
// tag widths, metric fields, and per-switch specialization.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "lang/policies.h"
#include "p4gen/p4gen.h"
#include "topology/generators.h"

namespace contra::p4gen {
namespace {

compiler::CompileResult compile_example() {
  static const topology::Topology topo = topology::running_example();
  return compiler::compile(
      "minimize(if A B D then 0 else if B .* D then path.util else inf)", topo);
}

TEST(P4Gen, HeadersDeclareTagWidthAndMetrics) {
  const auto result = compile_example();
  const std::string header = generate_common_headers(result);
  EXPECT_NE(header.find("typedef bit<" + std::to_string(result.tag_bits()) + "> tag_t;"),
            std::string::npos);
  EXPECT_NE(header.find("mv_util"), std::string::npos);
  EXPECT_NE(header.find("mv_len"), std::string::npos);
  EXPECT_EQ(header.find("mv_lat"), std::string::npos);  // policy never uses lat
}

TEST(P4Gen, PerSwitchProgramsDiffer) {
  const auto result = compile_example();
  const topology::Topology& topo = result.graph.topo();
  const std::string pa = generate_p4(result, result.switches[topo.find("A")]);
  const std::string pb = generate_p4(result, result.switches[topo.find("B")]);
  EXPECT_NE(pa, pb);
  EXPECT_NE(pa.find("switch A"), std::string::npos);
  EXPECT_NE(pb.find("switch B"), std::string::npos);
}

TEST(P4Gen, TagStepEntriesMatchConfig) {
  const auto result = compile_example();
  const auto& cfg = result.switches[result.graph.topo().find("B")];
  const std::string p4 = generate_p4(result, cfg);
  for (const auto& entry : cfg.tag_step) {
    const std::string line = std::to_string(entry.in_tag) + " : set_local_tag(" +
                             std::to_string(entry.local_tag) + ");";
    EXPECT_NE(p4.find(line), std::string::npos) << line;
  }
}

TEST(P4Gen, ProbeOriginCommentOnlyAtDestinations) {
  const auto result = compile_example();
  const topology::Topology& topo = result.graph.topo();
  const std::string pd = generate_p4(result, result.switches[topo.find("D")]);
  const std::string pa = generate_p4(result, result.switches[topo.find("A")]);
  EXPECT_NE(pd.find("Probe origin"), std::string::npos);
  EXPECT_EQ(pa.find("Probe origin"), std::string::npos);
}

TEST(P4Gen, MentionsEveryPipelineStage) {
  const auto result = compile_example();
  const std::string p4 = generate_p4(result, result.switches[0]);
  for (const char* fragment :
       {"contra_probe_t", "contra_data_t", "fwdt_mv", "bestt_key", "flowlet_nhop",
        "loop_maxttl", "tag_step", "probe_multicast", "V1Switch", "parser ContraParser",
        "control ContraDeparser", "control ContraIngress", "state parse_probe",
        "struct metadata"}) {
    EXPECT_NE(p4.find(fragment), std::string::npos) << fragment;
  }
}

TEST(P4Gen, GenerateAllCoversEverySwitch) {
  const auto result = compile_example();
  const std::string all = generate_all(result);
  for (const auto& cfg : result.switches) {
    EXPECT_NE(all.find("switch " + cfg.name + " "), std::string::npos) << cfg.name;
  }
}

TEST(P4Gen, SubpoliciesAreDocumented) {
  const topology::Topology topo = topology::running_example();
  const auto result = compiler::compile(lang::policies::congestion_aware(), topo);
  const std::string header = generate_common_headers(result);
  EXPECT_NE(header.find("pid 0"), std::string::npos);
  EXPECT_NE(header.find("pid 1"), std::string::npos);
}

}  // namespace
}  // namespace contra::p4gen
