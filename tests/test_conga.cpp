// CONGA baseline tests (leaf-spine congestion-aware load balancing) and a
// cross-plane sanity comparison: Contra's compiled (len, util) policy should
// match the behaviour of both hand-crafted systems (HULA, CONGA) on the
// topology they were designed for — the paper's central generality claim.
#include <gtest/gtest.h>

#include <memory>

#include "compiler/compiler.h"
#include "dataplane/conga_switch.h"
#include "dataplane/contra_switch.h"
#include "dataplane/hula_switch.h"
#include "metrics/fct.h"
#include "sim/host.h"
#include "sim/transport.h"
#include "topology/generators.h"
#include "workload/generator.h"

namespace contra::dataplane {
namespace {

using sim::HostId;
using topology::NodeId;
using topology::Topology;

sim::SimConfig gig_config() {
  sim::SimConfig c;
  c.host_link_bps = 1e9;
  return c;
}

Topology leafspine() {
  return topology::leaf_spine(4, 2, topology::LinkParams{1e9, 1e-6});
}

TEST(Conga, DeliversFlows) {
  const Topology topo = leafspine();
  sim::Simulator sim(topo, gig_config());
  install_conga_network(sim);
  sim::TransportManager transport(sim);
  const auto hosts = sim::attach_hosts_to_leaves(sim, 1);
  ASSERT_EQ(hosts.size(), 4u);
  sim.start();
  for (int i = 0; i < 4; ++i) {
    transport.start_flow(hosts[i], hosts[(i + 1) % 4], 50'000, 0.0);
  }
  sim.run_until(0.2);
  EXPECT_EQ(transport.completed_flows().size(), 4u);
}

TEST(Conga, SpreadsFlowletsAcrossSpines) {
  const Topology topo = leafspine();
  sim::Simulator sim(topo, gig_config());
  install_conga_network(sim);
  sim::TransportManager transport(sim);
  const HostId src = sim.add_host(topo.find("leaf0"));
  const HostId dst = sim.add_host(topo.find("leaf1"));
  sim.start();
  for (int i = 0; i < 40; ++i) transport.start_flow(src, dst, 20'000, i * 2e-4);
  sim.run_until(0.3);
  EXPECT_EQ(transport.completed_flows().size(), 40u);
  int used = 0;
  for (topology::LinkId l : topo.out_links(topo.find("leaf0"))) {
    if (sim.link(l).stats().tx_data_bytes > 0) ++used;
  }
  EXPECT_EQ(used, 2);  // both spines carried data
}

TEST(Conga, FeedbackUpdatesCongestionTables) {
  const Topology topo = leafspine();
  sim::Simulator sim(topo, gig_config());
  auto switches = install_conga_network(sim);
  sim::TransportManager transport(sim);
  const HostId a = sim.add_host(topo.find("leaf0"));
  const HostId b = sim.add_host(topo.find("leaf1"));
  sim.start();
  // Bidirectional traffic so feedback can piggyback.
  transport.start_udp_flow(a, b, 400e6, 0.0, 30e-3);
  transport.start_udp_flow(b, a, 400e6, 0.0, 30e-3);
  sim.run_until(40e-3);
  const CongaSwitch* leaf0 = switches[topo.find("leaf0")];
  EXPECT_GT(leaf0->stats().feedback_sent, 0u);
  EXPECT_GT(leaf0->stats().feedback_received, 0u);
  // At least one uplink's congestion-to-leaf1 estimate is non-zero.
  const double c0 = leaf0->congestion_to(topo.find("leaf1"), 0);
  const double c1 = leaf0->congestion_to(topo.find("leaf1"), 1);
  EXPECT_GT(c0 + c1, 0.0);
}

TEST(Conga, AvoidsCongestedSpine) {
  // Saturate spine0's downlink to leaf1 with cross traffic from leaf2; new
  // flowlets leaf0 -> leaf1 should prefer spine1.
  const Topology topo = leafspine();
  sim::Simulator sim(topo, gig_config());
  auto switches = install_conga_network(sim);
  sim::TransportManager transport(sim);
  const HostId h0 = sim.add_host(topo.find("leaf0"));
  const HostId h1 = sim.add_host(topo.find("leaf1"));
  const HostId h2 = sim.add_host(topo.find("leaf2"));
  sim.start();

  // Cross traffic leaf2 -> leaf1: its flowlet will pin one spine and load it.
  transport.start_udp_flow(h2, h1, 850e6, 0.0, 60e-3);
  // Keep a trickle leaf0<->leaf1 so feedback flows both ways.
  transport.start_udp_flow(h0, h1, 50e6, 0.0, 60e-3);
  transport.start_udp_flow(h1, h0, 50e6, 0.0, 60e-3);
  sim.run_until(40e-3);

  // Identify the spine the heavy flow pinned (downlink into leaf1).
  const NodeId leaf1 = topo.find("leaf1");
  NodeId hot_spine = topology::kInvalidNode;
  for (topology::LinkId l : topo.out_links(topo.find("leaf2"))) {
    if (sim.link(l).stats().tx_data_bytes > 2'000'000) hot_spine = topo.link(l).to;
  }
  ASSERT_NE(hot_spine, topology::kInvalidNode);

  // leaf0's congestion estimate toward leaf1 must be higher via the hot
  // spine than via the other one.
  const CongaSwitch* leaf0 = switches[topo.find("leaf0")];
  std::vector<topology::LinkId> uplinks = topo.out_links(topo.find("leaf0"));
  std::sort(uplinks.begin(), uplinks.end());
  double hot_metric = 0, cold_metric = 0;
  for (uint8_t u = 0; u < uplinks.size(); ++u) {
    const double m = leaf0->congestion_to(leaf1, u);
    if (topo.link(uplinks[u]).to == hot_spine) {
      hot_metric = m;
    } else {
      cold_metric = m;
    }
  }
  EXPECT_GT(hot_metric, cold_metric);
}

TEST(Conga, ThrowsOffLeafSpine) {
  const Topology topo = topology::ring(4);
  sim::Simulator sim(topo, gig_config());
  install_conga_network(sim);
  EXPECT_THROW(sim.start(), std::invalid_argument);
}

// --- the generality claim, on CONGA's home turf ----------------------------

metrics::FctSummary run_leafspine_fct(int plane, uint64_t seed) {
  const Topology topo = topology::leaf_spine(4, 2, topology::LinkParams{10e9, 1e-6});
  sim::SimConfig config;
  config.host_link_bps = 10e9;
  sim::Simulator sim(topo, config);
  const auto hosts = sim::attach_hosts_to_leaves(sim, 2);
  std::vector<HostId> senders, receivers;
  for (HostId h : hosts) (h % 2 ? receivers : senders).push_back(h);

  compiler::CompileResult compiled;
  std::unique_ptr<pg::PolicyEvaluator> evaluator;
  switch (plane) {
    case 0:
      install_conga_network(sim);
      break;
    case 1:
      install_hula_network(sim);
      break;
    default:
      compiled = compiler::compile("minimize((path.len, path.util))", topo);
      evaluator =
          std::make_unique<pg::PolicyEvaluator>(compiled.graph, compiled.decomposition);
      install_contra_network(sim, compiled, *evaluator);
      break;
  }

  sim::TransportManager transport(sim);
  workload::WorkloadConfig wl;
  wl.load = 0.6;
  wl.sender_capacity_bps = 5e9;
  wl.start = 3e-3;
  wl.duration = 25e-3;
  wl.seed = seed;
  wl.size_scale = 0.1;
  const auto flows = workload::generate_poisson(workload::web_search_flow_sizes(), senders,
                                                receivers, wl);
  workload::submit(transport, flows);
  sim.start();
  sim.run_until(wl.start + wl.duration + 0.2);
  return metrics::summarize_fct(transport.completed_flows(), flows.size());
}

TEST(Conga, ContraMatchesBothPointSolutionsOnLeafSpine) {
  const auto conga = run_leafspine_fct(0, 7);
  const auto hula = run_leafspine_fct(1, 7);
  const auto contra = run_leafspine_fct(2, 7);
  ASSERT_GT(conga.completed, 100u);
  ASSERT_EQ(conga.completed, hula.completed);
  ASSERT_EQ(conga.completed, contra.completed);
  // Contra, compiled from a 1-line policy, lands within 1.5x of both
  // hand-crafted systems (the paper's "competitive with point solutions").
  EXPECT_LT(contra.mean_s, conga.mean_s * 1.5);
  EXPECT_LT(contra.mean_s, hula.mean_s * 1.5);
}

}  // namespace
}  // namespace contra::dataplane
