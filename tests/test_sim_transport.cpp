// Transport tests: TCP-like reliability under loss, FCT accounting,
// congestion response, and UDP streaming — run over a line topology with a
// pass-through switch.
#include <gtest/gtest.h>

#include "dataplane/static_switch.h"
#include "sim/transport.h"
#include "topology/generators.h"

namespace contra::sim {
namespace {

struct World {
  explicit World(double link_bps = 1e9, uint64_t queue_bytes = 150'000)
      : topo(topology::line(2, topology::LinkParams{link_bps, 1e-6})),
        sim(topo, make_config(link_bps, queue_bytes)),
        transport(sim) {
    dataplane::install_shortest_path_network(sim);
    src = sim.add_host(0);
    dst = sim.add_host(1);
    sim.start();
  }
  static SimConfig make_config(double link_bps, uint64_t queue_bytes) {
    SimConfig c;
    c.host_link_bps = link_bps;
    c.queue_capacity_bytes = queue_bytes;
    return c;
  }
  topology::Topology topo;
  Simulator sim;
  TransportManager transport;
  HostId src = kInvalidHost;
  HostId dst = kInvalidHost;
};

TEST(Transport, SmallFlowCompletes) {
  World w;
  w.transport.start_flow(w.src, w.dst, 10'000, 0.0);
  w.sim.run_until(0.1);
  ASSERT_EQ(w.transport.completed_flows().size(), 1u);
  const FlowRecord& flow = w.transport.completed_flows()[0];
  EXPECT_TRUE(flow.completed);
  EXPECT_GT(flow.fct(), 0.0);
  EXPECT_LT(flow.fct(), 0.01);
}

TEST(Transport, LargeFlowApproachesLineRate) {
  World w(1e9);
  const uint64_t bytes = 5'000'000;
  w.transport.start_flow(w.src, w.dst, bytes, 0.0);
  w.sim.run_until(1.0);
  ASSERT_EQ(w.transport.completed_flows().size(), 1u);
  const double fct = w.transport.completed_flows()[0].fct();
  const double ideal = bytes * 8.0 / 1e9;
  EXPECT_LT(fct, ideal * 2.5);  // within 2.5x of line rate incl. slow start
  EXPECT_GT(fct, ideal * 0.9);  // cannot beat the wire
}

TEST(Transport, ManyFlowsAllComplete) {
  World w;
  for (int i = 0; i < 20; ++i) {
    w.transport.start_flow(w.src, w.dst, 20'000 + 1000 * i, i * 1e-4);
  }
  w.sim.run_until(0.5);
  EXPECT_EQ(w.transport.completed_flows().size(), 20u);
}

TEST(Transport, BidirectionalFlows) {
  World w;
  w.transport.start_flow(w.src, w.dst, 50'000, 0.0);
  w.transport.start_flow(w.dst, w.src, 50'000, 0.0);
  w.sim.run_until(0.5);
  EXPECT_EQ(w.transport.completed_flows().size(), 2u);
}

TEST(Transport, RecoversFromLossViaTinyQueue) {
  // A queue of ~3 packets forces drops during slow start; retransmission
  // must still complete the flow.
  World w(1e9, 4'500);
  w.transport.start_flow(w.src, w.dst, 500'000, 0.0);
  w.sim.run_until(2.0);
  ASSERT_EQ(w.transport.completed_flows().size(), 1u);
  EXPECT_GT(w.sim.aggregate_fabric_stats().drops +
                w.sim.host_uplink(w.src).stats().drops,
            0u);
}

TEST(Transport, SharedBottleneckIsFair) {
  World w(1e9);
  const uint64_t bytes = 1'000'000;
  w.transport.start_flow(w.src, w.dst, bytes, 0.0);
  w.transport.start_flow(w.src, w.dst, bytes, 0.0);
  w.sim.run_until(2.0);
  ASSERT_EQ(w.transport.completed_flows().size(), 2u);
  const double f1 = w.transport.completed_flows()[0].fct();
  const double f2 = w.transport.completed_flows()[1].fct();
  EXPECT_LT(std::max(f1, f2) / std::min(f1, f2), 3.0);
}

TEST(Transport, AllFlowsIncludesIncomplete) {
  World w;
  w.transport.start_flow(w.src, w.dst, 10'000, 0.0);
  w.transport.start_flow(w.src, w.dst, 10'000, 10.0);  // far future
  w.sim.run_until(0.1);
  EXPECT_EQ(w.transport.completed_flows().size(), 1u);
  EXPECT_EQ(w.transport.all_flows().size(), 2u);
}

TEST(Transport, FlowRecordsCarryEndpoints) {
  World w;
  const uint64_t id = w.transport.start_flow(w.src, w.dst, 5'000, 0.0);
  w.sim.run_until(0.1);
  const FlowRecord& flow = w.transport.completed_flows().at(0);
  EXPECT_EQ(flow.flow_id, id);
  EXPECT_EQ(flow.src, w.src);
  EXPECT_EQ(flow.dst, w.dst);
  EXPECT_EQ(flow.bytes, 5'000u);
}

TEST(Transport, UdpDeliversAtConfiguredRate) {
  World w(1e9);
  w.transport.start_udp_flow(w.src, w.dst, 100e6, 0.0, 10e-3);
  uint64_t hook_bytes = 0;
  w.transport.set_udp_receive_hook([&](Time, uint32_t b) { hook_bytes += b; });
  w.sim.run_until(20e-3);
  const double expected = 100e6 * 10e-3 / 8.0;
  EXPECT_NEAR(static_cast<double>(w.transport.udp_bytes_received()), expected,
              expected * 0.05);
  EXPECT_EQ(hook_bytes, w.transport.udp_bytes_received());
}

TEST(Transport, UdpStopsAtStopTime) {
  World w;
  w.transport.start_udp_flow(w.src, w.dst, 50e6, 0.0, 1e-3);
  w.sim.run_until(5e-3);
  const uint64_t first = w.transport.udp_bytes_received();
  w.sim.run_until(10e-3);
  EXPECT_EQ(w.transport.udp_bytes_received(), first);
}

TEST(Transport, ZeroByteFlowStillCompletes) {
  World w;
  w.transport.start_flow(w.src, w.dst, 0, 0.0);
  w.sim.run_until(0.1);
  EXPECT_EQ(w.transport.completed_flows().size(), 1u);
}

}  // namespace
}  // namespace contra::sim
