// Unit tests for the util module: fixed point, hashing, rng, strings.
#include <gtest/gtest.h>

#include "util/fixed_point.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/strings.h"

namespace contra::util {
namespace {

TEST(FixedPoint, RoundTripsIntegers) {
  for (int64_t v : {-100, -1, 0, 1, 7, 65535, 1 << 20}) {
    EXPECT_EQ(Fixed::from_int(v).to_int(), v) << v;
  }
}

TEST(FixedPoint, RoundTripsFractions) {
  EXPECT_NEAR(Fixed::from_double(0.5).to_double(), 0.5, 1e-4);
  EXPECT_NEAR(Fixed::from_double(0.8).to_double(), 0.8, 1e-4);
  EXPECT_NEAR(Fixed::from_double(-3.25).to_double(), -3.25, 1e-4);
  EXPECT_NEAR(Fixed::from_double(123.456).to_double(), 123.456, 1e-4);
}

TEST(FixedPoint, ComparesTotally) {
  EXPECT_LT(Fixed::from_double(0.1), Fixed::from_double(0.2));
  EXPECT_GT(Fixed::from_double(1.0), Fixed::from_double(0.999));
  EXPECT_EQ(Fixed::from_double(0.5), Fixed::from_double(0.5));
  EXPECT_LT(Fixed::from_int(-1), Fixed::from_int(0));
}

TEST(FixedPoint, SaturatingAddClampsAtMax) {
  const Fixed big = Fixed::max();
  EXPECT_EQ(big.saturating_add(big), Fixed::max());
  EXPECT_EQ(big.saturating_add(Fixed::from_int(1)), Fixed::max());
}

TEST(FixedPoint, SaturatingSubClampsAtMin) {
  const Fixed lo = Fixed::from_raw(-Fixed::max().raw());
  EXPECT_EQ(lo.saturating_sub(Fixed::max()), lo);
}

TEST(FixedPoint, AdditionIsExactForRepresentable) {
  const Fixed a = Fixed::from_double(0.25);
  const Fixed b = Fixed::from_double(0.125);
  EXPECT_DOUBLE_EQ(a.saturating_add(b).to_double(), 0.375);
}

TEST(FixedPoint, MulMatchesDoubleWithinTolerance) {
  const Fixed a = Fixed::from_double(1.5);
  const Fixed b = Fixed::from_double(0.4);
  EXPECT_NEAR(a.mul(b).to_double(), 0.6, 1e-3);
}

TEST(FixedPoint, NanBecomesZero) {
  EXPECT_EQ(Fixed::from_double(std::nan("")).raw(), 0);
}

TEST(Crc32, MatchesKnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE 802.3).
  EXPECT_EQ(crc32(std::string_view("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32(std::string_view("")), 0u); }

TEST(Crc32, SeedChangesResult) {
  EXPECT_NE(crc32(std::string_view("abc"), 0), crc32(std::string_view("abc"), 1));
}

TEST(FiveTupleHash, Deterministic) {
  const FiveTuple t{0x0a000001, 0x0a000002, 1234, 80, 6};
  EXPECT_EQ(hash_five_tuple(t), hash_five_tuple(t));
}

TEST(FiveTupleHash, SensitiveToEveryField) {
  const FiveTuple base{0x0a000001, 0x0a000002, 1234, 80, 6};
  FiveTuple t = base;
  t.src_ip ^= 1;
  EXPECT_NE(hash_five_tuple(base), hash_five_tuple(t));
  t = base;
  t.dst_ip ^= 1;
  EXPECT_NE(hash_five_tuple(base), hash_five_tuple(t));
  t = base;
  t.src_port ^= 1;
  EXPECT_NE(hash_five_tuple(base), hash_five_tuple(t));
  t = base;
  t.dst_port ^= 1;
  EXPECT_NE(hash_five_tuple(base), hash_five_tuple(t));
  t = base;
  t.protocol ^= 1;
  EXPECT_NE(hash_five_tuple(base), hash_five_tuple(t));
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(2);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / n, 0.01, 0.001);
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  const auto parts = split_whitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

}  // namespace
}  // namespace contra::util
