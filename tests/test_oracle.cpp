// Differential tests for the routing oracle (src/oracle/): the converged
// distributed protocol must agree with the centralized generalized
// Bellman–Ford fixed point on every policy of the paper's Fig. 2 catalog,
// on both engines, plus the corner cases the fuzzer's grammar can reach
// (unreachable destinations, infinite-rank policies, non-isotonic
// decompositions, degenerate topologies).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "lang/parser.h"
#include "lang/policies.h"
#include "oracle/checker.h"
#include "oracle/oracle.h"
#include "oracle/quiesce.h"
#include "sim/parallel_simulator.h"
#include "sim/simulator.h"
#include "topology/abilene.h"
#include "topology/generators.h"

namespace contra::oracle {
namespace {

using topology::NodeId;
using topology::Topology;

dataplane::ContraSwitchOptions idle_exact_options(const compiler::CompileResult& compiled) {
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = std::max(256e-6, compiled.min_probe_period_s);
  // Idle-exact mode: probe-only utilization quantizes to exactly 0, matching
  // the oracle's idle LinkState (see the checker's tolerance model).
  options.util_quantum = 1.0;
  return options;
}

QuiesceOptions quiesce_options(const dataplane::ContraSwitchOptions& options) {
  QuiesceOptions q;
  q.probe_period_s = options.probe_period_s;
  q.max_time_s = 400.0 * options.probe_period_s;
  return q;
}

/// Runs `policy` over `topo` to quiescence (serial when workers == 0, the
/// sharded engine otherwise) and checks every oracle invariant.
CheckReport run_and_check(Topology topo, const lang::Policy& policy, int workers = 0) {
  const compiler::CompileResult compiled = compiler::compile(policy, topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  const dataplane::ContraSwitchOptions options = idle_exact_options(compiled);
  const QuiesceOptions qopts = quiesce_options(options);

  QuiesceResult q;
  std::vector<const dataplane::ContraSwitch*> view;
  sim::SimConfig cfg;
  if (workers == 0) {
    sim::Simulator sim(topo, cfg);
    auto switches = dataplane::install_contra_network(sim, compiled, evaluator, options);
    sim.start();
    q = run_to_quiescence(sim, switches, qopts);
    view.assign(switches.begin(), switches.end());
    EXPECT_TRUE(q.quiesced);
    RouteOracle oracle(compiled.graph, evaluator);
    EXPECT_TRUE(oracle.converged());
    return check_invariants(oracle, view, q.at, options_for(compiled.isotonicity));
  }
  cfg.workers = workers;
  sim::ParallelSimulator psim(topo, cfg);
  std::vector<dataplane::ContraSwitch*> switches;
  psim.for_each_shard([&](sim::Simulator& shard_sim) {
    auto owned = dataplane::install_contra_network(shard_sim, compiled, evaluator, options);
    switches.insert(switches.end(), owned.begin(), owned.end());
  });
  psim.start();
  q = run_to_quiescence(psim, switches, qopts);
  view.assign(switches.begin(), switches.end());
  EXPECT_TRUE(q.quiesced);
  RouteOracle oracle(compiled.graph, evaluator);
  EXPECT_TRUE(oracle.converged());
  return check_invariants(oracle, view, q.at, options_for(compiled.isotonicity));
}

#define EXPECT_AGREES(topo, policy, workers)                                   \
  do {                                                                         \
    const CheckReport report_ = run_and_check((topo), (policy), (workers));    \
    EXPECT_TRUE(report_.ok()) << report_.to_string(topo);                      \
    EXPECT_GT(report_.entries_checked, 0u);                                    \
  } while (0)

// ---- Fig. 2 policy catalog, serial ------------------------------------------

TEST(OracleCatalog, TopologyAgnosticPoliciesOnFatTree) {
  const Topology topo = topology::fat_tree(4);
  for (const lang::Policy& p :
       {lang::policies::shortest_path(), lang::policies::min_util(),
        lang::policies::widest_shortest(), lang::policies::shortest_widest(),
        lang::policies::congestion_aware()}) {
    EXPECT_AGREES(topo, p, 0);
  }
}

TEST(OracleCatalog, TopologyAgnosticPoliciesOnAbilene) {
  const Topology topo = topology::abilene();
  for (const lang::Policy& p :
       {lang::policies::shortest_path(), lang::policies::min_util(),
        lang::policies::widest_shortest(), lang::policies::shortest_widest(),
        lang::policies::congestion_aware()}) {
    EXPECT_AGREES(topo, p, 0);
  }
}

TEST(OracleCatalog, NamedPoliciesOnAbilene) {
  const Topology topo = topology::abilene();
  for (const lang::Policy& p :
       {lang::policies::waypoint_single("Denver"),
        lang::policies::waypoint("Denver", "KansasCity"),
        lang::policies::link_preference("Denver", "KansasCity"),
        lang::policies::weighted_link("Denver", "KansasCity", 3),
        lang::policies::source_local("Seattle"),
        lang::policies::failover("Seattle Denver KansasCity",
                                 "Seattle Sunnyvale Denver KansasCity")}) {
    const CheckReport report = run_and_check(topo, p, 0);
    EXPECT_TRUE(report.ok()) << report.to_string(topo);
  }
}

// ---- parallel engine agrees too ---------------------------------------------

TEST(OracleParallel, FatTreeMinUtilWorkers2And4) {
  for (int workers : {2, 4}) {
    EXPECT_AGREES(topology::fat_tree(4), lang::policies::min_util(), workers);
    EXPECT_AGREES(topology::fat_tree(4), lang::policies::shortest_path(), workers);
  }
}

TEST(OracleParallel, AbileneWidestShortestWorkers2And4) {
  for (int workers : {2, 4}) {
    EXPECT_AGREES(topology::abilene(), lang::policies::widest_shortest(), workers);
  }
}

// ---- corner cases -----------------------------------------------------------

TEST(OracleCorners, SingleNodeTopologyHasNoRoutes) {
  Topology topo;
  topo.add_node("solo");
  const compiler::CompileResult compiled =
      compiler::compile(lang::policies::shortest_path(), topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  const RouteOracle oracle(compiled.graph, evaluator);
  EXPECT_TRUE(oracle.converged());
  EXPECT_FALSE(oracle.best(0, 0).has_value());
  // And the checker agrees with an equally empty simulation.
  const CheckReport report = run_and_check(std::move(topo), lang::policies::shortest_path());
  EXPECT_TRUE(report.ok()) << report.violations.size();
}

TEST(OracleCorners, ZeroEdgeIslandsAreMutuallyUnreachable) {
  Topology topo;
  topo.add_node("iso0");
  topo.add_node("iso1");
  const compiler::CompileResult compiled =
      compiler::compile(lang::policies::min_util(), topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  const RouteOracle oracle(compiled.graph, evaluator);
  EXPECT_FALSE(oracle.best(0, 1).has_value());
  EXPECT_FALSE(oracle.best(1, 0).has_value());
  const CheckReport report = run_and_check(std::move(topo), lang::policies::min_util());
  EXPECT_TRUE(report.ok());
}

TEST(OracleCorners, FailedOnlyLinkMakesDestinationUnreachable) {
  const Topology topo = topology::line(2);
  const compiler::CompileResult compiled =
      compiler::compile(lang::policies::shortest_path(), topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  LinkState links = LinkState::all_up(topo);
  links.fail_cable(topo, topo.link_between(0, 1));
  const RouteOracle oracle(compiled.graph, evaluator, links);
  EXPECT_TRUE(oracle.converged());
  EXPECT_FALSE(oracle.best(0, 1).has_value());
  EXPECT_FALSE(oracle.best(1, 0).has_value());

  // All-up control: both directions route.
  const RouteOracle up(compiled.graph, evaluator);
  EXPECT_TRUE(up.best(0, 1).has_value());
  EXPECT_TRUE(up.best(1, 0).has_value());
}

TEST(OracleCorners, InfiniteFallbackPolicyAdmitsOnlyCompliantSources) {
  // Only the exact path A-B-D is admitted; C (and D itself toward others)
  // has no policy-compliant route — oracle and converged sim must agree.
  const Topology topo = topology::running_example();
  const lang::Policy policy =
      lang::parse_policy("minimize(if A B D then path.len else inf)");
  const compiler::CompileResult compiled = compiler::compile(policy, topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  const RouteOracle oracle(compiled.graph, evaluator);

  const NodeId a = topo.find("A");
  const NodeId c = topo.find("C");
  const NodeId d = topo.find("D");
  EXPECT_TRUE(oracle.best(a, d).has_value());
  EXPECT_FALSE(oracle.best(c, d).has_value());

  const CheckReport report = run_and_check(topo, policy);
  EXPECT_TRUE(report.ok()) << report.to_string(topo);
}

TEST(OracleCorners, NonIsotonicDynamicTestCheckedPerPid) {
  // congestion_aware embeds a dynamic metric test: kDecomposed isotonicity,
  // so options_for disables the BestT s-comparison but per-pid entry
  // optimality must still hold on the converged sim.
  const Topology topo = topology::running_example();
  const compiler::CompileResult compiled =
      compiler::compile(lang::policies::congestion_aware(), topo);
  const CheckerOptions opts = options_for(compiled.isotonicity);
  EXPECT_TRUE(opts.check_optimality);
  const CheckReport report = run_and_check(topo, lang::policies::congestion_aware());
  EXPECT_TRUE(report.ok()) << report.to_string(topo);
}

// ---- tag-minimization soundness (invariant c) -------------------------------

TEST(OracleTagMerge, WaypointOnAbileneIsSound) {
  const Topology topo = topology::abilene();
  const compiler::CompileResult compiled =
      compiler::compile(lang::policies::waypoint_single("Denver"), topo);
  const CheckReport report = check_tag_minimization(compiled, LinkState::all_up(topo));
  EXPECT_TRUE(report.ok()) << report.to_string(topo);
  EXPECT_GT(report.entries_checked, 0u);
}

TEST(OracleTagMerge, RunningExamplePaperPolicyIsSound) {
  const Topology topo = topology::running_example();
  const compiler::CompileResult compiled = compiler::compile(
      lang::parse_policy(
          "minimize(if A B D then 0 else if B .* D then path.util else inf)"),
      topo);
  const CheckReport report = check_tag_minimization(compiled, LinkState::all_up(topo));
  EXPECT_TRUE(report.ok()) << report.to_string(topo);
}

TEST(OracleTagMerge, SoundUnderFailureToo) {
  const Topology topo = topology::abilene();
  const compiler::CompileResult compiled =
      compiler::compile(lang::policies::widest_shortest(), topo);
  LinkState links = LinkState::all_up(topo);
  links.fail_cable(topo, topo.link_between(topo.find("Denver"), topo.find("KansasCity")));
  const CheckReport report = check_tag_minimization(compiled, links);
  EXPECT_TRUE(report.ok()) << report.to_string(topo);
}

// ---- rank comparison helper -------------------------------------------------

TEST(OracleRanks, RanksCloseRespectsToleranceAndInfinity) {
  const lang::Rank a = lang::Rank::scalar(1.0);
  const lang::Rank b = lang::Rank::scalar(1.0005);
  EXPECT_TRUE(ranks_close(a, b, 1e-3));
  EXPECT_FALSE(ranks_close(a, b, 1e-5));
  EXPECT_TRUE(ranks_close(lang::Rank::infinity(), lang::Rank::infinity(), 1e-3));
  EXPECT_FALSE(ranks_close(a, lang::Rank::infinity(), 1e9));
}

TEST(OracleQuiesce, DigestIsStableAtFixedPoint) {
  const Topology topo = topology::running_example();
  const compiler::CompileResult compiled =
      compiler::compile(lang::policies::min_util(), topo);
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  const dataplane::ContraSwitchOptions options = idle_exact_options(compiled);
  sim::Simulator sim(topo, sim::SimConfig{});
  auto switches = dataplane::install_contra_network(sim, compiled, evaluator, options);
  sim.start();
  const QuiesceResult q = run_to_quiescence(sim, switches, quiesce_options(options));
  ASSERT_TRUE(q.quiesced);
  // Another probe period later the digest is unchanged.
  sim.run_until(sim.now() + options.probe_period_s);
  EXPECT_EQ(fwdt_digest(switches, sim.now()), q.digest);
}

}  // namespace
}  // namespace contra::oracle
