// WAN traffic engineering on Abilene (§6.4 scenario): a congestion-aware
// policy (the paper's P9/"CA") that prefers least-utilized paths while the
// network is lightly loaded but falls back to shortest paths under heavy
// load to conserve global bandwidth.
//
// Demonstrates: non-isotonic policy decomposition into two probe ids, WAN
// propagation delays, and per-destination path choice reacting to load.
//
// Build & run:  ./build/examples/wan_traffic_engineering
#include <cstdio>
#include <memory>

#include "analysis/isotonicity.h"
#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "lang/policies.h"
#include "lang/printer.h"
#include "metrics/fct.h"
#include "sim/host.h"
#include "sim/transport.h"
#include "topology/abilene.h"
#include "workload/generator.h"

using namespace contra;

int main() {
  // Shrink WAN delays 100x so the example converges in a short run while
  // keeping relative link-delay structure.
  const topology::Topology topo = topology::abilene(/*capacity_bps=*/1e9,
                                                    /*delay_scale=*/0.01);

  const lang::Policy policy = lang::policies::congestion_aware();
  std::printf("Policy (P9 / CA): %s\n", lang::to_string(policy).c_str());

  const compiler::CompileResult compiled = compiler::compile(policy, topo);
  std::printf("Analysis: %s\n", compiled.isotonicity.to_string().c_str());
  for (size_t pid = 0; pid < compiled.decomposition.subpolicies.size(); ++pid) {
    std::printf("  pid %zu minimizes %s\n", pid,
                compiled.decomposition.subpolicies[pid].description.c_str());
  }
  std::printf("Probe period lower bound (0.5 x max RTT): %.1f us\n\n",
              compiled.min_probe_period_s * 1e6);

  sim::SimConfig sim_config;
  sim_config.host_link_bps = 1e9;
  sim::Simulator sim(topo, sim_config);

  // Four sender/receiver pairs across the continent (paper §6.4 setup).
  const std::vector<sim::HostId> hosts = sim::attach_hosts(
      sim, {topo.find("Seattle"), topo.find("NewYork"), topo.find("Sunnyvale"),
            topo.find("WashingtonDC"), topo.find("LosAngeles"), topo.find("Chicago"),
            topo.find("Denver"), topo.find("Atlanta")});

  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = std::max(256e-6, compiled.min_probe_period_s);
  auto switches = dataplane::install_contra_network(sim, compiled, evaluator, options);

  sim::TransportManager transport(sim);
  std::vector<sim::HostId> senders{hosts[0], hosts[2], hosts[4], hosts[6]};
  std::vector<sim::HostId> receivers{hosts[1], hosts[3], hosts[5], hosts[7]};

  workload::WorkloadConfig wl;
  wl.load = 0.4;
  wl.sender_capacity_bps = 1e9;
  wl.start = 5e-3;
  wl.duration = 0.05;
  wl.seed = 7;
  const auto flows =
      workload::generate_poisson(workload::web_search_flow_sizes(), senders, receivers, wl);
  workload::submit(transport, flows);

  sim.start();
  sim.run_until(wl.start + wl.duration + 0.2);

  const auto fct = metrics::summarize_fct(transport.completed_flows(), flows.size());
  std::printf("FCT over Abilene: %s\n", fct.to_string().c_str());

  // Show the converged choice at Seattle toward New York.
  const auto best = switches[topo.find("Seattle")]->best_choice(topo.find("NewYork"),
                                                                sim.now());
  if (best) {
    std::printf("Seattle -> NewYork best next hop: %s (pid %u, rank %s)\n",
                topo.name(topo.link(best->nhop).to).c_str(), best->pid,
                best->rank.to_string().c_str());
  }
  return 0;
}
