// Waypoint routing / service chaining (policies P5-P6): all traffic must
// traverse a firewall switch, while still load-balancing on utilization
// among the policy-compliant paths. Shows that packets never bypass the
// waypoint even as path preferences shift with load, and that destinations
// unreachable through the waypoint get no route at all (rank ∞).
//
// Build & run:  ./build/examples/waypoint_service_chain
#include <cstdio>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "sim/transport.h"
#include "topology/parser.h"

using namespace contra;

int main() {
  // A small ISP-ish topology with a firewall (FW) on some paths only.
  //          S1 ---- R1 ---- R2 ---- D1
  //            \      |       |    /
  //             \     FW ---- R3 -
  const topology::Topology topo = topology::parse_topology(R"(
    link S1 R1 1 1
    link S1 FW 1 1
    link R1 R2 1 1
    link R1 FW 1 1
    link FW R3 1 1
    link R2 R3 1 1
    link R2 D1 1 1
    link R3 D1 1 1
  )");

  const lang::Policy policy =
      lang::parse_policy("minimize(if .* FW .* then path.util else inf)");
  std::printf("Policy (P5 waypoint): %s\n", lang::to_string(policy).c_str());

  const compiler::CompileResult compiled = compiler::compile(policy, topo);
  std::printf("Compiled: %s\n", compiled.summary().c_str());

  sim::SimConfig config;
  config.host_link_bps = 1e9;
  sim::Simulator sim(topo, config);
  const sim::HostId sender = sim.add_host(topo.find("S1"));
  const sim::HostId receiver = sim.add_host(topo.find("D1"));

  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  auto switches = dataplane::install_contra_network(sim, compiled, evaluator);
  sim::TransportManager transport(sim);

  sim.start();
  sim.run_until(5e-3);  // converge

  const topology::NodeId s1 = topo.find("S1");
  const topology::NodeId d1 = topo.find("D1");
  const auto best = switches[s1]->best_choice(d1, sim.now());
  if (!best) {
    std::printf("no policy-compliant route (unexpected here)\n");
    return 1;
  }
  std::printf("S1 -> D1 first hop: %s (must lead through FW)\n",
              topo.name(topo.link(best->nhop).to).c_str());

  transport.start_flow(sender, receiver, 200'000, sim.now());
  sim.run_until(sim.now() + 50e-3);

  // The firewall must have carried every data packet S1 sent.
  const auto& fw_stats = switches[topo.find("FW")]->stats();
  const auto& s1_stats = switches[s1]->stats();
  std::printf("packets forwarded by S1: %llu, by FW: %llu\n",
              static_cast<unsigned long long>(s1_stats.data_forwarded),
              static_cast<unsigned long long>(fw_stats.data_forwarded));
  std::printf("flows completed: %zu\n", transport.completed_flows().size());
  std::printf("waypoint invariant %s\n",
              fw_stats.data_forwarded >= s1_stats.data_forwarded ? "HELD" : "VIOLATED");
  return 0;
}
