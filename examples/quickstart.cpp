// Quickstart: compile a Contra policy for the paper's running example
// (Fig. 6) and watch the synthesized protocol converge in simulation.
//
//   Topology (Fig. 6a):   A --- B --- D     Policy (Fig. 6b):
//                          \   /  \         if A B D then 0
//                           \ /    \        else if B .* D then path.util
//                            C ---- D'      else inf
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "p4gen/p4gen.h"
#include "sim/transport.h"
#include "topology/generators.h"

using namespace contra;

int main() {
  // 1. The network and the policy.
  const topology::Topology topo = topology::running_example();
  // The Fig. 6 policy, with a finite default branch so reverse traffic
  // (ACKs) is also routable: A pins A-B-D, B load-balances on utilization,
  // everything else takes shortest paths.
  const lang::Policy policy = lang::parse_policy(
      "minimize(if A B D then 0 else if B .* D then path.util else path.len)");
  std::printf("Policy: %s\n", lang::to_string(policy).c_str());

  // 2. Compile: analyses + product graph + per-switch programs.
  const compiler::CompileResult compiled = compiler::compile(policy, topo);
  std::printf("Compiled: %s\n\n", compiled.summary().c_str());
  std::printf("Product graph:\n%s\n", compiled.graph.to_string().c_str());

  // 3. The generated P4 for switch B (the interesting one: two virtual nodes).
  const topology::NodeId b = topo.find("B");
  std::printf("---- generated P4 for switch B (excerpt) ----\n");
  const std::string p4 = p4gen::generate_p4(compiled, compiled.switches[b]);
  std::fwrite(p4.data(), 1, std::min<size_t>(p4.size(), 2200), stdout);
  std::printf("\n... (%zu bytes total)\n\n", p4.size());

  // 4. Run the synthesized protocol: probes populate FwdT at hardware speed.
  sim::Simulator sim(topo, sim::SimConfig{});
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  auto switches = dataplane::install_contra_network(sim, compiled, evaluator);
  sim::TransportManager transport(sim);

  const sim::HostId host_a = sim.add_host(topo.find("A"));
  const sim::HostId host_d = sim.add_host(topo.find("D"));

  sim.start();
  sim.run_until(5e-3);  // a few probe rounds

  const topology::NodeId a = topo.find("A");
  const topology::NodeId d = topo.find("D");

  // The converged tables at B — the paper's Fig. 6e.
  std::printf("%s\n", switches[b]->render_tables(sim.now()).c_str());

  const auto best_a = switches[a]->best_choice(d, sim.now());
  if (best_a) {
    std::printf("A's best path to D: tag=%u pid=%u rank=%s via link %s->%s\n",
                best_a->tag, best_a->pid, best_a->rank.to_string().c_str(),
                topo.name(topo.link(best_a->nhop).from).c_str(),
                topo.name(topo.link(best_a->nhop).to).c_str());
  } else {
    std::printf("A has no route to D (unexpected)\n");
  }

  // 5. Send a flow A -> D over the converged paths.
  transport.start_flow(host_a, host_d, 1'000'000, sim.now());
  sim.run_until(sim.now() + 50e-3);
  for (const sim::FlowRecord& flow : transport.completed_flows()) {
    std::printf("flow of %llu bytes completed in %.3f ms\n",
                static_cast<unsigned long long>(flow.bytes), flow.fct() * 1e3);
  }
  std::printf("done.\n");
  return 0;
}
