// Propane-style failover preferences (§2): prefer the primary path A-B-D,
// fall back to A-C-D only when the primary is unavailable. Demonstrates
// Contra's static-preference encoding (ranks 0 / 1 / ∞), probe-silence
// failure detection, and sub-millisecond rerouting (the Fig. 14 behaviour on
// a toy network).
//
// Build & run:  ./build/examples/failover_preferences
#include <cstdio>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "lang/policies.h"
#include "lang/printer.h"
#include "sim/transport.h"
#include "topology/parser.h"

using namespace contra;

int main() {
  const topology::Topology topo = topology::parse_topology(R"(
    link A B 1 1
    link B D 1 1
    link A C 1 1
    link C D 1 1
  )");

  const lang::Policy policy = lang::policies::failover("A B D", "A C D");
  std::printf("Policy: %s\n", lang::to_string(policy).c_str());

  const compiler::CompileResult compiled = compiler::compile(policy, topo);
  std::printf("Compiled: %s\n", compiled.summary().c_str());

  sim::Simulator sim(topo, sim::SimConfig{});
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);
  dataplane::ContraSwitchOptions options;
  options.probe_period_s = 100e-6;
  auto switches = dataplane::install_contra_network(sim, compiled, evaluator, options);

  const topology::NodeId a = topo.find("A");
  const topology::NodeId d = topo.find("D");

  sim.start();
  sim.run_until(2e-3);

  auto report = [&](const char* when) {
    const auto best = switches[a]->best_choice(d, sim.now());
    if (best) {
      std::printf("%-22s A routes to D via %s (rank %s)\n", when,
                  topo.name(topo.link(best->nhop).to).c_str(),
                  best->rank.to_string().c_str());
    } else {
      std::printf("%-22s A has NO route to D\n", when);
    }
  };

  report("steady state:");

  // Fail the primary B-D link; failure detection runs on probe silence.
  const topology::LinkId bd = topo.link_between(topo.find("B"), topo.find("D"));
  sim.fail_cable(bd);
  const sim::Time fail_time = sim.now();
  sim.run_until(fail_time + 2e-3);
  report("after B-D failure:");

  // Measure how quickly A switched to the backup.
  sim::Time switched_at = -1.0;
  sim.restore_cable(bd);
  sim.run_until(sim.now() + 5e-3);
  report("after B-D restored:");
  (void)switched_at;

  std::printf("\nfailure detection threshold: %.0f us (%g probe periods)\n",
              options.failure_detect_periods * options.probe_period_s * 1e6,
              options.failure_detect_periods);
  return 0;
}
