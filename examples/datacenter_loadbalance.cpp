// Data-center load balancing: the paper's headline scenario (§6.3).
// Compile the minimum-utilization policy ("MU" / HULA-equivalent) for a
// k=4 fat-tree, run a web-search workload at moderate load, and compare
// Contra's flow completion times against ECMP on the same workload.
//
// Build & run:  ./build/examples/datacenter_loadbalance
#include <cstdio>
#include <memory>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "dataplane/ecmp_switch.h"
#include "lang/policies.h"
#include "metrics/fct.h"
#include "sim/host.h"
#include "sim/transport.h"
#include "topology/generators.h"
#include "workload/distributions.h"
#include "workload/generator.h"

using namespace contra;

namespace {

struct RunResult {
  metrics::FctSummary fct;
  uint64_t fabric_drops = 0;
};

// Scaled-down links keep the example fast; load and topology shape are
// preserved.
constexpr double kLinkRate = 1e9;
constexpr double kLoad = 0.5;
constexpr double kDuration = 0.04;

RunResult run(bool use_contra) {
  topology::LinkParams params{.capacity_bps = kLinkRate, .delay_s = 1e-6};
  const topology::Topology topo = topology::fat_tree(4, params);

  sim::SimConfig sim_config;
  sim_config.host_link_bps = kLinkRate;
  sim::Simulator sim(topo, sim_config);

  // 2 hosts per edge switch: half senders, half receivers.
  const std::vector<sim::HostId> hosts = sim::attach_hosts_to_fat_tree_edges(sim, 2);
  std::vector<sim::HostId> senders, receivers;
  for (sim::HostId h : hosts) (h % 2 == 0 ? senders : receivers).push_back(h);

  const lang::Policy policy = lang::policies::min_util();
  compiler::CompileResult compiled;
  std::unique_ptr<pg::PolicyEvaluator> evaluator;
  if (use_contra) {
    compiled = compiler::compile(policy, topo);
    evaluator = std::make_unique<pg::PolicyEvaluator>(compiled.graph, compiled.decomposition);
    dataplane::install_contra_network(sim, compiled, *evaluator);
  } else {
    dataplane::install_ecmp_network(sim);
  }

  sim::TransportManager transport(sim);
  workload::WorkloadConfig wl;
  wl.load = kLoad;
  wl.sender_capacity_bps = kLinkRate;
  wl.start = 2e-3;  // let probes converge first
  wl.duration = kDuration;
  wl.seed = 42;
  const auto flows = workload::generate_poisson(workload::web_search_flow_sizes(), senders,
                                                receivers, wl);
  workload::submit(transport, flows);

  sim.start();
  sim.run_until(wl.start + kDuration + 0.1);

  RunResult result;
  result.fct = metrics::summarize_fct(transport.completed_flows(), flows.size());
  result.fabric_drops = sim.aggregate_fabric_stats().drops;
  return result;
}

}  // namespace

int main() {
  std::printf("k=4 fat-tree, web-search workload at %.0f%% load, %.0f ms\n", kLoad * 100,
              kDuration * 1e3);

  const RunResult ecmp = run(/*use_contra=*/false);
  std::printf("ECMP   : %s drops=%llu\n", ecmp.fct.to_string().c_str(),
              static_cast<unsigned long long>(ecmp.fabric_drops));

  const RunResult contra = run(/*use_contra=*/true);
  std::printf("Contra : %s drops=%llu\n", contra.fct.to_string().c_str(),
              static_cast<unsigned long long>(contra.fabric_drops));

  if (contra.fct.mean_s < ecmp.fct.mean_s) {
    std::printf("Contra improves mean FCT by %.1f%% over ECMP\n",
                100.0 * (1.0 - contra.fct.mean_s / ecmp.fct.mean_s));
  } else {
    std::printf("Contra within %.1f%% of ECMP at this load\n",
                100.0 * (contra.fct.mean_s / ecmp.fct.mean_s - 1.0));
  }
  return 0;
}
