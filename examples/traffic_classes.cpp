// Traffic classes (the paper's §2 future-work extension, implemented):
// latency-sensitive traffic (UDP) routes by path latency, bulk TCP spreads
// by utilization — two independent Contra protocol instances dispatched by
// header predicates, B4-style.
//
// Build & run:  ./build/examples/traffic_classes
#include <cstdio>

#include "compiler/classified.h"
#include "dataplane/classified_switch.h"
#include "sim/transport.h"
#include "topology/abilene.h"

using namespace contra;

int main() {
  // Abilene with real (scaled) propagation delays: the latency-optimal and
  // utilization-optimal paths genuinely differ.
  const topology::Topology topo = topology::abilene(1e9, 0.02);

  const char* classified_text = R"(
    class proto == udp : minimize(path.lat)
    class *            : minimize(path.util)
  )";
  const compiler::ClassifiedCompileResult compiled =
      compiler::compile_classified(classified_text, topo);
  std::printf("%s\n\n", compiled.summary().c_str());

  sim::SimConfig config;
  config.host_link_bps = 1e9;
  sim::Simulator sim(topo, config);
  dataplane::ClassifiedNetwork network = dataplane::install_classified_network(sim, compiled);

  sim::TransportManager transport(sim);
  const sim::HostId seattle = sim.add_host(topo.find("Seattle"));
  const sim::HostId dc = sim.add_host(topo.find("WashingtonDC"));

  sim.start();
  sim.run_until(10e-3);  // both protocol instances converge

  const topology::NodeId src_switch = topo.find("Seattle");
  const topology::NodeId dst_switch = topo.find("WashingtonDC");
  for (size_t cls = 0; cls < compiled.classes.size(); ++cls) {
    const auto best =
        network.switches[src_switch]->class_switch(cls).best_choice(dst_switch, sim.now());
    if (best) {
      std::printf("%s: Seattle -> WashingtonDC via %-12s rank=%s\n",
                  compiled.classified.rules[cls].name.c_str(),
                  topo.name(topo.link(best->nhop).to).c_str(),
                  best->rank.to_string().c_str());
    }
  }

  // Send both kinds of traffic; both must be delivered by their own class.
  transport.start_flow(seattle, dc, 500'000, sim.now());               // TCP -> class1
  transport.start_udp_flow(seattle, dc, 50e6, sim.now(), sim.now() + 20e-3);  // -> class0
  sim.run_until(sim.now() + 120e-3);

  std::printf("\nTCP flows completed : %zu\n", transport.completed_flows().size());
  std::printf("UDP bytes delivered : %llu\n",
              static_cast<unsigned long long>(transport.udp_bytes_received()));
  uint64_t unclassified = 0;
  for (const auto* sw : network.switches) unclassified += sw->stats().unclassified_drops;
  std::printf("unclassified drops  : %llu (classifier is total)\n",
              static_cast<unsigned long long>(unclassified));
  return 0;
}
