// contrasim — run a performance-aware-routing experiment from the command
// line: pick a topology, a dataplane (contra / ecmp / hula / spain / sp), a
// workload, and get FCT + overhead numbers.
//
//   contrasim --builtin fat-tree:4 --plane contra \
//             --policy "minimize((path.len, path.util))" \
//             --workload web-search --load 0.6 --duration-ms 30 --seed 1
//
// Hosts attach to fat-tree edge switches / leaf-spine leaves automatically;
// on arbitrary topologies one host attaches to every switch.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "cli_common.h"
#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "dataplane/ecmp_switch.h"
#include "dataplane/hula_switch.h"
#include "dataplane/spain_switch.h"
#include "dataplane/static_switch.h"
#include "lang/parser.h"
#include "metrics/counters.h"
#include "metrics/fct.h"
#include "obs/convergence.h"
#include "obs/flow_tracker.h"
#include "obs/link_timeline.h"
#include "obs/manifest.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "oracle/audit.h"
#include "sim/churn_engine.h"
#include "sim/fluid.h"
#include "sim/host.h"
#include "sim/parallel_simulator.h"
#include "sim/transport.h"
#include "util/logging.h"
#include "util/strings.h"
#include "workload/generator.h"

using namespace contra;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--topo-file <file> | --builtin <spec>]\n"
               "          (--topo-file reads edge lists and Topology Zoo GraphML --\n"
               "           format is sniffed; GraphML geo-coordinates set link delays)\n"
               "          --plane contra|ecmp|hula|spain|sp\n"
               "          [--policy \"minimize(...)\"]   (contra only; default MU)\n"
               "          [--workload web-search|cache] [--load 0.5]\n"
               "          [--duration-ms 30] [--seed 1] [--size-scale 0.1]\n"
               "          [--link-gbps 10] [--probe-period-us 256]\n"
               "          [--triggered]                 (event-driven control plane: probes only\n"
               "                                         on change + keepalive backstop; see\n"
               "                                         DESIGN.md s12)\n"
               "          [--keepalive-rounds <k>]      (triggered keepalive cadence; default 32\n"
               "                                         periods between full refresh floods)\n"
               "          [--holddown-periods <p>]      (triggered per-(switch,dst) hold-down\n"
               "                                         window in probe periods; default 4)\n"
               "          [--util-quantum <q>]          (advertised-utilization bucket size;\n"
               "                                         default 1/64 -- coarser buckets damp\n"
               "                                         util-drift trigger waves at scale)\n"
               "          [--hybrid]                    (hybrid flow-level engine, DESIGN.md s14:\n"
               "                                         bulk flows advance as fluid max-min\n"
               "                                         rates; probes/flowlets/sampled flows\n"
               "                                         stay packet-level)\n"
               "          [--hybrid-sample-n <n>]       (1-in-n flows stay packet-level under\n"
               "                                         --hybrid; default 64, 0 = none)\n"
               "          [--fluid-quantum-us <t>]      (rate-recomputation quantum; default 64)\n"
               "          [--stream]                    (lazy streaming workload generation --\n"
               "                                         O(senders) memory, own deterministic\n"
               "                                         arrival sequence; for 1M-flow runs)\n"
               "          [--workers <n>]               (sharded parallel engine; see\n"
               "                                         DESIGN.md s8 -- deterministic for any n)\n"
               "          [--shards <n>]                (override shard count; default 0 auto-\n"
               "                                         sizes to topology+cores -- pass an\n"
               "                                         explicit n to reproduce a schedule\n"
               "                                         across machines)\n"
               "          [--fail <nodeA>-<nodeB>]      (fail a cable pre-traffic)\n"
               "          [--fail-at-ms <t>]            (delay --fail until t)\n"
               "          [--churn-spec <spec.json>]    (scripted/generative fault waves:\n"
               "                                         flaps, SRGs, gray failures, drift,\n"
               "                                         drains, restarts -- DESIGN.md s13;\n"
               "                                         deterministic for any --workers)\n"
               "          [--telemetry-out <trace.jsonl>]  (control-plane trace +\n"
               "                                            run manifest + convergence table)\n"
               "          [--metrics-json <file|->]     (final metrics snapshot)\n"
               "          [--metrics-interval-ms <t>]   (periodic snapshots, needs --metrics-json;\n"
               "                                         parallel engine emits at phase boundaries)\n"
               "          [--flows-out <flows.jsonl>]   (per-flow lifecycle records + FCT\n"
               "                                         summary in <file>.summary.json)\n"
               "          [--paths-out <paths.jsonl>]   (sampled INT-style per-hop path records)\n"
               "          [--path-sample-n <n>]         (sample 1-in-n data packets; default 8\n"
               "                                         when --paths-out/--audit-optimality set)\n"
               "          [--links-out <links.jsonl>]   (periodic per-link util/queue timelines)\n"
               "          [--link-sample-us <t>]        (timeline sample period; default 256)\n"
               "          [--audit-optimality]          (score sampled paths against the routing\n"
               "                                         oracle; implies path+link sampling)\n"
               "          [--audit-bucket-ms <t>]       (oracle rebuild period; default 5)\n"
               "          [--engine-profile <out.json>] (Chrome trace-event spans; load in\n"
               "                                         Perfetto / chrome://tracing)\n"
               "environment: CONTRA_LOG_LEVEL=trace|debug|info|warn|error|off\n",
               argv0);
  return 2;
}

/// Appends one metrics snapshot line per interval; reschedules itself. The
/// capture is a single pointer so the handler stays within the event queue's
/// inline capacity.
struct MetricsExporter {
  sim::Simulator* sim = nullptr;
  std::ostream* out = nullptr;
  double interval_s = 0.0;

  void tick() {
    *out << sim->telemetry().metrics().snapshot_json(sim->now()) << "\n";
    MetricsExporter* self = this;
    sim->events().schedule_in(interval_s, [self] { self->tick(); });
  }
};

/// Samples util EWMA + queue depth for a fixed set of links into a
/// LinkTimeline every interval; reschedules itself (single-pointer capture,
/// same discipline as MetricsExporter). Under the parallel engine one
/// sampler runs per shard over the links that shard owns, so shard
/// timelines stay disjoint and merge by union.
struct LinkSampler {
  sim::Simulator* sim = nullptr;
  obs::LinkTimeline* timeline = nullptr;
  std::vector<topology::LinkId> links;
  double interval_s = 0.0;

  void tick() {
    const double t = sim->now();
    for (topology::LinkId l : links) {
      const sim::Link& link = sim->link(l);
      timeline->add(l, t, link.utilization(), link.queue_bytes());
    }
    LinkSampler* self = this;
    sim->events().schedule_in(interval_s, [self] { self->tick(); });
  }
  void arm() {
    LinkSampler* self = this;
    sim->events().schedule_in(interval_s, [self] { self->tick(); });
  }
};

/// The dataplane-telemetry flag set shared by the serial and parallel paths.
struct TelemetryOpts {
  std::string flows_path;
  std::string paths_path;
  std::string links_path;
  std::string profile_path;
  bool audit = false;
  uint32_t path_sample_every = 0;
  double link_sample_s = 0.0;
  double audit_bucket_s = 0.0;

  bool flow_tracking() const { return !flows_path.empty() || !paths_path.empty() || audit; }
  bool link_sampling() const { return !links_path.empty() || audit; }

  static TelemetryOpts from_args(const tools::Args& args) {
    TelemetryOpts opts;
    opts.flows_path = args.get("flows-out");
    opts.paths_path = args.get("paths-out");
    opts.links_path = args.get("links-out");
    opts.profile_path = args.get("engine-profile");
    opts.audit = args.has("audit-optimality");
    opts.path_sample_every = static_cast<uint32_t>(args.get_int("path-sample-n", 0));
    if (opts.path_sample_every == 0 && (!opts.paths_path.empty() || opts.audit)) {
      opts.path_sample_every = 8;
    }
    opts.link_sample_s = args.get_double("link-sample-us", 256.0) * 1e-6;
    opts.audit_bucket_s = args.get_double("audit-bucket-ms", 5.0) * 1e-3;
    return opts;
  }

  /// Ring capacity covering the whole run so the audit sees the traffic
  /// window (the ring only drops samples on runs longer than planned).
  uint32_t timeline_capacity(double horizon_s) const {
    return static_cast<uint32_t>(horizon_s / link_sample_s) + 32;
  }
};

bool write_flow_outputs(const TelemetryOpts& opts, const obs::FlowTracker& tracker) {
  if (!opts.flows_path.empty()) {
    std::ofstream out(opts.flows_path);
    if (!out) {
      std::fprintf(stderr, "cannot open --flows-out file: %s\n", opts.flows_path.c_str());
      return false;
    }
    tracker.write_flows_jsonl(out);
    const std::string summary_path = opts.flows_path + ".summary.json";
    std::ofstream summary(summary_path);
    if (!summary) {
      std::fprintf(stderr, "cannot open flow summary file: %s\n", summary_path.c_str());
      return false;
    }
    summary << tracker.summary_json() << "\n";
    std::printf("flows   : %zu records -> %s (summary: %s)\n", tracker.num_flows(),
                opts.flows_path.c_str(), summary_path.c_str());
  }
  if (!opts.paths_path.empty()) {
    std::ofstream out(opts.paths_path);
    if (!out) {
      std::fprintf(stderr, "cannot open --paths-out file: %s\n", opts.paths_path.c_str());
      return false;
    }
    tracker.write_paths_jsonl(out);
    std::printf("paths   : %zu samples -> %s\n", tracker.num_path_samples(),
                opts.paths_path.c_str());
  }
  return true;
}

bool write_link_output(const TelemetryOpts& opts, const obs::LinkTimeline& timeline) {
  if (opts.links_path.empty()) return true;
  std::ofstream out(opts.links_path);
  if (!out) {
    std::fprintf(stderr, "cannot open --links-out file: %s\n", opts.links_path.c_str());
    return false;
  }
  timeline.write_jsonl(out);
  std::printf("links   : timelines -> %s\n", opts.links_path.c_str());
  return true;
}

bool write_profile_output(const std::string& path, const obs::EngineProfiler& profiler) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open --engine-profile file: %s\n", path.c_str());
    return false;
  }
  profiler.write_chrome_trace(out);
  std::printf("profile : %zu spans -> %s\n", profiler.num_spans(), path.c_str());
  return true;
}

/// Scores the sampled dataplane paths against per-time-bucket routing
/// oracles fed the timeline's utilization view (quantized exactly like probe
/// adverts) plus the failure schedule. Prints the gated fraction.
void run_optimality_audit(const topology::Topology& topo, const compiler::CompileResult& compiled,
                          const pg::PolicyEvaluator& evaluator, const obs::FlowTracker& tracker,
                          const obs::LinkTimeline& timeline, double bucket_s,
                          topology::LinkId fail_link, double fail_at_s) {
  std::vector<oracle::AuditSample> samples;
  samples.reserve(tracker.num_path_samples());
  for (const obs::PathSample& ps : tracker.sorted_path_samples()) {
    if (ps.truncated() || ps.nhops == 0) continue;
    oracle::AuditSample sample;
    sample.dst_switch = ps.dst_switch;
    sample.bytes = ps.bytes;
    sample.t = ps.t;
    sample.hop_links.reserve(ps.nhops);
    for (uint8_t i = 0; i < ps.nhops; ++i) sample.hop_links.push_back(ps.hops[i].link);
    samples.push_back(std::move(sample));
  }
  const double quantum = dataplane::ContraSwitchOptions{}.util_quantum;
  const auto state_at = [&](double t) {
    oracle::LinkState state = oracle::LinkState::all_up(topo);
    state.util.assign(topo.num_links(), 0.0);
    for (topology::LinkId l = 0; l < topo.num_links(); ++l) {
      state.util[l] = std::round(timeline.util_at(l, t) / quantum) * quantum;
    }
    if (fail_link != topology::kInvalidLink && (fail_at_s <= 0.0 || t >= fail_at_s)) {
      state.fail_cable(topo, fail_link);
    }
    return state;
  };
  const oracle::AuditResult result =
      oracle::audit_paths(compiled.graph, evaluator, samples, state_at, bucket_s);
  std::printf("audit   : %s\n", result.to_string().c_str());
}

/// TransportConfig from the hybrid-engine flags (shared by both engines).
sim::TransportConfig transport_config_from_args(const tools::Args& args) {
  sim::TransportConfig config;
  config.hybrid = args.has("hybrid");
  config.hybrid_sample_every = static_cast<uint32_t>(args.get_int("hybrid-sample-n", 64));
  config.fluid_quantum_s = args.get_double("fluid-quantum-us", 64.0) * 1e-6;
  return config;
}

void print_fluid_stats(const sim::FluidEngine* fluid) {
  if (fluid == nullptr) return;
  const sim::FluidStats& fs = fluid->stats();
  std::printf("fluid   : %llu flows (%llu completed), %llu ticks, %llu recomputes, "
              "%llu reroutes, %llu stalls, peak %llu active, digest %016llx\n",
              static_cast<unsigned long long>(fs.flows_started),
              static_cast<unsigned long long>(fs.flows_completed),
              static_cast<unsigned long long>(fs.ticks),
              static_cast<unsigned long long>(fs.recomputes),
              static_cast<unsigned long long>(fs.reroutes),
              static_cast<unsigned long long>(fs.stalls),
              static_cast<unsigned long long>(fs.peak_active),
              static_cast<unsigned long long>(fluid->completion_digest()));
}

std::vector<sim::HostId> attach_hosts_auto(sim::Simulator& sim) {
  std::vector<sim::HostId> hosts = sim::attach_hosts_to_fat_tree_edges(sim, 2);
  if (!hosts.empty()) return hosts;
  hosts = sim::attach_hosts_to_leaves(sim, 2);
  if (!hosts.empty()) return hosts;
  for (topology::NodeId n = 0; n < sim.topo().num_nodes(); ++n) hosts.push_back(sim.add_host(n));
  return hosts;
}

std::vector<sim::HostId> attach_hosts_auto(sim::ParallelSimulator& psim) {
  std::vector<sim::HostId> hosts = sim::attach_hosts_to_fat_tree_edges(psim, 2);
  if (!hosts.empty()) return hosts;
  hosts = sim::attach_hosts_to_leaves(psim, 2);
  if (!hosts.empty()) return hosts;
  for (topology::NodeId n = 0; n < psim.topo().num_nodes(); ++n) hosts.push_back(psim.add_host(n));
  return hosts;
}

/// The --workers/--shards path: same experiment on the sharded parallel
/// engine (DESIGN.md §8). Deterministic for any worker count; periodic
/// metrics snapshots emit at phase boundaries once every shard has
/// committed past the tick (workers-invariant — see OBSERVABILITY.md).
/// Loads --churn-spec when present. Returns 0 with *out reset when the flag
/// is absent, 0 with a parsed engine on success, 1 (after printing) on error.
int load_churn_spec(const tools::Args& args, const topology::Topology& topo,
                    std::unique_ptr<sim::ChurnEngine>* out) {
  out->reset();
  if (!args.has("churn-spec")) return 0;
  const std::string path = args.get("churn-spec");
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open --churn-spec file: %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto engine = std::make_unique<sim::ChurnEngine>(topo);
  std::string error;
  if (!engine->load_json(buf.str(), &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("churn: %u waves, %zu events, last at %.3f ms%s\n%s", engine->num_waves(),
              engine->num_events(), engine->last_event_time() * 1e3,
              engine->ends_clean() ? "" : " (schedule does not end clean)",
              engine->describe().c_str());
  *out = std::move(engine);
  return 0;
}

int run_parallel(const tools::Args& args, const topology::Topology& topo, const char* argv0) {
  const double link_bps = args.get_double("link-gbps", 10.0) * 1e9;
  const double load = args.get_double("load", 0.5);
  const double duration_s = args.get_double("duration-ms", 30.0) * 1e-3;
  const double probe_period_s = args.get_double("probe-period-us", 256.0) * 1e-6;
  const uint64_t seed = static_cast<uint64_t>(args.get_int("seed", 1));
  const double size_scale = args.get_double("size-scale", 0.1);
  const std::string plane = args.get("plane", "contra");
  const TelemetryOpts tel = TelemetryOpts::from_args(args);

  sim::SimConfig config;
  config.host_link_bps = link_bps;
  config.util_tau_s = 2 * probe_period_s;
  config.workers = static_cast<uint32_t>(args.get_int("workers", 1));
  config.shards = static_cast<uint32_t>(args.get_int("shards", 0));
  sim::ParallelSimulator psim(topo, config);
  const std::vector<sim::HostId> hosts = attach_hosts_auto(psim);
  if (hosts.size() < 2) {
    std::fprintf(stderr, "topology too small to host traffic\n");
    return 1;
  }

  topology::LinkId fail_link = topology::kInvalidLink;
  double fail_at_s = 0.0;
  if (args.has("fail")) {
    const auto parts = util::split(args.get("fail"), '-');
    if (parts.size() != 2 || topo.find(parts[0]) == topology::kInvalidNode ||
        topo.find(parts[1]) == topology::kInvalidNode ||
        topo.link_between(topo.find(parts[0]), topo.find(parts[1])) == topology::kInvalidLink) {
      std::fprintf(stderr, "bad --fail spec '%s' (want <nodeA>-<nodeB>)\n",
                   args.get("fail").c_str());
      return 1;
    }
    fail_link = topo.link_between(topo.find(parts[0]), topo.find(parts[1]));
    fail_at_s = args.get_double("fail-at-ms", 0.0) * 1e-3;
    if (fail_at_s > 0) {
      psim.schedule_cable_event(fail_at_s, fail_link, /*down=*/true);
    } else {
      psim.fail_cable(fail_link);
    }
  }

  std::unique_ptr<sim::ChurnEngine> churn;
  if (load_churn_spec(args, topo, &churn) != 0) return 1;
  if (churn) churn->arm(psim);

  const std::string trace_path = args.get("telemetry-out");
  if (!trace_path.empty()) psim.enable_tracing();

  const double metrics_interval_s = args.get_double("metrics-interval-ms", 0.0) * 1e-3;
  const std::string metrics_path = args.get("metrics-json");
  std::ofstream metrics_file;
  std::ostream* metrics_out = nullptr;
  if (!metrics_path.empty()) {
    if (metrics_path == "-") {
      metrics_out = &std::cout;
    } else {
      metrics_file.open(metrics_path);
      if (!metrics_file) {
        std::fprintf(stderr, "cannot open --metrics-json file: %s\n", metrics_path.c_str());
        return 1;
      }
      metrics_out = &metrics_file;
    }
  } else if (metrics_interval_s > 0) {
    std::fprintf(stderr, "--metrics-interval-ms needs --metrics-json <file|->\n");
    return 1;
  }
  if (metrics_out != nullptr && metrics_interval_s > 0) {
    psim.set_metrics_snapshots(metrics_interval_s, metrics_out);
  }

  compiler::CompileResult compiled;
  std::unique_ptr<pg::PolicyEvaluator> evaluator;
  std::string policy_text;
  if (plane == "contra" || tel.audit) {
    const std::string policy = args.get("policy", "minimize(path.util)");
    policy_text = policy;
    try {
      compiled = compiler::compile(policy, topo);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "compile error: %s\n", e.what());
      return 1;
    }
    std::printf("compiled: %s\n", compiled.summary().c_str());
    evaluator = std::make_unique<pg::PolicyEvaluator>(compiled.graph, compiled.decomposition);
  }
  if (plane != "contra" && plane != "ecmp" && plane != "hula" && plane != "spain" &&
      plane != "sp") {
    std::fprintf(stderr, "unknown --plane '%s'\n", plane.c_str());
    return usage(argv0);
  }
  psim.for_each_shard([&](sim::Simulator& shard_sim) {
    if (plane == "contra") {
      dataplane::ContraSwitchOptions options;
      options.probe_period_s = std::max(probe_period_s, compiled.min_probe_period_s);
      options.triggered_updates = args.has("triggered");
      options.keepalive_rounds = static_cast<uint32_t>(
          args.get_int("keepalive-rounds", static_cast<int64_t>(options.keepalive_rounds)));
      options.holddown_periods = args.get_double("holddown-periods", options.holddown_periods);
      options.util_quantum = args.get_double("util-quantum", options.util_quantum);
      dataplane::install_contra_network(shard_sim, compiled, *evaluator, options);
    } else if (plane == "ecmp") {
      dataplane::install_ecmp_network(shard_sim);
    } else if (plane == "hula") {
      dataplane::HulaOptions options;
      options.probe_period_s = probe_period_s;
      dataplane::install_hula_network(shard_sim, options);
    } else if (plane == "spain") {
      dataplane::install_spain_network(shard_sim);
    } else {
      dataplane::install_shortest_path_network(shard_sim);
    }
  });

  const workload::EmpiricalCdf& sizes = args.get("workload", "web-search") == "cache"
                                            ? workload::cache_flow_sizes()
                                            : workload::web_search_flow_sizes();
  std::vector<sim::HostId> senders, receivers;
  for (sim::HostId h : hosts) (h % 2 ? receivers : senders).push_back(h);

  sim::ParallelTransport transport(psim, transport_config_from_args(args));
  if (tel.flow_tracking()) transport.enable_flow_tracking(tel.path_sample_every);

  workload::WorkloadConfig wl;
  wl.load = load;
  wl.sender_capacity_bps = link_bps / 4;
  wl.start = 20 * probe_period_s;
  wl.duration = duration_s;
  wl.seed = seed;
  wl.size_scale = size_scale;
  std::unique_ptr<workload::FlowStream> stream;
  std::vector<workload::GeneratedFlow> flows;
  if (args.has("stream")) {
    stream = std::make_unique<workload::FlowStream>(sizes, senders, receivers, wl);
  } else {
    flows = workload::generate_poisson(sizes, senders, receivers, wl);
    workload::submit(transport, flows);
  }

  // Per-shard link samplers over the links each shard owns (transmit side):
  // shard timelines are disjoint, so the merged timeline is workers-invariant.
  std::vector<std::unique_ptr<obs::LinkTimeline>> shard_timelines;
  std::vector<std::unique_ptr<LinkSampler>> shard_samplers;
  if (tel.link_sampling()) {
    const uint32_t capacity = tel.timeline_capacity(wl.start + wl.duration + 0.3);
    for (uint32_t s = 0; s < psim.num_shards(); ++s) {
      auto timeline = std::make_unique<obs::LinkTimeline>(topo.num_links(), capacity);
      auto sampler = std::make_unique<LinkSampler>();
      sampler->sim = &psim.shard_sim(s);
      sampler->timeline = timeline.get();
      sampler->interval_s = tel.link_sample_s;
      for (topology::LinkId l = 0; l < topo.num_links(); ++l) {
        if (psim.shard_of_node(topo.link(l).from) == s) sampler->links.push_back(l);
      }
      if (!sampler->links.empty()) sampler->arm();
      shard_timelines.push_back(std::move(timeline));
      shard_samplers.push_back(std::move(sampler));
    }
  }

  std::unique_ptr<obs::EngineProfiler> profiler;
  if (!tel.profile_path.empty()) {
    profiler = std::make_unique<obs::EngineProfiler>(psim.num_shards() + 1);
    psim.set_profiler(profiler.get());
  }

  if (!trace_path.empty()) {
    obs::RunManifest manifest = obs::RunManifest::make("contrasim");
    manifest.topology = args.has("topo-file")   ? args.get("topo-file")
                        : args.has("topology") ? args.get("topology")
                                               : args.get("builtin", "diamond");
    manifest.nodes = topo.num_nodes();
    manifest.links = topo.num_links();
    manifest.plane = plane;
    manifest.policy = policy_text;
    manifest.workload = args.get("workload", "web-search");
    manifest.seed = seed;
    manifest.load = load;
    manifest.duration_s = duration_s;
    manifest.probe_period_s = probe_period_s;
    manifest.link_bps = link_bps;
    const std::string manifest_path = obs::manifest_path_for(trace_path);
    if (!manifest.write(manifest_path)) {
      std::fprintf(stderr, "cannot write run manifest: %s\n", manifest_path.c_str());
      return 1;
    }
    std::printf("telemetry: trace=%s manifest=%s config_hash=%016llx\n", trace_path.c_str(),
                manifest_path.c_str(),
                static_cast<unsigned long long>(manifest.config_hash()));
  }

  psim.start();
  psim.run_until(wl.start);
  const sim::LinkStats window_start = psim.aggregate_fabric_stats();
  if (stream) {
    workload::pump_stream(transport, *stream, wl.start + wl.duration,
                          std::max(wl.duration / 256, 1e-3),
                          [&](sim::Time t) { psim.run_until(t); });
  } else {
    psim.run_until(wl.start + wl.duration);
  }
  const sim::LinkStats window_end = psim.aggregate_fabric_stats();
  psim.run_until(wl.start + wl.duration + 0.25);

  const size_t num_flows = stream ? stream->emitted() : flows.size();
  const auto fct = metrics::summarize_fct(transport.completed_flows(), num_flows);
  const auto overhead = metrics::make_overhead_report(window_end, window_start);
  std::printf("engine  : %u shards x %u workers (%u fused at partition), "
              "min cut %.3g us, %llu phases (%llu solo)\n",
              psim.num_shards(), psim.num_workers(), psim.partition().fused_shards,
              psim.epoch_width_s() * 1e6,
              static_cast<unsigned long long>(psim.epochs_completed()),
              static_cast<unsigned long long>(psim.solo_phases()));
  std::printf("plane=%s load=%.0f%% flows=%zu\n", plane.c_str(), load * 100, num_flows);
  std::printf("FCT     : %s\n", fct.to_string().c_str());
  std::printf("traffic : %s\n", overhead.to_string().c_str());
  std::printf("drops   : %llu data packets\n",
              static_cast<unsigned long long>(psim.aggregate_fabric_stats().data_drops));
  print_fluid_stats(transport.fluid_engine());

  if (metrics_out != nullptr) {
    *metrics_out << psim.merged_metrics_json(psim.now()) << "\n";
  }

  obs::FlowTracker merged_tracker;
  if (transport.flow_tracking()) {
    merged_tracker = transport.merged_flow_tracker();
    if (!write_flow_outputs(tel, merged_tracker)) return 1;
  }
  obs::LinkTimeline merged_timeline;
  if (tel.link_sampling()) {
    for (const auto& timeline : shard_timelines) merged_timeline.merge_from(*timeline);
    if (!write_link_output(tel, merged_timeline)) return 1;
  }
  if (tel.audit) {
    run_optimality_audit(topo, compiled, *evaluator, merged_tracker, merged_timeline,
                         tel.audit_bucket_s, fail_link, fail_at_s);
  }
  if (profiler) {
    psim.set_profiler(nullptr);
    if (!write_profile_output(tel.profile_path, *profiler)) return 1;
  }

  if (!trace_path.empty()) {
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open --telemetry-out file: %s\n", trace_path.c_str());
      return 1;
    }
    obs::JsonlTraceSink trace_sink(trace_file);
    obs::ConvergenceTracker convergence;
    for (const obs::TraceRecord& rec : psim.merged_trace()) {
      trace_sink.write(rec);
      convergence.write(rec);
    }
    trace_sink.flush();
    std::printf("trace   : %llu records -> %s\n",
                static_cast<unsigned long long>(trace_sink.records_written()),
                trace_path.c_str());
    std::printf("%s", convergence.report().to_string().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::init_log_level_from_env();
  const tools::Args args(argc, argv);
  if (args.has("help")) return usage(argv[0]);

  std::string error;
  const auto topo = tools::load_topology(args, &error);
  if (!topo) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return usage(argv[0]);
  }

  if (args.has("workers") || args.has("shards")) return run_parallel(args, *topo, argv[0]);

  const double link_bps = args.get_double("link-gbps", 10.0) * 1e9;
  const double load = args.get_double("load", 0.5);
  const double duration_s = args.get_double("duration-ms", 30.0) * 1e-3;
  const double probe_period_s = args.get_double("probe-period-us", 256.0) * 1e-6;
  const uint64_t seed = static_cast<uint64_t>(args.get_int("seed", 1));
  const double size_scale = args.get_double("size-scale", 0.1);
  const std::string plane = args.get("plane", "contra");
  const TelemetryOpts tel = TelemetryOpts::from_args(args);

  sim::SimConfig config;
  config.host_link_bps = link_bps;
  config.util_tau_s = 2 * probe_period_s;
  sim::Simulator sim(*topo, config);
  const std::vector<sim::HostId> hosts = attach_hosts_auto(sim);
  if (hosts.size() < 2) {
    std::fprintf(stderr, "topology too small to host traffic\n");
    return 1;
  }

  topology::LinkId fail_link = topology::kInvalidLink;
  double fail_at_s = 0.0;
  if (args.has("fail")) {
    const auto parts = util::split(args.get("fail"), '-');
    if (parts.size() != 2 || topo->find(parts[0]) == topology::kInvalidNode ||
        topo->find(parts[1]) == topology::kInvalidNode ||
        topo->link_between(topo->find(parts[0]), topo->find(parts[1])) ==
            topology::kInvalidLink) {
      std::fprintf(stderr, "bad --fail spec '%s' (want <nodeA>-<nodeB>)\n",
                   args.get("fail").c_str());
      return 1;
    }
    fail_link = topo->link_between(topo->find(parts[0]), topo->find(parts[1]));
    fail_at_s = args.get_double("fail-at-ms", 0.0) * 1e-3;
    if (fail_at_s > 0) {
      sim::Simulator* simp = &sim;
      const topology::LinkId link = fail_link;
      sim.events().schedule_in(fail_at_s, [simp, link] { simp->fail_cable(link); });
    } else {
      sim.fail_cable(fail_link);
    }
  }

  std::unique_ptr<sim::ChurnEngine> churn;
  if (load_churn_spec(args, *topo, &churn) != 0) return 1;
  if (churn) churn->arm(sim);

  // ----- telemetry ----------------------------------------------------------
  const std::string trace_path = args.get("telemetry-out");
  std::ofstream trace_file;
  std::unique_ptr<obs::JsonlTraceSink> trace_sink;
  obs::ConvergenceTracker convergence;
  obs::FanoutSink fanout;
  if (!trace_path.empty()) {
    trace_file.open(trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open --telemetry-out file: %s\n", trace_path.c_str());
      return 1;
    }
    trace_sink = std::make_unique<obs::JsonlTraceSink>(trace_file);
    fanout.add(trace_sink.get());
    fanout.add(&convergence);
    sim.telemetry().set_sink(&fanout);
  }

  const double metrics_interval_s = args.get_double("metrics-interval-ms", 0.0) * 1e-3;
  const std::string metrics_path = args.get("metrics-json");
  std::ofstream metrics_file;
  std::ostream* metrics_out = nullptr;
  if (!metrics_path.empty()) {
    if (metrics_path == "-") {
      metrics_out = &std::cout;
    } else {
      metrics_file.open(metrics_path);
      if (!metrics_file) {
        std::fprintf(stderr, "cannot open --metrics-json file: %s\n", metrics_path.c_str());
        return 1;
      }
      metrics_out = &metrics_file;
    }
  } else if (metrics_interval_s > 0) {
    std::fprintf(stderr, "--metrics-interval-ms needs --metrics-json <file|->\n");
    return 1;
  }
  MetricsExporter exporter{&sim, metrics_out, metrics_interval_s};
  if (metrics_out != nullptr && metrics_interval_s > 0) {
    MetricsExporter* ep = &exporter;
    sim.events().schedule_in(metrics_interval_s, [ep] { ep->tick(); });
  }

  compiler::CompileResult compiled;
  std::unique_ptr<pg::PolicyEvaluator> evaluator;
  std::string policy_text;
  if (plane == "contra" || tel.audit) {
    const std::string policy = args.get("policy", "minimize(path.util)");
    policy_text = policy;
    try {
      compiled = compiler::compile(policy, *topo);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "compile error: %s\n", e.what());
      return 1;
    }
    std::printf("compiled: %s\n", compiled.summary().c_str());
    evaluator = std::make_unique<pg::PolicyEvaluator>(compiled.graph, compiled.decomposition);
  }
  if (plane == "contra") {
    dataplane::ContraSwitchOptions options;
    options.probe_period_s = std::max(probe_period_s, compiled.min_probe_period_s);
    options.triggered_updates = args.has("triggered");
    options.keepalive_rounds = static_cast<uint32_t>(
        args.get_int("keepalive-rounds", static_cast<int64_t>(options.keepalive_rounds)));
    options.holddown_periods = args.get_double("holddown-periods", options.holddown_periods);
    options.util_quantum = args.get_double("util-quantum", options.util_quantum);
    dataplane::install_contra_network(sim, compiled, *evaluator, options);
  } else if (plane == "ecmp") {
    dataplane::install_ecmp_network(sim);
  } else if (plane == "hula") {
    dataplane::HulaOptions options;
    options.probe_period_s = probe_period_s;
    dataplane::install_hula_network(sim, options);
  } else if (plane == "spain") {
    dataplane::install_spain_network(sim);
  } else if (plane == "sp") {
    dataplane::install_shortest_path_network(sim);
  } else {
    std::fprintf(stderr, "unknown --plane '%s'\n", plane.c_str());
    return usage(argv[0]);
  }

  const workload::EmpiricalCdf& sizes = args.get("workload", "web-search") == "cache"
                                            ? workload::cache_flow_sizes()
                                            : workload::web_search_flow_sizes();
  std::vector<sim::HostId> senders, receivers;
  for (sim::HostId h : hosts) (h % 2 ? receivers : senders).push_back(h);

  obs::FlowTracker flow_tracker;  // declared before transport: outlives it
  sim::TransportManager transport(sim, transport_config_from_args(args));
  if (tel.flow_tracking()) {
    transport.set_flow_tracker(&flow_tracker);
    transport.set_path_sample_every(tel.path_sample_every);
    sim.set_flow_telemetry(true);
  }

  workload::WorkloadConfig wl;
  wl.load = load;
  wl.sender_capacity_bps = link_bps / 4;  // conservative fair share
  wl.start = 20 * probe_period_s;         // converge first
  wl.duration = duration_s;
  wl.seed = seed;
  wl.size_scale = size_scale;
  std::unique_ptr<workload::FlowStream> stream;
  std::vector<workload::GeneratedFlow> flows;
  if (args.has("stream")) {
    stream = std::make_unique<workload::FlowStream>(sizes, senders, receivers, wl);
  } else {
    flows = workload::generate_poisson(sizes, senders, receivers, wl);
    workload::submit(transport, flows);
  }

  obs::LinkTimeline link_timeline;
  LinkSampler link_sampler;
  if (tel.link_sampling()) {
    link_timeline =
        obs::LinkTimeline(topo->num_links(), tel.timeline_capacity(wl.start + wl.duration + 0.3));
    link_sampler.sim = &sim;
    link_sampler.timeline = &link_timeline;
    link_sampler.interval_s = tel.link_sample_s;
    for (topology::LinkId l = 0; l < topo->num_links(); ++l) link_sampler.links.push_back(l);
    link_sampler.arm();
  }

  std::unique_ptr<obs::EngineProfiler> profiler;
  std::chrono::steady_clock::time_point profile_epoch{};
  if (!tel.profile_path.empty()) {
    // The serial engine has no phases; profile the three run windows as
    // coarse spans on a single track.
    profiler = std::make_unique<obs::EngineProfiler>(1);
    profile_epoch = std::chrono::steady_clock::now();
  }
  const auto profiled = [&](const char* name, auto&& fn) {
    if (!profiler) {
      fn();
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    profiler->add_span(0, name,
                       std::chrono::duration<double, std::micro>(t0 - profile_epoch).count(),
                       std::chrono::duration<double, std::micro>(t1 - t0).count());
  };

  if (!trace_path.empty()) {
    obs::RunManifest manifest = obs::RunManifest::make("contrasim");
    manifest.topology = args.has("topo-file")   ? args.get("topo-file")
                        : args.has("topology") ? args.get("topology")
                                               : args.get("builtin", "diamond");
    manifest.nodes = topo->num_nodes();
    manifest.links = topo->num_links();
    manifest.plane = plane;
    manifest.policy = policy_text;
    manifest.workload = args.get("workload", "web-search");
    manifest.seed = seed;
    manifest.load = load;
    manifest.duration_s = duration_s;
    manifest.probe_period_s = probe_period_s;
    manifest.link_bps = link_bps;
    const std::string manifest_path = obs::manifest_path_for(trace_path);
    if (!manifest.write(manifest_path)) {
      std::fprintf(stderr, "cannot write run manifest: %s\n", manifest_path.c_str());
      return 1;
    }
    std::printf("telemetry: trace=%s manifest=%s config_hash=%016llx\n", trace_path.c_str(),
                manifest_path.c_str(),
                static_cast<unsigned long long>(manifest.config_hash()));
  }

  sim.start();
  sim::LinkStats window_start, window_end;
  profiled("warmup", [&] { sim.run_until(wl.start); });
  window_start = sim.aggregate_fabric_stats();
  profiled("traffic", [&] {
    if (stream) {
      workload::pump_stream(transport, *stream, wl.start + wl.duration,
                            std::max(wl.duration / 256, 1e-3),
                            [&](sim::Time t) { sim.run_until(t); });
    } else {
      sim.run_until(wl.start + wl.duration);
    }
  });
  window_end = sim.aggregate_fabric_stats();
  profiled("drain", [&] { sim.run_until(wl.start + wl.duration + 0.25); });

  const size_t num_flows = stream ? stream->emitted() : flows.size();
  const auto fct = metrics::summarize_fct(transport.completed_flows(), num_flows);
  const auto overhead = metrics::make_overhead_report(window_end, window_start);
  std::printf("plane=%s load=%.0f%% flows=%zu\n", plane.c_str(), load * 100, num_flows);
  std::printf("FCT     : %s\n", fct.to_string().c_str());
  std::printf("traffic : %s\n", overhead.to_string().c_str());
  std::printf("drops   : %llu data packets\n",
              static_cast<unsigned long long>(sim.aggregate_fabric_stats().data_drops));
  print_fluid_stats(transport.fluid_engine());

  if (metrics_out != nullptr) {
    *metrics_out << sim.telemetry().metrics().snapshot_json(sim.now()) << "\n";
  }

  if (tel.flow_tracking() && !write_flow_outputs(tel, flow_tracker)) return 1;
  if (tel.link_sampling() && !write_link_output(tel, link_timeline)) return 1;
  if (tel.audit) {
    run_optimality_audit(*topo, compiled, *evaluator, flow_tracker, link_timeline,
                         tel.audit_bucket_s, fail_link, fail_at_s);
  }
  if (profiler && !write_profile_output(tel.profile_path, *profiler)) return 1;

  if (!trace_path.empty()) {
    fanout.flush();
    std::printf("trace   : %llu records -> %s\n",
                static_cast<unsigned long long>(trace_sink->records_written()),
                trace_path.c_str());
    std::printf("%s", convergence.report().to_string().c_str());
    sim.telemetry().set_sink(nullptr);  // sinks go out of scope before sim
  }
  transport.set_flow_tracker(nullptr);
  return 0;
}
