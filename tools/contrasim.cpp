// contrasim — run a performance-aware-routing experiment from the command
// line: pick a topology, a dataplane (contra / ecmp / hula / spain / sp), a
// workload, and get FCT + overhead numbers.
//
//   contrasim --builtin fat-tree:4 --plane contra \
//             --policy "minimize((path.len, path.util))" \
//             --workload web-search --load 0.6 --duration-ms 30 --seed 1
//
// Hosts attach to fat-tree edge switches / leaf-spine leaves automatically;
// on arbitrary topologies one host attaches to every switch.
#include <cstdio>
#include <memory>

#include "cli_common.h"
#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "dataplane/ecmp_switch.h"
#include "dataplane/hula_switch.h"
#include "dataplane/spain_switch.h"
#include "dataplane/static_switch.h"
#include "lang/parser.h"
#include "metrics/counters.h"
#include "metrics/fct.h"
#include "sim/host.h"
#include "sim/transport.h"
#include "util/strings.h"
#include "workload/generator.h"

using namespace contra;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--topology <file> | --builtin <spec>]\n"
               "          --plane contra|ecmp|hula|spain|sp\n"
               "          [--policy \"minimize(...)\"]   (contra only; default MU)\n"
               "          [--workload web-search|cache] [--load 0.5]\n"
               "          [--duration-ms 30] [--seed 1] [--size-scale 0.1]\n"
               "          [--link-gbps 10] [--probe-period-us 256]\n"
               "          [--fail <nodeA>-<nodeB>]      (fail a cable pre-traffic)\n",
               argv0);
  return 2;
}

std::vector<sim::HostId> attach_hosts_auto(sim::Simulator& sim) {
  std::vector<sim::HostId> hosts = sim::attach_hosts_to_fat_tree_edges(sim, 2);
  if (!hosts.empty()) return hosts;
  hosts = sim::attach_hosts_to_leaves(sim, 2);
  if (!hosts.empty()) return hosts;
  for (topology::NodeId n = 0; n < sim.topo().num_nodes(); ++n) hosts.push_back(sim.add_host(n));
  return hosts;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  if (args.has("help")) return usage(argv[0]);

  std::string error;
  const auto topo = tools::load_topology(args, &error);
  if (!topo) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return usage(argv[0]);
  }

  const double link_bps = args.get_double("link-gbps", 10.0) * 1e9;
  const double load = args.get_double("load", 0.5);
  const double duration_s = args.get_double("duration-ms", 30.0) * 1e-3;
  const double probe_period_s = args.get_double("probe-period-us", 256.0) * 1e-6;
  const uint64_t seed = static_cast<uint64_t>(args.get_int("seed", 1));
  const double size_scale = args.get_double("size-scale", 0.1);
  const std::string plane = args.get("plane", "contra");

  sim::SimConfig config;
  config.host_link_bps = link_bps;
  config.util_tau_s = 2 * probe_period_s;
  sim::Simulator sim(*topo, config);
  const std::vector<sim::HostId> hosts = attach_hosts_auto(sim);
  if (hosts.size() < 2) {
    std::fprintf(stderr, "topology too small to host traffic\n");
    return 1;
  }

  if (args.has("fail")) {
    const auto parts = util::split(args.get("fail"), '-');
    if (parts.size() != 2 || topo->find(parts[0]) == topology::kInvalidNode ||
        topo->find(parts[1]) == topology::kInvalidNode ||
        topo->link_between(topo->find(parts[0]), topo->find(parts[1])) ==
            topology::kInvalidLink) {
      std::fprintf(stderr, "bad --fail spec '%s' (want <nodeA>-<nodeB>)\n",
                   args.get("fail").c_str());
      return 1;
    }
    sim.fail_cable(topo->link_between(topo->find(parts[0]), topo->find(parts[1])));
  }

  compiler::CompileResult compiled;
  std::unique_ptr<pg::PolicyEvaluator> evaluator;
  if (plane == "contra") {
    const std::string policy = args.get("policy", "minimize(path.util)");
    try {
      compiled = compiler::compile(policy, *topo);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "compile error: %s\n", e.what());
      return 1;
    }
    std::printf("compiled: %s\n", compiled.summary().c_str());
    evaluator = std::make_unique<pg::PolicyEvaluator>(compiled.graph, compiled.decomposition);
    dataplane::ContraSwitchOptions options;
    options.probe_period_s = std::max(probe_period_s, compiled.min_probe_period_s);
    dataplane::install_contra_network(sim, compiled, *evaluator, options);
  } else if (plane == "ecmp") {
    dataplane::install_ecmp_network(sim);
  } else if (plane == "hula") {
    dataplane::HulaOptions options;
    options.probe_period_s = probe_period_s;
    dataplane::install_hula_network(sim, options);
  } else if (plane == "spain") {
    dataplane::install_spain_network(sim);
  } else if (plane == "sp") {
    dataplane::install_shortest_path_network(sim);
  } else {
    std::fprintf(stderr, "unknown --plane '%s'\n", plane.c_str());
    return usage(argv[0]);
  }

  const workload::EmpiricalCdf& sizes = args.get("workload", "web-search") == "cache"
                                            ? workload::cache_flow_sizes()
                                            : workload::web_search_flow_sizes();
  std::vector<sim::HostId> senders, receivers;
  for (sim::HostId h : hosts) (h % 2 ? receivers : senders).push_back(h);

  sim::TransportManager transport(sim);
  workload::WorkloadConfig wl;
  wl.load = load;
  wl.sender_capacity_bps = link_bps / 4;  // conservative fair share
  wl.start = 20 * probe_period_s;         // converge first
  wl.duration = duration_s;
  wl.seed = seed;
  wl.size_scale = size_scale;
  const auto flows = workload::generate_poisson(sizes, senders, receivers, wl);
  workload::submit(transport, flows);

  sim.start();
  sim.run_until(wl.start);
  const sim::LinkStats window_start = sim.aggregate_fabric_stats();
  sim.run_until(wl.start + wl.duration);
  const sim::LinkStats window_end = sim.aggregate_fabric_stats();
  sim.run_until(wl.start + wl.duration + 0.25);

  const auto fct = metrics::summarize_fct(transport.completed_flows(), flows.size());
  const auto overhead = metrics::make_overhead_report(window_end, window_start);
  std::printf("plane=%s load=%.0f%% flows=%zu\n", plane.c_str(), load * 100, flows.size());
  std::printf("FCT     : %s\n", fct.to_string().c_str());
  std::printf("traffic : %s\n", overhead.to_string().c_str());
  std::printf("drops   : %llu data packets\n",
              static_cast<unsigned long long>(sim.aggregate_fabric_stats().data_drops));
  return 0;
}
