#!/usr/bin/env python3
"""Summarize contrasim telemetry: control-plane trace, flow stream, link
timelines, and the run manifest.

Usage:
  telemetry_report.py TRACE.jsonl [--manifest PATH] [--top 5] [--json]
  telemetry_report.py --flows FLOWS.jsonl [--links LINKS.jsonl] [--json]
  telemetry_report.py TRACE.jsonl --flows FLOWS.jsonl --paths PATHS.jsonl \
      --links LINKS.jsonl
  telemetry_report.py --validate-manifest MANIFEST.json

Reads the trace schema written by obs::JsonlTraceSink (see
docs/OBSERVABILITY.md): one record per line, keys t/ev/sw/dst/tag/pid/link/
aux/ver/val, absent keys meaning "not applicable". Prints:

  * record counts by event type,
  * top probe talkers (switches by probe records),
  * route-flap leaders (destinations by route_flip count),
  * per-switch probe suppression rates (probe_suppress / probe_rx) and any
    dense-table fallback hits (dense_fallback records — always a bug),
  * the TRIGGERED UPDATES section when the run used the event-driven control
    plane (DESIGN.md s12): per-switch trigger emissions with probe copies
    (probe_trigger records, aux=copies) and withdraw/poison adverts
    (probe_withdraw); pass --metrics METRICS.json (a contrasim --metrics-json
    snapshot) to add the counter view — trigger/withdraw totals, hold-down
    deferrals, the keepalive share of received probes, and the control-plane
    byte rate from probe_bytes_rx,
  * the parallel-engine section when the trace came from a sharded run:
    per-shard epochs run and events processed (epoch records, sw=shard),
    mailbox drains with message counts and max batch (barrier records),
  * the per-destination convergence table (time-to-quiescence, flap counts,
    and post-failure re-convergence latency — mirroring obs::ConvergenceTracker),
  * the run manifest, when found next to the trace (x.jsonl -> x.manifest.json).

Dataplane telemetry streams (written by contrasim --flows-out / --paths-out /
--links-out; schemas in docs/OBSERVABILITY.md) get their own sections:

  * FLOWS: FCT percentiles (p50/p95/p99, µs) bucketed by flow size, plus the
    slowest completed flows with their retransmit / path-switch counts,
  * PATHS: sampled INT path-record stats (records, truncation, hop spread),
  * LINK HOTSPOTS: top links by peak queue depth and by sustained (mean)
    utilization over the sampled timeline.

--json emits the same summary as one JSON object for scripting.
--validate-manifest checks a manifest file has every required field and a
config hash, exit 0/1 — used by the telemetry e2e test.
"""

import argparse
import collections
import json
import os
import sys

EVENT_NAMES = [
    "probe_orig", "probe_rx", "probe_accept", "probe_reject_stale",
    "probe_reject_rank", "probe_reject_no_pg", "route_flip",
    "flowlet_create", "flowlet_switch", "flowlet_expire", "flowlet_flush",
    "failure_detect", "failure_clear", "loop_break", "link_down", "link_up",
    "drop", "epoch", "barrier", "probe_suppress", "dense_fallback",
    "probe_trigger", "probe_withdraw", "churn_wave", "gray_degrade",
    "switch_restart",
]

# Mirrors obs::FaultClass (src/obs/trace.h); churn_wave records carry the
# class in aux. A wave anchored by a raw link event has no class ("link").
FAULT_CLASSES = ["flap", "srg", "gray", "drift", "drain", "restart"]


def fault_class_name(cls):
    if cls is None or not 0 <= cls < len(FAULT_CLASSES):
        return "link"
    return FAULT_CLASSES[cls]

MANIFEST_REQUIRED = [
    "schema", "tool", "topology", "nodes", "links", "plane", "seed",
    "duration_s", "config_hash", "build",
]


def manifest_path_for(trace_path):
    if trace_path.endswith(".jsonl"):
        return trace_path[: -len(".jsonl")] + ".manifest.json"
    return trace_path + ".manifest.json"


def validate_manifest(path):
    """Returns a list of problems (empty = valid)."""
    try:
        with open(path) as f:
            manifest = json.load(f)
    except OSError as e:
        return [f"cannot read {path}: {e.strerror}"]
    except json.JSONDecodeError as e:
        return [f"{path} is not valid JSON: {e}"]
    problems = [f"missing field: {key}" for key in MANIFEST_REQUIRED if key not in manifest]
    if isinstance(manifest.get("config_hash"), str):
        try:
            int(manifest["config_hash"], 16)
        except ValueError:
            problems.append(f"config_hash is not hex: {manifest['config_hash']!r}")
    if isinstance(manifest.get("build"), dict):
        for key in ("type", "compiler"):
            if key not in manifest["build"]:
                problems.append(f"missing field: build.{key}")
    return problems


class Convergence:
    """Per-destination convergence state, mirroring obs::ConvergenceTracker."""

    def __init__(self):
        self.first_failure = None
        self.dests = {}
        # Churn waves: explicit churn_wave markers once seen; raw link_down /
        # link_up / switch_restart / gray_degrade events anchor waves only in
        # traces without markers (mirrors obs::ConvergenceTracker).
        self.waves = []
        self.saw_churn_wave = False

    def observe(self, record):
        ev = record.get("ev")
        t = float(record.get("t", 0.0))
        anchor = ev == "churn_wave" or (
            not self.saw_churn_wave
            and ev in ("link_down", "link_up", "switch_restart", "gray_degrade"))
        if ev == "churn_wave":
            self.saw_churn_wave = True
        if anchor and (not self.waves or t > self.waves[-1]["t"]):
            cls = int(record.get("aux", 0)) if ev == "churn_wave" else None
            self.waves.append({"t": t, "cls": cls, "flips": 0, "last_flip": None,
                               "trigger_sw": set(), "trigger_records": 0})
        # Trigger-wave width: distinct switches emitting a triggered update
        # inside the open wave (mirrors obs::ConvergenceTracker).
        if (ev == "probe_trigger" and "sw" in record and self.waves
                and t >= self.waves[-1]["t"]):
            self.waves[-1]["trigger_sw"].add(record["sw"])
            self.waves[-1]["trigger_records"] += 1
        if ev in ("link_down", "failure_detect") and self.first_failure is None:
            self.first_failure = t
        if ev != "route_flip" or "dst" not in record:
            return
        state = self.dests.setdefault(
            record["dst"],
            {"flips": 0, "first": None, "last": None, "post_flips": 0, "post_last": None,
             "max_wave_reconv": None})
        state["flips"] += 1
        if state["first"] is None:
            state["first"] = t
        state["last"] = t
        if self.first_failure is not None and t >= self.first_failure:
            state["post_flips"] += 1
            state["post_last"] = t
        if self.waves and t >= self.waves[-1]["t"]:
            wave = self.waves[-1]
            wave["flips"] += 1
            wave["last_flip"] = t
            reconv = t - wave["t"]
            if state["max_wave_reconv"] is None or reconv > state["max_wave_reconv"]:
                state["max_wave_reconv"] = reconv

    def table(self):
        rows = []
        for dst in sorted(self.dests):
            s = self.dests[dst]
            if s["max_wave_reconv"] is not None:
                reconverge = s["max_wave_reconv"]
            elif not self.waves and s["post_last"] is not None:
                reconverge = s["post_last"] - self.first_failure
            else:
                reconverge = None
            rows.append({
                "dst": dst,
                "flips": s["flips"],
                "first_route_s": s["first"],
                "quiesced_s": s["last"],
                "post_failure_flips": s["post_flips"],
                "reconvergence_s": reconverge,
            })
        return rows

    def wave_table(self):
        return [{
            "wave": i,
            "t_start_s": w["t"],
            "fault_class": fault_class_name(w["cls"]),
            "flips": w["flips"],
            "reconvergence_s": (w["last_flip"] - w["t"]
                                if w["last_flip"] is not None else None),
            "trigger_width": len(w["trigger_sw"]),
            "trigger_records": w["trigger_records"],
        } for i, w in enumerate(self.waves)]

    def class_table(self):
        """Per-fault-class reconvergence distribution over waves."""
        by_class = {}
        for row in self.wave_table():
            s = by_class.setdefault(row["fault_class"],
                                    {"waves": 0, "reacted": 0, "values": [],
                                     "widths": []})
            s["waves"] += 1
            s["widths"].append(row["trigger_width"])
            if row["reconvergence_s"] is not None:
                s["reacted"] += 1
                s["values"].append(row["reconvergence_s"])
        return [{
            "fault_class": cls,
            "waves": s["waves"],
            "reacted": s["reacted"],
            "min_s": min(s["values"]) if s["values"] else None,
            "mean_s": sum(s["values"]) / len(s["values"]) if s["values"] else None,
            "max_s": max(s["values"]) if s["values"] else None,
            "mean_trigger_width": sum(s["widths"]) / len(s["widths"]),
            "max_trigger_width": max(s["widths"]),
        } for cls, s in sorted(by_class.items())]


def read_trace(path):
    counts = collections.Counter()
    probe_talkers = collections.Counter()
    flap_leaders = collections.Counter()
    suppress_by_switch = collections.Counter()
    rx_by_switch = collections.Counter()
    fallback_by_switch = collections.Counter()
    trigger_by_switch = collections.Counter()
    trigger_copies = collections.Counter()
    withdraw_by_switch = collections.Counter()
    # Parallel engine: "epoch"/"barrier" records carry the shard in sw and a
    # payload in val (events processed that phase / messages drained).
    shard_stats = collections.defaultdict(
        lambda: {"epochs": 0, "events": 0, "drains": 0, "msgs_drained": 0,
                 "max_batch": 0})
    convergence = Convergence()
    bad_lines = 0
    total = 0
    probe_events = {"probe_orig", "probe_rx", "probe_accept", "probe_reject_stale",
                    "probe_reject_rank", "probe_reject_no_pg", "probe_suppress",
                    "dense_fallback", "probe_trigger", "probe_withdraw"}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                bad_lines += 1
                continue
            ev = record.get("ev")
            if ev not in EVENT_NAMES:
                bad_lines += 1
                continue
            total += 1
            counts[ev] += 1
            if ev in probe_events and "sw" in record:
                probe_talkers[record["sw"]] += 1
            if ev == "route_flip" and "dst" in record:
                flap_leaders[record["dst"]] += 1
            if "sw" in record:
                if ev == "probe_rx":
                    rx_by_switch[record["sw"]] += 1
                elif ev == "probe_suppress":
                    suppress_by_switch[record["sw"]] += 1
                elif ev == "dense_fallback":
                    fallback_by_switch[record["sw"]] += 1
                elif ev == "probe_trigger":
                    trigger_by_switch[record["sw"]] += 1
                    trigger_copies[record["sw"]] += int(record.get("aux", 0))
                elif ev == "probe_withdraw":
                    withdraw_by_switch[record["sw"]] += 1
                elif ev == "epoch":
                    s = shard_stats[record["sw"]]
                    s["epochs"] += 1
                    s["events"] += int(record.get("val", 0))
                elif ev == "barrier":
                    s = shard_stats[record["sw"]]
                    batch = int(record.get("val", 0))
                    s["drains"] += 1
                    s["msgs_drained"] += batch
                    s["max_batch"] = max(s["max_batch"], batch)
            convergence.observe(record)
    return {
        "total_records": total,
        "bad_lines": bad_lines,
        "counts": {name: counts[name] for name in EVENT_NAMES if counts[name]},
        "probe_talkers": probe_talkers,
        "flap_leaders": flap_leaders,
        "suppress_by_switch": suppress_by_switch,
        "rx_by_switch": rx_by_switch,
        "fallback_by_switch": fallback_by_switch,
        "trigger_by_switch": trigger_by_switch,
        "trigger_copies": trigger_copies,
        "withdraw_by_switch": withdraw_by_switch,
        "shard_stats": shard_stats,
        "convergence": convergence,
    }


# Size buckets mirroring obs::FlowTracker::summary_json (bytes: [lo, hi)).
FLOW_BUCKETS = [
    ("all", 0.0, float("inf")),
    ("lt_10KB", 0.0, 1e4),
    ("10KB_100KB", 1e4, 1e5),
    ("100KB_1MB", 1e5, 1e6),
    ("ge_1MB", 1e6, float("inf")),
]


def percentile(sorted_vals, q):
    """Linear interpolation, matching contra::metrics::quantile."""
    if not sorted_vals:
        return 0.0
    pos = q * (len(sorted_vals) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = pos - lo
    return sorted_vals[lo] * (1.0 - frac) + sorted_vals[hi] * frac


def read_jsonl(path, required_key):
    """Parses a telemetry JSONL stream; lines missing required_key are bad."""
    rows = []
    bad = 0
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                bad += 1
                continue
            if required_key not in row:
                bad += 1
                continue
            rows.append(row)
    return rows, bad


def flows_summary(flows, top):
    """FCT percentiles by size bucket + the slowest completed flows."""
    completed = [f for f in flows if f.get("done")]
    buckets = []
    for name, lo, hi in FLOW_BUCKETS:
        fcts = sorted(f["fct_us"] for f in completed if lo <= f.get("bytes", 0) < hi)
        buckets.append({
            "bucket": name,
            "n": len(fcts),
            "p50_us": percentile(fcts, 0.50),
            "p95_us": percentile(fcts, 0.95),
            "p99_us": percentile(fcts, 0.99),
        })
    slowest = sorted(completed, key=lambda f: -f["fct_us"])[:top]
    return {
        "total": len(flows),
        "completed": len(completed),
        "buckets": buckets,
        "slowest": [{
            "flow": f.get("flow"),
            "src": f.get("src"),
            "dst": f.get("dst"),
            "bytes": f.get("bytes"),
            "fct_us": f.get("fct_us"),
            "retx": f.get("retx", 0),
            "rtos": f.get("rtos", 0),
            "path_switches": f.get("path_switches", 0),
        } for f in slowest],
    }


def paths_summary(samples):
    """Sampled INT path-record stats."""
    hops = [s.get("total_hops", 0) for s in samples]
    truncated = sum(1 for s in samples if s.get("total_hops", 0) > len(s.get("hops", [])))
    return {
        "records": len(samples),
        "truncated": truncated,
        "min_hops": min(hops) if hops else 0,
        "max_hops": max(hops) if hops else 0,
        "mean_hops": sum(hops) / len(hops) if hops else 0.0,
    }


def link_hotspots(rows, top):
    """Per-link peak queue depth and sustained (mean) utilization."""
    links = {}
    for row in rows:
        s = links.setdefault(row["link"], {"peak_q": 0, "util_sum": 0.0,
                                           "max_util": 0.0, "samples": 0})
        s["peak_q"] = max(s["peak_q"], row.get("q", 0))
        s["util_sum"] += row.get("util", 0.0)
        s["max_util"] = max(s["max_util"], row.get("util", 0.0))
        s["samples"] += 1
    stats = [{
        "link": link,
        "peak_q": s["peak_q"],
        "mean_util": s["util_sum"] / s["samples"],
        "max_util": s["max_util"],
        "samples": s["samples"],
    } for link, s in links.items()]
    return {
        "links": len(stats),
        "by_peak_queue": sorted(stats, key=lambda s: (-s["peak_q"], s["link"]))[:top],
        "by_sustained_util": sorted(stats, key=lambda s: (-s["mean_util"], s["link"]))[:top],
    }


def print_flows(summary):
    print(f"FLOWS    : {summary['total']} flows ({summary['completed']} completed)")
    print("  bucket           n   p50_us     p95_us     p99_us")
    for b in summary["buckets"]:
        print(f"  {b['bucket']:12s}  {b['n']:4d}  {b['p50_us']:9.1f}  {b['p95_us']:9.1f}"
              f"  {b['p99_us']:9.1f}")
    if summary["slowest"]:
        print("  slowest flows:")
        for f in summary["slowest"]:
            print(f"    flow {f['flow']:6d}  {f['src']:3d}->{f['dst']:3d}"
                  f"  {f['bytes']:9d} B  fct {f['fct_us']:10.1f} us"
                  f"  retx {f['retx']}  rtos {f['rtos']}"
                  f"  path_switches {f['path_switches']}")


def print_paths(summary):
    print(f"PATHS    : {summary['records']} sampled records"
          f" ({summary['truncated']} truncated)")
    print(f"  hops: min {summary['min_hops']}  max {summary['max_hops']}"
          f"  mean {summary['mean_hops']:.2f}")


def print_link_hotspots(summary):
    print(f"LINK HOTSPOTS ({summary['links']} links sampled):")
    print("  by peak queue depth:")
    for s in summary["by_peak_queue"]:
        print(f"    link {s['link']:4d}  peak_q {s['peak_q']:8d} B"
              f"  mean_util {s['mean_util']:.4f}  max_util {s['max_util']:.4f}")
    print("  by sustained utilization:")
    for s in summary["by_sustained_util"]:
        print(f"    link {s['link']:4d}  mean_util {s['mean_util']:.4f}"
              f"  max_util {s['max_util']:.4f}  peak_q {s['peak_q']:8d} B")


def shard_rows(summary):
    """Per-shard parallel-engine rows, shard order."""
    rows = []
    for shard in sorted(summary["shard_stats"]):
        s = summary["shard_stats"][shard]
        rows.append({
            "shard": shard,
            "epochs": s["epochs"],
            "events": s["events"],
            "drains": s["drains"],
            "msgs_drained": s["msgs_drained"],
            "mean_batch": s["msgs_drained"] / s["drains"] if s["drains"] else None,
            "max_batch": s["max_batch"],
        })
    return rows


def suppression_rows(summary, top):
    """Top switches by probe_suppress count with their suppression rate."""
    rows = []
    for sw, suppressed in summary["suppress_by_switch"].most_common(top):
        rx = summary["rx_by_switch"].get(sw, 0)
        rows.append({
            "sw": sw,
            "suppressed": suppressed,
            "probe_rx": rx,
            "rate": suppressed / rx if rx else None,
        })
    return rows


def trigger_rows(summary, top):
    """Top switches by trigger emissions, with total probe copies sent."""
    return [{
        "sw": sw,
        "triggers": triggers,
        "copies": summary["trigger_copies"].get(sw, 0),
        "withdraws": summary["withdraw_by_switch"].get(sw, 0),
    } for sw, triggers in summary["trigger_by_switch"].most_common(top)]


def triggered_counters(metrics):
    """The TRIGGERED UPDATES counter view from a --metrics-json snapshot.

    Returns None when the snapshot has no triggered-engine activity (a
    periodic run), so the section only shows up when it means something.
    """
    counters = metrics.get("counters", {})
    triggered = int(counters.get("probes_triggered", 0))
    keepalive = int(counters.get("keepalive_probes", 0))
    if triggered == 0 and keepalive == 0:
        return None
    received = int(counters.get("probes_received", 0))
    t = float(metrics.get("t", 0.0))
    bytes_rx = int(counters.get("probe_bytes_rx", 0))
    return {
        "probes_triggered": triggered,
        "probes_holddown_deferred": int(counters.get("probes_holddown_deferred", 0)),
        "probes_withdrawn": int(counters.get("probes_withdrawn", 0)),
        "keepalive_probes": keepalive,
        "probes_received": received,
        "keepalive_share": keepalive / received if received else None,
        "probe_bytes_rx": bytes_rx,
        "control_bytes_per_s": bytes_rx / t if t > 0 else None,
    }


def print_triggered(summary, metrics_summary, top):
    has_trace = bool(summary and summary["trigger_by_switch"])
    if not has_trace and metrics_summary is None:
        return
    print("TRIGGERED UPDATES (event-driven control plane, DESIGN.md s12):")
    if metrics_summary is not None:
        m = metrics_summary
        share = ("-" if m["keepalive_share"] is None
                 else f"{m['keepalive_share']:.1%}")
        rate = ("-" if m["control_bytes_per_s"] is None
                else f"{m['control_bytes_per_s'] / 1e6:.3f} MB/s")
        print(f"  triggers {m['probes_triggered']}  holddown_deferred "
              f"{m['probes_holddown_deferred']}  withdraws {m['probes_withdrawn']}")
        print(f"  keepalive share: {m['keepalive_probes']} / {m['probes_received']}"
              f" received ({share})")
        print(f"  control-plane byte rate: {m['probe_bytes_rx']} B rx ({rate})")
    if has_trace:
        print("  top trigger emitters (switch: triggers / probe copies / withdraws):")
        for r in trigger_rows(summary, top):
            print(f"    sw {r['sw']:4d}  {r['triggers']} / {r['copies']}"
                  f" / {r['withdraws']}")


def fmt_s(value):
    return "-" if value is None else f"{value:.6f}"


def print_report(path, summary, manifest, manifest_path, top):
    print(f"trace    : {path}")
    print(f"records  : {summary['total_records']} ({summary['bad_lines']} malformed skipped)")
    print("by event :")
    for name, count in sorted(summary["counts"].items(), key=lambda kv: -kv[1]):
        print(f"  {name:20s} {count}")
    if summary["probe_talkers"]:
        print(f"top probe talkers (switch: probe records):")
        for sw, count in summary["probe_talkers"].most_common(top):
            print(f"  sw {sw:4d}  {count}")
    if summary["flap_leaders"]:
        print(f"route-flap leaders (dst: flips):")
        for dst, count in summary["flap_leaders"].most_common(top):
            print(f"  dst {dst:4d}  {count}")
    if summary["suppress_by_switch"]:
        print("probe suppression (switch: suppressed / probe_rx):")
        for row in suppression_rows(summary, top):
            rate = "-" if row["rate"] is None else f"{row['rate']:.1%}"
            print(f"  sw {row['sw']:4d}  {row['suppressed']} / {row['probe_rx']}  ({rate})")
    if summary["fallback_by_switch"]:
        print("DENSE FALLBACKS (switch: hits) — probe keys escaped the compiled table:")
        for sw, count in summary["fallback_by_switch"].most_common():
            print(f"  sw {sw:4d}  {count}")
    if summary["shard_stats"]:
        print("parallel engine (per shard):")
        print("  shard  epochs    events  drains  msgs_drained  mean_batch  max_batch")
        for r in shard_rows(summary):
            mean = "-" if r["mean_batch"] is None else f"{r['mean_batch']:.1f}"
            print(f"  {r['shard']:5d}  {r['epochs']:6d}  {r['events']:8d}"
                  f"  {r['drains']:6d}  {r['msgs_drained']:12d}  {mean:>10s}"
                  f"  {r['max_batch']:9d}")
    convergence = summary["convergence"]
    rows = convergence.table()
    if rows:
        if convergence.first_failure is not None:
            print(f"first failure at t={convergence.first_failure:.6f} s")
        print("convergence:")
        print("  dst  flips  first_route_s  quiesced_s  post_fail_flips  reconverge_s")
        for r in rows:
            print(f"  {r['dst']:3d}  {r['flips']:5d}  {fmt_s(r['first_route_s']):>13s}"
                  f"  {fmt_s(r['quiesced_s']):>10s}  {r['post_failure_flips']:15d}"
                  f"  {fmt_s(r['reconvergence_s']):>12s}")
    waves = convergence.wave_table()
    if waves:
        print("CHURN (per-wave reconvergence; DESIGN.md s13):")
        print("  wave  t_start_s  class    flips  reconverge_s  trig_sw  trig_rec")
        for w in waves:
            print(f"  {w['wave']:4d}  {w['t_start_s']:9.6f}  {w['fault_class']:7s}"
                  f"  {w['flips']:5d}  {fmt_s(w['reconvergence_s']):>12s}"
                  f"  {w['trigger_width']:7d}  {w['trigger_records']:8d}")
        print("  class    waves  reacted  min_s     mean_s    max_s"
              "     trig_w_mean  trig_w_max")
        for c in convergence.class_table():
            print(f"  {c['fault_class']:7s}  {c['waves']:5d}  {c['reacted']:7d}"
                  f"  {fmt_s(c['min_s']):>8s}  {fmt_s(c['mean_s']):>8s}"
                  f"  {fmt_s(c['max_s']):>8s}  {c['mean_trigger_width']:11.1f}"
                  f"  {c['max_trigger_width']:10d}")
    if manifest is not None:
        print(f"manifest : {manifest_path}")
        print(f"  tool={manifest.get('tool')} topology={manifest.get('topology')}"
              f" plane={manifest.get('plane')} seed={manifest.get('seed')}"
              f" config_hash={manifest.get('config_hash')}")
    else:
        print(f"manifest : not found ({manifest_path})")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", nargs="?", help="trace JSONL file")
    parser.add_argument("--manifest", help="manifest path (default: derived from trace)")
    parser.add_argument("--top", type=int, default=5, help="top-N talkers/flappers (default 5)")
    parser.add_argument("--json", action="store_true", help="emit a JSON summary")
    parser.add_argument("--flows", metavar="FLOWS",
                        help="flow stream from contrasim --flows-out")
    parser.add_argument("--paths", metavar="PATHS",
                        help="sampled path records from contrasim --paths-out")
    parser.add_argument("--links", metavar="LINKS",
                        help="link timelines from contrasim --links-out")
    parser.add_argument("--metrics", metavar="METRICS",
                        help="metrics snapshot from contrasim --metrics-json "
                             "(last line of a periodic stream is used)")
    parser.add_argument("--validate-manifest", metavar="MANIFEST",
                        help="validate a manifest file and exit")
    args = parser.parse_args()

    if args.validate_manifest:
        problems = validate_manifest(args.validate_manifest)
        for problem in problems:
            print(f"telemetry_report: {problem}", file=sys.stderr)
        print(f"{args.validate_manifest}: {'INVALID' if problems else 'ok'}")
        return 1 if problems else 0

    if not args.trace and not (args.flows or args.paths or args.links):
        parser.error("need a trace file or a telemetry stream (--flows/--paths/--links)")

    def read_stream(path, key, summarize):
        if not path:
            return None
        try:
            rows, bad = read_jsonl(path, key)
        except OSError as e:
            sys.exit(f"telemetry_report: cannot read {path}: {e.strerror}")
        summary = summarize(rows)
        summary["bad_lines"] = bad
        return summary

    flows = read_stream(args.flows, "flow", lambda rows: flows_summary(rows, args.top))
    paths = read_stream(args.paths, "hops", paths_summary)
    links = read_stream(args.links, "link", lambda rows: link_hotspots(rows, args.top))

    triggered = None
    if args.metrics:
        try:
            with open(args.metrics) as f:
                lines = [line for line in f if line.strip()]
        except OSError as e:
            sys.exit(f"telemetry_report: cannot read {args.metrics}: {e.strerror}")
        if not lines:
            sys.exit(f"telemetry_report: {args.metrics} is empty")
        try:
            triggered = triggered_counters(json.loads(lines[-1]))
        except json.JSONDecodeError as e:
            sys.exit(f"telemetry_report: {args.metrics} is not valid JSON: {e}")

    summary = None
    manifest = None
    manifest_path = None
    if args.trace:
        try:
            summary = read_trace(args.trace)
        except OSError as e:
            sys.exit(f"telemetry_report: cannot read {args.trace}: {e.strerror}")
        manifest_path = args.manifest or manifest_path_for(args.trace)
        if os.path.exists(manifest_path):
            problems = validate_manifest(manifest_path)
            if problems:
                for problem in problems:
                    print(f"telemetry_report: manifest problem: {problem}", file=sys.stderr)
                return 1
            with open(manifest_path) as f:
                manifest = json.load(f)

    if args.json:
        out = {}
        if summary is not None:
            convergence = summary["convergence"]
            out.update({
                "trace": args.trace,
                "total_records": summary["total_records"],
                "bad_lines": summary["bad_lines"],
                "counts": summary["counts"],
                "top_probe_talkers": summary["probe_talkers"].most_common(args.top),
                "route_flap_leaders": summary["flap_leaders"].most_common(args.top),
                "probe_suppression_by_switch": suppression_rows(summary, args.top),
                "dense_fallback_by_switch": sorted(summary["fallback_by_switch"].items()),
                "triggered_by_switch": trigger_rows(summary, args.top),
                "parallel_engine": shard_rows(summary),
                "first_failure_s": convergence.first_failure,
                "convergence": convergence.table(),
                "churn_waves": convergence.wave_table(),
                "churn_by_class": convergence.class_table(),
                "manifest": manifest,
            })
        if triggered is not None:
            out["triggered"] = triggered
        if flows is not None:
            out["flows"] = flows
        if paths is not None:
            out["paths"] = paths
        if links is not None:
            out["link_hotspots"] = links
        print(json.dumps(out, indent=2))
    else:
        if summary is not None:
            print_report(args.trace, summary, manifest, manifest_path, args.top)
        print_triggered(summary, triggered, args.top)
        if flows is not None:
            print_flows(flows)
        if paths is not None:
            print_paths(paths)
        if links is not None:
            print_link_hotspots(links)
    return 0


if __name__ == "__main__":
    sys.exit(main())
