// contrac — the Contra policy compiler, as a command-line tool.
//
//   contrac --policy "minimize((path.len, path.util))" --builtin fat-tree:4 \
//           [--out <dir>] [--print-pg] [--print-analysis] [--quiet]
//   contrac --policy-file policy.txt --topology topo.txt --out p4/
//
// Prints the compilation report (pids, tags, PG size, analyses, probe period
// rule, per-switch state) and, with --out, writes one P4 program per switch
// plus a MANIFEST.
#include <cstdio>
#include <filesystem>

#include "cli_common.h"
#include "compiler/compiler.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "p4gen/p4gen.h"
#include "util/logging.h"

using namespace contra;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --policy \"minimize(...)\" | --policy-file <path>\n"
               "          [--topology <edge-list file> | --builtin <spec>]\n"
               "          [--out <dir>] [--print-pg] [--print-analysis] [--quiet]\n"
               "          [--allow-non-monotonic]\n"
               "builtin specs: fat-tree:<k>, leaf-spine:<l>x<s>, random:<n>:<seed>,\n"
               "               abilene, ring:<n>, grid:<r>x<c>, diamond\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  util::init_log_level_from_env();
  const tools::Args args(argc, argv);
  if (args.has("help")) return usage(argv[0]);

  std::string error;
  const auto policy_text = tools::load_policy_text(args, &error);
  if (!policy_text) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return usage(argv[0]);
  }
  const auto topo = tools::load_topology(args, &error);
  if (!topo) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return usage(argv[0]);
  }

  lang::Policy policy;
  try {
    policy = lang::parse_policy(*policy_text);
  } catch (const lang::ParseError& e) {
    std::fprintf(stderr, "policy parse error at offset %zu: %s\n", e.offset(), e.what());
    return 1;
  }

  compiler::CompileOptions options;
  options.require_monotonic = !args.has("allow-non-monotonic");

  compiler::CompileResult result;
  try {
    result = compiler::compile(policy, *topo, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "compile error: %s\n", e.what());
    return 1;
  }

  if (!args.has("quiet")) {
    std::printf("policy   : %s\n", lang::to_string(policy).c_str());
    std::printf("topology : %u switches, %u cables\n", topo->num_nodes(),
                topo->num_links() / 2);
    std::printf("compiled : %s\n", result.summary().c_str());
    std::printf("probe period lower bound (0.5 x max RTT): %.3f us\n",
                result.min_probe_period_s * 1e6);
    for (size_t pid = 0; pid < result.decomposition.subpolicies.size(); ++pid) {
      std::printf("  pid %zu minimizes %s\n", pid,
                  result.decomposition.subpolicies[pid].description.c_str());
    }
  }
  if (args.has("print-analysis")) {
    std::printf("monotonicity: %s\n", result.monotonicity.to_string().c_str());
    std::printf("isotonicity : %s\n", result.isotonicity.to_string().c_str());
  }
  if (args.has("print-pg")) {
    std::printf("%s", result.graph.to_string().c_str());
  }

  if (args.has("out")) {
    const std::filesystem::path dir = args.get("out");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create output dir %s: %s\n", dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
    std::string manifest = "# contrac output manifest\n# policy: " +
                           lang::to_string(policy) + "\n";
    for (const auto& cfg : result.switches) {
      const std::string filename = cfg.name + ".p4";
      if (!tools::write_file((dir / filename).string(),
                             p4gen::generate_p4(result, cfg))) {
        std::fprintf(stderr, "cannot write %s\n", (dir / filename).c_str());
        return 1;
      }
      manifest += filename + "  state_bytes=" + std::to_string(cfg.footprint.total_bytes()) +
                  (cfg.is_destination ? "  probe_origin tag=" + std::to_string(cfg.origin_tag)
                                      : "") +
                  "\n";
    }
    tools::write_file((dir / "MANIFEST").string(), manifest);
    if (!args.has("quiet")) {
      std::printf("wrote %zu P4 programs + MANIFEST to %s\n", result.switches.size(),
                  dir.c_str());
    }
  }
  return 0;
}
