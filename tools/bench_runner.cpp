// Multi-seed sweep runner: runs the fat-tree (or Abilene) experiment across a
// seed range on a worker thread pool and writes a machine-readable JSON
// summary (per-seed results + aggregate events/sec + parallel efficiency).
//
// Each seed is an independent simulation with its own Simulator/EventQueue,
// so the sweep parallelizes embarrassingly; efficiency below ~1 measures
// scheduler + memory-bandwidth friction, not algorithmic contention. With
// --merge the sweep is appended as a "sweep" section to an existing
// BENCH_core.json so one file carries both the microbenchmarks and the
// end-to-end sweep.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct SeedResult {
  uint64_t seed = 0;
  uint64_t events = 0;
  double wall_s = 0.0;
  double fct_mean_s = 0.0;
  double fct_p99_s = 0.0;
  size_t completed = 0;
};

struct SweepConfig {
  std::string topology = "fat_tree";  // or "abilene"
  uint64_t first_seed = 1;
  int num_seeds = 8;
  int threads = 0;  // 0 = hardware_concurrency
  double load = 0.4;
  double duration_s = 10e-3;
  /// > 0: run each seed on the sharded parallel engine with this many
  /// worker threads (deterministic; orthogonal to the seed-level --threads
  /// pool). 0 = serial engine.
  int workers = 0;
  int shards = 0;  ///< parallel engine shard count; 0 = topology default
};

SeedResult run_one(const SweepConfig& cfg, uint64_t seed) {
  SeedResult out;
  out.seed = seed;
  const auto start = Clock::now();
  contra::bench::ExperimentResult result;
  if (cfg.topology == "abilene") {
    contra::bench::AbileneExperiment exp;
    exp.seed = seed;
    exp.load = cfg.load;
    exp.duration_s = cfg.duration_s;
    exp.workers = static_cast<uint32_t>(cfg.workers);
    exp.shards = static_cast<uint32_t>(cfg.shards);
    result = contra::bench::run_abilene_experiment(exp);
  } else {
    contra::bench::FatTreeExperiment exp;
    exp.seed = seed;
    exp.load = cfg.load;
    exp.duration_s = cfg.duration_s;
    exp.drain_s = 0.05;
    exp.workers = static_cast<uint32_t>(cfg.workers);
    exp.shards = static_cast<uint32_t>(cfg.shards);
    result = contra::bench::run_fat_tree_experiment(exp);
  }
  out.wall_s = seconds_since(start);
  out.events = result.events_processed;
  out.fct_mean_s = result.fct.mean_s;
  out.fct_p99_s = result.fct.p99_s;
  out.completed = result.fct.completed;
  return out;
}

std::string render_json(const SweepConfig& cfg, const std::vector<SeedResult>& seeds,
                        double wall_s, int threads) {
  uint64_t total_events = 0;
  double sum_task_s = 0.0;
  for (const SeedResult& r : seeds) {
    total_events += r.events;
    sum_task_s += r.wall_s;
  }
  // Speedup over serial execution = sum of task times / elapsed wall;
  // efficiency normalizes by the worker count.
  const double efficiency = wall_s > 0 ? sum_task_s / (wall_s * threads) : 0.0;

  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"seed_sweep\",\n";
  os << "  \"topology\": \"" << cfg.topology << "\",\n";
  os << "  \"threads\": " << threads << ",\n";
  os << "  \"engine_workers\": " << cfg.workers << ",\n";
  os << "  \"engine_shards\": " << cfg.shards << ",\n";
  os << "  \"load\": " << cfg.load << ",\n";
  os << "  \"duration_s\": " << cfg.duration_s << ",\n";
  os << "  \"per_seed\": [\n";
  for (size_t i = 0; i < seeds.size(); ++i) {
    const SeedResult& r = seeds[i];
    os << "    {\"seed\": " << r.seed << ", \"events\": " << r.events
       << ", \"wall_s\": " << r.wall_s << ", \"completed_flows\": " << r.completed
       << ", \"fct_mean_s\": " << r.fct_mean_s << ", \"fct_p99_s\": " << r.fct_p99_s << "}"
       << (i + 1 < seeds.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"total_events\": " << total_events << ",\n";
  os << "  \"wall_s\": " << wall_s << ",\n";
  os << "  \"events_per_sec\": " << (wall_s > 0 ? total_events / wall_s : 0.0) << ",\n";
  os << "  \"sum_task_s\": " << sum_task_s << ",\n";
  os << "  \"parallel_efficiency\": " << efficiency << "\n";
  os << "}";
  return os.str();
}

/// Splices `sweep` into `path` as a top-level "sweep" key (the file must be a
/// JSON object; the existing contents are preserved).
bool merge_into(const std::string& path, const std::string& sweep) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_runner: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string body = buffer.str();
  const size_t brace = body.find_last_of('}');
  if (brace == std::string::npos) {
    std::fprintf(stderr, "bench_runner: %s is not a JSON object\n", path.c_str());
    return false;
  }
  body.resize(brace);  // drop the final '}' (and anything after)
  while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) body.pop_back();
  std::ofstream out(path);
  out << body << ",\n  \"sweep\": " << sweep << "\n}\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  SweepConfig cfg;
  std::string out_path = "BENCH_sweep.json";
  std::string merge_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--topo") cfg.topology = value();
    else if (arg == "--seeds") cfg.num_seeds = std::atoi(value());
    else if (arg == "--first-seed") cfg.first_seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--threads") cfg.threads = std::atoi(value());
    else if (arg == "--workers") cfg.workers = std::atoi(value());
    else if (arg == "--shards") cfg.shards = std::atoi(value());
    else if (arg == "--load") cfg.load = std::atof(value());
    else if (arg == "--duration") cfg.duration_s = std::atof(value());
    else if (arg == "--out") out_path = value();
    else if (arg == "--merge") merge_path = value();
    else {
      std::fprintf(stderr,
                   "usage: bench_runner [--topo fat_tree|abilene] [--seeds N] [--first-seed S]\n"
                   "                    [--threads N] [--load F] [--duration SEC]\n"
                   "                    [--workers N] [--shards N]   (parallel engine per seed)\n"
                   "                    [--out FILE] [--merge BENCH_core.json]\n");
      return 2;
    }
  }

  if (cfg.topology != "fat_tree" && cfg.topology != "abilene") {
    std::fprintf(stderr, "bench_runner: unknown --topo %s (want fat_tree or abilene)\n",
                 cfg.topology.c_str());
    return 2;
  }

  // With the parallel engine active, the engine owns the cores: default the
  // seed-level pool to one task at a time instead of oversubscribing.
  int threads = cfg.threads > 0 ? cfg.threads
                : cfg.workers > 0 ? 1
                                  : static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  if (threads > cfg.num_seeds) threads = cfg.num_seeds;

  std::vector<SeedResult> results(static_cast<size_t>(cfg.num_seeds));
  std::atomic<int> next{0};
  const auto start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (int i = next.fetch_add(1); i < cfg.num_seeds; i = next.fetch_add(1)) {
        results[static_cast<size_t>(i)] = run_one(cfg, cfg.first_seed + static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall_s = seconds_since(start);

  const std::string json = render_json(cfg, results, wall_s, threads);
  if (!merge_path.empty()) {
    if (!merge_into(merge_path, json)) return 1;
    std::printf("merged sweep into %s\n", merge_path.c_str());
  } else {
    std::ofstream out(out_path);
    out << json << "\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  uint64_t total_events = 0;
  double sum_task_s = 0.0;
  for (const SeedResult& r : results) {
    total_events += r.events;
    sum_task_s += r.wall_s;
  }
  std::printf("%s: %d seeds on %d threads: %llu events in %.3f s (%.0f ev/s), efficiency %.2f\n",
              cfg.topology.c_str(), cfg.num_seeds, threads,
              static_cast<unsigned long long>(total_events), wall_s,
              wall_s > 0 ? total_events / wall_s : 0.0,
              wall_s > 0 ? sum_task_s / (wall_s * threads) : 0.0);
  return 0;
}
