// contrafuzz — differential fuzzer for the Contra control plane.
//
// Each iteration derives a deterministic case from (seed, iteration):
// a random topology (topology/generators plus degenerate shapes), a random
// policy drawn from the language grammar (resampled until it passes the
// monotonicity gate), and an optional failure/recovery schedule. The case
// is compiled, simulated to quiescence (serially, and periodically under
// the parallel engine with --workers), and the converged FwdT/BestT state
// is checked against the centralized RouteOracle (src/oracle). Tag
// minimization is cross-checked against the un-minimized product graph on
// a subsample of iterations.
//
// On violation a minimized, self-contained repro file is written into the
// corpus directory; `contrafuzz --replay <file>` re-executes it. Replaying
// stamps `<file>.replayed` — tools/compare_bench.py --fuzz-corpus treats
// repros without a stamp as an unexamined regression and hard-fails.
//
// Usage:
//   contrafuzz --seed 1 --iterations 200 [--corpus DIR] [--workers-every 4]
//              [--tag-check-every 5] [--cross-check] [--cross-check-triggered]
//              [--fault-schedules] [--verbose]
//   contrafuzz --replay DIR/repro-<seed>.txt
//
// --cross-check arms two differentials on every quiesced run: the dense
// FwdT/BestT rows against the shadow PR 4 hash-map tables (reference_tables),
// and the delta-suppression protocol against an unsuppressed rerun of the
// same case, compared by a usable-entry content digest.
//
// --cross-check-triggered reruns every strictly monotonic quiesced case under
// the triggered-update engine (keepalive_rounds=4) and hard-fails unless both
// protocols reach the same usable-FwdT fixed point.
//
// --fault-schedules arms a generated ChurnEngine schedule on every case —
// flaps, shared-risk groups, gray failures, metric drift, maintenance
// drains, and control-plane restarts, all derived from a per-case churn
// seed. Schedules always end clean (links restored, gray healed), so the
// all-links-up quiescence oracle stays sound; restart-bearing schedules
// widen the quiesce budget by the version-reset escape window.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "oracle/checker.h"
#include "oracle/oracle.h"
#include "oracle/quiesce.h"
#include "sim/churn_engine.h"
#include "sim/failure_schedule.h"
#include "sim/parallel_simulator.h"
#include "sim/simulator.h"
#include "cli_common.h"
#include "topology/generators.h"
#include "topology/parser.h"
#include "util/hash.h"
#include "util/rng.h"

namespace contra {
namespace {

using lang::Expr;
using lang::ExprPtr;
using lang::Regex;
using lang::RegexPtr;

// ---------------------------------------------------------------------------
// Case model
// ---------------------------------------------------------------------------

struct FailEvent {
  double t = 0.0;
  std::string a, b;  ///< endpoint names (robust across topology reserialization)
  bool fail = true;
};

struct FuzzCase {
  uint64_t seed = 0;
  topology::Topology topo;
  std::string policy_text;
  std::vector<FailEvent> events;
  uint32_t workers = 0;  ///< 0 = serial engine
  /// Non-zero arms a ChurnEngine::generate fault schedule (flaps, SRGs, gray
  /// failures, drift, drains, restarts) derived from this seed. The schedule
  /// always ends clean, so the all-links-up quiescence oracle stays sound.
  uint64_t churn_seed = 0;
  double probe_period_s = 256e-6;
  bool suppression = true;   ///< probe delta-suppression (the shipping default)
  bool cross_check = false;  ///< dense-vs-reference + suppression differential
  bool triggered = false;    ///< run under the triggered-update engine
  /// Rerun strictly-monotonic cases under triggered updates and compare
  /// usable-FwdT fixed points against the periodic run.
  bool cross_check_triggered = false;
};

struct CaseResult {
  bool compiled = false;
  bool quiesced = false;
  oracle::CheckReport report;
  std::string error;  ///< compile/setup failure (not a violation)
  std::string cross_note;  ///< cross-check divergence (empty = agree)
  sim::Time quiesced_at = 0.0;
  uint64_t usable_digest = 0;  ///< usable-FwdT content digest at quiescence

  bool violated() const {
    return compiled && (!quiesced || !report.ok() || !cross_note.empty());
  }
};

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

topology::Topology random_topology(util::Rng& rng, uint64_t seed) {
  switch (rng.uniform_int(0, 9)) {
    case 0:
    case 1:
    case 2:
      return topology::random_connected(
          static_cast<uint32_t>(rng.uniform_int(4, 10)), 2.0 + rng.uniform() * 1.5, seed);
    case 3:
      return topology::ring(static_cast<uint32_t>(rng.uniform_int(3, 6)));
    case 4:
      return topology::line(static_cast<uint32_t>(rng.uniform_int(2, 5)));
    case 5:
      return topology::grid(static_cast<uint32_t>(rng.uniform_int(2, 3)),
                            static_cast<uint32_t>(rng.uniform_int(2, 3)));
    case 6:
      return topology::running_example();
    case 7:
      return topology::leaf_spine(static_cast<uint32_t>(rng.uniform_int(2, 4)),
                                  static_cast<uint32_t>(rng.uniform_int(2, 3)));
    case 8: {  // single node: zero-edge corner case
      topology::Topology t;
      t.add_node("solo");
      return t;
    }
    default: {  // disconnected islands: unreachable destinations
      topology::Topology t;
      const int n = static_cast<int>(rng.uniform_int(2, 4));
      for (int i = 0; i < n; ++i) t.add_node("iso" + std::to_string(i));
      if (n >= 4) t.add_link(0, 1, 10e9, 1e-6);  // one pair connected, rest isolated
      return t;
    }
  }
}

RegexPtr random_regex(util::Rng& rng, const std::vector<std::string>& names, int depth) {
  if (names.empty()) return Regex::star(Regex::dot());
  if (depth <= 0 || rng.uniform() < 0.4) {
    if (rng.uniform() < 0.4) return Regex::dot();
    return Regex::make_node(names[rng.uniform_int(0, names.size() - 1)]);
  }
  switch (rng.uniform_int(0, 2)) {
    case 0:
      return Regex::make_union(random_regex(rng, names, depth - 1),
                               random_regex(rng, names, depth - 1));
    case 1:
      return Regex::concat(random_regex(rng, names, depth - 1),
                           random_regex(rng, names, depth - 1));
    default:
      return Regex::star(random_regex(rng, names, depth - 1));
  }
}

/// Monotone-friendly metric expressions (isotonic and weakly non-isotonic
/// shapes both appear; the checker adapts via the isotonicity report).
ExprPtr random_metric(util::Rng& rng) {
  const auto attr = [&] {
    return Expr::attribute(static_cast<lang::PathAttr>(rng.uniform_int(0, 2)));
  };
  switch (rng.uniform_int(0, 6)) {
    case 0: return Expr::attribute(lang::PathAttr::kLen);
    case 1: return Expr::attribute(lang::PathAttr::kLat);
    case 2: return Expr::attribute(lang::PathAttr::kUtil);
    case 3: return Expr::binop(lang::BinOp::kAdd, attr(),
                               Expr::constant(static_cast<double>(rng.uniform_int(0, 8))));
    case 4: return Expr::tuple({attr(), attr()});
    case 5: return Expr::binop(lang::BinOp::kAdd, Expr::attribute(lang::PathAttr::kLat),
                               Expr::attribute(lang::PathAttr::kLen));
    default: return Expr::tuple({attr(), attr(), attr()});
  }
}

lang::Policy random_policy(util::Rng& rng, const topology::Topology& topo) {
  std::vector<std::string> names;
  for (topology::NodeId n = 0; n < topo.num_nodes() && names.size() < 4; ++n) {
    if (rng.uniform() < 0.6) names.push_back(topo.name(n));
  }
  const double r = rng.uniform();
  if (r < 0.30) return lang::Policy{random_metric(rng)};
  if (r < 0.55) {
    // Regex-gated policy (waypoint / link-preference shape).
    RegexPtr guard = rng.uniform() < 0.5 && !names.empty()
                         ? Regex::concat(Regex::star(Regex::dot()),
                                         Regex::concat(Regex::make_node(names[0]),
                                                       Regex::star(Regex::dot())))
                         : random_regex(rng, names, 2);
    const ExprPtr fallback = rng.uniform() < 0.6
                                 ? Expr::infinity()
                                 : Expr::binop(lang::BinOp::kAdd, random_metric(rng),
                                               Expr::constant(10.0));
    return lang::Policy{
        Expr::if_then_else(lang::BoolTest::regex_test(guard), random_metric(rng), fallback)};
  }
  if (r < 0.80) {
    // Dynamic-test policy (congestion-aware shape) — exercises decomposition.
    const auto test = lang::BoolTest::compare(
        lang::BoolTest::CmpOp::kLt,
        Expr::attribute(static_cast<lang::PathAttr>(rng.uniform_int(0, 2))),
        Expr::constant(rng.uniform() * 8));
    return lang::Policy{Expr::if_then_else(test, random_metric(rng), random_metric(rng))};
  }
  // Wild card: unconstrained grammar walk; mostly rejected by the
  // monotonicity gate, occasionally yields genuinely odd accepted policies.
  std::function<ExprPtr(int)> wild = [&](int depth) -> ExprPtr {
    if (depth <= 0 || rng.uniform() < 0.35) {
      switch (rng.uniform_int(0, 2)) {
        case 0: return Expr::constant(static_cast<double>(rng.uniform_int(0, 10)));
        case 1: return Expr::infinity();
        default: return Expr::attribute(static_cast<lang::PathAttr>(rng.uniform_int(0, 2)));
      }
    }
    switch (rng.uniform_int(0, 2)) {
      case 0:
        return Expr::binop(static_cast<lang::BinOp>(rng.uniform_int(0, 3)), wild(depth - 1),
                           wild(depth - 1));
      case 1:
        return Expr::if_then_else(lang::BoolTest::regex_test(random_regex(rng, names, 2)),
                                  wild(depth - 1), wild(depth - 1));
      default:
        return Expr::tuple({wild(depth - 1), wild(depth - 1)});
    }
  };
  return lang::Policy{wild(3)};
}

FuzzCase generate_case(uint64_t run_seed, uint64_t iteration) {
  const uint64_t seed = util::mix64(util::hash_combine(run_seed, iteration));
  util::Rng rng(seed);
  FuzzCase c;
  c.seed = seed;
  c.topo = random_topology(rng, seed);

  // Resample policies until one compiles (monotonicity gate + decomposition
  // bounds); degenerate "all destinations forbidden" policies are kept —
  // they exercise the trivial-fixed-point path.
  for (int attempt = 0;; ++attempt) {
    const lang::Policy policy = random_policy(rng, c.topo);
    try {
      (void)compiler::compile(policy, c.topo);
      c.policy_text = lang::to_string(policy);
      break;
    } catch (const std::exception&) {
      if (attempt >= 60) {
        c.policy_text = "minimize(path.len)";
        break;
      }
    }
  }

  // Failure schedule: up to two cable events; destinations may die and
  // revive. Times are in probe periods past start.
  if (c.topo.num_links() > 0 && rng.uniform() < 0.5) {
    const int cables = static_cast<int>(rng.uniform_int(1, 2));
    for (int i = 0; i < cables; ++i) {
      const topology::LinkId link =
          static_cast<topology::LinkId>(rng.uniform_int(0, c.topo.num_links() - 1));
      const auto& l = c.topo.link(link);
      const double t_fail = (4.0 + rng.uniform() * 6.0) * c.probe_period_s;
      c.events.push_back({t_fail, c.topo.name(l.from), c.topo.name(l.to), true});
      if (rng.uniform() < 0.4) {
        c.events.push_back(
            {t_fail + (3.0 + rng.uniform() * 5.0) * c.probe_period_s,
             c.topo.name(l.from), c.topo.name(l.to), false});
      }
    }
  }
  return c;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Final cable state after replaying the event list (oracle's link view).
oracle::LinkState final_link_state(const FuzzCase& c) {
  oracle::LinkState state = oracle::LinkState::all_up(c.topo);
  // The simulator applies cable events in time order; the event vector is not
  // necessarily sorted (and repro files may list events in any order).
  std::vector<FailEvent> events = c.events;
  std::stable_sort(events.begin(), events.end(),
                   [](const FailEvent& x, const FailEvent& y) { return x.t < y.t; });
  for (const FailEvent& e : events) {
    const topology::NodeId a = c.topo.find(e.a);
    const topology::NodeId b = c.topo.find(e.b);
    const topology::LinkId l = c.topo.link_between(a, b);
    if (l == topology::kInvalidLink) continue;
    state.up[l] = !e.fail;
    state.up[c.topo.link(l).reverse] = !e.fail;
  }
  return state;
}

CaseResult run_case(const FuzzCase& c, bool verbose) {
  CaseResult result;
  compiler::CompileResult compiled;
  try {
    compiled = compiler::compile(c.policy_text, c.topo);
  } catch (const std::exception& e) {
    result.error = std::string("compile failed: ") + e.what();
    return result;
  }
  result.compiled = true;
  const pg::PolicyEvaluator evaluator(compiled.graph, compiled.decomposition);

  dataplane::ContraSwitchOptions options;
  options.probe_period_s = std::max(c.probe_period_s, compiled.min_probe_period_s);
  // Idle-exact mode: with a full-scale quantum, probe-only utilization
  // quantizes to exactly 0 on every link, matching the oracle's idle view
  // (see the checker's tolerance model). It also makes the suppression
  // differential exact: both protocol variants measure identical (zero)
  // utilization even though they emit different probe loads.
  options.util_quantum = 1.0;
  options.probe_suppression = c.suppression;
  options.reference_tables = c.cross_check;
  options.triggered_updates = c.triggered;
  if (c.triggered) {
    // Small keepalive window so fuzz cases converge in few rounds; hold-down
    // short enough that failure waves settle inside the quiesce budget.
    options.keepalive_rounds = 4;
    options.holddown_periods = 2.0;
  }
  // Triggered runs change state only on keepalive rounds / trigger waves, so
  // every protocol timing window — and the quiescence sampler below — spans
  // keepalive_rounds probe periods instead of one.
  const double wscale = c.triggered ? static_cast<double>(options.keepalive_rounds) : 1.0;

  // Generated fault-schedule churn (--fault-schedules). Times are fixed
  // multiples of the configured probe period, independent of the protocol
  // variant, so a repro's churn-seed fully determines the schedule.
  sim::ChurnEngine churn(c.topo);
  if (c.churn_seed != 0 && c.topo.num_links() > 0) {
    churn.generate(c.churn_seed, 4.0 * c.probe_period_s, 28.0 * c.probe_period_s, 2);
  }

  // The generated churn is independent of the base event list, so a clean-
  // ending churn wave can restore a cable the base schedule failed for good —
  // and the quiesced network would then disagree with final_link_state()'s
  // view. Re-assert every net-down base failure after the churn clears;
  // fail_cable is idempotent, so re-failing an already-down cable is a no-op
  // (no telemetry, no port signal) when there was no conflict.
  std::vector<topology::LinkId> reassert_downs;
  double reassert_t = 0.0;
  if (churn.last_event_time() > 0.0) {
    const oracle::LinkState final_state = final_link_state(c);
    for (topology::LinkId l = 0; l < c.topo.num_links(); ++l) {
      if (!final_state.up[l] && l < c.topo.link(l).reverse) reassert_downs.push_back(l);
    }
    if (!reassert_downs.empty()) {
      reassert_t = churn.last_event_time() + options.probe_period_s;
      for (const FailEvent& e : c.events) {
        reassert_t = std::max(reassert_t, e.t + options.probe_period_s);
      }
    }
  }

  double last_event = 0.0;
  for (const FailEvent& e : c.events) last_event = std::max(last_event, e.t);
  last_event = std::max(last_event, churn.last_event_time());
  last_event = std::max(last_event, reassert_t);
  oracle::QuiesceOptions qopts;
  qopts.probe_period_s = options.probe_period_s * wscale;
  qopts.start_s = last_event +
                  (options.metric_expiry_periods + options.failure_detect_periods + 4.0) *
                      options.probe_period_s * wscale;
  // Restarted control planes may need the DSDV version-reset escape before
  // their origin rounds are adopted again; widen the budget only then.
  if (churn.has_restarts()) {
    qopts.start_s += options.version_reset_periods * options.probe_period_s * wscale;
  }
  qopts.max_time_s = qopts.start_s + 400.0 * options.probe_period_s * wscale;

  auto resolve = [&](const FailEvent& e) {
    return c.topo.link_between(c.topo.find(e.a), c.topo.find(e.b));
  };

  oracle::QuiesceResult q;
  std::vector<const dataplane::ContraSwitch*> view;
  sim::SimConfig cfg;
  if (c.workers == 0) {
    sim::Simulator sim(c.topo, cfg);
    auto switches = dataplane::install_contra_network(sim, compiled, evaluator, options);
    sim::FailureSchedule schedule;
    for (const FailEvent& e : c.events) {
      const topology::LinkId l = resolve(e);
      if (l == topology::kInvalidLink) continue;
      if (e.fail) schedule.fail_at(e.t, l);
      else schedule.restore_at(e.t, l);
    }
    for (const topology::LinkId l : reassert_downs) schedule.fail_at(reassert_t, l);
    schedule.arm(sim);
    churn.arm(sim);
    sim.start();
    q = oracle::run_to_quiescence(sim, switches, qopts);
    result.quiesced = q.quiesced;
    result.quiesced_at = q.at;
    view.assign(switches.begin(), switches.end());
    if (result.quiesced) {
      oracle::RouteOracle oracle(compiled.graph, evaluator, final_link_state(c));
      result.report = oracle::check_invariants(
          oracle, view, q.at, oracle::options_for(compiled.isotonicity));
      result.usable_digest = oracle::usable_fwdt_digest(view, q.at);
      if (c.cross_check) {
        // Dense FwdT/BestT vs the shadow PR 4 hash-map tables, every switch.
        for (const dataplane::ContraSwitch* sw : view) {
          const std::string diff = sw->check_reference_parity(q.at);
          if (!diff.empty()) {
            result.cross_note = "dense/reference parity: " + diff;
            break;
          }
        }
      }
    }
  } else {
    cfg.workers = c.workers;
    sim::ParallelSimulator psim(c.topo, cfg);
    std::vector<dataplane::ContraSwitch*> switches;
    psim.for_each_shard([&](sim::Simulator& shard_sim) {
      auto owned = dataplane::install_contra_network(shard_sim, compiled, evaluator, options);
      switches.insert(switches.end(), owned.begin(), owned.end());
    });
    for (const FailEvent& e : c.events) {
      const topology::LinkId l = resolve(e);
      if (l != topology::kInvalidLink) psim.schedule_cable_event(e.t, l, e.fail);
    }
    for (const topology::LinkId l : reassert_downs) psim.schedule_cable_event(reassert_t, l, true);
    churn.arm(psim);
    psim.start();
    q = oracle::run_to_quiescence(psim, switches, qopts);
    result.quiesced = q.quiesced;
    result.quiesced_at = q.at;
    view.assign(switches.begin(), switches.end());
    if (result.quiesced) {
      oracle::RouteOracle oracle(compiled.graph, evaluator, final_link_state(c));
      result.report = oracle::check_invariants(
          oracle, view, q.at, oracle::options_for(compiled.isotonicity));
      result.usable_digest = oracle::usable_fwdt_digest(view, q.at);
      if (c.cross_check) {
        // Dense FwdT/BestT vs the shadow PR 4 hash-map tables, every switch.
        for (const dataplane::ContraSwitch* sw : view) {
          const std::string diff = sw->check_reference_parity(q.at);
          if (!diff.empty()) {
            result.cross_note = "dense/reference parity: " + diff;
            break;
          }
        }
      }
    }
  }
  // Suppression differential: the same case under the legacy (unsuppressed)
  // protocol must reach the same usable-FwdT fixed point. Runs only when the
  // primary is the suppressed variant (the recursion bottoms out because the
  // rerun clears cross_check).
  if (c.cross_check && c.suppression && result.quiesced && result.cross_note.empty()) {
    FuzzCase legacy = c;
    legacy.cross_check = false;
    legacy.cross_check_triggered = false;
    legacy.suppression = false;
    const CaseResult ref = run_case(legacy, false);
    if (!ref.quiesced) {
      result.cross_note = "unsuppressed rerun failed to quiesce";
    } else if (ref.usable_digest != result.usable_digest) {
      result.cross_note = "suppression on/off usable-FwdT fixed points differ";
    }
  }
  // Triggered differential: rerun the case under the triggered-update engine
  // and compare usable-FwdT fixed points. Gated on strict monotonicity — with
  // rank ties the two protocols may legitimately settle on different
  // equal-rank paths (DESIGN.md §12), so only strictly ranked policies are a
  // hard digest gate.
  if (c.cross_check_triggered && !c.triggered && result.quiesced && result.cross_note.empty() &&
      compiled.monotonicity.strictly_monotonic) {
    FuzzCase trig = c;
    trig.cross_check = false;
    trig.cross_check_triggered = false;
    trig.triggered = true;
    const CaseResult ref = run_case(trig, false);
    if (!ref.quiesced) {
      result.cross_note = "triggered rerun failed to quiesce";
    } else if (ref.usable_digest != result.usable_digest) {
      result.cross_note = "triggered/periodic usable-FwdT fixed points differ";
    }
  }
  if (verbose) {
    std::cerr << "  policy: " << c.policy_text << "\n  topo: " << c.topo.num_nodes()
              << " nodes / " << c.topo.num_links() << " half-links, events=" << c.events.size()
              << ", workers=" << c.workers << ", quiesced="
              << (result.quiesced ? "yes" : "NO") << " @" << result.quiesced_at << "s\n";
  }
  return result;
}

// ---------------------------------------------------------------------------
// Repro files
// ---------------------------------------------------------------------------

std::string format_repro(const FuzzCase& c, const CaseResult& result) {
  std::ostringstream out;
  out << "# contrafuzz violation repro (v1)\n";
  if (!result.quiesced) {
    out << "# network failed to quiesce\n";
  }
  for (const oracle::Violation& v : result.report.violations) {
    out << "# " << v.to_string(c.topo) << "\n";
  }
  if (!result.cross_note.empty()) {
    out << "# cross-check: " << result.cross_note << "\n";
  }
  out << "seed " << c.seed << "\n";
  out << "workers " << c.workers << "\n";
  if (c.cross_check) out << "cross-check 1\n";
  if (c.cross_check_triggered) out << "cross-check-triggered 1\n";
  if (c.triggered) out << "triggered 1\n";
  if (!c.suppression) out << "suppression 0\n";
  if (c.churn_seed != 0) out << "churn-seed " << c.churn_seed << "\n";
  out << "probe-period " << c.probe_period_s << "\n";
  out << "policy " << c.policy_text << "\n";
  for (const FailEvent& e : c.events) {
    out << (e.fail ? "fail " : "restore ") << e.t << " " << e.a << " " << e.b << "\n";
  }
  out << "topology\n" << topology::format_topology(c.topo) << "end\n";
  return out.str();
}

std::optional<FuzzCase> parse_repro(const std::string& text, std::string* error) {
  FuzzCase c;
  std::istringstream in(text);
  std::string line;
  std::string topo_text;
  bool in_topo = false;
  bool saw_topo = false;
  while (std::getline(in, line)) {
    if (in_topo) {
      if (line == "end") {
        in_topo = false;
        continue;
      }
      topo_text += line + "\n";
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "seed") {
      ls >> c.seed;
    } else if (key == "workers") {
      ls >> c.workers;
    } else if (key == "cross-check") {
      int v = 0;
      ls >> v;
      c.cross_check = v != 0;
    } else if (key == "cross-check-triggered") {
      int v = 0;
      ls >> v;
      c.cross_check_triggered = v != 0;
    } else if (key == "triggered") {
      int v = 0;
      ls >> v;
      c.triggered = v != 0;
    } else if (key == "suppression") {
      int v = 1;
      ls >> v;
      c.suppression = v != 0;
    } else if (key == "churn-seed") {
      ls >> c.churn_seed;
    } else if (key == "probe-period") {
      ls >> c.probe_period_s;
    } else if (key == "policy") {
      std::getline(ls, c.policy_text);
      const size_t start = c.policy_text.find_first_not_of(' ');
      c.policy_text = start == std::string::npos ? "" : c.policy_text.substr(start);
    } else if (key == "fail" || key == "restore") {
      FailEvent e;
      e.fail = key == "fail";
      ls >> e.t >> e.a >> e.b;
      c.events.push_back(std::move(e));
    } else if (key == "topology") {
      in_topo = true;
      saw_topo = true;
    } else {
      *error = "unknown repro directive: " + key;
      return std::nullopt;
    }
  }
  if (!saw_topo || c.policy_text.empty()) {
    *error = "repro file missing topology or policy";
    return std::nullopt;
  }
  try {
    c.topo = topology::parse_topology(topo_text);
  } catch (const std::exception& e) {
    *error = std::string("bad topology section: ") + e.what();
    return std::nullopt;
  }
  return c;
}

/// Greedy minimization: prefer a serial repro over a parallel one, then drop
/// failure events that are not needed to reproduce the violation.
FuzzCase minimize_case(FuzzCase c) {
  auto still_violates = [](const FuzzCase& candidate) {
    return run_case(candidate, false).violated();
  };
  if (c.workers != 0) {
    FuzzCase serial = c;
    serial.workers = 0;
    if (still_violates(serial)) c = std::move(serial);
  }
  // Churn first: a repro that reproduces without the generated fault
  // schedule is far easier to reason about than one that needs it.
  if (c.churn_seed != 0) {
    FuzzCase calm = c;
    calm.churn_seed = 0;
    if (still_violates(calm)) c = std::move(calm);
  }
  for (size_t i = c.events.size(); i-- > 0;) {
    FuzzCase fewer = c;
    fewer.events.erase(fewer.events.begin() + static_cast<long>(i));
    if (still_violates(fewer)) c = std::move(fewer);
  }
  return c;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

int replay(const std::string& path) {
  const auto text = tools::read_file(path);
  if (!text) {
    std::cerr << "cannot read repro: " << path << "\n";
    return 1;
  }
  std::string error;
  const auto c = parse_repro(*text, &error);
  if (!c) {
    std::cerr << "bad repro file: " << error << "\n";
    return 1;
  }
  const CaseResult result = run_case(*c, true);
  std::ostringstream summary;
  if (!result.compiled) {
    summary << "replay error: " << result.error << "\n";
  } else if (!result.quiesced) {
    summary << "VIOLATION reproduced: network failed to quiesce\n";
  } else {
    summary << (result.violated() ? "VIOLATION reproduced\n" : "violation did NOT reproduce\n");
    if (!result.cross_note.empty()) summary << "cross-check: " << result.cross_note << "\n";
    summary << result.report.to_string(c->topo) << "\n";
  }
  std::cout << summary.str();
  tools::write_file(path + ".replayed", summary.str());
  return result.violated() ? 2 : 0;
}

}  // namespace
}  // namespace contra

int main(int argc, char** argv) {
  using namespace contra;
  tools::Args args(argc, argv);
  if (args.has("replay")) return replay(args.get("replay"));

  const uint64_t seed = static_cast<uint64_t>(args.get_int("seed", 1));
  const uint64_t iterations = static_cast<uint64_t>(args.get_int("iterations", 100));
  const std::string corpus = args.get("corpus", "fuzz-corpus");
  const uint64_t workers_every = static_cast<uint64_t>(args.get_int("workers-every", 4));
  const uint64_t tag_check_every = static_cast<uint64_t>(args.get_int("tag-check-every", 5));
  const bool cross_check = args.has("cross-check");
  const bool cross_check_triggered = args.has("cross-check-triggered");
  const bool fault_schedules = args.has("fault-schedules");
  const bool verbose = args.has("verbose");

  uint64_t violations = 0;
  uint64_t compile_skips = 0;
  uint64_t tag_checks = 0;
  uint64_t parallel_runs = 0;
  for (uint64_t i = 0; i < iterations; ++i) {
    FuzzCase c = generate_case(seed, i);
    c.cross_check = cross_check;
    c.cross_check_triggered = cross_check_triggered;
    if (fault_schedules) c.churn_seed = util::mix64(c.seed ^ 0x6661756c74736368ULL);
    if (workers_every > 0 && i % workers_every == workers_every - 1) {
      c.workers = (i / workers_every) % 2 == 0 ? 2 : 4;
      ++parallel_runs;
    }
    if (verbose) std::cerr << "iteration " << i << " (case seed " << c.seed << ")\n";
    CaseResult result = run_case(c, verbose);
    if (!result.compiled) {
      ++compile_skips;
      if (verbose) std::cerr << "  skipped: " << result.error << "\n";
      continue;
    }
    bool violated = result.violated();

    // Tag-minimization differential on a subsample (it recompiles the PG).
    if (!violated && tag_check_every > 0 && i % tag_check_every == tag_check_every - 1) {
      try {
        const compiler::CompileResult compiled = compiler::compile(c.policy_text, c.topo);
        const auto tag_report =
            oracle::check_tag_minimization(compiled, final_link_state(c));
        ++tag_checks;
        if (!tag_report.ok()) {
          result.report = tag_report;
          violated = true;
        }
      } catch (const std::exception&) {
        // compile raced a non-deterministic resource limit; ignore
      }
    }

    if (violated) {
      ++violations;
      std::cerr << "VIOLATION at iteration " << i << " (case seed " << c.seed << ")\n";
      const FuzzCase minimized = minimize_case(c);
      const CaseResult final_result = run_case(minimized, false);
      std::filesystem::create_directories(corpus);
      const std::string path = corpus + "/repro-" + std::to_string(c.seed) + ".txt";
      tools::write_file(path, format_repro(minimized, final_result.violated()
                                                          ? final_result
                                                          : result));
      std::cerr << format_repro(minimized, final_result.violated() ? final_result : result);
      std::cerr << "repro written: " << path << "\n";
    }
  }

  std::cout << "contrafuzz: " << iterations << " iterations, " << violations
            << " violations, " << compile_skips << " compile-skips, " << tag_checks
            << " tag-merge checks, " << parallel_runs << " parallel runs"
            << (cross_check ? ", cross-check armed" : "")
            << (cross_check_triggered ? ", triggered cross-check armed" : "")
            << (fault_schedules ? ", fault schedules armed" : "") << " (seed "
            << seed << ")\n";
  return violations == 0 ? 0 : 2;
}
