#!/usr/bin/env python3
"""Compare two bench_core_speed JSON reports and fail on regression.

Usage:
  compare_bench.py BASELINE.json CURRENT.json [--threshold 0.10]
  compare_bench.py --self CURRENT.json [--threshold 0.10]
  compare_bench.py --gates-only CURRENT.json
  compare_bench.py --fuzz-corpus DIR

Each scenario's events_per_sec in CURRENT must be no more than `threshold`
below BASELINE (default 10%). Probe scenarios carry two extra hard gates:
probes_per_s (workload-normalized control-plane throughput) obeys the same
threshold when both reports record it, and any dense_fallback_hits > 0 in
CURRENT fails outright — a fallback means a probe key escaped the compiled
dense FwdT universe, which is a compiler/dataplane contract break, not a
perf wobble. Scenarios named *_off are overhead-contract runs (telemetry /
flow tracking disabled): any allocs_per_event != 0 in CURRENT fails
outright, mirroring the bench binary's own exit-1 zero-allocation gate.
Triggered-update scenarios add three more hard gates on CURRENT alone:
any scenario reporting digest_match=false fails (the triggered engine
landed on a different usable-FwdT fixed point than the periodic one — a
protocol break), probe_steady_state's steady_state_reduction must stay
>= 0.90 (the §12 tentpole: keepalive-only steady traffic), and
probe_failure_wave's wave_ratio must stay < 1.0 (a triggered failure
wave may not cost more probes than the periodic recovery).
Hybrid scale scenarios (hybrid_*) carry three more hard gates on CURRENT
alone, mirroring the bench binary's own exit-1 gates: event_ratio >= 50
(the §14 tentpole — a hybrid run must simulate at least 50x fewer events
than the projected pure packet-level cost), steady_window_allocs == 0
(the warm fluid tick allocates nothing), and rss_peak_mib within the
scenario's recorded rss_ceiling_mib. Because the hybrid scenarios run
once (no best-of-N) and their wall time is dominated by control-plane
convergence, their events_per_sec is reported informationally, never
gated — and a baseline hybrid_* scenario missing from CURRENT is skipped
rather than failed (CI's bench-smoke runs with --no-hybrid; the
scale-smoke job carries the hybrid gates instead).

--gates-only CURRENT.json runs only the current-only hard gates
(dense fallbacks, *_off allocs, digest_match, triggered thresholds,
hybrid_* scale gates) with no baseline comparison — the mode CI's
scale-smoke job uses on a reduced-flow-count hybrid run.
Baselines predating these keys are tolerated (events_per_sec gate only). With --self, CURRENT's embedded "baseline" section (written by
bench_core_speed --baseline-json) is the reference.
Exit code 0 = ok, 1 = regression, 2 = bad input.

The gate keys only on the serial "scenarios" section. A "parallel_scaling"
section (the sharded engine's worker sweep plus the per-channel vs
global-min lookahead A/B) is reported informationally — thread scaling is
machine-dependent, so it never fails the gate, with three exceptions:
bit_identical=false and lookahead_ab.digest_match=false in CURRENT are
determinism breaks and fail, and when CURRENT records
hardware_concurrency >= 8 (the bench binary measures and embeds it) the
8-worker sweep must show a real engine speedup: speedup_w8 >= 2.0. The
core-count key makes the gate self-activating — laptop and CI runs with
fewer cores keep the informational behavior, big machines are held to the
scaling contract.

--fuzz-corpus is an unrelated gate sharing this entry point: it hard-fails
(exit 1) when DIR contains contrafuzz violation repros (repro-*.txt) that
were never triaged with `contrafuzz --replay` (no .replayed stamp next to
them). A missing DIR is fine — nothing to triage.
"""

import argparse
import glob
import json
import os
import sys


def check_fuzz_corpus(corpus_dir):
    if not os.path.isdir(corpus_dir):
        print(f"fuzz-corpus: {corpus_dir} does not exist — nothing to triage")
        return 0
    repros = sorted(glob.glob(os.path.join(corpus_dir, "repro-*.txt")))
    unreplayed = [r for r in repros if not os.path.exists(r + ".replayed")]
    for r in repros:
        status = "UNREPLAYED" if r in unreplayed else "ok"
        print(f"{status:10s} {r}")
    if unreplayed:
        print(f"fuzz-corpus: {len(unreplayed)} violation repro(s) without a "
              f".replayed stamp — run `contrafuzz --replay <file>` to triage",
              file=sys.stderr)
        return 1
    print(f"fuzz-corpus: {len(repros)} repro(s), all replayed")
    return 0


def load_report(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"compare_bench: cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(f"compare_bench: {path} is not valid JSON: {e}")


def load_scenarios(report, where):
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        sys.exit(f"compare_bench: no scenarios in {where}")
    return scenarios


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="BASELINE CURRENT, or CURRENT with --self")
    parser.add_argument("--self", dest="use_self", action="store_true",
                        help="compare CURRENT against its embedded baseline section")
    parser.add_argument("--gates-only", dest="gates_only", action="store_true",
                        help="run only the current-only hard gates on CURRENT "
                             "(no baseline comparison)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional events/sec drop (default 0.10)")
    parser.add_argument("--fuzz-corpus", metavar="DIR",
                        help="fail on unreplayed contrafuzz repros in DIR")
    args = parser.parse_args()

    if args.fuzz_corpus is not None:
        if args.files:
            sys.exit("compare_bench: --fuzz-corpus takes no report files")
        return check_fuzz_corpus(args.fuzz_corpus)

    if not args.files:
        sys.exit("compare_bench: need report files (or --fuzz-corpus DIR)")

    if args.gates_only:
        if len(args.files) != 1:
            sys.exit("compare_bench: --gates-only takes exactly one file")
        current_report = load_report(args.files[0])
        baseline_report = {"scenarios": {}}
        baseline_name = "(gates-only)"
        current_name = args.files[0]
    elif args.use_self:
        if len(args.files) != 1:
            sys.exit("compare_bench: --self takes exactly one file")
        current_report = load_report(args.files[0])
        baseline_report = current_report.get("baseline")
        if not isinstance(baseline_report, dict):
            sys.exit(f"compare_bench: {args.files[0]} has no embedded baseline")
        baseline_name = f"{args.files[0]}#baseline"
        current_name = args.files[0]
    else:
        if len(args.files) != 2:
            sys.exit("compare_bench: need BASELINE and CURRENT files")
        baseline_report = load_report(args.files[0])
        current_report = load_report(args.files[1])
        baseline_name, current_name = args.files

    baseline = {} if args.gates_only else load_scenarios(baseline_report, baseline_name)
    current = load_scenarios(current_report, current_name)

    failed = False
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            # Hybrid scale scenarios run once and are expensive; bench-smoke
            # skips them with --no-hybrid, so a tracked hybrid_* baseline
            # absent from CURRENT is expected (the scale-smoke job gates it).
            if name.startswith("hybrid_"):
                print(f"SKIP       {name}: hybrid scenario absent in current "
                      f"(gated by scale-smoke, not here)")
                continue
            print(f"MISSING  {name}: present in baseline, absent in current")
            failed = True
            continue
        base_eps = float(base["events_per_sec"])
        cur_eps = float(cur["events_per_sec"])
        ratio = cur_eps / base_eps if base_eps > 0 else float("inf")
        if name.startswith("hybrid_"):
            # Single-shot runs dominated by control-plane convergence: their
            # throughput is machine- and scale-dependent, never gated.
            print(f"INFO       {name}: {base_eps:,.0f} -> {cur_eps:,.0f} ev/s "
                  f"({(ratio - 1) * 100:+.1f}%, informational)")
            continue
        status = "OK" if ratio >= 1.0 - args.threshold else "REGRESSION"
        if status != "OK":
            failed = True
        print(f"{status:10s} {name}: {base_eps:,.0f} -> {cur_eps:,.0f} ev/s "
              f"({(ratio - 1) * 100:+.1f}%)")
        if "probes_per_s" in base and "probes_per_s" in cur:
            base_pps = float(base["probes_per_s"])
            cur_pps = float(cur["probes_per_s"])
            pps_ratio = cur_pps / base_pps if base_pps > 0 else float("inf")
            pps_status = "OK" if pps_ratio >= 1.0 - args.threshold else "REGRESSION"
            if pps_status != "OK":
                failed = True
            print(f"{pps_status:10s} {name}: {base_pps:,.0f} -> {cur_pps:,.0f} probes/s "
                  f"({(pps_ratio - 1) * 100:+.1f}%)")
        if "fwdt_lookup_ns" in base and "fwdt_lookup_ns" in cur:
            print(f"INFO       {name}: fwdt_lookup "
                  f"{float(base['fwdt_lookup_ns']):.2f} -> "
                  f"{float(cur['fwdt_lookup_ns']):.2f} ns (informational)")

    # dense_fallback_hits is a correctness gate on CURRENT alone: no baseline
    # needed, and zero is the only passing value.
    for name, cur in sorted(current.items()):
        hits = cur.get("dense_fallback_hits")
        if hits is not None and int(hits) > 0:
            print(f"FALLBACK   {name}: dense_fallback_hits={int(hits)} (want 0) "
                  f"— probe key escaped the compiled dense FwdT universe",
                  file=sys.stderr)
            failed = True
        # *_off scenarios are overhead-contract runs: disabled telemetry /
        # flow tracking must cost zero allocations, so a nonzero
        # allocs_per_event means the contract broke (or the binary's own
        # exit-1 gate was bypassed).
        if name.endswith("_off") and float(cur.get("allocs_per_event", 0.0)) != 0.0:
            print(f"ALLOCS     {name}: allocs_per_event="
                  f"{float(cur['allocs_per_event'])} (want 0) — disabled-"
                  f"telemetry overhead contract broken", file=sys.stderr)
            failed = True
        # Triggered-vs-periodic fixed-point identity is a correctness gate:
        # any scenario that records the comparison must have passed it.
        if cur.get("digest_match") is False:
            print(f"DIGEST     {name}: digest_match=false — triggered engine "
                  f"diverged from the periodic fixed point", file=sys.stderr)
            failed = True
        if name == "probe_steady_state":
            reduction = cur.get("steady_state_reduction")
            if reduction is None or float(reduction) < 0.9:
                print(f"TRIGGERED  {name}: steady_state_reduction="
                      f"{reduction} (want >= 0.90) — triggered engine no "
                      f"longer suppresses steady-state probe traffic",
                      file=sys.stderr)
                failed = True
            else:
                print(f"OK         {name}: steady_state_reduction="
                      f"{float(reduction):.4f} (>= 0.90)")
        if name == "probe_failure_wave":
            ratio = cur.get("wave_ratio")
            if ratio is None or float(ratio) >= 1.0:
                print(f"TRIGGERED  {name}: wave_ratio={ratio} (want < 1.0) — "
                      f"triggered failure wave costs more than periodic",
                      file=sys.stderr)
                failed = True
            else:
                print(f"OK         {name}: wave_ratio={float(ratio):.4f} (< 1.0)")
        # Hybrid scale scenarios (§14): the event-reduction tentpole, the
        # zero-alloc steady tick, and the RSS ceiling are correctness gates
        # on CURRENT alone (the ceiling travels inside the report, so the
        # gate follows whatever scale the run was configured for).
        if name.startswith("hybrid_"):
            event_ratio = cur.get("event_ratio")
            if event_ratio is None or float(event_ratio) < 50.0:
                print(f"HYBRID     {name}: event_ratio={event_ratio} "
                      f"(want >= 50) — hybrid engine no longer beats pure "
                      f"packet-level by the contracted margin", file=sys.stderr)
                failed = True
            else:
                print(f"OK         {name}: event_ratio="
                      f"{float(event_ratio):.1f}x (>= 50x)")
            allocs = cur.get("steady_window_allocs")
            if allocs is None or int(allocs) != 0:
                print(f"HYBRID     {name}: steady_window_allocs={allocs} "
                      f"(want 0) — warm fluid ticks allocate", file=sys.stderr)
                failed = True
            rss = cur.get("rss_peak_mib")
            ceiling = cur.get("rss_ceiling_mib")
            if rss is None or ceiling is None or int(rss) > int(ceiling):
                print(f"HYBRID     {name}: rss_peak_mib={rss} over "
                      f"ceiling={ceiling} MiB", file=sys.stderr)
                failed = True
            else:
                print(f"OK         {name}: rss_peak_mib={int(rss)} "
                      f"(<= {int(ceiling)} MiB)")

    scaling = current_report.get("parallel_scaling")
    if isinstance(scaling, dict):
        cores = scaling.get("hardware_concurrency", "?")
        qualifier = ""
        if scaling.get("speedup_informational"):
            qualifier = ", workers exceed cores"
        for key, label in (("speedup_w4", "w4"), ("speedup_w8", "w8")):
            speedup = scaling.get(key)
            if isinstance(speedup, (int, float)):
                print(f"INFO       parallel_scaling: speedup({label})="
                      f"{speedup:.2f}x on {cores} cores "
                      f"(informational{qualifier})")
        if scaling.get("bit_identical") is False:
            print("compare_bench: parallel_scaling reports bit_identical=false "
                  "— determinism break", file=sys.stderr)
            failed = True
        # Self-activating scaling gate: when the bench machine has the cores
        # to deliver parallelism (recorded by the binary itself), an 8-worker
        # sweep that can't reach 2x over serial is an engine regression, not
        # machine noise.
        cores_n = scaling.get("hardware_concurrency")
        w8 = scaling.get("speedup_w8")
        if (isinstance(cores_n, int) and cores_n >= 8 and
                not scaling.get("speedup_informational") and
                isinstance(w8, (int, float)) and w8 < 2.0):
            print(f"compare_bench: speedup_w8={w8:.2f}x < 2.0x on "
                  f"{cores_n} cores — parallel engine scaling regression",
                  file=sys.stderr)
            failed = True
        ab = scaling.get("lookahead_ab")
        if isinstance(ab, dict):
            print(f"INFO       lookahead_ab: {ab.get('phases_channel', '?')} "
                  f"phases (per-channel) vs {ab.get('phases_global_min', '?')} "
                  f"(global-min grid), "
                  f"{float(ab.get('barrier_reduction', 0)):.1f}x fewer "
                  f"barriers, {ab.get('idle_skips', '?')} idle skips "
                  f"(informational)")
            # Digest equality between the two epoch schedules is a hard
            # gate like bit_identical: a mismatch means the phase schedule
            # changed observable results, not just barrier counts.
            if ab.get("digest_match") is False:
                print("compare_bench: lookahead_ab reports digest_match=false "
                      "— per-channel schedule diverged from global-min grid",
                      file=sys.stderr)
                failed = True

    if failed:
        print(f"compare_bench: regression beyond {args.threshold:.0%} threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
