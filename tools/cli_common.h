// Minimal flag parsing + file helpers shared by the CLI tools.
#pragma once

#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "topology/abilene.h"
#include "topology/generators.h"
#include "topology/parser.h"

namespace contra::tools {

/// "--key value" and "--flag" style arguments; positionals collected apart.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const std::string key = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "";
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  int64_t get_int(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

inline std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

inline bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

/// Topology selection shared by the tools:
///   --topo-file <file>           edge-list or Topology Zoo GraphML file
///                                (format sniffed; see topology/parser.h)
///   --topology <file>            legacy spelling of --topo-file
///   --builtin fat-tree:<k> | leaf-spine:<l>x<s> | random:<n>:<seed> |
///             abilene | ring:<n> | grid:<r>x<c> | diamond
inline std::optional<topology::Topology> load_topology(const Args& args, std::string* error) {
  if (args.has("topo-file") || args.has("topology")) {
    const std::string path = args.has("topo-file") ? args.get("topo-file") : args.get("topology");
    const auto text = read_file(path);
    if (!text) {
      *error = "cannot read topology file: " + path;
      return std::nullopt;
    }
    try {
      return topology::parse_topology_auto(*text);
    } catch (const std::exception& e) {
      *error = e.what();
      return std::nullopt;
    }
  }
  const std::string spec = args.get("builtin", "diamond");
  try {
    if (spec.rfind("fat-tree:", 0) == 0) {
      return topology::fat_tree(static_cast<uint32_t>(std::stoul(spec.substr(9))));
    }
    if (spec.rfind("leaf-spine:", 0) == 0) {
      const std::string dims = spec.substr(11);
      const size_t x = dims.find('x');
      return topology::leaf_spine(std::stoul(dims.substr(0, x)),
                                  std::stoul(dims.substr(x + 1)));
    }
    if (spec.rfind("random:", 0) == 0) {
      const std::string rest = spec.substr(7);
      const size_t colon = rest.find(':');
      const uint32_t n = std::stoul(rest.substr(0, colon));
      const uint64_t seed = colon == std::string::npos ? 1 : std::stoull(rest.substr(colon + 1));
      return topology::random_connected(n, 4.0, seed);
    }
    if (spec == "abilene") return topology::abilene();
    if (spec.rfind("ring:", 0) == 0) {
      return topology::ring(static_cast<uint32_t>(std::stoul(spec.substr(5))));
    }
    if (spec.rfind("grid:", 0) == 0) {
      const std::string dims = spec.substr(5);
      const size_t x = dims.find('x');
      return topology::grid(std::stoul(dims.substr(0, x)), std::stoul(dims.substr(x + 1)));
    }
    if (spec == "diamond") return topology::running_example();
  } catch (const std::exception& e) {
    *error = std::string("bad --builtin spec '") + spec + "': " + e.what();
    return std::nullopt;
  }
  *error = "unknown --builtin spec: " + spec;
  return std::nullopt;
}

/// Policy from --policy "<text>" or --policy-file <path>.
inline std::optional<std::string> load_policy_text(const Args& args, std::string* error) {
  if (args.has("policy")) return args.get("policy");
  if (args.has("policy-file")) {
    const auto text = read_file(args.get("policy-file"));
    if (!text) {
      *error = "cannot read policy file: " + args.get("policy-file");
      return std::nullopt;
    }
    return *text;
  }
  *error = "missing --policy \"minimize(...)\" or --policy-file <path>";
  return std::nullopt;
}

}  // namespace contra::tools
