// Shared quantile helper for FCT summaries (metrics::summarize_fct) and the
// flow-telemetry size-bucket percentiles (obs::FlowTracker::summary_json) —
// one definition so the two report the same numbers for the same sample set.
#pragma once

#include <cstddef>
#include <vector>

namespace contra::metrics {

/// Linear-interpolation quantile of an ascending-sorted sample set,
/// q in [0, 1]; 0 for empty input.
inline double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * (sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = lo + 1 < sorted.size() ? lo + 1 : sorted.size() - 1;
  const double frac = pos - lo;
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace contra::metrics
