#include "metrics/fct.h"

#include <algorithm>
#include <cstdio>

#include "metrics/quantile.h"

namespace contra::metrics {

FctSummary summarize_fct(const std::vector<sim::FlowRecord>& completed, size_t total_flows) {
  FctSummary summary;
  summary.completed = completed.size();
  summary.incomplete = total_flows >= completed.size() ? total_flows - completed.size() : 0;
  if (completed.empty()) return summary;

  std::vector<double> fcts;
  fcts.reserve(completed.size());
  double sum = 0.0;
  for (const sim::FlowRecord& flow : completed) {
    fcts.push_back(flow.fct());
    sum += flow.fct();
  }
  std::sort(fcts.begin(), fcts.end());
  summary.mean_s = sum / fcts.size();
  summary.median_s = quantile(fcts, 0.5);
  summary.p95_s = quantile(fcts, 0.95);
  summary.p99_s = quantile(fcts, 0.99);
  summary.max_s = fcts.back();
  return summary;
}

double mean_fct_below(const std::vector<sim::FlowRecord>& completed, uint64_t threshold) {
  double sum = 0.0;
  size_t n = 0;
  for (const sim::FlowRecord& flow : completed) {
    if (flow.bytes < threshold) {
      sum += flow.fct();
      ++n;
    }
  }
  return n ? sum / n : 0.0;
}

double mean_fct_at_least(const std::vector<sim::FlowRecord>& completed, uint64_t threshold) {
  double sum = 0.0;
  size_t n = 0;
  for (const sim::FlowRecord& flow : completed) {
    if (flow.bytes >= threshold) {
      sum += flow.fct();
      ++n;
    }
  }
  return n ? sum / n : 0.0;
}

std::string FctSummary::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%zu (+%zu incomplete) mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms",
                completed, incomplete, mean_s * 1e3, median_s * 1e3, p95_s * 1e3, p99_s * 1e3);
  return buf;
}

}  // namespace contra::metrics
