#include "metrics/counters.h"

#include <cstdio>

namespace contra::metrics {

OverheadReport make_overhead_report(const sim::LinkStats& fabric) {
  OverheadReport report;
  report.data_bytes = fabric.tx_data_bytes;
  report.ack_bytes = fabric.tx_ack_bytes;
  report.probe_bytes = fabric.tx_probe_bytes;
  report.total_bytes = fabric.tx_bytes;
  report.data_packets = fabric.tx_data_packets;
  report.ack_packets = fabric.tx_ack_packets;
  report.probe_packets = fabric.tx_probe_packets;
  report.total_packets = fabric.tx_packets;
  report.drops = fabric.drops;
  return report;
}

OverheadReport make_overhead_report(const sim::LinkStats& end, const sim::LinkStats& start) {
  OverheadReport report;
  report.data_bytes = end.tx_data_bytes - start.tx_data_bytes;
  report.ack_bytes = end.tx_ack_bytes - start.tx_ack_bytes;
  report.probe_bytes = end.tx_probe_bytes - start.tx_probe_bytes;
  report.total_bytes = end.tx_bytes - start.tx_bytes;
  report.data_packets = end.tx_data_packets - start.tx_data_packets;
  report.ack_packets = end.tx_ack_packets - start.tx_ack_packets;
  report.probe_packets = end.tx_probe_packets - start.tx_probe_packets;
  report.total_packets = end.tx_packets - start.tx_packets;
  report.drops = end.drops - start.drops;
  return report;
}

std::string OverheadReport::to_string() const {
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "total=%.3f MB (data=%.3f, ack=%.3f, probe=%.3f) "
                "pkts=%llu (probe=%llu) drops=%llu",
                total_bytes / 1e6, data_bytes / 1e6, ack_bytes / 1e6, probe_bytes / 1e6,
                static_cast<unsigned long long>(total_packets),
                static_cast<unsigned long long>(probe_packets),
                static_cast<unsigned long long>(drops));
  return buf;
}

}  // namespace contra::metrics
