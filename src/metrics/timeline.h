// Small output helpers shared by the benchmark binaries: aligned tables and
// (x, y) series in the layout of the paper's figures.
#pragma once

#include <string>
#include <vector>

namespace contra::metrics {

/// Prints "<name>: x1=y1 x2=y2 ..." rows, e.g. FCT-vs-load series.
std::string format_series(const std::string& name, const std::vector<double>& xs,
                          const std::vector<double>& ys, const char* x_fmt = "%g",
                          const char* y_fmt = "%.3f");

/// A simple fixed-width table: header row + data rows.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  std::string to_string() const;

  static std::string num(double v, const char* fmt = "%.3f");

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace contra::metrics
