// Traffic-overhead accounting (Fig. 16): total fabric bytes split into data,
// ACK, and probe traffic; overhead is reported normalized to a baseline run.
#pragma once

#include <string>

#include "sim/link.h"

namespace contra::metrics {

struct OverheadReport {
  uint64_t data_bytes = 0;
  uint64_t ack_bytes = 0;
  uint64_t probe_bytes = 0;
  uint64_t total_bytes = 0;
  uint64_t data_packets = 0;
  uint64_t ack_packets = 0;
  uint64_t probe_packets = 0;
  uint64_t total_packets = 0;
  uint64_t drops = 0;

  double probe_fraction() const {
    return total_bytes ? static_cast<double>(probe_bytes) / total_bytes : 0.0;
  }
  /// Probe share of fabric *packets* — probes are small, so the packet-count
  /// overhead can dwarf the byte overhead (pps is what switch pipelines pay).
  double probe_packet_fraction() const {
    return total_packets ? static_cast<double>(probe_packets) / total_packets : 0.0;
  }
  /// Total traffic relative to a baseline run of the same workload.
  double normalized_to(const OverheadReport& baseline) const {
    return baseline.total_bytes
               ? static_cast<double>(total_bytes) / baseline.total_bytes
               : 0.0;
  }

  std::string to_string() const;
};

OverheadReport make_overhead_report(const sim::LinkStats& fabric);

/// Windowed report: counters at window end minus counters at window start
/// (LinkStats counters are monotonic).
OverheadReport make_overhead_report(const sim::LinkStats& end, const sim::LinkStats& start);

}  // namespace contra::metrics
