#include "metrics/timeline.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace contra::metrics {

std::string format_series(const std::string& name, const std::vector<double>& xs,
                          const std::vector<double>& ys, const char* x_fmt,
                          const char* y_fmt) {
  std::ostringstream out;
  out << name << ":";
  char buf[64];
  for (size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    std::snprintf(buf, sizeof buf, x_fmt, xs[i]);
    out << " " << buf << "=";
    std::snprintf(buf, sizeof buf, y_fmt, ys[i]);
    out << buf;
  }
  return out.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string Table::num(double v, const char* fmt) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace contra::metrics
