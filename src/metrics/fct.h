// Flow-completion-time aggregation — the headline metric of Figs. 11, 12, 15.
#pragma once

#include <string>
#include <vector>

#include "sim/transport.h"

namespace contra::metrics {

struct FctSummary {
  size_t completed = 0;
  size_t incomplete = 0;
  double mean_s = 0.0;
  double median_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;

  std::string to_string() const;
};

/// Summarizes completed flows; `incomplete` counts flows still unfinished at
/// simulation end (they indicate loss/overload, reported separately the way
/// the paper reports ECMP's "heavy traffic loss").
FctSummary summarize_fct(const std::vector<sim::FlowRecord>& completed, size_t total_flows);

/// Mean FCT filtered to small (< threshold) or large flows.
double mean_fct_below(const std::vector<sim::FlowRecord>& completed, uint64_t bytes_threshold);
double mean_fct_at_least(const std::vector<sim::FlowRecord>& completed,
                         uint64_t bytes_threshold);

}  // namespace contra::metrics
