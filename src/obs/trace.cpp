#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>

namespace contra::obs {

namespace {

constexpr std::string_view kEvNames[kNumEv] = {
    "probe_orig",         "probe_rx",       "probe_accept",  "probe_reject_stale",
    "probe_reject_rank",  "probe_reject_no_pg", "route_flip", "flowlet_create",
    "flowlet_switch",     "flowlet_expire", "flowlet_flush", "failure_detect",
    "failure_clear",      "loop_break",     "link_down",     "link_up",
    "drop",               "epoch",          "barrier",       "probe_suppress",
    "dense_fallback",     "probe_trigger",  "probe_withdraw", "churn_wave",
    "gray_degrade",       "switch_restart",
};

}  // namespace

std::string_view ev_name(Ev ev) {
  const auto index = static_cast<size_t>(ev);
  return index < kNumEv ? kEvNames[index] : "?";
}

std::string_view fault_class_name(FaultClass cls) {
  constexpr std::string_view kNames[] = {"flap", "srg", "gray", "drift", "drain", "restart"};
  const auto index = static_cast<size_t>(cls);
  return index < static_cast<size_t>(FaultClass::kCount) ? kNames[index] : "link";
}

std::optional<Ev> ev_from_name(std::string_view name) {
  for (size_t i = 0; i < kNumEv; ++i) {
    if (kEvNames[i] == name) return static_cast<Ev>(i);
  }
  return std::nullopt;
}

size_t format_jsonl(const TraceRecord& r, char* out) {
  // Fixed key order; fields at their sentinel are omitted. %.9g keeps
  // nanosecond resolution over sub-second sim times without padding zeros.
  size_t n = static_cast<size_t>(
      std::snprintf(out, kMaxLineBytes, "{\"t\":%.9g,\"ev\":\"%s\"", r.t,
                    ev_name(r.ev).data()));
  auto append = [&](const char* fmt, auto v) {
    n += static_cast<size_t>(std::snprintf(out + n, kMaxLineBytes - n, fmt, v));
  };
  if (r.sw != kNoField) append(",\"sw\":%u", r.sw);
  if (r.dst != kNoField) append(",\"dst\":%u", r.dst);
  if (r.tag != kNoField) append(",\"tag\":%u", r.tag);
  if (r.pid != kNoField) append(",\"pid\":%u", r.pid);
  if (r.link != kNoField) append(",\"link\":%u", r.link);
  if (r.aux != kNoField) append(",\"aux\":%u", r.aux);
  if (r.version != 0) append(",\"ver\":%llu", static_cast<unsigned long long>(r.version));
  if (r.value != 0.0) append(",\"val\":%.9g", r.value);
  append("%s", "}");
  return n;
}

namespace {

/// Value text of `"key":` in a flat one-level JSON object, or empty.
std::string_view find_value(std::string_view line, std::string_view key) {
  char pattern[32];
  std::snprintf(pattern, sizeof pattern, "\"%.*s\":", static_cast<int>(key.size()),
                key.data());
  const size_t at = line.find(pattern);
  if (at == std::string_view::npos) return {};
  size_t begin = at + std::strlen(pattern);
  size_t end = begin;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(begin, end - begin);
}

bool parse_u32(std::string_view text, uint32_t* out) {
  if (text.empty()) return false;
  *out = static_cast<uint32_t>(std::strtoul(std::string(text).c_str(), nullptr, 10));
  return true;
}

}  // namespace

std::optional<TraceRecord> parse_jsonl_line(std::string_view line) {
  const std::string_view t_text = find_value(line, "t");
  std::string_view ev_text = find_value(line, "ev");
  if (t_text.empty() || ev_text.size() < 2 || ev_text.front() != '"' ||
      ev_text.back() != '"') {
    return std::nullopt;
  }
  ev_text = ev_text.substr(1, ev_text.size() - 2);
  const std::optional<Ev> ev = ev_from_name(ev_text);
  if (!ev) return std::nullopt;

  TraceRecord r;
  r.t = std::strtod(std::string(t_text).c_str(), nullptr);
  r.ev = *ev;
  parse_u32(find_value(line, "sw"), &r.sw);
  parse_u32(find_value(line, "dst"), &r.dst);
  parse_u32(find_value(line, "tag"), &r.tag);
  parse_u32(find_value(line, "pid"), &r.pid);
  parse_u32(find_value(line, "link"), &r.link);
  parse_u32(find_value(line, "aux"), &r.aux);
  const std::string_view ver = find_value(line, "ver");
  if (!ver.empty()) r.version = std::strtoull(std::string(ver).c_str(), nullptr, 10);
  const std::string_view val = find_value(line, "val");
  if (!val.empty()) r.value = std::strtod(std::string(val).c_str(), nullptr);
  return r;
}

std::vector<TraceRecord> read_jsonl(std::istream& in, size_t* bad_lines) {
  std::vector<TraceRecord> records;
  std::string line;
  size_t bad = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto record = parse_jsonl_line(line)) {
      records.push_back(*record);
    } else {
      ++bad;
    }
  }
  if (bad_lines != nullptr) *bad_lines = bad;
  return records;
}

void JsonlTraceSink::write(const TraceRecord& record) {
  char line[kMaxLineBytes];
  const size_t n = format_jsonl(record, line);
  out_->write(line, static_cast<std::streamsize>(n));
  out_->put('\n');
  ++written_;
}

void JsonlTraceSink::flush() { out_->flush(); }

}  // namespace contra::obs
