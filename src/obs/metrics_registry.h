// Fixed-slot metrics registry.
//
// Design contract (see DESIGN.md §7): all slots are registered at setup
// time into one fixed-capacity array; the hot-path increment is a single
// relaxed load+store into a preregistered slot — no map lookup, no string
// hashing, no allocation, ever. Counters therefore stay enabled
// unconditionally (bench-gated to <10% cost); only *sinks* (trace streams,
// snapshot exporters) are opt-in.
//
// Slot kinds:
//   counter    — monotonic uint64
//   gauge      — last-written uint64
//   histogram  — fixed upper-bound buckets + one overflow bucket, chosen at
//                registration; observe() is a short linear scan + one add.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace contra::obs {

using CounterId = uint32_t;
using GaugeId = uint32_t;

struct HistogramId {
  uint32_t first_slot = 0;   ///< slot of the first bucket
  uint32_t num_buckets = 0;  ///< bounds.size() + 1 (overflow)
  uint32_t meta_index = 0;   ///< index into the registry's histogram table
};

class MetricsRegistry {
 public:
  /// Hard slot budget; registration past it throws (registration is setup
  /// code, so loud beats silent).
  static constexpr uint32_t kMaxSlots = 512;

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // ----- registration (setup time; allocates) -----------------------------
  CounterId counter(std::string name);
  GaugeId gauge(std::string name);
  HistogramId histogram(std::string name, std::vector<double> upper_bounds);

  // ----- hot path (zero allocation) ---------------------------------------
  // Single-writer contract: each registry belongs to one Simulator, and the
  // simulator loop is single-threaded, so increments are a relaxed
  // load+store pair (plain mov/add on x86) rather than a locked RMW —
  // ~10-20x cheaper per probe, while concurrent *readers* (snapshots from
  // another thread) still see torn-free values through the atomic type.
  void add(CounterId id, uint64_t delta = 1) {
    std::atomic<uint64_t>& slot = slots_[id];
    slot.store(slot.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
  }
  void set(GaugeId id, uint64_t value) {
    slots_[id].store(value, std::memory_order_relaxed);
  }
  void observe(HistogramId id, double value) {
    const HistogramMeta& meta = histograms_[id.meta_index];
    uint32_t bucket = id.num_buckets - 1;  // overflow unless a bound catches it
    for (uint32_t i = 0; i < id.num_buckets - 1; ++i) {
      if (value <= meta.bounds[i]) {
        bucket = i;
        break;
      }
    }
    std::atomic<uint64_t>& slot = slots_[id.first_slot + bucket];
    slot.store(slot.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  // ----- reads ------------------------------------------------------------
  uint64_t value(CounterId id) const {
    return slots_[id].load(std::memory_order_relaxed);
  }
  uint64_t bucket_value(HistogramId id, uint32_t bucket) const {
    return slots_[id.first_slot + bucket].load(std::memory_order_relaxed);
  }
  uint64_t histogram_total(HistogramId id) const;

  uint32_t slots_used() const { return used_; }

  /// Folds another registry with the *identical slot layout* into this one:
  /// counters and histogram buckets add, gauges take the max. The parallel
  /// engine uses this to merge per-shard registries (each shard's Simulator
  /// registers the same CoreMetrics in the same order) into one global view;
  /// call only at barriers or after the run, when the source is quiescent.
  /// Throws on layout mismatch.
  void merge_from(const MetricsRegistry& other);

  /// One-line JSON snapshot: {"t":…,"counters":{…},"gauges":{…},
  /// "histograms":{name:{"bounds":[…],"counts":[…]}}}. Zero-valued scalar
  /// slots are included — a snapshot is a complete picture, diffs depend on
  /// stable keys.
  std::string snapshot_json(double t) const;

 private:
  enum class SlotKind : uint8_t { kCounter, kGauge, kHistogram };
  struct ScalarMeta {
    std::string name;
    SlotKind kind;
    uint32_t slot;
  };
  struct HistogramMeta {
    std::string name;
    std::vector<double> bounds;
    uint32_t first_slot;
  };

  uint32_t acquire(uint32_t count, const char* what);

  std::vector<std::atomic<uint64_t>> slots_;  ///< sized kMaxSlots once, never resized
  uint32_t used_ = 0;
  std::vector<ScalarMeta> scalars_;
  std::vector<HistogramMeta> histograms_;
};

}  // namespace contra::obs
