// Per-link telemetry timelines: bounded ring buffers of (t, utilization EWMA,
// queue depth) samples, fed by a periodic sampler (tools/contrasim.cpp) or by
// tests directly. Opt-in like the trace sinks — nothing here runs unless a
// timeline is attached and the sampler scheduled.
//
// The ring bound makes the memory cost O(links × capacity) regardless of run
// length; when a ring wraps, the oldest samples fall off (the JSONL dump
// therefore covers a trailing window on very long runs — noted in
// OBSERVABILITY.md). Under the parallel engine each shard samples only the
// links it owns, so shard timelines are disjoint and `merge_from` is a union.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace contra::obs {

class LinkTimeline {
 public:
  struct Sample {
    double t = 0.0;
    double util = 0.0;
    uint64_t queue_bytes = 0;
  };

  LinkTimeline() = default;
  explicit LinkTimeline(uint32_t num_links, uint32_t capacity_per_link = 1024);

  uint32_t num_links() const { return static_cast<uint32_t>(rings_.size()); }

  void add(uint32_t link, double t, double util, uint64_t queue_bytes);

  /// Latest recorded utilization at or before `t`; 0 when no such sample.
  double util_at(uint32_t link, double t) const;
  /// Total samples currently held for `link`.
  uint32_t count(uint32_t link) const { return rings_[link].count; }
  /// Samples for `link` in time order (oldest surviving first).
  std::vector<Sample> samples(uint32_t link) const;

  /// Union with another timeline covering a disjoint link set (parallel
  /// shards); links sampled by both keep whichever ring has samples, `other`
  /// winning ties — shard ownership guarantees there are none.
  void merge_from(const LinkTimeline& other);

  /// One `{"t":…,"link":…,"util":…,"q":…}` line per sample, sorted by
  /// (t, link) — byte-deterministic across worker counts.
  void write_jsonl(std::ostream& out) const;

 private:
  struct Ring {
    std::vector<Sample> data;
    uint32_t next = 0;   ///< insertion slot
    uint32_t count = 0;  ///< valid samples, <= data.size()
  };

  std::vector<Ring> rings_;
  uint32_t capacity_ = 0;
};

}  // namespace contra::obs
