#include "obs/convergence.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace contra::obs {

void ConvergenceTracker::observe(const TraceRecord& r) {
  ++total_records_;
  const auto index = static_cast<size_t>(r.ev);
  if (index < kNumEv) ++counts_[index];

  if ((r.ev == Ev::kLinkDown || r.ev == Ev::kFailureDetect) && first_failure_at_ < 0) {
    first_failure_at_ = r.t;
  }

  // Wave anchors. A churn_wave record (the engine emits it before injecting
  // the wave's events) always anchors; without the engine every link state
  // transition or restart does. Same-timestamp anchors — an SRG failing
  // several cables at once — fold into one wave.
  const bool anchor =
      r.ev == Ev::kChurnWave ||
      (!saw_churn_wave_ && (r.ev == Ev::kLinkDown || r.ev == Ev::kLinkUp ||
                            r.ev == Ev::kSwitchRestart || r.ev == Ev::kGrayDegrade));
  if (r.ev == Ev::kChurnWave) saw_churn_wave_ = true;
  if (anchor && (waves_.empty() || r.t > waves_.back().start)) {
    Wave wave;
    wave.start = r.t;
    wave.fault_class = r.ev == Ev::kChurnWave ? r.aux : kNoField;
    waves_.push_back(wave);
  }

  // Trigger-wave width: distinct switches reacting with a triggered update
  // inside the currently open wave (DESIGN.md §12).
  if (r.ev == Ev::kProbeTrigger && r.sw != kNoField && !waves_.empty() &&
      r.t >= waves_.back().start) {
    waves_.back().trigger_switches.insert(r.sw);
    ++waves_.back().trigger_records;
  }

  if (r.ev == Ev::kRouteFlip && r.dst != kNoField) {
    DestState& d = dests_[r.dst];
    ++d.flips;
    if (d.first_flip < 0) d.first_flip = r.t;
    d.last_flip = r.t;
    if (first_failure_at_ >= 0 && r.t >= first_failure_at_) {
      ++d.post_failure_flips;
      d.last_post_failure_flip = r.t;
    }
    // Per-wave window: the flip counts against the wave currently open. The
    // wave's reconvergence is its *last* flip before the next anchor, so
    // overwriting on every flip lands on the right value; the destination
    // keeps its worst window across all waves.
    if (!waves_.empty() && r.t >= waves_.back().start) {
      Wave& wave = waves_.back();
      ++wave.flips;
      wave.last_flip = r.t;
      d.max_wave_reconv = std::max(d.max_wave_reconv, r.t - wave.start);
    }
  }
}

void ConvergenceTracker::observe_all(const std::vector<TraceRecord>& records) {
  for (const TraceRecord& r : records) observe(r);
}

ConvergenceTracker::Report ConvergenceTracker::report() const {
  Report out;
  out.counts = counts_;
  out.total_records = total_records_;
  out.first_failure_at = first_failure_at_;
  out.destinations.reserve(dests_.size());
  for (const auto& [dst, d] : dests_) {
    DestReport row;
    row.dst = dst;
    row.flips = d.flips;
    row.first_route_at = d.first_flip;
    row.quiesced_at = d.last_flip;
    row.post_failure_flips = d.post_failure_flips;
    if (d.max_wave_reconv >= 0) {
      row.reconvergence_s = d.max_wave_reconv;
    } else if (waves_.empty() && first_failure_at_ >= 0 && d.last_post_failure_flip >= 0) {
      // No wave anchors in the stream (e.g. a replayed trace with detector
      // events only): the single-window legacy measure is all there is.
      row.reconvergence_s = d.last_post_failure_flip - first_failure_at_;
    }
    out.destinations.push_back(row);
  }
  out.waves.reserve(waves_.size());
  // Per-class aggregation, keyed by the raw aux value so unknown classes
  // still bucket deterministically.
  std::map<uint32_t, ClassReport> by_class;
  for (const Wave& wave : waves_) {
    WaveReport row;
    row.start = wave.start;
    row.fault_class = wave.fault_class;
    row.flips = wave.flips;
    if (wave.last_flip >= 0) row.reconvergence_s = wave.last_flip - wave.start;
    row.trigger_width = wave.trigger_switches.size();
    row.trigger_records = wave.trigger_records;
    out.waves.push_back(row);

    ClassReport& cls = by_class[wave.fault_class];
    cls.fault_class = wave.fault_class;
    ++cls.waves;
    cls.max_trigger_width = std::max(cls.max_trigger_width, row.trigger_width);
    cls.mean_trigger_width += static_cast<double>(row.trigger_width);  // sum for now
    if (row.reconvergence_s >= 0) {
      ++cls.reacted;
      if (cls.min_s < 0 || row.reconvergence_s < cls.min_s) cls.min_s = row.reconvergence_s;
      cls.max_s = std::max(cls.max_s, row.reconvergence_s);
      cls.mean_s = (cls.mean_s < 0 ? 0.0 : cls.mean_s) + row.reconvergence_s;  // sum for now
    }
  }
  out.by_class.reserve(by_class.size());
  for (auto& [cls_id, cls] : by_class) {
    if (cls.reacted > 0) cls.mean_s /= static_cast<double>(cls.reacted);
    if (cls.waves > 0) cls.mean_trigger_width /= static_cast<double>(cls.waves);
    out.by_class.push_back(cls);
  }
  return out;
}

std::string ConvergenceTracker::Report::to_string() const {
  std::ostringstream out;
  out << "convergence: " << total_records << " records";
  if (first_failure_at >= 0) {
    char buf[48];
    std::snprintf(buf, sizeof buf, ", first failure at t=%.6f s", first_failure_at);
    out << buf;
  }
  out << "\n";
  out << "  dst  flips  first_route_s  quiesced_s  post_fail_flips  reconverge_s\n";
  for (const DestReport& d : destinations) {
    char line[160];
    char reconv[24];
    if (d.reconvergence_s >= 0) {
      std::snprintf(reconv, sizeof reconv, "%12.6f", d.reconvergence_s);
    } else {
      std::snprintf(reconv, sizeof reconv, "%12s", "-");
    }
    std::snprintf(line, sizeof line, "  %3u  %5llu  %13.6f  %10.6f  %15llu  %s\n", d.dst,
                  static_cast<unsigned long long>(d.flips), d.first_route_at, d.quiesced_at,
                  static_cast<unsigned long long>(d.post_failure_flips), reconv);
    out << line;
  }
  if (!waves.empty()) {
    out << "  wave  t_start_s  class    flips  reconverge_s  trig_sw  trig_rec\n";
    for (size_t i = 0; i < waves.size(); ++i) {
      const WaveReport& w = waves[i];
      const std::string_view cls = fault_class_name(static_cast<FaultClass>(w.fault_class));
      char line[160];
      char reconv[24];
      if (w.reconvergence_s >= 0) {
        std::snprintf(reconv, sizeof reconv, "%12.6f", w.reconvergence_s);
      } else {
        std::snprintf(reconv, sizeof reconv, "%12s", "-");
      }
      std::snprintf(line, sizeof line, "  %4zu  %9.6f  %-7.*s  %5llu  %s  %7llu  %8llu\n", i,
                    w.start, static_cast<int>(cls.size()), cls.data(),
                    static_cast<unsigned long long>(w.flips), reconv,
                    static_cast<unsigned long long>(w.trigger_width),
                    static_cast<unsigned long long>(w.trigger_records));
      out << line;
    }
    out << "  class    waves  reacted  min_s     mean_s    max_s     trig_w_mean  trig_w_max\n";
    for (const ClassReport& c : by_class) {
      const std::string_view cls = fault_class_name(static_cast<FaultClass>(c.fault_class));
      char line[200];
      if (c.reacted > 0) {
        std::snprintf(line, sizeof line,
                      "  %-7.*s  %5llu  %7llu  %.6f  %.6f  %.6f  %11.1f  %10llu\n",
                      static_cast<int>(cls.size()), cls.data(),
                      static_cast<unsigned long long>(c.waves),
                      static_cast<unsigned long long>(c.reacted), c.min_s, c.mean_s, c.max_s,
                      c.mean_trigger_width,
                      static_cast<unsigned long long>(c.max_trigger_width));
      } else {
        std::snprintf(line, sizeof line,
                      "  %-7.*s  %5llu  %7llu  %9s  %9s  %9s  %11.1f  %10llu\n",
                      static_cast<int>(cls.size()), cls.data(),
                      static_cast<unsigned long long>(c.waves),
                      static_cast<unsigned long long>(c.reacted), "-", "-", "-",
                      c.mean_trigger_width,
                      static_cast<unsigned long long>(c.max_trigger_width));
      }
      out << line;
    }
  }
  return out.str();
}

}  // namespace contra::obs
