#include "obs/convergence.h"

#include <cstdio>
#include <sstream>

namespace contra::obs {

void ConvergenceTracker::observe(const TraceRecord& r) {
  ++total_records_;
  const auto index = static_cast<size_t>(r.ev);
  if (index < kNumEv) ++counts_[index];

  if ((r.ev == Ev::kLinkDown || r.ev == Ev::kFailureDetect) && first_failure_at_ < 0) {
    first_failure_at_ = r.t;
  }
  if (r.ev == Ev::kRouteFlip && r.dst != kNoField) {
    DestState& d = dests_[r.dst];
    ++d.flips;
    if (d.first_flip < 0) d.first_flip = r.t;
    d.last_flip = r.t;
    if (first_failure_at_ >= 0 && r.t >= first_failure_at_) {
      ++d.post_failure_flips;
      d.last_post_failure_flip = r.t;
    }
  }
}

void ConvergenceTracker::observe_all(const std::vector<TraceRecord>& records) {
  for (const TraceRecord& r : records) observe(r);
}

ConvergenceTracker::Report ConvergenceTracker::report() const {
  Report out;
  out.counts = counts_;
  out.total_records = total_records_;
  out.first_failure_at = first_failure_at_;
  out.destinations.reserve(dests_.size());
  for (const auto& [dst, d] : dests_) {
    DestReport row;
    row.dst = dst;
    row.flips = d.flips;
    row.first_route_at = d.first_flip;
    row.quiesced_at = d.last_flip;
    row.post_failure_flips = d.post_failure_flips;
    if (first_failure_at_ >= 0 && d.last_post_failure_flip >= 0) {
      row.reconvergence_s = d.last_post_failure_flip - first_failure_at_;
    }
    out.destinations.push_back(row);
  }
  return out;
}

std::string ConvergenceTracker::Report::to_string() const {
  std::ostringstream out;
  out << "convergence: " << total_records << " records";
  if (first_failure_at >= 0) {
    char buf[48];
    std::snprintf(buf, sizeof buf, ", first failure at t=%.6f s", first_failure_at);
    out << buf;
  }
  out << "\n";
  out << "  dst  flips  first_route_s  quiesced_s  post_fail_flips  reconverge_s\n";
  for (const DestReport& d : destinations) {
    char line[160];
    char reconv[24];
    if (d.reconvergence_s >= 0) {
      std::snprintf(reconv, sizeof reconv, "%12.6f", d.reconvergence_s);
    } else {
      std::snprintf(reconv, sizeof reconv, "%12s", "-");
    }
    std::snprintf(line, sizeof line, "  %3u  %5llu  %13.6f  %10.6f  %15llu  %s\n", d.dst,
                  static_cast<unsigned long long>(d.flips), d.first_route_at, d.quiesced_at,
                  static_cast<unsigned long long>(d.post_failure_flips), reconv);
    out << line;
  }
  return out.str();
}

}  // namespace contra::obs
