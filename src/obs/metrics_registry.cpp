#include "obs/metrics_registry.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace contra::obs {

MetricsRegistry::MetricsRegistry() : slots_(kMaxSlots) {
  for (auto& slot : slots_) slot.store(0, std::memory_order_relaxed);
}

uint32_t MetricsRegistry::acquire(uint32_t count, const char* what) {
  if (used_ + count > kMaxSlots) {
    throw std::length_error(std::string("MetricsRegistry: out of slots registering ") + what);
  }
  const uint32_t first = used_;
  used_ += count;
  return first;
}

CounterId MetricsRegistry::counter(std::string name) {
  const uint32_t slot = acquire(1, name.c_str());
  scalars_.push_back(ScalarMeta{std::move(name), SlotKind::kCounter, slot});
  return slot;
}

GaugeId MetricsRegistry::gauge(std::string name) {
  const uint32_t slot = acquire(1, name.c_str());
  scalars_.push_back(ScalarMeta{std::move(name), SlotKind::kGauge, slot});
  return slot;
}

HistogramId MetricsRegistry::histogram(std::string name, std::vector<double> upper_bounds) {
  const uint32_t buckets = static_cast<uint32_t>(upper_bounds.size()) + 1;
  const uint32_t first = acquire(buckets, name.c_str());
  HistogramId id{first, buckets, static_cast<uint32_t>(histograms_.size())};
  histograms_.push_back(HistogramMeta{std::move(name), std::move(upper_bounds), first});
  return id;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  if (other.used_ != used_ || other.scalars_.size() != scalars_.size() ||
      other.histograms_.size() != histograms_.size()) {
    throw std::invalid_argument("MetricsRegistry::merge_from: slot layout mismatch");
  }
  for (size_t i = 0; i < scalars_.size(); ++i) {
    const ScalarMeta& meta = scalars_[i];
    const ScalarMeta& theirs = other.scalars_[i];
    if (meta.name != theirs.name || meta.kind != theirs.kind || meta.slot != theirs.slot) {
      throw std::invalid_argument("MetricsRegistry::merge_from: scalar layout mismatch");
    }
    const uint64_t ours = slots_[meta.slot].load(std::memory_order_relaxed);
    const uint64_t value = other.slots_[meta.slot].load(std::memory_order_relaxed);
    slots_[meta.slot].store(meta.kind == SlotKind::kGauge ? std::max(ours, value) : ours + value,
                            std::memory_order_relaxed);
  }
  for (size_t h = 0; h < histograms_.size(); ++h) {
    const HistogramMeta& meta = histograms_[h];
    if (meta.name != other.histograms_[h].name || meta.first_slot != other.histograms_[h].first_slot ||
        meta.bounds != other.histograms_[h].bounds) {
      throw std::invalid_argument("MetricsRegistry::merge_from: histogram layout mismatch");
    }
    for (uint32_t i = 0; i <= meta.bounds.size(); ++i) {
      const uint32_t slot = meta.first_slot + i;
      slots_[slot].store(slots_[slot].load(std::memory_order_relaxed) +
                             other.slots_[slot].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    }
  }
}

uint64_t MetricsRegistry::histogram_total(HistogramId id) const {
  uint64_t total = 0;
  for (uint32_t i = 0; i < id.num_buckets; ++i) total += bucket_value(id, i);
  return total;
}

std::string MetricsRegistry::snapshot_json(double t) const {
  std::ostringstream out;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", t);
  out << "{\"t\":" << buf;

  for (const char* kind : {"counters", "gauges"}) {
    const SlotKind want = kind[0] == 'c' ? SlotKind::kCounter : SlotKind::kGauge;
    out << ",\"" << kind << "\":{";
    bool first = true;
    for (const ScalarMeta& meta : scalars_) {
      if (meta.kind != want) continue;
      if (!first) out << ",";
      first = false;
      out << "\"" << meta.name << "\":" << slots_[meta.slot].load(std::memory_order_relaxed);
    }
    out << "}";
  }

  out << ",\"histograms\":{";
  for (size_t h = 0; h < histograms_.size(); ++h) {
    const HistogramMeta& meta = histograms_[h];
    if (h > 0) out << ",";
    out << "\"" << meta.name << "\":{\"bounds\":[";
    for (size_t i = 0; i < meta.bounds.size(); ++i) {
      if (i > 0) out << ",";
      std::snprintf(buf, sizeof buf, "%.9g", meta.bounds[i]);
      out << buf;
    }
    out << "],\"counts\":[";
    for (size_t i = 0; i <= meta.bounds.size(); ++i) {
      if (i > 0) out << ",";
      out << slots_[meta.first_slot + i].load(std::memory_order_relaxed);
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

}  // namespace contra::obs
