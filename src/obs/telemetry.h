// Telemetry hub: one per Simulator.
//
// Bundles the fixed-slot metrics registry (always on, bench-gated to
// near-zero cost), the preregistered core metric ids every instrumented
// component uses, and the optional trace sink. Instrumentation calls are
// written so the disabled path is one branch:
//
//   obs::Telemetry& t = sim.telemetry();
//   t.metrics().add(t.core().probes_received);            // relaxed add
//   if (t.tracing()) t.emit({now, obs::Ev::kProbeRx, …}); // branch when off
#pragma once

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace contra::obs {

/// Core metric slots, registered once per registry. Components reach them
/// via Telemetry::core() so names stay consistent between the periodic
/// snapshots, --metrics-json output, and tools/telemetry_report.py.
struct CoreMetrics {
  // Probe lifecycle (contra + hula).
  CounterId probes_originated, probes_received, probes_accepted;
  CounterId probes_rejected_stale, probes_rejected_rank, probes_rejected_no_pg;
  CounterId fwdt_updates, route_flips;
  // Dense-table control plane (contra).
  CounterId probes_suppressed, dense_fallback_hits;
  // Triggered-update control plane (contra + hula; DESIGN.md §12).
  CounterId probes_triggered;          ///< probe copies sent by triggered emissions
  CounterId probes_holddown_deferred;  ///< trigger requests parked by the hold-down timer
  CounterId keepalive_probes;          ///< probes received on keepalive refresh rounds
  CounterId probes_withdrawn;          ///< poison (withdraw) adverts sent
  CounterId probe_bytes_rx;            ///< control-plane bytes received as probes
  // Flowlet churn (all flowlet-switching planes).
  CounterId flowlets_created, flowlets_switched, flowlets_expired, flowlets_flushed;
  // Failure handling + loop breaking.
  CounterId failure_detections, failure_clears, loop_breaks;
  CounterId link_down_events, link_up_events;
  // Link-level loss.
  CounterId link_drops, link_ecn_marks;
  // Data forwarding outcomes.
  CounterId data_forwarded, data_dropped_no_route, data_dropped_ttl;
  // Transport.
  CounterId tcp_rto_fired, tcp_fast_retx, flows_started, flows_completed;
  // CONGA in-band feedback.
  CounterId conga_feedback_sent, conga_feedback_received;
  // Parallel engine (per-shard registries; merged view sums them).
  CounterId par_epochs;            ///< phases this shard actually ran work in
  CounterId par_idle_skips;       ///< phases this shard skipped the barrier (provably idle)
  CounterId par_mailbox_hops;     ///< cross-shard packets drained into this shard
  CounterId par_mailbox_batches;  ///< non-empty mailbox drain passes
  CounterId par_shards_fused;     ///< partition-time shard fusions (shard 0 only)
  // Churn engine (DESIGN.md §13).
  CounterId churn_waves;          ///< fault waves injected by the churn engine
  CounterId gray_loss_drops;      ///< packets lost to gray-failure loss draws
  CounterId switch_restarts;      ///< control-plane restarts injected
  // Distributions.
  HistogramId drop_queue_bytes;   ///< queue depth (bytes) at each drop
  HistogramId probe_path_len;     ///< mv.len of accepted probes
  HistogramId par_batch_size;     ///< hops per non-empty mailbox drain batch
  HistogramId fct_us;             ///< flow completion time (µs) of completed TCP flows

  explicit CoreMetrics(MetricsRegistry& registry);
};

class Telemetry {
 public:
  Telemetry() : core_(registry_) {}

  MetricsRegistry& metrics() { return registry_; }
  const MetricsRegistry& metrics() const { return registry_; }
  const CoreMetrics& core() const { return core_; }

  /// Whether a trace sink is attached. Gate any tracing-only bookkeeping
  /// (route-flip scans, flowlet tombstones) on this.
  bool tracing() const { return sink_ != nullptr; }
  void set_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }

  void emit(const TraceRecord& record) {
    if (sink_ != nullptr) sink_->write(record);
  }

 private:
  MetricsRegistry registry_;
  CoreMetrics core_;
  TraceSink* sink_ = nullptr;
};

}  // namespace contra::obs
