// Run manifests: every telemetry-producing run writes a small JSON file next
// to its trace describing exactly what ran — topology, policy, plane, seed,
// workload knobs, build flags, and an FNV-1a hash over the canonical
// configuration string. Two runs are comparable iff their config hashes
// match; the hash changing tells you *why* two traces differ before you
// read a single record.
#pragma once

#include <cstdint>
#include <string>

namespace contra::obs {

struct RunManifest {
  int schema = 1;
  std::string tool;         ///< producing binary, e.g. "contrasim"
  std::string topology;     ///< --builtin spec or topology file path
  uint32_t nodes = 0;
  uint32_t links = 0;
  std::string plane;        ///< contra / ecmp / hula / spain / sp
  std::string policy;       ///< policy text ("" for baseline planes)
  std::string workload;     ///< workload name ("" when no traffic)
  uint64_t seed = 0;
  double load = 0.0;
  double duration_s = 0.0;
  double probe_period_s = 0.0;
  double link_bps = 0.0;
  std::string build_type;   ///< "debug" / "optimized" (NDEBUG)
  std::string compiler;     ///< __VERSION__ of the building compiler

  /// Filled by make() from compile-time facts.
  static RunManifest make(std::string tool);

  /// Canonical "key=value;" string the config hash covers (excludes build
  /// info: the same experiment built twice should hash identically).
  std::string canonical_config() const;
  /// FNV-1a over canonical_config().
  uint64_t config_hash() const;

  std::string to_json() const;
  /// Writes to_json() to `path`; false on I/O failure.
  bool write(const std::string& path) const;
};

/// Conventional manifest location for a trace file: "x.jsonl" →
/// "x.manifest.json", anything else → "<path>.manifest.json".
/// tools/telemetry_report.py applies the same rule.
std::string manifest_path_for(const std::string& trace_path);

}  // namespace contra::obs
