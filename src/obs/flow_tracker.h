// Dataplane flow telemetry: per-flow lifecycle records and sampled INT-style
// path records (the paper's §6 evidence, measured instead of inferred).
//
// The tracker is an opt-in sink the transport pushes into; with no tracker
// attached the transport pays one predictable branch per hook site and the
// simulator pays one branch per link hop (see DESIGN.md §11 and the
// `probe_flood_flowtrack_off` bench gate). Everything here is sim-free so it
// can be unit-tested and merged across parallel shards without touching the
// engine: under `--workers N` a flow's sender-side state lives on the source
// shard and its receiver-side state on the destination shard, and
// `merge_from` folds the two halves by flow id.
//
// Output determinism follows the trace-stream discipline: fixed key order,
// `%.9g` doubles, records sorted by a schedule-invariant key — so
// `flows.jsonl` / `paths.jsonl` are byte-identical for any worker count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/hash.h"

namespace contra::obs {

/// One recorded hop of a sampled data packet: the directed fabric link it
/// crossed, the queue depth it found there, and when.
struct PathHop {
  uint32_t link = 0;
  uint32_t queue_bytes = 0;
  double t = 0.0;
};

/// Per-flow lifecycle record. Sender-side fields (start/end, loss recovery)
/// and receiver-side fields (deliveries, path signatures) are disjoint so a
/// record split across two shards merges field-wise.
struct FlowLife {
  static constexpr uint32_t kMaxDistinctPaths = 8;

  uint64_t flow_id = 0;
  uint32_t src_host = 0;
  uint32_t dst_host = 0;
  uint64_t bytes = 0;  ///< requested flow size
  double start_t = 0.0;
  double end_t = 0.0;
  bool started = false;    ///< sender half present
  bool completed = false;

  uint64_t pkts_rx = 0;
  uint64_t bytes_rx = 0;
  uint32_t fast_retx = 0;
  uint32_t rtos = 0;
  uint64_t reordered = 0;
  /// Times the end-to-end path signature changed between consecutive
  /// deliveries — the realized effect of flowlet re-pins and route flips.
  uint32_t path_switches = 0;
  uint32_t distinct_paths = 0;  ///< capped at kMaxDistinctPaths
  uint8_t hops_min = 0;
  uint8_t hops_max = 0;

  uint64_t path_sigs[kMaxDistinctPaths] = {};
  uint64_t last_sig = 0;
  bool any_rx = false;

  double fct_us() const { return completed ? (end_t - start_t) * 1e6 : 0.0; }
};

/// One sampled packet's full path record.
struct PathSample {
  static constexpr uint32_t kMaxHops = 16;

  uint64_t flow_id = 0;
  uint64_t seq = 0;
  uint32_t dst_switch = 0;
  uint32_t bytes = 0;
  double t = 0.0;          ///< delivery time
  uint8_t total_hops = 0;  ///< fabric hops the packet actually crossed
  uint8_t nhops = 0;       ///< hops recorded (== total_hops unless truncated)
  PathHop hops[kMaxHops] = {};

  bool truncated() const { return nhops < total_hops; }
};

class FlowTracker {
 public:
  /// Deterministic 1-in-`every` packet sampling decision — a pure function
  /// of (flow_id, seq), so the sampled set is invariant across worker
  /// counts and identical between serial and sharded runs of the same flow
  /// ids. `every == 0` disables sampling.
  static bool sampled(uint64_t flow_id, uint64_t seq, uint32_t every) {
    return every != 0 && util::mix64(util::hash_combine(flow_id, seq)) % every == 0;
  }

  // Sender-side hooks.
  void on_start(uint64_t flow_id, uint32_t src_host, uint32_t dst_host, uint64_t bytes,
                double t);
  void on_complete(uint64_t flow_id, double t);
  void on_rto(uint64_t flow_id);
  void on_fast_retx(uint64_t flow_id);

  // Receiver-side hooks.
  void on_data(uint64_t flow_id, uint32_t bytes, uint64_t path_sig, uint8_t hops,
               bool reordered);
  void on_path_sample(uint64_t flow_id, uint64_t seq, uint32_t dst_switch, uint32_t bytes,
                      double t, uint8_t total_hops, const PathHop* hops, uint8_t nhops);

  /// Folds another tracker's state in (parallel shards; see file comment).
  void merge_from(const FlowTracker& other);

  size_t num_flows() const { return flows_.size(); }
  size_t num_path_samples() const { return samples_.size(); }

  /// Flows sorted by (start_t, flow_id) — schedule-invariant order.
  std::vector<FlowLife> sorted_flows() const;
  /// Path samples sorted by (t, flow_id, seq).
  std::vector<PathSample> sorted_path_samples() const;

  /// One fixed-key-order JSONL line per record (no trailing newline);
  /// returns bytes written.
  static size_t flow_jsonl(const FlowLife& flow, char* buf, size_t cap);
  static size_t path_jsonl(const PathSample& sample, char* buf, size_t cap);

  void write_flows_jsonl(std::ostream& out) const;
  void write_paths_jsonl(std::ostream& out) const;

  /// FCT percentile summary (p50/p95/p99 in µs) bucketed by flow size,
  /// one JSON object (see OBSERVABILITY.md "Flow telemetry").
  std::string summary_json() const;

 private:
  FlowLife& life(uint64_t flow_id);

  std::unordered_map<uint64_t, FlowLife> flows_;
  std::vector<PathSample> samples_;
};

}  // namespace contra::obs
