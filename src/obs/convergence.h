// Convergence analysis over the control-plane trace stream.
//
// Consumes TraceRecords (live, as a sink in a FanoutSink chain, or replayed
// from a JSONL file via read_jsonl) and derives the §5 protocol-dynamics
// quantities the paper argues about but end-of-run aggregates cannot show:
//
//   * per-destination time-to-quiescence — the time of the last BestT route
//     flip anywhere in the fabric for that destination;
//   * route-flap counts — how often the chosen path changed, total and
//     after the first failure;
//   * per-wave re-convergence latency — faults partition the run into waves
//     (a churn_wave record when the churn engine drives the run, else every
//     link_down/link_up/restart transition), and each wave's window runs
//     from its fault to the last flip before the next fault. Reported as a
//     distribution, bucketed per fault class (Fig. 14's recovery question
//     under sustained churn, not just a single failure).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace contra::obs {

class ConvergenceTracker : public TraceSink {
 public:
  struct DestReport {
    uint32_t dst = kNoField;
    uint64_t flips = 0;               ///< route flips across all switches
    double first_route_at = -1.0;     ///< first flip (initial route found)
    double quiesced_at = -1.0;        ///< last flip: quiescent afterwards
    uint64_t post_failure_flips = 0;  ///< flips after the first failure
    /// Worst per-wave window for this destination: max over waves of (last
    /// flip inside the wave − wave start). Falls back to the legacy
    /// last-flip − first-failure measure when the stream had no wave
    /// anchors at all.
    double reconvergence_s = -1.0;
  };

  /// One fault wave: the window from its anchor to the last flip before the
  /// next wave's anchor.
  struct WaveReport {
    double start = -1.0;
    uint32_t fault_class = kNoField;  ///< FaultClass, or kNoField (raw link event)
    uint64_t flips = 0;               ///< route flips inside the window
    double reconvergence_s = -1.0;    ///< last flip − start; -1 = no reaction
    /// Trigger-wave width: DISTINCT switches that emitted a triggered update
    /// (probe_trigger) inside the window — how far the event-driven control
    /// plane's reaction spread through the fabric (DESIGN.md §12). 0 under
    /// the periodic control plane.
    uint64_t trigger_width = 0;
    uint64_t trigger_records = 0;  ///< total probe_trigger records in the window
  };

  /// Reconvergence distribution of one fault class.
  struct ClassReport {
    uint32_t fault_class = kNoField;
    uint64_t waves = 0;      ///< waves of this class
    uint64_t reacted = 0;    ///< waves with at least one route flip
    double min_s = -1.0, mean_s = -1.0, max_s = -1.0;  ///< over reacted waves
    uint64_t max_trigger_width = 0;   ///< widest trigger wave of this class
    double mean_trigger_width = 0.0;  ///< over all waves of the class
  };

  struct Report {
    std::array<uint64_t, kNumEv> counts{};  ///< records seen, by event type
    uint64_t total_records = 0;
    double first_failure_at = -1.0;  ///< first link_down / failure_detect
    std::vector<DestReport> destinations;  ///< sorted by dst
    std::vector<WaveReport> waves;         ///< in wave-start order
    std::vector<ClassReport> by_class;     ///< sorted by fault_class

    uint64_t count(Ev ev) const { return counts[static_cast<size_t>(ev)]; }
    /// Human-readable convergence table.
    std::string to_string() const;
  };

  void write(const TraceRecord& record) override { observe(record); }
  void observe(const TraceRecord& record);
  void observe_all(const std::vector<TraceRecord>& records);

  Report report() const;

 private:
  struct DestState {
    uint64_t flips = 0;
    double first_flip = -1.0;
    double last_flip = -1.0;
    uint64_t post_failure_flips = 0;
    double last_post_failure_flip = -1.0;
    double max_wave_reconv = -1.0;  ///< worst per-wave window (see DestReport)
  };
  struct Wave {
    double start = 0.0;
    uint32_t fault_class = kNoField;
    uint64_t flips = 0;
    double last_flip = -1.0;
    std::set<uint32_t> trigger_switches;  ///< distinct probe_trigger emitters
    uint64_t trigger_records = 0;
  };

  std::array<uint64_t, kNumEv> counts_{};
  uint64_t total_records_ = 0;
  double first_failure_at_ = -1.0;
  std::vector<Wave> waves_;
  /// Once the stream carries churn_wave anchors, raw link events stop opening
  /// waves (the engine emits its anchor before the events it injects).
  bool saw_churn_wave_ = false;
  std::map<uint32_t, DestState> dests_;  ///< ordered: deterministic reports
};

}  // namespace contra::obs
