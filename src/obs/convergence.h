// Convergence analysis over the control-plane trace stream.
//
// Consumes TraceRecords (live, as a sink in a FanoutSink chain, or replayed
// from a JSONL file via read_jsonl) and derives the §5 protocol-dynamics
// quantities the paper argues about but end-of-run aggregates cannot show:
//
//   * per-destination time-to-quiescence — the time of the last BestT route
//     flip anywhere in the fabric for that destination;
//   * route-flap counts — how often the chosen path changed, total and
//     after the first failure;
//   * post-failure re-convergence latency — last flip for the destination
//     after the first link failure, minus the failure time (Fig. 14's
//     recovery question, answered per destination).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace contra::obs {

class ConvergenceTracker : public TraceSink {
 public:
  struct DestReport {
    uint32_t dst = kNoField;
    uint64_t flips = 0;               ///< route flips across all switches
    double first_route_at = -1.0;     ///< first flip (initial route found)
    double quiesced_at = -1.0;        ///< last flip: quiescent afterwards
    uint64_t post_failure_flips = 0;  ///< flips after the first failure
    double reconvergence_s = -1.0;    ///< last post-failure flip − failure time
  };

  struct Report {
    std::array<uint64_t, kNumEv> counts{};  ///< records seen, by event type
    uint64_t total_records = 0;
    double first_failure_at = -1.0;  ///< first link_down / failure_detect
    std::vector<DestReport> destinations;  ///< sorted by dst

    uint64_t count(Ev ev) const { return counts[static_cast<size_t>(ev)]; }
    /// Human-readable convergence table.
    std::string to_string() const;
  };

  void write(const TraceRecord& record) override { observe(record); }
  void observe(const TraceRecord& record);
  void observe_all(const std::vector<TraceRecord>& records);

  Report report() const;

 private:
  struct DestState {
    uint64_t flips = 0;
    double first_flip = -1.0;
    double last_flip = -1.0;
    uint64_t post_failure_flips = 0;
    double last_post_failure_flip = -1.0;
  };

  std::array<uint64_t, kNumEv> counts_{};
  uint64_t total_records_ = 0;
  double first_failure_at_ = -1.0;
  std::map<uint32_t, DestState> dests_;  ///< ordered: deterministic reports
};

}  // namespace contra::obs
