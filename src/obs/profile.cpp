#include "obs/profile.h"

#include <cstdio>
#include <ostream>

namespace contra::obs {

EngineProfiler::EngineProfiler(uint32_t num_tracks)
    : tracks_(num_tracks == 0 ? 1 : num_tracks) {
  // Keep the hot-path push_backs amortized from the start; profiling runs
  // are short, so a few thousand spans per track is plenty of headroom.
  for (auto& track : tracks_) track.reserve(4096);
}

void EngineProfiler::add_span(uint32_t track, const char* name, double ts_us, double dur_us) {
  tracks_[track].push_back(Span{name, ts_us, dur_us});
}

size_t EngineProfiler::num_spans() const {
  size_t n = 0;
  for (const auto& track : tracks_) n += track.size();
  return n;
}

void EngineProfiler::write_chrome_trace(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  char buf[192];
  bool first = true;
  for (uint32_t tid = 0; tid < num_tracks(); ++tid) {
    for (const Span& span : tracks_[tid]) {
      const int n = std::snprintf(
          buf, sizeof buf,
          "%s{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%u}",
          first ? "" : ",", span.name, span.ts_us, span.dur_us, tid);
      if (n > 0) out.write(buf, n);
      first = false;
    }
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace contra::obs
