// Engine profiling: wall-clock spans exported in the Chrome trace-event JSON
// format, loadable in Perfetto / chrome://tracing (`contrasim
// --engine-profile out.json`).
//
// Tracks map to trace `tid`s: one per shard (spans for mailbox drains and
// phase execution, recorded by the shard's own worker thread) plus one
// scheduler track for the main thread's planning and fork-join barriers.
// Thread safety is by construction — each track is written by exactly one
// thread, matching the engine's single-writer discipline — so add_span is a
// plain push_back with no synchronization. Profiling is opt-in; with no
// profiler attached the engine pays one null-check per phase.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace contra::obs {

class EngineProfiler {
 public:
  /// `num_tracks` = shards + 1; the last track is the scheduler.
  explicit EngineProfiler(uint32_t num_tracks);

  uint32_t num_tracks() const { return static_cast<uint32_t>(tracks_.size()); }
  uint32_t scheduler_track() const { return num_tracks() - 1; }

  /// Records one complete span. `name` must outlive the profiler (the
  /// engine passes string literals). Times are wall-clock µs relative to an
  /// epoch the caller fixes (the engine uses its run_until entry).
  void add_span(uint32_t track, const char* name, double ts_us, double dur_us);

  size_t num_spans() const;

  /// Chrome trace-event JSON: {"traceEvents":[{"name","ph":"X","ts","dur",
  /// "pid":0,"tid":track}, …]} — complete-event ("X") spans only.
  void write_chrome_trace(std::ostream& out) const;

 private:
  struct Span {
    const char* name;
    double ts_us;
    double dur_us;
  };

  std::vector<std::vector<Span>> tracks_;
};

}  // namespace contra::obs
