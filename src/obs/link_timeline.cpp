#include "obs/link_timeline.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace contra::obs {

LinkTimeline::LinkTimeline(uint32_t num_links, uint32_t capacity_per_link)
    : rings_(num_links), capacity_(capacity_per_link == 0 ? 1 : capacity_per_link) {}

void LinkTimeline::add(uint32_t link, double t, double util, uint64_t queue_bytes) {
  Ring& ring = rings_[link];
  if (ring.data.empty()) ring.data.resize(capacity_);
  ring.data[ring.next] = Sample{t, util, queue_bytes};
  ring.next = (ring.next + 1) % capacity_;
  if (ring.count < capacity_) ++ring.count;
}

std::vector<LinkTimeline::Sample> LinkTimeline::samples(uint32_t link) const {
  const Ring& ring = rings_[link];
  std::vector<Sample> out;
  if (ring.count == 0) return out;
  out.reserve(ring.count);
  // Ring arithmetic uses the ring's own size: merge_from may adopt rings
  // built with a different per-link capacity.
  const uint32_t cap = static_cast<uint32_t>(ring.data.size());
  const uint32_t start = (ring.next + cap - ring.count) % cap;
  for (uint32_t i = 0; i < ring.count; ++i) out.push_back(ring.data[(start + i) % cap]);
  return out;
}

double LinkTimeline::util_at(uint32_t link, double t) const {
  const Ring& ring = rings_[link];
  if (ring.count == 0) return 0.0;
  const uint32_t cap = static_cast<uint32_t>(ring.data.size());
  const uint32_t start = (ring.next + cap - ring.count) % cap;
  // Scan newest-first: samples are appended in time order.
  for (uint32_t i = ring.count; i-- > 0;) {
    const Sample& s = ring.data[(start + i) % cap];
    if (s.t <= t) return s.util;
  }
  return 0.0;
}

void LinkTimeline::merge_from(const LinkTimeline& other) {
  if (rings_.size() < other.rings_.size()) rings_.resize(other.rings_.size());
  if (capacity_ == 0) capacity_ = other.capacity_;
  for (size_t l = 0; l < other.rings_.size(); ++l) {
    if (other.rings_[l].count > 0) rings_[l] = other.rings_[l];
  }
}

void LinkTimeline::write_jsonl(std::ostream& out) const {
  struct Row {
    double t;
    uint32_t link;
    double util;
    uint64_t queue_bytes;
  };
  std::vector<Row> rows;
  for (uint32_t l = 0; l < num_links(); ++l) {
    for (const Sample& s : samples(l)) rows.push_back(Row{s.t, l, s.util, s.queue_bytes});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.link < b.link;
  });
  char buf[192];
  for (const Row& row : rows) {
    const int n =
        std::snprintf(buf, sizeof buf, "{\"t\":%.9g,\"link\":%u,\"util\":%.9g,\"q\":%llu}\n",
                      row.t, row.link, row.util, static_cast<unsigned long long>(row.queue_bytes));
    if (n > 0) out.write(buf, n);
  }
}

}  // namespace contra::obs
