#include "obs/telemetry.h"

namespace contra::obs {

CoreMetrics::CoreMetrics(MetricsRegistry& r)
    : probes_originated(r.counter("probes_originated")),
      probes_received(r.counter("probes_received")),
      probes_accepted(r.counter("probes_accepted")),
      probes_rejected_stale(r.counter("probes_rejected_stale")),
      probes_rejected_rank(r.counter("probes_rejected_rank")),
      probes_rejected_no_pg(r.counter("probes_rejected_no_pg")),
      fwdt_updates(r.counter("fwdt_updates")),
      route_flips(r.counter("route_flips")),
      probes_suppressed(r.counter("probes_suppressed")),
      dense_fallback_hits(r.counter("dense_fallback_hits")),
      probes_triggered(r.counter("probes_triggered")),
      probes_holddown_deferred(r.counter("probes_holddown_deferred")),
      keepalive_probes(r.counter("keepalive_probes")),
      probes_withdrawn(r.counter("probes_withdrawn")),
      probe_bytes_rx(r.counter("probe_bytes_rx")),
      flowlets_created(r.counter("flowlets_created")),
      flowlets_switched(r.counter("flowlets_switched")),
      flowlets_expired(r.counter("flowlets_expired")),
      flowlets_flushed(r.counter("flowlets_flushed")),
      failure_detections(r.counter("failure_detections")),
      failure_clears(r.counter("failure_clears")),
      loop_breaks(r.counter("loop_breaks")),
      link_down_events(r.counter("link_down_events")),
      link_up_events(r.counter("link_up_events")),
      link_drops(r.counter("link_drops")),
      link_ecn_marks(r.counter("link_ecn_marks")),
      data_forwarded(r.counter("data_forwarded")),
      data_dropped_no_route(r.counter("data_dropped_no_route")),
      data_dropped_ttl(r.counter("data_dropped_ttl")),
      tcp_rto_fired(r.counter("tcp_rto_fired")),
      tcp_fast_retx(r.counter("tcp_fast_retx")),
      flows_started(r.counter("flows_started")),
      flows_completed(r.counter("flows_completed")),
      conga_feedback_sent(r.counter("conga_feedback_sent")),
      conga_feedback_received(r.counter("conga_feedback_received")),
      par_epochs(r.counter("par_epochs")),
      par_idle_skips(r.counter("par_idle_skips")),
      par_mailbox_hops(r.counter("par_mailbox_hops")),
      par_mailbox_batches(r.counter("par_mailbox_batches")),
      par_shards_fused(r.counter("par_shards_fused")),
      churn_waves(r.counter("churn_waves")),
      gray_loss_drops(r.counter("gray_loss_drops")),
      switch_restarts(r.counter("switch_restarts")),
      // Queue depth at drop, in bytes; bounds at MSS multiples of a
      // 1000×1500B drop-tail queue.
      drop_queue_bytes(r.histogram("drop_queue_bytes",
                                   {15e3, 150e3, 375e3, 750e3, 1125e3, 1.5e6})),
      probe_path_len(r.histogram("probe_path_len", {1, 2, 3, 4, 6, 8, 12, 16})),
      par_batch_size(r.histogram("par_batch_size", {1, 4, 16, 64, 256, 1024})),
      // FCT in µs; bounds span intra-rack mice through multi-RTT elephants.
      fct_us(r.histogram("fct_us", {10, 50, 100, 500, 1e3, 5e3, 1e4, 5e4, 1e5})) {}

}  // namespace contra::obs
