// Structured control-plane trace stream.
//
// Every protocol-visible state transition — probe lifecycle, FwdT/BestT
// mutations, route flips, flowlet churn, failure detection, loop breaking,
// link failures — is describable as one fixed-width TraceRecord. Records are
// emitted through obs::Telemetry into a TraceSink; with no sink attached the
// emit call is a single predictable branch, so instrumentation can stay in
// the hot paths permanently (the bench gate holds it to zero allocations and
// <10% throughput cost).
//
// The on-disk format is JSONL, one record per line with a fixed key order,
// written by JsonlTraceSink and parsed back by read_jsonl — the same schema
// tools/telemetry_report.py consumes (see docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace contra::obs {

/// Trace event types. Names (ev_name) are the wire identifiers — stable,
/// snake_case, documented in docs/OBSERVABILITY.md.
enum class Ev : uint8_t {
  kProbeOrig = 0,      ///< destination originated a probe round entry
  kProbeRx,            ///< probe arrived at a switch
  kProbeAccept,        ///< probe adopted into FwdT (new or updated entry)
  kProbeRejectStale,   ///< versioned-probe staleness drop (§5.1)
  kProbeRejectRank,    ///< same-version probe lost the rank comparison
  kProbeRejectNoPg,    ///< no PG transition for the carried tag
  kRouteFlip,          ///< BestT choice for a destination changed
  kFlowletCreate,      ///< first pin of a flowlet key
  kFlowletSwitch,      ///< re-pin of a known flowlet onto a different next hop
  kFlowletExpire,      ///< inter-packet gap exceeded the flowlet timeout
  kFlowletFlush,       ///< forced removal (loop breaking, failure expiry)
  kFailureDetect,      ///< probe silence: link presumed failed (§5.4)
  kFailureClear,       ///< probes resumed on a presumed-failed link
  kLoopBreak,          ///< TTL-spread loop detector fired (§5.5)
  kLinkDown,           ///< cable administratively failed
  kLinkUp,             ///< cable restored
  kDrop,               ///< link dropped a packet (queue full or link down)
  kEpoch,              ///< parallel engine: epoch boundary reached (sw=shard)
  kBarrier,            ///< parallel engine: mailbox drain at a barrier (sw=shard)
  // Appended (schema is append-only; numeric order is not the wire format):
  kProbeSuppress,      ///< accepted probe not re-broadcast: quantized advert unchanged
  kDenseFallback,      ///< probe key outside the compiled dense FwdT universe
  kProbeTrigger,       ///< triggered-update emission for a destination (aux=probe copies)
  kProbeWithdraw,      ///< poison advert sent/accepted for a now-unusable row
  kChurnWave,          ///< churn engine wave starts (aux=FaultClass, value=wave index)
  kGrayDegrade,        ///< gray-failure state changed on a cable (value=loss prob)
  kSwitchRestart,      ///< control-plane restart injected at a switch
  kCount,
};

inline constexpr size_t kNumEv = static_cast<size_t>(Ev::kCount);

std::string_view ev_name(Ev ev);
std::optional<Ev> ev_from_name(std::string_view name);

/// Fault-class taxonomy of the churn engine (DESIGN.md §13), carried in
/// TraceRecord::aux of kChurnWave records so the ConvergenceTracker can
/// bucket reconvergence windows per class without depending on the engine.
enum class FaultClass : uint32_t {
  kFlap = 0,   ///< link flapping at a tunable frequency
  kSrg,        ///< correlated failure over a shared-risk group
  kGray,       ///< gray failure: loss / added latency / capacity derate
  kDrift,      ///< metric drift: oscillating link degradation
  kDrain,      ///< maintenance drain: deep capacity derate, link stays up
  kRestart,    ///< control-plane restart of one switch
  kCount,
};
std::string_view fault_class_name(FaultClass cls);

/// Field sentinel: "not applicable to this event".
inline constexpr uint32_t kNoField = 0xffffffffu;

/// One trace event. Trivially copyable on purpose: records pass through
/// sinks and memory buffers without touching the heap.
struct TraceRecord {
  double t = 0.0;          ///< simulation time, seconds
  Ev ev = Ev::kProbeRx;
  uint32_t sw = kNoField;   ///< switch observing the event
  uint32_t dst = kNoField;  ///< traffic destination / probe origin
  uint32_t tag = kNoField;  ///< PG tag
  uint32_t pid = kNoField;  ///< probe id
  uint32_t link = kNoField; ///< directed link id (event-specific direction)
  uint32_t aux = kNoField;  ///< event-specific: old nhop, packet kind, TTL…
  uint64_t version = 0;     ///< probe version, 0 when n/a
  double value = 0.0;       ///< event-specific scalar: util, age, spread…
};
static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "trace records must copy without touching the heap");

/// Formats a record as one JSONL line (no trailing newline) into `out`,
/// which must hold at least kMaxLineBytes. Returns the byte count.
inline constexpr size_t kMaxLineBytes = 256;
size_t format_jsonl(const TraceRecord& record, char* out);

/// Parses one line of the JSONL schema back into a record. Returns nullopt
/// on malformed input (wrong schema, unknown event name).
std::optional<TraceRecord> parse_jsonl_line(std::string_view line);

/// Reads a whole JSONL stream; malformed lines are skipped and counted into
/// `*bad_lines` when provided.
std::vector<TraceRecord> read_jsonl(std::istream& in, size_t* bad_lines = nullptr);

// ----- sinks ---------------------------------------------------------------

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceRecord& record) = 0;
  virtual void flush() {}
};

/// Buffers records in memory; the test- and analysis-friendly sink.
class MemoryTraceSink : public TraceSink {
 public:
  void write(const TraceRecord& record) override { records_.push_back(record); }
  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

/// Streams JSONL lines to an ostream (file or stringstream). The stream must
/// outlive the sink.
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out) : out_(&out) {}
  void write(const TraceRecord& record) override;
  void flush() override;
  uint64_t records_written() const { return written_; }

 private:
  std::ostream* out_;
  uint64_t written_ = 0;
};

/// Duplicates every record into each registered sink (e.g. JSONL file plus a
/// live ConvergenceTracker).
class FanoutSink : public TraceSink {
 public:
  void add(TraceSink* sink) { sinks_.push_back(sink); }
  void write(const TraceRecord& record) override {
    for (TraceSink* sink : sinks_) sink->write(record);
  }
  void flush() override {
    for (TraceSink* sink : sinks_) sink->flush();
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace contra::obs
