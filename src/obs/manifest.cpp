#include "obs/manifest.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

namespace contra::obs {

namespace {

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

RunManifest RunManifest::make(std::string tool) {
  RunManifest m;
  m.tool = std::move(tool);
#ifdef NDEBUG
  m.build_type = "optimized";
#else
  m.build_type = "debug";
#endif
#ifdef __VERSION__
  m.compiler = __VERSION__;
#else
  m.compiler = "unknown";
#endif
  return m;
}

std::string RunManifest::canonical_config() const {
  std::ostringstream out;
  out << "schema=" << schema << ";tool=" << tool << ";topology=" << topology
      << ";nodes=" << nodes << ";links=" << links << ";plane=" << plane
      << ";policy=" << policy << ";workload=" << workload << ";seed=" << seed
      << ";load=" << fmt_double(load) << ";duration_s=" << fmt_double(duration_s)
      << ";probe_period_s=" << fmt_double(probe_period_s)
      << ";link_bps=" << fmt_double(link_bps) << ";";
  return out.str();
}

uint64_t RunManifest::config_hash() const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : canonical_config()) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string RunManifest::to_json() const {
  char hash_hex[24];
  std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                static_cast<unsigned long long>(config_hash()));
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": " << schema << ",\n";
  out << "  \"tool\": \"" << escape_json(tool) << "\",\n";
  out << "  \"topology\": \"" << escape_json(topology) << "\",\n";
  out << "  \"nodes\": " << nodes << ",\n";
  out << "  \"links\": " << links << ",\n";
  out << "  \"plane\": \"" << escape_json(plane) << "\",\n";
  out << "  \"policy\": \"" << escape_json(policy) << "\",\n";
  out << "  \"workload\": \"" << escape_json(workload) << "\",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"load\": " << fmt_double(load) << ",\n";
  out << "  \"duration_s\": " << fmt_double(duration_s) << ",\n";
  out << "  \"probe_period_s\": " << fmt_double(probe_period_s) << ",\n";
  out << "  \"link_bps\": " << fmt_double(link_bps) << ",\n";
  out << "  \"config_hash\": \"" << hash_hex << "\",\n";
  out << "  \"build\": {\"type\": \"" << escape_json(build_type) << "\", \"compiler\": \""
      << escape_json(compiler) << "\"}\n";
  out << "}\n";
  return out.str();
}

bool RunManifest::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

std::string manifest_path_for(const std::string& trace_path) {
  static constexpr std::string_view kJsonl = ".jsonl";
  if (trace_path.size() > kJsonl.size() &&
      trace_path.compare(trace_path.size() - kJsonl.size(), kJsonl.size(), kJsonl) == 0) {
    return trace_path.substr(0, trace_path.size() - kJsonl.size()) + ".manifest.json";
  }
  return trace_path + ".manifest.json";
}

}  // namespace contra::obs
