#include "obs/flow_tracker.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "metrics/quantile.h"

namespace contra::obs {

FlowLife& FlowTracker::life(uint64_t flow_id) {
  FlowLife& flow = flows_[flow_id];
  flow.flow_id = flow_id;
  return flow;
}

void FlowTracker::on_start(uint64_t flow_id, uint32_t src_host, uint32_t dst_host,
                           uint64_t bytes, double t) {
  FlowLife& flow = life(flow_id);
  flow.src_host = src_host;
  flow.dst_host = dst_host;
  flow.bytes = bytes;
  flow.start_t = t;
  flow.started = true;
}

void FlowTracker::on_complete(uint64_t flow_id, double t) {
  FlowLife& flow = life(flow_id);
  flow.end_t = t;
  flow.completed = true;
}

void FlowTracker::on_rto(uint64_t flow_id) { ++life(flow_id).rtos; }

void FlowTracker::on_fast_retx(uint64_t flow_id) { ++life(flow_id).fast_retx; }

void FlowTracker::on_data(uint64_t flow_id, uint32_t bytes, uint64_t path_sig, uint8_t hops,
                          bool reordered) {
  FlowLife& flow = life(flow_id);
  ++flow.pkts_rx;
  flow.bytes_rx += bytes;
  if (reordered) ++flow.reordered;
  if (!flow.any_rx) {
    flow.hops_min = hops;
    flow.hops_max = hops;
  } else {
    flow.hops_min = std::min(flow.hops_min, hops);
    flow.hops_max = std::max(flow.hops_max, hops);
    if (path_sig != flow.last_sig) ++flow.path_switches;
  }
  flow.any_rx = true;
  flow.last_sig = path_sig;
  bool known = false;
  for (uint32_t i = 0; i < flow.distinct_paths; ++i) {
    if (flow.path_sigs[i] == path_sig) {
      known = true;
      break;
    }
  }
  if (!known && flow.distinct_paths < FlowLife::kMaxDistinctPaths) {
    flow.path_sigs[flow.distinct_paths++] = path_sig;
  }
}

void FlowTracker::on_path_sample(uint64_t flow_id, uint64_t seq, uint32_t dst_switch,
                                 uint32_t bytes, double t, uint8_t total_hops,
                                 const PathHop* hops, uint8_t nhops) {
  PathSample sample;
  sample.flow_id = flow_id;
  sample.seq = seq;
  sample.dst_switch = dst_switch;
  sample.bytes = bytes;
  sample.t = t;
  sample.total_hops = total_hops;
  sample.nhops = nhops < PathSample::kMaxHops ? nhops : PathSample::kMaxHops;
  for (uint8_t i = 0; i < sample.nhops; ++i) sample.hops[i] = hops[i];
  samples_.push_back(sample);
}

void FlowTracker::merge_from(const FlowTracker& other) {
  for (const auto& [id, theirs] : other.flows_) {
    FlowLife& flow = life(id);
    // Sender half: ownership of start/end/size follows the `started` flag.
    if (theirs.started) {
      flow.src_host = theirs.src_host;
      flow.dst_host = theirs.dst_host;
      flow.bytes = theirs.bytes;
      flow.start_t = theirs.start_t;
      flow.started = true;
    }
    if (theirs.completed) {
      flow.end_t = theirs.end_t;
      flow.completed = true;
    }
    flow.fast_retx += theirs.fast_retx;
    flow.rtos += theirs.rtos;
    // Receiver half: at most one shard ever sees deliveries for a flow, so
    // the path stats transfer wholesale rather than interleave.
    flow.pkts_rx += theirs.pkts_rx;
    flow.bytes_rx += theirs.bytes_rx;
    flow.reordered += theirs.reordered;
    if (theirs.any_rx) {
      flow.path_switches += theirs.path_switches;
      flow.last_sig = theirs.last_sig;
      if (!flow.any_rx) {
        flow.hops_min = theirs.hops_min;
        flow.hops_max = theirs.hops_max;
      } else {
        flow.hops_min = std::min(flow.hops_min, theirs.hops_min);
        flow.hops_max = std::max(flow.hops_max, theirs.hops_max);
      }
      flow.any_rx = true;
      for (uint32_t i = 0; i < theirs.distinct_paths; ++i) {
        bool known = false;
        for (uint32_t j = 0; j < flow.distinct_paths; ++j) {
          if (flow.path_sigs[j] == theirs.path_sigs[i]) {
            known = true;
            break;
          }
        }
        if (!known && flow.distinct_paths < FlowLife::kMaxDistinctPaths) {
          flow.path_sigs[flow.distinct_paths++] = theirs.path_sigs[i];
        }
      }
    }
  }
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
}

std::vector<FlowLife> FlowTracker::sorted_flows() const {
  std::vector<FlowLife> out;
  out.reserve(flows_.size());
  for (const auto& [id, flow] : flows_) out.push_back(flow);
  std::sort(out.begin(), out.end(), [](const FlowLife& a, const FlowLife& b) {
    if (a.start_t != b.start_t) return a.start_t < b.start_t;
    return a.flow_id < b.flow_id;
  });
  return out;
}

std::vector<PathSample> FlowTracker::sorted_path_samples() const {
  std::vector<PathSample> out = samples_;
  std::sort(out.begin(), out.end(), [](const PathSample& a, const PathSample& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.flow_id != b.flow_id) return a.flow_id < b.flow_id;
    return a.seq < b.seq;
  });
  return out;
}

size_t FlowTracker::flow_jsonl(const FlowLife& flow, char* buf, size_t cap) {
  const int n = std::snprintf(
      buf, cap,
      "{\"flow\":%llu,\"src\":%u,\"dst\":%u,\"bytes\":%llu,\"start\":%.9g,\"end\":%.9g,"
      "\"fct_us\":%.9g,\"done\":%u,\"pkts\":%llu,\"bytes_rx\":%llu,\"retx\":%u,\"rtos\":%u,"
      "\"reordered\":%llu,\"path_switches\":%u,\"paths\":%u,\"hops_min\":%u,\"hops_max\":%u}",
      static_cast<unsigned long long>(flow.flow_id), flow.src_host, flow.dst_host,
      static_cast<unsigned long long>(flow.bytes), flow.start_t, flow.end_t, flow.fct_us(),
      flow.completed ? 1u : 0u, static_cast<unsigned long long>(flow.pkts_rx),
      static_cast<unsigned long long>(flow.bytes_rx), flow.fast_retx, flow.rtos,
      static_cast<unsigned long long>(flow.reordered), flow.path_switches,
      flow.distinct_paths, flow.hops_min, flow.hops_max);
  return n > 0 && static_cast<size_t>(n) < cap ? static_cast<size_t>(n) : 0;
}

size_t FlowTracker::path_jsonl(const PathSample& sample, char* buf, size_t cap) {
  int n = std::snprintf(buf, cap,
                        "{\"t\":%.9g,\"flow\":%llu,\"seq\":%llu,\"dst_sw\":%u,\"bytes\":%u,"
                        "\"total_hops\":%u,\"hops\":[",
                        sample.t, static_cast<unsigned long long>(sample.flow_id),
                        static_cast<unsigned long long>(sample.seq), sample.dst_switch,
                        sample.bytes, sample.total_hops);
  if (n <= 0) return 0;
  size_t pos = static_cast<size_t>(n);
  for (uint8_t i = 0; i < sample.nhops && pos < cap; ++i) {
    const PathHop& hop = sample.hops[i];
    n = std::snprintf(buf + pos, cap - pos, "%s{\"link\":%u,\"q\":%u,\"t\":%.9g}",
                      i == 0 ? "" : ",", hop.link, hop.queue_bytes, hop.t);
    if (n <= 0) return 0;
    pos += static_cast<size_t>(n);
  }
  if (pos + 2 >= cap) return 0;
  buf[pos++] = ']';
  buf[pos++] = '}';
  buf[pos] = '\0';
  return pos;
}

void FlowTracker::write_flows_jsonl(std::ostream& out) const {
  char buf[512];
  for (const FlowLife& flow : sorted_flows()) {
    const size_t n = flow_jsonl(flow, buf, sizeof buf);
    if (n > 0) out.write(buf, static_cast<std::streamsize>(n)).put('\n');
  }
}

void FlowTracker::write_paths_jsonl(std::ostream& out) const {
  char buf[1536];
  for (const PathSample& sample : sorted_path_samples()) {
    const size_t n = path_jsonl(sample, buf, sizeof buf);
    if (n > 0) out.write(buf, static_cast<std::streamsize>(n)).put('\n');
  }
}

std::string FlowTracker::summary_json() const {
  // Size buckets mirroring the paper's small/medium/large flow split.
  static constexpr struct {
    const char* name;
    uint64_t lo;
    uint64_t hi;
  } kBuckets[] = {
      {"all", 0, UINT64_MAX},
      {"lt_10KB", 0, 10'000},
      {"10KB_100KB", 10'000, 100'000},
      {"100KB_1MB", 100'000, 1'000'000},
      {"ge_1MB", 1'000'000, UINT64_MAX},
  };

  uint64_t started = 0;
  uint64_t completed = 0;
  for (const auto& [id, flow] : flows_) {
    if (flow.started) ++started;
    if (flow.completed) ++completed;
  }

  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"flows_started\":%llu,\"flows_completed\":%llu,\"path_samples\":%llu,"
                "\"fct_us\":{",
                static_cast<unsigned long long>(started),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(samples_.size()));
  out += buf;
  bool first = true;
  for (const auto& bucket : kBuckets) {
    std::vector<double> fcts;
    for (const auto& [id, flow] : flows_) {
      if (flow.completed && flow.bytes >= bucket.lo && flow.bytes < bucket.hi) {
        fcts.push_back(flow.fct_us());
      }
    }
    std::sort(fcts.begin(), fcts.end());
    std::snprintf(buf, sizeof buf, "%s\"%s\":{\"n\":%zu,\"p50\":%.9g,\"p95\":%.9g,\"p99\":%.9g}",
                  first ? "" : ",", bucket.name, fcts.size(), metrics::quantile(fcts, 0.5),
                  metrics::quantile(fcts, 0.95), metrics::quantile(fcts, 0.99));
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace contra::obs
