#include "compiler/state_accounting.h"

#include <algorithm>

namespace contra::compiler {

namespace {

uint64_t bits_to_bytes(uint64_t bits) { return (bits + 7) / 8; }

}  // namespace

void account_state(CompileResult& result, const CompileOptions& options) {
  const uint64_t tag_bytes = std::max<uint64_t>(1, bits_to_bytes(result.tag_bits()));
  const uint64_t num_pids = result.num_pids();
  const uint64_t num_attrs = result.decomposition.attrs.size();

  // Count valid destinations once (a probe origin exists for each).
  uint64_t num_destinations = 0;
  for (const SwitchConfig& cfg : result.switches) {
    if (cfg.is_destination) ++num_destinations;
  }

  for (SwitchConfig& cfg : result.switches) {
    StateFootprint& fp = cfg.footprint;

    // FwdT: one entry per (destination, local tag, pid). On a connected
    // topology probes from every valid destination reach every useful
    // virtual node, so this product is the steady-state table size — and the
    // dense row index, when built, materializes exactly this universe.
    fp.fwdt_entries = cfg.dense.empty()
                          ? num_destinations * cfg.local_tags.size() * num_pids
                          : cfg.dense.num_rows();
    const uint64_t key_bytes = 2 + tag_bytes + 1;              // dst + tag + pid
    const uint64_t mv_bytes = 4 * num_attrs;                   // fixed-point metrics
    const uint64_t action_bytes = tag_bytes + 2 + 2;           // ntag + nhop + version
    fp.fwdt_bytes = fp.fwdt_entries * (key_bytes + mv_bytes + action_bytes);

    // BestT: the best (tag, pid) key per destination.
    fp.best_bytes = num_destinations * (tag_bytes + 1);

    // Policy-aware flowlet table (§5.3): hash-indexed slots storing
    // (tag, pid, fid, nhop, ntag, timestamp).
    fp.flowlet_bytes =
        static_cast<uint64_t>(options.flowlet_slots) * (tag_bytes + 1 + 4 + 2 + tag_bytes + 4);

    // Loop-detection table (§5.5): hash, maxttl, minttl per slot.
    fp.loop_table_bytes = static_cast<uint64_t>(options.loop_table_slots) * (4 + 1 + 1);

    // Probe multicast groups.
    fp.multicast_bytes = cfg.multicast.size() * (tag_bytes + 2 + tag_bytes);
  }
}

}  // namespace contra::compiler
