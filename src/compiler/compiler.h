// The Contra compiler: policy + topology -> per-switch programs.
//
// Pipeline (paper §4-§5):
//   1. parse / take a Policy AST;
//   2. decompose into isotonic subpolicies (probe ids);
//   3. monotonicity + isotonicity analyses;
//   4. build + prune + tag-minimize the product graph;
//   5. derive per-switch table contents (tag step, probe multicast) and
//      state accounting;
//   6. recommend protocol parameters (probe period >= 0.5 x max RTT, §5.2).
//
// The in-process dataplane (src/dataplane) executes these artifacts
// directly; src/p4gen renders them as P4-16-style source text.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/decompose.h"
#include "analysis/isotonicity.h"
#include "analysis/monotonicity.h"
#include "compiler/switch_config.h"
#include "lang/ast.h"
#include "pg/policy_eval.h"
#include "pg/product_graph.h"
#include "topology/topology.h"

namespace contra::compiler {

struct CompileOptions {
  /// Reject non-monotonic policies (the sound default, §5.1). When false the
  /// compiler only warns — useful for experiments that demonstrate why the
  /// check exists.
  bool require_monotonic = true;
  /// Flowlet/loop-detection sizing knobs for state accounting.
  uint32_t flowlet_slots = 1024;
  uint32_t loop_table_slots = 256;
};

class CompileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Everything the runtime needs. Holds a reference to the topology passed to
/// compile(); the topology must outlive the CompileResult.
struct CompileResult {
  analysis::Decomposition decomposition;
  analysis::MonotonicityReport monotonicity;
  analysis::IsotonicityReport isotonicity;
  pg::ProductGraph graph;
  std::vector<SwitchConfig> switches;

  /// Probe period lower bound from the §5.2 rule (0.5 x max switch RTT).
  double min_probe_period_s = 0.0;

  uint32_t num_pids() const {
    return static_cast<uint32_t>(decomposition.subpolicies.size());
  }
  uint32_t tag_bits() const { return graph.tag_bits(); }

  /// Aggregate state across switches (bytes), and the per-switch maximum —
  /// the quantity Fig. 10 plots.
  uint64_t total_state_bytes() const;
  uint64_t max_switch_state_bytes() const;

  std::string summary() const;
};

CompileResult compile(const lang::Policy& policy, const topology::Topology& topo,
                      const CompileOptions& options = {});

/// Convenience: parse and compile in one step.
CompileResult compile(const std::string& policy_text, const topology::Topology& topo,
                      const CompileOptions& options = {});

}  // namespace contra::compiler
