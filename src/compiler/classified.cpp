#include "compiler/classified.h"

#include <sstream>

namespace contra::compiler {

ClassifiedCompileResult compile_classified(const lang::ClassifiedPolicy& classified,
                                           const topology::Topology& topo,
                                           const CompileOptions& options) {
  if (classified.rules.empty()) {
    throw CompileError("classified policy has no rules");
  }
  ClassifiedCompileResult result;
  result.classified = classified;
  result.classes.reserve(classified.rules.size());
  for (const lang::TrafficClassRule& rule : classified.rules) {
    try {
      result.classes.push_back(compile(rule.policy, topo, options));
    } catch (const CompileError& e) {
      throw CompileError("class '" + rule.name + "': " + e.what());
    }
  }
  return result;
}

ClassifiedCompileResult compile_classified(const std::string& classified_text,
                                           const topology::Topology& topo,
                                           const CompileOptions& options) {
  return compile_classified(lang::parse_classified_policy(classified_text), topo, options);
}

uint64_t ClassifiedCompileResult::total_state_bytes() const {
  uint64_t total = 0;
  for (const CompileResult& cls : classes) total += cls.total_state_bytes();
  return total;
}

std::string ClassifiedCompileResult::summary() const {
  std::ostringstream out;
  out << classes.size() << " traffic class(es)";
  if (!classified.is_total()) {
    out << " [WARNING: classification is not total — unmatched flows drop at ingress]";
  }
  for (size_t i = 0; i < classes.size(); ++i) {
    out << "\n  " << classified.rules[i].name << " ("
        << lang::to_string(classified.rules[i].predicate) << "): " << classes[i].summary();
  }
  return out.str();
}

}  // namespace contra::compiler
