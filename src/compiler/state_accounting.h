// Switch-state accounting for the generated programs (reproduces the
// quantity plotted in Fig. 10).
//
// Sizing model (bytes), mirroring the P4 register/table layouts:
//   FwdT entry:  key (dst 16b + tag + pid 8b) + mv (4B per attribute) +
//                ntag + nhop 9b + version 16b
//   BestT entry: one key-sized pointer per destination
//   flowlet:     per slot: tag + pid 8b + fid 32b + nhop 9b + ntag +
//                timestamp 32b (policy-aware layout, §5.3)
//   loop table:  per slot: hash 32b + maxttl 8b + minttl 8b (§5.5)
//   multicast:   per entry: tag + port 9b + ntag
// Tag fields use the compiler-minimized tag width rounded up to bytes.
#pragma once

#include "compiler/compiler.h"

namespace contra::compiler {

struct CompileResult;
struct CompileOptions;

/// Fills footprint for every switch in the result.
void account_state(CompileResult& result, const CompileOptions& options);

}  // namespace contra::compiler
