#include "compiler/compiler.h"

#include <algorithm>
#include <sstream>

#include "compiler/state_accounting.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "util/logging.h"

namespace contra::compiler {

CompileResult compile(const lang::Policy& policy, const topology::Topology& topo,
                      const CompileOptions& options) {
  if (topo.num_nodes() == 0) throw CompileError("cannot compile against an empty topology");

  CompileResult result{
      .decomposition = analysis::decompose(policy),
      .monotonicity = {},
      .isotonicity = {},
      .graph = {},
      .switches = {},
      .min_probe_period_s = 0.0,
  };

  result.monotonicity = analysis::check_monotonicity(result.decomposition);
  if (!result.monotonicity.monotonic) {
    if (options.require_monotonic) {
      throw CompileError("policy is not monotonic: " + result.monotonicity.to_string() +
                         " — probe propagation could loop (see §5.1); set "
                         "require_monotonic=false to compile anyway");
    }
    LOG_WARN("compiler") << "compiling non-monotonic policy: "
                         << result.monotonicity.to_string();
  }
  result.isotonicity = analysis::check_isotonicity(result.decomposition);

  result.graph = pg::ProductGraph::build(topo, result.decomposition);
  result.min_probe_period_s = 0.5 * topo.max_rtt_s();

  // Per-switch table contents.
  result.switches.resize(topo.num_nodes());
  const uint32_t num_tags = result.graph.num_tags();
  for (topology::NodeId node = 0; node < topo.num_nodes(); ++node) {
    SwitchConfig& cfg = result.switches[node];
    cfg.node = node;
    cfg.name = topo.name(node);

    for (uint32_t pg_node : result.graph.nodes_at(node)) {
      cfg.local_tags.push_back(result.graph.node_tag(pg_node));
      for (const pg::PgEdge& e : result.graph.out_edges(pg_node)) {
        cfg.multicast.push_back(
            ProbeMulticastEntry{result.graph.node_tag(pg_node), e.link, e.to_tag});
      }
    }
    for (uint32_t in_tag = 0; in_tag < num_tags; ++in_tag) {
      const uint32_t local = result.graph.next_tag(in_tag, node);
      if (local != pg::kInvalidTag) cfg.tag_step.push_back(TagStepEntry{in_tag, local});
    }
    const uint32_t origin = result.graph.origin_tag(node);
    cfg.is_destination = origin != pg::kInvalidTag;
    cfg.origin_tag = cfg.is_destination ? origin : 0;
  }

  // Dense FwdT addressing needs the full destination set, so it runs as a
  // second pass. NodeId-ascending collection keeps slot order deterministic.
  std::vector<topology::NodeId> destinations;
  for (const SwitchConfig& cfg : result.switches) {
    if (cfg.is_destination) destinations.push_back(cfg.node);
  }
  const auto num_pids = static_cast<uint32_t>(result.num_pids());
  for (SwitchConfig& cfg : result.switches) {
    cfg.dense =
        build_dense_index(cfg.local_tags, num_tags, destinations, topo.num_nodes(), num_pids);
  }

  account_state(result, options);
  LOG_INFO("compiler") << "compiled policy " << lang::to_string(policy) << ": "
                       << result.summary();
  return result;
}

CompileResult compile(const std::string& policy_text, const topology::Topology& topo,
                      const CompileOptions& options) {
  return compile(lang::parse_policy(policy_text), topo, options);
}

uint64_t CompileResult::total_state_bytes() const {
  uint64_t total = 0;
  for (const SwitchConfig& cfg : switches) total += cfg.footprint.total_bytes();
  return total;
}

uint64_t CompileResult::max_switch_state_bytes() const {
  uint64_t best = 0;
  for (const SwitchConfig& cfg : switches) {
    best = std::max(best, cfg.footprint.total_bytes());
  }
  return best;
}

std::string CompileResult::summary() const {
  std::ostringstream out;
  out << decomposition.subpolicies.size() << " pid(s), " << graph.num_tags() << " tag(s) ("
      << tag_bits() << " bits), " << graph.num_nodes() << " PG nodes, " << graph.num_edges()
      << " PG edges, " << isotonicity.to_string() << ", "
      << (monotonicity.monotonic
              ? (monotonicity.strictly_monotonic ? "strictly monotonic" : "monotonic")
              : "NON-monotonic")
      << ", max switch state "
      << max_switch_state_bytes() / 1024.0 << " kB";
  return out.str();
}

}  // namespace contra::compiler
