// Compilation of classified policies (the paper's future-work traffic
// classification): each traffic class compiles independently — its own
// decomposition, product graph, probe ids — and the dataplane runs one
// protocol instance per class, dispatched by header predicates at the
// ingress switch and by the stamped class id downstream.
#pragma once

#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "lang/traffic_class.h"

namespace contra::compiler {

struct ClassifiedCompileResult {
  lang::ClassifiedPolicy classified;
  /// One full compilation per rule, same order.
  std::vector<CompileResult> classes;

  uint64_t total_state_bytes() const;
  std::string summary() const;
};

/// Compiles every rule's policy against the topology. Throws CompileError on
/// any failing class or when the rule list is empty; warns (via the summary)
/// when classification is not total (unmatched flows are dropped at ingress).
ClassifiedCompileResult compile_classified(const lang::ClassifiedPolicy& classified,
                                           const topology::Topology& topo,
                                           const CompileOptions& options = {});

ClassifiedCompileResult compile_classified(const std::string& classified_text,
                                           const topology::Topology& topo,
                                           const CompileOptions& options = {});

}  // namespace contra::compiler
