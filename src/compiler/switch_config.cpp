#include "compiler/switch_config.h"

#include <algorithm>

namespace contra::compiler {

DenseFwdIndex build_dense_index(const std::vector<uint32_t>& local_tags, uint32_t num_tags,
                                const std::vector<topology::NodeId>& destinations,
                                uint32_t num_nodes, uint32_t num_pids) {
  DenseFwdIndex index;
  index.num_pids = num_pids;

  index.slot_tags = local_tags;
  std::sort(index.slot_tags.begin(), index.slot_tags.end());
  index.slot_tags.erase(std::unique(index.slot_tags.begin(), index.slot_tags.end()),
                        index.slot_tags.end());
  index.tag_slot.assign(num_tags, DenseFwdIndex::kNoSlot);
  for (uint32_t slot = 0; slot < index.slot_tags.size(); ++slot) {
    index.tag_slot[index.slot_tags[slot]] = slot;
  }

  index.destinations = destinations;
  index.dst_slot.assign(num_nodes, DenseFwdIndex::kNoSlot);
  for (uint32_t slot = 0; slot < index.destinations.size(); ++slot) {
    index.dst_slot[index.destinations[slot]] = slot;
  }
  return index;
}

}  // namespace contra::compiler
