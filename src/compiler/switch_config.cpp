#include "compiler/switch_config.h"

// SwitchConfig is a plain data carrier; this TU anchors the module.
namespace contra::compiler {}
