// Per-switch compiled artifacts: the table contents a generated P4 program
// carries for one device (§4.2-4.3). The schema (match keys, action data) is
// shared across devices; only the entries differ.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.h"

namespace contra::compiler {

/// Probe ingress: a probe arrives carrying the neighbor's tag; the local
/// virtual-node tag is a pure function of it (NEXTPGNODE in the paper's
/// pseudocode).
struct TagStepEntry {
  uint32_t in_tag = 0;     ///< tag carried by the arriving probe
  uint32_t local_tag = 0;  ///< tag of this switch's virtual node
};

/// Probe egress: from local virtual node `local_tag`, multicast a copy out
/// of `out_link` rewritten to `neighbor_tag` (MULTICASTPROBE).
struct ProbeMulticastEntry {
  uint32_t local_tag = 0;
  topology::LinkId out_link = topology::kInvalidLink;
  uint32_t neighbor_tag = 0;
};

/// Dense FwdT row index for one switch. The compiler knows the exact key
/// universe `(dst, tag, pid)` a switch can ever store (§4.3 state
/// accounting), so FwdT rows live in a flat array mirroring the P4 register
/// arrays the paper generates (§4.2): dst-major, one contiguous `(tag, pid)`
/// slice per destination,
///
///   row(dst, tag, pid) = dst_slot[dst] * slice_width()
///                      + tag_slot[tag] * num_pids + pid
///
/// Slots are assigned in ascending id order (destinations by NodeId, tags by
/// tag value), so a linear walk of the row array already visits entries in
/// deterministic (dst, tag, pid) order — table renders and digests need no
/// sort. Keys outside the universe map to kNoRow; the dataplane counts (and
/// debug-asserts on) probe-path hits of that fallback.
struct DenseFwdIndex {
  static constexpr uint32_t kNoSlot = 0xffffffffu;
  static constexpr uint32_t kNoRow = 0xffffffffu;

  /// NodeId -> destination slot; kNoSlot for non-destinations. Sized to the
  /// full topology so the hot-path lookup is one bounds check + one load.
  std::vector<uint32_t> dst_slot;
  /// Destination slot -> NodeId, ascending.
  std::vector<topology::NodeId> destinations;
  /// Global tag -> local tag slot; kNoSlot for tags not living here.
  std::vector<uint32_t> tag_slot;
  /// Local tag slot -> global tag, ascending.
  std::vector<uint32_t> slot_tags;
  uint32_t num_pids = 0;

  uint32_t num_tag_slots() const { return static_cast<uint32_t>(slot_tags.size()); }
  uint32_t slice_width() const { return num_tag_slots() * num_pids; }
  uint32_t num_rows() const {
    return static_cast<uint32_t>(destinations.size()) * slice_width();
  }
  bool empty() const { return num_rows() == 0; }

  /// Flat row for a key, or kNoRow when the key is outside this switch's
  /// compiled universe.
  uint32_t row(topology::NodeId dst, uint32_t tag, uint32_t pid) const {
    if (dst >= dst_slot.size() || tag >= tag_slot.size() || pid >= num_pids) return kNoRow;
    const uint32_t d = dst_slot[dst];
    const uint32_t t = tag_slot[tag];
    if (d == kNoSlot || t == kNoSlot) return kNoRow;
    return d * slice_width() + t * num_pids + pid;
  }

  /// First row of a destination slot's contiguous (tag, pid) slice; the
  /// slice spans [slice_begin(d), slice_begin(d) + slice_width()).
  uint32_t slice_begin(uint32_t dst_slot_index) const {
    return dst_slot_index * slice_width();
  }

  /// Decomposes a flat row back into its key (inverse of row()).
  void key_of(uint32_t row_index, topology::NodeId& dst, uint32_t& tag, uint32_t& pid) const {
    const uint32_t width = slice_width();
    dst = destinations[row_index / width];
    const uint32_t rem = row_index % width;
    tag = slot_tags[rem / num_pids];
    pid = rem % num_pids;
  }
};

/// Builds the dense index for one switch. `local_tags` may arrive in PG
/// discovery order (and with duplicates); slots are assigned over the sorted
/// unique set. `destinations` must already be ascending (compile() collects
/// them in NodeId order).
DenseFwdIndex build_dense_index(const std::vector<uint32_t>& local_tags, uint32_t num_tags,
                                const std::vector<topology::NodeId>& destinations,
                                uint32_t num_nodes, uint32_t num_pids);

/// Estimated switch memory for the generated program (Fig. 10).
struct StateFootprint {
  uint64_t fwdt_entries = 0;
  uint64_t fwdt_bytes = 0;
  uint64_t best_bytes = 0;
  uint64_t flowlet_bytes = 0;
  uint64_t loop_table_bytes = 0;
  uint64_t multicast_bytes = 0;

  uint64_t total_bytes() const {
    return fwdt_bytes + best_bytes + flowlet_bytes + loop_table_bytes + multicast_bytes;
  }
};

struct SwitchConfig {
  topology::NodeId node = topology::kInvalidNode;
  std::string name;

  /// Tags of the virtual nodes living at this switch.
  std::vector<uint32_t> local_tags;
  std::vector<TagStepEntry> tag_step;
  std::vector<ProbeMulticastEntry> multicast;

  /// Whether the policy admits this switch as a traffic destination, and the
  /// probe-sending tag if so.
  bool is_destination = false;
  uint32_t origin_tag = 0;

  /// Flat FwdT addressing for this switch (the P4 register-array layout).
  DenseFwdIndex dense;

  StateFootprint footprint;
};

}  // namespace contra::compiler
