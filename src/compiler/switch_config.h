// Per-switch compiled artifacts: the table contents a generated P4 program
// carries for one device (§4.2-4.3). The schema (match keys, action data) is
// shared across devices; only the entries differ.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.h"

namespace contra::compiler {

/// Probe ingress: a probe arrives carrying the neighbor's tag; the local
/// virtual-node tag is a pure function of it (NEXTPGNODE in the paper's
/// pseudocode).
struct TagStepEntry {
  uint32_t in_tag = 0;     ///< tag carried by the arriving probe
  uint32_t local_tag = 0;  ///< tag of this switch's virtual node
};

/// Probe egress: from local virtual node `local_tag`, multicast a copy out
/// of `out_link` rewritten to `neighbor_tag` (MULTICASTPROBE).
struct ProbeMulticastEntry {
  uint32_t local_tag = 0;
  topology::LinkId out_link = topology::kInvalidLink;
  uint32_t neighbor_tag = 0;
};

/// Estimated switch memory for the generated program (Fig. 10).
struct StateFootprint {
  uint64_t fwdt_entries = 0;
  uint64_t fwdt_bytes = 0;
  uint64_t best_bytes = 0;
  uint64_t flowlet_bytes = 0;
  uint64_t loop_table_bytes = 0;
  uint64_t multicast_bytes = 0;

  uint64_t total_bytes() const {
    return fwdt_bytes + best_bytes + flowlet_bytes + loop_table_bytes + multicast_bytes;
  }
};

struct SwitchConfig {
  topology::NodeId node = topology::kInvalidNode;
  std::string name;

  /// Tags of the virtual nodes living at this switch.
  std::vector<uint32_t> local_tags;
  std::vector<TagStepEntry> tag_step;
  std::vector<ProbeMulticastEntry> multicast;

  /// Whether the policy admits this switch as a traffic destination, and the
  /// probe-sending tag if so.
  bool is_destination = false;
  uint32_t origin_tag = 0;

  StateFootprint footprint;
};

}  // namespace contra::compiler
