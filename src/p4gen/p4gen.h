// Rendering of compiled switch configurations as P4-16-style source text.
//
// The paper's prototype emits device-local P4 programs; this module produces
// the equivalent artifact. The in-process dataplane (src/dataplane) is the
// executable semantics of exactly these tables — generate_p4() is the
// human-auditable view of what each switch runs: probe parsing, the tag-step
// and multicast const entries from the product graph, FwdT/BestT registers,
// policy-aware flowlet switching, and the TTL-spread loop detector.
#pragma once

#include <string>

#include "compiler/compiler.h"

namespace contra::p4gen {

/// P4 program for one switch.
std::string generate_p4(const compiler::CompileResult& result,
                        const compiler::SwitchConfig& config);

/// Shared header/metadata definitions (identical on every switch).
std::string generate_common_headers(const compiler::CompileResult& result);

/// Convenience: all per-switch programs concatenated with banners (useful
/// for golden tests and inspection).
std::string generate_all(const compiler::CompileResult& result);

}  // namespace contra::p4gen
