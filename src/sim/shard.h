// One shard of the parallel simulation engine (DESIGN.md §8).
//
// A shard is a complete Simulator over the *shared* topology, restricted by
// an install filter to the switches its partition slice owns, plus the
// outgoing mailboxes that carry packets whose next hop lives in another
// shard. Replicating the Link array in every shard costs a few hundred bytes
// per link and buys a big simplification: link ids, host ids and packet-id
// spaces line up across shards, every dataplane reads only links its own
// shard transmits on, and a cross-shard delivery is just schedule_deliver on
// the destination shard's copy of the very same link id.
//
// Threading contract: a shard's simulator, telemetry, and trace buffer are
// touched by exactly one worker during a run phase; mailboxes are written by
// the producing shard during run phases and drained by the consuming shard
// during drain phases, with an epoch barrier (release/acquire) between the
// two — so none of this needs per-access synchronization.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace.h"
#include "sim/simulator.h"
#include "topology/partitioner.h"

namespace contra::sim {

/// A packet in flight between shards: produced when a cut link finishes
/// serializing, consumed (scheduled on the destination queue) at the next
/// epoch barrier. `deliver_at` already includes the propagation delay, and
/// the conservative epoch width guarantees it is never before the barrier.
struct CrossHop {
  Time deliver_at = 0.0;
  topology::LinkId link = topology::kInvalidLink;
  Packet packet;
};

/// SPSC mailbox from one source shard to one destination shard. A plain
/// vector suffices (no ring, no atomics): produce and drain phases never
/// overlap, and the barrier between them publishes the writes. clear() keeps
/// capacity, so the steady state allocates nothing.
class Mailbox {
 public:
  void push(Time deliver_at, topology::LinkId link, Packet&& packet) {
    entries_.push_back(CrossHop{deliver_at, link, std::move(packet)});
  }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  std::vector<CrossHop>& entries() { return entries_; }
  void clear() { entries_.clear(); }

 private:
  std::vector<CrossHop> entries_;
};

struct Shard {
  /// Builds the shard simulator and wires its ownership boundary: install
  /// filter, id-namespace bases, and remote-forward hooks on every owned cut
  /// link (each pushing into outbox[shard of the link's far end]).
  Shard(uint32_t shard_id, const topology::Topology& topo, const SimConfig& config,
        const topology::Partition& partition);

  uint32_t id;
  Simulator sim;
  std::vector<Mailbox> outbox;  ///< indexed by destination shard

  obs::MemoryTraceSink trace;  ///< per-shard buffer; merged by (t, shard, index)
  uint64_t events_at_epoch_start = 0;  ///< for per-epoch kEpoch accounting
};

/// Drains every mailbox addressed to `dst` in fixed source-shard order,
/// scheduling each entry on dst's queue (push order within a mailbox).
/// Together with the queue's (time, seq) tie-break this realizes the
/// deterministic (time, source shard, sequence) processing order. Returns
/// the number of hops drained. Runs on dst's worker.
uint64_t drain_mailboxes_into(Shard& dst, std::vector<std::unique_ptr<Shard>>& shards);

}  // namespace contra::sim
