// One shard of the parallel simulation engine (DESIGN.md §8).
//
// A shard is a complete Simulator over the *shared* topology, restricted by
// an install filter to the switches its partition slice owns, plus the
// outgoing mailboxes that carry packets whose next hop lives in another
// shard. Replicating the Link array in every shard costs a few hundred bytes
// per link and buys a big simplification: link ids, host ids and packet-id
// spaces line up across shards, every dataplane reads only links its own
// shard transmits on, and a cross-shard delivery is just schedule_deliver on
// the destination shard's copy of the very same link id.
//
// Threading contract: a shard's simulator, telemetry, and trace buffer are
// touched by exactly one worker during a run phase; mailboxes are written by
// the producing shard during run phases and drained by the consuming shard
// in a later phase, with a phase barrier (release/acquire) between the two —
// so none of this needs per-access synchronization. Between phases the main
// thread reads queue next-event times, mailbox minima, and `committed` to
// compute the next schedule; those reads are likewise barrier-ordered.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "obs/trace.h"
#include "sim/simulator.h"
#include "topology/partitioner.h"

namespace contra::sim {

/// A packet in flight between shards: produced when a cut link finishes
/// serializing, consumed (scheduled on the destination queue) at the next
/// phase the destination shard advances. `deliver_at` already includes the
/// propagation delay, and the per-channel lookahead guarantees it is never
/// before the destination's committed time.
struct CrossHop {
  Time deliver_at = 0.0;
  topology::LinkId link = topology::kInvalidLink;
  Packet packet;
};

/// SPSC mailbox from one source shard to one destination shard, double
/// buffered for the fused drain+run phase: the producer pushes into
/// `pending_` while it runs; between phases the main thread stage()s pending
/// hops into `staged_`; the consumer drains `staged_` at the start of its
/// next phase. Producer and drainer can therefore run in the *same* phase
/// without ever touching the same vector — the phase barrier
/// (release/acquire) publishes the handoff, so no per-access atomics are
/// needed. Both vectors keep their capacity across phases; the steady state
/// allocates nothing. The running minimum deliver_at lets the scheduler fold
/// parked hops into a shard's next-activity bound without scanning entries.
class Mailbox {
 public:
  /// Producer side, during a run phase.
  void push(Time deliver_at, topology::LinkId link, Packet&& packet) {
    pending_.push_back(CrossHop{deliver_at, link, std::move(packet)});
    if (deliver_at < min_deliver_at_) min_deliver_at_ = deliver_at;
  }
  bool empty() const { return pending_.empty() && staged_.empty(); }
  /// Earliest parked hop, +infinity when none. The scheduler only reads this
  /// between phases, where staged_ is always empty (every stage() is paired
  /// with a drain in the same phase), so tracking pending_ alone is exact.
  Time min_deliver_at() const { return min_deliver_at_; }

  /// Main thread, between phases: hand all parked hops to the consumer.
  void stage() {
    if (pending_.empty()) return;
    if (staged_.empty()) {
      pending_.swap(staged_);
    } else {
      staged_.insert(staged_.end(), std::make_move_iterator(pending_.begin()),
                     std::make_move_iterator(pending_.end()));
      pending_.clear();
    }
    min_deliver_at_ = std::numeric_limits<Time>::infinity();
  }

  /// Consumer side, during its run phase.
  std::vector<CrossHop>& staged() { return staged_; }
  void clear_staged() { staged_.clear(); }

 private:
  std::vector<CrossHop> pending_;
  std::vector<CrossHop> staged_;
  Time min_deliver_at_ = std::numeric_limits<Time>::infinity();
};

struct Shard {
  /// Builds the shard simulator and wires its ownership boundary: install
  /// filter, id-namespace bases, and remote-forward hooks on every owned cut
  /// link (each pushing into outbox[shard of the link's far end]).
  Shard(uint32_t shard_id, const topology::Topology& topo, const SimConfig& config,
        const topology::Partition& partition);

  uint32_t id;
  Simulator sim;
  std::vector<Mailbox> outbox;  ///< indexed by destination shard

  obs::MemoryTraceSink trace;  ///< per-shard buffer; merged by (t, shard, index)
  uint64_t events_at_epoch_start = 0;  ///< for per-epoch kEpoch accounting

  // ----- epoch-scheduler state (see ParallelSimulator::run_until) ----------
  // `committed` is written by whichever thread ran the shard last phase (or
  // the main thread on an idle skip) and read by the main thread at the next
  // barrier; `target`/`inclusive` are written by the main thread before the
  // phase is published and read by the running worker.
  Time committed = 0.0;   ///< simulation time this shard has been advanced to
  Time target = 0.0;      ///< boundary to run to this phase
  bool inclusive = false; ///< run events at exactly `target` too (final window)
};

/// Drains every *staged* mailbox addressed to `dst` in fixed source-shard
/// order, scheduling each entry on dst's queue (push order within a
/// mailbox). Together with the queue's (time, seq) tie-break this realizes
/// the deterministic (time, source shard, sequence) processing order. The
/// whole inbound batch drains as one pass: queue storage is reserved once
/// and the per-shard batch counters/histogram are bumped once per pass, not
/// per message. Returns the number of hops drained. Runs on dst's worker.
uint64_t drain_mailboxes_into(Shard& dst, std::vector<std::unique_ptr<Shard>>& shards);

}  // namespace contra::sim
