// Simulation packets. One struct covers data, ACK, and probe packets —
// this is a simulator object, not a wire format; the wire sizes used for
// serialization and overhead accounting are explicit fields.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "pg/policy_eval.h"
#include "topology/topology.h"
#include "util/hash.h"

namespace contra::sim {

using HostId = uint32_t;
inline constexpr HostId kInvalidHost = UINT32_MAX;

enum class PacketKind : uint8_t { kData, kAck, kProbe };

/// Routing/protocol fields a Contra (or baseline) switch reads and writes.
struct RoutingState {
  uint32_t tag = 0;            ///< Contra PG tag (rewritten hop by hop)
  uint32_t pid = 0;            ///< Contra probe id
  uint32_t path_id = 0;        ///< SPAIN path index
  uint32_t traffic_class = 0;  ///< classified policies: rule index (stamped at ingress)
  uint8_t ttl = 64;
  bool stamped = false;        ///< first switch has chosen (tag, pid)
  bool hula_up = true;         ///< HULA: probe still traveling upward
};

/// CONGA-style in-band congestion state piggybacked on data packets
/// (leaf-spine only): the forward half tracks the path's max egress
/// utilization; the feedback half opportunistically returns one
/// (uplink, metric) observation to the sender-side leaf.
struct CongaFields {
  topology::NodeId src_leaf = topology::kInvalidNode;
  uint8_t uplink = 0;        ///< index of the chosen uplink at the source leaf
  float metric = 0.0f;       ///< max egress utilization seen so far
  bool has_feedback = false;
  uint8_t fb_uplink = 0;
  float fb_metric = 0.0f;
};

/// Probe payload (Contra and HULA reuse the same carrier).
struct ProbeFields {
  topology::NodeId origin = topology::kInvalidNode;
  uint32_t pid = 0;
  uint32_t tag = 0;
  uint32_t traffic_class = 0;  ///< classified policies: which protocol instance
  uint64_t version = 0;
  pg::MetricsVector mv;
  /// Triggered-update poison advert (DESIGN.md §12): the sender's row for
  /// (origin, tag, pid) became unusable; receivers who route via the sender
  /// withdraw theirs too instead of waiting for metric expiry.
  bool withdraw = false;
};

/// One INT-style hop record accumulated on sampled data packets (flow
/// telemetry, DESIGN.md §11): the directed link crossed, the queue depth the
/// packet found there, and the enqueue time.
struct IntHop {
  uint32_t link = 0;
  uint32_t queue_bytes = 0;
  double t = 0.0;
};

/// Cap on recorded INT hops per packet (== obs::PathSample::kMaxHops; the
/// hop count keeps counting past it, so truncated samples are detectable).
inline constexpr size_t kIntHopCap = 16;

// Probe payloads must stay heap-free: probe fan-out copies packets once per
// PG out-edge, and the metrics vector rides along as a fixed-width register
// block exactly as it would on a switch ASIC.
static_assert(std::is_trivially_copyable_v<ProbeFields>,
              "probe fields must copy without touching the heap");
static_assert(std::is_trivially_copyable_v<CongaFields>,
              "conga fields must copy without touching the heap");
static_assert(std::is_trivially_copyable_v<IntHop>,
              "INT hop records must copy without touching the heap");

struct Packet {
  PacketKind kind = PacketKind::kData;
  uint64_t id = 0;  ///< unique per packet, for tracing

  // Endpoints.
  HostId src_host = kInvalidHost;
  HostId dst_host = kInvalidHost;
  topology::NodeId src_switch = topology::kInvalidNode;
  topology::NodeId dst_switch = topology::kInvalidNode;

  // Transport.
  uint64_t flow_id = 0;
  uint64_t seq = 0;       ///< data: sequence number; ack: cumulative ack
  uint32_t size_bytes = 0;
  bool ecn_marked = false;  ///< congestion-experienced (set by queues, echoed by ACKs)

  util::FiveTuple tuple;
  RoutingState routing;
  std::optional<ProbeFields> probe;
  std::optional<CongaFields> conga;

  /// Switch-level path trace (appended by dataplanes as the packet crosses
  /// them). A simulation affordance for compliance checking — it has no
  /// wire-format counterpart and no effect on behaviour.
  std::vector<uint16_t> trace;

  // Flow telemetry (stamped by Simulator::send_on_link only when
  // Simulator::set_flow_telemetry(true); all defaults otherwise, so the
  // fields copy for free on the probe-flood hot path).
  uint64_t path_sig = 0;    ///< order-sensitive hash of fabric links crossed
  uint8_t hops = 0;         ///< fabric hops crossed
  bool int_sampled = false; ///< this packet accumulates int_hops (1-in-N)
  /// Per-hop INT records; empty (no heap) unless int_sampled.
  std::vector<IntHop> int_hops;

  bool is_probe() const { return kind == PacketKind::kProbe; }

  /// Signature for the loop-detection table (§5.5): identifies "the same
  /// packet" across hops without the mutable tag/ttl fields.
  uint32_t loop_signature() const {
    uint64_t h = util::hash_combine(flow_id, seq);
    h = util::hash_combine(h, id);
    return static_cast<uint32_t>(h);
  }
};

/// Freelist recycler for in-flight packet storage. The event core parks a
/// packet here for the propagation leg of every hop (see
/// EventQueue::schedule_deliver); recycling the slots keeps the steady-state
/// hop path allocation-free. Slots are poisoned while free in debug builds
/// so reuse-after-release is caught instead of silently corrupting a
/// simulation.
class PacketPool {
 public:
  /// Returns a recycled (or newly created) packet slot. The caller owns the
  /// slot until it releases it; contents are whatever the caller assigns.
  Packet* acquire();
  /// Returns a slot to the freelist. Double-release asserts in debug builds.
  void release(Packet* packet);

  /// Slots ever created (freelist high-water mark); stable once warm.
  size_t allocated() const { return storage_.size(); }
  size_t free_count() const { return free_.size(); }

 private:
  std::vector<std::unique_ptr<Packet>> storage_;
  std::vector<Packet*> free_;
};

}  // namespace contra::sim
