#include "sim/link.h"

#include <algorithm>

#include "util/logging.h"

namespace contra::sim {

Link::Link(EventQueue& events, double capacity_bps, double delay_s,
           uint64_t queue_capacity_bytes, double util_tau_s)
    : events_(events),
      capacity_bps_(capacity_bps),
      delay_s_(delay_s),
      queue_capacity_bytes_(queue_capacity_bytes),
      util_tau_s_(util_tau_s) {}

bool Link::enqueue(Packet&& packet) {
  if (down_ || queue_bytes_ + packet.size_bytes > queue_capacity_bytes_) {
    note_drop(packet);
    return false;
  }
  if (ecn_threshold_bytes_ > 0 && queue_bytes_ > ecn_threshold_bytes_) {
    packet.ecn_marked = true;  // DCTCP-style instantaneous-queue marking
    if (telemetry_ != nullptr) telemetry_->metrics().add(telemetry_->core().link_ecn_marks);
  }
  queue_bytes_ += packet.size_bytes;
  queue_.push_back(std::move(packet));
  if (queue_sampler_) queue_sampler_(events_.now(), queue_bytes_);
  maybe_start_transmit();
  return true;
}

void Link::set_down(bool down) {
  down_ = down;
  if (down) {
    // In-queue packets are lost with the link.
    queue_.for_each([this](const Packet& p) { note_drop(p); });
    queue_.clear();
    queue_bytes_ = 0;
  }
}

void Link::note_drop(const Packet& packet) {
  ++stats_.drops;
  stats_.drop_bytes += packet.size_bytes;
  if (packet.kind != PacketKind::kProbe) ++stats_.data_drops;
  if (telemetry_ == nullptr) return;
  telemetry_->metrics().add(telemetry_->core().link_drops);
  telemetry_->metrics().observe(telemetry_->core().drop_queue_bytes,
                                static_cast<double>(queue_bytes_));
  if (telemetry_->tracing()) {
    obs::TraceRecord r;
    r.t = events_.now();
    r.ev = obs::Ev::kDrop;
    r.link = link_id_;
    r.aux = static_cast<uint32_t>(packet.kind);
    r.value = static_cast<double>(packet.size_bytes);
    telemetry_->emit(r);
  }
}

void Link::maybe_start_transmit() {
  if (busy_ || queue_.empty() || down_) return;
  busy_ = true;
  const double tx_time = queue_.front().size_bytes * 8.0 / capacity_bps_;
  events_.schedule_link_tx(events_.now() + tx_time, this);
}

void Link::on_transmit_done() {
  busy_ = false;
  if (down_ || queue_.empty()) return;  // lost while down
  Packet packet = queue_.pop_front();
  queue_bytes_ -= packet.size_bytes;
  note_tx(packet);
  // Propagation: deliver after the wire delay — locally, or via the
  // cross-shard mailbox when this link's receive side lives in another shard.
  if (remote_forward_) {
    remote_forward_(events_.now() + delay_s_, std::move(packet));
  } else {
    events_.schedule_deliver(events_.now() + delay_s_, this, std::move(packet));
  }
  maybe_start_transmit();
}

void Link::complete_delivery(Packet* packet) {
  if (deliver_ && !down_) deliver_(std::move(*packet));
  events_.packet_pool().release(packet);
}

void Link::note_tx(const Packet& packet) {
  ++stats_.tx_packets;
  stats_.tx_bytes += packet.size_bytes;
  switch (packet.kind) {
    case PacketKind::kData:
      stats_.tx_data_bytes += packet.size_bytes;
      ++stats_.tx_data_packets;
      break;
    case PacketKind::kAck:
      stats_.tx_ack_bytes += packet.size_bytes;
      ++stats_.tx_ack_packets;
      break;
    case PacketKind::kProbe:
      stats_.tx_probe_bytes += packet.size_bytes;
      ++stats_.tx_probe_packets;
      break;
  }
  // Utilization EWMA (HULA-style): linear decay over tau, then add the
  // transmitted bytes.
  const Time now = events_.now();
  const double decay = std::max(0.0, 1.0 - (now - util_updated_) / util_tau_s_);
  util_bytes_ = packet.size_bytes + util_bytes_ * decay;
  util_updated_ = now;
}

double Link::utilization() const {
  // Pure read: the decay since the last transmission is computed on the fly
  // and never written back. The linear decay factor does not compose across
  // split intervals ((1-a)(1-b) != 1-(a+b)), so a read that wrote back would
  // make the estimate depend on how often it is observed — probes sampling a
  // link twice in one round would see different values.
  const double decay = std::max(0.0, 1.0 - (events_.now() - util_updated_) / util_tau_s_);
  const double window_bytes = capacity_bps_ / 8.0 * util_tau_s_;
  return window_bytes > 0 ? util_bytes_ * decay / window_bytes : 0.0;
}

}  // namespace contra::sim
