#include "sim/link.h"

#include <algorithm>

#include "util/hash.h"
#include "util/logging.h"

namespace contra::sim {

Link::Link(EventQueue& events, double capacity_bps, double delay_s,
           uint64_t queue_capacity_bytes, double util_tau_s)
    : events_(events),
      capacity_bps_(capacity_bps),
      delay_s_(delay_s),
      queue_capacity_bytes_(queue_capacity_bytes),
      util_tau_s_(util_tau_s) {}

bool Link::enqueue(Packet&& packet) {
  if (!down_ && gray_.loss_prob > 0.0) {
    // Gray loss: one hash draw per enqueue attempt, keyed by a per-link
    // counter + salt. Packet ids would be the obvious key, but they are
    // shard-namespaced under the parallel engine and would break
    // serial/parallel loss parity.
    const double draw =
        static_cast<double>(util::mix64(gray_.salt + ++gray_tries_) >> 11) * 0x1.0p-53;
    if (draw < gray_.loss_prob) {
      if (telemetry_ != nullptr) telemetry_->metrics().add(telemetry_->core().gray_loss_drops);
      note_drop(packet);
      return false;
    }
  }
  if (down_ || queue_bytes_ + packet.size_bytes > queue_capacity_bytes_) {
    note_drop(packet);
    return false;
  }
  if (ecn_threshold_bytes_ > 0 && queue_bytes_ > ecn_threshold_bytes_) {
    packet.ecn_marked = true;  // DCTCP-style instantaneous-queue marking
    if (telemetry_ != nullptr) telemetry_->metrics().add(telemetry_->core().link_ecn_marks);
  }
  queue_bytes_ += packet.size_bytes;
  queue_.push_back(std::move(packet));
  if (queue_sampler_) queue_sampler_(events_.now(), queue_bytes_);
  maybe_start_transmit();
  return true;
}

void Link::set_down(bool down) {
  if (down_ == down) return;  // duplicate schedule events must be idempotent
  down_ = down;
  if (down) {
    // In-queue packets are lost with the link — including the in-flight head
    // being serialized. Abort that transmission too: leaving busy_ set until
    // the already-scheduled transmit-done fires would let a restore inside
    // the serialization window either stall (enqueue sees busy_) or, once
    // the stale event fires, pop and forward a *new* head packet before its
    // serialization time has elapsed. The stale event itself is disarmed by
    // the tx_done_at_ stamp check in on_transmit_done.
    queue_.for_each([this](const Packet& p) { note_drop(p); });
    queue_.clear();
    queue_bytes_ = 0;
    busy_ = false;
  }
}

void Link::set_gray(const GrayParams& gray) {
  gray_.loss_prob = std::clamp(gray.loss_prob, 0.0, 1.0);
  gray_.extra_delay_s = std::max(0.0, gray.extra_delay_s);
  gray_.capacity_factor = std::clamp(gray.capacity_factor, 1e-6, 1.0);
  gray_.salt = gray.salt;
  // gray_tries_ keeps counting across episodes so re-applying the same salt
  // mid-run cannot replay an earlier drop sequence.
}

void Link::note_drop(const Packet& packet) {
  ++stats_.drops;
  stats_.drop_bytes += packet.size_bytes;
  if (packet.kind != PacketKind::kProbe) ++stats_.data_drops;
  if (telemetry_ == nullptr) return;
  telemetry_->metrics().add(telemetry_->core().link_drops);
  telemetry_->metrics().observe(telemetry_->core().drop_queue_bytes,
                                static_cast<double>(queue_bytes_));
  if (telemetry_->tracing()) {
    obs::TraceRecord r;
    r.t = events_.now();
    r.ev = obs::Ev::kDrop;
    r.link = link_id_;
    r.aux = static_cast<uint32_t>(packet.kind);
    r.value = static_cast<double>(packet.size_bytes);
    telemetry_->emit(r);
  }
}

void Link::maybe_start_transmit() {
  if (busy_ || queue_.empty() || down_) return;
  busy_ = true;
  const double tx_time = queue_.front().size_bytes * 8.0 / capacity_bps();
  tx_done_at_ = events_.now() + tx_time;
  events_.schedule_link_tx(tx_done_at_, this);
}

void Link::on_transmit_done() {
  // Stale completion guard: the transmission this event belonged to was
  // aborted by set_down(true), or superseded by one started after a
  // fail→restore flap (whose own completion carries a different stamp).
  // Both doubles come from the same now()+tx_time computation, so exact
  // equality is the right test.
  if (!busy_ || events_.now() != tx_done_at_) return;
  busy_ = false;
  if (down_ || queue_.empty()) return;  // lost while down
  Packet packet = queue_.pop_front();
  queue_bytes_ -= packet.size_bytes;
  note_tx(packet);
  // Propagation: deliver after the wire delay — locally, or via the
  // cross-shard mailbox when this link's receive side lives in another shard.
  // delay_s() (not the raw member): a gray link's extra propagation latency
  // applies here. Only ever >= the base delay, so the parallel engine's
  // conservative lookahead (computed from base delays) stays valid.
  if (remote_forward_) {
    remote_forward_(events_.now() + delay_s(), std::move(packet));
  } else {
    events_.schedule_deliver(events_.now() + delay_s(), this, std::move(packet));
  }
  maybe_start_transmit();
}

void Link::complete_delivery(Packet* packet) {
  if (deliver_ && !down_) deliver_(std::move(*packet));
  events_.packet_pool().release(packet);
}

void Link::note_tx(const Packet& packet) {
  ++stats_.tx_packets;
  stats_.tx_bytes += packet.size_bytes;
  switch (packet.kind) {
    case PacketKind::kData:
      stats_.tx_data_bytes += packet.size_bytes;
      ++stats_.tx_data_packets;
      break;
    case PacketKind::kAck:
      stats_.tx_ack_bytes += packet.size_bytes;
      ++stats_.tx_ack_packets;
      break;
    case PacketKind::kProbe:
      stats_.tx_probe_bytes += packet.size_bytes;
      ++stats_.tx_probe_packets;
      break;
  }
  // Utilization EWMA (HULA-style): linear decay over tau, then add the
  // transmitted bytes.
  const Time now = events_.now();
  const double decay = std::max(0.0, 1.0 - (now - util_updated_) / util_tau_s_);
  util_bytes_ = packet.size_bytes + util_bytes_ * decay;
  util_updated_ = now;
}

double Link::utilization() const {
  // Pure read: the decay since the last transmission is computed on the fly
  // and never written back. The linear decay factor does not compose across
  // split intervals ((1-a)(1-b) != 1-(a+b)), so a read that wrote back would
  // make the estimate depend on how often it is observed — probes sampling a
  // link twice in one round would see different values.
  const double decay = std::max(0.0, 1.0 - (events_.now() - util_updated_) / util_tau_s_);
  // Normalized by the *effective* rate: a capacity-derated gray link carrying
  // unchanged traffic reads as more utilized, which is exactly the drift the
  // routing metric should see.
  const double window_bytes = capacity_bps() / 8.0 * util_tau_s_;
  const double packet_share = window_bytes > 0 ? util_bytes_ * decay / window_bytes : 0.0;
  // Fluid flows carry no packets; their committed wire rate contributes as a
  // steady capacity share so probe metrics see the hybrid engine's traffic.
  const double cap = capacity_bps();
  const double fluid_share = cap > 0 ? fluid_load_bps_ / cap : 0.0;
  return packet_share + fluid_share;
}

}  // namespace contra::sim
