// A simulated directed link: store-and-forward serialization at the link
// rate, propagation delay, a drop-tail byte-capacity queue, and the
// utilization estimator the dataplane reads (an EWMA over transmitted bytes,
// the estimator HULA and Contra use in hardware).
#pragma once

#include <cstdint>
#include <functional>

#include "obs/telemetry.h"
#include "sim/event_queue.h"
#include "sim/packet.h"
#include "util/ring_queue.h"

namespace contra::sim {

/// Gray-failure state (DESIGN.md §13): a link that is sick but not down.
/// Applied by the churn engine; all-defaults means healthy.
struct GrayParams {
  double loss_prob = 0.0;       ///< per-enqueue drop probability in [0, 1)
  double extra_delay_s = 0.0;   ///< added propagation delay (>= 0: lookahead-safe)
  double capacity_factor = 1.0; ///< serialization-rate derate in (0, 1]
  uint64_t salt = 0;            ///< loss-sequence seed (deterministic replay)
};

struct LinkStats {
  uint64_t tx_packets = 0;
  uint64_t tx_bytes = 0;
  uint64_t tx_data_bytes = 0;
  uint64_t tx_ack_bytes = 0;
  uint64_t tx_probe_bytes = 0;
  uint64_t tx_data_packets = 0;
  uint64_t tx_ack_packets = 0;
  uint64_t tx_probe_packets = 0;
  uint64_t drops = 0;       ///< all kinds (incl. probes sent at down links)
  uint64_t drop_bytes = 0;
  uint64_t data_drops = 0;  ///< data/ACK packets only — the loss that hurts flows
};

class Link {
 public:
  using DeliverFn = std::function<void(Packet&&)>;
  /// Called on every enqueue with (time, queue_bytes_after); used by the
  /// queue-length CDF experiment (Fig. 13).
  using QueueSampleFn = std::function<void(Time, uint64_t)>;

  Link(EventQueue& events, double capacity_bps, double delay_s, uint64_t queue_capacity_bytes,
       double util_tau_s);

  /// ECN: packets enqueued while the queue exceeds this threshold get
  /// congestion-marked (0 disables marking — the default).
  void set_ecn_threshold_bytes(uint64_t bytes) { ecn_threshold_bytes_ = bytes; }

  /// Cross-shard hop hook (parallel engine): when set, finished transmissions
  /// hand (arrival_time, packet) to this function instead of scheduling the
  /// propagation-delivery event locally — the destination shard schedules the
  /// delivery on *its* event queue when the mailbox drains at the epoch
  /// barrier. arrival_time already includes the propagation delay.
  using RemoteForwardFn = std::function<void(Time arrival_time, Packet&&)>;

  void set_deliver(DeliverFn deliver) { deliver_ = std::move(deliver); }
  void set_remote_forward(RemoteForwardFn forward) { remote_forward_ = std::move(forward); }
  void set_queue_sampler(QueueSampleFn sampler) { queue_sampler_ = std::move(sampler); }

  /// Telemetry tap: drop/ECN counters and per-drop trace records, attributed
  /// to `link_id`. The Simulator wires this for every link it creates.
  void set_telemetry(obs::Telemetry* telemetry, uint32_t link_id) {
    telemetry_ = telemetry;
    link_id_ = link_id;
  }

  /// Enqueues for transmission; false (and a drop count) if the queue is
  /// full or the link is administratively down.
  bool enqueue(Packet&& packet);

  void set_down(bool down);
  bool down() const { return down_; }

  /// Installs / clears gray-failure degradation. Loss draws come from a
  /// counter-keyed hash of `salt` (not packet ids, which are shard-namespaced
  /// under the parallel engine), so the drop sequence is deterministic and
  /// workers-invariant. Out-of-range parameters are clamped: extra delay
  /// below 0 or a capacity factor outside (0, 1] would break the parallel
  /// engine's conservative lookahead.
  void set_gray(const GrayParams& gray);
  void clear_gray() { set_gray(GrayParams{}); }
  bool gray() const {
    return gray_.loss_prob > 0.0 || gray_.extra_delay_s > 0.0 || gray_.capacity_factor != 1.0;
  }
  const GrayParams& gray_params() const { return gray_; }

  /// Current utilization estimate in [0, ~1]: EWMA of transmitted bytes over
  /// the decay window tau, normalized by capacity. Under the hybrid engine
  /// the fluid load share is added on top (see set_fluid_load_bps).
  double utilization() const;

  /// Hybrid engine (DESIGN.md §14): wire-rate fluid traffic currently
  /// crossing this link. Fluid flows transmit no packets, so the EWMA never
  /// sees them; this term feeds their load into utilization() so probes and
  /// the routing metric react to the traffic the engine no longer simulates.
  void set_fluid_load_bps(double bps) { fluid_load_bps_ = bps; }
  double fluid_load_bps() const { return fluid_load_bps_; }

  uint64_t queue_bytes() const { return queue_bytes_; }
  /// Effective serialization rate (gray capacity derate included).
  double capacity_bps() const { return capacity_bps_ * gray_.capacity_factor; }
  /// Effective propagation delay (gray added latency included).
  double delay_s() const { return delay_s_ + gray_.extra_delay_s; }
  const LinkStats& stats() const { return stats_; }

 private:
  // The event queue dispatches the two typed per-hop events (transmit-done,
  // propagation-delivery) straight into these without going through a
  // closure; see EventQueue::schedule_link_tx / schedule_deliver.
  friend class EventQueue;

  void maybe_start_transmit();
  void on_transmit_done();
  /// Propagation finished: hand the pooled packet to deliver_ and return the
  /// slot to the event queue's freelist.
  void complete_delivery(Packet* packet);
  void note_tx(const Packet& packet);

  EventQueue& events_;
  double capacity_bps_;
  double delay_s_;
  uint64_t queue_capacity_bytes_;
  double util_tau_s_;

  util::RingQueue<Packet> queue_;
  uint64_t queue_bytes_ = 0;
  uint64_t ecn_threshold_bytes_ = 0;
  bool busy_ = false;
  bool down_ = false;
  /// Completion stamp of the in-flight transmission; on_transmit_done ignores
  /// events whose firing time does not match (they belong to a transmission
  /// aborted by set_down or superseded after a flap).
  Time tx_done_at_ = 0.0;

  GrayParams gray_;
  uint64_t gray_tries_ = 0;  ///< enqueue attempts under gray loss (hash key)

  // Utilization EWMA state; written only by note_tx, so utilization() reads
  // are idempotent at any timestamp.
  double util_bytes_ = 0.0;
  Time util_updated_ = 0.0;
  double fluid_load_bps_ = 0.0;  ///< hybrid engine's committed wire-rate load

  void note_drop(const Packet& packet);

  DeliverFn deliver_;
  RemoteForwardFn remote_forward_;
  QueueSampleFn queue_sampler_;
  LinkStats stats_;
  obs::Telemetry* telemetry_ = nullptr;
  uint32_t link_id_ = obs::kNoField;
};

}  // namespace contra::sim
