#include "sim/tracing.h"

#include <algorithm>
#include <cmath>

namespace contra::sim {

void QueueLengthTracer::attach_fabric(Simulator& sim, uint32_t mss_bytes) {
  for (topology::LinkId id = 0; id < sim.topo().num_links(); ++id) {
    sim.link(id).set_queue_sampler([this, mss_bytes](Time, uint64_t queue_bytes) {
      samples_.push_back(static_cast<double>(queue_bytes) / mss_bytes);
    });
  }
}

std::vector<double> QueueLengthTracer::sorted_samples() const {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

double QueueLengthTracer::cdf_at(double threshold_mss) const {
  if (samples_.empty()) return 0.0;
  size_t count = 0;
  for (double s : samples_) {
    if (s <= threshold_mss) ++count;
  }
  return static_cast<double>(count) / samples_.size();
}

double QueueLengthTracer::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = sorted_samples();
  const double pos = std::clamp(q, 0.0, 1.0) * (sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - lo;
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void ThroughputTimeline::add(Time t, uint32_t bytes) {
  if (t < 0) return;
  const size_t bin = static_cast<size_t>(t / bin_width_);
  if (bins_.size() <= bin) bins_.resize(bin + 1, 0);
  bins_[bin] += bytes;
}

double ThroughputTimeline::throughput_bps(size_t bin) const {
  if (bin >= bins_.size()) return 0.0;
  return bins_[bin] * 8.0 / bin_width_;
}

}  // namespace contra::sim
