// Measurement taps: queue-length sampling across fabric links (Fig. 13) and
// received-throughput timelines (Fig. 14).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.h"

namespace contra::sim {

/// Records every enqueue-time queue length (in MSS units) on the selected
/// links; yields the CDF data Fig. 13 plots.
class QueueLengthTracer {
 public:
  /// Attaches to all switch-switch links of the simulator.
  void attach_fabric(Simulator& sim, uint32_t mss_bytes = 1500);

  const std::vector<double>& samples_mss() const { return samples_; }

  /// Sorted copy + CDF evaluation helper.
  std::vector<double> sorted_samples() const;
  /// Fraction of samples <= threshold.
  double cdf_at(double threshold_mss) const;
  /// Quantile in MSS (q in [0,1]).
  double quantile(double q) const;

 private:
  std::vector<double> samples_;
};

/// Bins received bytes into fixed-width intervals: throughput(t) series.
class ThroughputTimeline {
 public:
  explicit ThroughputTimeline(double bin_width_s) : bin_width_(bin_width_s) {}

  void add(Time t, uint32_t bytes);

  double bin_width() const { return bin_width_; }
  /// Throughput of bin i in bits/s.
  double throughput_bps(size_t bin) const;
  size_t num_bins() const { return bins_.size(); }

 private:
  double bin_width_;
  std::vector<uint64_t> bins_;
};

}  // namespace contra::sim
