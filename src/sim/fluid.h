// Hybrid flow-level ("fluid") engine — DESIGN.md §14.
//
// Bulk data flows advance at flow level: each flow holds a path (chosen by
// querying the installed dataplane once, exactly as the first packet of the
// flow would be routed) and a rate from per-link max-min fair sharing.
// Rates are recomputed in batched quanta (FluidConfig::quantum_s): at each
// quantum tick the engine settles progress, completes flows at their
// analytic finish times, admits newly started flows, re-walks paths when
// link state changed, and water-fills the active set. Probes, flowlets and
// the 1-in-n sampled flow subset stay packet-level in the TransportManager;
// the engine pushes its per-link fluid load into Link::utilization() so the
// control plane sees the traffic it no longer simulates packet by packet.
//
// Storage is SoA over dense flow slots (freelist-recycled) with a fixed-
// stride path arena and flat per-link scratch arrays, so the steady-state
// tick allocates nothing once warm (bench-gated by hybrid_fabric).
//
// Determinism: every decision is made at a quantum boundary from state that
// is itself deterministic. On the sharded engine the tick runs on the main
// thread while all shards are parked at exactly the tick time, so results
// are byte-identical for any worker count at a fixed shard count.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sim/simulator.h"
#include "sim/transport.h"

namespace contra::sim {

struct FluidConfig {
  /// Rate-recomputation quantum. Completions inside a quantum are settled
  /// at their analytic finish time, but the bandwidth they release is only
  /// redistributed at the next tick (the exactness boundary, DESIGN.md §14).
  double quantum_s = 64e-6;
  /// Goodput share of the wire: link capacity is derated by
  /// mss / (mss + header) so fluid rates are payload rates, matching the
  /// byte counts FlowRecords carry.
  uint32_t mss_bytes = 1460;
  uint32_t header_bytes = 40;
  /// Path slots per flow (includes the two host links). Walks longer than
  /// this stall the flow (routing loop guard).
  uint32_t max_hops = 24;
};

struct FluidStats {
  uint64_t flows_started = 0;
  uint64_t flows_completed = 0;
  uint64_t ticks = 0;
  uint64_t recomputes = 0;      ///< water-fill passes (ticks with set/rate changes)
  uint64_t reroutes = 0;        ///< path re-walks after link-state generation changes
  uint64_t stalls = 0;          ///< route walks that found no usable path
  uint64_t peak_active = 0;
};

class TransportManager;

class FluidEngine {
 public:
  explicit FluidEngine(FluidConfig config = {});

  /// Serial engine: the engine self-schedules its ticks on sim.events().
  void bind(Simulator& sim);

  /// Sharded engine: route queries and link reads/writes go to the shard
  /// owning each node / link transmit side. Ticks are driven externally by
  /// ParallelSimulator (next_wake / advance_to) on the main thread while
  /// every shard is parked at the tick time.
  void bind_shards(std::vector<Simulator*> sims,
                   std::function<uint32_t(topology::NodeId)> shard_of);

  const FluidConfig& config() const { return config_; }
  const FluidStats& stats() const { return stats_; }
  size_t active_flows() const { return active_.size(); }

  /// Registers a fluid flow; the owner's on_fluid_complete receives the
  /// completed FlowRecord. start_time must not be in the engine's past.
  void start_flow(TransportManager* owner, uint64_t flow_id, HostId src, HostId dst,
                  uint64_t bytes, Time start_time);

  /// Earliest time the engine must run (+inf when idle). The sharded
  /// engine caps its phase horizon here; the serial binding schedules its
  /// own wake events at this time.
  Time next_wake() const;

  /// Runs the tick batch at exactly `t` (== next_wake()). Settles
  /// completions, admits starts, re-walks paths when link state changed,
  /// water-fills rates and pushes per-link fluid load into Link state.
  void advance_to(Time t);

  /// Fluid goodput currently crossing a directed link (test hook; wire
  /// bytes add the header derate back).
  double link_rate_bps(topology::LinkId link) const {
    return link < link_rate_.size() ? link_rate_[link] : 0.0;
  }

  /// FNV-1a digest over completed flows (id, end-time bits) in completion
  /// order — the worker-invariance pin for tests.
  uint64_t completion_digest() const { return completion_digest_; }

 private:
  struct PendingStart {
    Time start = 0.0;
    uint64_t flow_id = 0;
    HostId src = kInvalidHost;
    HostId dst = kInvalidHost;
    uint64_t bytes = 0;
    TransportManager* owner = nullptr;
  };
  struct ByStart {
    bool operator()(const PendingStart& a, const PendingStart& b) const {
      if (a.start != b.start) return a.start > b.start;  // min-heap
      return a.flow_id > b.flow_id;
    }
  };

  /// Lazy-deleted water-fill heap entry (min by share, link-id tie-break).
  /// Entries whose epoch no longer matches wf_epoch_[link] are skipped.
  struct WfEntry {
    double share = 0.0;
    topology::LinkId link = 0;
    uint32_t epoch = 0;
  };
  struct WfCmp {
    bool operator()(const WfEntry& a, const WfEntry& b) const {
      if (a.share != b.share) return a.share > b.share;  // min-heap
      return a.link > b.link;
    }
  };

  void ensure_link_tables();
  Simulator& sim_for(topology::NodeId node) { return *sims_[shard_of_ ? shard_of_(node) : 0]; }
  /// Canonical replica of a link: the shard owning its transmit side (the
  /// only replica whose EWMA ever moves, and so the one probes read).
  Link& link_ref(topology::LinkId l) { return sims_[link_owner_[l]]->link(l); }
  uint64_t link_generation_sum() const;

  /// Walks the installed dataplane from src's edge switch to dst's; fills
  /// the flow's path arena slot. Returns false when no usable route exists
  /// right now (the flow stalls with rate 0 and re-walks on link changes).
  bool walk_route(uint32_t slot, Time now);

  void admit_starts(Time now, bool& dirty);
  void settle(Time now, bool& dirty);
  void rewalk_all(Time now);
  void recompute_rates(Time now);
  void push_link_loads();
  void arm_serial_wake();

  uint32_t acquire_slot();
  void release_slot(uint32_t slot);

  FluidConfig config_;
  FluidStats stats_;

  std::vector<Simulator*> sims_;
  std::function<uint32_t(topology::NodeId)> shard_of_;  ///< empty = serial
  bool serial_ = false;
  uint32_t num_links_ = 0;  ///< topology links + host links

  // ----- flow SoA (slot-indexed, freelist-recycled) ------------------------
  std::vector<uint64_t> f_id_;
  std::vector<uint32_t> f_src_, f_dst_;
  std::vector<double> f_remaining_;   ///< payload bits left (f_rate_ is bps)
  std::vector<double> f_rate_;        ///< goodput bps (0 = stalled)
  std::vector<double> f_start_;       ///< nominal start (FCT origin)
  std::vector<double> f_origin_;      ///< start of the current settle interval
  std::vector<uint64_t> f_bytes_;
  std::vector<double> f_latency_;     ///< FCT floor: fwd prop+serialization, ack-return prop
  std::vector<uint16_t> f_path_len_;  ///< 0 = stalled (no usable route)
  std::vector<TransportManager*> f_owner_;
  std::vector<topology::LinkId> path_arena_;  ///< stride = config_.max_hops
  std::vector<uint32_t> free_slots_;

  /// Active slots in admission order (stable compaction on completion keeps
  /// iteration — and therefore float summation — order deterministic).
  std::vector<uint32_t> active_;

  // ----- per-link scratch (sized to num_links_, reset via touched list) ----
  std::vector<uint32_t> link_owner_;  ///< owning shard per link (all 0 serial)
  std::vector<double> link_rate_;     ///< committed fluid goodput per link
  std::vector<double> wf_cap_;        ///< water-fill residual capacity
  std::vector<uint32_t> wf_nflows_;   ///< water-fill unfrozen flow count
  std::vector<uint32_t> wf_count_;    ///< slice length in wf_members_
  std::vector<uint32_t> wf_offset_;   ///< per-link slice into wf_members_
  std::vector<uint32_t> wf_members_;  ///< flow slots grouped by link
  std::vector<uint32_t> wf_epoch_;    ///< lazy-deletion stamps for wf_heap_
  std::vector<WfEntry> wf_heap_;      ///< binary heap storage (std::*_heap)
  std::vector<topology::LinkId> touched_;
  std::vector<uint8_t> link_touched_;
  std::vector<topology::LinkId> loaded_links_;  ///< links with committed fluid load

  // Tick-local scratch: (record end time, slot) of flows completing this
  // tick, settled in (end, flow_id) order.
  std::vector<std::pair<double, uint32_t>> fin_order_;

  std::vector<PendingStart> pending_;  ///< min-heap (ByStart)

  Time last_settle_ = 0.0;
  uint64_t last_link_generation_ = 0;
  uint64_t completion_digest_ = 14695981039346656037ull;

  // Serial self-scheduling (stale wakes are skipped via the generation).
  Simulator* serial_sim_ = nullptr;
  uint64_t wake_generation_ = 0;
  Time armed_wake_ = std::numeric_limits<double>::infinity();
};

}  // namespace contra::sim
