#include "sim/packet.h"

// Packet is a plain value type; this TU anchors the module in the build.
namespace contra::sim {}
