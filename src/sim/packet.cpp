#include "sim/packet.h"

#include <cassert>

namespace contra::sim {
namespace {

#ifndef NDEBUG
// Canary stamped into freed slots: acquire() checks it survived the slot's
// time on the freelist, release() checks it is absent (double-release).
constexpr uint64_t kPoisonId = 0xdeadbeefdeadbeefull;
#endif

}  // namespace

Packet* PacketPool::acquire() {
  if (free_.empty()) {
    storage_.push_back(std::make_unique<Packet>());
    return storage_.back().get();
  }
  Packet* packet = free_.back();
  free_.pop_back();
#ifndef NDEBUG
  assert(packet->id == kPoisonId && "packet pool slot written while free");
  packet->id = 0;
#endif
  return packet;
}

void PacketPool::release(Packet* packet) {
#ifndef NDEBUG
  assert(packet->id != kPoisonId && "packet released to the pool twice");
  packet->id = kPoisonId;
  packet->flow_id = kPoisonId;
  packet->seq = kPoisonId;
  packet->size_bytes = 0xdeadbeefu;
#endif
  free_.push_back(packet);
}

}  // namespace contra::sim
