#include "sim/host.h"

#include "util/strings.h"

namespace contra::sim {

std::vector<HostId> attach_hosts_to_fat_tree_edges(Simulator& sim, uint32_t per_switch) {
  std::vector<HostId> hosts;
  const topology::Topology& topo = sim.topo();
  for (topology::NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (topology::fat_tree_layer(topo, n) != topology::FatTreeLayer::kEdge) continue;
    for (uint32_t i = 0; i < per_switch; ++i) hosts.push_back(sim.add_host(n));
  }
  return hosts;
}

std::vector<HostId> attach_hosts_to_leaves(Simulator& sim, uint32_t per_switch) {
  std::vector<HostId> hosts;
  const topology::Topology& topo = sim.topo();
  for (topology::NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (!util::starts_with(topo.name(n), "leaf")) continue;
    for (uint32_t i = 0; i < per_switch; ++i) hosts.push_back(sim.add_host(n));
  }
  return hosts;
}

std::vector<HostId> attach_hosts(Simulator& sim, const std::vector<topology::NodeId>& switches) {
  std::vector<HostId> hosts;
  hosts.reserve(switches.size());
  for (topology::NodeId n : switches) hosts.push_back(sim.add_host(n));
  return hosts;
}

}  // namespace contra::sim
