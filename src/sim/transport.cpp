#include "sim/transport.h"

#include <algorithm>
#include <cmath>

#include "obs/flow_tracker.h"
#include "sim/fluid.h"
#include "util/logging.h"

namespace contra::sim {

TransportManager::TransportManager(Simulator& sim, TransportConfig config)
    : sim_(sim), config_(config) {
  sim_.set_host_receiver([this](HostId host, Packet&& packet) {
    on_host_receive(host, std::move(packet));
  });
  if (config_.hybrid) {
    FluidConfig fc;
    fc.quantum_s = config_.fluid_quantum_s;
    fc.mss_bytes = config_.mss_bytes;
    fc.header_bytes = config_.header_bytes;
    owned_fluid_ = std::make_unique<FluidEngine>(fc);
    owned_fluid_->bind(sim_);
    fluid_ = owned_fluid_.get();
    fluid_sample_every_ = config_.hybrid_sample_every;
  }
}

TransportManager::~TransportManager() = default;

void TransportManager::use_fluid(FluidEngine* engine, uint32_t sample_every) {
  fluid_ = engine;
  fluid_sample_every_ = sample_every;
}

void TransportManager::on_fluid_complete(const FlowRecord& rec) {
  sim_.telemetry().metrics().add(sim_.telemetry().core().flows_completed);
  sim_.telemetry().metrics().observe(sim_.telemetry().core().fct_us, rec.fct() * 1e6);
  if (flow_tracker_) flow_tracker_->on_complete(rec.flow_id, rec.end);
  completed_.push_back(rec);
}

uint64_t TransportManager::start_flow(HostId src, HostId dst, uint64_t bytes, Time start_time) {
  if (fluid_ != nullptr) {
    // 1-in-n sampling on the submission counter: deterministic in submission
    // order, independent of flow-id namespacing. n == 0 keeps every flow
    // fluid; n == 1 degenerates to pure packet mode.
    const uint64_t submission = fluid_submissions_++;
    const bool packet_level = fluid_sample_every_ > 0 && submission % fluid_sample_every_ == 0;
    if (!packet_level) {
      const uint64_t flow_id = next_flow_id_++;
      sim_.telemetry().metrics().add(sim_.telemetry().core().flows_started);
      if (flow_tracker_) {
        flow_tracker_->on_start(flow_id, src, dst, std::max<uint64_t>(bytes, 1), start_time);
      }
      fluid_->start_flow(this, flow_id, src, dst, std::max<uint64_t>(bytes, 1), start_time);
      return flow_id;
    }
  }
  const uint64_t flow_id = next_flow_id_++;
  TcpSender sender;
  sender.src = src;
  sender.dst = dst;
  sender.flow_id = flow_id;
  sender.bytes = std::max<uint64_t>(bytes, 1);
  sender.total_pkts = (sender.bytes + config_.mss_bytes - 1) / config_.mss_bytes;
  sender.last_pkt_payload =
      static_cast<uint32_t>(sender.bytes - (sender.total_pkts - 1) * config_.mss_bytes);
  sender.start_time = start_time;
  sender.cwnd = config_.init_cwnd_pkts;
  sender.rto = config_.init_rto_s;
  sender.src_port = static_cast<uint16_t>(1024 + flow_id % 50000);
  sender.dst_port = static_cast<uint16_t>(5000 + flow_id % 1000);
  senders_.emplace(flow_id, std::move(sender));

  sim_.telemetry().metrics().add(sim_.telemetry().core().flows_started);
  if (flow_tracker_) {
    flow_tracker_->on_start(flow_id, src, dst, std::max<uint64_t>(bytes, 1), start_time);
  }

  sim_.events().schedule_at(start_time, [this, flow_id] {
    auto it = senders_.find(flow_id);
    if (it != senders_.end()) tcp_start(it->second);
  });
  return flow_id;
}

uint64_t TransportManager::start_udp_flow(HostId src, HostId dst, double rate_bps,
                                          Time start_time, Time stop_time,
                                          uint32_t packet_bytes) {
  const uint64_t flow_id = next_flow_id_++;
  UdpFlow flow;
  flow.src = src;
  flow.dst = dst;
  flow.flow_id = flow_id;
  flow.rate_bps = rate_bps;
  flow.stop_time = stop_time;
  flow.packet_bytes = packet_bytes;
  udp_flows_.emplace(flow_id, flow);
  sim_.telemetry().metrics().add(sim_.telemetry().core().flows_started);
  if (flow_tracker_) flow_tracker_->on_start(flow_id, src, dst, /*bytes=*/0, start_time);
  sim_.events().schedule_at(start_time, [this, flow_id] { udp_send_next(flow_id); });
  return flow_id;
}

std::vector<FlowRecord> TransportManager::all_flows() const {
  std::vector<FlowRecord> out = completed_;
  for (const auto& [id, s] : senders_) {
    if (s.done) continue;
    out.push_back(FlowRecord{id, s.src, s.dst, s.bytes, s.start_time, 0.0, false});
  }
  std::sort(out.begin(), out.end(),
            [](const FlowRecord& a, const FlowRecord& b) { return a.flow_id < b.flow_id; });
  return out;
}

Packet TransportManager::make_packet(PacketKind kind, HostId src, HostId dst, uint64_t flow_id,
                                     uint64_t seq, uint32_t size_bytes, uint8_t protocol) {
  Packet packet;
  packet.kind = kind;
  packet.id = sim_.next_packet_id();
  packet.src_host = src;
  packet.dst_host = dst;
  packet.src_switch = sim_.host_switch(src);
  packet.dst_switch = sim_.host_switch(dst);
  packet.flow_id = flow_id;
  packet.seq = seq;
  packet.size_bytes = size_bytes;
  packet.tuple.src_ip = 0x0a000000u + src;
  packet.tuple.dst_ip = 0x0a000000u + dst;
  packet.tuple.protocol = protocol;
  return packet;
}

// --------------------------------------------------------------------------
// TCP sender
// --------------------------------------------------------------------------

void TransportManager::tcp_start(TcpSender& sender) {
  sender.started = true;
  tcp_send_window(sender);
  tcp_arm_rto(sender);
}

void TransportManager::tcp_send_window(TcpSender& sender) {
  const uint64_t window = sender.acked + static_cast<uint64_t>(std::max(1.0, sender.cwnd));
  while (sender.next_seq < sender.total_pkts && sender.next_seq < window) {
    tcp_send_packet(sender, sender.next_seq);
    ++sender.next_seq;
  }
}

void TransportManager::tcp_send_packet(TcpSender& sender, uint64_t seq) {
  const uint32_t payload =
      seq + 1 == sender.total_pkts ? sender.last_pkt_payload : config_.mss_bytes;
  Packet packet = make_packet(PacketKind::kData, sender.src, sender.dst, sender.flow_id, seq,
                              payload + config_.header_bytes, /*protocol=*/6);
  packet.tuple.src_port = sender.src_port;
  packet.tuple.dst_port = sender.dst_port;
  if (path_sample_every_ != 0) {
    packet.int_sampled = obs::FlowTracker::sampled(sender.flow_id, seq, path_sample_every_);
  }
  sender.send_time[seq] = sim_.now();
  sim_.host_send(sender.src, std::move(packet));
}

void TransportManager::tcp_arm_rto(TcpSender& sender) {
  const uint64_t generation = ++sender.rto_generation;
  const uint64_t flow_id = sender.flow_id;
  sim_.events().schedule_in(sender.rto,
                            [this, flow_id, generation] { tcp_on_rto(flow_id, generation); });
}

void TransportManager::tcp_on_rto(uint64_t flow_id, uint64_t generation) {
  auto it = senders_.find(flow_id);
  if (it == senders_.end()) return;
  TcpSender& sender = it->second;
  if (sender.done || generation != sender.rto_generation) return;
  if (sender.acked >= sender.total_pkts) return;

  sim_.telemetry().metrics().add(sim_.telemetry().core().tcp_rto_fired);
  if (flow_tracker_) flow_tracker_->on_rto(flow_id);
  // Timeout: multiplicative backoff, window collapse, go-back to the hole.
  sender.ssthresh = std::max(sender.cwnd / 2.0, 2.0);
  sender.cwnd = 1.0;
  sender.dupacks = 0;
  sender.rto = std::min(sender.rto * 2.0, config_.max_rto_s);
  sender.next_seq = sender.acked;  // go-back-N from the first unacked packet
  tcp_send_window(sender);
  tcp_arm_rto(sender);
}

void TransportManager::tcp_complete(TcpSender& sender) {
  sim_.telemetry().metrics().add(sim_.telemetry().core().flows_completed);
  sim_.telemetry().metrics().observe(sim_.telemetry().core().fct_us,
                                     (sim_.now() - sender.start_time) * 1e6);
  if (flow_tracker_) flow_tracker_->on_complete(sender.flow_id, sim_.now());
  sender.done = true;
  ++sender.rto_generation;  // cancels any outstanding timer
  completed_.push_back(FlowRecord{sender.flow_id, sender.src, sender.dst, sender.bytes,
                                  sender.start_time, sim_.now(), true});
}

// --------------------------------------------------------------------------
// Receive paths
// --------------------------------------------------------------------------

void TransportManager::on_host_receive(HostId host, Packet&& packet) {
  (void)host;
  switch (packet.kind) {
    case PacketKind::kData:
      on_data(std::move(packet));
      return;
    case PacketKind::kAck:
      on_ack(std::move(packet));
      return;
    case PacketKind::kProbe:
      return;  // probes never reach hosts; ignore defensively
  }
}

void TransportManager::on_data(Packet&& packet) {
  if (data_inspector_) data_inspector_(packet);
  if (packet.tuple.protocol == 17) {  // UDP: count and notify
    udp_bytes_received_ += packet.size_bytes;
    if (udp_hook_) udp_hook_(sim_.now(), packet.size_bytes);
    if (flow_tracker_) record_delivery(packet, /*reordered=*/false);
    return;
  }
  TcpReceiver& receiver = receivers_[packet.flow_id];
  // Reordering accounting (the "Ordered" objective): an arrival below the
  // highest sequence already seen was overtaken in the network.
  bool reordered = false;
  if (receiver.any_seen && packet.seq < receiver.max_seq_seen) {
    ++receiver.reordered;
    reordered = true;
  } else {
    receiver.max_seq_seen = packet.seq;
    receiver.any_seen = true;
  }
  if (flow_tracker_) record_delivery(packet, reordered);
  const bool marked = packet.ecn_marked;
  if (packet.seq == receiver.expected) {
    ++receiver.expected;
    while (!receiver.out_of_order.empty() &&
           *receiver.out_of_order.begin() == receiver.expected) {
      receiver.out_of_order.erase(receiver.out_of_order.begin());
      ++receiver.expected;
    }
  } else if (packet.seq > receiver.expected) {
    receiver.out_of_order.insert(packet.seq);
  }
  // Cumulative ACK back to the sender; congestion marks are echoed (ECE).
  Packet ack = make_packet(PacketKind::kAck, packet.dst_host, packet.src_host, packet.flow_id,
                           receiver.expected, config_.ack_bytes, /*protocol=*/6);
  ack.tuple.src_port = packet.tuple.dst_port;
  ack.tuple.dst_port = packet.tuple.src_port;
  ack.ecn_marked = marked;
  sim_.host_send(packet.dst_host, std::move(ack));
}

void TransportManager::on_ack(Packet&& packet) {
  auto it = senders_.find(packet.flow_id);
  if (it == senders_.end()) return;
  TcpSender& sender = it->second;
  if (sender.done) return;
  const uint64_t ack = packet.seq;

  // DCTCP: account marks per window of data and cut cwnd by alpha/2 once per
  // window (Alizadeh et al., SIGCOMM'10).
  if (config_.dctcp && ack > sender.acked) {
    sender.dctcp_acked_total += ack - sender.acked;
    if (packet.ecn_marked) sender.dctcp_acked_marked += ack - sender.acked;
    if (ack >= sender.dctcp_window_end) {
      const double fraction =
          sender.dctcp_acked_total
              ? static_cast<double>(sender.dctcp_acked_marked) / sender.dctcp_acked_total
              : 0.0;
      sender.dctcp_alpha =
          (1.0 - config_.dctcp_gain) * sender.dctcp_alpha + config_.dctcp_gain * fraction;
      if (fraction > 0) {
        sender.cwnd = std::max(1.0, sender.cwnd * (1.0 - sender.dctcp_alpha / 2.0));
        sender.ssthresh = sender.cwnd;
      }
      sender.dctcp_acked_total = 0;
      sender.dctcp_acked_marked = 0;
      sender.dctcp_window_end = ack + static_cast<uint64_t>(std::max(1.0, sender.cwnd));
    }
  }

  if (ack > sender.acked) {
    // RTT sample from the newest acked packet (ignore retransmits implicitly:
    // the stored time is the most recent transmission).
    auto ts = sender.send_time.find(ack - 1);
    if (ts != sender.send_time.end()) {
      const double sample = sim_.now() - ts->second;
      if (!sender.rtt_seeded) {
        sender.srtt = sample;
        sender.rttvar = sample / 2.0;
        sender.rtt_seeded = true;
      } else {
        sender.rttvar = 0.75 * sender.rttvar + 0.25 * std::abs(sender.srtt - sample);
        sender.srtt = 0.875 * sender.srtt + 0.125 * sample;
      }
      sender.rto = std::clamp(sender.srtt + 4.0 * sender.rttvar, config_.min_rto_s,
                              config_.max_rto_s);
    }
    for (uint64_t s = sender.acked; s < ack; ++s) sender.send_time.erase(s);
    const uint64_t newly = ack - sender.acked;
    sender.acked = ack;
    sender.dupacks = 0;
    if (sender.next_seq < sender.acked) sender.next_seq = sender.acked;

    // Congestion window growth: slow start below ssthresh, else AIMD.
    for (uint64_t i = 0; i < newly; ++i) {
      if (sender.cwnd < sender.ssthresh) {
        sender.cwnd += 1.0;
      } else {
        sender.cwnd += 1.0 / sender.cwnd;
      }
    }

    if (sender.acked >= sender.total_pkts) {
      tcp_complete(sender);
      return;
    }
    tcp_send_window(sender);
    tcp_arm_rto(sender);
  } else if (ack == sender.acked) {
    ++sender.dupacks;
    if (sender.dupacks == 3) {
      sim_.telemetry().metrics().add(sim_.telemetry().core().tcp_fast_retx);
      if (flow_tracker_) flow_tracker_->on_fast_retx(sender.flow_id);
      // Fast retransmit + window halving.
      sender.ssthresh = std::max(sender.cwnd / 2.0, 2.0);
      sender.cwnd = sender.ssthresh;
      sender.dupacks = 0;
      tcp_send_packet(sender, sender.acked);
      tcp_arm_rto(sender);
    }
  }
}

void TransportManager::record_delivery(const Packet& packet, bool reordered) {
  flow_tracker_->on_data(packet.flow_id, packet.size_bytes, packet.path_sig, packet.hops,
                         reordered);
  if (packet.int_sampled) {
    obs::PathHop hops[kIntHopCap];
    const uint8_t n = static_cast<uint8_t>(packet.int_hops.size());
    for (uint8_t i = 0; i < n; ++i) {
      hops[i] = obs::PathHop{packet.int_hops[i].link, packet.int_hops[i].queue_bytes,
                             packet.int_hops[i].t};
    }
    flow_tracker_->on_path_sample(packet.flow_id, packet.seq, packet.dst_switch,
                                  packet.size_bytes, sim_.now(), packet.hops, hops, n);
  }
}

uint64_t TransportManager::total_reordered_packets() const {
  uint64_t total = 0;
  for (const auto& [id, receiver] : receivers_) total += receiver.reordered;
  return total;
}

// --------------------------------------------------------------------------
// UDP
// --------------------------------------------------------------------------

void TransportManager::udp_send_next(uint64_t flow_id) {
  auto it = udp_flows_.find(flow_id);
  if (it == udp_flows_.end()) return;
  UdpFlow& flow = it->second;
  if (sim_.now() >= flow.stop_time) return;
  Packet packet = make_packet(PacketKind::kData, flow.src, flow.dst, flow.flow_id,
                              flow.next_seq++, flow.packet_bytes, /*protocol=*/17);
  packet.tuple.src_port = static_cast<uint16_t>(7000 + flow_id % 1000);
  packet.tuple.dst_port = 7;
  if (path_sample_every_ != 0) {
    packet.int_sampled = obs::FlowTracker::sampled(flow.flow_id, packet.seq, path_sample_every_);
  }
  sim_.host_send(flow.src, std::move(packet));
  const double gap = flow.packet_bytes * 8.0 / flow.rate_bps;
  sim_.events().schedule_in(gap, [this, flow_id] { udp_send_next(flow_id); });
}

}  // namespace contra::sim
