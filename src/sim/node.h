// Device abstraction: anything installed at a topology node that handles
// packets (Contra switches, baseline switches). Devices send through the
// Simulator, which owns the links.
#pragma once

#include "sim/packet.h"
#include "topology/topology.h"

namespace contra::sim {

class Simulator;

/// A pseudo link id meaning "arrived from a locally attached host".
inline constexpr topology::LinkId kFromHost = topology::kInvalidLink;

class Device {
 public:
  virtual ~Device() = default;

  /// Called once when the simulation starts (e.g. to arm probe timers).
  virtual void start(Simulator& sim) { (void)sim; }

  /// A packet fully arrived at this switch. `in_link` is the directed
  /// topology link it came over, or kFromHost for host ingress.
  virtual void handle_packet(Simulator& sim, Packet&& packet, topology::LinkId in_link) = 0;

  /// Port signal: one of this node's attached cables changed administrative
  /// state (`link` is the directed link leaving this node). Fired by
  /// Simulator::fail_cable / restore_cable on both endpoint devices.
  /// Event-driven control planes react immediately (trigger waves, resyncs);
  /// the default is a no-op, matching the probe-silence-only protocols.
  virtual void handle_link_state(Simulator& sim, topology::LinkId link, bool up) {
    (void)sim;
    (void)link;
    (void)up;
  }

  /// Control-plane reboot injected by the churn engine (Simulator::
  /// restart_switch). Devices with soft protocol state model losing it here;
  /// the default is a no-op, matching stateless dataplanes.
  virtual void restart_control_plane() {}

  /// Hybrid engine route query (DESIGN.md §14): the egress link a data packet
  /// of `tuple` bound for `dst_switch` would take right now, *without* any
  /// dataplane side effects (no flowlet creation, no pinning, no counters).
  /// `routing` carries the per-flow stamp (tag/pid) across hops exactly as a
  /// packet header would; implementations must update it the way forwarding
  /// would. Returns kInvalidLink when this device has no usable route (the
  /// fluid flow stalls and retries next quantum). The default refuses, which
  /// disables hybrid mode for dataplanes without a read-only walk (SPAIN).
  virtual topology::LinkId fluid_next_hop(Simulator& sim, topology::NodeId dst_switch,
                                          const util::FiveTuple& tuple, RoutingState& routing) {
    (void)sim;
    (void)dst_switch;
    (void)tuple;
    (void)routing;
    return topology::kInvalidLink;
  }

  /// Human-readable name for diagnostics.
  virtual const char* kind_name() const = 0;
};

}  // namespace contra::sim
