#include "sim/churn_engine.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>

#include "util/hash.h"
#include "util/rng.h"

namespace contra::sim {
namespace {

/// Directed ids of every cable, represented by the lower directed id.
std::vector<topology::LinkId> cables_of(const topology::Topology& topo) {
  std::vector<topology::LinkId> cables;
  for (topology::LinkId id = 0; id < topo.num_links(); ++id) {
    if (id < topo.link(id).reverse) cables.push_back(id);
  }
  return cables;
}

std::string link_name(const topology::Topology& topo, topology::LinkId link) {
  const topology::DirectedLink& dl = topo.link(link);
  return topo.name(dl.from) + "-" + topo.name(dl.to);
}

bool gray_is_clear(const GrayParams& g) {
  return g.loss_prob == 0.0 && g.extra_delay_s == 0.0 && g.capacity_factor == 1.0;
}

}  // namespace

uint32_t ChurnEngine::begin_wave(FaultClass cls, Time at, std::string what) {
  const uint32_t index = next_wave_++;
  waves_.push_back(Wave{at, cls, index, std::move(what)});
  return index;
}

uint64_t ChurnEngine::gray_salt(topology::LinkId link, uint32_t wave) const {
  return util::mix64(0x6368757267726179ULL ^ (static_cast<uint64_t>(wave) << 32) ^ link);
}

ChurnEngine& ChurnEngine::flap(topology::LinkId link, Time start, Time half_period,
                               int cycles) {
  begin_wave(FaultClass::kFlap, start,
             "flap " + link_name(*topo_, link) + " x" + std::to_string(cycles));
  for (int i = 0; i < cycles; ++i) {
    push(Event{start + 2 * i * half_period, Op::kFail, link, topology::kInvalidNode, {}});
    push(Event{start + (2 * i + 1) * half_period, Op::kRestore, link,
               topology::kInvalidNode, {}});
  }
  return *this;
}

ChurnEngine& ChurnEngine::srg(const std::vector<topology::LinkId>& links, Time at,
                              Time restore_at) {
  begin_wave(FaultClass::kSrg, at, "srg " + std::to_string(links.size()) + " cables");
  for (topology::LinkId link : links) {
    push(Event{at, Op::kFail, link, topology::kInvalidNode, {}});
    push(Event{restore_at, Op::kRestore, link, topology::kInvalidNode, {}});
  }
  return *this;
}

ChurnEngine& ChurnEngine::srg_switch(topology::NodeId node, Time at, Time restore_at) {
  begin_wave(FaultClass::kSrg, at, "srg switch " + topo_->name(node));
  for (topology::LinkId link : topo_->out_links(node)) {
    push(Event{at, Op::kFail, link, topology::kInvalidNode, {}});
    push(Event{restore_at, Op::kRestore, link, topology::kInvalidNode, {}});
  }
  return *this;
}

ChurnEngine& ChurnEngine::gray(topology::LinkId link, Time at, Time clear_at,
                               GrayParams params) {
  char what[96];
  std::snprintf(what, sizeof(what), "gray %s loss=%.3f", link_name(*topo_, link).c_str(),
                params.loss_prob);
  const uint32_t wave = begin_wave(FaultClass::kGray, at, what);
  if (params.salt == 0) params.salt = gray_salt(link, wave);
  push(Event{at, Op::kGraySet, link, topology::kInvalidNode, params});
  push(Event{clear_at, Op::kGraySet, link, topology::kInvalidNode, GrayParams{}});
  return *this;
}

ChurnEngine& ChurnEngine::drift(topology::LinkId link, Time start, Time half_period,
                                int cycles, double amplitude_s) {
  begin_wave(FaultClass::kDrift, start,
             "drift " + link_name(*topo_, link) + " x" + std::to_string(cycles));
  GrayParams high;
  high.extra_delay_s = amplitude_s;
  high.salt = gray_salt(link, next_wave_ - 1);
  for (int i = 0; i < cycles; ++i) {
    push(Event{start + 2 * i * half_period, Op::kGraySet, link, topology::kInvalidNode,
               high});
    push(Event{start + (2 * i + 1) * half_period, Op::kGraySet, link,
               topology::kInvalidNode, GrayParams{}});
  }
  return *this;
}

ChurnEngine& ChurnEngine::drain(topology::NodeId node, Time at, Time restore_at,
                                double capacity_factor) {
  const uint32_t wave = begin_wave(FaultClass::kDrain, at, "drain " + topo_->name(node));
  for (topology::LinkId link : topo_->out_links(node)) {
    GrayParams derate;
    derate.capacity_factor = capacity_factor;
    derate.salt = gray_salt(link, wave);
    push(Event{at, Op::kGraySet, link, topology::kInvalidNode, derate});
    push(Event{restore_at, Op::kGraySet, link, topology::kInvalidNode, GrayParams{}});
  }
  return *this;
}

ChurnEngine& ChurnEngine::restart(topology::NodeId node, Time at) {
  begin_wave(FaultClass::kRestart, at, "restart " + topo_->name(node));
  push(Event{at, Op::kRestart, topology::kInvalidLink, node, {}});
  return *this;
}

ChurnEngine& ChurnEngine::generate(uint64_t seed, Time start, Time horizon,
                                   uint32_t waves) {
  const std::vector<topology::LinkId> cables = cables_of(*topo_);
  if (cables.empty() || waves == 0 || horizon <= start) return *this;
  util::Rng rng(util::mix64(seed ^ 0x636875726e67656eULL));
  const Time slot = (horizon - start) / waves;
  for (uint32_t w = 0; w < waves; ++w) {
    const Time t0 = start + w * slot;
    // Keep every fault fully healed by 80% of the slot so the schedule ends
    // clean before the measurement horizon.
    const Time active = 0.8 * slot;
    const topology::LinkId cable =
        cables[static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(cables.size()) - 1))];
    const topology::NodeId node =
        static_cast<topology::NodeId>(rng.uniform_int(0, topo_->num_nodes() - 1));
    switch (rng.uniform_int(0, 5)) {
      case 0: {  // flap
        const int cycles = static_cast<int>(rng.uniform_int(1, 3));
        flap(cable, t0, active / (2 * cycles), cycles);
        break;
      }
      case 1: {  // correlated: every cable of one switch
        srg_switch(node, t0, t0 + active);
        break;
      }
      case 2: {  // gray
        GrayParams params;
        params.loss_prob = 0.01 + 0.19 * rng.uniform();
        params.extra_delay_s = 200e-6 * rng.uniform();
        params.capacity_factor = 0.5 + 0.5 * rng.uniform();
        gray(cable, t0, t0 + active, params);
        break;
      }
      case 3: {  // drift
        const int cycles = static_cast<int>(rng.uniform_int(1, 3));
        drift(cable, t0, active / (2 * cycles), cycles, 50e-6 + 450e-6 * rng.uniform());
        break;
      }
      case 4:  // drain
        drain(node, t0, t0 + active, 0.05 + 0.25 * rng.uniform());
        break;
      default:  // restart
        restart(node, t0);
        break;
    }
  }
  return *this;
}

Time ChurnEngine::last_event_time() const {
  Time last = 0.0;
  for (const Event& ev : events_) last = std::max(last, ev.at);
  for (const Wave& wave : waves_) last = std::max(last, wave.at);
  return last;
}

bool ChurnEngine::ends_clean() const {
  // Replay the schedule in time order and check nothing is left installed.
  std::vector<size_t> order(events_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return events_[a].at < events_[b].at;
  });
  std::set<topology::LinkId> down;
  std::set<topology::LinkId> grayed;
  for (size_t i : order) {
    const Event& ev = events_[i];
    switch (ev.op) {
      case Op::kFail:
        down.insert(ev.link);
        break;
      case Op::kRestore:
        down.erase(ev.link);
        break;
      case Op::kGraySet:
        if (gray_is_clear(ev.gray)) {
          grayed.erase(ev.link);
        } else {
          grayed.insert(ev.link);
        }
        break;
      case Op::kRestart:
        break;
    }
  }
  return down.empty() && grayed.empty();
}

bool ChurnEngine::has_restarts() const {
  for (const Event& ev : events_) {
    if (ev.op == Op::kRestart) return true;
  }
  return false;
}

std::string ChurnEngine::describe() const {
  std::string out;
  char line[160];
  for (const Wave& wave : waves_) {
    std::snprintf(line, sizeof(line), "wave %u t=%.6fs class=%.*s %s\n", wave.index,
                  wave.at, static_cast<int>(obs::fault_class_name(wave.cls).size()),
                  obs::fault_class_name(wave.cls).data(), wave.what.c_str());
    out += line;
  }
  return out;
}

// Arming schedules both wave markers and primitive events in global time
// order, wave markers first at equal times: the event queue breaks ties by
// insertion order, so the churn_wave trace record always precedes the fault
// records it anchors.
namespace {
struct ArmItem {
  Time at;
  bool is_wave;
  size_t index;
};

std::vector<ArmItem> arm_order(const std::vector<ArmItem>& unsorted) {
  std::vector<ArmItem> items = unsorted;
  std::stable_sort(items.begin(), items.end(), [](const ArmItem& a, const ArmItem& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.is_wave && !b.is_wave;
  });
  return items;
}
}  // namespace

void ChurnEngine::arm(Simulator& sim) const {
  std::vector<ArmItem> items;
  items.reserve(waves_.size() + events_.size());
  for (size_t i = 0; i < waves_.size(); ++i) items.push_back({waves_[i].at, true, i});
  for (size_t i = 0; i < events_.size(); ++i) items.push_back({events_[i].at, false, i});
  for (const ArmItem& item : arm_order(items)) {
    if (item.is_wave) {
      const Wave wave = waves_[item.index];
      sim.events().schedule_at(wave.at,
                               [&sim, wave] { sim.note_churn_wave(wave.cls, wave.index); });
      continue;
    }
    const Event ev = events_[item.index];
    switch (ev.op) {
      case Op::kFail:
        sim.events().schedule_at(ev.at, [&sim, ev] { sim.fail_cable(ev.link); });
        break;
      case Op::kRestore:
        sim.events().schedule_at(ev.at, [&sim, ev] { sim.restore_cable(ev.link); });
        break;
      case Op::kGraySet:
        sim.events().schedule_at(ev.at, [&sim, ev] { sim.set_cable_gray(ev.link, ev.gray); });
        break;
      case Op::kRestart:
        sim.events().schedule_at(ev.at, [&sim, ev] { sim.restart_switch(ev.node); });
        break;
    }
  }
}

void ChurnEngine::arm(ParallelSimulator& psim) const {
  std::vector<ArmItem> items;
  items.reserve(waves_.size() + events_.size());
  for (size_t i = 0; i < waves_.size(); ++i) items.push_back({waves_[i].at, true, i});
  for (size_t i = 0; i < events_.size(); ++i) items.push_back({events_[i].at, false, i});
  for (const ArmItem& item : arm_order(items)) {
    if (item.is_wave) {
      const Wave& wave = waves_[item.index];
      psim.schedule_churn_wave(wave.at, wave.cls, wave.index);
      continue;
    }
    const Event& ev = events_[item.index];
    switch (ev.op) {
      case Op::kFail:
        psim.schedule_cable_event(ev.at, ev.link, /*down=*/true);
        break;
      case Op::kRestore:
        psim.schedule_cable_event(ev.at, ev.link, /*down=*/false);
        break;
      case Op::kGraySet:
        psim.schedule_gray_event(ev.at, ev.link, ev.gray);
        break;
      case Op::kRestart:
        psim.schedule_restart_event(ev.at, ev.node);
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// JSON-subset parser for --churn-spec. Supports objects, arrays, strings
// (no escapes beyond \" \\ \/ \n \t), numbers, booleans, null — enough for
// the spec schema, with line-precise errors. No external dependencies.
// ---------------------------------------------------------------------------
namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  bool fail(const std::string& message) {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    *error_ = "churn-spec parse error (line " + std::to_string(line) + "): " + message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool parse_value(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return parse_string(&out->str);
    }
    if (c == 't' || c == 'f') return parse_keyword(out);
    if (c == 'n') return parse_keyword(out);
    return parse_number(out);
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default: return fail("unsupported escape sequence");
        }
        continue;
      }
      out->push_back(c);
    }
    return fail("unterminated string");
  }

  bool parse_keyword(JsonValue* out) {
    auto match = [this](const char* kw) {
      const size_t n = std::strlen(kw);
      if (text_.compare(pos_, n, kw) != 0) return false;
      pos_ += n;
      return true;
    };
    if (match("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return true;
    }
    if (match("null")) {
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    return fail("unknown keyword");
  }

  bool parse_number(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    char* end = nullptr;
    out->number = std::strtod(text_.c_str() + start, &end);
    if (end != text_.c_str() + pos_) return fail("malformed number");
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

/// Numeric field in milliseconds → seconds; false + error when missing.
bool req_ms(const JsonValue& obj, const std::string& key, std::string* error, Time* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    *error = "churn-spec: event missing numeric field \"" + key + "\"";
    return false;
  }
  *out = v->number * 1e-3;
  return true;
}

double opt_num(const JsonValue& obj, const std::string& key, double fallback) {
  const JsonValue* v = obj.find(key);
  return (v != nullptr && v->kind == JsonValue::Kind::kNumber) ? v->number : fallback;
}

bool resolve_node(const topology::Topology& topo, const JsonValue& obj, std::string* error,
                  topology::NodeId* out) {
  const JsonValue* v = obj.find("node");
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    *error = "churn-spec: event missing string field \"node\"";
    return false;
  }
  *out = topo.find(v->str);
  if (*out == topology::kInvalidNode) {
    *error = "churn-spec: unknown node \"" + v->str + "\"";
    return false;
  }
  return true;
}

bool resolve_link_name(const topology::Topology& topo, const std::string& name,
                       std::string* error, topology::LinkId* out) {
  const size_t dash = name.find('-');
  if (dash == std::string::npos) {
    *error = "churn-spec: link \"" + name + "\" must be \"from-to\"";
    return false;
  }
  const topology::NodeId a = topo.find(name.substr(0, dash));
  const topology::NodeId b = topo.find(name.substr(dash + 1));
  if (a == topology::kInvalidNode || b == topology::kInvalidNode ||
      topo.link_between(a, b) == topology::kInvalidLink) {
    *error = "churn-spec: no cable \"" + name + "\" in the topology";
    return false;
  }
  *out = topo.link_between(a, b);
  return true;
}

bool resolve_link(const topology::Topology& topo, const JsonValue& obj, std::string* error,
                  topology::LinkId* out) {
  const JsonValue* v = obj.find("link");
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    *error = "churn-spec: event missing string field \"link\"";
    return false;
  }
  return resolve_link_name(topo, v->str, error, out);
}

}  // namespace

bool ChurnEngine::load_json(const std::string& text, std::string* error) {
  JsonValue root;
  if (!JsonParser(text, error).parse(&root)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    *error = "churn-spec: top level must be an object";
    return false;
  }
  if (const JsonValue* events = root.find("events"); events != nullptr) {
    if (events->kind != JsonValue::Kind::kArray) {
      *error = "churn-spec: \"events\" must be an array";
      return false;
    }
    for (const JsonValue& ev : events->array) {
      if (ev.kind != JsonValue::Kind::kObject) {
        *error = "churn-spec: every event must be an object";
        return false;
      }
      const JsonValue* type = ev.find("type");
      if (type == nullptr || type->kind != JsonValue::Kind::kString) {
        *error = "churn-spec: event missing string field \"type\"";
        return false;
      }
      const std::string& kind = type->str;
      if (kind == "flap") {
        topology::LinkId link;
        Time start, half;
        if (!resolve_link(*topo_, ev, error, &link) ||
            !req_ms(ev, "start_ms", error, &start) ||
            !req_ms(ev, "half_period_ms", error, &half)) {
          return false;
        }
        flap(link, start, half, static_cast<int>(opt_num(ev, "cycles", 1)));
      } else if (kind == "srg") {
        const JsonValue* links = ev.find("links");
        if (links == nullptr || links->kind != JsonValue::Kind::kArray) {
          *error = "churn-spec: srg event needs a \"links\" array";
          return false;
        }
        std::vector<topology::LinkId> ids;
        for (const JsonValue& name : links->array) {
          topology::LinkId id;
          if (name.kind != JsonValue::Kind::kString ||
              !resolve_link_name(*topo_, name.str, error, &id)) {
            if (error->empty()) *error = "churn-spec: srg links must be strings";
            return false;
          }
          ids.push_back(id);
        }
        Time at, restore;
        if (!req_ms(ev, "at_ms", error, &at) || !req_ms(ev, "restore_ms", error, &restore)) {
          return false;
        }
        srg(ids, at, restore);
      } else if (kind == "srg_switch") {
        topology::NodeId node;
        Time at, restore;
        if (!resolve_node(*topo_, ev, error, &node) || !req_ms(ev, "at_ms", error, &at) ||
            !req_ms(ev, "restore_ms", error, &restore)) {
          return false;
        }
        srg_switch(node, at, restore);
      } else if (kind == "gray") {
        topology::LinkId link;
        Time at, clear;
        if (!resolve_link(*topo_, ev, error, &link) || !req_ms(ev, "at_ms", error, &at) ||
            !req_ms(ev, "clear_ms", error, &clear)) {
          return false;
        }
        GrayParams params;
        params.loss_prob = opt_num(ev, "loss", 0.0);
        params.extra_delay_s = opt_num(ev, "extra_delay_us", 0.0) * 1e-6;
        params.capacity_factor = opt_num(ev, "capacity_factor", 1.0);
        gray(link, at, clear, params);
      } else if (kind == "drift") {
        topology::LinkId link;
        Time start, half;
        if (!resolve_link(*topo_, ev, error, &link) ||
            !req_ms(ev, "start_ms", error, &start) ||
            !req_ms(ev, "half_period_ms", error, &half)) {
          return false;
        }
        drift(link, start, half, static_cast<int>(opt_num(ev, "cycles", 1)),
              opt_num(ev, "amplitude_us", 100.0) * 1e-6);
      } else if (kind == "drain") {
        topology::NodeId node;
        Time at, restore;
        if (!resolve_node(*topo_, ev, error, &node) || !req_ms(ev, "at_ms", error, &at) ||
            !req_ms(ev, "restore_ms", error, &restore)) {
          return false;
        }
        drain(node, at, restore, opt_num(ev, "capacity_factor", 0.1));
      } else if (kind == "restart") {
        topology::NodeId node;
        Time at;
        if (!resolve_node(*topo_, ev, error, &node) || !req_ms(ev, "at_ms", error, &at)) {
          return false;
        }
        restart(node, at);
      } else {
        *error = "churn-spec: unknown event type \"" + kind + "\"";
        return false;
      }
    }
  }
  if (const JsonValue* gen = root.find("generate"); gen != nullptr) {
    if (gen->kind != JsonValue::Kind::kObject) {
      *error = "churn-spec: \"generate\" must be an object";
      return false;
    }
    Time start, horizon;
    if (!req_ms(*gen, "start_ms", error, &start) ||
        !req_ms(*gen, "horizon_ms", error, &horizon)) {
      return false;
    }
    generate(static_cast<uint64_t>(opt_num(*gen, "seed", 1)), start, horizon,
             static_cast<uint32_t>(opt_num(*gen, "waves", 4)));
  }
  if (events_.empty()) {
    *error = "churn-spec: no events (need \"events\" and/or \"generate\")";
    return false;
  }
  return true;
}

}  // namespace contra::sim
