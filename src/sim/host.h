// Host-side helpers. Hosts are thin in this simulator: endpoints with a NIC
// link pair managed by Simulator and a transport managed by
// TransportManager. This header provides the placement helpers experiments
// use to attach hosts to edge switches.
#pragma once

#include <vector>

#include "sim/simulator.h"
#include "topology/generators.h"

namespace contra::sim {

/// Attaches `per_switch` hosts to every edge switch of a fat-tree (names
/// starting with "e"); returns the host ids in attachment order.
std::vector<HostId> attach_hosts_to_fat_tree_edges(Simulator& sim, uint32_t per_switch);

/// Attaches `per_switch` hosts to every leaf of a leaf-spine topology.
std::vector<HostId> attach_hosts_to_leaves(Simulator& sim, uint32_t per_switch);

/// Attaches one host to each of the given switches.
std::vector<HostId> attach_hosts(Simulator& sim, const std::vector<topology::NodeId>& switches);

}  // namespace contra::sim
