// Sharded parallel simulation engine (DESIGN.md §8).
//
// The topology is partitioned into shards (topology/partitioner.h); each
// shard owns a full Simulator restricted to its switches and advances on its
// own EventQueue. Shards synchronize with conservative per-channel lookahead
// (CMB/null-message style): the partitioner exposes a safe-horizon matrix
// h[src][dst] = min propagation delay over cut links src->dst, and between
// phases the scheduler computes, for every shard, the earliest time any
// other shard could still reach it — folding in each shard's next pending
// event (a quiescent shard cannot transmit before its next event fires) and
// closing the bound transitively over relay chains (min-plus closure, the
// classical LBTS computation). Each shard then runs to its own safe target:
// shards with no short inbound cut links advance in wide epochs, provably
// idle shards skip the barrier entirely, and a phase that dispatches a
// single shard runs inline on the main thread with no pool wakeup.
//
// Determinism contract (the part worth reading twice):
//   * The execution schedule is a pure function of (topology, shard count,
//     seeds). Phase targets are computed from barrier-time queue state that
//     is itself deterministic, so worker threads only decide *who* executes
//     a shard's deterministic event stream, never *what* is executed — any
//     --workers N, including 1, is bit-identical to any other N.
//   * Ties are processed in (time, shard, sequence) order: each queue breaks
//     time ties by insertion sequence, and drains happen at deterministic
//     phases in fixed source-shard order.
//   * With 1 shard the engine degenerates to exactly the serial Simulator
//     (same id sequences, same insertion order, no barriers) — bit-identical
//     to Simulator::run_until.
//   * With >1 shards, results are deterministic and workers-invariant but
//     not bit-identical to the serial engine (or to a different shard count
//     or epoch schedule): a cross-shard delivery enters the destination
//     queue at a drain rather than at transmit time, so *simultaneous*
//     events can interleave differently (and first-arrival-wins protocol
//     ties, e.g. equal-rank probes, can resolve the other way). Same-time
//     tie order is the only divergence.
//
// SimConfig::global_min_epochs selects the legacy PR-3 schedule (every
// shard steps on a global grid of width = min cut-link delay) for the
// epoch-width regression tests and the bench's barrier-count comparison.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sim/shard.h"
#include "sim/transport.h"
#include "topology/partitioner.h"

namespace contra::obs {
class EngineProfiler;
class FlowTracker;
}

namespace contra::sim {

class ParallelSimulator {
 public:
  /// `config.shards` = 0 picks topology::default_num_shards sized to the
  /// topology and to max(config.workers, hardware_concurrency) — pass an
  /// explicit shard count when the schedule must reproduce across machines.
  /// `config.workers` = 0 runs single-threaded (same schedule regardless).
  ParallelSimulator(const topology::Topology& topo, SimConfig config);
  ~ParallelSimulator();
  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  const topology::Topology& topo() const { return *topo_; }
  const SimConfig& config() const { return config_; }
  const topology::Partition& partition() const { return partition_; }
  uint32_t num_shards() const { return partition_.num_shards; }
  uint32_t num_workers() const { return workers_; }
  /// Legacy global-min lookahead: the width every epoch had before the
  /// per-channel scheduler (+inf when no link crosses the cut). Still the
  /// epoch grid when config().global_min_epochs is set; otherwise a summary
  /// lower bound on per-channel horizons.
  double epoch_width_s() const { return partition_.min_cut_delay_s; }
  /// Synchronization phases completed — one fork-join barrier each. The
  /// per-channel scheduler's whole point is keeping this small relative to
  /// sim-time / epoch_width_s.
  uint64_t epochs_completed() const { return phases_; }
  /// Phases whose dispatch list was a single shard: run inline on the main
  /// thread, no worker wakeup — a "free" barrier.
  uint64_t solo_phases() const { return solo_phases_; }

  Simulator& shard_sim(uint32_t shard) { return shards_[shard]->sim; }
  Shard& shard(uint32_t s) { return *shards_[s]; }
  uint32_t shard_of_node(topology::NodeId node) const { return partition_.shard(node); }

  // ----- setup (main thread, before run_until) -----------------------------

  /// Adds the host on *every* shard (ids and link indices must line up);
  /// only the shard owning `attach` ever carries its traffic.
  HostId add_host(topology::NodeId attach);
  uint32_t num_hosts() const { return shards_[0]->sim.num_hosts(); }
  topology::NodeId host_switch(HostId host) const { return shards_[0]->sim.host_switch(host); }

  /// Runs `fn(Simulator&)` on every shard simulator in shard order — the
  /// hook for install_*_network style setup.
  template <typename Fn>
  void for_each_shard(Fn&& fn) {
    for (auto& shard : shards_) fn(shard->sim);
  }

  /// Arms device timers on every shard.
  void start();

  /// Attaches a per-shard in-memory trace buffer to every shard's telemetry
  /// (merged_trace() reads them back). Call before start().
  void enable_tracing();

  /// Attaches a wall-clock engine profiler (obs::EngineProfiler built with
  /// num_shards()+1 tracks: one per shard plus the scheduler track). Spans:
  /// per-shard `mailbox_drain` / `phase_run`, scheduler-track `plan` /
  /// `barrier`. Opt-in; one null-check per phase when absent. Call before
  /// run_until; timestamps are relative to the call.
  void set_profiler(obs::EngineProfiler* profiler);

  /// Periodic metrics snapshots under the phase scheduler: one merged
  /// snapshot line is written per `interval_s` tick of simulation time, at
  /// the first phase boundary where every shard has committed past the tick
  /// (the engine's natural stop-the-world points — see OBSERVABILITY.md).
  /// The emission schedule depends only on the deterministic phase plan, so
  /// output is workers-invariant. nullptr disables.
  void set_metrics_snapshots(double interval_s, std::ostream* out);

  // ----- failure injection -------------------------------------------------

  /// Immediate fail/restore on every shard's replica; telemetry and logging
  /// fire once, on the shard owning the link's transmit side.
  void fail_cable(topology::LinkId link);
  void restore_cable(topology::LinkId link);
  /// Pre-run scheduling of a mid-run failure: every shard applies the state
  /// change at local time `t` inside its own epoch.
  void schedule_cable_event(Time t, topology::LinkId link, bool down);

  // Churn engine hooks (DESIGN.md §13). Gray state replicates to every
  // shard's link replicas (loud on the owner, like cable events); a restart
  // is scheduled only on the shard owning the device; the wave marker fires
  // on shard 0, once.
  void schedule_gray_event(Time t, topology::LinkId link, GrayParams gray);
  void schedule_restart_event(Time t, topology::NodeId node);
  void schedule_churn_wave(Time t, obs::FaultClass cls, uint32_t wave_index);

  // ----- run ---------------------------------------------------------------

  /// Advances every shard to `end` (inclusive, like Simulator::run_until)
  /// through the phase scheduler. Callable repeatedly with growing `end`,
  /// exactly like the serial engine's run windows. With a fluid engine
  /// attached (set_fluid) the window is split at fluid quantum ticks: each
  /// tick runs on the main thread while every shard is parked at exactly the
  /// tick time, so hybrid results are workers-invariant by construction.
  void run_until(Time end);

  /// Attaches the hybrid fluid engine (DESIGN.md §14). ParallelTransport
  /// calls this when TransportConfig::hybrid is set; the engine must outlive
  /// the runs (detach with nullptr before it dies).
  void set_fluid(FluidEngine* fluid) { fluid_ = fluid; }

  Time now() const { return now_; }

  // ----- merged views ------------------------------------------------------

  /// Per-link stats summed over shards (only the owning shard's replica ever
  /// counts, so the sum is exact).
  LinkStats aggregate_fabric_stats() const;
  uint64_t events_processed() const;
  uint64_t events_clamped() const;

  /// All shard trace buffers merged in (t, shard, emission index) order.
  std::vector<obs::TraceRecord> merged_trace() const;
  /// Metrics snapshot with per-shard registries folded together (counters
  /// and histograms sum, gauges max).
  std::string merged_metrics_json(double t) const;

 private:
  /// Computes per-shard phase targets (per-channel lookahead or the legacy
  /// grid), fills dispatch_, and idle-skips shards with no work. Returns
  /// false when nothing at or before `end` remains anywhere.
  bool plan_phase(Time end);
  /// One scheduler window: phase loop + quiescent tail, no fluid ticks
  /// (run_until splits windows at fluid wakes and calls this per span).
  void run_span(Time end);
  /// Drain inbound mailboxes + run one shard to its planned target.
  void run_phase_shard(uint32_t s);
  /// Runs the planned dispatch list across the worker pool (or inline when
  /// it is a single shard) and retires the phase.
  void execute_phase();
  void worker_loop(uint32_t worker);
  void wait_done();

  const topology::Topology* topo_;
  SimConfig config_;
  topology::Partition partition_;
  std::vector<std::unique_ptr<Shard>> shards_;

  Time now_ = 0.0;
  FluidEngine* fluid_ = nullptr;  ///< hybrid mode (set_fluid); not owned
  Time next_boundary_ = 0.0;  ///< legacy grid mode: first unreached boundary
  uint64_t phases_ = 0;
  uint64_t solo_phases_ = 0;
  bool tracing_ = false;

  // Engine profiling (opt-in; see set_profiler).
  obs::EngineProfiler* profiler_ = nullptr;
  std::chrono::steady_clock::time_point profile_epoch_{};
  double profile_us(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - profile_epoch_).count();
  }

  // Periodic merged snapshots (opt-in; see set_metrics_snapshots).
  std::ostream* snapshot_out_ = nullptr;
  double snapshot_interval_s_ = 0.0;
  uint64_t snapshot_tick_ = 1;  ///< next unemitted tick index (t = tick * interval)
  void emit_snapshots_through(Time t);

  // Phase-scheduler scratch (sized once; the steady state allocates nothing).
  std::vector<double> base_;   ///< earliest pending work per shard
  std::vector<double> avail_;  ///< min-plus closure of base_ over the horizon matrix
  std::vector<uint32_t> dispatch_;  ///< shards with real work this phase

  // Worker pool: persistent threads, fork-join per phase via a generation
  // counter (release) and a completion counter (acquire). Bounded spin, then
  // park on the atomic (C++20 wait/notify): epochs are microseconds of work
  // so short spins usually win, but oversubscribed or idle-heavy runs must
  // not burn cores.
  uint32_t workers_ = 1;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint32_t> done_{0};
  std::atomic<bool> shutdown_{false};
};

// ----- transport over shards -----------------------------------------------

/// One TransportManager per shard; a flow lives on the shard owning its
/// source host's edge switch (the receiver side materializes on the
/// destination shard on first data arrival, keyed by flow id). Flow ids are
/// namespaced per shard — (shard << 48) + sequence — so shard 0 matches the
/// serial id sequence.
class ParallelTransport {
 public:
  explicit ParallelTransport(ParallelSimulator& psim, TransportConfig config = {});
  ~ParallelTransport();  // out of line: trackers_ holds an incomplete type here

  uint64_t start_flow(HostId src, HostId dst, uint64_t bytes, Time start_time);
  uint64_t start_udp_flow(HostId src, HostId dst, double rate_bps, Time start_time,
                          Time stop_time, uint32_t packet_bytes = 1500);

  /// Completed flows merged over shards, ordered by (end time, flow id) —
  /// deterministic, unlike raw per-shard completion interleaving.
  std::vector<FlowRecord> completed_flows() const;
  std::vector<FlowRecord> all_flows() const;
  uint64_t total_reordered_packets() const;
  uint64_t udp_bytes_received() const;

  TransportManager& shard_transport(uint32_t shard) { return *transports_[shard]; }
  const TransportConfig& config() const { return config_; }

  /// Attaches one obs::FlowTracker per shard (and turns on path-signature
  /// stamping in every shard simulator). A flow's sender half lands on its
  /// source shard's tracker and the receiver half on the destination
  /// shard's; merged_flow_tracker() folds them by flow id.
  /// `path_sample_every` > 0 additionally samples 1-in-N data packets with
  /// INT hop records (deterministic in (flow_id, seq)).
  void enable_flow_tracking(uint32_t path_sample_every = 0);
  bool flow_tracking() const { return !trackers_.empty(); }
  obs::FlowTracker& shard_flow_tracker(uint32_t shard) { return *trackers_[shard]; }
  obs::FlowTracker merged_flow_tracker() const;

  /// The shared hybrid fluid engine (DESIGN.md §14); nullptr unless
  /// config.hybrid. One engine spans every shard: it is bound to all shard
  /// simulators and ticks on the main thread between phases.
  FluidEngine* fluid_engine() const { return fluid_.get(); }

 private:
  TransportManager& for_host(HostId src);

  ParallelSimulator* psim_;
  TransportConfig config_;
  std::unique_ptr<FluidEngine> fluid_;  ///< created when config.hybrid
  std::vector<std::unique_ptr<TransportManager>> transports_;
  std::vector<std::unique_ptr<obs::FlowTracker>> trackers_;
};

// Host-placement helpers mirroring sim/host.h for the parallel engine.
std::vector<HostId> attach_hosts_to_fat_tree_edges(ParallelSimulator& sim, uint32_t per_switch);
std::vector<HostId> attach_hosts_to_leaves(ParallelSimulator& sim, uint32_t per_switch);
std::vector<HostId> attach_hosts(ParallelSimulator& sim,
                                 const std::vector<topology::NodeId>& switches);

}  // namespace contra::sim
