#include "sim/fluid.h"

#include <algorithm>
#include <cstring>

namespace contra::sim {

namespace {

/// FNV-1a over the bytes of one u64 (little-endian byte order — the digest
/// is a pin, not a wire format, and the test suite runs on one arch).
uint64_t fnv1a_u64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t double_bits(double d) {
  uint64_t v = 0;
  std::memcpy(&v, &d, sizeof(v));
  return v;
}

}  // namespace

FluidEngine::FluidEngine(FluidConfig config) : config_(config) {
  if (config_.max_hops < 4) config_.max_hops = 4;
  if (config_.quantum_s <= 0.0) config_.quantum_s = 64e-6;
}

void FluidEngine::bind(Simulator& sim) {
  sims_ = {&sim};
  shard_of_ = nullptr;
  serial_ = true;
  serial_sim_ = &sim;
}

void FluidEngine::bind_shards(std::vector<Simulator*> sims,
                              std::function<uint32_t(topology::NodeId)> shard_of) {
  sims_ = std::move(sims);
  shard_of_ = std::move(shard_of);
  serial_ = false;
  serial_sim_ = nullptr;
}

void FluidEngine::ensure_link_tables() {
  const uint32_t n = sims_.at(0)->num_total_links();
  if (n == num_links_) return;
  num_links_ = n;
  link_owner_.assign(n, 0);
  link_rate_.assign(n, 0.0);
  wf_cap_.assign(n, 0.0);
  wf_nflows_.assign(n, 0);
  wf_count_.assign(n, 0);
  wf_offset_.assign(n, 0);
  wf_epoch_.assign(n, 0);
  link_touched_.assign(n, 0);
  touched_.clear();
  touched_.reserve(n);
  loaded_links_.clear();
  loaded_links_.reserve(n);
  wf_heap_.reserve(2 * n);
  if (shard_of_) {
    Simulator& s0 = *sims_[0];
    const topology::Topology& topo = s0.topo();
    for (topology::LinkId l = 0; l < topo.num_links(); ++l) {
      link_owner_[l] = shard_of_(topo.link(l).from);
    }
    // Host links live with the shard owning the attach switch (the only
    // shard whose replica ever transmits on them).
    for (HostId h = 0; h < s0.num_hosts(); ++h) {
      const uint32_t shard = shard_of_(s0.host_switch(h));
      link_owner_[s0.host_uplink_id(h)] = shard;
      link_owner_[s0.host_downlink_id(h)] = shard;
    }
  }
}

uint64_t FluidEngine::link_generation_sum() const {
  uint64_t sum = 0;
  for (const Simulator* sim : sims_) sum += sim->link_state_generation();
  return sum;
}

uint32_t FluidEngine::acquire_slot() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const uint32_t slot = static_cast<uint32_t>(f_id_.size());
  f_id_.push_back(0);
  f_src_.push_back(kInvalidHost);
  f_dst_.push_back(kInvalidHost);
  f_remaining_.push_back(0.0);
  f_rate_.push_back(0.0);
  f_start_.push_back(0.0);
  f_origin_.push_back(0.0);
  f_bytes_.push_back(0);
  f_latency_.push_back(0.0);
  f_path_len_.push_back(0);
  f_owner_.push_back(nullptr);
  path_arena_.resize(path_arena_.size() + config_.max_hops, topology::kInvalidLink);
  return slot;
}

void FluidEngine::release_slot(uint32_t slot) {
  f_owner_[slot] = nullptr;
  f_path_len_[slot] = 0;
  free_slots_.push_back(slot);
}

void FluidEngine::start_flow(TransportManager* owner, uint64_t flow_id, HostId src, HostId dst,
                             uint64_t bytes, Time start_time) {
  PendingStart p;
  p.start = start_time;
  p.flow_id = flow_id;
  p.src = src;
  p.dst = dst;
  p.bytes = bytes == 0 ? 1 : bytes;  // match TransportManager's 1-byte floor
  p.owner = owner;
  pending_.push_back(p);
  std::push_heap(pending_.begin(), pending_.end(), ByStart{});
  if (serial_) arm_serial_wake();
}

Time FluidEngine::next_wake() const {
  if (!active_.empty()) return last_settle_ + config_.quantum_s;
  if (!pending_.empty()) return std::max(pending_.front().start, last_settle_);
  return std::numeric_limits<double>::infinity();
}

void FluidEngine::advance_to(Time t) {
  ensure_link_tables();
  ++stats_.ticks;
  bool dirty = false;
  settle(t, dirty);
  admit_starts(t, dirty);
  const uint64_t gen = link_generation_sum();
  if (gen != last_link_generation_) {
    last_link_generation_ = gen;
    rewalk_all(t);
    dirty = true;
  } else {
    // Stalled flows (no usable route when admitted, or black-holed after a
    // failure) retry their walk every quantum until the control plane has
    // repaired a path for them.
    for (const uint32_t slot : active_) {
      if (f_path_len_[slot] != 0) continue;
      if (walk_route(slot, t)) dirty = true;
    }
  }
  if (dirty) {
    recompute_rates(t);
    push_link_loads();
  }
  last_settle_ = t;
  if (serial_) arm_serial_wake();
}

void FluidEngine::settle(Time now, bool& dirty) {
  fin_order_.clear();
  size_t w = 0;
  for (size_t r = 0; r < active_.size(); ++r) {
    const uint32_t slot = active_[r];
    const double rate = f_rate_[slot];
    if (rate > 0.0) {
      const double fin = f_origin_[slot] + f_remaining_[slot] / rate;
      if (fin <= now) {
        fin_order_.emplace_back(fin + f_latency_[slot], slot);
        dirty = true;
        continue;  // stable compaction: drop from active_, keep order
      }
      f_remaining_[slot] -= rate * (now - f_origin_[slot]);
    }
    f_origin_[slot] = now;
    active_[w++] = slot;
  }
  active_.resize(w);
  if (fin_order_.empty()) return;
  std::sort(fin_order_.begin(), fin_order_.end(),
            [this](const std::pair<double, uint32_t>& a, const std::pair<double, uint32_t>& b) {
              if (a.first != b.first) return a.first < b.first;
              return f_id_[a.second] < f_id_[b.second];
            });
  for (const auto& [end, slot] : fin_order_) {
    ++stats_.flows_completed;
    FlowRecord rec;
    rec.flow_id = f_id_[slot];
    rec.src = f_src_[slot];
    rec.dst = f_dst_[slot];
    rec.bytes = f_bytes_[slot];
    rec.start = f_start_[slot];
    rec.end = end;
    rec.completed = true;
    completion_digest_ = fnv1a_u64(completion_digest_, rec.flow_id);
    completion_digest_ = fnv1a_u64(completion_digest_, double_bits(end));
    TransportManager* owner = f_owner_[slot];
    release_slot(slot);
    if (owner != nullptr) owner->on_fluid_complete(rec);
  }
}

void FluidEngine::admit_starts(Time now, bool& dirty) {
  while (!pending_.empty() && pending_.front().start <= now) {
    std::pop_heap(pending_.begin(), pending_.end(), ByStart{});
    const PendingStart p = pending_.back();
    pending_.pop_back();
    const uint32_t slot = acquire_slot();
    f_id_[slot] = p.flow_id;
    f_src_[slot] = p.src;
    f_dst_[slot] = p.dst;
    f_bytes_[slot] = p.bytes;
    f_remaining_[slot] = static_cast<double>(p.bytes) * 8.0;  // bits: rates are bps
    f_start_[slot] = p.start;
    // Transfer time is counted from the nominal start, not the admission
    // tick: at light load this makes analytic FCTs exact; under contention
    // it over-grants at most one quantum of rate (DESIGN.md §14).
    f_origin_[slot] = p.start;
    f_rate_[slot] = 0.0;
    f_owner_[slot] = p.owner;
    ++stats_.flows_started;
    if (!walk_route(slot, now)) ++stats_.stalls;
    active_.push_back(slot);
    if (active_.size() > stats_.peak_active) stats_.peak_active = active_.size();
    dirty = true;
  }
}

void FluidEngine::rewalk_all(Time now) {
  for (const uint32_t slot : active_) {
    const bool had_path = f_path_len_[slot] != 0;
    ++stats_.reroutes;
    if (!walk_route(slot, now) && had_path) ++stats_.stalls;
  }
}

bool FluidEngine::walk_route(uint32_t slot, Time now) {
  (void)now;
  f_path_len_[slot] = 0;
  Simulator& s0 = *sims_[0];
  const HostId src = f_src_[slot];
  const HostId dst = f_dst_[slot];
  const topology::NodeId dst_sw = s0.host_switch(dst);
  topology::NodeId cur = s0.host_switch(src);
  const uint32_t base = slot * config_.max_hops;
  uint32_t len = 0;
  path_arena_[base + len++] = s0.host_uplink_id(src);

  // The five-tuple the flow's packets would carry (see
  // TransportManager::make_packet / start_flow) — flowlet hashes and ECMP
  // picks must see exactly what packet mode would.
  util::FiveTuple tuple;
  tuple.src_ip = 0x0a000000u + src;
  tuple.dst_ip = 0x0a000000u + dst;
  tuple.src_port = static_cast<uint16_t>(1024 + f_id_[slot] % 50000);
  tuple.dst_port = static_cast<uint16_t>(5000 + f_id_[slot] % 1000);
  tuple.protocol = 6;
  RoutingState routing;

  const topology::Topology& topo = s0.topo();
  while (cur != dst_sw) {
    Simulator& owner = sim_for(cur);
    if (!owner.has_device(cur)) return false;
    const topology::LinkId next = owner.device_at(cur).fluid_next_hop(owner, dst_sw, tuple, routing);
    if (next == topology::kInvalidLink) return false;
    if (len + 2 > config_.max_hops) return false;  // routing-loop guard
    // The control plane may still point at a link that just died; packets
    // would be dropped there, so the fluid flow stalls and retries.
    if (link_ref(next).down()) return false;
    path_arena_[base + len++] = next;
    cur = topo.link(next).to;
  }
  path_arena_[base + len++] = s0.host_downlink_id(dst);
  f_path_len_[slot] = static_cast<uint16_t>(len);

  // FCT latency floor: forward propagation + one-MSS serialization per hop,
  // plus the bare return propagation for the final ACK.
  const double wire_bits = 8.0 * (config_.mss_bytes + config_.header_bytes);
  double fwd = 0.0;
  double ret = 0.0;
  for (uint32_t h = 0; h < len; ++h) {
    const Link& lk = link_ref(path_arena_[base + h]);
    fwd += lk.delay_s() + wire_bits / lk.capacity_bps();
    ret += lk.delay_s();
  }
  f_latency_[slot] = fwd + ret;
  return true;
}

void FluidEngine::recompute_rates(Time now) {
  (void)now;
  ++stats_.recomputes;
  // Reset the previous recompute's per-link scratch (touched list only —
  // never a full sweep over num_links_).
  for (const topology::LinkId l : touched_) {
    link_touched_[l] = 0;
    link_rate_[l] = 0.0;
    wf_nflows_[l] = 0;
    wf_count_[l] = 0;
  }
  touched_.clear();

  // Pass 1: per-link membership counts.
  for (const uint32_t slot : active_) {
    const uint16_t len = f_path_len_[slot];
    if (len == 0) {
      f_rate_[slot] = 0.0;
      continue;
    }
    const uint32_t base = slot * config_.max_hops;
    for (uint16_t h = 0; h < len; ++h) {
      const topology::LinkId l = path_arena_[base + h];
      if (link_touched_[l] == 0) {
        link_touched_[l] = 1;
        touched_.push_back(l);
      }
      ++wf_count_[l];
    }
  }

  // Capacities in goodput units and slice offsets (counting sort by link).
  const double goodput_share =
      static_cast<double>(config_.mss_bytes) / (config_.mss_bytes + config_.header_bytes);
  uint32_t total = 0;
  for (const topology::LinkId l : touched_) {
    wf_offset_[l] = total;
    total += wf_count_[l];
    wf_cap_[l] = link_ref(l).capacity_bps() * goodput_share;
  }
  if (wf_members_.size() < total) wf_members_.resize(total);

  // Pass 2: scatter members (wf_nflows_ doubles as the fill cursor, and ends
  // equal to wf_count_ — the unfrozen count the water-fill then drains).
  uint32_t unfrozen = 0;
  for (const uint32_t slot : active_) {
    const uint16_t len = f_path_len_[slot];
    if (len == 0) continue;
    f_rate_[slot] = -1.0;  // unfrozen marker
    ++unfrozen;
    const uint32_t base = slot * config_.max_hops;
    for (uint16_t h = 0; h < len; ++h) {
      const topology::LinkId l = path_arena_[base + h];
      wf_members_[wf_offset_[l] + wf_nflows_[l]++] = slot;
    }
  }

  // Progressive filling: repeatedly freeze every unfrozen flow crossing the
  // most-constrained link at its fair share. The heap is lazy-deleted via
  // per-link epochs; ties break on link id, so the fill order — and the
  // floating-point subtraction order — is deterministic.
  wf_heap_.clear();
  for (const topology::LinkId l : touched_) {
    ++wf_epoch_[l];
    wf_heap_.push_back(WfEntry{wf_cap_[l] / wf_nflows_[l], l, wf_epoch_[l]});
  }
  std::make_heap(wf_heap_.begin(), wf_heap_.end(), WfCmp{});
  while (unfrozen > 0 && !wf_heap_.empty()) {
    std::pop_heap(wf_heap_.begin(), wf_heap_.end(), WfCmp{});
    const WfEntry e = wf_heap_.back();
    wf_heap_.pop_back();
    if (e.epoch != wf_epoch_[e.link] || wf_nflows_[e.link] == 0) continue;
    const double fair = std::max(0.0, wf_cap_[e.link]) / wf_nflows_[e.link];
    const uint32_t off = wf_offset_[e.link];
    const uint32_t cnt = wf_count_[e.link];
    for (uint32_t i = 0; i < cnt; ++i) {
      const uint32_t slot = wf_members_[off + i];
      if (f_rate_[slot] >= 0.0) continue;  // frozen by an earlier bottleneck
      f_rate_[slot] = fair;
      --unfrozen;
      const uint32_t base = slot * config_.max_hops;
      for (uint16_t h = 0; h < f_path_len_[slot]; ++h) {
        const topology::LinkId l2 = path_arena_[base + h];
        wf_cap_[l2] -= fair;
        --wf_nflows_[l2];
        if (l2 != e.link && wf_nflows_[l2] > 0) {
          ++wf_epoch_[l2];
          wf_heap_.push_back(
              WfEntry{std::max(0.0, wf_cap_[l2]) / wf_nflows_[l2], l2, wf_epoch_[l2]});
          std::push_heap(wf_heap_.begin(), wf_heap_.end(), WfCmp{});
        }
      }
    }
  }

  // Commit per-link fluid goodput.
  for (const uint32_t slot : active_) {
    const uint16_t len = f_path_len_[slot];
    if (len == 0) continue;
    if (f_rate_[slot] < 0.0) f_rate_[slot] = 0.0;  // defensive: heap exhausted
    const uint32_t base = slot * config_.max_hops;
    for (uint16_t h = 0; h < len; ++h) link_rate_[path_arena_[base + h]] += f_rate_[slot];
  }
}

void FluidEngine::push_link_loads() {
  for (const topology::LinkId l : loaded_links_) link_ref(l).set_fluid_load_bps(0.0);
  loaded_links_.clear();
  const double wire_factor =
      static_cast<double>(config_.mss_bytes + config_.header_bytes) / config_.mss_bytes;
  for (const topology::LinkId l : touched_) {
    if (link_rate_[l] <= 0.0) continue;
    link_ref(l).set_fluid_load_bps(link_rate_[l] * wire_factor);
    loaded_links_.push_back(l);
  }
}

void FluidEngine::arm_serial_wake() {
  const Time want = next_wake();
  if (!(want < armed_wake_)) return;  // an early-enough wake is already armed
  armed_wake_ = want;
  const uint64_t gen = ++wake_generation_;
  serial_sim_->events().schedule_at(want, [this, gen] {
    if (gen != wake_generation_) return;  // superseded by an earlier wake
    armed_wake_ = std::numeric_limits<double>::infinity();
    advance_to(serial_sim_->now());
  });
}

}  // namespace contra::sim
