// Discrete-event core: a time-ordered queue of handlers.
//
// Ties break by insertion order, which (with seeded RNGs everywhere) makes
// every simulation bit-reproducible.
//
// Performance contract (see DESIGN.md, "Simulator performance architecture"):
// the steady-state per-packet-hop path allocates nothing. Two mechanisms
// deliver that:
//   * EventHandler — a small-buffer-optimized callable with 48 bytes of
//     inline capture storage, enough for every lambda the simulator, the
//     transport, and the probe timers schedule; larger captures still work
//     but fall back to the heap.
//   * typed events — the two per-hop events (transmit-done, propagation
//     delivery) bypass closures entirely: the event stores a Link* (and for
//     deliveries a Packet* parked in the queue's freelist pool), so the hot
//     loop in Link never materializes a callable at all.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <limits>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/packet.h"

namespace contra::sim {

class Link;

using Time = double;  ///< seconds

/// Move-only callable with inline storage for small captures. Drop-in for
/// the std::function<void()> the event queue used to hold, minus the heap
/// allocation for captures up to kInlineCapacity bytes.
class EventHandler {
 public:
  static constexpr size_t kInlineCapacity = 48;

  EventHandler() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventHandler> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventHandler(F&& f) {  // NOLINT(google-explicit-constructor) — matches std::function
    emplace(std::forward<F>(f));
  }

  EventHandler(EventHandler&& other) noexcept { move_from(other); }
  EventHandler& operator=(EventHandler&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventHandler(const EventHandler&) = delete;
  EventHandler& operator=(const EventHandler&) = delete;
  ~EventHandler() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }
  void operator()() { invoke_(storage()); }

  /// Whether the capture lives in the inline buffer (test introspection).
  bool is_inline() const { return invoke_ != nullptr && !on_heap_; }

 private:
  enum class Op : uint8_t { kDestroy, kRelocate };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void* self, void* destination);

  void* storage() { return on_heap_ ? heap_ : static_cast<void*>(inline_); }

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(inline_)) Fn(std::forward<F>(f));
      on_heap_ = false;
      // Heap sifts relocate pending events constantly; a trivially copyable
      // capture (the overwhelmingly common case: a few pointers/scalars)
      // moves as a fixed-size memcpy with no indirect manage_ call.
      trivial_ = std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      manage_ = [](Op op, void* self, void* destination) {
        Fn* fn = static_cast<Fn*>(self);
        if (op == Op::kRelocate) ::new (destination) Fn(std::move(*fn));
        fn->~Fn();
      };
    } else {
      heap_ = new Fn(std::forward<F>(f));
      on_heap_ = true;
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      manage_ = [](Op op, void* self, void*) {
        if (op == Op::kDestroy) delete static_cast<Fn*>(self);
        // kRelocate for heap callables is a pointer steal, handled by the
        // owner; nothing to do here.
      };
    }
  }

  void move_from(EventHandler& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    on_heap_ = other.on_heap_;
    trivial_ = other.trivial_;
    if (invoke_ != nullptr) {
      if (on_heap_) {
        heap_ = other.heap_;
      } else if (trivial_) {
        std::memcpy(inline_, other.inline_, kInlineCapacity);
      } else {
        other.manage_(Op::kRelocate, other.inline_, inline_);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() {
    if (invoke_ != nullptr && !trivial_) manage_(Op::kDestroy, storage(), nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  union {
    alignas(std::max_align_t) unsigned char inline_[kInlineCapacity];
    void* heap_;
  };
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
  bool on_heap_ = false;
  bool trivial_ = false;  ///< inline capture relocates/destroys as raw bytes
};

class EventQueue {
 public:
  using Handler = EventHandler;

  Time now() const { return now_; }

  /// Schedules at an absolute time. Times before now() are clamped to now()
  /// — the event still runs, immediately and in insertion order. Scheduling
  /// into the past is legal on purpose (a zero-delay retransmission computed
  /// from a stale RTT estimate must not abort the run), but every clamp is
  /// counted so silent time warps stay observable: a simulation that clamps
  /// unexpectedly has a bug upstream of the queue.
  void schedule_at(Time time, Handler handler);
  /// Schedules `delay` seconds from now.
  void schedule_in(Time delay, Handler handler) { schedule_at(now_ + delay, std::move(handler)); }

  // ----- typed per-hop fast path -------------------------------------------
  // The two events every packet hop needs. No callable is created: the event
  // records the Link (and the in-flight Packet, parked in the pool) and the
  // dispatch loop calls straight into Link.

  /// At `time`, run the link's transmit-done step.
  void schedule_link_tx(Time time, Link* link);
  /// At `time`, deliver `packet` out of `link` (propagation completes).
  void schedule_deliver(Time time, Link* link, Packet&& packet);

  /// Freelist for packets parked in deliver events; shared with tests.
  PacketPool& packet_pool() { return pool_; }

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

  /// Time of the earliest pending event, +infinity when empty. The parallel
  /// engine's epoch scheduler reads this at barriers to compute per-shard
  /// safe horizons (next-event lookahead: a quiescent shard promises it
  /// cannot transmit anything before its next event fires).
  Time next_time() const {
    return heap_.empty() ? std::numeric_limits<Time>::infinity() : heap_.front().time;
  }

  /// Pre-grows heap and slot storage for `n` more events — the batched
  /// mailbox drain reserves once per batch so the per-hop push never
  /// reallocates mid-drain.
  void reserve_extra(size_t n) {
    heap_.reserve(heap_.size() + n);
    slots_.reserve(slots_.size() + n);
  }

  /// Runs one event; returns false when the queue is empty.
  bool step();

  /// Runs events until the queue empties or the next event is after `end`;
  /// advances now() to `end` at most.
  void run_until(Time end);

  /// Like run_until, but strictly: events at exactly `end` stay pending.
  /// This is the per-epoch step of the sharded parallel engine — an epoch
  /// [T, T+delta) owns events in the half-open interval, and cross-shard
  /// deliveries scheduled *at* the boundary belong to the next epoch.
  void run_before(Time end);

  uint64_t events_processed() const { return processed_; }
  /// Events whose requested time was in the past and got clamped to now().
  uint64_t events_clamped() const { return clamped_; }

 private:
  enum class Kind : uint8_t { kClosure, kLinkTx, kDeliver };

  // The heap holds only the ordering key plus a slot index; the bulky
  // payload (a 72-byte handler, or the typed Link*/Packet* pair) lives in a
  // recycled side table. Heap sifts move ~2·log2(n) elements per pop, so
  // keeping the sifted element a 24-byte POD — instead of the full event —
  // is worth ~40% of event throughput.
  struct HeapEntry {
    Time time;
    uint64_t seq;
    uint32_t slot;
  };
  static_assert(sizeof(HeapEntry) == 24);
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    Kind kind = Kind::kClosure;
    Link* link = nullptr;     ///< kLinkTx / kDeliver
    Packet* packet = nullptr; ///< kDeliver: storage owned by pool_
    Handler handler;          ///< kClosure
  };

  Time clamp(Time time) {
    if (time < now_) {
      ++clamped_;
      return now_;
    }
    return time;
  }
  uint32_t acquire_slot();
  void push(Time time, uint32_t slot);

  std::vector<HeapEntry> heap_;  ///< binary heap via std::push_heap/pop_heap
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  PacketPool pool_;
  Time now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  uint64_t clamped_ = 0;
};

}  // namespace contra::sim
