// Discrete-event core: a time-ordered queue of closures.
//
// Ties break by insertion order, which (with seeded RNGs everywhere) makes
// every simulation bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace contra::sim {

using Time = double;  ///< seconds

class EventQueue {
 public:
  using Handler = std::function<void()>;

  Time now() const { return now_; }

  /// Schedules at an absolute time (>= now, clamped).
  void schedule_at(Time time, Handler handler);
  /// Schedules `delay` seconds from now.
  void schedule_in(Time delay, Handler handler) { schedule_at(now_ + delay, std::move(handler)); }

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

  /// Runs one event; returns false when the queue is empty.
  bool step();

  /// Runs events until the queue empties or the next event is after `end`;
  /// advances now() to `end` at most.
  void run_until(Time end);

  uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    Time time;
    uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  Time now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
};

}  // namespace contra::sim
