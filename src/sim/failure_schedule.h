// Scripted failure injection: declare a timeline of cable failures and
// recoveries up front, then arm it against a simulator. Used by the
// failure-recovery experiments and the churn property tests.
#pragma once

#include <vector>

#include "sim/simulator.h"

namespace contra::sim {

class FailureSchedule {
 public:
  /// Cable containing `link` goes down at `at`.
  FailureSchedule& fail_at(Time at, topology::LinkId link);
  /// Cable comes back at `at`.
  FailureSchedule& restore_at(Time at, topology::LinkId link);
  /// Flap: alternate fail/restore every `half_period` starting at `start`,
  /// `cycles` times (ends restored).
  FailureSchedule& flap(topology::LinkId link, Time start, Time half_period, int cycles);

  size_t size() const { return events_.size(); }

  /// Registers every event with the simulator's event queue.
  void arm(Simulator& sim) const;

 private:
  struct Event {
    Time at;
    topology::LinkId link;
    bool fail;
  };
  std::vector<Event> events_;
};

}  // namespace contra::sim
