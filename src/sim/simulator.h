// The network simulator: topology links + host links, installed switch
// devices, hosts, and failure injection. This is the substrate the paper ran
// on ns-3; behaviourally it models the same quantities the evaluation
// depends on — queueing, loss, utilization, propagation, RTT.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "obs/telemetry.h"
#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/node.h"
#include "sim/packet.h"
#include "topology/topology.h"

namespace contra::sim {

struct SimConfig {
  double host_link_bps = 10e9;
  double host_link_delay_s = 0.5e-6;
  /// Drop-tail capacity per link queue; the paper uses 1000 MSS.
  uint64_t queue_capacity_bytes = 1000ull * 1500;
  /// Utilization EWMA window; commonly a couple of probe periods.
  double util_tau_s = 512e-6;
  /// Record the switch-level path each packet takes in Packet::trace.
  /// Compliance checks need it; everything else runs faster without the
  /// per-hop vector growth, so it is opt-in.
  bool capture_traces = false;
  /// Parallel engine (see ParallelSimulator / DESIGN.md §8). 0 = serial
  /// engine, the default; the serial Simulator itself ignores both fields.
  /// `workers` is the thread count; `shards` the topology partition count
  /// (0 = auto from the topology). The execution schedule depends only on
  /// the shard count, never on `workers`.
  uint32_t workers = 0;
  uint32_t shards = 0;
  /// Parallel engine A/B knob: schedule epochs on the legacy global grid
  /// (width = min cut-link delay everywhere) instead of the per-channel
  /// lookahead scheduler. Strictly slower — kept for the epoch-width
  /// regression tests and the bench's barrier-count comparison.
  bool global_min_epochs = false;
};

class Simulator {
 public:
  Simulator(const topology::Topology& topo, SimConfig config);

  const topology::Topology& topo() const { return *topo_; }
  const SimConfig& config() const { return config_; }
  EventQueue& events() { return events_; }
  Time now() const { return events_.now(); }
  /// Whether dataplanes should append to Packet::trace (see
  /// SimConfig::capture_traces).
  bool trace_enabled() const { return config_.capture_traces; }

  /// Telemetry hub for this simulation: always-on fixed-slot metrics plus
  /// the optional control-plane trace sink (attach one with
  /// telemetry().set_sink()). Links and installed dataplanes all report
  /// through it.
  obs::Telemetry& telemetry() { return telemetry_; }
  const obs::Telemetry& telemetry() const { return telemetry_; }

  // ----- setup ------------------------------------------------------------

  /// Attaches a host to a switch; returns its id.
  HostId add_host(topology::NodeId attach);
  uint32_t num_hosts() const { return static_cast<uint32_t>(host_attach_.size()); }
  topology::NodeId host_switch(HostId host) const { return host_attach_.at(host); }

  /// Restricts install_switch to nodes this simulator owns (parallel engine:
  /// each shard instantiates only its own switches). Unset = accept all.
  void set_install_filter(std::function<bool(topology::NodeId)> filter) {
    install_filter_ = std::move(filter);
  }

  /// Installs the device, unless an install filter rejects the node — then
  /// the device is discarded and false is returned. Installers must not hand
  /// out pointers to devices they installed without checking this.
  bool install_switch(topology::NodeId node, std::unique_ptr<Device> device);
  Device& device_at(topology::NodeId node) { return *devices_.at(node); }
  bool has_device(topology::NodeId node) const { return devices_.at(node) != nullptr; }

  /// Delivery of packets that reached their destination host.
  void set_host_receiver(std::function<void(HostId, Packet&&)> receiver) {
    host_receiver_ = std::move(receiver);
  }

  /// Calls Device::start on every switch (arm probe timers etc.).
  void start();

  // ----- dataplane services -----------------------------------------------

  /// Enables flow telemetry: data packets accumulate a path signature / hop
  /// count on every fabric hop, and packets flagged `int_sampled` record
  /// per-hop INT state (DESIGN.md §11). Off by default — the hot path then
  /// pays exactly one predictable branch per hop (bench-gated by
  /// `probe_flood_flowtrack_off`).
  void set_flow_telemetry(bool enabled) { flow_telemetry_ = enabled; }
  bool flow_telemetry() const { return flow_telemetry_; }

  /// Switch egress on a topology link. Returns false when dropped.
  bool send_on_link(topology::LinkId link, Packet&& packet);
  /// Edge switch -> attached host.
  bool send_to_host(HostId host, Packet&& packet);
  /// Host NIC -> its switch.
  bool host_send(HostId host, Packet&& packet);

  /// Link state and metrics, as read by switch dataplanes.
  Link& link(topology::LinkId id) { return *links_.at(id); }
  const Link& link(topology::LinkId id) const { return *links_.at(id); }
  Link& host_uplink(HostId host) { return *links_.at(host_uplink_.at(host)); }
  Link& host_downlink(HostId host) { return *links_.at(host_downlink_.at(host)); }

  /// Dense link-id views for the hybrid engine: topology link ids are
  /// [0, topo.num_links()); host up/downlinks follow in add_host order.
  uint32_t num_total_links() const { return static_cast<uint32_t>(links_.size()); }
  topology::LinkId host_uplink_id(HostId host) const {
    return static_cast<topology::LinkId>(host_uplink_.at(host));
  }
  topology::LinkId host_downlink_id(HostId host) const {
    return static_cast<topology::LinkId>(host_downlink_.at(host));
  }

  /// Bumped on every cable state transition (fail/restore/quiet replicas and
  /// gray degradations). The hybrid engine polls it each quantum and re-walks
  /// fluid flow paths when it moved — no cross-thread callbacks needed.
  uint64_t link_state_generation() const { return link_state_generation_; }

  // ----- failure injection --------------------------------------------------

  /// Fails/restores both directions of the cable containing `link`.
  void fail_cable(topology::LinkId link);
  void restore_cable(topology::LinkId link);

  /// Same state change without telemetry/logging. The parallel engine keeps a
  /// replica of every Link in every shard and applies failures to all of
  /// them; only the owning shard reports the event (once), via fail_cable.
  void set_cable_state_quiet(topology::LinkId link, bool down);

  /// Gray failure (DESIGN.md §13): degrades both directions of the cable
  /// containing `link` — loss probability, added latency, capacity derate.
  /// All-defaults GrayParams heals the cable. The quiet variant mirrors
  /// set_cable_state_quiet for non-owning parallel shards.
  void set_cable_gray(topology::LinkId link, const GrayParams& gray);
  void set_cable_gray_quiet(topology::LinkId link, const GrayParams& gray);

  /// Control-plane restart of the device at `node` (no-op when this
  /// simulator owns no device there — parallel shards call it blindly).
  void restart_switch(topology::NodeId node);

  /// Churn-engine wave marker: one churn_wave trace record + counter. The
  /// engine calls it at each wave's start, before injecting the wave's
  /// events, so the ConvergenceTracker can anchor reconvergence windows.
  void note_churn_wave(obs::FaultClass cls, uint32_t wave_index);

  // ----- run / stats ---------------------------------------------------------

  void run_until(Time end) { events_.run_until(end); }

  /// Aggregate traffic transmitted on switch-switch links (Fig. 16).
  LinkStats aggregate_fabric_stats() const;

  uint64_t next_packet_id() { return next_packet_id_++; }
  /// Packet-id namespace base (parallel engine: shard s starts at
  /// (s << 48) + 1 so ids never collide across shards; shard 0 matches the
  /// serial sequence exactly).
  void set_next_packet_id(uint64_t id) { next_packet_id_ = id; }

 private:
  void wire_topology_links();
  /// Port signal to both cable endpoints (devices installed here only — under
  /// the parallel engine each shard notifies the switches it owns, so every
  /// device hears each cable event exactly once).
  void notify_link_state(topology::LinkId link, bool up);

  const topology::Topology* topo_;
  SimConfig config_;
  obs::Telemetry telemetry_;  ///< before links_: links hold a pointer into it
  EventQueue events_;

  /// [0, topo.num_links()) are topology links; host links follow.
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Device>> devices_;

  std::vector<topology::NodeId> host_attach_;
  std::vector<size_t> host_uplink_;    ///< host -> switch link index
  std::vector<size_t> host_downlink_;  ///< switch -> host link index

  std::function<void(HostId, Packet&&)> host_receiver_;
  std::function<bool(topology::NodeId)> install_filter_;
  uint64_t next_packet_id_ = 1;
  uint64_t link_state_generation_ = 0;
  bool flow_telemetry_ = false;
};

}  // namespace contra::sim
