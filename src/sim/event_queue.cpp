#include "sim/event_queue.h"

#include <algorithm>

namespace contra::sim {

void EventQueue::schedule_at(Time time, Handler handler) {
  heap_.push(Event{std::max(time, now_), next_seq_++, std::move(handler)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // Moving out of a priority_queue top requires a const_cast; the element is
  // popped immediately after, so the heap invariant is never observed broken.
  Event event = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = event.time;
  ++processed_;
  event.handler();
  return true;
}

void EventQueue::run_until(Time end) {
  while (!heap_.empty() && heap_.top().time <= end) step();
  now_ = std::max(now_, end);
}

}  // namespace contra::sim
