#include "sim/event_queue.h"

#include <algorithm>

#include "sim/link.h"

namespace contra::sim {

uint32_t EventQueue::acquire_slot() {
  if (free_slots_.empty()) {
    slots_.emplace_back();
    return static_cast<uint32_t>(slots_.size() - 1);
  }
  const uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

void EventQueue::push(Time time, uint32_t slot) {
  heap_.push_back(HeapEntry{clamp(time), next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::schedule_at(Time time, Handler handler) {
  const uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.kind = Kind::kClosure;
  s.handler = std::move(handler);
  push(time, slot);
}

void EventQueue::schedule_link_tx(Time time, Link* link) {
  const uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.kind = Kind::kLinkTx;
  s.link = link;
  push(time, slot);
}

void EventQueue::schedule_deliver(Time time, Link* link, Packet&& packet) {
  Packet* parked = pool_.acquire();
  *parked = std::move(packet);
  const uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.kind = Kind::kDeliver;
  s.link = link;
  s.packet = parked;
  push(time, slot);
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const HeapEntry entry = heap_.back();
  heap_.pop_back();
  now_ = entry.time;
  ++processed_;
  // Take what the dispatch needs out of the slot and recycle it before
  // invoking: the handler may schedule (growing slots_ would invalidate a
  // held reference) and may legitimately reuse this very slot.
  Slot& slot = slots_[entry.slot];
  switch (slot.kind) {
    case Kind::kClosure: {
      Handler handler = std::move(slot.handler);
      free_slots_.push_back(entry.slot);
      handler();
      break;
    }
    case Kind::kLinkTx: {
      Link* link = slot.link;
      free_slots_.push_back(entry.slot);
      link->on_transmit_done();
      break;
    }
    case Kind::kDeliver: {
      Link* link = slot.link;
      Packet* packet = slot.packet;
      free_slots_.push_back(entry.slot);
      link->complete_delivery(packet);
      break;
    }
  }
  return true;
}

void EventQueue::run_until(Time end) {
  while (!heap_.empty() && heap_.front().time <= end) step();
  now_ = std::max(now_, end);
}

void EventQueue::run_before(Time end) {
  while (!heap_.empty() && heap_.front().time < end) step();
  now_ = std::max(now_, end);
}

}  // namespace contra::sim
