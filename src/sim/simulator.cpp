#include "sim/simulator.h"

#include <stdexcept>

#include "util/hash.h"
#include "util/logging.h"

namespace contra::sim {

Simulator::Simulator(const topology::Topology& topo, SimConfig config)
    : topo_(&topo), config_(config) {
  devices_.resize(topo.num_nodes());
  wire_topology_links();
}

void Simulator::wire_topology_links() {
  links_.reserve(topo_->num_links());
  for (topology::LinkId id = 0; id < topo_->num_links(); ++id) {
    const topology::DirectedLink& l = topo_->link(id);
    auto link = std::make_unique<Link>(events_, l.capacity_bps, l.delay_s,
                                       config_.queue_capacity_bytes, config_.util_tau_s);
    link->set_telemetry(&telemetry_, id);
    const topology::NodeId to = l.to;
    link->set_deliver([this, to, id](Packet&& packet) {
      if (devices_[to]) devices_[to]->handle_packet(*this, std::move(packet), id);
    });
    links_.push_back(std::move(link));
  }
}

HostId Simulator::add_host(topology::NodeId attach) {
  if (attach >= topo_->num_nodes()) throw std::out_of_range("add_host: bad switch id");
  const HostId host = static_cast<HostId>(host_attach_.size());
  host_attach_.push_back(attach);

  // Host -> switch (uplink).
  auto up = std::make_unique<Link>(events_, config_.host_link_bps, config_.host_link_delay_s,
                                   config_.queue_capacity_bytes, config_.util_tau_s);
  up->set_telemetry(&telemetry_, static_cast<uint32_t>(links_.size()));
  up->set_deliver([this, attach](Packet&& packet) {
    if (devices_[attach]) devices_[attach]->handle_packet(*this, std::move(packet), kFromHost);
  });
  host_uplink_.push_back(links_.size());
  links_.push_back(std::move(up));

  // Switch -> host (downlink).
  auto down = std::make_unique<Link>(events_, config_.host_link_bps, config_.host_link_delay_s,
                                     config_.queue_capacity_bytes, config_.util_tau_s);
  down->set_telemetry(&telemetry_, static_cast<uint32_t>(links_.size()));
  down->set_deliver([this, host](Packet&& packet) {
    if (host_receiver_) host_receiver_(host, std::move(packet));
  });
  host_downlink_.push_back(links_.size());
  links_.push_back(std::move(down));
  return host;
}

bool Simulator::install_switch(topology::NodeId node, std::unique_ptr<Device> device) {
  if (node >= devices_.size()) throw std::out_of_range("install_switch: bad node id");
  if (install_filter_ && !install_filter_(node)) return false;
  devices_[node] = std::move(device);
  return true;
}

void Simulator::start() {
  for (auto& device : devices_) {
    if (device) device->start(*this);
  }
}

bool Simulator::send_on_link(topology::LinkId link, Packet&& packet) {
  if (flow_telemetry_ && packet.kind == PacketKind::kData) {
    // Order-sensitive path signature over fabric links: link+1 so link 0
    // contributes. Host links never pass through here, so the signature
    // identifies the fabric path alone.
    packet.path_sig = util::hash_combine(packet.path_sig, link + 1);
    if (packet.hops < UINT8_MAX) ++packet.hops;
    if (packet.int_sampled && packet.int_hops.size() < kIntHopCap) {
      Link& l = *links_[link];
      packet.int_hops.push_back(IntHop{link, static_cast<uint32_t>(l.queue_bytes()), now()});
    }
  }
  return links_.at(link)->enqueue(std::move(packet));
}

bool Simulator::send_to_host(HostId host, Packet&& packet) {
  return links_.at(host_downlink_.at(host))->enqueue(std::move(packet));
}

bool Simulator::host_send(HostId host, Packet&& packet) {
  return links_.at(host_uplink_.at(host))->enqueue(std::move(packet));
}

void Simulator::fail_cable(topology::LinkId link) {
  // Duplicate / overlapping schedule events are idempotent: a cable that is
  // already down emits no second transition (no telemetry, no port signal),
  // so a schedule with redundant events is byte-identical to the clean one.
  if (links_.at(link)->down()) return;
  links_.at(link)->set_down(true);
  links_.at(topo_->link(link).reverse)->set_down(true);
  ++link_state_generation_;
  telemetry_.metrics().add(telemetry_.core().link_down_events);
  if (telemetry_.tracing()) {
    obs::TraceRecord r;
    r.t = now();
    r.ev = obs::Ev::kLinkDown;
    r.link = link;
    r.aux = topo_->link(link).reverse;
    telemetry_.emit(r);
  }
  LOG_INFO("sim") << "cable " << topo_->name(topo_->link(link).from) << "-"
                  << topo_->name(topo_->link(link).to) << " failed at t=" << now();
  notify_link_state(link, /*up=*/false);
}

void Simulator::restore_cable(topology::LinkId link) {
  if (!links_.at(link)->down()) return;  // idempotent (see fail_cable)
  links_.at(link)->set_down(false);
  links_.at(topo_->link(link).reverse)->set_down(false);
  ++link_state_generation_;
  telemetry_.metrics().add(telemetry_.core().link_up_events);
  if (telemetry_.tracing()) {
    obs::TraceRecord r;
    r.t = now();
    r.ev = obs::Ev::kLinkUp;
    r.link = link;
    r.aux = topo_->link(link).reverse;
    telemetry_.emit(r);
  }
  notify_link_state(link, /*up=*/true);
}

void Simulator::set_cable_state_quiet(topology::LinkId link, bool down) {
  // Mirror fail_cable/restore_cable's duplicate guard: replica shards must
  // suppress the port signal on exactly the same events the owner does.
  if (links_.at(link)->down() == down) return;
  links_.at(link)->set_down(down);
  links_.at(topo_->link(link).reverse)->set_down(down);
  ++link_state_generation_;
  notify_link_state(link, !down);
}

void Simulator::set_cable_gray(topology::LinkId link, const GrayParams& gray) {
  set_cable_gray_quiet(link, gray);
  if (telemetry_.tracing()) {
    obs::TraceRecord r;
    r.t = now();
    r.ev = obs::Ev::kGrayDegrade;
    r.link = link;
    r.aux = topo_->link(link).reverse;
    r.value = gray.loss_prob;
    telemetry_.emit(r);
  }
  LOG_INFO("sim") << "cable " << topo_->name(topo_->link(link).from) << "-"
                  << topo_->name(topo_->link(link).to) << " gray(loss=" << gray.loss_prob
                  << ", +delay=" << gray.extra_delay_s << "s, cap×" << gray.capacity_factor
                  << ") at t=" << now();
}

void Simulator::set_cable_gray_quiet(topology::LinkId link, const GrayParams& gray) {
  // Both directions share the degradation but draw independent loss
  // sequences (the reverse direction salts differently), like a sick optic
  // hurting both lanes.
  GrayParams reverse = gray;
  reverse.salt = util::mix64(gray.salt + 1);
  links_.at(link)->set_gray(gray);
  links_.at(topo_->link(link).reverse)->set_gray(reverse);
  ++link_state_generation_;  // capacity/latency changed: fluid flows re-walk
}

void Simulator::restart_switch(topology::NodeId node) {
  if (node >= devices_.size() || devices_[node] == nullptr) return;
  devices_[node]->restart_control_plane();
  telemetry_.metrics().add(telemetry_.core().switch_restarts);
  if (telemetry_.tracing()) {
    obs::TraceRecord r;
    r.t = now();
    r.ev = obs::Ev::kSwitchRestart;
    r.sw = node;
    telemetry_.emit(r);
  }
  LOG_INFO("sim") << "switch " << topo_->name(node) << " control plane restarted at t=" << now();
}

void Simulator::note_churn_wave(obs::FaultClass cls, uint32_t wave_index) {
  telemetry_.metrics().add(telemetry_.core().churn_waves);
  if (telemetry_.tracing()) {
    obs::TraceRecord r;
    r.t = now();
    r.ev = obs::Ev::kChurnWave;
    r.aux = static_cast<uint32_t>(cls);
    r.value = wave_index;
    telemetry_.emit(r);
  }
}

void Simulator::notify_link_state(topology::LinkId link, bool up) {
  // Each endpoint is handed the directed link *leaving* it, in (from, to)
  // order — deterministic, and the order is shard-invariant because a device
  // lives in exactly one shard.
  const topology::LinkId reverse = topo_->link(link).reverse;
  const topology::NodeId from = topo_->link(link).from;
  const topology::NodeId to = topo_->link(link).to;
  if (from < devices_.size() && devices_[from] != nullptr) {
    devices_[from]->handle_link_state(*this, link, up);
  }
  if (to < devices_.size() && devices_[to] != nullptr) {
    devices_[to]->handle_link_state(*this, reverse, up);
  }
}

LinkStats Simulator::aggregate_fabric_stats() const {
  LinkStats total;
  for (topology::LinkId id = 0; id < topo_->num_links(); ++id) {
    const LinkStats& s = links_[id]->stats();
    total.tx_packets += s.tx_packets;
    total.tx_bytes += s.tx_bytes;
    total.tx_data_bytes += s.tx_data_bytes;
    total.tx_ack_bytes += s.tx_ack_bytes;
    total.tx_probe_bytes += s.tx_probe_bytes;
    total.tx_data_packets += s.tx_data_packets;
    total.tx_ack_packets += s.tx_ack_packets;
    total.tx_probe_packets += s.tx_probe_packets;
    total.drops += s.drops;
    total.drop_bytes += s.drop_bytes;
    total.data_drops += s.data_drops;
  }
  return total;
}

}  // namespace contra::sim
