// End-host transport: a TCP-like reliable byte stream (slow start, AIMD,
// fast retransmit, RTO with Jacobson/Karels estimation) and a constant-rate
// UDP sender. This is deliberately a compact congestion-controlled transport
// — enough fidelity for flow completion times to respond to queueing and
// loss the way the paper's ns-3 TCP does.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"

namespace contra::obs {
class FlowTracker;
}

namespace contra::sim {

class FluidEngine;

struct TransportConfig {
  uint32_t mss_bytes = 1460;       ///< payload per data packet
  uint32_t header_bytes = 40;      ///< TCP/IP header overhead
  uint32_t ack_bytes = 64;         ///< ACK wire size
  uint32_t init_cwnd_pkts = 10;
  double init_rto_s = 2e-3;
  double min_rto_s = 200e-6;
  double max_rto_s = 100e-3;
  /// DCTCP mode: react proportionally to the fraction of ECN-marked ACKs
  /// (requires links with an ECN threshold; see Link::set_ecn_threshold_bytes).
  bool dctcp = false;
  double dctcp_gain = 1.0 / 16;    ///< the DCTCP g parameter

  /// Hybrid flow-level engine (DESIGN.md §14): bulk TCP flows advance as
  /// fluid rates in a FluidEngine the manager creates and binds; probes,
  /// flowlets, and a sampled flow subset stay packet-level. Serial engine
  /// only — ParallelTransport builds one shared engine itself.
  bool hybrid = false;
  /// 1-in-n flow sampling: every n-th submitted TCP flow runs at packet
  /// level anyway (keeps flowlet/queue/transport paths exercised and gives
  /// parity tests a live reference). 0 = every flow fluid; 1 = every flow
  /// packet-level (hybrid off in all but name).
  uint32_t hybrid_sample_every = 64;
  /// FluidConfig::quantum_s for the engine the manager creates.
  double fluid_quantum_s = 64e-6;
};

struct FlowRecord {
  uint64_t flow_id = 0;
  HostId src = kInvalidHost;
  HostId dst = kInvalidHost;
  uint64_t bytes = 0;
  Time start = 0.0;
  Time end = 0.0;
  bool completed = false;

  double fct() const { return end - start; }
};

class TransportManager {
 public:
  TransportManager(Simulator& sim, TransportConfig config = {});
  ~TransportManager();  ///< out of line: owned_fluid_ is an incomplete type here

  /// Schedules a TCP-like flow; returns its flow id. Under hybrid mode the
  /// flow is handed to the fluid engine unless the 1-in-n sampler keeps it
  /// packet-level (the sampling counter is per-manager submission order, so
  /// the decision is deterministic and workers-invariant at fixed shards).
  uint64_t start_flow(HostId src, HostId dst, uint64_t bytes, Time start_time);

  /// Constant-rate UDP stream between [start, stop).
  uint64_t start_udp_flow(HostId src, HostId dst, double rate_bps, Time start_time,
                          Time stop_time, uint32_t packet_bytes = 1500);

  /// Completed TCP flows (in completion order).
  const std::vector<FlowRecord>& completed_flows() const { return completed_; }
  /// All TCP flows, completed or not (flow-id order).
  std::vector<FlowRecord> all_flows() const;

  uint64_t udp_bytes_received() const { return udp_bytes_received_; }

  /// Total data packets that arrived out of order across all TCP receivers —
  /// the paper's "Ordered" objective (§5.3). Retransmission arrivals count
  /// too (they also fill holes), so compare like against like.
  uint64_t total_reordered_packets() const;
  /// Invoked on every delivered UDP packet (throughput timelines, Fig. 14).
  void set_udp_receive_hook(std::function<void(Time, uint32_t)> hook) {
    udp_hook_ = std::move(hook);
  }

  /// Invoked on every data packet (TCP and UDP) that reaches its host —
  /// e.g. to audit Packet::trace for policy compliance.
  void set_data_inspector(std::function<void(const Packet&)> inspector) {
    data_inspector_ = std::move(inspector);
  }

  const TransportConfig& config() const { return config_; }

  /// Flow-id namespace base (parallel engine: shard s starts at
  /// (s << 48) + 1; shard 0 matches the serial sequence exactly).
  void set_next_flow_id(uint64_t id) { next_flow_id_ = id; }

  /// Attaches a flow-lifecycle tracker (DESIGN.md §11). Opt-in: with no
  /// tracker the hook sites are one predictable branch each. The caller
  /// should also Simulator::set_flow_telemetry(true) so deliveries carry
  /// path signatures. Detach (nullptr) before the tracker dies.
  void set_flow_tracker(obs::FlowTracker* tracker) { flow_tracker_ = tracker; }
  obs::FlowTracker* flow_tracker() const { return flow_tracker_; }

  /// INT-style path sampling: every `every`-th data packet (deterministic in
  /// (flow_id, seq); see obs::FlowTracker::sampled) records per-hop state,
  /// delivered to the tracker on arrival. 0 disables.
  void set_path_sample_every(uint32_t every) { path_sample_every_ = every; }

  // ----- hybrid flow-level engine (DESIGN.md §14) ---------------------------

  /// Routes bulk flows through an externally owned fluid engine (parallel
  /// engine: one global engine shared by every shard's transport). Serial
  /// callers normally just set TransportConfig::hybrid instead.
  void use_fluid(FluidEngine* engine, uint32_t sample_every);
  /// The engine in use (owned or external); nullptr in pure packet mode.
  FluidEngine* fluid_engine() const { return fluid_; }

  /// FluidEngine completion callback: records the analytic FCT exactly as
  /// tcp_complete records a packet-level one (metrics, tracker, completed_).
  void on_fluid_complete(const FlowRecord& rec);

 private:
  struct TcpSender {
    HostId src = kInvalidHost;
    HostId dst = kInvalidHost;
    uint64_t flow_id = 0;
    uint64_t total_pkts = 0;
    uint32_t last_pkt_payload = 0;
    uint64_t bytes = 0;
    Time start_time = 0.0;

    uint64_t next_seq = 0;
    uint64_t acked = 0;
    double cwnd = 1.0;
    double ssthresh = 1e18;
    int dupacks = 0;

    double srtt = 0.0;
    double rttvar = 0.0;
    double rto = 0.0;
    uint64_t rto_generation = 0;
    bool rtt_seeded = false;
    bool started = false;
    bool done = false;

    std::unordered_map<uint64_t, Time> send_time;
    uint16_t src_port = 0;
    uint16_t dst_port = 0;

    // DCTCP state (§ECN): per-window marked/total ACK accounting.
    double dctcp_alpha = 0.0;
    uint64_t dctcp_window_end = 0;
    uint64_t dctcp_acked_total = 0;
    uint64_t dctcp_acked_marked = 0;
  };

  struct TcpReceiver {
    uint64_t expected = 0;
    std::set<uint64_t> out_of_order;
    uint64_t max_seq_seen = 0;
    bool any_seen = false;
    uint64_t reordered = 0;  ///< packets arriving below an already-seen seq
  };

  struct UdpFlow {
    HostId src = kInvalidHost;
    HostId dst = kInvalidHost;
    uint64_t flow_id = 0;
    double rate_bps = 0.0;
    Time stop_time = 0.0;
    uint32_t packet_bytes = 1500;
    uint64_t next_seq = 0;
  };

  void on_host_receive(HostId host, Packet&& packet);
  void on_data(Packet&& packet);
  void on_ack(Packet&& packet);
  /// Pushes one delivered data packet into the attached flow tracker
  /// (call sites guard on flow_tracker_ != nullptr).
  void record_delivery(const Packet& packet, bool reordered);

  void tcp_start(TcpSender& sender);
  void tcp_send_window(TcpSender& sender);
  void tcp_send_packet(TcpSender& sender, uint64_t seq);
  void tcp_arm_rto(TcpSender& sender);
  void tcp_on_rto(uint64_t flow_id, uint64_t generation);
  void tcp_complete(TcpSender& sender);

  void udp_send_next(uint64_t flow_id);

  Packet make_packet(PacketKind kind, HostId src, HostId dst, uint64_t flow_id, uint64_t seq,
                     uint32_t size_bytes, uint8_t protocol);

  Simulator& sim_;
  TransportConfig config_;
  std::unique_ptr<FluidEngine> owned_fluid_;  ///< created when config_.hybrid
  FluidEngine* fluid_ = nullptr;              ///< owned or external (use_fluid)
  uint32_t fluid_sample_every_ = 0;
  uint64_t fluid_submissions_ = 0;  ///< 1-in-n sampling counter
  std::unordered_map<uint64_t, TcpSender> senders_;
  std::unordered_map<uint64_t, TcpReceiver> receivers_;
  std::unordered_map<uint64_t, UdpFlow> udp_flows_;
  std::vector<FlowRecord> completed_;
  uint64_t next_flow_id_ = 1;
  uint64_t udp_bytes_received_ = 0;
  std::function<void(Time, uint32_t)> udp_hook_;
  std::function<void(const Packet&)> data_inspector_;
  obs::FlowTracker* flow_tracker_ = nullptr;
  uint32_t path_sample_every_ = 0;
};

}  // namespace contra::sim
