#include "sim/parallel_simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <ostream>

#include "obs/flow_tracker.h"
#include "obs/profile.h"
#include "sim/fluid.h"
#include "obs/telemetry.h"
#include "topology/generators.h"
#include "util/strings.h"

namespace contra::sim {

ParallelSimulator::ParallelSimulator(const topology::Topology& topo, SimConfig config)
    : topo_(&topo), config_(config) {
  const uint32_t want_workers = config.workers == 0 ? 1 : config.workers;
  // Auto shard count: sized to the topology, capped by the parallelism we
  // can actually use — the larger of the requested workers and the machine's
  // cores (workers may exceed cores deliberately, e.g. determinism tests).
  const uint32_t requested =
      config.shards != 0
          ? config.shards
          : topology::default_num_shards(
                topo, std::max(want_workers, std::thread::hardware_concurrency()));
  partition_ = topology::partition_topology(topo, requested);
  // Zero-delay cut links are fused away at partition time (a zero-width
  // channel admits no conservative lookahead at all).
  assert(partition_.num_shards == 1 || partition_.num_cut_links == 0 ||
         partition_.min_cut_delay_s > 0.0);
  shards_.reserve(partition_.num_shards);
  for (uint32_t s = 0; s < partition_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(s, topo, config_, partition_));
  }
  if (partition_.fused_shards > 0) {
    obs::Telemetry& tel = shards_[0]->sim.telemetry();
    tel.metrics().add(tel.core().par_shards_fused, partition_.fused_shards);
  }
  next_boundary_ = epoch_width_s();  // +inf when nothing crosses the cut

  base_.resize(partition_.num_shards);
  avail_.resize(partition_.num_shards);
  dispatch_.reserve(partition_.num_shards);

  workers_ = std::max<uint32_t>(1, std::min(want_workers, partition_.num_shards));
  threads_.reserve(workers_ - 1);
  for (uint32_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ParallelSimulator::~ParallelSimulator() {
  if (!threads_.empty()) {
    shutdown_.store(true, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    generation_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
}

void ParallelSimulator::worker_loop(uint32_t worker) {
  uint64_t seen = 0;
  for (;;) {
    // Bounded spin, then park on the generation word. Phases are typically
    // microseconds apart so the spin usually wins; parking is what keeps
    // idle-heavy or oversubscribed runs from burning a core per worker.
    uint32_t spins = 0;
    for (;;) {
      const uint64_t g = generation_.load(std::memory_order_acquire);
      if (g != seen) {
        seen = g;
        break;
      }
      if (++spins < 64) continue;
      if (spins < 1024) {
        std::this_thread::yield();
        continue;
      }
      generation_.wait(g, std::memory_order_acquire);
    }
    if (shutdown_.load(std::memory_order_relaxed)) return;
    for (size_t i = worker; i < dispatch_.size(); i += workers_) {
      run_phase_shard(dispatch_[i]);
    }
    done_.fetch_add(1, std::memory_order_release);
    done_.notify_one();
  }
}

void ParallelSimulator::wait_done() {
  // The acquire pairs with each worker's release, publishing every mailbox
  // and queue write of this phase back to the main thread.
  const uint32_t expected = workers_ - 1;
  uint32_t spins = 0;
  for (;;) {
    const uint32_t d = done_.load(std::memory_order_acquire);
    if (d == expected) return;
    if (++spins < 1024) {
      std::this_thread::yield();
      continue;
    }
    done_.wait(d, std::memory_order_acquire);
  }
}

void ParallelSimulator::run_phase_shard(uint32_t s) {
  Shard& shard = *shards_[s];
  using Clock = std::chrono::steady_clock;
  const bool prof = profiler_ != nullptr;
  const Clock::time_point t0 = prof ? Clock::now() : Clock::time_point{};
  const uint64_t drained = drain_mailboxes_into(shard, shards_);
  const Clock::time_point t1 = prof ? Clock::now() : Clock::time_point{};
  if (tracing_ && drained > 0) {
    obs::TraceRecord r;
    r.t = shard.target;
    r.ev = obs::Ev::kBarrier;
    r.sw = s;
    r.value = static_cast<double>(drained);
    shard.sim.telemetry().emit(r);
  }
  if (shard.inclusive) {
    shard.sim.run_until(shard.target);
  } else {
    shard.sim.events().run_before(shard.target);
  }
  shard.committed = shard.target;
  obs::Telemetry& tel = shard.sim.telemetry();
  tel.metrics().add(tel.core().par_epochs);
  const uint64_t processed = shard.sim.events().events_processed();
  if (tracing_ && processed != shard.events_at_epoch_start) {
    obs::TraceRecord r;
    r.t = shard.target;
    r.ev = obs::Ev::kEpoch;
    r.sw = s;
    r.value = static_cast<double>(processed - shard.events_at_epoch_start);
    shard.sim.telemetry().emit(r);
  }
  shard.events_at_epoch_start = processed;
  if (prof) {
    // Track s is written only while shard s is dispatched, and phases are
    // fork-join separated — single writer per track at any instant.
    const Clock::time_point t2 = Clock::now();
    if (drained > 0) profiler_->add_span(s, "mailbox_drain", profile_us(t0), profile_us(t1) - profile_us(t0));
    profiler_->add_span(s, "phase_run", profile_us(t1), profile_us(t2) - profile_us(t1));
  }
}

bool ParallelSimulator::plan_phase(Time end) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const uint32_t n = partition_.num_shards;

  // base[s]: earliest pending work anywhere for shard s — its next queue
  // event or the earliest hop parked in an inbound mailbox. An invariant of
  // the scheduler is base[s] >= committed[s]: a shard never advances past
  // work it has not executed.
  double min_base = kInf;
  for (uint32_t s = 0; s < n; ++s) {
    double b = shards_[s]->sim.events().next_time();
    for (uint32_t src = 0; src < n; ++src) {
      b = std::min(b, shards_[src]->outbox[s].min_deliver_at());
    }
    base_[s] = b;
    min_base = std::min(min_base, b);
  }
  if (!(min_base <= end)) return false;  // window complete

  const bool grid_mode = config_.global_min_epochs && std::isfinite(partition_.min_cut_delay_s);
  double grid_boundary = end;
  bool grid_inclusive = true;
  if (grid_mode) {
    // Legacy schedule: everyone steps to the next global grid boundary
    // (width = min cut-link delay), one barrier per boundary, and a final
    // inclusive step to `end`.
    if (next_boundary_ <= end) {
      grid_boundary = next_boundary_;
      grid_inclusive = false;
      next_boundary_ += partition_.min_cut_delay_s;
    }
  } else {
    // Per-channel lookahead: close base over the horizon matrix (min-plus /
    // Bellman-Ford fixpoint, the classical LBTS computation). avail[s]
    // lower-bounds the time of *any* event shard s can still execute,
    // including events reaching it through relay chains — without the
    // closure, a two-hop chain (C -> A -> B) can deliver into B earlier
    // than B's direct-channel bounds admit, and the schedule is unsound.
    avail_ = base_;
    for (bool changed = true; changed;) {
      changed = false;
      for (uint32_t dst = 0; dst < n; ++dst) {
        double best = avail_[dst];
        for (uint32_t src = 0; src < n; ++src) {
          if (src == dst) continue;
          const double cand = avail_[src] + partition_.horizon_of(src, dst);
          if (cand < best) best = cand;
        }
        if (best < avail_[dst]) {
          avail_[dst] = best;
          changed = true;
        }
      }
    }
  }

  dispatch_.clear();
  for (uint32_t s = 0; s < n; ++s) {
    Shard& shard = *shards_[s];
    double boundary = grid_boundary;
    bool inclusive = grid_inclusive;
    if (!grid_mode) {
      // Safe horizon for s: the earliest instant any other shard could still
      // deliver into it. Horizons are strictly positive (zero-delay cuts are
      // fused), so the globally-earliest shard always gets a boundary above
      // its own next event — every planned phase makes progress.
      double t = kInf;
      for (uint32_t src = 0; src < n; ++src) {
        if (src == s) continue;
        t = std::min(t, avail_[src] + partition_.horizon_of(src, s));
      }
      inclusive = !(t <= end);
      boundary = inclusive ? end : t;
    }
    // An inclusive boundary may be revisited (run_until(end) twice, with new
    // work injected at exactly `end` in between) — matching the serial
    // engine's inclusive-end semantics. A strict boundary may not.
    const bool can_advance = inclusive ? boundary >= shard.committed : boundary > shard.committed;
    if (!can_advance) continue;

    double inbound = kInf;
    for (uint32_t src = 0; src < n; ++src) {
      inbound = std::min(inbound, shards_[src]->outbox[s].min_deliver_at());
    }
    const double earliest = std::min(inbound, shard.sim.events().next_time());
    const bool has_work = inclusive ? earliest <= boundary : earliest < boundary;
    if (has_work) {
      shard.target = boundary;
      shard.inclusive = inclusive;
      dispatch_.push_back(s);
    } else if (boundary > shard.committed) {
      // Provably idle up to the boundary: advance its scheduler clock right
      // here and keep it out of the barrier entirely. (Parked inbound hops,
      // if any, are all at or after the boundary, so committed never passes
      // an undrained delivery.)
      shard.committed = boundary;
      obs::Telemetry& tel = shard.sim.telemetry();
      tel.metrics().add(tel.core().par_idle_skips);
    }
  }
  // Hand parked hops to each dispatched consumer. Producers keep pushing
  // into the (now empty) pending side during the phase, so a producer and a
  // drainer of the same mailbox can share a phase without a race.
  for (uint32_t s : dispatch_) {
    for (auto& src : shards_) src->outbox[s].stage();
  }
  // Every planned round is a phase: in grid mode that is one per boundary
  // even if nothing runs (the legacy engine barriered regardless — that cost
  // is exactly what the A/B comparison measures).
  ++phases_;
  return true;
}

void ParallelSimulator::execute_phase() {
  const size_t n = dispatch_.size();
  if (n == 1 || threads_.empty()) {
    // One busy shard (or one worker): run inline, skip the pool entirely.
    if (n == 1 && !threads_.empty()) ++solo_phases_;
    for (uint32_t s : dispatch_) run_phase_shard(s);
    return;
  }
  done_.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);  // publishes dispatch_ + targets
  generation_.notify_all();
  for (size_t i = 0; i < n; i += workers_) run_phase_shard(dispatch_[i]);
  wait_done();
}

void ParallelSimulator::run_until(Time end) {
  if (fluid_ == nullptr) {
    run_span(end);
    return;
  }
  // Hybrid mode (DESIGN.md §14): split the window at fluid quantum ticks.
  // Every shard is parked at exactly the tick time when advance_to runs, so
  // the engine reads a consistent global link state and its completions are
  // a pure function of the schedule — workers-invariant by construction.
  for (;;) {
    const Time wake = fluid_->next_wake();
    run_span(std::min(end, wake));
    if (!(wake <= end)) break;
    fluid_->advance_to(wake);
  }
}

void ParallelSimulator::run_span(Time end) {
  if (partition_.num_shards == 1) {
    // Exactly the serial engine: same queue, same insertion order — except
    // that snapshot ticks split the window (processing no extra events, so
    // the event schedule is untouched).
    Shard& shard = *shards_[0];
    while (snapshot_out_ != nullptr && snapshot_interval_s_ > 0 &&
           snapshot_tick_ * snapshot_interval_s_ <= end) {
      const Time t = snapshot_tick_ * snapshot_interval_s_;
      shard.target = t;
      shard.inclusive = true;
      run_phase_shard(0);
      *snapshot_out_ << merged_metrics_json(t) << '\n';
      ++snapshot_tick_;
    }
    shard.target = end;
    shard.inclusive = true;
    run_phase_shard(0);
    now_ = std::max(now_, end);
    return;
  }
  using Clock = std::chrono::steady_clock;
  while (true) {
    const Clock::time_point p0 = profiler_ ? Clock::now() : Clock::time_point{};
    const bool more = plan_phase(end);
    if (profiler_) {
      const Clock::time_point p1 = Clock::now();
      profiler_->add_span(profiler_->scheduler_track(), "plan", profile_us(p0),
                          profile_us(p1) - profile_us(p0));
    }
    if (!more) break;
    if (!dispatch_.empty()) {
      const Clock::time_point e0 = profiler_ ? Clock::now() : Clock::time_point{};
      execute_phase();
      if (profiler_) {
        const Clock::time_point e1 = Clock::now();
        profiler_->add_span(profiler_->scheduler_track(), "barrier", profile_us(e0),
                            profile_us(e1) - profile_us(e0));
      }
    }
    if (snapshot_out_ != nullptr) {
      Time committed_min = std::numeric_limits<Time>::infinity();
      for (const auto& shard : shards_) committed_min = std::min(committed_min, shard->committed);
      emit_snapshots_through(std::min(committed_min, end));
    }
  }
  // Quiescent tail: nothing at or before `end` remains anywhere, but shards
  // that idle-skipped (or stopped at an early strict boundary) still have
  // local clocks behind `end`. Advance them — processes no events, matching
  // the serial engine's run_until semantics for empty windows.
  for (auto& shard : shards_) {
    if (shard->sim.now() < end) shard->sim.run_until(end);
    shard->committed = std::max(shard->committed, end);
  }
  emit_snapshots_through(end);
  now_ = std::max(now_, end);
}

void ParallelSimulator::set_profiler(obs::EngineProfiler* profiler) {
  profiler_ = profiler;
  profile_epoch_ = std::chrono::steady_clock::now();
}

void ParallelSimulator::set_metrics_snapshots(double interval_s, std::ostream* out) {
  snapshot_interval_s_ = interval_s;
  snapshot_out_ = interval_s > 0 ? out : nullptr;
  snapshot_tick_ = 1;
}

void ParallelSimulator::emit_snapshots_through(Time t) {
  if (snapshot_out_ == nullptr || snapshot_interval_s_ <= 0) return;
  // Tick times are multiples of the interval (never accumulated sums), so a
  // run emits the identical tick sequence regardless of phase granularity.
  while (snapshot_tick_ * snapshot_interval_s_ <= t) {
    *snapshot_out_ << merged_metrics_json(snapshot_tick_ * snapshot_interval_s_) << '\n';
    ++snapshot_tick_;
  }
}

HostId ParallelSimulator::add_host(topology::NodeId attach) {
  HostId id = kInvalidHost;
  for (auto& shard : shards_) {
    const HostId shard_id = shard->sim.add_host(attach);
    assert(id == kInvalidHost || id == shard_id);
    id = shard_id;
  }
  return id;
}

void ParallelSimulator::start() {
  for (auto& shard : shards_) shard->sim.start();
}

void ParallelSimulator::enable_tracing() {
  tracing_ = true;
  for (auto& shard : shards_) shard->sim.telemetry().set_sink(&shard->trace);
}

void ParallelSimulator::fail_cable(topology::LinkId link) {
  const uint32_t owner = partition_.shard(topo_->link(link).from);
  for (auto& shard : shards_) {
    if (shard->id == owner) {
      shard->sim.fail_cable(link);
    } else {
      shard->sim.set_cable_state_quiet(link, true);
    }
  }
}

void ParallelSimulator::restore_cable(topology::LinkId link) {
  const uint32_t owner = partition_.shard(topo_->link(link).from);
  for (auto& shard : shards_) {
    if (shard->id == owner) {
      shard->sim.restore_cable(link);
    } else {
      shard->sim.set_cable_state_quiet(link, false);
    }
  }
}

void ParallelSimulator::schedule_gray_event(Time t, topology::LinkId link, GrayParams gray) {
  const uint32_t owner = partition_.shard(topo_->link(link).from);
  for (auto& shard : shards_) {
    Simulator* sim = &shard->sim;
    const bool loud = shard->id == owner;
    shard->sim.events().schedule_at(t, [sim, link, gray, loud] {
      if (loud) {
        sim->set_cable_gray(link, gray);
      } else {
        sim->set_cable_gray_quiet(link, gray);
      }
    });
  }
}

void ParallelSimulator::schedule_restart_event(Time t, topology::NodeId node) {
  const uint32_t owner = partition_.shard(node);
  Simulator* sim = &shards_[owner]->sim;
  sim->events().schedule_at(t, [sim, node] { sim->restart_switch(node); });
}

void ParallelSimulator::schedule_churn_wave(Time t, obs::FaultClass cls, uint32_t wave_index) {
  Simulator* sim = &shards_[0]->sim;
  sim->events().schedule_at(t, [sim, cls, wave_index] { sim->note_churn_wave(cls, wave_index); });
}

void ParallelSimulator::schedule_cable_event(Time t, topology::LinkId link, bool down) {
  const uint32_t owner = partition_.shard(topo_->link(link).from);
  for (auto& shard : shards_) {
    Simulator* sim = &shard->sim;
    const bool loud = shard->id == owner;
    shard->sim.events().schedule_at(t, [sim, link, down, loud] {
      if (loud && down) {
        sim->fail_cable(link);
      } else if (loud) {
        sim->restore_cable(link);
      } else {
        sim->set_cable_state_quiet(link, down);
      }
    });
  }
}

LinkStats ParallelSimulator::aggregate_fabric_stats() const {
  LinkStats total;
  for (const auto& shard : shards_) {
    const LinkStats s = shard->sim.aggregate_fabric_stats();
    total.tx_packets += s.tx_packets;
    total.tx_bytes += s.tx_bytes;
    total.tx_data_bytes += s.tx_data_bytes;
    total.tx_ack_bytes += s.tx_ack_bytes;
    total.tx_probe_bytes += s.tx_probe_bytes;
    total.tx_data_packets += s.tx_data_packets;
    total.tx_ack_packets += s.tx_ack_packets;
    total.tx_probe_packets += s.tx_probe_packets;
    total.drops += s.drops;
    total.drop_bytes += s.drop_bytes;
    total.data_drops += s.data_drops;
  }
  return total;
}

uint64_t ParallelSimulator::events_processed() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->sim.events().events_processed();
  return total;
}

uint64_t ParallelSimulator::events_clamped() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->sim.events().events_clamped();
  return total;
}

std::vector<obs::TraceRecord> ParallelSimulator::merged_trace() const {
  std::vector<obs::TraceRecord> all;
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->trace.records().size();
  all.reserve(total);
  // Concatenate in shard order, then stable-sort by time alone: equal-time
  // records keep (shard, emission index) order — the engine's canonical tie
  // order.
  for (const auto& shard : shards_) {
    all.insert(all.end(), shard->trace.records().begin(), shard->trace.records().end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const obs::TraceRecord& a, const obs::TraceRecord& b) { return a.t < b.t; });
  return all;
}

std::string ParallelSimulator::merged_metrics_json(double t) const {
  obs::Telemetry merged;  // registers CoreMetrics in the same order as every shard
  for (const auto& shard : shards_) {
    merged.metrics().merge_from(shard->sim.telemetry().metrics());
  }
  return merged.metrics().snapshot_json(t);
}

// ----- ParallelTransport -----------------------------------------------------

ParallelTransport::ParallelTransport(ParallelSimulator& psim, TransportConfig config)
    : psim_(&psim), config_(config) {
  // Hybrid mode builds ONE fluid engine spanning every shard (DESIGN.md
  // §14): per-shard managers get hybrid=false configs (no per-shard engine)
  // and route their bulk flows into the shared engine via use_fluid. The
  // engine's ticks are driven by ParallelSimulator::run_until on the main
  // thread, between phases.
  TransportConfig shard_config = config;
  shard_config.hybrid = false;
  if (config.hybrid) {
    FluidConfig fc;
    fc.quantum_s = config.fluid_quantum_s;
    fc.mss_bytes = config.mss_bytes;
    fc.header_bytes = config.header_bytes;
    fluid_ = std::make_unique<FluidEngine>(fc);
    std::vector<Simulator*> sims;
    sims.reserve(psim.num_shards());
    for (uint32_t s = 0; s < psim.num_shards(); ++s) sims.push_back(&psim.shard_sim(s));
    ParallelSimulator* ps = &psim;
    fluid_->bind_shards(std::move(sims),
                        [ps](topology::NodeId node) { return ps->shard_of_node(node); });
    psim.set_fluid(fluid_.get());
  }
  transports_.reserve(psim.num_shards());
  for (uint32_t s = 0; s < psim.num_shards(); ++s) {
    auto transport = std::make_unique<TransportManager>(psim.shard_sim(s), shard_config);
    transport->set_next_flow_id((static_cast<uint64_t>(s) << 48) + 1);
    if (fluid_ != nullptr) transport->use_fluid(fluid_.get(), config.hybrid_sample_every);
    transports_.push_back(std::move(transport));
  }
}

ParallelTransport::~ParallelTransport() {
  // Detach trackers before they die (the transports outlive this scope only
  // in teardown order edge cases; cheap insurance either way).
  for (uint32_t s = 0; s < transports_.size(); ++s) transports_[s]->set_flow_tracker(nullptr);
  if (fluid_ != nullptr) psim_->set_fluid(nullptr);
}

void ParallelTransport::enable_flow_tracking(uint32_t path_sample_every) {
  if (!trackers_.empty()) return;
  trackers_.reserve(transports_.size());
  for (uint32_t s = 0; s < transports_.size(); ++s) {
    trackers_.push_back(std::make_unique<obs::FlowTracker>());
    transports_[s]->set_flow_tracker(trackers_.back().get());
    transports_[s]->set_path_sample_every(path_sample_every);
    psim_->shard_sim(s).set_flow_telemetry(true);
  }
}

obs::FlowTracker ParallelTransport::merged_flow_tracker() const {
  obs::FlowTracker merged;
  for (const auto& tracker : trackers_) merged.merge_from(*tracker);
  return merged;
}

TransportManager& ParallelTransport::for_host(HostId src) {
  return *transports_[psim_->shard_of_node(psim_->host_switch(src))];
}

uint64_t ParallelTransport::start_flow(HostId src, HostId dst, uint64_t bytes, Time start_time) {
  return for_host(src).start_flow(src, dst, bytes, start_time);
}

uint64_t ParallelTransport::start_udp_flow(HostId src, HostId dst, double rate_bps,
                                           Time start_time, Time stop_time,
                                           uint32_t packet_bytes) {
  return for_host(src).start_udp_flow(src, dst, rate_bps, start_time, stop_time, packet_bytes);
}

std::vector<FlowRecord> ParallelTransport::completed_flows() const {
  std::vector<FlowRecord> all;
  for (const auto& transport : transports_) {
    const auto& flows = transport->completed_flows();
    all.insert(all.end(), flows.begin(), flows.end());
  }
  std::sort(all.begin(), all.end(), [](const FlowRecord& a, const FlowRecord& b) {
    if (a.end != b.end) return a.end < b.end;
    return a.flow_id < b.flow_id;
  });
  return all;
}

std::vector<FlowRecord> ParallelTransport::all_flows() const {
  std::vector<FlowRecord> all;
  for (const auto& transport : transports_) {
    const auto flows = transport->all_flows();
    all.insert(all.end(), flows.begin(), flows.end());
  }
  std::sort(all.begin(), all.end(),
            [](const FlowRecord& a, const FlowRecord& b) { return a.flow_id < b.flow_id; });
  return all;
}

uint64_t ParallelTransport::total_reordered_packets() const {
  uint64_t total = 0;
  for (const auto& transport : transports_) total += transport->total_reordered_packets();
  return total;
}

uint64_t ParallelTransport::udp_bytes_received() const {
  uint64_t total = 0;
  for (const auto& transport : transports_) total += transport->udp_bytes_received();
  return total;
}

// ----- host placement --------------------------------------------------------

std::vector<HostId> attach_hosts_to_fat_tree_edges(ParallelSimulator& sim, uint32_t per_switch) {
  std::vector<HostId> hosts;
  const topology::Topology& topo = sim.topo();
  for (topology::NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (topology::fat_tree_layer(topo, n) != topology::FatTreeLayer::kEdge) continue;
    for (uint32_t i = 0; i < per_switch; ++i) hosts.push_back(sim.add_host(n));
  }
  return hosts;
}

std::vector<HostId> attach_hosts_to_leaves(ParallelSimulator& sim, uint32_t per_switch) {
  std::vector<HostId> hosts;
  const topology::Topology& topo = sim.topo();
  for (topology::NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (!util::starts_with(topo.name(n), "leaf")) continue;
    for (uint32_t i = 0; i < per_switch; ++i) hosts.push_back(sim.add_host(n));
  }
  return hosts;
}

std::vector<HostId> attach_hosts(ParallelSimulator& sim,
                                 const std::vector<topology::NodeId>& switches) {
  std::vector<HostId> hosts;
  hosts.reserve(switches.size());
  for (topology::NodeId n : switches) hosts.push_back(sim.add_host(n));
  return hosts;
}

}  // namespace contra::sim
