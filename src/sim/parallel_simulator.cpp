#include "sim/parallel_simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "obs/telemetry.h"
#include "topology/generators.h"
#include "util/strings.h"

namespace contra::sim {

namespace {

/// Spin a few hundred iterations, then start yielding: epochs are
/// microseconds of work so spinning usually wins, but on machines with fewer
/// cores than workers the yield is what lets the other worker run at all.
template <typename Cond>
void spin_wait(Cond&& cond) {
  uint32_t spins = 0;
  while (!cond()) {
    if (++spins > 256) std::this_thread::yield();
  }
}

}  // namespace

ParallelSimulator::ParallelSimulator(const topology::Topology& topo, SimConfig config)
    : topo_(&topo), config_(config) {
  const uint32_t requested =
      config.shards != 0 ? config.shards : topology::default_num_shards(topo);
  partition_ = topology::partition_topology(topo, requested);
  // A zero-delay cut link admits no epoch width — no conservative window in
  // which shards can run independently. Collapse to one shard: still the
  // parallel engine's code path, just without concurrency.
  if (partition_.num_shards > 1 && partition_.num_cut_links > 0 &&
      partition_.min_cut_delay_s <= 0.0) {
    partition_ = topology::partition_topology(topo, 1);
  }
  shards_.reserve(partition_.num_shards);
  for (uint32_t s = 0; s < partition_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(s, topo, config_, partition_));
  }
  next_boundary_ = epoch_width_s();  // +inf when nothing crosses the cut

  workers_ = std::max<uint32_t>(
      1, std::min(config.workers == 0 ? 1 : config.workers, partition_.num_shards));
  threads_.reserve(workers_ > 0 ? workers_ - 1 : 0);
  for (uint32_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ParallelSimulator::~ParallelSimulator() {
  if (!threads_.empty()) {
    shutdown_.store(true, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    for (std::thread& t : threads_) t.join();
  }
}

void ParallelSimulator::worker_loop(uint32_t worker) {
  uint64_t seen = 0;
  for (;;) {
    spin_wait([&] { return generation_.load(std::memory_order_acquire) != seen; });
    ++seen;
    if (shutdown_.load(std::memory_order_relaxed)) return;
    auto job = job_;
    const Time t = job_time_;
    const bool flag = job_flag_;
    for (uint32_t s = worker; s < partition_.num_shards; s += workers_) {
      (this->*job)(s, t, flag);
    }
    done_.fetch_add(1, std::memory_order_release);
  }
}

void ParallelSimulator::parallel_for_shards(void (ParallelSimulator::*job)(uint32_t, Time, bool),
                                            Time t, bool flag) {
  const uint32_t n = partition_.num_shards;
  if (threads_.empty()) {
    for (uint32_t s = 0; s < n; ++s) (this->*job)(s, t, flag);
    return;
  }
  job_ = job;
  job_time_ = t;
  job_flag_ = flag;
  done_.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);  // publishes the job fields
  for (uint32_t s = 0; s < n; s += workers_) (this->*job)(s, t, flag);
  // The acquire on done_ pairs with each worker's release, publishing every
  // mailbox/queue write of this phase back to the main thread.
  spin_wait([&] { return done_.load(std::memory_order_acquire) == workers_ - 1; });
}

void ParallelSimulator::run_shard_epoch(uint32_t s, Time boundary, bool inclusive) {
  Shard& shard = *shards_[s];
  if (inclusive) {
    shard.sim.run_until(boundary);
  } else {
    shard.sim.events().run_before(boundary);
  }
  const uint64_t processed = shard.sim.events().events_processed();
  if (tracing_ && processed != shard.events_at_epoch_start) {
    obs::TraceRecord r;
    r.t = boundary;
    r.ev = obs::Ev::kEpoch;
    r.sw = s;
    r.value = static_cast<double>(processed - shard.events_at_epoch_start);
    shard.sim.telemetry().emit(r);
  }
  shard.events_at_epoch_start = processed;
}

void ParallelSimulator::drain_shard(uint32_t s, Time boundary, bool /*unused*/) {
  Shard& shard = *shards_[s];
  const uint64_t drained = drain_mailboxes_into(shard, shards_);
  if (tracing_ && drained > 0) {
    obs::TraceRecord r;
    r.t = boundary;
    r.ev = obs::Ev::kBarrier;
    r.sw = s;
    r.value = static_cast<double>(drained);
    shard.sim.telemetry().emit(r);
  }
}

void ParallelSimulator::run_until(Time end) {
  const double delta = epoch_width_s();
  if (shards_.size() == 1 || !std::isfinite(delta)) {
    // Nothing crosses the cut: one unsynchronized phase. With one shard this
    // is exactly the serial engine (same queue, same insertion order).
    parallel_for_shards(&ParallelSimulator::run_shard_epoch, end, /*inclusive=*/true);
    now_ = std::max(now_, end);
    return;
  }
  while (next_boundary_ <= end) {
    parallel_for_shards(&ParallelSimulator::run_shard_epoch, next_boundary_,
                        /*inclusive=*/false);
    bool any_pending = false;
    for (const auto& src : shards_) {
      for (const Mailbox& box : src->outbox) {
        if (!box.empty()) {
          any_pending = true;
          break;
        }
      }
      if (any_pending) break;
    }
    if (any_pending) {
      parallel_for_shards(&ParallelSimulator::drain_shard, next_boundary_, false);
    }
    ++epochs_;
    next_boundary_ += delta;
  }
  // Partial epoch up to `end`, inclusive — matching Simulator::run_until
  // semantics. Cross-shard hops produced here arrive at or after
  // next_boundary_ (> end), so they wait in the mailboxes for the next call.
  parallel_for_shards(&ParallelSimulator::run_shard_epoch, end, /*inclusive=*/true);
  now_ = std::max(now_, end);
}

HostId ParallelSimulator::add_host(topology::NodeId attach) {
  HostId id = kInvalidHost;
  for (auto& shard : shards_) {
    const HostId shard_id = shard->sim.add_host(attach);
    assert(id == kInvalidHost || id == shard_id);
    id = shard_id;
  }
  return id;
}

void ParallelSimulator::start() {
  for (auto& shard : shards_) shard->sim.start();
}

void ParallelSimulator::enable_tracing() {
  tracing_ = true;
  for (auto& shard : shards_) shard->sim.telemetry().set_sink(&shard->trace);
}

void ParallelSimulator::fail_cable(topology::LinkId link) {
  const uint32_t owner = partition_.shard(topo_->link(link).from);
  for (auto& shard : shards_) {
    if (shard->id == owner) {
      shard->sim.fail_cable(link);
    } else {
      shard->sim.set_cable_state_quiet(link, true);
    }
  }
}

void ParallelSimulator::restore_cable(topology::LinkId link) {
  const uint32_t owner = partition_.shard(topo_->link(link).from);
  for (auto& shard : shards_) {
    if (shard->id == owner) {
      shard->sim.restore_cable(link);
    } else {
      shard->sim.set_cable_state_quiet(link, false);
    }
  }
}

void ParallelSimulator::schedule_cable_event(Time t, topology::LinkId link, bool down) {
  const uint32_t owner = partition_.shard(topo_->link(link).from);
  for (auto& shard : shards_) {
    Simulator* sim = &shard->sim;
    const bool loud = shard->id == owner;
    shard->sim.events().schedule_at(t, [sim, link, down, loud] {
      if (loud && down) {
        sim->fail_cable(link);
      } else if (loud) {
        sim->restore_cable(link);
      } else {
        sim->set_cable_state_quiet(link, down);
      }
    });
  }
}

LinkStats ParallelSimulator::aggregate_fabric_stats() const {
  LinkStats total;
  for (const auto& shard : shards_) {
    const LinkStats s = shard->sim.aggregate_fabric_stats();
    total.tx_packets += s.tx_packets;
    total.tx_bytes += s.tx_bytes;
    total.tx_data_bytes += s.tx_data_bytes;
    total.tx_ack_bytes += s.tx_ack_bytes;
    total.tx_probe_bytes += s.tx_probe_bytes;
    total.tx_data_packets += s.tx_data_packets;
    total.tx_ack_packets += s.tx_ack_packets;
    total.tx_probe_packets += s.tx_probe_packets;
    total.drops += s.drops;
    total.drop_bytes += s.drop_bytes;
    total.data_drops += s.data_drops;
  }
  return total;
}

uint64_t ParallelSimulator::events_processed() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->sim.events().events_processed();
  return total;
}

uint64_t ParallelSimulator::events_clamped() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->sim.events().events_clamped();
  return total;
}

std::vector<obs::TraceRecord> ParallelSimulator::merged_trace() const {
  std::vector<obs::TraceRecord> all;
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->trace.records().size();
  all.reserve(total);
  // Concatenate in shard order, then stable-sort by time alone: equal-time
  // records keep (shard, emission index) order — the engine's canonical tie
  // order.
  for (const auto& shard : shards_) {
    all.insert(all.end(), shard->trace.records().begin(), shard->trace.records().end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const obs::TraceRecord& a, const obs::TraceRecord& b) { return a.t < b.t; });
  return all;
}

std::string ParallelSimulator::merged_metrics_json(double t) const {
  obs::Telemetry merged;  // registers CoreMetrics in the same order as every shard
  for (const auto& shard : shards_) {
    merged.metrics().merge_from(shard->sim.telemetry().metrics());
  }
  return merged.metrics().snapshot_json(t);
}

// ----- ParallelTransport -----------------------------------------------------

ParallelTransport::ParallelTransport(ParallelSimulator& psim, TransportConfig config)
    : psim_(&psim), config_(config) {
  transports_.reserve(psim.num_shards());
  for (uint32_t s = 0; s < psim.num_shards(); ++s) {
    auto transport = std::make_unique<TransportManager>(psim.shard_sim(s), config);
    transport->set_next_flow_id((static_cast<uint64_t>(s) << 48) + 1);
    transports_.push_back(std::move(transport));
  }
}

TransportManager& ParallelTransport::for_host(HostId src) {
  return *transports_[psim_->shard_of_node(psim_->host_switch(src))];
}

uint64_t ParallelTransport::start_flow(HostId src, HostId dst, uint64_t bytes, Time start_time) {
  return for_host(src).start_flow(src, dst, bytes, start_time);
}

uint64_t ParallelTransport::start_udp_flow(HostId src, HostId dst, double rate_bps,
                                           Time start_time, Time stop_time,
                                           uint32_t packet_bytes) {
  return for_host(src).start_udp_flow(src, dst, rate_bps, start_time, stop_time, packet_bytes);
}

std::vector<FlowRecord> ParallelTransport::completed_flows() const {
  std::vector<FlowRecord> all;
  for (const auto& transport : transports_) {
    const auto& flows = transport->completed_flows();
    all.insert(all.end(), flows.begin(), flows.end());
  }
  std::sort(all.begin(), all.end(), [](const FlowRecord& a, const FlowRecord& b) {
    if (a.end != b.end) return a.end < b.end;
    return a.flow_id < b.flow_id;
  });
  return all;
}

std::vector<FlowRecord> ParallelTransport::all_flows() const {
  std::vector<FlowRecord> all;
  for (const auto& transport : transports_) {
    const auto flows = transport->all_flows();
    all.insert(all.end(), flows.begin(), flows.end());
  }
  std::sort(all.begin(), all.end(),
            [](const FlowRecord& a, const FlowRecord& b) { return a.flow_id < b.flow_id; });
  return all;
}

uint64_t ParallelTransport::total_reordered_packets() const {
  uint64_t total = 0;
  for (const auto& transport : transports_) total += transport->total_reordered_packets();
  return total;
}

uint64_t ParallelTransport::udp_bytes_received() const {
  uint64_t total = 0;
  for (const auto& transport : transports_) total += transport->udp_bytes_received();
  return total;
}

// ----- host placement --------------------------------------------------------

std::vector<HostId> attach_hosts_to_fat_tree_edges(ParallelSimulator& sim, uint32_t per_switch) {
  std::vector<HostId> hosts;
  const topology::Topology& topo = sim.topo();
  for (topology::NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (topology::fat_tree_layer(topo, n) != topology::FatTreeLayer::kEdge) continue;
    for (uint32_t i = 0; i < per_switch; ++i) hosts.push_back(sim.add_host(n));
  }
  return hosts;
}

std::vector<HostId> attach_hosts_to_leaves(ParallelSimulator& sim, uint32_t per_switch) {
  std::vector<HostId> hosts;
  const topology::Topology& topo = sim.topo();
  for (topology::NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (!util::starts_with(topo.name(n), "leaf")) continue;
    for (uint32_t i = 0; i < per_switch; ++i) hosts.push_back(sim.add_host(n));
  }
  return hosts;
}

std::vector<HostId> attach_hosts(ParallelSimulator& sim,
                                 const std::vector<topology::NodeId>& switches) {
  std::vector<HostId> hosts;
  hosts.reserve(switches.size());
  for (topology::NodeId n : switches) hosts.push_back(sim.add_host(n));
  return hosts;
}

}  // namespace contra::sim
