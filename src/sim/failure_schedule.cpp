#include "sim/failure_schedule.h"

namespace contra::sim {

FailureSchedule& FailureSchedule::fail_at(Time at, topology::LinkId link) {
  events_.push_back(Event{at, link, true});
  return *this;
}

FailureSchedule& FailureSchedule::restore_at(Time at, topology::LinkId link) {
  events_.push_back(Event{at, link, false});
  return *this;
}

FailureSchedule& FailureSchedule::flap(topology::LinkId link, Time start, Time half_period,
                                       int cycles) {
  for (int i = 0; i < cycles; ++i) {
    fail_at(start + 2 * i * half_period, link);
    restore_at(start + (2 * i + 1) * half_period, link);
  }
  return *this;
}

void FailureSchedule::arm(Simulator& sim) const {
  for (const Event& event : events_) {
    sim.events().schedule_at(event.at, [&sim, event] {
      if (event.fail) {
        sim.fail_cable(event.link);
      } else {
        sim.restore_cable(event.link);
      }
    });
  }
}

}  // namespace contra::sim
