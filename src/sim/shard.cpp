#include "sim/shard.h"

#include "obs/telemetry.h"

namespace contra::sim {

Shard::Shard(uint32_t shard_id, const topology::Topology& topo, const SimConfig& config,
             const topology::Partition& partition)
    : id(shard_id), sim(topo, config), outbox(partition.num_shards) {
  sim.set_install_filter(
      [&partition, shard_id](topology::NodeId node) { return partition.shard(node) == shard_id; });
  // Disjoint id namespaces per shard; shard 0 matches the serial sequences
  // exactly, so a 1-shard parallel run digests identically to the serial
  // engine.
  sim.set_next_packet_id((static_cast<uint64_t>(shard_id) << 48) + 1);

  for (topology::LinkId l = 0; l < topo.num_links(); ++l) {
    const topology::DirectedLink& dl = topo.link(l);
    if (partition.shard(dl.from) != shard_id) continue;  // not ours to transmit on
    const uint32_t peer = partition.shard(dl.to);
    if (peer == shard_id) continue;
    Mailbox* box = &outbox[peer];
    sim.link(l).set_remote_forward(
        [box, l](Time arrival, Packet&& packet) { box->push(arrival, l, std::move(packet)); });
  }
}

uint64_t drain_mailboxes_into(Shard& dst, std::vector<std::unique_ptr<Shard>>& shards) {
  size_t batch = 0;
  for (auto& src : shards) batch += src->outbox[dst.id].staged().size();
  if (batch == 0) return 0;
  dst.sim.events().reserve_extra(batch);
  for (auto& src : shards) {
    Mailbox& box = src->outbox[dst.id];
    for (CrossHop& hop : box.staged()) {
      dst.sim.events().schedule_deliver(hop.deliver_at, &dst.sim.link(hop.link),
                                        std::move(hop.packet));
    }
    box.clear_staged();
  }
  obs::Telemetry& t = dst.sim.telemetry();
  t.metrics().add(t.core().par_mailbox_hops, batch);
  t.metrics().add(t.core().par_mailbox_batches);
  t.metrics().observe(t.core().par_batch_size, static_cast<double>(batch));
  return batch;
}

}  // namespace contra::sim
