// Adversarial failure & churn engine (DESIGN.md §13).
//
// Layers on FailureSchedule's scripted-timeline shape but speaks in fault
// *classes* rather than single cable events: link flaps at a tunable
// frequency, correlated failures over shared-risk groups (a pod, a spine
// plane, all links of one switch), gray failures (loss probability, added
// latency, capacity derate — Link's non-binary sickness), metric
// drift/oscillation, maintenance drains, and control-plane restarts
// (Device::restart_control_plane). Each builder call is one *wave*: the
// engine emits a churn_wave trace record (aux = FaultClass) at the wave's
// start, before its events, so the ConvergenceTracker can measure a
// reconvergence window per wave and report a distribution per class.
//
// Schedules are built entirely up front — scripted (builders / the
// --churn-spec JSON schema) or seed-generative (generate) — and then armed
// against either engine. Arming schedules plain events, so a schedule is
// deterministic across --workers by the parallel engine's own contract.
#pragma once

#include <string>
#include <vector>

#include "sim/parallel_simulator.h"
#include "sim/simulator.h"

namespace contra::sim {

using obs::FaultClass;

class ChurnEngine {
 public:
  explicit ChurnEngine(const topology::Topology& topo) : topo_(&topo) {}

  // ----- scripted builders (each call = one wave) ---------------------------

  /// Flap: alternate fail/restore every `half_period` starting at `start`,
  /// `cycles` times (ends restored).
  ChurnEngine& flap(topology::LinkId link, Time start, Time half_period, int cycles);
  /// Shared-risk group: every cable in `links` fails at `at`, all restore at
  /// `restore_at`.
  ChurnEngine& srg(const std::vector<topology::LinkId>& links, Time at, Time restore_at);
  /// SRG convenience: all cables of one switch (the whole-switch failure).
  ChurnEngine& srg_switch(topology::NodeId node, Time at, Time restore_at);
  /// Gray failure on one cable from `at` to `clear_at`.
  ChurnEngine& gray(topology::LinkId link, Time at, Time clear_at, GrayParams params);
  /// Metric drift: the cable's extra latency oscillates between 0 and
  /// `amplitude_s` every `half_period`, `cycles` times (ends clean).
  ChurnEngine& drift(topology::LinkId link, Time start, Time half_period, int cycles,
                     double amplitude_s);
  /// Maintenance drain: deep capacity derate on every cable of `node` from
  /// `at` to `restore_at` (links stay up; traffic should route around).
  ChurnEngine& drain(topology::NodeId node, Time at, Time restore_at,
                     double capacity_factor = 0.1);
  /// Control-plane restart of the device at `node`.
  ChurnEngine& restart(topology::NodeId node, Time at);

  // ----- seed-generative schedules ------------------------------------------

  /// Appends `waves` random waves on [start, horizon): class, target, and
  /// timing drawn from mix64(seed)-keyed streams. Every wave fully clears
  /// (links restored, gray healed) before `horizon`, so an oracle may demand
  /// quiescence afterwards. Deterministic in (topology, seed).
  ChurnEngine& generate(uint64_t seed, Time start, Time horizon, uint32_t waves);

  // ----- JSON spec (contrasim --churn-spec) ---------------------------------

  /// Parses the spec schema documented in DESIGN.md §13. Returns false and
  /// fills `*error` on malformed input. Accepts either scripted "events"
  /// (nodes/links named as in the topology, links as "from-to") or a
  /// generative {"seed", "waves", "start_ms", "horizon_ms"} block, or both.
  bool load_json(const std::string& text, std::string* error);

  // ----- arming -------------------------------------------------------------

  void arm(Simulator& sim) const;
  void arm(ParallelSimulator& psim) const;

  size_t num_events() const { return events_.size(); }
  uint32_t num_waves() const { return next_wave_; }
  /// Time of the last scheduled event (0 when empty) — quiescence budgets
  /// start after this.
  Time last_event_time() const;
  /// True when no link is left down and no gray state is left installed at
  /// the end of the schedule — the precondition for the all-links-up
  /// reconvergence oracle.
  bool ends_clean() const;
  /// Whether any wave restarts a control plane — restarted nodes may need a
  /// version-reset escape window on top of the usual quiescence margin.
  bool has_restarts() const;
  /// One line per wave, for logs and --churn-spec summaries.
  std::string describe() const;

 private:
  enum class Op : uint8_t { kFail, kRestore, kGraySet, kRestart };
  struct Event {
    Time at = 0.0;
    Op op = Op::kFail;
    topology::LinkId link = topology::kInvalidLink;
    topology::NodeId node = topology::kInvalidNode;
    GrayParams gray;  ///< kGraySet payload (defaults = heal)
  };
  struct Wave {
    Time at = 0.0;
    FaultClass cls = FaultClass::kFlap;
    uint32_t index = 0;
    std::string what;  ///< describe() text
  };

  uint32_t begin_wave(FaultClass cls, Time at, std::string what);
  void push(Event ev) { events_.push_back(ev); }
  uint64_t gray_salt(topology::LinkId link, uint32_t wave) const;

  const topology::Topology* topo_;
  std::vector<Event> events_;
  std::vector<Wave> waves_;
  uint32_t next_wave_ = 0;
};

}  // namespace contra::sim
