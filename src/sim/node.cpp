#include "sim/node.h"

// Device is a pure interface; this TU anchors its vtable-adjacent docs and
// keeps the module layout uniform (one .cpp per component).
namespace contra::sim {}
