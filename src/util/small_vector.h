// A minimal small-buffer vector for trivially copyable element types.
//
// Exists for the simulator hot path: rank vectors and metric tuples are
// almost always <= 4 components, and evaluating them millions of times per
// run must not touch the heap. Elements stay in inline storage up to N and
// spill to a heap buffer beyond it; the API is the subset of std::vector the
// codebase actually uses.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <type_traits>

namespace contra::util {

template <typename T, size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is restricted to trivially copyable types");
  static_assert(N > 0);

 public:
  SmallVector() = default;
  SmallVector(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }
  SmallVector(const SmallVector& other) { assign_from(other); }
  SmallVector(SmallVector&& other) noexcept { steal_from(other); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear_storage();
      assign_from(other);
    }
    return *this;
  }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear_storage();
      steal_from(other);
    }
    return *this;
  }
  ~SmallVector() { clear_storage(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  bool is_inline() const { return data_ == inline_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(size_t want) {
    if (want > capacity_) grow(want);
  }

  void push_back(const T& v) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data_[size_++] = v;
  }

  void append(const T* first, const T* last) {
    const size_t extra = static_cast<size_t>(last - first);
    if (size_ + extra > capacity_) grow(std::max(size_ + extra, capacity_ * 2));
    std::memcpy(data_ + size_, first, extra * sizeof(T));
    size_ += extra;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  void grow(size_t want) {
    const size_t cap = std::max(want, size_t{2} * N);
    T* heap = new T[cap];
    std::memcpy(heap, data_, size_ * sizeof(T));
    if (data_ != inline_) delete[] data_;
    data_ = heap;
    capacity_ = cap;
  }

  void clear_storage() {
    if (data_ != inline_) delete[] data_;
    data_ = inline_;
    capacity_ = N;
    size_ = 0;
  }

  void assign_from(const SmallVector& other) {
    if (other.size_ > capacity_) grow(other.size_);
    std::memcpy(data_, other.data_, other.size_ * sizeof(T));
    size_ = other.size_;
  }

  void steal_from(SmallVector& other) noexcept {
    if (other.is_inline()) {
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
      data_ = inline_;
      capacity_ = N;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_;
      other.capacity_ = N;
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  T inline_[N];
  T* data_ = inline_;
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace contra::util
