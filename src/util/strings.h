// Small string utilities shared by the policy parser and topology file parser.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace contra::util {

/// Split on a delimiter; empty fields are kept.
std::vector<std::string> split(std::string_view text, char delim);

/// Split on arbitrary whitespace; empty fields are dropped.
std::vector<std::string> split_whitespace(std::string_view text);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace contra::util
