// Q16.16 fixed-point arithmetic.
//
// Programmable switch ASICs (the deployment target of the generated programs)
// have no floating-point units; metrics such as link utilization are carried
// in probes as fixed-point integers. The compiler and the dataplane runtime
// use this type for every metric component so that the in-process execution
// matches what the emitted P4 would compute bit-for-bit.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace contra::util {

class Fixed {
 public:
  static constexpr int kFractionBits = 16;
  static constexpr int64_t kOne = int64_t{1} << kFractionBits;

  constexpr Fixed() = default;

  static constexpr Fixed from_raw(int64_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }
  static constexpr Fixed from_int(int64_t v) { return from_raw(v << kFractionBits); }
  static Fixed from_double(double v);

  /// Largest representable value; used as the saturation bound.
  static constexpr Fixed max() { return from_raw(std::numeric_limits<int64_t>::max() / 4); }

  constexpr int64_t raw() const { return raw_; }
  double to_double() const { return static_cast<double>(raw_) / kOne; }
  /// Truncation toward zero.
  constexpr int64_t to_int() const { return raw_ >> kFractionBits; }

  /// Saturating addition: switch pipelines saturate rather than wrap.
  Fixed saturating_add(Fixed other) const;
  Fixed saturating_sub(Fixed other) const;
  /// Fixed-point multiply (used by EWMA decay in utilization estimation).
  Fixed mul(Fixed other) const;

  friend constexpr auto operator<=>(Fixed a, Fixed b) = default;

  std::string to_string() const;

 private:
  int64_t raw_ = 0;
};

inline Fixed fixed_max(Fixed a, Fixed b) { return a < b ? b : a; }
inline Fixed fixed_min(Fixed a, Fixed b) { return a < b ? a : b; }

}  // namespace contra::util
