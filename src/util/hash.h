// Hash functions mirroring what the generated P4 programs use in hardware:
// CRC32 for flowlet IDs and the loop-detection packet signature (§5.3/§5.5).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace contra::util {

/// CRC-32 (IEEE 802.3 polynomial, reflected), the hash exposed by switch
/// ASIC hash engines. Deterministic across runs.
uint32_t crc32(std::span<const uint8_t> data, uint32_t seed = 0);
uint32_t crc32(std::string_view data, uint32_t seed = 0);

/// Five-tuple used for flowlet identification.
struct FiveTuple {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t protocol = 0;

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;
};

/// Hash of the five tuple — the flowlet ID key (fid) in the paper's tables.
uint32_t hash_five_tuple(const FiveTuple& t, uint32_t seed = 0);

/// 64-bit mix (splitmix64) for hash-map keys built from small integers.
uint64_t mix64(uint64_t x);

/// Combine two hashes (boost-style).
inline uint64_t hash_combine(uint64_t a, uint64_t b) {
  return a ^ (mix64(b) + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace contra::util
