// A growable circular FIFO of movable values.
//
// Replaces std::deque on the simulator hot path: with elements the size of a
// Packet, libstdc++'s deque fits only a couple per chunk, so a steady stream
// through the queue allocates and frees a chunk every few pushes. The ring
// reuses one flat buffer forever once grown, which the zero-allocation
// contract of the event core depends on.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace contra::util {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  void push_back(T&& value) {
    if (size_ == buf_.size()) grow();
    buf_[tail_] = std::move(value);
    tail_ = next(tail_);
    ++size_;
  }

  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }

  /// Moves the front element out and advances the queue.
  T pop_front() {
    T out = std::move(buf_[head_]);
    head_ = next(head_);
    --size_;
    return out;
  }

  void clear() {
    // Drop held resources eagerly (queued values may own buffers).
    for (size_t i = 0; i < size_; ++i) buf_[index(i)] = T{};
    head_ = tail_ = size_ = 0;
  }

  /// Visits elements front to back.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (size_t i = 0; i < size_; ++i) fn(buf_[index(i)]);
  }

 private:
  size_t next(size_t i) const { return i + 1 == buf_.size() ? 0 : i + 1; }
  size_t index(size_t offset) const {
    const size_t i = head_ + offset;
    return i >= buf_.size() ? i - buf_.size() : i;
  }

  void grow() {
    const size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> bigger(cap);
    for (size_t i = 0; i < size_; ++i) bigger[i] = std::move(buf_[index(i)]);
    buf_ = std::move(bigger);
    head_ = 0;
    tail_ = size_;
  }

  std::vector<T> buf_;
  size_t head_ = 0;
  size_t tail_ = 0;
  size_t size_ = 0;
};

}  // namespace contra::util
