// Deterministic random source for workload generation and randomized tests.
// Every experiment takes an explicit seed so results reproduce exactly.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace contra::util {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }
  /// Uniform in [lo, hi].
  int64_t uniform_int(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }
  /// Exponential with the given rate (events per unit time).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }
  uint64_t next_u64() { return engine_(); }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(uniform_int(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace contra::util
