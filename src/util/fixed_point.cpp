#include "util/fixed_point.h"

#include <cmath>

namespace contra::util {

Fixed Fixed::from_double(double v) {
  if (std::isnan(v)) return Fixed{};
  const double scaled = v * kOne;
  const double bound = static_cast<double>(max().raw());
  if (scaled >= bound) return max();
  if (scaled <= -bound) return from_raw(-max().raw());
  return from_raw(static_cast<int64_t>(std::llround(scaled)));
}

Fixed Fixed::saturating_add(Fixed other) const {
  const int64_t a = raw_;
  const int64_t b = other.raw_;
  const int64_t bound = max().raw();
  if (b > 0 && a > bound - b) return max();
  if (b < 0 && a < -bound - b) return from_raw(-bound);
  return from_raw(a + b);
}

Fixed Fixed::saturating_sub(Fixed other) const {
  return saturating_add(from_raw(-other.raw_));
}

Fixed Fixed::mul(Fixed other) const {
  // 128-bit intermediate keeps precision for EWMA coefficients.
  const __int128 prod = static_cast<__int128>(raw_) * other.raw_;
  const __int128 shifted = prod >> kFractionBits;
  const int64_t bound = max().raw();
  if (shifted > bound) return max();
  if (shifted < -static_cast<__int128>(bound)) return from_raw(-bound);
  return from_raw(static_cast<int64_t>(shifted));
}

std::string Fixed::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", to_double());
  return buf;
}

}  // namespace contra::util
