// Minimal leveled logger used across the Contra library.
//
// The library is deterministic and single-threaded by design (the simulator
// is a discrete-event loop), so the logger keeps no locks. Levels can be
// raised at runtime to silence modules during benchmarks.
#pragma once

#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace contra::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Returns a short tag such as "INFO" for a level.
std::string_view log_level_name(LogLevel level);

/// Parses a level name ("trace", "DEBUG", "info", "warn"/"warning",
/// "error", "off"/"none"); nullopt when unrecognized.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Applies the CONTRA_LOG_LEVEL environment variable (if set and valid) to
/// the global level. Returns the level applied, or nullopt when the variable
/// is unset or unparseable — an unparseable value also prints one warning.
/// CLI entry points call this before doing any work.
std::optional<LogLevel> init_log_level_from_env();

namespace detail {
void log_emit(LogLevel level, std::string_view module, std::string_view message);
}

/// Stream-style log statement builder. Usage:
///   LOG_INFO("compiler") << "built PG with " << n << " nodes";
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string_view module) : level_(level), module_(module) {}
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;
  ~LogStatement() {
    if (level_ >= log_level()) detail::log_emit(level_, module_, stream_.str());
  }
  template <typename T>
  LogStatement& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view module_;
  std::ostringstream stream_;
};

}  // namespace contra::util

#define CONTRA_LOG(level, module) ::contra::util::LogStatement(level, module)
#define LOG_TRACE(module) CONTRA_LOG(::contra::util::LogLevel::kTrace, module)
#define LOG_DEBUG(module) CONTRA_LOG(::contra::util::LogLevel::kDebug, module)
#define LOG_INFO(module) CONTRA_LOG(::contra::util::LogLevel::kInfo, module)
#define LOG_WARN(module) CONTRA_LOG(::contra::util::LogLevel::kWarn, module)
#define LOG_ERROR(module) CONTRA_LOG(::contra::util::LogLevel::kError, module)
