// Allocation-counting test hook. The perf contract of the event core is
// "zero heap allocations per steady-state packet hop"; this probe lets tests
// and benchmarks assert it instead of trusting a comment.
//
// The counter lives in the library (always available, always cheap); the
// global operator new/delete replacements that feed it are only compiled
// into binaries that opt in, because replaceable allocation functions must
// be defined in exactly one TU per binary. Opt in from one .cpp file with:
//
//   CONTRA_DEFINE_COUNTING_ALLOC_HOOKS()
//
// after which util::alloc_count() reflects every allocation in the process.
#pragma once

#include <atomic>
#include <cstdint>

namespace contra::util {

/// Process-wide allocation counter, bumped by the opt-in operator new
/// replacement. Stays at zero in binaries that do not install the hooks.
std::atomic<uint64_t>& alloc_counter();

/// Current count (0 unless the defining binary installed the hooks).
inline uint64_t alloc_count() { return alloc_counter().load(std::memory_order_relaxed); }

}  // namespace contra::util

// NOLINTBEGIN — replaceable allocation functions, intentionally global.
// GCC pairs the malloc in the replaced operator new with the free in the
// replaced operator delete and warns about the mismatch it itself created;
// the pairing is exactly the point here.
#define CONTRA_DEFINE_COUNTING_ALLOC_HOOKS()                                             \
  _Pragma("GCC diagnostic push")                                                         \
  _Pragma("GCC diagnostic ignored \"-Wmismatched-new-delete\"")                          \
  void* operator new(std::size_t size) {                                                 \
    ::contra::util::alloc_counter().fetch_add(1, std::memory_order_relaxed);             \
    if (void* p = std::malloc(size ? size : 1)) return p;                                \
    throw std::bad_alloc{};                                                              \
  }                                                                                      \
  void* operator new[](std::size_t size) { return ::operator new(size); }                \
  /* The nothrow forms must be replaced too: std::stable_sort's temporary    */          \
  /* buffer allocates through them, and a half-replaced set pairs the        */          \
  /* default nothrow new with the counting delete (ASan flags the mismatch). */          \
  void* operator new(std::size_t size, const std::nothrow_t&) noexcept {                 \
    ::contra::util::alloc_counter().fetch_add(1, std::memory_order_relaxed);             \
    return std::malloc(size ? size : 1);                                                 \
  }                                                                                      \
  void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {           \
    return ::operator new(size, tag);                                                    \
  }                                                                                      \
  void operator delete(void* p) noexcept { std::free(p); }                               \
  void operator delete[](void* p) noexcept { std::free(p); }                             \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }                  \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }                \
  void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }        \
  void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }      \
  _Pragma("GCC diagnostic pop")
// NOLINTEND
