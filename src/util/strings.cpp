#include "util/strings.h"

#include <cctype>

namespace contra::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t j = i;
    while (j < text.size() && !std::isspace(static_cast<unsigned char>(text[j]))) ++j;
    if (j > i) out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace contra::util
