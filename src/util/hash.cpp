#include "util/hash.h"

#include <array>

namespace contra::util {

namespace {
std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}
const std::array<uint32_t, 256>& crc_table() {
  static const auto table = make_crc_table();
  return table;
}
}  // namespace

uint32_t crc32(std::span<const uint8_t> data, uint32_t seed) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (uint8_t byte : data) c = crc_table()[(c ^ byte) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

uint32_t crc32(std::string_view data, uint32_t seed) {
  return crc32(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(data.data()), data.size()),
               seed);
}

uint32_t hash_five_tuple(const FiveTuple& t, uint32_t seed) {
  std::array<uint8_t, 13> bytes{};
  auto put32 = [&](size_t at, uint32_t v) {
    bytes[at] = static_cast<uint8_t>(v >> 24);
    bytes[at + 1] = static_cast<uint8_t>(v >> 16);
    bytes[at + 2] = static_cast<uint8_t>(v >> 8);
    bytes[at + 3] = static_cast<uint8_t>(v);
  };
  put32(0, t.src_ip);
  put32(4, t.dst_ip);
  bytes[8] = static_cast<uint8_t>(t.src_port >> 8);
  bytes[9] = static_cast<uint8_t>(t.src_port);
  bytes[10] = static_cast<uint8_t>(t.dst_port >> 8);
  bytes[11] = static_cast<uint8_t>(t.dst_port);
  bytes[12] = t.protocol;
  return crc32(std::span<const uint8_t>(bytes), seed);
}

uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace contra::util
