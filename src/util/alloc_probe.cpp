#include "util/alloc_probe.h"

namespace contra::util {

std::atomic<uint64_t>& alloc_counter() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

}  // namespace contra::util
