#include "util/logging.h"

#include <cctype>
#include <cstdlib>

namespace contra::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
}

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

std::optional<LogLevel> init_log_level_from_env() {
  const char* value = std::getenv("CONTRA_LOG_LEVEL");
  if (value == nullptr || *value == '\0') return std::nullopt;
  const auto level = parse_log_level(value);
  if (!level) {
    std::cerr << "[WARN] logging: ignoring unrecognized CONTRA_LOG_LEVEL='" << value
              << "' (want trace|debug|info|warn|error|off)\n";
    return std::nullopt;
  }
  set_log_level(*level);
  return level;
}

namespace detail {
void log_emit(LogLevel level, std::string_view module, std::string_view message) {
  std::cerr << "[" << log_level_name(level) << "] " << module << ": " << message << "\n";
}
}  // namespace detail

}  // namespace contra::util
