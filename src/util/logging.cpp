#include "util/logging.h"

namespace contra::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
}

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {
void log_emit(LogLevel level, std::string_view module, std::string_view message) {
  std::cerr << "[" << log_level_name(level) << "] " << module << ": " << message << "\n";
}
}  // namespace detail

}  // namespace contra::util
