#include "util/rng.h"

// Header-only in practice; this TU anchors the module in the build so the
// library layout mirrors one file pair per component.
namespace contra::util {}
