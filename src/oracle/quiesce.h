// Quiescence detection for invariant checking: advance a simulation in
// probe-period steps until the network's forwarding state stops changing.
//
// The digest covers every FwdT entry's routing content — (switch, dst, tag,
// pid) -> (mv, ntag, nhop, usable) — but deliberately excludes the probe
// version and updated_at timestamp, which advance every round even at the
// fixed point. Samples are taken at a fixed phase within the probe period
// (default 0.99, i.e. just before the next origination) so the per-round
// probe wave has fully settled at each sample; a state that is periodic but
// not constant would otherwise alias as stable.
//
// Works with both engines: anything exposing run_until(Time) and now()
// (sim::Simulator, sim::ParallelSimulator).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "dataplane/contra_switch.h"
#include "sim/event_queue.h"

namespace contra::oracle {

struct QuiesceOptions {
  double probe_period_s = 256e-6;
  /// Do not sample before this time (set past the last scheduled failure
  /// plus the metric-expiry window so expiries have resolved).
  double start_s = 0.0;
  /// Sample phase within the probe period, in (0, 1).
  double phase = 0.99;
  /// Consecutive identical digests required.
  int stable_window = 3;
  /// Give up past this simulated time.
  double max_time_s = 1.0;
};

struct QuiesceResult {
  bool quiesced = false;
  sim::Time at = 0.0;
  uint64_t digest = 0;
  int samples = 0;
};

/// Order-independent digest of all switches' FwdT routing state at `now`.
uint64_t fwdt_digest(const std::vector<dataplane::ContraSwitch*>& switches, sim::Time now);

/// Order-independent digest over USABLE FwdT entries only — content, not
/// version/updated_at. Dead (expired / failed-next-hop / withdrawn) entries
/// are excluded on purpose: delta-suppression and triggered updates
/// legitimately freeze a dying row's last content at a different round than
/// the flooding protocol would, while the rows the dataplane actually
/// forwards on must agree exactly. This is the fixed-point comparator for
/// the contrafuzz differentials and the bench digest_match gates.
uint64_t usable_fwdt_digest(const std::vector<const dataplane::ContraSwitch*>& switches,
                            sim::Time now);

template <typename Engine>
QuiesceResult run_to_quiescence(Engine& engine,
                                const std::vector<dataplane::ContraSwitch*>& switches,
                                const QuiesceOptions& options) {
  QuiesceResult result;
  const double period = options.probe_period_s;
  const double first = std::max(engine.now(), options.start_s);
  long k = static_cast<long>(std::floor(first / period));
  uint64_t last = 0;
  int stable = 0;
  while (true) {
    const sim::Time target = (static_cast<double>(++k) + options.phase) * period;
    if (target > options.max_time_s) break;
    engine.run_until(target);
    const uint64_t digest = fwdt_digest(switches, engine.now());
    ++result.samples;
    if (result.samples > 1 && digest == last) {
      if (++stable + 1 >= options.stable_window) {
        result.quiesced = true;
        result.at = engine.now();
        result.digest = digest;
        return result;
      }
    } else {
      stable = 0;
    }
    last = digest;
  }
  result.at = engine.now();
  result.digest = last;
  return result;
}

}  // namespace contra::oracle
