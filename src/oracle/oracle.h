// Centralized routing oracle: the ground truth the distributed protocol is
// checked against (differential testing, Batfish/Minesweeper-style).
//
// Given the compiled product graph and the policy's rank functions, the
// oracle runs a generalized Bellman–Ford directly on the PG, per
// (destination, pid): starting from the probe origin node (dst, origin_tag)
// it relaxes PG edges in probe direction, extending the metrics vector with
// the traffic-direction link exactly like UPDATEMVEC does, and adopts a
// candidate only when its f(pid, mv) rank strictly improves — the same
// adoption rule ContraSwitch::process_probe applies. The fixed point is the
// per-(switch, tag, dst, pid) optimal metrics vector and the set of next
// hops achieving it.
//
// Scope / soundness:
//  * The oracle evaluates a *static* link view (LinkState): up/down flags
//    and a fixed per-link utilization (default 0 — the idle, probe-only
//    network the checker runs against). It is exact when the simulated
//    network is quiescent and link utilizations quantize to the same values
//    the oracle was given.
//  * The fixed point equals the true per-pid optimum only when the
//    subpolicy objective is isotonic (the checker gates its strictness on
//    the compiled IsotonicityReport; see checker.h).
//  * Termination relies on the decomposition's path.len tie-break making
//    adoption strictly improving for monotonic policies. A relaxation
//    budget guards non-terminating inputs; `converged()` reports overflow.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "lang/rank.h"
#include "pg/policy_eval.h"
#include "pg/product_graph.h"

namespace contra::oracle {

/// Static view of link state the oracle routes over. Indexed by directed
/// LinkId; empty vectors mean "all up" / "all idle".
struct LinkState {
  std::vector<bool> up;
  std::vector<double> util;  ///< already-quantized traffic-direction utilization

  bool link_up(topology::LinkId l) const { return up.empty() || up[l]; }
  double link_util(topology::LinkId l) const { return util.empty() ? 0.0 : util[l]; }

  /// All-up state sized for `topo` (convenient to then fail specific cables).
  static LinkState all_up(const topology::Topology& topo);
  /// Fails both directions of the cable containing `link`.
  void fail_cable(const topology::Topology& topo, topology::LinkId link);
};

/// Oracle fixed point at one PG node for one (dst, pid).
struct OracleEntry {
  bool reached = false;
  pg::MetricsVector mv;       ///< optimal metrics (probe-direction accumulation)
  lang::Rank rank;            ///< f(pid, mv)
  /// Traffic-direction next hops achieving the optimal rank, with the tag
  /// the data packet would carry to each (parallel arrays).
  std::vector<topology::LinkId> nhops;
  std::vector<uint32_t> ntags;
};

class RouteOracle {
 public:
  /// Computes the fixed point for every destination the policy admits.
  /// `max_relaxations` = 0 picks an automatic budget from the graph size.
  RouteOracle(const pg::ProductGraph& graph, const pg::PolicyEvaluator& evaluator,
              LinkState links = {}, uint64_t max_relaxations = 0);

  const pg::ProductGraph& graph() const { return *graph_; }
  const pg::PolicyEvaluator& evaluator() const { return *evaluator_; }
  const LinkState& links() const { return links_; }
  uint32_t num_pids() const { return evaluator_->num_pids(); }

  /// False when the relaxation budget ran out (non-monotonic input).
  bool converged() const { return converged_; }

  /// Destinations the policy admits (origin node exists in the PG).
  const std::vector<topology::NodeId>& destinations() const { return destinations_; }

  /// Fixed point at virtual node (sw, tag) for (dst, pid); nullptr when the
  /// node does not exist, the dst is not admitted, or no probe path reaches
  /// it over up links.
  const OracleEntry* entry(topology::NodeId sw, uint32_t tag, topology::NodeId dst,
                           uint32_t pid) const;

  /// Full table for (dst, pid), indexed by PG node id; nullptr when dst is
  /// not admitted.
  const std::vector<OracleEntry>* table(topology::NodeId dst, uint32_t pid) const;

  struct Best {
    uint32_t tag = 0;
    uint32_t pid = 0;
    lang::Rank srank;  ///< s(tag, mv) of the winning candidate
  };
  /// The s()-optimal candidate a source at `sw` should select for `dst` —
  /// BestT's ground truth. nullopt when no finite-rank candidate exists.
  std::optional<Best> best(topology::NodeId sw, topology::NodeId dst) const;

 private:
  static uint64_t key(topology::NodeId dst, uint32_t pid) {
    return (static_cast<uint64_t>(dst) << 32) | pid;
  }
  void compute(topology::NodeId dst, uint64_t budget);

  const pg::ProductGraph* graph_;
  const pg::PolicyEvaluator* evaluator_;
  LinkState links_;
  std::vector<topology::NodeId> destinations_;
  std::unordered_map<uint64_t, std::vector<OracleEntry>> tables_;
  bool converged_ = true;
};

}  // namespace contra::oracle
