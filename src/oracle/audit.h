// Path-optimality auditing: scores sampled dataplane paths (obs::FlowTracker
// INT records) against the routing oracle's rank-optimal next-hop sets — the
// paper's optimality claim reduced to a single gated fraction of delivered
// bytes.
//
// The oracle evaluates a static link view, but the dataplane routes over a
// moving one; the auditor bridges the gap by bucketing samples in time and
// building one oracle per bucket from a caller-supplied LinkState snapshot
// (reconstructed from obs::LinkTimeline utilization, quantized exactly like
// the probes quantize adverts, plus the failure schedule). A hop is optimal
// when it belongs to the union of next hops over every selection-rank-tied
// best candidate at that switch — the same multipath set BestT spreads
// flowlets across — so an ECMP-style spray over rank-equal paths still
// scores 1.0 and only genuinely rank-suboptimal detours lose bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "oracle/oracle.h"

namespace contra::oracle {

/// One delivered-packet path to score (built from an obs::PathSample).
struct AuditSample {
  topology::NodeId dst_switch = 0;
  uint64_t bytes = 0;
  double t = 0.0;
  std::vector<topology::LinkId> hop_links;  ///< traffic-direction fabric links, in order
};

struct AuditResult {
  uint64_t total_samples = 0;
  uint64_t optimal_samples = 0;
  uint64_t total_bytes = 0;
  uint64_t optimal_bytes = 0;
  uint64_t unreached_hops = 0;  ///< hops where the oracle had no candidate at all
  uint32_t buckets = 0;         ///< time buckets (= oracles built)

  double fraction() const {
    return total_bytes ? static_cast<double>(optimal_bytes) / total_bytes : 1.0;
  }
  std::string to_string() const;
  std::string to_json() const;
};

/// Rank-optimal traffic-direction next hops out of `sw` toward `dst`: the
/// union of `nhops` over every (pid, PG node at sw) candidate whose
/// selection rank ties the best. Empty when nothing reaches. Exposed for the
/// hand-checked correctness test.
std::vector<topology::LinkId> optimal_next_hops(const RouteOracle& oracle,
                                                topology::NodeId sw, topology::NodeId dst);

/// Scores every sample: optimal iff each hop leaves its switch on an optimal
/// next hop for the sample's destination under the oracle built for the
/// sample's time bucket. `state_at(t)` supplies the link view at bucket
/// midpoints; `bucket_s` <= 0 collapses everything into one bucket.
AuditResult audit_paths(const pg::ProductGraph& graph, const pg::PolicyEvaluator& evaluator,
                        const std::vector<AuditSample>& samples,
                        const std::function<LinkState(double)>& state_at, double bucket_s);

}  // namespace contra::oracle
