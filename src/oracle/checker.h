// Routing-invariant checker: walks a converged network's FwdT/BestT state
// and asserts it against the centralized RouteOracle.
//
// Invariants (and when each is sound to assert):
//  (a) loop-freedom — the forwarding graph induced by usable FwdT entries,
//      with nodes (switch, tag) per (dst, pid) and the edge each entry's
//      (nhop, ntag) implies, contains no cycle; and every BestT pick
//      delivers (the walk from it reaches dst). Always checked.
//  (b) metric optimality — every usable FwdT entry's cached f-rank equals
//      the oracle's optimum at its virtual node within tolerance, every
//      oracle-reachable node has an entry, and no usable entry exists where
//      the oracle says the node is unreachable. Sound per-pid whenever the
//      subpolicy objectives are isotonic (kIsotonic and kDecomposed); for
//      kWeaklyNonIsotonic only reachability + loop-freedom are asserted.
//      BestT s-rank equality is additionally asserted for kIsotonic, where
//      an f-tie implies an s-tie; under decomposed dynamic-test policies
//      f-tied candidates can carry different s-ranks, so it is skipped.
//  (c) tag-minimization soundness — the oracle computed on the minimized
//      graph and on the un-minimized (pruned-only) graph agree: per
//      (switch, dst) the best s-rank matches, and per (switch, dst, pid)
//      the best f-rank over the switch's tags matches.
//
// Tolerance model: ranks compare component-wise with an absolute tolerance
// that absorbs floating-point association noise between the oracle's
// relaxation order and the probes' accumulation order. The checker assumes
// a quiescent, idle network whose quantized link utilizations match the
// LinkState the oracle was given (fuzz harnesses run probe-only with a
// coarse util quantum so both are exactly zero).
#pragma once

#include <string>
#include <vector>

#include "analysis/isotonicity.h"
#include "compiler/compiler.h"
#include "dataplane/contra_switch.h"
#include "oracle/oracle.h"

namespace contra::oracle {

enum class ViolationKind {
  kForwardingLoop,  ///< cycle in the induced forwarding graph
  kBlackHole,       ///< BestT walk fails to reach the destination
  kMissingEntry,    ///< oracle-reachable node without a usable FwdT entry
  kPhantomEntry,    ///< usable FwdT entry at an oracle-unreachable node
  kRankMismatch,    ///< FwdT f-rank differs from the oracle optimum
  kBestMismatch,    ///< BestT s-rank differs from the oracle optimum
  kTagMergeUnsound, ///< minimized vs un-minimized oracle disagreement
  kOracleDiverged,  ///< relaxation budget exhausted (non-monotonic input)
};

const char* violation_kind_name(ViolationKind kind);

struct Violation {
  ViolationKind kind = ViolationKind::kRankMismatch;
  topology::NodeId sw = topology::kInvalidNode;
  topology::NodeId dst = topology::kInvalidNode;
  uint32_t tag = 0;
  uint32_t pid = 0;
  std::string detail;

  std::string to_string(const topology::Topology& topo) const;
};

struct CheckReport {
  std::vector<Violation> violations;
  uint64_t entries_checked = 0;
  uint64_t best_checked = 0;
  uint64_t walks_checked = 0;
  bool truncated = false;  ///< stopped early at max_violations

  bool ok() const { return violations.empty(); }
  std::string to_string(const topology::Topology& topo) const;
};

struct CheckerOptions {
  /// Absolute per-component rank tolerance (see tolerance model above).
  double tolerance = 1e-3;
  /// Assert (b) entry-rank optimality (disable for weakly non-isotonic).
  bool check_optimality = true;
  /// Assert BestT s-rank equality (sound for kIsotonic only).
  bool check_best = true;
  /// Stop collecting after this many violations.
  size_t max_violations = 64;
};

/// Checker strictness appropriate for a compiled policy's isotonicity class.
CheckerOptions options_for(const analysis::IsotonicityReport& report);

/// Rank equality within per-component absolute tolerance (∞ only equals ∞;
/// widths zero-pad like Rank::compare).
bool ranks_close(const lang::Rank& a, const lang::Rank& b, double tolerance);

/// Invariants (a) + (b) against converged switches. `switches` holds every
/// installed ContraSwitch (any order; parallel-engine callers concatenate
/// the per-shard vectors); `now` is the quiescence timestamp used for
/// usability checks.
CheckReport check_invariants(const RouteOracle& oracle,
                             const std::vector<const dataplane::ContraSwitch*>& switches,
                             sim::Time now, const CheckerOptions& options = {});

/// Invariant (c): rebuilds the PG without tag minimization (build_unpruned +
/// prune_useless) and compares oracle fixed points on both graphs.
CheckReport check_tag_minimization(const compiler::CompileResult& compiled,
                                   const LinkState& links, double tolerance = 1e-3);

}  // namespace contra::oracle
