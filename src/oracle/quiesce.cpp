#include "oracle/quiesce.h"

#include <bit>

#include "util/hash.h"

namespace contra::oracle {

uint64_t fwdt_digest(const std::vector<dataplane::ContraSwitch*>& switches, sim::Time now) {
  // Commutative accumulation: iteration order over the hash maps (and over
  // shards) must not matter, so per-entry hashes are mixed independently and
  // summed.
  uint64_t acc = 0x9e3779b97f4a7c15ULL;
  for (const dataplane::ContraSwitch* sw : switches) {
    sw->for_each_fwd_entry([&](topology::NodeId dst, uint32_t tag, uint32_t pid,
                               const dataplane::ContraSwitch::FwdEntry& entry) {
      uint64_t h = util::hash_combine(sw->node_id(), dst);
      h = util::hash_combine(h, tag);
      h = util::hash_combine(h, pid);
      h = util::hash_combine(h, entry.nhop);
      h = util::hash_combine(h, entry.ntag);
      h = util::hash_combine(h, std::bit_cast<uint64_t>(entry.mv.util));
      h = util::hash_combine(h, std::bit_cast<uint64_t>(entry.mv.lat));
      h = util::hash_combine(h, std::bit_cast<uint64_t>(entry.mv.len));
      h = util::hash_combine(h, sw->entry_usable(entry, now) ? 1u : 0u);
      acc += util::mix64(h);
    });
  }
  return acc;
}

uint64_t usable_fwdt_digest(const std::vector<const dataplane::ContraSwitch*>& switches,
                            sim::Time now) {
  uint64_t acc = 0x9e3779b97f4a7c15ULL;
  for (const dataplane::ContraSwitch* sw : switches) {
    sw->for_each_fwd_entry([&](topology::NodeId dst, uint32_t tag, uint32_t pid,
                               const dataplane::ContraSwitch::FwdEntry& entry) {
      if (!sw->entry_usable(entry, now)) return;
      uint64_t h = util::hash_combine(sw->node_id(), dst);
      h = util::hash_combine(h, tag);
      h = util::hash_combine(h, pid);
      h = util::hash_combine(h, entry.nhop);
      h = util::hash_combine(h, entry.ntag);
      h = util::hash_combine(h, std::bit_cast<uint64_t>(entry.mv.util));
      h = util::hash_combine(h, std::bit_cast<uint64_t>(entry.mv.lat));
      h = util::hash_combine(h, std::bit_cast<uint64_t>(entry.mv.len));
      acc += util::mix64(h);
    });
  }
  return acc;
}

}  // namespace contra::oracle
