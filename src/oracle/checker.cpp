#include "oracle/checker.h"

#include <cmath>
#include <sstream>
#include <unordered_map>

#include "pg/prune.h"

namespace contra::oracle {

using dataplane::ContraSwitch;
using topology::LinkId;
using topology::NodeId;

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kForwardingLoop: return "forwarding-loop";
    case ViolationKind::kBlackHole: return "black-hole";
    case ViolationKind::kMissingEntry: return "missing-entry";
    case ViolationKind::kPhantomEntry: return "phantom-entry";
    case ViolationKind::kRankMismatch: return "rank-mismatch";
    case ViolationKind::kBestMismatch: return "best-mismatch";
    case ViolationKind::kTagMergeUnsound: return "tag-merge-unsound";
    case ViolationKind::kOracleDiverged: return "oracle-diverged";
  }
  return "unknown";
}

std::string Violation::to_string(const topology::Topology& topo) const {
  std::ostringstream out;
  out << violation_kind_name(kind);
  if (sw != topology::kInvalidNode) out << " sw=" << topo.name(sw);
  if (dst != topology::kInvalidNode) out << " dst=" << topo.name(dst);
  out << " tag=" << tag << " pid=" << pid;
  if (!detail.empty()) out << ": " << detail;
  return out.str();
}

std::string CheckReport::to_string(const topology::Topology& topo) const {
  std::ostringstream out;
  out << (ok() ? "OK" : "VIOLATIONS") << " (entries=" << entries_checked
      << " best=" << best_checked << " walks=" << walks_checked << ")";
  for (const Violation& v : violations) out << "\n  " << v.to_string(topo);
  if (truncated) out << "\n  ... (truncated)";
  return out.str();
}

CheckerOptions options_for(const analysis::IsotonicityReport& report) {
  CheckerOptions options;
  switch (report.classification) {
    case analysis::IsotonicityClass::kIsotonic:
      break;  // full strictness
    case analysis::IsotonicityClass::kDecomposed:
      // Per-pid f-optimality holds (each subpolicy is isotonic), but f-tied
      // candidates of dynamic-test policies may carry different s-ranks.
      options.check_best = false;
      break;
    case analysis::IsotonicityClass::kWeaklyNonIsotonic:
      // Best-probe propagation may legitimately settle on a non-optimal
      // path; only reachability and loop-freedom are guaranteed.
      options.check_optimality = false;
      options.check_best = false;
      break;
  }
  return options;
}

bool ranks_close(const lang::Rank& a, const lang::Rank& b, double tolerance) {
  if (a.is_infinite() || b.is_infinite()) return a.is_infinite() == b.is_infinite();
  const auto& ca = a.components();
  const auto& cb = b.components();
  const size_t width = ca.size() > cb.size() ? ca.size() : cb.size();
  for (size_t i = 0; i < width; ++i) {
    const double va = i < ca.size() ? ca[i].to_double() : 0.0;
    const double vb = i < cb.size() ? cb[i].to_double() : 0.0;
    if (std::abs(va - vb) > tolerance) return false;
  }
  return true;
}

namespace {

class Collector {
 public:
  Collector(CheckReport& report, size_t cap) : report_(report), cap_(cap) {}

  bool full() const { return report_.violations.size() >= cap_; }

  void add(ViolationKind kind, NodeId sw, NodeId dst, uint32_t tag, uint32_t pid,
           std::string detail) {
    if (full()) {
      report_.truncated = true;
      return;
    }
    report_.violations.push_back({kind, sw, dst, tag, pid, std::move(detail)});
  }

 private:
  CheckReport& report_;
  size_t cap_;
};

std::string rank_pair(const lang::Rank& got, const lang::Rank& want) {
  return "got " + got.to_string() + ", oracle " + want.to_string();
}

}  // namespace

CheckReport check_invariants(const RouteOracle& oracle,
                             const std::vector<const ContraSwitch*>& switches,
                             sim::Time now, const CheckerOptions& options) {
  CheckReport report;
  Collector out(report, options.max_violations);
  const pg::ProductGraph& graph = oracle.graph();
  const topology::Topology& topo = graph.topo();

  if (!oracle.converged()) {
    out.add(ViolationKind::kOracleDiverged, topology::kInvalidNode, topology::kInvalidNode,
            0, 0, "relaxation budget exhausted; input likely non-monotonic");
    return report;
  }

  std::vector<const ContraSwitch*> by_node(topo.num_nodes(), nullptr);
  for (const ContraSwitch* sw : switches) by_node[sw->node_id()] = sw;

  // ---- (b) entry-level checks against the oracle tables --------------------
  for (NodeId dst : oracle.destinations()) {
    for (uint32_t pid = 0; pid < oracle.num_pids() && !out.full(); ++pid) {
      const std::vector<OracleEntry>* table = oracle.table(dst, pid);
      if (table == nullptr) continue;
      for (uint32_t node = 0; node < graph.num_nodes(); ++node) {
        const OracleEntry& want = (*table)[node];
        if (!want.reached) continue;
        const NodeId sw = graph.node_location(node);
        if (sw == dst) continue;  // the destination never forwards to itself
        const uint32_t tag = graph.node_tag(node);
        const ContraSwitch* device = by_node[sw];
        if (device == nullptr) continue;  // partial installs (unit tests)
        ++report.entries_checked;
        const ContraSwitch::FwdEntry* got = device->fwd_entry(dst, tag, pid);
        if (got == nullptr || !device->entry_usable(*got, now)) {
          out.add(ViolationKind::kMissingEntry, sw, dst, tag, pid,
                  got == nullptr ? "no FwdT entry for oracle-reachable node"
                                 : "FwdT entry present but unusable at quiescence");
          continue;
        }
        if (options.check_optimality && !ranks_close(got->rank, want.rank, options.tolerance)) {
          out.add(ViolationKind::kRankMismatch, sw, dst, tag, pid,
                  rank_pair(got->rank, want.rank));
        }
      }
    }
  }

  // Phantoms: usable entries the oracle says cannot exist.
  for (const ContraSwitch* device : switches) {
    if (out.full()) break;
    const NodeId sw = device->node_id();
    device->for_each_fwd_entry([&](NodeId dst, uint32_t tag, uint32_t pid,
                                   const ContraSwitch::FwdEntry& entry) {
      if (sw == dst || out.full()) return;
      if (!device->entry_usable(entry, now)) return;
      if (oracle.entry(sw, tag, dst, pid) == nullptr) {
        out.add(ViolationKind::kPhantomEntry, sw, dst, tag, pid,
                "usable FwdT entry at oracle-unreachable virtual node");
      }
    });
  }

  // ---- (a) loop-freedom of the induced forwarding graph --------------------
  // Per (dst, pid) the usable entries form a functional graph over (sw, tag);
  // tri-color DFS (iterative, since each node has out-degree <= 1 a simple
  // walk suffices) finds any cycle.
  for (NodeId dst : oracle.destinations()) {
    for (uint32_t pid = 0; pid < oracle.num_pids() && !out.full(); ++pid) {
      // color: 0 unvisited, 1 on current walk, 2 proven acyclic.
      std::unordered_map<uint64_t, uint8_t> color;
      auto state_key = [](NodeId sw, uint32_t tag) {
        return (static_cast<uint64_t>(sw) << 32) | tag;
      };
      for (const ContraSwitch* start : switches) {
        if (out.full()) break;
        std::vector<std::pair<NodeId, uint32_t>> starts;
        start->for_each_fwd_entry(
            [&](NodeId d, uint32_t tag, uint32_t p, const ContraSwitch::FwdEntry& entry) {
              if (d == dst && p == pid && start->entry_usable(entry, now)) {
                starts.emplace_back(start->node_id(), tag);
              }
            });
        for (const auto& [sw0, tag0] : starts) {
          NodeId sw = sw0;
          uint32_t tag = tag0;
          std::vector<uint64_t> walk;
          while (true) {
            const uint64_t k = state_key(sw, tag);
            const uint8_t c = color[k];
            if (c == 2) break;
            if (c == 1) {
              std::ostringstream cyc;
              cyc << "cycle through";
              for (uint64_t wk : walk) {
                cyc << " " << topo.name(static_cast<NodeId>(wk >> 32)) << "/t"
                    << static_cast<uint32_t>(wk);
              }
              out.add(ViolationKind::kForwardingLoop, sw, dst, tag, pid, cyc.str());
              break;
            }
            color[k] = 1;
            walk.push_back(k);
            if (sw == dst) break;  // delivered
            const ContraSwitch* device = by_node[sw];
            const ContraSwitch::FwdEntry* entry =
                device == nullptr ? nullptr : device->fwd_entry(dst, tag, pid);
            if (entry == nullptr || !device->entry_usable(*entry, now)) break;  // dead end
            const topology::DirectedLink& link = topo.link(entry->nhop);
            sw = link.to;
            tag = entry->ntag;
          }
          for (uint64_t wk : walk) color[wk] = 2;
        }
      }
    }
  }

  // ---- BestT: existence, delivery walk, and (optionally) s-rank ------------
  for (NodeId dst : oracle.destinations()) {
    if (out.full()) break;
    for (const ContraSwitch* device : switches) {
      if (out.full()) break;
      const NodeId sw = device->node_id();
      if (sw == dst) continue;
      const auto want = oracle.best(sw, dst);
      const auto got = device->best_choice(dst, now);
      if (!want.has_value()) {
        if (got.has_value()) {
          out.add(ViolationKind::kBestMismatch, sw, dst, got->tag, got->pid,
                  "BestT has a choice where the oracle has none");
        }
        continue;
      }
      ++report.best_checked;
      if (!got.has_value()) {
        out.add(ViolationKind::kBlackHole, sw, dst, want->tag, want->pid,
                "no BestT choice for an oracle-reachable destination");
        continue;
      }
      if (options.check_best && !ranks_close(got->rank, want->srank, options.tolerance)) {
        out.add(ViolationKind::kBestMismatch, sw, dst, got->tag, got->pid,
                rank_pair(got->rank, want->srank));
      }
      // Delivery walk from the pick.
      ++report.walks_checked;
      NodeId at = sw;
      uint32_t tag = got->tag;
      const uint32_t pid = got->pid;
      uint32_t steps = 0;
      const uint32_t max_steps = graph.num_nodes() + 1;
      while (at != dst) {
        if (++steps > max_steps) {
          out.add(ViolationKind::kForwardingLoop, at, dst, tag, pid,
                  "BestT walk exceeded the virtual-node count");
          break;
        }
        const ContraSwitch* hop = by_node[at];
        const ContraSwitch::FwdEntry* entry =
            hop == nullptr ? nullptr : hop->fwd_entry(dst, tag, pid);
        if (entry == nullptr || !hop->entry_usable(*entry, now)) {
          out.add(ViolationKind::kBlackHole, at, dst, tag, pid,
                  "BestT walk hit a switch without a usable entry");
          break;
        }
        at = topo.link(entry->nhop).to;
        tag = entry->ntag;
      }
    }
  }

  return report;
}

CheckReport check_tag_minimization(const compiler::CompileResult& compiled,
                                   const LinkState& links, double tolerance) {
  CheckReport report;
  Collector out(report, 64);
  const topology::Topology& topo = compiled.graph.topo();

  // Reference graph: same construction, pruning, but no tag merge.
  pg::ProductGraph raw = pg::build_unpruned(topo, compiled.decomposition);
  pg::prune_useless(raw);
  const pg::PolicyEvaluator raw_eval(raw, compiled.decomposition);
  const pg::PolicyEvaluator min_eval(compiled.graph, compiled.decomposition);

  const RouteOracle minimized(compiled.graph, min_eval, links);
  const RouteOracle reference(raw, raw_eval, links);

  if (!minimized.converged() || !reference.converged()) {
    out.add(ViolationKind::kOracleDiverged, topology::kInvalidNode, topology::kInvalidNode,
            0, 0, "oracle diverged during tag-minimization comparison");
    return report;
  }

  // Destinations must agree: the merge may never create or destroy an
  // admissible destination.
  if (minimized.destinations() != reference.destinations()) {
    out.add(ViolationKind::kTagMergeUnsound, topology::kInvalidNode, topology::kInvalidNode,
            0, 0, "admitted destination sets differ pre/post merge");
    return report;
  }

  // Per (sw, dst, pid): the best f-rank over the switch's tags must agree;
  // per (sw, dst): the best s-rank must agree. Tags themselves differ
  // between the graphs, so only tag-aggregated quantities are comparable.
  auto best_f = [](const RouteOracle& oracle, NodeId sw, NodeId dst,
                   uint32_t pid) -> std::optional<lang::Rank> {
    const std::vector<OracleEntry>* table = oracle.table(dst, pid);
    if (table == nullptr) return std::nullopt;
    std::optional<lang::Rank> best;
    for (uint32_t node : oracle.graph().nodes_at(sw)) {
      const OracleEntry& e = (*table)[node];
      if (!e.reached) continue;
      if (!best || e.rank < *best) best = e.rank;
    }
    return best;
  };

  for (NodeId dst : minimized.destinations()) {
    for (NodeId sw = 0; sw < topo.num_nodes() && !out.full(); ++sw) {
      if (sw == dst) continue;
      ++report.entries_checked;
      for (uint32_t pid = 0; pid < minimized.num_pids(); ++pid) {
        const auto a = best_f(minimized, sw, dst, pid);
        const auto b = best_f(reference, sw, dst, pid);
        if (a.has_value() != b.has_value()) {
          out.add(ViolationKind::kTagMergeUnsound, sw, dst, 0, pid,
                  a.has_value() ? "reachable only post-merge" : "reachable only pre-merge");
        } else if (a && !ranks_close(*a, *b, tolerance)) {
          out.add(ViolationKind::kTagMergeUnsound, sw, dst, 0, pid,
                  "f-rank changed by merge: " + rank_pair(*a, *b));
        }
      }
      const auto sa = minimized.best(sw, dst);
      const auto sb = reference.best(sw, dst);
      ++report.best_checked;
      if (sa.has_value() != sb.has_value()) {
        out.add(ViolationKind::kTagMergeUnsound, sw, dst, 0, 0,
                sa.has_value() ? "selectable only post-merge" : "selectable only pre-merge");
      } else if (sa && !ranks_close(sa->srank, sb->srank, tolerance)) {
        out.add(ViolationKind::kTagMergeUnsound, sw, dst, sa->tag, sa->pid,
                "s-rank changed by merge: " + rank_pair(sa->srank, sb->srank));
      }
    }
  }
  return report;
}

}  // namespace contra::oracle
