#include "oracle/oracle.h"

#include <deque>

namespace contra::oracle {

using topology::LinkId;
using topology::NodeId;

LinkState LinkState::all_up(const topology::Topology& topo) {
  LinkState state;
  state.up.assign(topo.num_links(), true);
  return state;
}

void LinkState::fail_cable(const topology::Topology& topo, LinkId link) {
  if (up.empty()) up.assign(topo.num_links(), true);
  up[link] = false;
  const LinkId rev = topo.link(link).reverse;
  if (rev != topology::kInvalidLink) up[rev] = false;
}

RouteOracle::RouteOracle(const pg::ProductGraph& graph, const pg::PolicyEvaluator& evaluator,
                         LinkState links, uint64_t max_relaxations)
    : graph_(&graph), evaluator_(&evaluator), links_(std::move(links)) {
  // Budget per (dst, pid) run. Monotonic policies converge in O(nodes*edges)
  // relaxations; the factor absorbs equal-rank churn on dense graphs.
  uint64_t budget = max_relaxations;
  if (budget == 0) {
    const uint64_t n = graph_->num_nodes();
    const uint64_t e = graph_->num_edges();
    budget = 64 * (n + 1) * (e + 1);
  }
  for (NodeId d = 0; d < graph_->topo().num_nodes(); ++d) compute(d, budget);
}

void RouteOracle::compute(NodeId dst, uint64_t budget) {
  const uint32_t origin_tag = graph_->origin_tag(dst);
  if (origin_tag == pg::kInvalidTag) return;
  const uint32_t origin = graph_->node_index(dst, origin_tag);
  if (origin == pg::kInvalidPgNode) return;
  destinations_.push_back(dst);

  const uint32_t n = graph_->num_nodes();
  const topology::Topology& topo = graph_->topo();
  for (uint32_t pid = 0; pid < evaluator_->num_pids(); ++pid) {
    std::vector<OracleEntry> dist(n);
    std::vector<char> queued(n, 0);
    std::deque<uint32_t> work;
    dist[origin].reached = true;
    dist[origin].rank = evaluator_->propagation_rank(pid, dist[origin].mv);
    work.push_back(origin);
    queued[origin] = 1;

    uint64_t remaining = budget;
    while (!work.empty()) {
      if (remaining-- == 0) {
        converged_ = false;
        break;
      }
      const uint32_t u = work.front();
      work.pop_front();
      queued[u] = 0;
      const uint32_t u_tag = graph_->node_tag(u);
      for (const pg::PgEdge& edge : graph_->out_edges(u)) {
        // Probes need the probe-direction link; traffic needs its reverse.
        // fail_cable takes both down together, but check each for safety.
        const LinkId traffic_link = topo.link(edge.link).reverse;
        if (!links_.link_up(edge.link) || !links_.link_up(traffic_link)) continue;
        const uint32_t v = graph_->node_index(edge.to, edge.to_tag);
        if (v == pg::kInvalidPgNode) continue;  // pruned target

        pg::MetricsVector mv = dist[u].mv;
        mv.extend(links_.link_util(traffic_link), topo.link(traffic_link).delay_s * 1e6);
        lang::Rank rank = evaluator_->propagation_rank(pid, mv);

        OracleEntry& dv = dist[v];
        if (!dv.reached || rank < dv.rank) {
          dv.reached = true;
          dv.mv = mv;
          dv.rank = std::move(rank);
          dv.nhops.assign(1, traffic_link);
          dv.ntags.assign(1, u_tag);
          if (!queued[v]) {
            work.push_back(v);
            queued[v] = 1;
          }
        } else if (rank == dv.rank) {
          bool known = false;
          for (size_t i = 0; i < dv.nhops.size(); ++i) {
            if (dv.nhops[i] == traffic_link && dv.ntags[i] == u_tag) {
              known = true;
              break;
            }
          }
          if (!known) {
            dv.nhops.push_back(traffic_link);
            dv.ntags.push_back(u_tag);
          }
        }
      }
    }
    tables_.emplace(key(dst, pid), std::move(dist));
  }
}

const OracleEntry* RouteOracle::entry(NodeId sw, uint32_t tag, NodeId dst,
                                      uint32_t pid) const {
  const std::vector<OracleEntry>* t = table(dst, pid);
  if (t == nullptr) return nullptr;
  const uint32_t node = graph_->node_index(sw, tag);
  if (node == pg::kInvalidPgNode) return nullptr;
  const OracleEntry& e = (*t)[node];
  return e.reached ? &e : nullptr;
}

const std::vector<OracleEntry>* RouteOracle::table(NodeId dst, uint32_t pid) const {
  auto it = tables_.find(key(dst, pid));
  return it == tables_.end() ? nullptr : &it->second;
}

std::optional<RouteOracle::Best> RouteOracle::best(NodeId sw, NodeId dst) const {
  // A switch never selects a route to itself: delivery short-circuits before
  // any BestT lookup, and BestT holds no self-entries.
  if (sw == dst) return std::nullopt;
  std::optional<Best> best;
  for (uint32_t pid = 0; pid < num_pids(); ++pid) {
    const std::vector<OracleEntry>* t = table(dst, pid);
    if (t == nullptr) continue;
    for (uint32_t node : graph_->nodes_at(sw)) {
      const OracleEntry& e = (*t)[node];
      if (!e.reached) continue;
      const uint32_t tag = graph_->node_tag(node);
      lang::Rank s = evaluator_->selection_rank(tag, e.mv);
      if (s.is_infinite()) continue;
      if (!best || s < best->srank) best = Best{tag, pid, std::move(s)};
    }
  }
  return best;
}

}  // namespace contra::oracle
