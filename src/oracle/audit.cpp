#include "oracle/audit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace contra::oracle {

using topology::LinkId;
using topology::NodeId;

std::string AuditResult::to_string() const {
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "optimal bytes %.1f%% (%llu/%llu), samples %llu/%llu, %u time buckets",
                fraction() * 100.0, static_cast<unsigned long long>(optimal_bytes),
                static_cast<unsigned long long>(total_bytes),
                static_cast<unsigned long long>(optimal_samples),
                static_cast<unsigned long long>(total_samples), buckets);
  return buf;
}

std::string AuditResult::to_json() const {
  char buf[288];
  std::snprintf(buf, sizeof buf,
                "{\"optimal_fraction\":%.9g,\"optimal_bytes\":%llu,\"total_bytes\":%llu,"
                "\"optimal_samples\":%llu,\"total_samples\":%llu,\"unreached_hops\":%llu,"
                "\"buckets\":%u}",
                fraction(), static_cast<unsigned long long>(optimal_bytes),
                static_cast<unsigned long long>(total_bytes),
                static_cast<unsigned long long>(optimal_samples),
                static_cast<unsigned long long>(total_samples),
                static_cast<unsigned long long>(unreached_hops), buckets);
  return buf;
}

std::vector<LinkId> optimal_next_hops(const RouteOracle& oracle, NodeId sw, NodeId dst) {
  std::vector<LinkId> out;
  if (sw == dst) return out;
  const pg::ProductGraph& graph = oracle.graph();
  const pg::PolicyEvaluator& evaluator = oracle.evaluator();

  // Pass 1: the best selection rank over all (pid, virtual node) candidates —
  // exactly RouteOracle::best — then pass 2 unions the next hops of every
  // rank-tied candidate, because BestT may spread flowlets across any of
  // them without being suboptimal.
  std::optional<lang::Rank> best;
  for (uint32_t pid = 0; pid < oracle.num_pids(); ++pid) {
    for (uint32_t node : graph.nodes_at(sw)) {
      const OracleEntry* e = oracle.entry(sw, graph.node_tag(node), dst, pid);
      if (e == nullptr) continue;
      lang::Rank s = evaluator.selection_rank(graph.node_tag(node), e->mv);
      if (s.is_infinite()) continue;
      if (!best || s < *best) best = std::move(s);
    }
  }
  if (!best) return out;

  for (uint32_t pid = 0; pid < oracle.num_pids(); ++pid) {
    for (uint32_t node : graph.nodes_at(sw)) {
      const OracleEntry* e = oracle.entry(sw, graph.node_tag(node), dst, pid);
      if (e == nullptr) continue;
      lang::Rank s = evaluator.selection_rank(graph.node_tag(node), e->mv);
      if (s.is_infinite() || *best < s) continue;
      for (LinkId nhop : e->nhops) {
        if (std::find(out.begin(), out.end(), nhop) == out.end()) out.push_back(nhop);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

AuditResult audit_paths(const pg::ProductGraph& graph, const pg::PolicyEvaluator& evaluator,
                        const std::vector<AuditSample>& samples,
                        const std::function<LinkState(double)>& state_at, double bucket_s) {
  AuditResult result;
  if (samples.empty()) return result;

  // Group sample indices by time bucket so each bucket builds one oracle.
  std::map<int64_t, std::vector<size_t>> by_bucket;
  for (size_t i = 0; i < samples.size(); ++i) {
    const int64_t bucket =
        bucket_s > 0 ? static_cast<int64_t>(std::floor(samples[i].t / bucket_s)) : 0;
    by_bucket[bucket].push_back(i);
  }

  const topology::Topology& topo = graph.topo();
  for (const auto& [bucket, idxs] : by_bucket) {
    const double mid = bucket_s > 0 ? (bucket + 0.5) * bucket_s : samples[idxs[0]].t;
    RouteOracle oracle(graph, evaluator, state_at ? state_at(mid) : LinkState{});
    ++result.buckets;

    // The optimal sets repeat heavily within a bucket; memoize per (sw, dst).
    std::map<std::pair<NodeId, NodeId>, std::vector<LinkId>> optimal_cache;
    for (size_t i : idxs) {
      const AuditSample& sample = samples[i];
      ++result.total_samples;
      result.total_bytes += sample.bytes;
      bool optimal = true;
      for (LinkId hop : sample.hop_links) {
        const NodeId sw = topo.link(hop).from;
        if (sw == sample.dst_switch) break;  // delivered; trailing hops can't exist
        auto key = std::make_pair(sw, sample.dst_switch);
        auto it = optimal_cache.find(key);
        if (it == optimal_cache.end()) {
          it = optimal_cache.emplace(key, optimal_next_hops(oracle, sw, sample.dst_switch))
                   .first;
        }
        const std::vector<LinkId>& allowed = it->second;
        if (allowed.empty()) {
          ++result.unreached_hops;
          optimal = false;
          break;
        }
        if (!std::binary_search(allowed.begin(), allowed.end(), hop)) {
          optimal = false;
          break;
        }
      }
      if (optimal) {
        ++result.optimal_samples;
        result.optimal_bytes += sample.bytes;
      }
    }
  }
  return result;
}

}  // namespace contra::oracle
