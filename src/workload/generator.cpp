#include "workload/generator.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/parallel_simulator.h"
#include "util/hash.h"

namespace contra::workload {

std::vector<GeneratedFlow> generate_poisson(const EmpiricalCdf& sizes,
                                            const std::vector<sim::HostId>& senders,
                                            const std::vector<sim::HostId>& receivers,
                                            const WorkloadConfig& config) {
  if (senders.empty() || receivers.empty()) {
    throw std::invalid_argument("workload needs senders and receivers");
  }
  util::Rng rng(config.seed);
  const double bits_per_flow = sizes.mean_bytes() * 8.0 * config.size_scale;
  const double rate_per_sender = config.load * config.sender_capacity_bps / bits_per_flow;

  std::vector<GeneratedFlow> flows;
  for (sim::HostId sender : senders) {
    sim::Time t = config.start + rng.exponential(rate_per_sender);
    while (t < config.start + config.duration) {
      GeneratedFlow flow;
      flow.src = sender;
      flow.bytes = std::max<uint64_t>(
          1, static_cast<uint64_t>(sizes.sample(rng) * config.size_scale));
      flow.start = t;
      do {
        flow.dst = receivers[static_cast<size_t>(
            rng.uniform_int(0, static_cast<int64_t>(receivers.size()) - 1))];
      } while (flow.dst == sender && receivers.size() > 1);
      flows.push_back(flow);
      t += rng.exponential(rate_per_sender);
    }
  }
  return flows;
}

FlowStream::FlowStream(const EmpiricalCdf& sizes, std::vector<sim::HostId> senders,
                       std::vector<sim::HostId> receivers, const WorkloadConfig& config)
    : sizes_(&sizes), receivers_(std::move(receivers)), config_(config) {
  if (senders.empty() || receivers_.empty()) {
    throw std::invalid_argument("workload needs senders and receivers");
  }
  const double bits_per_flow = sizes.mean_bytes() * 8.0 * config.size_scale;
  rate_per_sender_ = config.load * config.sender_capacity_bps / bits_per_flow;
  heap_.reserve(senders.size());
  for (uint32_t i = 0; i < senders.size(); ++i) {
    SenderState s;
    s.rng = util::Rng(util::hash_combine(config.seed, i));
    s.host = senders[i];
    s.index = i;
    s.next_t = config.start + s.rng.exponential(rate_per_sender_);
    if (s.next_t < config.start + config.duration) heap_.push_back(std::move(s));
  }
  std::make_heap(heap_.begin(), heap_.end(), ByArrival{});
}

sim::Time FlowStream::next_start() const {
  return heap_.empty() ? std::numeric_limits<double>::infinity() : heap_.front().next_t;
}

bool FlowStream::next(GeneratedFlow* out) {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), ByArrival{});
  SenderState& s = heap_.back();
  out->src = s.host;
  out->start = s.next_t;
  out->bytes = std::max<uint64_t>(
      1, static_cast<uint64_t>(sizes_->sample(s.rng) * config_.size_scale));
  do {
    out->dst = receivers_[static_cast<size_t>(
        s.rng.uniform_int(0, static_cast<int64_t>(receivers_.size()) - 1))];
  } while (out->dst == s.host && receivers_.size() > 1);
  ++emitted_;
  s.next_t += s.rng.exponential(rate_per_sender_);
  if (s.next_t < config_.start + config_.duration) {
    std::push_heap(heap_.begin(), heap_.end(), ByArrival{});
  } else {
    heap_.pop_back();
  }
  return true;
}

void submit(sim::TransportManager& transport, const std::vector<GeneratedFlow>& flows) {
  for (const GeneratedFlow& flow : flows) {
    transport.start_flow(flow.src, flow.dst, flow.bytes, flow.start);
  }
}

void submit(sim::ParallelTransport& transport, const std::vector<GeneratedFlow>& flows) {
  for (const GeneratedFlow& flow : flows) {
    transport.start_flow(flow.src, flow.dst, flow.bytes, flow.start);
  }
}

uint64_t total_bytes(const std::vector<GeneratedFlow>& flows) {
  uint64_t total = 0;
  for (const GeneratedFlow& flow : flows) total += flow.bytes;
  return total;
}

}  // namespace contra::workload
