#include "workload/generator.h"

#include <algorithm>
#include <stdexcept>

#include "sim/parallel_simulator.h"

namespace contra::workload {

std::vector<GeneratedFlow> generate_poisson(const EmpiricalCdf& sizes,
                                            const std::vector<sim::HostId>& senders,
                                            const std::vector<sim::HostId>& receivers,
                                            const WorkloadConfig& config) {
  if (senders.empty() || receivers.empty()) {
    throw std::invalid_argument("workload needs senders and receivers");
  }
  util::Rng rng(config.seed);
  const double bits_per_flow = sizes.mean_bytes() * 8.0 * config.size_scale;
  const double rate_per_sender = config.load * config.sender_capacity_bps / bits_per_flow;

  std::vector<GeneratedFlow> flows;
  for (sim::HostId sender : senders) {
    sim::Time t = config.start + rng.exponential(rate_per_sender);
    while (t < config.start + config.duration) {
      GeneratedFlow flow;
      flow.src = sender;
      flow.bytes = std::max<uint64_t>(
          1, static_cast<uint64_t>(sizes.sample(rng) * config.size_scale));
      flow.start = t;
      do {
        flow.dst = receivers[static_cast<size_t>(
            rng.uniform_int(0, static_cast<int64_t>(receivers.size()) - 1))];
      } while (flow.dst == sender && receivers.size() > 1);
      flows.push_back(flow);
      t += rng.exponential(rate_per_sender);
    }
  }
  return flows;
}

void submit(sim::TransportManager& transport, const std::vector<GeneratedFlow>& flows) {
  for (const GeneratedFlow& flow : flows) {
    transport.start_flow(flow.src, flow.dst, flow.bytes, flow.start);
  }
}

void submit(sim::ParallelTransport& transport, const std::vector<GeneratedFlow>& flows) {
  for (const GeneratedFlow& flow : flows) {
    transport.start_flow(flow.src, flow.dst, flow.bytes, flow.start);
  }
}

uint64_t total_bytes(const std::vector<GeneratedFlow>& flows) {
  uint64_t total = 0;
  for (const GeneratedFlow& flow : flows) total += flow.bytes;
  return total;
}

}  // namespace contra::workload
