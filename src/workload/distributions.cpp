#include "workload/distributions.h"

#include <cmath>
#include <stdexcept>

namespace contra::workload {

EmpiricalCdf::EmpiricalCdf(std::vector<Point> points) : points_(std::move(points)) {
  if (points_.empty()) throw std::invalid_argument("empty CDF");
  // The first point is a point mass; later segments interpolate between
  // consecutive points (midpoint rule for the analytic mean).
  double mean = points_[0].cum_prob * points_[0].bytes;
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].cum_prob <= points_[i - 1].cum_prob) {
      throw std::invalid_argument("CDF probabilities must increase");
    }
    mean += (points_[i].cum_prob - points_[i - 1].cum_prob) * 0.5 *
            (points_[i - 1].bytes + points_[i].bytes);
  }
  if (std::abs(points_.back().cum_prob - 1.0) > 1e-9) {
    throw std::invalid_argument("CDF must end at 1.0");
  }
  mean_bytes_ = mean;
}

uint64_t EmpiricalCdf::sample(util::Rng& rng) const {
  const double u = rng.uniform();
  if (u <= points_[0].cum_prob) {
    return static_cast<uint64_t>(std::max(1.0, points_[0].bytes));
  }
  for (size_t i = 1; i < points_.size(); ++i) {
    if (u > points_[i].cum_prob) continue;
    const double span = points_[i].cum_prob - points_[i - 1].cum_prob;
    const double frac = span > 0 ? (u - points_[i - 1].cum_prob) / span : 1.0;
    // Log-linear interpolation matches heavy-tailed shapes better than
    // linear.
    const double lo = std::max(points_[i - 1].bytes, 1.0);
    const double hi = std::max(points_[i].bytes, 1.0);
    const double bytes = std::exp(std::log(lo) + frac * (std::log(hi) - std::log(lo)));
    return static_cast<uint64_t>(std::max(1.0, bytes));
  }
  return static_cast<uint64_t>(std::max(1.0, points_.back().bytes));
}

const EmpiricalCdf& web_search_flow_sizes() {
  static const EmpiricalCdf cdf({
      {6e3, 0.15},
      {13e3, 0.20},
      {19e3, 0.30},
      {33e3, 0.40},
      {53e3, 0.53},
      {133e3, 0.60},
      {667e3, 0.70},
      {1333e3, 0.80},
      {3333e3, 0.90},
      {6667e3, 0.97},
      {20000e3, 1.00},
  });
  return cdf;
}

const EmpiricalCdf& cache_flow_sizes() {
  static const EmpiricalCdf cdf({
      {100, 0.10},
      {300, 0.30},
      {600, 0.50},
      {1e3, 0.60},
      {3e3, 0.70},
      {10e3, 0.80},
      {100e3, 0.90},
      {1e6, 0.97},
      {10e6, 1.00},
  });
  return cdf;
}

EmpiricalCdf fixed_size(double bytes) {
  return EmpiricalCdf({{bytes, 1.0}});
}

}  // namespace contra::workload
