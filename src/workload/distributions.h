// Empirical flow-size distributions for the two production workloads the
// paper evaluates with (§6.1):
//  * "web search" — the DCTCP search workload (Alizadeh et al., SIGCOMM'10):
//    a mix of small queries and multi-MB responses;
//  * "cache"      — the Facebook cache-follower workload (Roy et al.,
//    SIGCOMM'15): dominated by tiny objects with a heavy tail.
// The CDFs below are standard approximations of the published curves (the
// original traces are proprietary — see DESIGN.md substitutions). Shapes,
// not absolute values, drive every figure that uses them.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace contra::workload {

/// Piecewise log-linear inverse-CDF sampler over flow sizes in bytes.
class EmpiricalCdf {
 public:
  struct Point {
    double bytes;
    double cum_prob;  ///< strictly increasing, last == 1.0
  };

  explicit EmpiricalCdf(std::vector<Point> points);

  uint64_t sample(util::Rng& rng) const;
  double mean_bytes() const { return mean_bytes_; }
  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
  double mean_bytes_ = 0.0;
};

/// The DCTCP web-search flow-size distribution.
const EmpiricalCdf& web_search_flow_sizes();

/// The Facebook cache-follower flow-size distribution.
const EmpiricalCdf& cache_flow_sizes();

/// Fixed-size flows (tests and microbenchmarks).
EmpiricalCdf fixed_size(double bytes);

}  // namespace contra::workload
