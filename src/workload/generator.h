// Flow arrival generation: Poisson arrivals per sender, sized from an
// empirical CDF, with the arrival rate tuned so the offered load is the
// requested fraction of sender NIC capacity — the paper's method of sweeping
// network load from 10% to 90% "by adjusting the flow arrival times" (§6.3).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "sim/transport.h"
#include "workload/distributions.h"

namespace contra::sim {
class ParallelTransport;
}

namespace contra::workload {

struct GeneratedFlow {
  sim::HostId src = sim::kInvalidHost;
  sim::HostId dst = sim::kInvalidHost;
  uint64_t bytes = 0;
  sim::Time start = 0.0;
};

struct WorkloadConfig {
  double load = 0.5;            ///< fraction of per-sender capacity
  double sender_capacity_bps = 10e9;
  sim::Time start = 0.0;
  sim::Time duration = 0.01;
  uint64_t seed = 1;
  /// Multiplies sampled flow sizes (and scales arrival rate up to keep the
  /// offered load constant). Lets experiments shrink flows so short runs
  /// still contain statistically many flows; the paper's absolute trace
  /// sizes are not reproducible anyway (see DESIGN.md).
  double size_scale = 1.0;
};

/// Poisson arrivals: every sender independently emits flows at rate
/// load * capacity / mean_flow_size, each to a uniformly random receiver.
std::vector<GeneratedFlow> generate_poisson(const EmpiricalCdf& sizes,
                                            const std::vector<sim::HostId>& senders,
                                            const std::vector<sim::HostId>& receivers,
                                            const WorkloadConfig& config);

/// Registers every generated flow with the transport.
void submit(sim::TransportManager& transport, const std::vector<GeneratedFlow>& flows);
/// Parallel-engine variant: each flow is registered on the shard that owns
/// its source host (flow-id assignment stays deterministic — it depends only
/// on the generated order, never on worker scheduling).
void submit(sim::ParallelTransport& transport, const std::vector<GeneratedFlow>& flows);

/// Total offered bytes (for load sanity checks).
uint64_t total_bytes(const std::vector<GeneratedFlow>& flows);

}  // namespace contra::workload
