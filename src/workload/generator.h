// Flow arrival generation: Poisson arrivals per sender, sized from an
// empirical CDF, with the arrival rate tuned so the offered load is the
// requested fraction of sender NIC capacity — the paper's method of sweeping
// network load from 10% to 90% "by adjusting the flow arrival times" (§6.3).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "sim/transport.h"
#include "workload/distributions.h"

namespace contra::sim {
class ParallelTransport;
}

namespace contra::workload {

struct GeneratedFlow {
  sim::HostId src = sim::kInvalidHost;
  sim::HostId dst = sim::kInvalidHost;
  uint64_t bytes = 0;
  sim::Time start = 0.0;
};

struct WorkloadConfig {
  double load = 0.5;            ///< fraction of per-sender capacity
  double sender_capacity_bps = 10e9;
  sim::Time start = 0.0;
  sim::Time duration = 0.01;
  uint64_t seed = 1;
  /// Multiplies sampled flow sizes (and scales arrival rate up to keep the
  /// offered load constant). Lets experiments shrink flows so short runs
  /// still contain statistically many flows; the paper's absolute trace
  /// sizes are not reproducible anyway (see DESIGN.md).
  double size_scale = 1.0;
};

/// Poisson arrivals: every sender independently emits flows at rate
/// load * capacity / mean_flow_size, each to a uniformly random receiver.
std::vector<GeneratedFlow> generate_poisson(const EmpiricalCdf& sizes,
                                            const std::vector<sim::HostId>& senders,
                                            const std::vector<sim::HostId>& receivers,
                                            const WorkloadConfig& config);

/// Lazy variant of generate_poisson for production-scale runs: the same
/// per-sender Poisson processes, materialized one flow at a time in global
/// arrival order. Memory is O(senders) — one Rng and one next-arrival per
/// sender in a min-heap — never O(flows), so a fat-tree k=16 / 1M-flow run
/// holds no flow list at all. Each sender's stream is seeded with
/// hash_combine(seed, sender index), so the sequence is deterministic but
/// (deliberately) not the byte-identical shared-Rng order generate_poisson
/// emits; pick one generator per experiment.
class FlowStream {
 public:
  FlowStream(const EmpiricalCdf& sizes, std::vector<sim::HostId> senders,
             std::vector<sim::HostId> receivers, const WorkloadConfig& config);

  /// Next flow in arrival order; false once every sender's window ended.
  bool next(GeneratedFlow* out);
  /// Peek at the next arrival time without consuming (+inf when drained).
  sim::Time next_start() const;
  uint64_t emitted() const { return emitted_; }

 private:
  struct SenderState {
    util::Rng rng{0};
    sim::Time next_t = 0.0;
    sim::HostId host = sim::kInvalidHost;
    uint32_t index = 0;  ///< heap tie-break: sender submission order
  };
  struct ByArrival {
    bool operator()(const SenderState& a, const SenderState& b) const {
      if (a.next_t != b.next_t) return a.next_t > b.next_t;  // min-heap
      return a.index > b.index;
    }
  };

  const EmpiricalCdf* sizes_;
  std::vector<sim::HostId> receivers_;
  WorkloadConfig config_;
  double rate_per_sender_ = 0.0;
  std::vector<SenderState> heap_;  ///< min-heap (ByArrival) of live senders
  uint64_t emitted_ = 0;
};

/// Pumps `stream` into the transport in submission windows of `chunk_s`
/// simulated seconds, advancing the engine between windows: flows are only
/// materialized just before their start time, so peak memory follows flows
/// *in flight*, not flows *generated*. Drives `run(t)` — a callable that
/// advances the engine to `t` (serial run_until or the parallel wrapper) —
/// and always finishes with run(end). Returns the number of flows submitted.
template <typename Transport, typename RunFn>
uint64_t pump_stream(Transport& transport, FlowStream& stream, sim::Time end, sim::Time chunk_s,
                     RunFn&& run) {
  GeneratedFlow flow;
  while (stream.next_start() < end) {
    const sim::Time window = stream.next_start() + chunk_s;
    while (stream.next_start() < window) {
      stream.next(&flow);
      transport.start_flow(flow.src, flow.dst, flow.bytes, flow.start);
    }
    // The engine may run right up to the last submitted start; everything
    // later is still un-materialized.
    run(std::min(end, window));
  }
  run(end);
  return stream.emitted();
}

/// Registers every generated flow with the transport.
void submit(sim::TransportManager& transport, const std::vector<GeneratedFlow>& flows);
/// Parallel-engine variant: each flow is registered on the shard that owns
/// its source host (flow-id assignment stays deterministic — it depends only
/// on the generated order, never on worker scheduling).
void submit(sim::ParallelTransport& transport, const std::vector<GeneratedFlow>& flows);

/// Total offered bytes (for load sanity checks).
uint64_t total_bytes(const std::vector<GeneratedFlow>& flows);

}  // namespace contra::workload
