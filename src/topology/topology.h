// Switch-level network topology.
//
// Links are stored as directed half-links (two per physical cable) so the
// simulator and the dataplane can attach per-direction state (queues,
// utilization estimators) naturally. Nodes are switches; hosts live in the
// simulator and attach to edge switches.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace contra::topology {

using NodeId = uint32_t;
using LinkId = uint32_t;  ///< index of a *directed* link

inline constexpr NodeId kInvalidNode = UINT32_MAX;
inline constexpr LinkId kInvalidLink = UINT32_MAX;

struct DirectedLink {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double capacity_bps = 0.0;
  double delay_s = 0.0;   ///< propagation delay
  LinkId reverse = kInvalidLink;  ///< the opposite direction of the same cable
};

class Topology {
 public:
  /// Adds a switch; names must be unique.
  NodeId add_node(std::string name);

  /// Adds a bidirectional cable; returns the a->b directed link id (the b->a
  /// id is its `reverse`).
  LinkId add_link(NodeId a, NodeId b, double capacity_bps, double delay_s);

  /// Same, with per-direction propagation delays (asymmetric paths — e.g.
  /// satellite up/down legs, or partitioner lookahead tests).
  LinkId add_link(NodeId a, NodeId b, double capacity_bps, double delay_ab_s,
                  double delay_ba_s);

  uint32_t num_nodes() const { return static_cast<uint32_t>(names_.size()); }
  uint32_t num_links() const { return static_cast<uint32_t>(links_.size()); }

  const std::string& name(NodeId id) const { return names_.at(id); }
  /// Node id by name, or kInvalidNode.
  NodeId find(const std::string& name) const;
  std::vector<std::string> node_names() const { return names_; }

  const DirectedLink& link(LinkId id) const { return links_.at(id); }
  const std::vector<DirectedLink>& links() const { return links_; }

  /// Outgoing directed links of a node.
  const std::vector<LinkId>& out_links(NodeId node) const { return adjacency_.at(node); }

  /// The directed link from `a` to `b`, or kInvalidLink if not adjacent.
  LinkId link_between(NodeId a, NodeId b) const;

  bool adjacent(NodeId a, NodeId b) const { return link_between(a, b) != kInvalidLink; }

  /// BFS hop counts from a source (UINT32_MAX where unreachable).
  std::vector<uint32_t> bfs_hops(NodeId from) const;

  /// Hop-count diameter over reachable pairs.
  uint32_t diameter() const;

  /// Upper bound on switch-to-switch RTT: for every pair, twice the
  /// propagation delay along the minimum-delay path; returns the max.
  /// The paper's probe-period rule (§5.2) requires period >= 0.5 * max RTT.
  double max_rtt_s() const;

  bool connected() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> index_;
  std::vector<DirectedLink> links_;
  std::vector<std::vector<LinkId>> adjacency_;
};

}  // namespace contra::topology
