#include "topology/topology.h"

#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>

namespace contra::topology {

NodeId Topology::add_node(std::string name) {
  if (index_.count(name)) throw std::invalid_argument("duplicate node name: " + name);
  const NodeId id = static_cast<NodeId>(names_.size());
  index_[name] = id;
  names_.push_back(std::move(name));
  adjacency_.emplace_back();
  return id;
}

LinkId Topology::add_link(NodeId a, NodeId b, double capacity_bps, double delay_s) {
  return add_link(a, b, capacity_bps, delay_s, delay_s);
}

LinkId Topology::add_link(NodeId a, NodeId b, double capacity_bps, double delay_ab_s,
                          double delay_ba_s) {
  if (a >= num_nodes() || b >= num_nodes()) throw std::out_of_range("bad node id in add_link");
  if (a == b) throw std::invalid_argument("self-loop links are not allowed");
  const LinkId ab = static_cast<LinkId>(links_.size());
  const LinkId ba = ab + 1;
  links_.push_back({a, b, capacity_bps, delay_ab_s, ba});
  links_.push_back({b, a, capacity_bps, delay_ba_s, ab});
  adjacency_[a].push_back(ab);
  adjacency_[b].push_back(ba);
  return ab;
}

NodeId Topology::find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidNode : it->second;
}

LinkId Topology::link_between(NodeId a, NodeId b) const {
  for (LinkId l : adjacency_.at(a)) {
    if (links_[l].to == b) return l;
  }
  return kInvalidLink;
}

std::vector<uint32_t> Topology::bfs_hops(NodeId from) const {
  std::vector<uint32_t> dist(num_nodes(), UINT32_MAX);
  std::deque<NodeId> queue{from};
  dist[from] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (LinkId l : adjacency_[u]) {
      const NodeId v = links_[l].to;
      if (dist[v] == UINT32_MAX) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

uint32_t Topology::diameter() const {
  uint32_t best = 0;
  for (NodeId s = 0; s < num_nodes(); ++s) {
    for (uint32_t d : bfs_hops(s)) {
      if (d != UINT32_MAX && d > best) best = d;
    }
  }
  return best;
}

double Topology::max_rtt_s() const {
  // Dijkstra by propagation delay from every source.
  double worst = 0.0;
  const double inf = std::numeric_limits<double>::infinity();
  for (NodeId s = 0; s < num_nodes(); ++s) {
    std::vector<double> dist(num_nodes(), inf);
    using Entry = std::pair<double, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist[s] = 0.0;
    heap.push({0.0, s});
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      for (LinkId l : adjacency_[u]) {
        const auto& link = links_[l];
        const double nd = d + link.delay_s;
        if (nd < dist[link.to]) {
          dist[link.to] = nd;
          heap.push({nd, link.to});
        }
      }
    }
    for (double d : dist) {
      if (d != inf && 2.0 * d > worst) worst = 2.0 * d;
    }
  }
  return worst;
}

bool Topology::connected() const {
  if (num_nodes() == 0) return true;
  const auto dist = bfs_hops(0);
  for (uint32_t d : dist) {
    if (d == UINT32_MAX) return false;
  }
  return true;
}

}  // namespace contra::topology
