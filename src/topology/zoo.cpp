#include "topology/zoo.h"

#include <initializer_list>

namespace contra::topology {

namespace {

struct ZooLink {
  const char* a;
  const char* b;
  double delay_us;  ///< approximate one-way propagation (distance at ~2/3 c)
};

Topology build(std::initializer_list<const char*> nodes, std::initializer_list<ZooLink> links,
               double capacity_bps, double delay_scale) {
  Topology topo;
  for (const char* n : nodes) topo.add_node(n);
  for (const ZooLink& l : links) {
    topo.add_link(topo.find(l.a), topo.find(l.b), capacity_bps,
                  l.delay_us * 1e-6 * delay_scale);
  }
  return topo;
}

}  // namespace

Topology geant(double capacity_bps, double delay_scale) {
  return build(
      {"London", "Paris", "Amsterdam", "Brussels", "Frankfurt", "Geneva", "Milan",
       "Vienna", "Prague", "Warsaw", "Berlin", "Copenhagen", "Stockholm", "Helsinki",
       "Madrid", "Lisbon", "Rome", "Athens", "Budapest", "Bucharest", "Zagreb", "Dublin"},
      {
          {"London", "Paris", 1700},      {"London", "Amsterdam", 1800},
          {"London", "Dublin", 2300},     {"Paris", "Madrid", 5300},
          {"Paris", "Geneva", 2000},      {"Paris", "Brussels", 1300},
          {"Amsterdam", "Brussels", 900}, {"Amsterdam", "Frankfurt", 1800},
          {"Amsterdam", "Copenhagen", 3100}, {"Brussels", "Frankfurt", 1600},
          {"Frankfurt", "Geneva", 2300},  {"Frankfurt", "Berlin", 2200},
          {"Frankfurt", "Prague", 2100},  {"Geneva", "Milan", 1200},
          {"Geneva", "Madrid", 5100},     {"Milan", "Rome", 2400},
          {"Milan", "Vienna", 3100},      {"Vienna", "Prague", 1300},
          {"Vienna", "Budapest", 1100},   {"Vienna", "Zagreb", 1300},
          {"Prague", "Warsaw", 2600},     {"Warsaw", "Berlin", 2600},
          {"Berlin", "Copenhagen", 1800}, {"Copenhagen", "Stockholm", 2600},
          {"Stockholm", "Helsinki", 2000},{"Madrid", "Lisbon", 2500},
          {"Lisbon", "London", 7900},     {"Rome", "Athens", 5300},
          {"Athens", "Bucharest", 3700},  {"Budapest", "Bucharest", 3200},
          {"Zagreb", "Budapest", 1500},   {"Helsinki", "Warsaw", 4600},
          {"Dublin", "Amsterdam", 3800},  {"Stockholm", "Berlin", 4100},
          {"Rome", "Zagreb", 2600},       {"Bucharest", "Warsaw", 4700},
      },
      capacity_bps, delay_scale);
}

Topology b4(double capacity_bps, double delay_scale) {
  return build(
      {"Dalles", "PaloAlto", "Council", "Atlanta", "Berkeley", "Pryor", "Lenoir",
       "Dublin2", "StGhislain", "Hamina", "Singapore", "Taiwan"},
      {
          {"Dalles", "PaloAlto", 3100},     {"Dalles", "Council", 7400},
          {"PaloAlto", "Berkeley", 300},    {"PaloAlto", "Taiwan", 52000},
          {"Berkeley", "Council", 7200},    {"Council", "Pryor", 2200},
          {"Council", "Lenoir", 5500},      {"Pryor", "Atlanta", 3500},
          {"Atlanta", "Lenoir", 1600},      {"Lenoir", "Dublin2", 29000},
          {"Dublin2", "StGhislain", 3900},  {"StGhislain", "Hamina", 8600},
          {"Hamina", "Singapore", 43000},   {"Singapore", "Taiwan", 16000},
          {"Atlanta", "StGhislain", 33000}, {"Dalles", "Taiwan", 50000},
          {"Berkeley", "Pryor", 8900},
      },
      capacity_bps, delay_scale);
}

Topology cesnet(double capacity_bps, double delay_scale) {
  return build(
      {"Praha", "Brno", "Ostrava", "Plzen", "Liberec", "HradecKralove", "CeskeBudejovice",
       "Olomouc", "Zlin", "UstiNadLabem"},
      {
          {"Praha", "Brno", 1000},            {"Praha", "Plzen", 450},
          {"Praha", "Liberec", 550},          {"Praha", "HradecKralove", 600},
          {"Praha", "UstiNadLabem", 400},     {"Praha", "CeskeBudejovice", 700},
          {"Brno", "Ostrava", 850},           {"Brno", "Olomouc", 400},
          {"Brno", "Zlin", 500},              {"Olomouc", "Ostrava", 500},
          {"HradecKralove", "Olomouc", 700},  {"Plzen", "CeskeBudejovice", 650},
      },
      capacity_bps, delay_scale);
}

}  // namespace contra::topology
