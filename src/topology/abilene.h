// The Abilene research backbone (Internet2), the paper's WAN topology for
// §6.4. 11 PoPs with the historical link structure; link delays approximate
// geographic propagation.
#pragma once

#include "topology/topology.h"

namespace contra::topology {

/// Builds Abilene with the given uniform capacity (the paper uses 40 Gbps).
/// `delay_scale` multiplies the built-in per-link propagation delays, which
/// lets experiments shrink the WAN to simulation-friendly RTTs while keeping
/// relative delay structure.
Topology abilene(double capacity_bps = 40e9, double delay_scale = 1.0);

}  // namespace contra::topology
