#include "topology/generators.h"

#include <stdexcept>
#include <string>

#include "util/rng.h"
#include "util/strings.h"

namespace contra::topology {

Topology fat_tree(uint32_t k, LinkParams params) {
  if (k < 2 || k % 2 != 0) throw std::invalid_argument("fat-tree arity must be even and >= 2");
  Topology topo;
  const uint32_t half = k / 2;
  const uint32_t num_core = half * half;

  std::vector<NodeId> core(num_core);
  for (uint32_t i = 0; i < num_core; ++i) core[i] = topo.add_node("c" + std::to_string(i));

  // Per pod: k/2 aggregation + k/2 edge switches.
  for (uint32_t p = 0; p < k; ++p) {
    std::vector<NodeId> agg(half);
    std::vector<NodeId> edge(half);
    for (uint32_t i = 0; i < half; ++i) {
      agg[i] = topo.add_node("a" + std::to_string(p) + "_" + std::to_string(i));
    }
    for (uint32_t i = 0; i < half; ++i) {
      edge[i] = topo.add_node("e" + std::to_string(p) + "_" + std::to_string(i));
    }
    // Full bipartite edge<->agg inside the pod.
    for (uint32_t e = 0; e < half; ++e) {
      for (uint32_t a = 0; a < half; ++a) {
        topo.add_link(edge[e], agg[a], params.capacity_bps, params.delay_s);
      }
    }
    // Aggregation switch i connects to core switches [i*half, (i+1)*half).
    for (uint32_t a = 0; a < half; ++a) {
      for (uint32_t c = 0; c < half; ++c) {
        topo.add_link(agg[a], core[a * half + c], params.capacity_bps, params.delay_s);
      }
    }
  }
  return topo;
}

FatTreeLayer fat_tree_layer(const Topology& topo, NodeId node) {
  const std::string& n = topo.name(node);
  if (n.empty()) return FatTreeLayer::kUnknown;
  // Leaf-spine names map onto the two-tier special case, which lets the
  // tree-specialized dataplanes (HULA) run on leaf-spine fabrics too.
  if (util::starts_with(n, "leaf")) return FatTreeLayer::kEdge;
  if (util::starts_with(n, "spine")) return FatTreeLayer::kAgg;
  switch (n[0]) {
    case 'c': return FatTreeLayer::kCore;
    case 'a': return FatTreeLayer::kAgg;
    case 'e': return FatTreeLayer::kEdge;
    default: return FatTreeLayer::kUnknown;
  }
}

Topology leaf_spine(uint32_t leaves, uint32_t spines, LinkParams params) {
  Topology topo;
  std::vector<NodeId> leaf(leaves);
  std::vector<NodeId> spine(spines);
  for (uint32_t i = 0; i < leaves; ++i) leaf[i] = topo.add_node("leaf" + std::to_string(i));
  for (uint32_t i = 0; i < spines; ++i) spine[i] = topo.add_node("spine" + std::to_string(i));
  for (uint32_t l = 0; l < leaves; ++l) {
    for (uint32_t s = 0; s < spines; ++s) {
      topo.add_link(leaf[l], spine[s], params.capacity_bps, params.delay_s);
    }
  }
  return topo;
}

Topology random_connected(uint32_t nodes, double avg_degree, uint64_t seed, LinkParams params) {
  if (nodes == 0) throw std::invalid_argument("random topology needs at least one node");
  util::Rng rng(seed);
  Topology topo;
  for (uint32_t i = 0; i < nodes; ++i) topo.add_node("n" + std::to_string(i));

  // Random spanning tree: attach each node to a random earlier node.
  for (uint32_t i = 1; i < nodes; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.uniform_int(0, i - 1));
    topo.add_link(i, parent, params.capacity_bps, params.delay_s);
  }
  // Extra edges until the target average degree (each cable adds degree 2).
  const uint64_t target_cables = static_cast<uint64_t>(avg_degree * nodes / 2.0);
  uint64_t attempts = 0;
  while (topo.num_links() / 2 < target_cables && attempts < target_cables * 50) {
    ++attempts;
    const NodeId a = static_cast<NodeId>(rng.uniform_int(0, nodes - 1));
    const NodeId b = static_cast<NodeId>(rng.uniform_int(0, nodes - 1));
    if (a == b || topo.adjacent(a, b)) continue;
    topo.add_link(a, b, params.capacity_bps, params.delay_s);
  }
  return topo;
}

Topology ring(uint32_t n, LinkParams params) {
  if (n < 3) throw std::invalid_argument("ring needs at least 3 nodes");
  Topology topo;
  for (uint32_t i = 0; i < n; ++i) topo.add_node("n" + std::to_string(i));
  for (uint32_t i = 0; i < n; ++i) {
    topo.add_link(i, (i + 1) % n, params.capacity_bps, params.delay_s);
  }
  return topo;
}

Topology line(uint32_t n, LinkParams params) {
  if (n < 2) throw std::invalid_argument("line needs at least 2 nodes");
  Topology topo;
  for (uint32_t i = 0; i < n; ++i) topo.add_node("n" + std::to_string(i));
  for (uint32_t i = 0; i + 1 < n; ++i) {
    topo.add_link(i, i + 1, params.capacity_bps, params.delay_s);
  }
  return topo;
}

Topology grid(uint32_t rows, uint32_t cols, LinkParams params) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("grid dims must be positive");
  Topology topo;
  auto id = [&](uint32_t r, uint32_t c) { return r * cols + c; };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      topo.add_node("g" + std::to_string(r) + "_" + std::to_string(c));
    }
  }
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) topo.add_link(id(r, c), id(r, c + 1), params.capacity_bps, params.delay_s);
      if (r + 1 < rows) topo.add_link(id(r, c), id(r + 1, c), params.capacity_bps, params.delay_s);
    }
  }
  return topo;
}

Topology running_example() {
  Topology topo;
  const NodeId a = topo.add_node("A");
  const NodeId b = topo.add_node("B");
  const NodeId c = topo.add_node("C");
  const NodeId d = topo.add_node("D");
  LinkParams params;
  topo.add_link(a, b, params.capacity_bps, params.delay_s);
  topo.add_link(a, c, params.capacity_bps, params.delay_s);
  topo.add_link(b, c, params.capacity_bps, params.delay_s);
  topo.add_link(b, d, params.capacity_bps, params.delay_s);
  topo.add_link(c, d, params.capacity_bps, params.delay_s);
  return topo;
}

}  // namespace contra::topology
