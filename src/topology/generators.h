// Topology generators for the families used in the paper's evaluation:
// k-ary fat-trees, leaf-spine, random connected graphs, plus small shapes
// (ring, line, grid) used by tests.
#pragma once

#include <cstdint>

#include "topology/topology.h"

namespace contra::topology {

/// Default link parameters used by generators when unspecified.
struct LinkParams {
  double capacity_bps = 10e9;
  double delay_s = 1e-6;
};

/// k-ary fat-tree (k even): k^2/4 core, k^2/2 aggregation, k^2/2 edge
/// switches = 5k^2/4 total. Names: "c<i>", "a<p>_<i>", "e<p>_<i>" where p is
/// the pod. k=4 -> 20 switches ... k=20 -> 500 switches (the paper's Fig. 9
/// x-axis).
Topology fat_tree(uint32_t k, LinkParams params = {});

/// Identifies fat-tree layers by name prefix ("c", "a", "e").
enum class FatTreeLayer { kCore, kAgg, kEdge, kUnknown };
FatTreeLayer fat_tree_layer(const Topology& topo, NodeId node);

/// Leaf-spine (2-tier Clos): every leaf connects to every spine. Names
/// "leaf<i>" / "spine<i>". `uplink` parameters apply to leaf-spine cables.
Topology leaf_spine(uint32_t leaves, uint32_t spines, LinkParams params = {});

/// Random connected graph: a random spanning tree plus extra random edges
/// until the average degree is reached. Deterministic per seed.
Topology random_connected(uint32_t nodes, double avg_degree, uint64_t seed,
                          LinkParams params = {});

/// Cycle of n nodes ("n0".."n<n-1>").
Topology ring(uint32_t n, LinkParams params = {});

/// Line (path graph) of n nodes.
Topology line(uint32_t n, LinkParams params = {});

/// rows x cols mesh.
Topology grid(uint32_t rows, uint32_t cols, LinkParams params = {});

/// The four-switch diamond from the paper's running example (Fig. 6a):
/// A-B, A-C, B-C, B-D, C-D.
Topology running_example();

}  // namespace contra::topology
