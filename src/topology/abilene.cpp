#include "topology/abilene.h"

#include <array>

namespace contra::topology {

namespace {

struct AbileneLink {
  const char* a;
  const char* b;
  double delay_us;  ///< one-way propagation, roughly distance/c_fiber
};

// Historical Abilene PoPs and links (Internet2, 2005 map). Delays derive
// from great-circle distances at ~2/3 c.
constexpr std::array<AbileneLink, 14> kLinks = {{
    {"Seattle", "Sunnyvale", 6600.0 / 1000},
    {"Seattle", "Denver", 8300.0 / 1000},
    {"Sunnyvale", "LosAngeles", 2800.0 / 1000},
    {"Sunnyvale", "Denver", 7600.0 / 1000},
    {"LosAngeles", "Houston", 11200.0 / 1000},
    {"Denver", "KansasCity", 4500.0 / 1000},
    {"KansasCity", "Houston", 5900.0 / 1000},
    {"KansasCity", "Indianapolis", 3900.0 / 1000},
    {"Houston", "Atlanta", 5700.0 / 1000},
    {"Indianapolis", "Chicago", 1500.0 / 1000},
    {"Indianapolis", "Atlanta", 4300.0 / 1000},
    {"Chicago", "NewYork", 5800.0 / 1000},
    {"Atlanta", "WashingtonDC", 4400.0 / 1000},
    {"NewYork", "WashingtonDC", 1800.0 / 1000},
}};

constexpr std::array<const char*, 11> kNodes = {
    "Seattle",   "Sunnyvale",    "LosAngeles", "Denver",  "KansasCity", "Houston",
    "Indianapolis", "Chicago",   "Atlanta",    "NewYork", "WashingtonDC",
};

}  // namespace

Topology abilene(double capacity_bps, double delay_scale) {
  Topology topo;
  for (const char* n : kNodes) topo.add_node(n);
  for (const AbileneLink& l : kLinks) {
    topo.add_link(topo.find(l.a), topo.find(l.b), capacity_bps,
                  l.delay_us * 1e-6 * delay_scale);
  }
  return topo;
}

}  // namespace contra::topology
