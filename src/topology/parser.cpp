#include "topology/parser.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace contra::topology {

Topology parse_topology(std::string_view text, double default_capacity_bps,
                        double default_delay_s) {
  Topology topo;
  auto get_or_add = [&](const std::string& name) -> NodeId {
    const NodeId found = topo.find(name);
    return found != kInvalidNode ? found : topo.add_node(name);
  };

  size_t line_no = 0;
  for (const std::string& raw_line : util::split(text, '\n')) {
    ++line_no;
    std::string_view line = util::trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const auto fields = util::split_whitespace(line);
    auto fail = [&](const std::string& why) {
      throw std::invalid_argument("topology line " + std::to_string(line_no) + ": " + why);
    };
    if (fields[0] == "node") {
      if (fields.size() != 2) fail("'node' takes exactly one name");
      get_or_add(fields[1]);
    } else if (fields[0] == "link") {
      if (fields.size() < 3 || fields.size() > 5) {
        fail("'link' takes two names and optional capacity/delay");
      }
      if (fields[1] == fields[2]) fail("self-loop link");
      const NodeId a = get_or_add(fields[1]);
      const NodeId b = get_or_add(fields[2]);
      double capacity = default_capacity_bps;
      double delay = default_delay_s;
      try {
        if (fields.size() >= 4) capacity = std::stod(fields[3]) * 1e9;
        if (fields.size() >= 5) delay = std::stod(fields[4]) * 1e-6;
      } catch (const std::exception&) {
        fail("malformed number");
      }
      if (capacity <= 0 || delay < 0) fail("capacity must be positive, delay non-negative");
      topo.add_link(a, b, capacity, delay);
    } else {
      fail("unknown directive '" + fields[0] + "'");
    }
  }
  return topo;
}

std::string format_topology(const Topology& topo) {
  std::ostringstream out;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) out << "node " << topo.name(n) << "\n";
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const DirectedLink& link = topo.link(l);
    if (link.from > link.to) continue;  // emit each cable once
    char buf[64];
    std::snprintf(buf, sizeof buf, " %.6g %.6g", link.capacity_bps / 1e9, link.delay_s * 1e6);
    out << "link " << topo.name(link.from) << " " << topo.name(link.to) << buf << "\n";
  }
  return out.str();
}

}  // namespace contra::topology
