#include "topology/parser.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/strings.h"

namespace contra::topology {

Topology parse_topology(std::string_view text, double default_capacity_bps,
                        double default_delay_s) {
  Topology topo;
  auto get_or_add = [&](const std::string& name) -> NodeId {
    const NodeId found = topo.find(name);
    return found != kInvalidNode ? found : topo.add_node(name);
  };

  size_t line_no = 0;
  for (const std::string& raw_line : util::split(text, '\n')) {
    ++line_no;
    std::string_view line = util::trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const auto fields = util::split_whitespace(line);
    auto fail = [&](const std::string& why) {
      throw std::invalid_argument("topology line " + std::to_string(line_no) + ": " + why);
    };
    if (fields[0] == "node") {
      if (fields.size() != 2) fail("'node' takes exactly one name");
      get_or_add(fields[1]);
    } else if (fields[0] == "link") {
      if (fields.size() < 3 || fields.size() > 5) {
        fail("'link' takes two names and optional capacity/delay");
      }
      if (fields[1] == fields[2]) fail("self-loop link");
      const NodeId a = get_or_add(fields[1]);
      const NodeId b = get_or_add(fields[2]);
      double capacity = default_capacity_bps;
      double delay = default_delay_s;
      try {
        if (fields.size() >= 4) capacity = std::stod(fields[3]) * 1e9;
        if (fields.size() >= 5) delay = std::stod(fields[4]) * 1e-6;
      } catch (const std::exception&) {
        fail("malformed number");
      }
      if (capacity <= 0 || delay < 0) fail("capacity must be positive, delay non-negative");
      topo.add_link(a, b, capacity, delay);
    } else {
      fail("unknown directive '" + fields[0] + "'");
    }
  }
  return topo;
}

// ----- GraphML (Topology Zoo) ------------------------------------------------
//
// A scanning parser for the fixed shape Topology Zoo exports use: flat
// <key>/<node>/<edge> elements, one <data key="..."> child per attribute.
// Enough structure for the corpus without pulling in an XML library.

namespace {

/// Value of `name="..."` inside an element's start tag, or "".
std::string xml_attr(std::string_view tag, std::string_view name) {
  size_t pos = 0;
  while ((pos = tag.find(name, pos)) != std::string_view::npos) {
    // Require attribute-name context: preceded by whitespace, followed by =".
    const bool starts_ok = pos > 0 && (tag[pos - 1] == ' ' || tag[pos - 1] == '\t');
    size_t after = pos + name.size();
    while (after < tag.size() && (tag[after] == ' ' || tag[after] == '\t')) ++after;
    if (!starts_ok || after >= tag.size() || tag[after] != '=') {
      pos += 1;
      continue;
    }
    ++after;
    while (after < tag.size() && (tag[after] == ' ' || tag[after] == '\t')) ++after;
    if (after >= tag.size() || (tag[after] != '"' && tag[after] != '\'')) return "";
    const char quote = tag[after];
    const size_t end = tag.find(quote, after + 1);
    if (end == std::string_view::npos) return "";
    return std::string(tag.substr(after + 1, end - after - 1));
  }
  return "";
}

std::string xml_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out += s[i];
      continue;
    }
    const std::string_view rest = s.substr(i);
    if (rest.rfind("&amp;", 0) == 0) {
      out += '&';
      i += 4;
    } else if (rest.rfind("&lt;", 0) == 0) {
      out += '<';
      i += 3;
    } else if (rest.rfind("&gt;", 0) == 0) {
      out += '>';
      i += 3;
    } else if (rest.rfind("&quot;", 0) == 0) {
      out += '"';
      i += 5;
    } else if (rest.rfind("&apos;", 0) == 0) {
      out += '\'';
      i += 5;
    } else {
      out += s[i];
    }
  }
  return out;
}

struct XmlElement {
  std::string_view tag;    ///< start-tag content, name included, no angle brackets
  std::string_view inner;  ///< body between start and end tag ("" when self-closed)
  size_t end = 0;          ///< offset just past the element in the document
};

/// Next `<name ...>...</name>` or `<name .../>` element at or after `from`.
bool next_element(std::string_view text, std::string_view name, size_t from, XmlElement* out) {
  const std::string open = "<" + std::string(name);
  size_t pos = from;
  while ((pos = text.find(open, pos)) != std::string_view::npos) {
    const char after = pos + open.size() < text.size() ? text[pos + open.size()] : '\0';
    if (after != ' ' && after != '\t' && after != '\n' && after != '\r' && after != '>' &&
        after != '/') {
      pos += open.size();  // e.g. "<node" matching "<nodedata"
      continue;
    }
    const size_t close = text.find('>', pos);
    if (close == std::string_view::npos) return false;
    out->tag = text.substr(pos + 1, close - pos - 1);
    if (text[close - 1] == '/') {  // self-closed
      out->inner = std::string_view();
      out->end = close + 1;
      return true;
    }
    const std::string end_tag = "</" + std::string(name) + ">";
    const size_t end = text.find(end_tag, close + 1);
    if (end == std::string_view::npos) {
      throw std::invalid_argument("graphml: unterminated <" + std::string(name) + "> element");
    }
    out->inner = text.substr(close + 1, end - close - 1);
    out->end = end + end_tag.size();
    return true;
  }
  return false;
}

/// All `<data key="...">value</data>` children of an element body.
std::map<std::string, std::string> data_children(std::string_view inner) {
  std::map<std::string, std::string> out;
  XmlElement data;
  size_t pos = 0;
  while (next_element(inner, "data", pos, &data)) {
    out[xml_attr(data.tag, "key")] = xml_unescape(std::string(util::trim(data.inner)));
    pos = data.end;
  }
  return out;
}

/// Great-circle distance (meters) on the WGS-84 mean radius.
double haversine_m(double lat1, double lon1, double lat2, double lon2) {
  constexpr double kRad = 3.14159265358979323846 / 180.0;
  const double dlat = (lat2 - lat1) * kRad;
  const double dlon = (lon2 - lon1) * kRad;
  const double a = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1 * kRad) * std::cos(lat2 * kRad) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * 6371e3 * std::asin(std::min(1.0, std::sqrt(a)));
}

}  // namespace

Topology parse_graphml(std::string_view text, double default_capacity_bps,
                       double default_delay_s) {
  // Pass 1: key declarations map attribute names to the per-document key ids
  // the <data> children reference.
  std::string key_label, key_lat, key_lon, key_speed;
  XmlElement elem;
  size_t pos = 0;
  while (next_element(text, "key", pos, &elem)) {
    const std::string attr = xml_attr(elem.tag, "attr.name");
    const std::string id = xml_attr(elem.tag, "id");
    if (attr == "label") key_label = id;
    if (attr == "Latitude") key_lat = id;
    if (attr == "Longitude") key_lon = id;
    if (attr == "LinkSpeedRaw") key_speed = id;
    pos = elem.end;
  }

  Topology topo;
  struct NodeGeo {
    double lat = 0.0, lon = 0.0;
    bool located = false;
  };
  std::map<std::string, NodeId> by_graphml_id;
  std::vector<NodeGeo> geo;

  pos = 0;
  while (next_element(text, "node", pos, &elem)) {
    const std::string id = xml_attr(elem.tag, "id");
    if (id.empty()) throw std::invalid_argument("graphml: <node> without id");
    const auto data = data_children(elem.inner);
    std::string name;
    if (auto it = data.find(key_label); it != data.end()) name = it->second;
    // Zoo labels can be empty or repeat ("None"); keep names unique by
    // falling back to the document id.
    if (name.empty() || topo.find(name) != kInvalidNode) {
      name = name.empty() ? "n" + id : name + "_" + id;
    }
    if (topo.find(name) != kInvalidNode) name += "#";
    by_graphml_id[id] = topo.add_node(name);
    NodeGeo g;
    try {
      const auto lat = data.find(key_lat);
      const auto lon = data.find(key_lon);
      if (lat != data.end() && lon != data.end()) {
        g.lat = std::stod(lat->second);
        g.lon = std::stod(lon->second);
        g.located = true;
      }
    } catch (const std::exception&) {
      g.located = false;
    }
    geo.push_back(g);
    pos = elem.end;
  }
  if (topo.num_nodes() == 0) throw std::invalid_argument("graphml: no <node> elements");

  std::map<std::pair<NodeId, NodeId>, bool> seen;
  pos = 0;
  while (next_element(text, "edge", pos, &elem)) {
    pos = elem.end;
    const std::string src = xml_attr(elem.tag, "source");
    const std::string dst = xml_attr(elem.tag, "target");
    const auto a = by_graphml_id.find(src);
    const auto b = by_graphml_id.find(dst);
    if (a == by_graphml_id.end() || b == by_graphml_id.end()) {
      throw std::invalid_argument("graphml: edge references unknown node '" + src + "'/'" + dst +
                                  "'");
    }
    if (a->second == b->second) continue;  // self-loop
    const std::pair<NodeId, NodeId> key{std::min(a->second, b->second),
                                        std::max(a->second, b->second)};
    if (!seen.insert({key, true}).second) continue;  // parallel edge

    double capacity = default_capacity_bps;
    const auto data = data_children(elem.inner);
    if (auto it = data.find(key_speed); it != data.end()) {
      try {
        const double raw = std::stod(it->second);
        if (raw > 0) capacity = raw;
      } catch (const std::exception&) {
      }
    }
    double delay = default_delay_s;
    const NodeGeo& ga = geo[a->second];
    const NodeGeo& gb = geo[b->second];
    if (ga.located && gb.located) {
      // Fiber propagation at ~2/3 c; keep the default as a floor so
      // co-located sites still get a positive, schedulable delay.
      const double dist = haversine_m(ga.lat, ga.lon, gb.lat, gb.lon);
      delay = std::max(default_delay_s, dist / 2e8);
    }
    topo.add_link(a->second, b->second, capacity, delay);
  }
  if (topo.num_links() == 0) throw std::invalid_argument("graphml: no usable <edge> elements");
  return topo;
}

Topology parse_topology_auto(std::string_view text, double default_capacity_bps,
                             double default_delay_s) {
  if (text.find("<graphml") != std::string_view::npos) {
    return parse_graphml(text, default_capacity_bps, default_delay_s);
  }
  return parse_topology(text, default_capacity_bps, default_delay_s);
}

std::string format_topology(const Topology& topo) {
  std::ostringstream out;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) out << "node " << topo.name(n) << "\n";
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const DirectedLink& link = topo.link(l);
    if (link.from > link.to) continue;  // emit each cable once
    char buf[64];
    std::snprintf(buf, sizeof buf, " %.6g %.6g", link.capacity_bps / 1e9, link.delay_s * 1e6);
    out << "link " << topo.name(link.from) << " " << topo.name(link.to) << buf << "\n";
  }
  return out.str();
}

}  // namespace contra::topology
