// Text format for topologies (Topology Zoo-style edge lists):
//
//   # comment
//   node <name>
//   link <name1> <name2> [capacity_gbps] [delay_us]
//
// `node` lines are optional — names appearing in `link` lines are created on
// first use with declaration order preserved.
#pragma once

#include <string_view>

#include "topology/topology.h"

namespace contra::topology {

/// Parses the edge-list format above. Throws std::invalid_argument with a
/// line number on malformed input.
Topology parse_topology(std::string_view text, double default_capacity_bps = 10e9,
                        double default_delay_s = 1e-6);

/// Parses a Topology Zoo GraphML document (topology-zoo.org corpus; see
/// data/*.graphml). Node names come from the `label` attribute (node ids
/// when absent or duplicated); capacities from `LinkSpeedRaw` (bps) when
/// present; delays from the great-circle distance between the endpoints'
/// `Latitude`/`Longitude` keys at fiber propagation speed (~2e8 m/s), with
/// default_delay_s as the floor and the fallback when either endpoint has
/// no coordinates. Duplicate edges and self-loops are dropped. Throws
/// std::invalid_argument on malformed documents.
Topology parse_graphml(std::string_view text, double default_capacity_bps = 10e9,
                       double default_delay_s = 1e-6);

/// Format sniffing: documents containing a `<graphml` element parse as
/// GraphML, everything else as the edge-list format.
Topology parse_topology_auto(std::string_view text, double default_capacity_bps = 10e9,
                             double default_delay_s = 1e-6);

/// Serializes a topology back to the text format (round-trips through
/// parse_topology).
std::string format_topology(const Topology& topo);

}  // namespace contra::topology
