// Text format for topologies (Topology Zoo-style edge lists):
//
//   # comment
//   node <name>
//   link <name1> <name2> [capacity_gbps] [delay_us]
//
// `node` lines are optional — names appearing in `link` lines are created on
// first use with declaration order preserved.
#pragma once

#include <string_view>

#include "topology/topology.h"

namespace contra::topology {

/// Parses the edge-list format above. Throws std::invalid_argument with a
/// line number on malformed input.
Topology parse_topology(std::string_view text, double default_capacity_bps = 10e9,
                        double default_delay_s = 1e-6);

/// Serializes a topology back to the text format (round-trips through
/// parse_topology).
std::string format_topology(const Topology& topo);

}  // namespace contra::topology
