// Topology partitioner for the sharded parallel simulator.
//
// Splits the switch graph into `num_shards` balanced node sets while
// greedily minimizing the number of cables cut (METIS-style grow+refine,
// deterministic: every tie breaks on the lowest node id). The cut matters
// twice: each cut cable becomes a mailbox hop at runtime, and the *minimum
// propagation delay across the cut* is the conservative lookahead window —
// shards can only advance in epochs of that width (see DESIGN.md §8), so a
// partition that cuts a zero-ish-delay link serializes the whole run.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "topology/topology.h"

namespace contra::topology {

struct Partition {
  uint32_t num_shards = 1;
  std::vector<uint32_t> shard_of;  ///< node id -> shard in [0, num_shards)

  /// Directed links whose endpoints live in different shards.
  uint32_t num_cut_links = 0;
  /// min delay_s over cut links — the conservative epoch width (lookahead).
  /// +infinity when no link is cut (shards never interact; no barriers).
  double min_cut_delay_s = std::numeric_limits<double>::infinity();

  uint32_t shard(NodeId node) const { return shard_of[node]; }
  bool crosses(const DirectedLink& l) const { return shard_of[l.from] != shard_of[l.to]; }
};

/// Partitions `topo` into at most `num_shards` balanced shards (fewer when
/// the topology has fewer nodes; always >= 1). Deterministic for a given
/// (topology, num_shards) pair.
Partition partition_topology(const Topology& topo, uint32_t num_shards);

/// Recomputes the cut statistics of an arbitrary assignment (test hook, and
/// used internally after refinement).
void recompute_cut(const Topology& topo, Partition& partition);

/// Default shard count for a topology: enough to spread the event load, but
/// never more shards than nodes and never so many that every shard is a
/// couple of switches. Fixed per topology — deliberately independent of the
/// worker count, so changing --workers never changes the execution schedule
/// (see DESIGN.md §8, determinism).
uint32_t default_num_shards(const Topology& topo);

}  // namespace contra::topology
