// Topology partitioner for the sharded parallel simulator.
//
// Splits the switch graph into `num_shards` balanced node sets while
// greedily minimizing the number of cables cut (METIS-style grow+refine,
// deterministic: every tie breaks on the lowest node id). The cut matters
// twice: each cut cable becomes a mailbox hop at runtime, and the per-pair
// minimum propagation delay across the cut is the conservative lookahead —
// the safe-horizon matrix the epoch scheduler advances shards by (see
// DESIGN.md §8). Two fusion passes run after refinement: shard pairs joined
// by a zero-delay cut link are merged (no conservative window exists for
// them), and shards whose estimated event load is far below the mean are
// folded into their best-connected neighbor, so tiny shards never pay
// barrier cost for negligible work.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "topology/topology.h"

namespace contra::topology {

struct Partition {
  uint32_t num_shards = 1;
  std::vector<uint32_t> shard_of;  ///< node id -> shard in [0, num_shards)

  /// Directed links whose endpoints live in different shards.
  uint32_t num_cut_links = 0;
  /// min delay_s over all cut links — the legacy global-min epoch width.
  /// +infinity when no link is cut (shards never interact; no barriers).
  double min_cut_delay_s = std::numeric_limits<double>::infinity();

  /// Per-channel safe-horizon matrix, row-major [src * num_shards + dst]:
  /// the minimum delay_s over cut links src->dst, +infinity when no link
  /// crosses that pair (including the diagonal). A packet transmitted by
  /// `src` at local time T cannot reach `dst` before T + horizon_of(src,
  /// dst), which is the CMB/null-message-style per-channel lookahead.
  std::vector<double> horizon;

  /// Shards merged away by the fusion passes (zero-delay cut + load).
  uint32_t fused_shards = 0;

  uint32_t shard(NodeId node) const { return shard_of[node]; }
  bool crosses(const DirectedLink& l) const { return shard_of[l.from] != shard_of[l.to]; }

  double horizon_of(uint32_t src, uint32_t dst) const {
    return horizon[src * num_shards + dst];
  }
  /// The true minimum inbound delay of `dst`: min over src of the channel
  /// horizon. No future message can reach `dst` sooner than the sender's
  /// local clock plus this.
  double min_inbound_delay_s(uint32_t dst) const {
    double best = std::numeric_limits<double>::infinity();
    for (uint32_t src = 0; src < num_shards; ++src) {
      if (src != dst) best = std::min(best, horizon_of(src, dst));
    }
    return best;
  }
};

/// Partitions `topo` into at most `num_shards` balanced shards (fewer when
/// the topology has fewer nodes or the fusion passes merge some; always
/// >= 1). Deterministic for a given (topology, num_shards) pair.
Partition partition_topology(const Topology& topo, uint32_t num_shards);

/// Recomputes the cut statistics and horizon matrix of an arbitrary
/// assignment (test hook, and used internally after refinement/fusion).
void recompute_cut(const Topology& topo, Partition& partition);

/// Estimated relative event load of each shard: sum over owned nodes of
/// (out-degree + 1), a proxy for probe fan-out plus per-node timer work.
/// Exposed for tests and the fusion heuristic.
std::vector<uint64_t> estimate_shard_loads(const Topology& topo, const Partition& partition);

/// Default shard count for a topology: enough to spread the event load, but
/// never more shards than nodes and never so many that every shard is a
/// couple of switches. The one-argument form is a pure function of the
/// topology (cap 8; use it when the execution schedule must be reproducible
/// across machines). The two-argument form additionally caps at
/// `hardware_threads` (when nonzero) so auto-sharded runs don't pay barrier
/// cost for parallelism the machine can't deliver — pass
/// std::thread::hardware_concurrency(). Explicit --shards always overrides
/// both.
uint32_t default_num_shards(const Topology& topo);
uint32_t default_num_shards(const Topology& topo, uint32_t hardware_threads);

}  // namespace contra::topology
