// A small catalog of real-world WAN topologies (after the Internet Topology
// Zoo the paper draws on), with approximate geographic propagation delays.
// Alongside Abilene (topology/abilene.h) these give the WAN experiments a
// range of real graph shapes: a European research backbone, an inter-
// datacenter WAN, and a mid-size national network.
#pragma once

#include "topology/topology.h"

namespace contra::topology {

/// GÉANT-style European research backbone (22 PoPs, ~36 links) — the larger,
/// denser WAN case.
Topology geant(double capacity_bps = 40e9, double delay_scale = 1.0);

/// B4-style inter-datacenter WAN (12 sites across three continents) —
/// the Google SDN-WAN shape the paper cites for traffic priorities.
Topology b4(double capacity_bps = 40e9, double delay_scale = 1.0);

/// CESNET-style national research network (10 PoPs, sparse, tree-ish with a
/// few cross links) — low path diversity stresses policy pruning.
Topology cesnet(double capacity_bps = 10e9, double delay_scale = 1.0);

}  // namespace contra::topology
