#include "topology/partitioner.h"

#include <algorithm>
#include <cassert>

namespace contra::topology {

namespace {

constexpr uint32_t kUnassigned = UINT32_MAX;

/// Number of neighbors of `node` already assigned to `shard`.
uint32_t affinity(const Topology& topo, const std::vector<uint32_t>& shard_of, NodeId node,
                  uint32_t shard) {
  uint32_t n = 0;
  for (LinkId l : topo.out_links(node)) {
    if (shard_of[topo.link(l).to] == shard) ++n;
  }
  return n;
}

/// Grows one shard by BFS-like accretion: repeatedly absorb the unassigned
/// node with the most edges into the shard so far (ties -> lowest id), which
/// keeps the frontier — the eventual cut — small.
void grow_shard(const Topology& topo, std::vector<uint32_t>& shard_of, uint32_t shard,
                uint32_t target_size) {
  // Seed: lowest-id unassigned node.
  NodeId seed = kInvalidNode;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (shard_of[n] == kUnassigned) {
      seed = n;
      break;
    }
  }
  if (seed == kInvalidNode) return;
  shard_of[seed] = shard;
  uint32_t size = 1;

  while (size < target_size) {
    NodeId best = kInvalidNode;
    uint32_t best_affinity = 0;
    // Scan the frontier: unassigned neighbors of current members. O(V·E) over
    // the whole partition in the worst case — partitioning runs once at
    // setup, and topology-zoo graphs top out at a few hundred nodes.
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      if (shard_of[n] != kUnassigned) continue;
      const uint32_t a = affinity(topo, shard_of, n, shard);
      if (a > best_affinity) {
        best = n;
        best_affinity = a;
      }
    }
    if (best == kInvalidNode) break;  // disconnected remainder; next shard picks it up
    shard_of[best] = shard;
    ++size;
  }
}

/// One boundary-refinement sweep: move a node to a neighboring shard when
/// that strictly reduces the cut and keeps both shards' sizes within
/// [1, target+1]. Nodes are visited in id order, so the sweep — and with it
/// the final partition — is deterministic.
bool refine_once(const Topology& topo, std::vector<uint32_t>& shard_of,
                 std::vector<uint32_t>& shard_size, uint32_t num_shards, uint32_t target_size) {
  bool changed = false;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    const uint32_t home = shard_of[n];
    if (shard_size[home] <= 1) continue;
    const uint32_t home_edges = affinity(topo, shard_of, n, home);
    uint32_t best_shard = home;
    uint32_t best_gain = 0;
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (s == home || shard_size[s] >= target_size + 1) continue;
      const uint32_t there = affinity(topo, shard_of, n, s);
      if (there > home_edges && there - home_edges > best_gain) {
        best_shard = s;
        best_gain = there - home_edges;
      }
    }
    if (best_shard != home) {
      shard_of[n] = best_shard;
      --shard_size[home];
      ++shard_size[best_shard];
      changed = true;
    }
  }
  return changed;
}

}  // namespace

void recompute_cut(const Topology& topo, Partition& partition) {
  partition.num_cut_links = 0;
  partition.min_cut_delay_s = std::numeric_limits<double>::infinity();
  for (const DirectedLink& l : topo.links()) {
    if (!partition.crosses(l)) continue;
    ++partition.num_cut_links;
    partition.min_cut_delay_s = std::min(partition.min_cut_delay_s, l.delay_s);
  }
}

Partition partition_topology(const Topology& topo, uint32_t num_shards) {
  Partition p;
  const uint32_t n = topo.num_nodes();
  num_shards = std::max<uint32_t>(1, std::min(num_shards, std::max<uint32_t>(n, 1)));
  p.num_shards = num_shards;
  p.shard_of.assign(n, 0);
  if (num_shards <= 1 || n == 0) {
    recompute_cut(topo, p);
    return p;
  }

  std::fill(p.shard_of.begin(), p.shard_of.end(), kUnassigned);
  const uint32_t target = (n + num_shards - 1) / num_shards;
  for (uint32_t s = 0; s < num_shards; ++s) grow_shard(topo, p.shard_of, s, target);
  // grow_shard stops at disconnected components; sweep up any leftovers into
  // the smallest shard so far (deterministic: id order, lowest shard wins ties).
  std::vector<uint32_t> size(num_shards, 0);
  for (NodeId node = 0; node < n; ++node) {
    if (p.shard_of[node] != kUnassigned) ++size[p.shard_of[node]];
  }
  for (NodeId node = 0; node < n; ++node) {
    if (p.shard_of[node] != kUnassigned) continue;
    const uint32_t s = static_cast<uint32_t>(
        std::min_element(size.begin(), size.end()) - size.begin());
    p.shard_of[node] = s;
    ++size[s];
  }

  for (int pass = 0; pass < 4; ++pass) {
    if (!refine_once(topo, p.shard_of, size, num_shards, target)) break;
  }

  recompute_cut(topo, p);
  return p;
}

uint32_t default_num_shards(const Topology& topo) {
  // ~5 switches per shard amortizes the barrier cost; cap at 8 shards (the
  // bench's scaling ceiling) and never exceed the node count.
  const uint32_t n = topo.num_nodes();
  if (n <= 1) return 1;
  return std::max<uint32_t>(1, std::min<uint32_t>(8, n / 5 + (n % 5 != 0)));
}

}  // namespace contra::topology
