#include "topology/partitioner.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace contra::topology {

namespace {

constexpr uint32_t kUnassigned = UINT32_MAX;

/// A shard whose estimated load is below this fraction of the mean gets
/// fused into its best-connected neighbor: its share of the useful work
/// cannot amortize the per-phase barrier it would add.
constexpr double kFuseLoadFraction = 0.5;

/// Number of neighbors of `node` already assigned to `shard`.
uint32_t affinity(const Topology& topo, const std::vector<uint32_t>& shard_of, NodeId node,
                  uint32_t shard) {
  uint32_t n = 0;
  for (LinkId l : topo.out_links(node)) {
    if (shard_of[topo.link(l).to] == shard) ++n;
  }
  return n;
}

/// Grows one shard by BFS-like accretion: repeatedly absorb the unassigned
/// node with the most edges into the shard so far (ties -> lowest id), which
/// keeps the frontier — the eventual cut — small.
void grow_shard(const Topology& topo, std::vector<uint32_t>& shard_of, uint32_t shard,
                uint32_t target_size) {
  // Seed: lowest-id unassigned node.
  NodeId seed = kInvalidNode;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (shard_of[n] == kUnassigned) {
      seed = n;
      break;
    }
  }
  if (seed == kInvalidNode) return;
  shard_of[seed] = shard;
  uint32_t size = 1;

  while (size < target_size) {
    NodeId best = kInvalidNode;
    uint32_t best_affinity = 0;
    // Scan the frontier: unassigned neighbors of current members. O(V·E) over
    // the whole partition in the worst case — partitioning runs once at
    // setup, and topology-zoo graphs top out at a few hundred nodes.
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      if (shard_of[n] != kUnassigned) continue;
      const uint32_t a = affinity(topo, shard_of, n, shard);
      if (a > best_affinity) {
        best = n;
        best_affinity = a;
      }
    }
    if (best == kInvalidNode) break;  // disconnected remainder; next shard picks it up
    shard_of[best] = shard;
    ++size;
  }
}

/// One boundary-refinement sweep: move a node to a neighboring shard when
/// that strictly reduces the cut and keeps both shards' sizes within
/// [1, target+1]. Nodes are visited in id order, so the sweep — and with it
/// the final partition — is deterministic.
bool refine_once(const Topology& topo, std::vector<uint32_t>& shard_of,
                 std::vector<uint32_t>& shard_size, uint32_t num_shards, uint32_t target_size) {
  bool changed = false;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    const uint32_t home = shard_of[n];
    if (shard_size[home] <= 1) continue;
    const uint32_t home_edges = affinity(topo, shard_of, n, home);
    uint32_t best_shard = home;
    uint32_t best_gain = 0;
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (s == home || shard_size[s] >= target_size + 1) continue;
      const uint32_t there = affinity(topo, shard_of, n, s);
      if (there > home_edges && there - home_edges > best_gain) {
        best_shard = s;
        best_gain = there - home_edges;
      }
    }
    if (best_shard != home) {
      shard_of[n] = best_shard;
      --shard_size[home];
      ++shard_size[best_shard];
      changed = true;
    }
  }
  return changed;
}

struct UnionFind {
  std::vector<uint32_t> parent;
  explicit UnionFind(uint32_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0u);
  }
  uint32_t find(uint32_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void merge(uint32_t a, uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Lower root wins: keeps renumbering deterministic.
    if (a < b) parent[b] = a;
    else parent[a] = b;
  }
};

/// Collapses a union-find over shard ids into a compact renumbering of
/// `shard_of` (roots keep ascending order). Returns the new shard count.
uint32_t renumber(UnionFind& uf, uint32_t num_shards, std::vector<uint32_t>& shard_of) {
  std::vector<uint32_t> new_id(num_shards, kUnassigned);
  uint32_t next = 0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    const uint32_t root = uf.find(s);
    if (new_id[root] == kUnassigned) new_id[root] = next++;
  }
  for (uint32_t& s : shard_of) s = new_id[uf.find(s)];
  return next;
}

/// Merges every shard pair joined by a zero-delay cut link: such a pair
/// admits no conservative lookahead window at all (horizon 0 would deadlock
/// the epoch scheduler), so the only safe schedule is to run them as one
/// shard. Transitive by construction.
bool fuse_zero_delay_cuts(const Topology& topo, Partition& p) {
  UnionFind uf(p.num_shards);
  bool any = false;
  for (const DirectedLink& l : topo.links()) {
    if (!p.crosses(l) || l.delay_s > 0.0) continue;
    uf.merge(p.shard_of[l.from], p.shard_of[l.to]);
    any = true;
  }
  if (!any) return false;
  const uint32_t merged = renumber(uf, p.num_shards, p.shard_of);
  if (merged == p.num_shards) return false;
  p.fused_shards += p.num_shards - merged;
  p.num_shards = merged;
  return true;
}

/// Folds shards whose estimated event load is below kFuseLoadFraction of
/// the mean into the neighboring shard they share the most cut links with
/// (tie -> lowest shard id). One shard per iteration, smallest load first,
/// so the result is deterministic and the mean is recomputed as fusion
/// proceeds.
void fuse_underloaded_shards(const Topology& topo, Partition& p) {
  while (p.num_shards > 1) {
    const std::vector<uint64_t> load = estimate_shard_loads(topo, p);
    const uint64_t total = std::accumulate(load.begin(), load.end(), uint64_t{0});
    const double mean = double(total) / p.num_shards;
    uint32_t victim = kUnassigned;
    for (uint32_t s = 0; s < p.num_shards; ++s) {
      if (double(load[s]) >= kFuseLoadFraction * mean) continue;
      if (victim == kUnassigned || load[s] < load[victim]) victim = s;
    }
    if (victim == kUnassigned) return;

    // Best-connected neighbor: most cut links shared with the victim.
    std::vector<uint32_t> shared(p.num_shards, 0);
    for (const DirectedLink& l : topo.links()) {
      const uint32_t a = p.shard_of[l.from], b = p.shard_of[l.to];
      if (a == victim && b != victim) ++shared[b];
    }
    uint32_t host = victim == 0 ? 1 : 0;
    for (uint32_t s = 0; s < p.num_shards; ++s) {
      if (s != victim && shared[s] > shared[host]) host = s;
    }

    UnionFind uf(p.num_shards);
    uf.merge(victim, host);
    p.num_shards = renumber(uf, p.num_shards, p.shard_of);
    ++p.fused_shards;
  }
}

}  // namespace

void recompute_cut(const Topology& topo, Partition& partition) {
  const uint32_t s = partition.num_shards;
  partition.num_cut_links = 0;
  partition.min_cut_delay_s = std::numeric_limits<double>::infinity();
  partition.horizon.assign(size_t{s} * s, std::numeric_limits<double>::infinity());
  for (const DirectedLink& l : topo.links()) {
    if (!partition.crosses(l)) continue;
    ++partition.num_cut_links;
    partition.min_cut_delay_s = std::min(partition.min_cut_delay_s, l.delay_s);
    double& h = partition.horizon[size_t{partition.shard_of[l.from]} * s +
                                  partition.shard_of[l.to]];
    h = std::min(h, l.delay_s);
  }
}

std::vector<uint64_t> estimate_shard_loads(const Topology& topo, const Partition& partition) {
  std::vector<uint64_t> load(partition.num_shards, 0);
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    load[partition.shard_of[n]] += topo.out_links(n).size() + 1;
  }
  return load;
}

Partition partition_topology(const Topology& topo, uint32_t num_shards) {
  Partition p;
  const uint32_t n = topo.num_nodes();
  num_shards = std::max<uint32_t>(1, std::min(num_shards, std::max<uint32_t>(n, 1)));
  p.num_shards = num_shards;
  p.shard_of.assign(n, 0);
  if (num_shards <= 1 || n == 0) {
    recompute_cut(topo, p);
    return p;
  }

  std::fill(p.shard_of.begin(), p.shard_of.end(), kUnassigned);
  const uint32_t target = (n + num_shards - 1) / num_shards;
  for (uint32_t s = 0; s < num_shards; ++s) grow_shard(topo, p.shard_of, s, target);
  // grow_shard stops at disconnected components; sweep up any leftovers into
  // the smallest shard so far (deterministic: id order, lowest shard wins ties).
  std::vector<uint32_t> size(num_shards, 0);
  for (NodeId node = 0; node < n; ++node) {
    if (p.shard_of[node] != kUnassigned) ++size[p.shard_of[node]];
  }
  for (NodeId node = 0; node < n; ++node) {
    if (p.shard_of[node] != kUnassigned) continue;
    const uint32_t s = static_cast<uint32_t>(
        std::min_element(size.begin(), size.end()) - size.begin());
    p.shard_of[node] = s;
    ++size[s];
  }

  for (int pass = 0; pass < 4; ++pass) {
    if (!refine_once(topo, p.shard_of, size, num_shards, target)) break;
  }

  recompute_cut(topo, p);
  fuse_zero_delay_cuts(topo, p);
  fuse_underloaded_shards(topo, p);
  recompute_cut(topo, p);
  return p;
}

uint32_t default_num_shards(const Topology& topo) {
  // ~5 switches per shard amortizes the barrier cost; cap at 8 shards (the
  // bench's scaling ceiling) and never exceed the node count.
  const uint32_t n = topo.num_nodes();
  if (n <= 1) return 1;
  return std::max<uint32_t>(1, std::min<uint32_t>(8, n / 5 + (n % 5 != 0)));
}

uint32_t default_num_shards(const Topology& topo, uint32_t hardware_threads) {
  const uint32_t n = topo.num_nodes();
  if (n <= 1) return 1;
  // Topology-sized as above, but allowed to grow past 8 on big graphs…
  const uint32_t by_topology =
      std::max<uint32_t>(1, std::min<uint32_t>(16, n / 5 + (n % 5 != 0)));
  if (hardware_threads == 0) return std::min<uint32_t>(8, by_topology);
  // …and capped at the machine's thread budget: extra shards past the core
  // count add barrier work without adding parallelism.
  return std::min(by_topology, std::max<uint32_t>(1, hardware_threads));
}

}  // namespace contra::topology
