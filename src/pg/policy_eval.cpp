#include "pg/policy_eval.h"

#include <stdexcept>

#include "analysis/attributes.h"
#include "lang/eval.h"

namespace contra::pg {

PolicyEvaluator::PolicyEvaluator(const ProductGraph& graph,
                                 const analysis::Decomposition& decomposition)
    : graph_(&graph), decomposition_(&decomposition) {
  atoms_ = analysis::collect_atomic_tests(decomposition.original);
  atom_regex_.assign(atoms_.size(), UINT32_MAX);
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (atoms_[i]->kind != lang::BoolTest::Kind::kRegex) continue;
    for (uint32_t r = 0; r < graph.num_regexes(); ++r) {
      if (lang::Regex::equal(*graph.regexes()[r], *atoms_[i]->regex)) {
        atom_regex_[i] = r;
        break;
      }
    }
    if (atom_regex_[i] == UINT32_MAX) {
      throw std::logic_error("policy regex missing from product graph");
    }
  }
}

lang::Rank PolicyEvaluator::propagation_rank(uint32_t pid, const MetricsVector& mv) const {
  const auto& sub = decomposition_->subpolicies.at(pid);
  return analysis::evaluate_metric(sub.objective, mv.to_attrs());
}

lang::Rank PolicyEvaluator::selection_rank(uint32_t tag, const MetricsVector& mv) const {
  const lang::PathAttributes attrs = mv.to_attrs();
  const std::vector<bool>& accepting = graph_->accepting(tag);

  // Resolve every atomic test up front: regex atoms from the tag, dynamic
  // atoms from the metrics; then partially evaluate the original objective.
  std::vector<bool> assignment(atoms_.size(), false);
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (atom_regex_[i] != UINT32_MAX) {
      assignment[i] = accepting[atom_regex_[i]];
    } else {
      static const std::vector<std::string> kNoNodes;
      const lang::TestPtr& atom = atoms_[i];
      const lang::Rank lhs = lang::evaluate_expr(atom->cmp_lhs, kNoNodes, attrs);
      const lang::Rank rhs = lang::evaluate_expr(atom->cmp_rhs, kNoNodes, attrs);
      switch (atom->cmp) {
        case lang::BoolTest::CmpOp::kLt: assignment[i] = lhs < rhs; break;
        case lang::BoolTest::CmpOp::kLe: assignment[i] = lhs <= rhs; break;
        case lang::BoolTest::CmpOp::kGt: assignment[i] = lhs > rhs; break;
        case lang::BoolTest::CmpOp::kGe: assignment[i] = lhs >= rhs; break;
        case lang::BoolTest::CmpOp::kEq: assignment[i] = lhs == rhs; break;
        case lang::BoolTest::CmpOp::kNe: assignment[i] = lhs != rhs; break;
      }
    }
  }
  const lang::ExprPtr resolved =
      analysis::resolve_tests(decomposition_->original.objective, atoms_, assignment);
  return analysis::evaluate_metric(resolved, attrs);
}

}  // namespace contra::pg
